// Benchmarks mirroring the paper's evaluation: one benchmark (or
// group) per table and figure, measuring the per-request cost of the
// pipeline that regenerates it. The full tables/figures themselves are
// produced by `go run ./cmd/experiments -run all`; these benches pin
// the runtime claims (Tables 5.3, 5.4; Figures 5.4) and exercise every
// other experiment's hot path under the Go benchmark harness.
package krr_test

import (
	"fmt"
	"testing"

	"krr/internal/core"
	"krr/internal/model"
	"krr/internal/olken"
	"krr/internal/redislike"
	"krr/internal/shards"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

// collectPreset materializes n requests of a preset at the benchmark
// scale (shared with the A/B guard in abguard_test.go).
func collectPreset(preset string, n int, variable bool) (*trace.Trace, error) {
	p, ok := workload.ByName(preset)
	if !ok {
		return nil, fmt.Errorf("unknown preset %s", preset)
	}
	return trace.Collect(p.New(0.1, 42, variable), n)
}

// benchTrace materializes a preset once per benchmark binary run.
func benchTrace(b *testing.B, preset string, n int, variable bool) *trace.Trace {
	b.Helper()
	tr, err := collectPreset(preset, n, variable)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// replay feeds b.N requests (cycling the trace) into process. Every
// replay-driven benchmark reports allocs/op: a steady-state model's
// hot path should not allocate, and the counter catches one that
// starts to.
func replay(b *testing.B, tr *trace.Trace, process func(trace.Request)) {
	b.Helper()
	reqs := tr.Reqs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		process(reqs[i%len(reqs)])
	}
}

// --- Fig 1.1 / Fig 5.2: ground-truth K-LRU simulation cost ----------

func BenchmarkFig1_1_KLRUSimulation(b *testing.B) {
	for _, k := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			cache := simulator.NewKLRU(simulator.ObjectCapacity(10000), k, true, 1)
			replay(b, tr, func(r trace.Request) { cache.Access(r) })
		})
	}
}

func BenchmarkFig5_2_ExactLRUStack(b *testing.B) {
	tr := benchTrace(b, "msr-web", 1<<17, false)
	prof := olken.NewProfiler(1)
	replay(b, tr, prof.Process)
}

// --- Table 5.1 / Fig 5.1: the KRR modeling pipeline ------------------

func BenchmarkTable5_1_KRRModel(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			prof := core.MustProfiler(core.Config{K: k, Seed: 1})
			replay(b, tr, prof.Process)
		})
	}
}

func BenchmarkFig5_1_KRRSpatial(b *testing.B) {
	tr := benchTrace(b, "msr-src1", 1<<17, false)
	prof := core.MustProfiler(core.Config{K: 4, Seed: 1, SamplingRate: 0.01})
	replay(b, tr, prof.Process)
}

// --- Table 5.2 / Fig 5.3: variable-object-size models ----------------

func BenchmarkTable5_2_VarKRR(b *testing.B) {
	tr := benchTrace(b, "tw-26.0", 1<<17, true)
	prof := core.MustProfiler(core.Config{K: 8, Seed: 1, Bytes: core.BytesSizeArray})
	replay(b, tr, prof.Process)
}

func BenchmarkFig5_3_UniKRR(b *testing.B) {
	tr := benchTrace(b, "msr-web", 1<<17, true)
	prof := core.MustProfiler(core.Config{K: 8, Seed: 1, Bytes: core.BytesUniform})
	replay(b, tr, prof.Process)
}

func BenchmarkFig5_3_VarKRRFenwick(b *testing.B) {
	tr := benchTrace(b, "msr-web", 1<<17, true)
	prof := core.MustProfiler(core.Config{K: 8, Seed: 1, Bytes: core.BytesFenwick})
	replay(b, tr, prof.Process)
}

// --- Table 5.3: stack update efficiency (the headline speedups) ------

func table53Trace(b *testing.B) *trace.Trace {
	return benchTrace(b, "msr-src1", 1<<17, false)
}

func BenchmarkTable5_3_Simulation(b *testing.B) {
	tr := table53Trace(b)
	cache := simulator.NewKLRU(simulator.ObjectCapacity(20000), 5, true, 1)
	replay(b, tr, func(r trace.Request) { cache.Access(r) })
}

func BenchmarkTable5_3_BasicStackLinear(b *testing.B) {
	tr := table53Trace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.Linear, Seed: 1})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_3_TopDown(b *testing.B) {
	tr := table53Trace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.TopDown, Seed: 1})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_3_Backward(b *testing.B) {
	tr := table53Trace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.Backward, Seed: 1})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_3_TopDownSpatial(b *testing.B) {
	tr := table53Trace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.TopDown, Seed: 1, SamplingRate: 0.01})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_3_BackwardSpatial(b *testing.B) {
	tr := table53Trace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.Backward, Seed: 1, SamplingRate: 0.01})
	replay(b, tr, prof.Process)
}

// --- Sharded pipeline: W-way hash-partitioned KRR --------------------

// BenchmarkShardedKRR drives the sharded pipeline at several worker
// counts over the Table 5.1 configuration (msr-web, K=8). Compare
// against BenchmarkTable5_1_KRRModel/K=8 for the serial baseline; the
// timed region includes routing, channel hand-off and the final drain
// (Close), so ns/op is true end-to-end cost per request.
func BenchmarkShardedKRR(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			sp, err := core.NewShardedProfiler(core.Config{K: 8, Seed: 1, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			reqs := tr.Reqs
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.Process(reqs[i%len(reqs)])
			}
			sp.Close()
		})
	}
}

// --- Model registry: per-request cost of every technique -------------

// BenchmarkModels replays the Table 5.1 configuration (msr-web,
// unsampled) through every registered model, one sub-benchmark per
// registry entry, so cross-technique ns/req comparisons come from one
// harness (results/models_bench.md). The timed loop is Process only;
// curve construction is excluded.
func BenchmarkModels(b *testing.B) {
	for _, info := range model.All() {
		b.Run(info.Name, func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			m, err := model.New(info.Name, model.Options{Seed: 1, SamplingRate: 1})
			if err != nil {
				b.Fatal(err)
			}
			replay(b, tr, func(r trace.Request) { m.Process(r) })
		})
	}
}

// BenchmarkKRRBucket sweeps the bucketized stack's growth ratio over
// the Table 5.1 configuration — the cost side of the accuracy-vs-cost
// frontier in results/models_bench.md (TestDifferentialBucketRatios
// pins the accuracy side). Larger ratios mean fewer buckets and fewer
// victim rotations per reference.
func BenchmarkKRRBucket(b *testing.B) {
	for _, ratio := range []float64{1.25, 1.5, 2.0} {
		b.Run(fmt.Sprintf("ratio=%v", ratio), func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			m, err := model.New("krr-bucket", model.Options{Seed: 1, SamplingRate: 1, BucketRatio: ratio})
			if err != nil {
				b.Fatal(err)
			}
			replay(b, tr, func(r trace.Request) { m.Process(r) })
		})
	}
}

// --- Fig 5.4: update overhead growth with K --------------------------

func BenchmarkFig5_4_BackwardByK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			tr := benchTrace(b, "msr-web", 1<<17, false)
			prof := core.MustProfiler(core.Config{K: k, Seed: 1})
			replay(b, tr, prof.Process)
			b.ReportMetric(float64(prof.Stack().SwapSteps())/float64(prof.Stack().Updates()), "swaps/update")
		})
	}
}

// --- Table 5.4: merged master trace, KRR+spatial vs SHARDS -----------

func masterTrace(b *testing.B) *trace.Trace {
	return benchTrace(b, "msr-master", 1<<18, false)
}

func BenchmarkTable5_4_TopDownSpatial(b *testing.B) {
	tr := masterTrace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.TopDown, Seed: 1, SamplingRate: 0.01})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_4_BackwardSpatial(b *testing.B) {
	tr := masterTrace(b)
	prof := core.MustProfiler(core.Config{K: 5, Method: core.Backward, Seed: 1, SamplingRate: 0.01})
	replay(b, tr, prof.Process)
}

func BenchmarkTable5_4_SHARDS(b *testing.B) {
	tr := masterTrace(b)
	s := shards.NewFixedRate(0.01, 1, false)
	replay(b, tr, s.Process)
}

// --- Fig 5.5: redislike engine throughput ----------------------------

func BenchmarkFig5_5_RedisEngine(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    redislike.SamplingMode
	}{{"someKeys", redislike.SampleSomeKeys}, {"randomKey", redislike.SampleRandomKey}} {
		b.Run(mode.name, func(b *testing.B) {
			tr := benchTrace(b, "msr-src2", 1<<17, false)
			e := redislike.NewEngine(redislike.Config{MaxMemory: 4 << 20, Sampling: mode.m, Seed: 1})
			replay(b, tr, func(r trace.Request) { e.Access(r) })
		})
	}
}

// --- §5.6 space: metadata per tracked object --------------------------

func BenchmarkSpace_StackMetadata(b *testing.B) {
	tr := benchTrace(b, "msr-proj", 1<<17, false)
	prof := core.MustProfiler(core.Config{K: 5, Seed: 1})
	replay(b, tr, prof.Process)
	if n := prof.Stack().Len(); n > 0 {
		b.ReportMetric(float64(prof.Stack().MemoryOverheadBytes())/float64(n), "B/object")
	}
}
