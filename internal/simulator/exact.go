package simulator

import (
	"container/heap"

	"krr/internal/mrc"
	"krr/internal/nsp"
	"krr/internal/trace"
)

// ExactPriority is an exact priority-eviction cache: on a miss with a
// full cache it evicts the resident object with the globally lowest
// priority tuple. Priorities follow nsp.Policy semantics — recomputed
// on every access, with access counts surviving eviction (perfect
// history) — so a sweep of ExactPriority simulations is the ground
// truth the NSP one-pass stack models (LFU, MRU) are checked against,
// exactly as the LRU/K-LRU sweeps serve the stack models.
//
// Eviction uses a lazy min-heap: every access pushes the object's
// fresh priority and stale heap entries are discarded on pop, giving
// O(log n) amortized eviction without decrease-key support.
type ExactPriority struct {
	cap    Capacity
	pol    nsp.Policy
	clock  uint64
	used   uint64
	prio   map[uint64][2]uint64 // resident key -> current priority
	sizes  map[uint64]uint32    // resident key -> size
	counts map[uint64]uint64    // all-time access counts (survive eviction)
	h      epHeap
}

// epEntry is one (possibly stale) heap record.
type epEntry struct {
	prio [2]uint64
	key  uint64
}

// epHeap is a min-heap over priority tuples.
type epHeap []epEntry

func (h epHeap) Len() int { return len(h) }
func (h epHeap) Less(i, j int) bool {
	if h[i].prio[0] != h[j].prio[0] {
		return h[i].prio[0] < h[j].prio[0]
	}
	return h[i].prio[1] < h[j].prio[1]
}
func (h epHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *epHeap) Push(x any)   { *h = append(*h, x.(epEntry)) }
func (h *epHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewExactPriority builds the cache for one NSP policy.
func NewExactPriority(capacity Capacity, pol nsp.Policy) *ExactPriority {
	capacity.validate()
	return &ExactPriority{
		cap:    capacity,
		pol:    pol,
		prio:   make(map[uint64][2]uint64),
		sizes:  make(map[uint64]uint32),
		counts: make(map[uint64]uint64),
	}
}

// Len returns the number of resident objects.
func (c *ExactPriority) Len() int { return len(c.prio) }

// UsedBytes returns the resident byte total.
func (c *ExactPriority) UsedBytes() uint64 { return c.used }

// Contains reports residency.
func (c *ExactPriority) Contains(key uint64) bool {
	_, ok := c.prio[key]
	return ok
}

// Access processes one request.
func (c *ExactPriority) Access(req trace.Request) bool {
	c.clock++
	if req.Op == trace.OpDelete {
		c.remove(req.Key)
		return false
	}
	c.counts[req.Key]++
	p := c.pol.Priority(c.counts[req.Key], c.clock)
	if _, ok := c.prio[req.Key]; ok {
		c.prio[req.Key] = p
		heap.Push(&c.h, epEntry{prio: p, key: req.Key})
		if c.sizes[req.Key] != req.Size {
			c.used += uint64(req.Size) - uint64(c.sizes[req.Key])
			c.sizes[req.Key] = req.Size
			c.evictToFit(0, req.Key)
		}
		return true
	}
	if c.cap.Bytes > 0 && uint64(req.Size) > c.cap.Bytes {
		return false
	}
	c.prio[req.Key] = p
	c.sizes[req.Key] = req.Size
	c.used += uint64(req.Size)
	heap.Push(&c.h, epEntry{prio: p, key: req.Key})
	c.evictToFit(0, req.Key)
	return false
}

// evictToFit evicts minimum-priority residents until the cache fits
// its capacity again; keep (the just-accessed object) is never
// evicted.
func (c *ExactPriority) evictToFit(incoming uint64, keep uint64) {
	fits := func() bool {
		if c.cap.Objects > 0 {
			return uint64(len(c.prio))+boolToUint(incoming > 0) <= uint64(c.cap.Objects)
		}
		return c.used+incoming <= c.cap.Bytes
	}
	var deferred []epEntry
	for len(c.prio) > 1 && !fits() && c.h.Len() > 0 {
		e := heap.Pop(&c.h).(epEntry)
		cur, resident := c.prio[e.key]
		if !resident || cur != e.prio {
			continue // stale heap record
		}
		if e.key == keep {
			// Still the current priority — must survive for future
			// evictions; re-push after this round.
			deferred = append(deferred, e)
			continue
		}
		c.remove(e.key)
	}
	for _, e := range deferred {
		heap.Push(&c.h, e)
	}
}

func boolToUint(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (c *ExactPriority) remove(key uint64) {
	if _, ok := c.prio[key]; !ok {
		return
	}
	c.used -= uint64(c.sizes[key])
	delete(c.prio, key)
	delete(c.sizes, key)
}

// PriorityMRC simulates the trace at each object capacity with an
// ExactPriority cache and returns the interpolated curve — the ground
// truth for the NSP models.
func PriorityMRC(tr *trace.Trace, pol nsp.Policy, sizes []uint64, workers int) (*mrc.Curve, error) {
	return MRC(tr, sizes, workers, func(capacity uint64) Cache {
		return NewExactPriority(ObjectCapacity(int(capacity)), pol)
	})
}
