package simulator

import (
	"math"
	"testing"

	"krr/internal/trace"
	"krr/internal/workload"
)

func runSampled(t *testing.T, cfg SampledConfig, tr *trace.Trace) (Stats, *Sampled) {
	t.Helper()
	c := NewSampled(cfg)
	st, err := Run(c, tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	return st, c
}

func TestSampledRecencyMatchesKLRU(t *testing.T) {
	// With the Recency priority the Sampled cache is the same policy
	// as KLRU; miss ratios must agree statistically.
	g := workload.NewZipf(3, 4000, 0.9, nil, 0)
	tr, _ := trace.Collect(g, 80000)
	const cap, k = 800, 5
	recency, _ := runSampled(t, SampledConfig{
		Capacity: ObjectCapacity(cap), K: k, Priority: Recency{}, Seed: 1,
	}, tr)
	klru, err := Run(NewKLRU(ObjectCapacity(cap), k, true, 2), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(recency.MissRatio() - klru.MissRatio()); diff > 0.02 {
		t.Fatalf("recency-sampled %v vs KLRU %v", recency.MissRatio(), klru.MissRatio())
	}
}

func TestSampledLFUKeepsHotKeys(t *testing.T) {
	// Hot keys accessed 100× more than cold ones must survive an LFU
	// eviction storm even after a long cold scan (where LRU would
	// evict them).
	const hot = 50
	c := NewSampled(SampledConfig{
		Capacity: ObjectCapacity(200), K: 10, Priority: Frequency{}, Seed: 3,
	})
	for round := 0; round < 100; round++ {
		for k := uint64(0); k < hot; k++ {
			c.Access(trace.Request{Key: k, Size: 1})
		}
	}
	// Scan 10k cold keys.
	for k := uint64(1000); k < 11000; k++ {
		c.Access(trace.Request{Key: k, Size: 1})
	}
	survivors := 0
	for k := uint64(0); k < hot; k++ {
		if c.Contains(k) {
			survivors++
		}
	}
	if survivors < hot*9/10 {
		t.Fatalf("only %d/%d hot keys survived LFU scan", survivors, hot)
	}
}

func TestSampledLRUEvictedByScan(t *testing.T) {
	// Contrast: recency priority loses the hot set to the same scan.
	const hot = 50
	c := NewSampled(SampledConfig{
		Capacity: ObjectCapacity(200), K: 10, Priority: Recency{}, Seed: 3,
	})
	for round := 0; round < 100; round++ {
		for k := uint64(0); k < hot; k++ {
			c.Access(trace.Request{Key: k, Size: 1})
		}
	}
	for k := uint64(1000); k < 11000; k++ {
		c.Access(trace.Request{Key: k, Size: 1})
	}
	survivors := 0
	for k := uint64(0); k < hot; k++ {
		if c.Contains(k) {
			survivors++
		}
	}
	if survivors > hot/2 {
		t.Fatalf("%d/%d hot keys survived an LRU scan — expected thrash", survivors, hot)
	}
}

func TestFrequencyDecayAges(t *testing.T) {
	e := EntryInfo{Freq: 100, LastAccess: 0}
	noDecay := Frequency{}
	decay := Frequency{Decay: 0.01}
	if noDecay.Score(e, 1000) != 100 {
		t.Fatal("no-decay score must equal freq")
	}
	if got := decay.Score(e, 1000); got >= 100 || got <= 0 {
		t.Fatalf("decayed score %v", got)
	}
}

func TestHyperbolicPrefersProvenObjects(t *testing.T) {
	h := Hyperbolic{}
	old := EntryInfo{Freq: 100, InsertTime: 0}   // 100 hits over 1000 ticks
	young := EntryInfo{Freq: 2, InsertTime: 990} // 2 hits over 10 ticks
	// Hyperbolic score: old = 100/1001 ≈ 0.1, young = 2/11 ≈ 0.18 —
	// the young object has a better rate and is kept.
	if h.Score(old, 1000) >= h.Score(young, 1000) {
		t.Fatal("hyperbolic must rate the young fast-burner higher")
	}
}

func TestTTLPriorityOrdering(t *testing.T) {
	p := TTL{}
	never := EntryInfo{Expiry: 0}
	soon := EntryInfo{Expiry: 110}
	later := EntryInfo{Expiry: 500}
	expired := EntryInfo{Expiry: 50}
	now := uint64(100)
	if !(p.Score(expired, now) < p.Score(soon, now) &&
		p.Score(soon, now) < p.Score(later, now) &&
		p.Score(later, now) < p.Score(never, now)) {
		t.Fatal("TTL ordering wrong")
	}
}

func TestSampledTTLEviction(t *testing.T) {
	// Keys 0..99 expire quickly; 100..199 never. Under TTL priority
	// with eviction pressure, the expiring keys go first.
	c := NewSampled(SampledConfig{
		Capacity: ObjectCapacity(150), K: 10, Priority: TTL{}, Seed: 5,
		TTLOf: func(key uint64) uint64 {
			if key < 100 {
				return 50
			}
			return 0
		},
	})
	for k := uint64(0); k < 200; k++ {
		c.Access(trace.Request{Key: k, Size: 1})
	}
	persistent := 0
	for k := uint64(100); k < 200; k++ {
		if c.Contains(k) {
			persistent++
		}
	}
	if persistent < 90 {
		t.Fatalf("only %d/100 persistent keys survived TTL eviction", persistent)
	}
}

func TestSampledLazyExpiry(t *testing.T) {
	c := NewSampled(SampledConfig{
		Capacity: ObjectCapacity(10), K: 3, Priority: Recency{}, Seed: 1,
		TTLOf: func(uint64) uint64 { return 5 },
	})
	c.Access(trace.Request{Key: 1, Size: 1})
	if !c.Access(trace.Request{Key: 1, Size: 1}) {
		t.Fatal("fresh object must hit")
	}
	// Advance the clock past expiry with other keys.
	for k := uint64(10); k < 20; k++ {
		c.Access(trace.Request{Key: k, Size: 1})
	}
	if c.Access(trace.Request{Key: 1, Size: 1}) {
		t.Fatal("expired object must miss (lazy expiry)")
	}
}

func TestSampledByteCapacityAndDelete(t *testing.T) {
	c := NewSampled(SampledConfig{
		Capacity: ByteCapacity(1000), K: 5, Priority: Recency{}, Seed: 1,
	})
	for k := uint64(0); k < 100; k++ {
		c.Access(trace.Request{Key: k, Size: 90})
		if c.UsedBytes() > 1000 {
			t.Fatal("byte budget exceeded")
		}
	}
	if c.Access(trace.Request{Key: 5000, Size: 2000}) {
		t.Fatal("oversized insert cannot hit")
	}
	key := c.entries[0].Key
	c.Access(trace.Request{Key: key, Op: trace.OpDelete})
	if c.Contains(key) {
		t.Fatal("delete must remove")
	}
}

func TestSampledPanics(t *testing.T) {
	for _, cfg := range []SampledConfig{
		{Capacity: ObjectCapacity(1), K: 0, Priority: Recency{}},
		{Capacity: ObjectCapacity(1), K: 1},
		{K: 1, Priority: Recency{}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cfg %+v: expected panic", cfg)
				}
			}()
			NewSampled(cfg)
		}()
	}
}

func TestPriorityNames(t *testing.T) {
	names := map[string]Priority{
		"lru": Recency{}, "lfu": Frequency{}, "hyperbolic": Hyperbolic{}, "ttl": TTL{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Fatalf("%T name %q", p, p.Name())
		}
	}
}
