package simulator

import (
	"math"
	"testing"

	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
)

// TestByteLRUMatchesOlkenByteCurve cross-checks the two byte-level
// exact-LRU implementations: a byte-capacity LRU cache keeps a prefix
// of the recency order, so a reference hits iff its inclusive byte
// stack distance fits the budget — the quantity the Olken tree
// computes.
func TestByteLRUMatchesOlkenByteCurve(t *testing.T) {
	g := workload.NewTwitterLike(5, workload.TwitterParams{Keys: 3000, Alpha: 1.0})
	tr, _ := trace.Collect(g, 60000)

	prof := olken.NewProfiler(1)
	if err := prof.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	curve := prof.ByteMRC(1)
	wss := prof.Stack().Bytes()

	for _, frac := range []float64{0.1, 0.3, 0.6, 0.9} {
		capBytes := uint64(float64(wss) * frac)
		st, err := Run(NewLRU(ByteCapacity(capBytes)), tr.Reader())
		if err != nil {
			t.Fatal(err)
		}
		got := st.MissRatio()
		want := curve.Eval(capBytes)
		// The stack model is an idealization of "evict until fit"; the
		// two agree up to boundary effects from objects straddling the
		// budget.
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("cap %d: simulated %v vs olken byte curve %v", capBytes, got, want)
		}
	}
}
