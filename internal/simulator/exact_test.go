package simulator

import (
	"testing"

	"krr/internal/nsp"
	"krr/internal/trace"
)

func accessKeys(c *ExactPriority, keys ...uint64) []bool {
	out := make([]bool, len(keys))
	for i, k := range keys {
		out[i] = c.Access(trace.Request{Key: k, Size: 1})
	}
	return out
}

// TestExactPriorityMRUHandChecked pins the eviction order of the MRU
// policy on a trace worked out by hand: capacity 2, accesses
// a b c b a. At c's miss the most recently used resident (b) is
// evicted; b's miss then evicts c, so a survives to hit at step 5 —
// matching the Mattson distances (b: 3, a: 2) nsp.MRUStack reports.
func TestExactPriorityMRUHandChecked(t *testing.T) {
	c := NewExactPriority(ObjectCapacity(2), nsp.MRU{})
	got := accessKeys(c, 'a', 'b', 'c', 'b', 'a')
	want := []bool{false, false, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: hit=%v want %v (full: %v)", i, got[i], want[i], got)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("resident count %d, want 2", c.Len())
	}
}

// TestExactPriorityLFUKeepsHotKey: with capacity 2 and a key accessed
// three times, LFU must evict the cold newcomers, never the hot key.
func TestExactPriorityLFUKeepsHotKey(t *testing.T) {
	c := NewExactPriority(ObjectCapacity(2), nsp.LFU{})
	accessKeys(c, 1, 1, 1, 2, 3, 4)
	if !c.Contains(1) {
		t.Fatal("LFU evicted the most frequent key")
	}
	if c.Len() != 2 {
		t.Fatalf("resident count %d, want 2", c.Len())
	}
}

// TestExactPriorityDeleteAndBytes covers the delete path and byte
// capacities: deletes free residency, and an object larger than the
// whole cache is never admitted.
func TestExactPriorityDeleteAndBytes(t *testing.T) {
	c := NewExactPriority(ByteCapacity(100), nsp.LFU{})
	c.Access(trace.Request{Key: 1, Size: 60})
	c.Access(trace.Request{Key: 2, Size: 30})
	if c.UsedBytes() != 90 {
		t.Fatalf("used %d, want 90", c.UsedBytes())
	}
	c.Access(trace.Request{Key: 1, Op: trace.OpDelete})
	if c.Contains(1) || c.UsedBytes() != 30 {
		t.Fatalf("delete left key 1 resident (used %d)", c.UsedBytes())
	}
	if c.Access(trace.Request{Key: 3, Size: 200}) {
		t.Fatal("oversized object reported as hit")
	}
	if c.Contains(3) {
		t.Fatal("oversized object admitted")
	}
}

// TestExactPriorityResize: re-accessing a resident with a new size
// adjusts the byte total and evicts if the cache overflows.
func TestExactPriorityResize(t *testing.T) {
	c := NewExactPriority(ByteCapacity(100), nsp.LFU{})
	c.Access(trace.Request{Key: 1, Size: 40})
	c.Access(trace.Request{Key: 2, Size: 40})
	c.Access(trace.Request{Key: 2, Size: 90})
	if c.Contains(1) {
		t.Fatal("growing key 2 must evict key 1")
	}
	if !c.Contains(2) || c.UsedBytes() != 90 {
		t.Fatalf("resident set wrong (used %d)", c.UsedBytes())
	}
}
