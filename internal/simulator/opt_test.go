package simulator

import (
	"testing"

	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestNextUses(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1}, {Key: 2}, {Key: 1}, {Key: 2}, {Key: 3},
	}}
	next := NextUses(tr)
	want := []int64{2, 3, infiniteNextUse, infiniteNextUse, infiniteNextUse}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
}

func TestNextUsesDeleteSevers(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1},                     // next use severed by delete
		{Key: 1, Op: trace.OpDelete}, //
		{Key: 1},                     // last reference
	}}
	next := NextUses(tr)
	if next[0] != infiniteNextUse {
		t.Fatalf("next[0] = %d, want severed", next[0])
	}
}

func TestOPTKnownSequence(t *testing.T) {
	// Classic Belady example: 1,2,3,4,1,2,5,1,2,3,4,5 at capacity 3
	// yields 7 faults under OPT (bypass variant: never caching an
	// object with no future use cannot fault more).
	keys := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	tr := &trace.Trace{}
	for _, k := range keys {
		tr.Append(trace.Request{Key: k, Size: 1})
	}
	next := NextUses(tr)
	miss := OPTMissRatio(tr, 3, next)
	got := miss * float64(len(keys))
	if got < 6.99 || got > 7.01 {
		t.Fatalf("OPT misses = %v, want 7", got)
	}
}

func TestOPTDominatesEveryPolicy(t *testing.T) {
	// OPT's miss ratio lower-bounds LRU and K-LRU at every size.
	g := workload.NewMSRLike(7, workload.MSRParams{
		Blocks: 4000, HotWeight: 0.4, SeqWeight: 0.3, LoopWeight: 0.3,
		LoopLen: 1200, LoopRepeats: 2,
	})
	tr, _ := trace.Collect(g, 60000)
	sizes := mrc.EvenSizes(4000, 8)
	opt := OPTMRC(tr, sizes, 2)
	lru, err := LRUMRC(tr, sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	klru, err := KLRUMRC(tr, 5, sizes, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if opt.Miss[i] > lru.Eval(s)+1e-9 {
			t.Fatalf("size %d: OPT %v above LRU %v", s, opt.Miss[i], lru.Eval(s))
		}
		if opt.Miss[i] > klru.Eval(s)+1e-9 {
			t.Fatalf("size %d: OPT %v above K-LRU %v", s, opt.Miss[i], klru.Eval(s))
		}
	}
}

func TestOPTLoopIsPerfectBeyondOne(t *testing.T) {
	// On a loop of length M, OPT with capacity c hits (c-1)/M of
	// steady-state references (keep c-1 of the loop resident, stream
	// the rest) — much better than LRU's zero.
	const m = 100
	g := workload.NewLoop(m, nil)
	tr, _ := trace.Collect(g, m*50)
	next := NextUses(tr)
	missHalf := OPTMissRatio(tr, m/2, next)
	// Expected steady state: 1 - (c-1)/M ≈ 0.51; allow cold start.
	if missHalf > 0.56 || missHalf < 0.45 {
		t.Fatalf("OPT loop miss at M/2 = %v, want ~0.51", missHalf)
	}
	lruMiss, _ := Run(NewLRU(ObjectCapacity(m/2)), tr.Reader())
	if lruMiss.MissRatio() < 0.99 {
		t.Fatalf("LRU loop miss = %v, want ~1", lruMiss.MissRatio())
	}
}

func TestOPTEdgeCases(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{{Key: 1}}}
	next := NextUses(tr)
	if OPTMissRatio(tr, 0, next) != 1 {
		t.Fatal("zero capacity must miss everything")
	}
	if OPTMissRatio(&trace.Trace{}, 10, nil) != 1 {
		t.Fatal("empty trace must report 1")
	}
}

func BenchmarkOPTMissRatio(b *testing.B) {
	g := workload.NewZipf(3, 1<<16, 1.0, nil, 0)
	tr, _ := trace.Collect(g, 1<<17)
	next := NextUses(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OPTMissRatio(tr, 1<<14, next)
	}
}
