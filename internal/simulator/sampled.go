package simulator

// Generalized random sampling-based replacement — the paper's future
// work (§7): "we will investigate other random-sampling policies
// which use other metrics, such as access frequency and object
// expiration time, as priority functions." This file provides the
// simulator side of that direction: a sampled-eviction cache with a
// pluggable priority function, covering
//
//   - recency (K-LRU, identical behaviour to KLRU),
//   - frequency (sampled LFU — Redis's allkeys-lfu),
//   - hyperbolic caching (Blankstein et al., ATC '17: frequency/age),
//   - expiration time (evict the sample's soonest-to-expire object,
//     Redis's volatile-ttl).
//
// On eviction the cache samples K resident objects (with replacement)
// and evicts the sample's lowest-priority object.

import (
	"krr/internal/trace"
	"krr/internal/xrand"
)

// EntryInfo is the per-object metadata visible to priority functions.
type EntryInfo struct {
	Key        uint64
	Size       uint32
	LastAccess uint64 // logical time of last touch
	InsertTime uint64 // logical time of insertion
	Freq       uint32 // access count since insertion (saturating)
	Expiry     uint64 // logical expiry time; 0 = never
}

// Priority scores an entry for eviction; among a sample, the entry
// with the LOWEST score is evicted.
type Priority interface {
	Score(e EntryInfo, now uint64) float64
	Name() string
}

// Recency evicts the least recently used of the sample — K-LRU.
type Recency struct{}

// Score returns the last-access time.
func (Recency) Score(e EntryInfo, _ uint64) float64 { return float64(e.LastAccess) }

// Name identifies the policy.
func (Recency) Name() string { return "lru" }

// Frequency evicts the least frequently used of the sample (sampled
// LFU). Decay > 0 ages the count by the entry's idle time, mirroring
// Redis's lfu-decay-time: score = freq / (1 + idle·Decay).
type Frequency struct {
	Decay float64
}

// Score returns the (optionally aged) access frequency.
func (f Frequency) Score(e EntryInfo, now uint64) float64 {
	s := float64(e.Freq)
	if f.Decay > 0 && now > e.LastAccess {
		s /= 1 + float64(now-e.LastAccess)*f.Decay
	}
	return s
}

// Name identifies the policy.
func (Frequency) Name() string { return "lfu" }

// Hyperbolic evicts by frequency-per-lifetime: freq / (now - insert).
// Unlike LFU it lets young objects prove themselves.
type Hyperbolic struct{}

// Score returns frequency divided by age.
func (Hyperbolic) Score(e EntryInfo, now uint64) float64 {
	age := float64(now-e.InsertTime) + 1
	return float64(e.Freq) / age
}

// Name identifies the policy.
func (Hyperbolic) Name() string { return "hyperbolic" }

// TTL evicts the sample's soonest-to-expire object; objects without
// an expiry are preferred-to-keep.
type TTL struct{}

// Score returns time-to-expiry (never-expiring objects score highest).
func (TTL) Score(e EntryInfo, now uint64) float64 {
	if e.Expiry == 0 {
		return 1e300
	}
	if e.Expiry <= now {
		return -1e300 // already expired: evict first
	}
	return float64(e.Expiry - now)
}

// Name identifies the policy.
func (TTL) Name() string { return "ttl" }

// SampledConfig assembles a Sampled cache.
type SampledConfig struct {
	Capacity Capacity
	// K is the eviction sample size (>= 1).
	K int
	// Priority ranks sampled entries (required).
	Priority Priority
	// TTLOf, when set, assigns a relative expiry (in logical time
	// units) to each inserted object; 0 means never expires.
	TTLOf func(key uint64) uint64
	// Seed fixes the sampling randomness.
	Seed uint64
}

// Sampled is a random sampling-based cache with a pluggable priority.
type Sampled struct {
	cfg SampledConfig
	src *xrand.Source

	entries []EntryInfo
	index   map[uint64]int32
	clock   uint64
	used    uint64
}

// NewSampled builds the cache.
func NewSampled(cfg SampledConfig) *Sampled {
	cfg.Capacity.validate()
	if cfg.K < 1 {
		panic("simulator: SampledConfig.K must be >= 1")
	}
	if cfg.Priority == nil {
		panic("simulator: SampledConfig.Priority is required")
	}
	return &Sampled{cfg: cfg, src: xrand.New(cfg.Seed), index: make(map[uint64]int32)}
}

// Len returns the number of resident objects.
func (c *Sampled) Len() int { return len(c.entries) }

// UsedBytes returns the resident byte total.
func (c *Sampled) UsedBytes() uint64 { return c.used }

// Contains reports residency.
func (c *Sampled) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Access processes one request.
func (c *Sampled) Access(req trace.Request) bool {
	c.clock++
	if req.Op == trace.OpDelete {
		if idx, ok := c.index[req.Key]; ok {
			c.removeAt(idx)
		}
		return false
	}
	if idx, ok := c.index[req.Key]; ok {
		e := &c.entries[idx]
		// Expired objects behave as misses (lazy expiry, like Redis).
		if e.Expiry != 0 && e.Expiry <= c.clock {
			c.removeAt(idx)
		} else {
			e.LastAccess = c.clock
			if e.Freq < ^uint32(0) {
				e.Freq++
			}
			if e.Size != req.Size {
				c.used += uint64(req.Size) - uint64(e.Size)
				e.Size = req.Size
				c.evictToFit(0)
			}
			return true
		}
	}
	if c.cfg.Capacity.Bytes > 0 && uint64(req.Size) > c.cfg.Capacity.Bytes {
		return false
	}
	c.evictToFit(uint64(req.Size))
	e := EntryInfo{
		Key: req.Key, Size: req.Size,
		LastAccess: c.clock, InsertTime: c.clock, Freq: 1,
	}
	if c.cfg.TTLOf != nil {
		if ttl := c.cfg.TTLOf(req.Key); ttl > 0 {
			e.Expiry = c.clock + ttl
		}
	}
	c.index[req.Key] = int32(len(c.entries))
	c.entries = append(c.entries, e)
	c.used += uint64(req.Size)
	return false
}

func (c *Sampled) evictToFit(incoming uint64) {
	if c.cfg.Capacity.Objects > 0 {
		for len(c.entries) > 0 && len(c.entries)+boolToInt(incoming > 0) > c.cfg.Capacity.Objects {
			c.evictOne()
		}
		return
	}
	for len(c.entries) > 0 && c.used+incoming > c.cfg.Capacity.Bytes {
		c.evictOne()
	}
}

func (c *Sampled) evictOne() {
	n := uint64(len(c.entries))
	victim := int32(c.src.Uint64n(n))
	best := c.cfg.Priority.Score(c.entries[victim], c.clock)
	for i := 1; i < c.cfg.K; i++ {
		cand := int32(c.src.Uint64n(n))
		if s := c.cfg.Priority.Score(c.entries[cand], c.clock); s < best {
			victim, best = cand, s
		}
	}
	c.removeAt(victim)
}

func (c *Sampled) removeAt(idx int32) {
	e := c.entries[idx]
	c.used -= uint64(e.Size)
	delete(c.index, e.Key)
	last := int32(len(c.entries) - 1)
	if idx != last {
		c.entries[idx] = c.entries[last]
		c.index[c.entries[idx].Key] = idx
	}
	c.entries = c.entries[:last]
}
