package simulator

// Belady's OPT (MIN) — the clairvoyant optimal replacement policy.
// OPT is the classic lower bound any MRC study is read against: a
// stack algorithm in Mattson's sense (§2.2, with priority = time of
// next reference), here implemented as a two-pass simulation — one
// backward pass to compute each request's next-use time, then a
// per-size simulation that evicts the resident object referenced
// farthest in the future.

import (
	"container/heap"

	"krr/internal/mrc"
	"krr/internal/trace"
)

// infiniteNextUse marks an object never referenced again.
const infiniteNextUse = int64(1) << 62

// NextUses computes, for each request index, the index of the next
// request to the same key (or infiniteNextUse). Delete requests sever
// the chain: the access before a delete has no next use.
func NextUses(tr *trace.Trace) []int64 {
	next := make([]int64, tr.Len())
	lastSeen := make(map[uint64]int64, 1024)
	for i := tr.Len() - 1; i >= 0; i-- {
		req := tr.Reqs[i]
		if req.Op == trace.OpDelete {
			// Whatever was seen after the delete is unreachable from
			// before it.
			delete(lastSeen, req.Key)
			next[i] = infiniteNextUse
			continue
		}
		if j, ok := lastSeen[req.Key]; ok {
			next[i] = j
		} else {
			next[i] = infiniteNextUse
		}
		lastSeen[req.Key] = int64(i)
	}
	return next
}

// optEntry is one resident object in the OPT cache's eviction heap.
type optEntry struct {
	key     uint64
	nextUse int64
}

// optHeap is a max-heap on next-use time (evict the farthest future).
type optHeap []optEntry

func (h optHeap) Len() int            { return len(h) }
func (h optHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// OPTMissRatio simulates Belady's optimal policy at one object
// capacity and returns the miss ratio. Entries in the heap may be
// stale (an object's next use advances when it is re-referenced); a
// popped victim whose recorded next use disagrees with the current
// table is discarded and the pop retried — the standard lazy-deletion
// trick, keeping the whole run O(N log N).
func OPTMissRatio(tr *trace.Trace, capacity int, next []int64) float64 {
	if capacity <= 0 {
		return 1
	}
	resident := make(map[uint64]int64, capacity) // key -> current next use
	h := &optHeap{}
	var hits, total int
	for i, req := range tr.Reqs {
		if req.Op == trace.OpDelete {
			delete(resident, req.Key)
			continue
		}
		total++
		nu := next[i]
		if _, ok := resident[req.Key]; ok {
			hits++
			resident[req.Key] = nu
			heap.Push(h, optEntry{key: req.Key, nextUse: nu})
			continue
		}
		// Miss. An object never used again need not be cached — OPT
		// bypasses it (this cannot increase misses).
		if nu == infiniteNextUse {
			continue
		}
		for len(resident) >= capacity {
			victim := heap.Pop(h).(optEntry)
			cur, ok := resident[victim.key]
			if !ok || cur != victim.nextUse {
				continue // stale heap entry
			}
			delete(resident, victim.key)
		}
		resident[req.Key] = nu
		heap.Push(h, optEntry{key: req.Key, nextUse: nu})
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(hits)/float64(total)
}

// OPTMRC sweeps Belady's policy across the given capacities in
// parallel and returns the optimal miss ratio curve.
func OPTMRC(tr *trace.Trace, sizes []uint64, workers int) *mrc.Curve {
	next := NextUses(tr)
	miss := make([]float64, len(sizes))
	sem := make(chan struct{}, workersOrDefault(workers))
	done := make(chan struct{})
	for i := range sizes {
		i := i
		go func() {
			sem <- struct{}{}
			miss[i] = OPTMissRatio(tr, int(sizes[i]), next)
			<-sem
			done <- struct{}{}
		}()
	}
	for range sizes {
		<-done
	}
	return mrc.FromPoints(sizes, miss)
}
