package simulator

import (
	"math"
	"testing"

	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestLRUBasicBehaviour(t *testing.T) {
	c := NewLRU(ObjectCapacity(2))
	r := func(k uint64) bool { return c.Access(trace.Request{Key: k, Size: 1}) }
	if r(1) || r(2) {
		t.Fatal("cold accesses must miss")
	}
	if !r(1) {
		t.Fatal("resident key must hit")
	}
	// Insert 3: evicts LRU key 2 (1 was just touched).
	if r(3) {
		t.Fatal("new key must miss")
	}
	if r(2) {
		t.Fatal("key 2 must have been evicted")
	}
	// Now 2 and 3 resident, 1 evicted.
	if r(1) {
		t.Fatal("key 1 must have been evicted")
	}
}

func TestLRUMatchesOlkenProfilerExactly(t *testing.T) {
	// A simulated LRU cache of size C hits exactly the references with
	// stack distance <= C — so the per-size simulation must agree with
	// the one-pass Olken curve at every size.
	g := workload.NewMSRLike(3, workload.MSRParams{
		Blocks: 2000, HotWeight: 0.5, SeqWeight: 0.3, LoopWeight: 0.2,
		LoopLen: 500, LoopRepeats: 2,
	})
	tr, _ := trace.Collect(g, 30000)

	prof := olken.NewProfiler(1)
	if err := prof.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	exact := prof.ObjectMRC(1)

	for _, size := range []uint64{10, 50, 200, 1000, 1900} {
		st, err := Run(NewLRU(ObjectCapacity(int(size))), tr.Reader())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.MissRatio(), exact.Eval(size); math.Abs(got-want) > 1e-12 {
			t.Fatalf("size %d: simulated %v, olken %v", size, got, want)
		}
	}
}

func TestKLRULargeKApproachesLRU(t *testing.T) {
	g := workload.NewZipf(5, 3000, 0.9, nil, 0)
	tr, _ := trace.Collect(g, 60000)
	const cap = 500
	lru, err := Run(NewLRU(ObjectCapacity(cap)), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	k64, err := Run(NewKLRU(ObjectCapacity(cap), 64, true, 7), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(lru.MissRatio() - k64.MissRatio()); diff > 0.02 {
		t.Fatalf("K=64 miss %v vs LRU %v: diff %v too large", k64.MissRatio(), lru.MissRatio(), diff)
	}
}

func TestKLRUOrderingByK(t *testing.T) {
	// On a loop trace LRU misses everything below the loop length but
	// random replacement (K=1) retains a useful fraction: miss ratio
	// at half the loop size must increase with K.
	g := workload.NewLoop(1000, nil)
	tr, _ := trace.Collect(g, 50000)
	miss := map[int]float64{}
	for _, k := range []int{1, 4, 32} {
		st, err := Run(NewKLRU(ObjectCapacity(500), k, true, 11), tr.Reader())
		if err != nil {
			t.Fatal(err)
		}
		miss[k] = st.MissRatio()
	}
	if !(miss[1] < miss[4] && miss[4] < miss[32]) {
		t.Fatalf("loop miss ratios not ordered by K: %v", miss)
	}
	lru, _ := Run(NewLRU(ObjectCapacity(500)), tr.Reader())
	if lru.MissRatio() < miss[32] {
		t.Fatalf("LRU (%v) must be the K->inf limit above K=32 (%v)", lru.MissRatio(), miss[32])
	}
}

// evictionFrequencies runs repeated single-eviction trials on a fresh
// cache of capacity cap and returns how often each recency rank
// (1 = most recent) was evicted.
func evictionFrequencies(t *testing.T, cap, k int, withReplacement bool, trials int) []float64 {
	t.Helper()
	counts := make([]int, cap+1)
	for trial := 0; trial < trials; trial++ {
		c := NewKLRU(ObjectCapacity(cap), k, withReplacement, uint64(trial)*2654435761+1)
		for key := uint64(1); key <= uint64(cap); key++ {
			c.Access(trace.Request{Key: key, Size: 1})
		}
		c.Access(trace.Request{Key: uint64(cap) + 1, Size: 1}) // forces one eviction
		for key := uint64(1); key <= uint64(cap); key++ {
			if !c.Contains(key) {
				rank := cap + 1 - int(key) // key cap is rank 1
				counts[rank]++
				break
			}
		}
	}
	freq := make([]float64, cap+1)
	for d := 1; d <= cap; d++ {
		freq[d] = float64(counts[d]) / float64(trials)
	}
	return freq
}

func TestProposition1EvictionProbability(t *testing.T) {
	// With placing back: Q(d) = (d^K - (d-1)^K) / C^K.
	const cap, k, trials = 10, 3, 60000
	freq := evictionFrequencies(t, cap, k, true, trials)
	ck := math.Pow(cap, k)
	for d := 1; d <= cap; d++ {
		want := (math.Pow(float64(d), k) - math.Pow(float64(d-1), k)) / ck
		if math.Abs(freq[d]-want) > 0.01 {
			t.Fatalf("rank %d: empirical %v, Proposition 1 %v", d, freq[d], want)
		}
	}
}

func TestProposition2EvictionProbability(t *testing.T) {
	// Without placing back: ranks below K are never evicted and
	// Q(d) = C(d-1,K-1)/C(C,K).
	const cap, k, trials = 10, 3, 60000
	freq := evictionFrequencies(t, cap, k, false, trials)
	binom := func(n, r int) float64 {
		if r < 0 || r > n {
			return 0
		}
		out := 1.0
		for i := 0; i < r; i++ {
			out = out * float64(n-i) / float64(i+1)
		}
		return out
	}
	for d := 1; d <= cap; d++ {
		want := binom(d-1, k-1) / binom(cap, k)
		if d < k && freq[d] != 0 {
			t.Fatalf("rank %d < K must never be evicted, got %v", d, freq[d])
		}
		if math.Abs(freq[d]-want) > 0.01 {
			t.Fatalf("rank %d: empirical %v, Proposition 2 %v", d, freq[d], want)
		}
	}
}

func TestKLRUByteCapacity(t *testing.T) {
	c := NewKLRU(ByteCapacity(1000), 5, true, 1)
	src := xrand.New(2)
	for i := 0; i < 10000; i++ {
		c.Access(trace.Request{Key: src.Uint64n(500), Size: uint32(1 + src.Uint64n(300))})
		if c.UsedBytes() > 1000 {
			t.Fatalf("step %d: used %d exceeds capacity", i, c.UsedBytes())
		}
	}
	if c.Len() == 0 {
		t.Fatal("cache ended empty")
	}
}

func TestOversizedObjectBypasses(t *testing.T) {
	for _, c := range []Cache{
		NewKLRU(ByteCapacity(100), 5, true, 1),
		NewLRU(ByteCapacity(100)),
	} {
		if c.Access(trace.Request{Key: 1, Size: 500}) {
			t.Fatal("oversized insert cannot hit")
		}
		if c.Len() != 0 {
			t.Fatal("oversized object must bypass the cache")
		}
	}
}

func TestSizeGrowthTriggersEviction(t *testing.T) {
	c := NewLRU(ByteCapacity(100))
	c.Access(trace.Request{Key: 1, Size: 40})
	c.Access(trace.Request{Key: 2, Size: 40})
	// Grow key 2 to 90: key 1 must be evicted.
	if !c.Access(trace.Request{Key: 2, Size: 90}) {
		t.Fatal("resident key must hit on size change")
	}
	if c.Contains(1) {
		t.Fatal("growth must evict the LRU entry")
	}
	if c.UsedBytes() != 90 {
		t.Fatalf("used = %d", c.UsedBytes())
	}
}

func TestDeleteSemantics(t *testing.T) {
	for _, c := range []Cache{
		NewKLRU(ObjectCapacity(10), 3, true, 1),
		NewLRU(ObjectCapacity(10)),
	} {
		c.Access(trace.Request{Key: 1, Size: 1})
		if c.Access(trace.Request{Key: 1, Op: trace.OpDelete}) {
			t.Fatal("delete must not report a hit")
		}
		if c.Len() != 0 {
			t.Fatal("delete must remove the object")
		}
		if c.Access(trace.Request{Key: 1, Size: 1}) {
			t.Fatal("re-access after delete must miss")
		}
	}
}

func TestStatsMissRatio(t *testing.T) {
	if (Stats{}).MissRatio() != 1 {
		t.Fatal("empty stats must report miss ratio 1")
	}
	s := Stats{Hits: 3, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Fatalf("miss ratio %v", s.MissRatio())
	}
}

func TestRunCountsDeletesSeparately(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Size: 1, Op: trace.OpGet},
		{Key: 1, Size: 1, Op: trace.OpDelete},
		{Key: 1, Size: 1, Op: trace.OpGet},
	}}
	st, err := Run(NewLRU(ObjectCapacity(4)), tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats %+v: deletes must not be counted", st)
	}
}

func TestMRCParallelSweep(t *testing.T) {
	g := workload.NewZipf(9, 2000, 1.0, nil, 0)
	tr, _ := trace.Collect(g, 40000)
	sizes := mrc.EvenSizes(2000, 10)
	curve, err := KLRUMRC(tr, 5, sizes, 13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if curve.Len() != len(sizes) {
		t.Fatalf("curve has %d points, want %d", curve.Len(), len(sizes))
	}
	// Roughly monotone: allow small simulation noise.
	for i := 1; i < curve.Len(); i++ {
		if curve.Miss[i] > curve.Miss[i-1]+0.03 {
			t.Fatalf("curve strongly non-monotone at %d: %v -> %v", i, curve.Miss[i-1], curve.Miss[i])
		}
	}
	if curve.Miss[0] <= curve.Miss[curve.Len()-1] {
		t.Fatal("bigger caches must miss less")
	}
}

func TestCapacityValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLRU(Capacity{}) },
		func() { NewLRU(Capacity{Objects: 1, Bytes: 1}) },
		func() { NewKLRU(ObjectCapacity(1), 0, true, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestKLRUWithoutReplacementFullScanPath(t *testing.T) {
	// k >= resident count exercises the full-scan fallback and must
	// evict the exact LRU victim.
	c := NewKLRU(ObjectCapacity(3), 10, false, 1)
	for k := uint64(1); k <= 3; k++ {
		c.Access(trace.Request{Key: k, Size: 1})
	}
	c.Access(trace.Request{Key: 4, Size: 1})
	if c.Contains(1) {
		t.Fatal("k >= n must evict the global LRU (key 1)")
	}
}

func BenchmarkKLRUAccess(b *testing.B) {
	c := NewKLRU(ObjectCapacity(1<<14), 5, true, 1)
	g := workload.NewZipf(3, 1<<16, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(reqs[i&(1<<16-1)])
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	c := NewLRU(ObjectCapacity(1 << 14))
	g := workload.NewZipf(3, 1<<16, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(reqs[i&(1<<16-1)])
	}
}
