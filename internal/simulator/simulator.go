// Package simulator provides the ground-truth cache simulators the
// paper validates KRR against (§5.1): an exact-LRU cache, the random
// sampling-based K-LRU cache (with and without "placing back"), and a
// parallel multi-size sweep that turns per-size simulations into an
// "actual" miss ratio curve via interpolation.
//
// Capacities are expressed either in objects (fixed-size experiments)
// or in bytes (variable-object-size experiments, §5.4).
package simulator

import (
	"errors"
	"io"

	"krr/internal/mrc"
	"krr/internal/parallel"
	"krr/internal/trace"
	"krr/internal/xrand"
)

// Cache is a fixed-capacity cache simulator. Access processes one
// request and reports whether it hit. Delete requests never count as
// hits or misses.
type Cache interface {
	Access(req trace.Request) (hit bool)
	// Len returns the number of resident objects.
	Len() int
	// UsedBytes returns the total resident byte size.
	UsedBytes() uint64
}

// Capacity expresses a cache limit in objects or bytes (exactly one
// must be set).
type Capacity struct {
	Objects int
	Bytes   uint64
}

// ObjectCapacity returns an object-count capacity.
func ObjectCapacity(n int) Capacity { return Capacity{Objects: n} }

// ByteCapacity returns a byte capacity.
func ByteCapacity(b uint64) Capacity { return Capacity{Bytes: b} }

func (c Capacity) validate() {
	if (c.Objects <= 0) == (c.Bytes == 0) {
		panic("simulator: capacity must set exactly one of Objects or Bytes")
	}
}

type entry struct {
	key  uint64
	size uint32
	last uint64 // logical last-access time
}

// KLRU is the random sampling-based LRU cache: on eviction it samples
// K resident objects and evicts the least recently used of the sample
// (§3). WithReplacement selects "placing back" sampling (the Redis
// default, Proposition 1) versus distinct-sample eviction
// (Proposition 2).
type KLRU struct {
	cap             Capacity
	k               int
	withReplacement bool
	src             *xrand.Source

	entries []entry
	index   map[uint64]int32
	clock   uint64
	used    uint64
}

// NewKLRU builds a K-LRU cache. k must be >= 1.
func NewKLRU(capacity Capacity, k int, withReplacement bool, seed uint64) *KLRU {
	capacity.validate()
	if k < 1 {
		panic("simulator: k must be >= 1")
	}
	return &KLRU{
		cap:             capacity,
		k:               k,
		withReplacement: withReplacement,
		src:             xrand.New(seed),
		index:           make(map[uint64]int32),
	}
}

// Len returns the number of resident objects.
func (c *KLRU) Len() int { return len(c.entries) }

// K returns the current eviction sampling size.
func (c *KLRU) K() int { return c.k }

// SetSamplingSize reconfigures the eviction sampling size online —
// the flexibility random sampling buys over rigid ordering structures
// (§1), exploited by the DLRU controller. k must be >= 1.
func (c *KLRU) SetSamplingSize(k int) {
	if k < 1 {
		panic("simulator: k must be >= 1")
	}
	c.k = k
}

// UsedBytes returns the resident byte total.
func (c *KLRU) UsedBytes() uint64 { return c.used }

// Contains reports whether key is resident.
func (c *KLRU) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Access processes one request.
func (c *KLRU) Access(req trace.Request) bool {
	c.clock++
	if req.Op == trace.OpDelete {
		if idx, ok := c.index[req.Key]; ok {
			c.removeAt(idx)
		}
		return false
	}
	if idx, ok := c.index[req.Key]; ok {
		e := &c.entries[idx]
		e.last = c.clock
		if e.size != req.Size {
			c.used += uint64(req.Size) - uint64(e.size)
			e.size = req.Size
			c.evictToFit(0)
		}
		return true
	}
	// Miss. Objects that cannot fit at all bypass the cache.
	if c.cap.Bytes > 0 && uint64(req.Size) > c.cap.Bytes {
		return false
	}
	c.evictToFit(uint64(req.Size))
	c.index[req.Key] = int32(len(c.entries))
	c.entries = append(c.entries, entry{key: req.Key, size: req.Size, last: c.clock})
	c.used += uint64(req.Size)
	return false
}

// evictToFit evicts victims until an incoming object of the given size
// fits the capacity.
func (c *KLRU) evictToFit(incoming uint64) {
	if c.cap.Objects > 0 {
		for len(c.entries) > 0 && len(c.entries)+boolToInt(incoming > 0) > c.cap.Objects {
			c.evictOne()
		}
		return
	}
	for len(c.entries) > 0 && c.used+incoming > c.cap.Bytes {
		c.evictOne()
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// evictOne removes the least recently used object among a random
// sample of K residents.
func (c *KLRU) evictOne() {
	n := len(c.entries)
	victim := int32(c.src.Uint64n(uint64(n)))
	if c.withReplacement {
		for i := 1; i < c.k; i++ {
			cand := int32(c.src.Uint64n(uint64(n)))
			if c.entries[cand].last < c.entries[victim].last {
				victim = cand
			}
		}
	} else {
		// Distinct sample via rejection: fine for k << n; fall back to
		// full scan when k >= n.
		if c.k >= n {
			for i := 0; i < n; i++ {
				if c.entries[i].last < c.entries[victim].last {
					victim = int32(i)
				}
			}
		} else {
			seen := make(map[int32]struct{}, c.k)
			seen[victim] = struct{}{}
			for len(seen) < c.k {
				cand := int32(c.src.Uint64n(uint64(n)))
				if _, dup := seen[cand]; dup {
					continue
				}
				seen[cand] = struct{}{}
				if c.entries[cand].last < c.entries[victim].last {
					victim = cand
				}
			}
		}
	}
	c.removeAt(victim)
}

// removeAt deletes the entry at idx by swapping the final entry in.
func (c *KLRU) removeAt(idx int32) {
	e := c.entries[idx]
	c.used -= uint64(e.size)
	delete(c.index, e.key)
	last := int32(len(c.entries) - 1)
	if idx != last {
		c.entries[idx] = c.entries[last]
		c.index[c.entries[idx].key] = idx
	}
	c.entries = c.entries[:last]
}

// lruNode is a slice-backed doubly-linked list node.
type lruNode struct {
	key        uint64
	size       uint32
	prev, next int32
}

// LRU is an exact least-recently-used cache built on an intrusive
// list: O(1) per access.
type LRU struct {
	cap   Capacity
	nodes []lruNode
	free  []int32
	index map[uint64]int32
	head  int32 // most recently used; -1 when empty
	tail  int32 // least recently used; -1 when empty
	used  uint64
}

// NewLRU builds an exact LRU cache.
func NewLRU(capacity Capacity) *LRU {
	capacity.validate()
	return &LRU{cap: capacity, index: make(map[uint64]int32), head: -1, tail: -1}
}

// Len returns the number of resident objects.
func (c *LRU) Len() int { return len(c.index) }

// UsedBytes returns the resident byte total.
func (c *LRU) UsedBytes() uint64 { return c.used }

// Contains reports whether key is resident.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

func (c *LRU) unlink(idx int32) {
	n := c.nodes[idx]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *LRU) pushFront(idx int32) {
	c.nodes[idx].prev = -1
	c.nodes[idx].next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

// Access processes one request.
func (c *LRU) Access(req trace.Request) bool {
	if req.Op == trace.OpDelete {
		if idx, ok := c.index[req.Key]; ok {
			c.remove(idx)
		}
		return false
	}
	if idx, ok := c.index[req.Key]; ok {
		c.unlink(idx)
		c.pushFront(idx)
		if c.nodes[idx].size != req.Size {
			c.used += uint64(req.Size) - uint64(c.nodes[idx].size)
			c.nodes[idx].size = req.Size
			c.evictToFit(0, idx)
		}
		return true
	}
	if c.cap.Bytes > 0 && uint64(req.Size) > c.cap.Bytes {
		return false
	}
	var idx int32
	if len(c.free) > 0 {
		idx = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.nodes[idx] = lruNode{key: req.Key, size: req.Size}
	} else {
		idx = int32(len(c.nodes))
		c.nodes = append(c.nodes, lruNode{key: req.Key, size: req.Size})
	}
	c.evictToFit(uint64(req.Size), -1)
	c.pushFront(idx)
	c.index[req.Key] = idx
	c.used += uint64(req.Size)
	return false
}

// evictToFit evicts from the tail; keep protects one node from
// eviction (used when a resident object grows).
func (c *LRU) evictToFit(incoming uint64, keep int32) {
	if c.cap.Objects > 0 {
		for len(c.index) > 0 && len(c.index)+boolToInt(incoming > 0) > c.cap.Objects {
			if c.tail == keep {
				break
			}
			c.remove(c.tail)
		}
		return
	}
	for len(c.index) > 0 && c.used+incoming > c.cap.Bytes {
		if c.tail == keep {
			break
		}
		c.remove(c.tail)
	}
}

func (c *LRU) remove(idx int32) {
	c.unlink(idx)
	c.used -= uint64(c.nodes[idx].size)
	delete(c.index, c.nodes[idx].key)
	c.free = append(c.free, idx)
}

// Stats accumulates hit/miss counts for one simulation run.
type Stats struct {
	Hits, Misses uint64
}

// MissRatio returns misses/(hits+misses), or 1 for an empty run.
func (s Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 1
	}
	return float64(s.Misses) / float64(total)
}

// Run replays a reader against a cache and accumulates stats. Delete
// requests are applied but not counted.
func Run(c Cache, r trace.Reader) (Stats, error) {
	var st Stats
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if req.Op == trace.OpDelete {
			c.Access(req)
			continue
		}
		if c.Access(req) {
			st.Hits++
		} else {
			st.Misses++
		}
	}
}

// MRC simulates the trace at each capacity in parallel and returns the
// linearly-interpolated miss ratio curve — the paper's ground truth
// procedure (§5.1). mkCache builds a fresh cache per capacity; sizes
// is in the same unit (objects or bytes) the built caches use.
func MRC(tr *trace.Trace, sizes []uint64, workers int, mkCache func(capacity uint64) Cache) (*mrc.Curve, error) {
	miss := make([]float64, len(sizes))
	var g parallel.Group
	sem := make(chan struct{}, workersOrDefault(workers))
	for i, size := range sizes {
		i, size := i, size
		g.Go(func() error {
			sem <- struct{}{}
			defer func() { <-sem }()
			st, err := Run(mkCache(size), tr.Reader())
			if err != nil {
				return err
			}
			miss[i] = st.MissRatio()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return mrc.FromPoints(sizes, miss), nil
}

func workersOrDefault(w int) int {
	if w <= 0 {
		return 8
	}
	return w
}

// KLRUMRC is the common case: ground-truth K-LRU curve over
// object-count capacities.
func KLRUMRC(tr *trace.Trace, k int, sizes []uint64, seed uint64, workers int) (*mrc.Curve, error) {
	return MRC(tr, sizes, workers, func(capacity uint64) Cache {
		return NewKLRU(ObjectCapacity(int(capacity)), k, true, seed+capacity)
	})
}

// KLRUByteMRC is the variable-object-size ground truth: K-LRU over
// byte capacities.
func KLRUByteMRC(tr *trace.Trace, k int, sizes []uint64, seed uint64, workers int) (*mrc.Curve, error) {
	return MRC(tr, sizes, workers, func(capacity uint64) Cache {
		return NewKLRU(ByteCapacity(capacity), k, true, seed+capacity)
	})
}

// LRUMRC is the simulated exact-LRU curve (cross-validates the Olken
// one-pass profiler).
func LRUMRC(tr *trace.Trace, sizes []uint64, workers int) (*mrc.Curve, error) {
	return MRC(tr, sizes, workers, func(capacity uint64) Cache {
		return NewLRU(ObjectCapacity(int(capacity)))
	})
}
