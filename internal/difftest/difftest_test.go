package difftest

import (
	"fmt"
	"testing"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/trace"
)

// failPredicate rebuilds the whole differential check for one model
// on a candidate trace, for the shrinker: true when the model still
// violates its envelope or an invariant. A fresh Runner per call
// keeps the reference cache from serving curves of a different
// candidate.
func failPredicate(info model.Info, trial Trial, bytes bool) func(*trace.Trace) bool {
	return func(tr *trace.Trace) bool {
		cand := trial
		cand.Trace = tr
		r := NewRunner(0)
		var res Result
		if bytes {
			res = r.CheckModelBytes(info, cand)
		} else {
			res = r.CheckModel(info, cand)
		}
		return !res.Pass()
	}
}

// reportFailure shrinks the failing trace, writes it to the corpus,
// and fails the test with the replay path.
func reportFailure(t *testing.T, info model.Info, trial Trial, res Result, bytes bool) {
	t.Helper()
	path, err := WriteCorpus(CorpusDir, res.Model+"-"+res.Trial+"-"+res.Granular,
		trial.Trace, failPredicate(info, trial, bytes))
	if err != nil {
		t.Errorf("%s (corpus write failed: %v)", res, err)
		return
	}
	t.Errorf("%s (shrunk repro: %s)", res, path)
}

// TestDifferentialEnvelopes is the heart of the harness: every
// registered model, on every fast trial, must stay within its
// declared MAE envelope of the exact simulation and satisfy the curve
// invariants. Failures are shrunk and persisted under corpus/.
func TestDifferentialEnvelopes(t *testing.T) {
	runner := NewRunner(0)
	trials := FastTrials()
	for _, trial := range trials {
		trial := trial
		for _, info := range model.All() {
			info := info
			t.Run(info.Name+"/"+trial.Name, func(t *testing.T) {
				res := runner.CheckModel(info, trial)
				t.Logf("%s", res)
				if !res.Pass() {
					reportFailure(t, info, trial, res, false)
				}
				if trial.Bytes && info.Caps.Has(model.CapBytes) && byteComparable(info.Target) {
					bres := runner.CheckModelBytes(info, trial)
					t.Logf("%s", bres)
					if !bres.Pass() {
						reportFailure(t, info, trial, bres, true)
					}
				}
			})
		}
	}
}

// TestDifferentialBucketRatios sweeps the krr-bucket model's bucket
// growth ratio across its practical range and holds each point to the
// ratio-dependent declared envelope — the accuracy side of the
// bucketization accuracy/cost tradeoff, pinned as a function rather
// than at the default alone.
func TestDifferentialBucketRatios(t *testing.T) {
	runner := NewRunner(0)
	for _, trial := range FastTrials() {
		trial := trial
		for _, ratio := range []float64{1.25, 1.5, 2} {
			ratio := ratio
			t.Run(fmt.Sprintf("%s/ratio=%v", trial.Name, ratio), func(t *testing.T) {
				ref, sizes, err := runner.Reference("klru", trial)
				if err != nil {
					t.Fatal(err)
				}
				m, err := model.New("krr-bucket", model.Options{
					K: trial.K, Seed: trial.Seed, BucketRatio: ratio,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := model.ProcessAll(m, trial.Trace.Reader()); err != nil {
					t.Fatal(err)
				}
				curve := m.ObjectMRC()
				if err := CheckCurve(curve); err != nil {
					t.Fatalf("invariant: %v", err)
				}
				mae := mrc.MAE(ref, curve, sizes)
				env := BucketEnvelope(ratio)
				t.Logf("ratio %v: MAE = %.4f (envelope %.4f)", ratio, mae, env)
				if mae > env {
					t.Errorf("krr-bucket ratio %v on %s: MAE %.4f > envelope %.4f",
						ratio, trial.Name, mae, env)
				}
			})
		}
	}
}

// TestDifferentialCoversRegistry pins the harness to the registry: a
// newly registered model with no reference simulator for its target
// must fail loudly here instead of silently skipping differential
// coverage.
func TestDifferentialCoversRegistry(t *testing.T) {
	runner := NewRunner(0)
	trial := FastTrials()[0]
	for _, info := range model.All() {
		if _, _, err := runner.Reference(info.Target, trial); err != nil {
			t.Errorf("model %s: no ground-truth simulator for target %q: %v",
				info.Name, info.Target, err)
		}
	}
}

// TestCorpusRegressions replays every shrunk failing trace ever
// written to corpus/ through the full differential check, so fixed
// bugs stay fixed.
func TestCorpusRegressions(t *testing.T) {
	corpus, err := LoadCorpus(CorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range corpus {
		name, tr := name, tr
		t.Run(name, func(t *testing.T) {
			trial := Trial{Name: "corpus-" + name, Trace: tr, K: 5, Seed: 1, Points: DefaultPoints}
			runner := NewRunner(0)
			for _, res := range runner.RunAll([]Trial{trial}) {
				if !res.Pass() {
					t.Errorf("%s", res)
				}
			}
		})
	}
}

// TestShrink checks the delta-debugging minimizer on a synthetic
// predicate: failure requires two specific keys to co-occur, and the
// shrunk trace must contain little else.
func TestShrink(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 1000; i++ {
		tr.Append(trace.Request{Key: uint64(i) + 100})
	}
	tr.Reqs[137].Key = 7
	tr.Reqs[803].Key = 9
	fails := func(c *trace.Trace) bool {
		has7, has9 := false, false
		for _, r := range c.Reqs {
			if r.Key == 7 {
				has7 = true
			}
			if r.Key == 9 {
				has9 = true
			}
		}
		return has7 && has9
	}
	small := Shrink(tr, fails)
	if !fails(small) {
		t.Fatal("shrunk trace no longer fails")
	}
	if small.Len() > 4 {
		t.Fatalf("shrunk to %d requests, want <= 4", small.Len())
	}
}

// TestCheckCurveRejects covers the invariant checker itself.
func TestCheckCurveRejects(t *testing.T) {
	bad := map[string]*mrc.Curve{
		"nil":            nil,
		"empty":          {},
		"length":         {Sizes: []uint64{1, 2}, Miss: []float64{0.5}},
		"not-increasing": {Sizes: []uint64{2, 2}, Miss: []float64{0.5, 0.4}},
		"out-of-range":   {Sizes: []uint64{1}, Miss: []float64{1.5}},
		"non-monotone":   {Sizes: []uint64{1, 2}, Miss: []float64{0.3, 0.6}},
	}
	for name, c := range bad {
		if err := CheckCurve(c); err == nil {
			t.Errorf("%s: CheckCurve accepted an invalid curve", name)
		}
	}
	good := &mrc.Curve{Sizes: []uint64{0, 1, 5}, Miss: []float64{1, 0.5, 0.5}}
	if err := CheckCurve(good); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
}
