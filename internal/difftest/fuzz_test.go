package difftest

import (
	"bytes"
	"testing"

	"krr/internal/trace"
	"krr/internal/workload"
)

// fuzzModels are the techniques cheap enough to run on every fuzz
// input; between them they exercise the tree stack, the KRR array
// core, both NSP engines, and the AET sampling path.
var fuzzModels = []string{"olken", "krr", "lfu", "mru", "aet"}

// fuzzMaxReqs caps decoded trace length so the fuzzer explores many
// inputs instead of grinding a few huge ones.
const fuzzMaxReqs = 2048

func fuzzSeedTrace(n int) []byte {
	g := workload.NewZipf(13, 64, 1.0, nil, 0.1)
	tr, err := trace.Collect(g, n)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzModelProcess drives arbitrary decoded traces through the cheap
// models and holds every resulting curve to the structural
// invariants: no Process loop may panic, loop forever, or emit a
// malformed curve, whatever the request stream — including deletes of
// absent keys, zero sizes, and pathological key patterns the binary
// codec happens to decode.
func FuzzModelProcess(f *testing.F) {
	f.Add(fuzzSeedTrace(50))
	f.Add(fuzzSeedTrace(400))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil || tr.Len() == 0 {
			return
		}
		if tr.Len() > fuzzMaxReqs {
			tr.Reqs = tr.Reqs[:fuzzMaxReqs]
		}
		trial := Trial{Name: "fuzz", Trace: tr, K: 3, Seed: 1, Points: DefaultPoints}
		for _, name := range fuzzModels {
			curve, err := BuildCurve(name, trial, false)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := CheckCurve(curve); err != nil {
				t.Fatalf("%s: invariant violated: %v", name, err)
			}
		}
	})
}
