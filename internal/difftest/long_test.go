//go:build difftest

package difftest

import (
	"os"
	"strconv"
	"testing"

	"krr/internal/model"
)

// TestDifferentialRandomSweep is the long randomized mode, built only
// with -tags difftest:
//
//	go test -tags difftest -run RandomSweep ./internal/difftest/
//
// Each run draws DIFFTEST_TRIALS randomized workloads (default 6)
// from DIFFTEST_SEED (default 1; vary it across runs to explore fresh
// traces) and holds every registered model to the same envelopes as
// the fast suite. Failing traces are shrunk into corpus/, where the
// fast suite replays them forever after.
func TestDifferentialRandomSweep(t *testing.T) {
	seed := uint64(1)
	if v := os.Getenv("DIFFTEST_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("DIFFTEST_SEED: %v", err)
		}
		seed = n
	}
	n := 6
	if v := os.Getenv("DIFFTEST_TRIALS"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m <= 0 {
			t.Fatalf("DIFFTEST_TRIALS: %q", v)
		}
		n = m
	}
	trials := RandomTrials(seed, n)
	byName := make(map[string]model.Info)
	for _, info := range model.All() {
		byName[info.Name] = info
	}
	byTrial := make(map[string]Trial)
	for _, trial := range trials {
		byTrial[trial.Name] = trial
	}
	runner := NewRunner(0)
	for _, res := range runner.RunAll(trials) {
		t.Logf("%s", res)
		if !res.Pass() {
			reportFailure(t, byName[res.Model], byTrial[res.Trial], res, res.Granular == "bytes")
		}
	}
}
