package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"krr/internal/trace"
)

// maxShrinkEvals bounds the number of predicate evaluations one
// Shrink call may spend. Differential predicates re-run full
// reference simulations, so an unbounded ddmin tail (one evaluation
// per request at the finest granularity) can dwarf the sweep itself;
// hitting the budget returns the best reduction found so far, which
// is still a valid failing trace.
const maxShrinkEvals = 500

// Shrink minimizes a failing trace with delta debugging: repeatedly
// try removing chunks (halves, then quarters, ...) and keep any
// reduced trace on which fails still returns true. The returned trace
// is 1-minimal at the final granularity — removing any single tried
// chunk makes the failure disappear — unless the evaluation budget
// runs out first. fails must be deterministic; randomized checks
// should fix their seeds before shrinking.
func Shrink(tr *trace.Trace, fails func(*trace.Trace) bool) *trace.Trace {
	evals := 0
	budget := func(c *trace.Trace) bool {
		if evals >= maxShrinkEvals {
			return false
		}
		evals++
		return fails(c)
	}
	cur := tr.Reqs
	chunks := 2
	for len(cur) > 1 && evals < maxShrinkEvals {
		size := (len(cur) + chunks - 1) / chunks
		reduced := false
		for start := 0; start < len(cur); start += size {
			end := start + size
			if end > len(cur) {
				end = len(cur)
			}
			// Candidate: cur with [start, end) removed.
			cand := make([]trace.Request, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) == 0 {
				continue
			}
			if budget(&trace.Trace{Reqs: cand}) {
				cur = cand
				reduced = true
				break
			}
		}
		if reduced {
			chunks = 2
			continue
		}
		if size <= 1 {
			break
		}
		chunks *= 2
		if chunks > len(cur) {
			chunks = len(cur)
		}
	}
	return &trace.Trace{Reqs: cur}
}

// CorpusDir is the package-relative directory shrunk failing traces
// are written to; TestCorpusRegressions replays every file in it.
const CorpusDir = "corpus"

// corpusName sanitizes a check label into a corpus file name.
func corpusName(label string) string {
	r := strings.NewReplacer("/", "-", " ", "-", ":", "-", "=", "-")
	return r.Replace(label) + ".krt"
}

// WriteCorpus shrinks a failing trace and stores it as a replayable
// binary trace under dir, returning the file path. Shrinking uses the
// supplied predicate; pass nil to store the trace unshrunk.
func WriteCorpus(dir, label string, tr *trace.Trace, fails func(*trace.Trace) bool) (string, error) {
	if fails != nil {
		tr = Shrink(tr, fails)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, corpusName(label))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := trace.WriteBinary(f, tr); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus reads every corpus trace under dir, keyed by file name.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) (map[string]*trace.Trace, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]*trace.Trace)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".krt") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		tr, err := trace.ReadBinary(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("difftest: corpus %s: %w", e.Name(), err)
		}
		out[e.Name()] = tr
	}
	return out, nil
}
