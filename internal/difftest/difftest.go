// Package difftest is the differential + metamorphic correctness
// harness for every MRC technique behind the internal/model registry.
//
// The oracle is the paper's own evaluation method (§5.3): brute-force
// simulation at a sweep of cache sizes is ground truth, and a model is
// correct when its one-pass curve stays within a per-model mean
// absolute error envelope of the simulated curve. SHARDS (FAST '15)
// and AET (ATC '16) are validated the same way in their own papers, so
// one harness covers every registered technique:
//
//   - klru-target models are checked against the K-LRU simulator,
//   - lru-target models against the exact-LRU simulator,
//   - lfu/mru-target models against the exact-priority simulator,
//   - CapBytes models additionally against the byte-capacity sweeps.
//
// Beyond the differential check, every curve is held to structural
// invariants (CheckCurve) and the models to metamorphic properties
// (see the _test files): trace-prefix consistency, seed-independence
// of deterministic techniques, and invariance under key relabeling.
//
// When a check fails on a randomized trace, the harness shrinks the
// trace by delta debugging (Shrink) and writes a replayable corpus
// file under corpus/; TestCorpusRegressions replays every corpus file
// on every run, so once-found bugs stay found.
package difftest

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/nsp"
	"krr/internal/simulator"
	"krr/internal/trace"
)

// Trial is one randomized workload the harness drives every model
// over: a materialized trace plus the knobs the reference simulations
// need. Trials are deterministic in their seed.
type Trial struct {
	Name  string
	Trace *trace.Trace
	// K is the K-LRU sampling size used for klru-target models and
	// their reference simulation.
	K int
	// Seed seeds the reference K-LRU simulation and every model build.
	Seed uint64
	// Points is the number of evaluation cache sizes (the paper uses
	// 25-40, §5.3).
	Points int
	// Bytes additionally checks byte-granularity curves of CapBytes
	// models against byte-capacity simulations (requires a
	// variable-size trace to be meaningful).
	Bytes bool
}

// Result is one (model, trial) differential comparison.
type Result struct {
	Model    string
	Trial    string
	Granular string // "objects" or "bytes"
	MAE      float64
	Envelope float64
	// Err reports a structural failure (invariant violation, build
	// error); MAE is meaningless when set.
	Err error
}

// Pass reports whether the comparison stayed inside the envelope with
// no structural failure.
func (r Result) Pass() bool { return r.Err == nil && r.MAE <= r.Envelope }

// String renders one row of the self-test report.
func (r Result) String() string {
	status := "ok"
	switch {
	case r.Err != nil:
		status = "FAIL: " + r.Err.Error()
	case !r.Pass():
		status = "FAIL: over envelope"
	}
	return fmt.Sprintf("%-18s %-12s %-7s mae=%.4f env=%.4f  %s",
		r.Model, r.Trial, r.Granular, r.MAE, r.Envelope, status)
}

// refKey identifies one cached reference curve.
type refKey struct {
	target string
	trial  string
	bytes  bool
}

// Runner drives models against cached reference simulations. The
// zero value is not usable; call NewRunner.
type Runner struct {
	refs    map[refKey]*mrc.Curve
	sizes   map[refKey][]uint64
	workers int
}

// NewRunner returns a Runner with an empty reference cache. workers
// bounds the parallel simulation fan-out (0 = default).
func NewRunner(workers int) *Runner {
	return &Runner{
		refs:    make(map[refKey]*mrc.Curve),
		sizes:   make(map[refKey][]uint64),
		workers: workers,
	}
}

// evalSizes returns the object-granularity evaluation sizes for a
// trial: Points sizes evenly covering (0, distinct objects].
func evalSizes(trial Trial) ([]uint64, error) {
	sum, err := trace.Summarize(trial.Trace.Reader())
	if err != nil {
		return nil, err
	}
	return mrc.EvenSizes(uint64(sum.DistinctObjects), trial.Points), nil
}

// byteSizes returns the byte-granularity evaluation sizes.
func byteSizes(trial Trial) ([]uint64, error) {
	sum, err := trace.Summarize(trial.Trace.Reader())
	if err != nil {
		return nil, err
	}
	return mrc.EvenSizes(sum.WSSBytes, trial.Points), nil
}

// Reference returns (building and caching on first use) the simulated
// ground-truth curve for one replacement-policy target on a trial,
// along with the evaluation sizes.
func (r *Runner) Reference(target string, trial Trial) (*mrc.Curve, []uint64, error) {
	key := refKey{target: target, trial: trial.Name}
	if c, ok := r.refs[key]; ok {
		return c, r.sizes[key], nil
	}
	sizes, err := evalSizes(trial)
	if err != nil {
		return nil, nil, err
	}
	var curve *mrc.Curve
	switch target {
	case "lru":
		curve, err = simulator.LRUMRC(trial.Trace, sizes, r.workers)
	case "klru":
		curve, err = simulator.KLRUMRC(trial.Trace, trial.K, sizes, trial.Seed, r.workers)
	case "lfu":
		curve, err = simulator.PriorityMRC(trial.Trace, nsp.LFU{}, sizes, r.workers)
	case "mru":
		curve, err = simulator.PriorityMRC(trial.Trace, nsp.MRU{}, sizes, r.workers)
	default:
		err = fmt.Errorf("difftest: no reference simulator for target %q", target)
	}
	if err != nil {
		return nil, nil, err
	}
	r.refs[key] = curve
	r.sizes[key] = sizes
	return curve, sizes, nil
}

// ByteReference returns the byte-capacity ground truth for a target.
func (r *Runner) ByteReference(target string, trial Trial) (*mrc.Curve, []uint64, error) {
	key := refKey{target: target, trial: trial.Name, bytes: true}
	if c, ok := r.refs[key]; ok {
		return c, r.sizes[key], nil
	}
	sizes, err := byteSizes(trial)
	if err != nil {
		return nil, nil, err
	}
	var curve *mrc.Curve
	switch target {
	case "lru":
		curve, err = simulator.MRC(trial.Trace, sizes, r.workers, func(capacity uint64) simulator.Cache {
			return simulator.NewLRU(simulator.ByteCapacity(capacity))
		})
	case "klru":
		curve, err = simulator.KLRUByteMRC(trial.Trace, trial.K, sizes, trial.Seed, r.workers)
	default:
		err = fmt.Errorf("difftest: no byte reference simulator for target %q", target)
	}
	if err != nil {
		return nil, nil, err
	}
	r.refs[key] = curve
	r.sizes[key] = sizes
	return curve, sizes, nil
}

// BuildCurve constructs the named model with the harness options for
// it, replays the trial's trace, and returns the requested curve.
func BuildCurve(name string, trial Trial, bytes bool) (*mrc.Curve, error) {
	opts := ModelOptions(name, trial)
	if bytes {
		opts.Bytes = model.BytesOn
	}
	m, err := model.New(name, opts)
	if err != nil {
		return nil, fmt.Errorf("difftest: build %s: %w", name, err)
	}
	if err := model.ProcessAll(m, trial.Trace.Reader()); err != nil {
		return nil, fmt.Errorf("difftest: feed %s: %w", name, err)
	}
	if bytes {
		c := m.ByteMRC()
		if c == nil {
			return nil, fmt.Errorf("difftest: %s returned a nil byte curve with BytesOn", name)
		}
		return c, nil
	}
	return m.ObjectMRC(), nil
}

// CheckModel runs the differential comparison of one registered model
// on one trial at object granularity.
func (r *Runner) CheckModel(info model.Info, trial Trial) Result {
	res := Result{Model: info.Name, Trial: trial.Name, Granular: "objects", Envelope: EnvelopeFor(info.Name, trial.Name)}
	ref, sizes, err := r.Reference(info.Target, trial)
	if err != nil {
		res.Err = err
		return res
	}
	curve, err := BuildCurve(info.Name, trial, false)
	if err != nil {
		res.Err = err
		return res
	}
	if err := CheckCurve(curve); err != nil {
		res.Err = fmt.Errorf("invariant: %w", err)
		return res
	}
	res.MAE = mrc.MAE(ref, curve, sizes)
	return res
}

// CheckModelBytes runs the byte-granularity differential comparison;
// callers must ensure the model has CapBytes.
func (r *Runner) CheckModelBytes(info model.Info, trial Trial) Result {
	res := Result{Model: info.Name, Trial: trial.Name, Granular: "bytes", Envelope: ByteEnvelope(info.Name)}
	ref, sizes, err := r.ByteReference(info.Target, trial)
	if err != nil {
		res.Err = err
		return res
	}
	curve, err := BuildCurve(info.Name, trial, true)
	if err != nil {
		res.Err = err
		return res
	}
	if err := CheckCurve(curve); err != nil {
		res.Err = fmt.Errorf("invariant: %w", err)
		return res
	}
	res.MAE = mrc.MAE(ref, curve, sizes)
	return res
}

// RunAll checks every registered model against every trial, including
// byte-granularity checks on trials with Bytes set.
func (r *Runner) RunAll(trials []Trial) []Result {
	var out []Result
	for _, trial := range trials {
		for _, info := range model.All() {
			out = append(out, r.CheckModel(info, trial))
			if trial.Bytes && info.Caps.Has(model.CapBytes) && byteComparable(info.Target) {
				out = append(out, r.CheckModelBytes(info, trial))
			}
		}
	}
	return out
}

// byteComparable reports whether a byte-granularity reference
// simulator exists for the target.
func byteComparable(target string) bool { return target == "lru" || target == "klru" }
