package difftest

import (
	"fmt"

	"krr/internal/mrc"
)

// monotoneSlack is the float jitter tolerated in the monotonicity
// check: weighted-histogram curves sum float64 weights, so adjacent
// miss ratios can differ by summation noise without the curve being
// wrong.
const monotoneSlack = 1e-9

// CheckCurve validates the structural invariants every miss ratio
// curve must satisfy regardless of technique:
//
//   - non-empty, with parallel Sizes/Miss slices,
//   - sizes strictly increasing,
//   - miss ratios within [0, 1],
//   - miss monotone non-increasing in cache size (larger caches
//     cannot miss more under stack-inclusion policies).
func CheckCurve(c *mrc.Curve) error {
	if c == nil {
		return fmt.Errorf("nil curve")
	}
	if len(c.Sizes) == 0 {
		return fmt.Errorf("empty curve")
	}
	if len(c.Sizes) != len(c.Miss) {
		return fmt.Errorf("parallel slices diverge: %d sizes vs %d miss values", len(c.Sizes), len(c.Miss))
	}
	for i := range c.Sizes {
		if i > 0 && c.Sizes[i] <= c.Sizes[i-1] {
			return fmt.Errorf("sizes not strictly increasing at %d: %d after %d", i, c.Sizes[i], c.Sizes[i-1])
		}
		if c.Miss[i] < 0 || c.Miss[i] > 1 {
			return fmt.Errorf("miss[%d] = %v out of [0, 1]", i, c.Miss[i])
		}
		if i > 0 && c.Miss[i] > c.Miss[i-1]+monotoneSlack {
			return fmt.Errorf("miss ratio increases at %d: %v after %v", i, c.Miss[i], c.Miss[i-1])
		}
	}
	return nil
}
