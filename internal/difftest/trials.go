package difftest

import (
	"fmt"

	"krr/internal/trace"
	"krr/internal/workload"
)

// DefaultPoints is the number of evaluation cache sizes per trial —
// the paper's §5.5 choice.
const DefaultPoints = 25

// NewTrial materializes a trial from any reader, for user-supplied
// traces (the krrmrc -selftest path).
func NewTrial(name string, r trace.Reader, n, k int, seed uint64) (Trial, error) {
	tr, err := trace.Collect(r, n)
	if err != nil {
		return Trial{}, err
	}
	if tr.Len() == 0 {
		return Trial{}, fmt.Errorf("difftest: trial %q has no requests", name)
	}
	return Trial{Name: name, Trace: tr, K: k, Seed: seed, Points: DefaultPoints}, nil
}

// mustTrial collects n requests from a generator that cannot fail.
func mustTrial(name string, r trace.Reader, n, k int, seed uint64, bytes bool) Trial {
	t, err := NewTrial(name, r, n, k, seed)
	if err != nil {
		panic("difftest: " + err.Error())
	}
	t.Bytes = bytes
	return t
}

// FastTrials is the deterministic trial set behind the tier-1 tests
// and the check.sh difftest-fast stage: four access-pattern families
// the techniques are known to disagree on (skewed, cyclic,
// phase-mixed, memoryless) plus one variable-size trial for the byte
// paths. Sizes are chosen so the whole differential sweep — reference
// simulations included — stays well under the 30-second budget.
func FastTrials() []Trial {
	return []Trial{
		mustTrial("zipf",
			workload.NewZipf(101, 2500, 0.9, nil, 0.05), 30_000, 5, 1001, false),
		mustTrial("loop",
			workload.NewLoop(1200, nil), 15_000, 5, 1002, false),
		mustTrial("msr",
			workload.NewMSRLike(103, workload.MSRParams{
				Blocks: 3000, HotWeight: 0.4, SeqWeight: 0.35, LoopWeight: 0.25,
				HotFraction: 0.1, HotAlpha: 1.0, SeqRunMean: 96,
				LoopLen: 900, LoopRepeats: 3,
			}), 30_000, 5, 1003, false),
		mustTrial("uniform",
			workload.NewUniform(104, 1500, nil), 20_000, 5, 1004, false),
		mustTrial("zipf-var",
			workload.NewZipf(105, 1200, 1.0,
				workload.LogNormalSize{Mu: 5.44, Sigma: 1.0, Min: 16, Max: 1 << 16, Salt: 7}, 0),
			20_000, 5, 1005, true),
	}
}

// RandomTrials generates n randomized trials per invocation seed for
// the long (-tags difftest) sweep: each draws a workload family, key
// space and length from the seed, so repeated sweeps explore fresh
// traces while any single failure is reproducible from its seed (and
// is shrunk into corpus/ regardless).
func RandomTrials(seed uint64, n int) []Trial {
	trials := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		s := seed + uint64(i)*7919
		keys := 500 + (s*2654435761)%4000
		reqs := int(10_000 + (s*40503)%40_000)
		k := 3 + int(s%6)
		name := fmt.Sprintf("rand-%d", s)
		var r trace.Reader
		switch s % 4 {
		case 0:
			alpha := 0.6 + float64(s%8)/10
			r = workload.NewZipf(s, keys, alpha, nil, 0.05)
		case 1:
			r = workload.NewLoop(keys, nil)
		case 2:
			r = workload.NewMSRLike(s, workload.MSRParams{
				Blocks: keys, HotWeight: 0.4, SeqWeight: 0.3, LoopWeight: 0.3,
				HotFraction: 0.1, HotAlpha: 1.0,
				LoopLen: keys / 4, LoopRepeats: 2,
			})
		default:
			r = workload.NewUniform(s, keys, nil)
		}
		trials = append(trials, mustTrial(name, r, reqs, k, s, false))
	}
	return trials
}
