package difftest

import (
	"strings"
	"testing"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

// metamorphicTrace is a deletion-free mixed workload small enough to
// run every model several times per property.
func metamorphicTrace(t *testing.T) *trace.Trace {
	t.Helper()
	g := workload.NewZipf(77, 1000, 0.9, nil, 0)
	tr, err := trace.Collect(g, 12_000)
	if err != nil {
		t.Fatal(err)
	}
	lg := workload.NewLoop(400, nil)
	loop, err := trace.Collect(lg, 4_000)
	if err != nil {
		t.Fatal(err)
	}
	tr.Reqs = append(tr.Reqs, loop.Reqs...)
	return tr
}

func metamorphicTrial(name string, tr *trace.Trace, seed uint64) Trial {
	return Trial{Name: name, Trace: tr, K: 5, Seed: seed, Points: DefaultPoints}
}

// curvesIdentical requires bit-identical curves, not curves within a
// tolerance: metamorphic pairs run the same deterministic computation
// twice, so any drift is a real dependency on what was varied.
func curvesIdentical(a, b *mrc.Curve) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] || a.Miss[i] != b.Miss[i] {
			return false
		}
	}
	return true
}

// TestMetamorphicSeedIndependence: every model except the randomized
// K-LRU family must produce bit-identical curves under different
// seeds — olken's and nsp's treap heap priorities, for example, may
// reshuffle tree shapes but never distances. A violation means
// randomness leaked into a technique documented as deterministic.
func TestMetamorphicSeedIndependence(t *testing.T) {
	tr := metamorphicTrace(t)
	for _, info := range model.All() {
		if strings.HasPrefix(info.Name, "krr") {
			continue // randomized eviction sampling is seeded by design
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			a, err := BuildCurve(info.Name, metamorphicTrial("seed-a", tr, 1), false)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildCurve(info.Name, metamorphicTrial("seed-b", tr, 987654321), false)
			if err != nil {
				t.Fatal(err)
			}
			if !curvesIdentical(a, b) {
				t.Errorf("curve depends on Options.Seed")
			}
		})
	}
}

// relabel applies a bijective key renaming (odd multiplier mod 2^64
// plus offset) that preserves the access pattern exactly.
func relabel(tr *trace.Trace) *trace.Trace {
	out := &trace.Trace{Reqs: make([]trace.Request, len(tr.Reqs))}
	for i, req := range tr.Reqs {
		req.Key = req.Key*2654435761 + 12345
		out.Reqs[i] = req
	}
	return out
}

// TestMetamorphicRelabelInvariance: techniques that never hash key
// *values* into their estimates must produce bit-identical curves on
// a bijectively renamed trace. Hash-sampling techniques (shards*,
// counterstacks' HLL sketches, and the cheform tier's HyperLogLog
// distinct estimate) are exempt: their sample sets are functions of
// the key bits by design.
func TestMetamorphicRelabelInvariance(t *testing.T) {
	hashed := map[string]bool{
		"shards": true, "shards-fixedsize": true, "counterstacks": true,
		"che": true, "fagin": true,
	}
	tr := metamorphicTrace(t)
	renamed := relabel(tr)
	for _, info := range model.All() {
		if hashed[info.Name] {
			continue
		}
		info := info
		t.Run(info.Name, func(t *testing.T) {
			a, err := BuildCurve(info.Name, metamorphicTrial("orig", tr, 42), false)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BuildCurve(info.Name, metamorphicTrial("renamed", renamed, 42), false)
			if err != nil {
				t.Fatal(err)
			}
			if !curvesIdentical(a, b) {
				t.Errorf("curve depends on key values, not just the access pattern")
			}
		})
	}
}

// TestMetamorphicPrefixMissCounts: one-pass models are causal — a
// reference's recorded distance depends only on the history before
// it — so the absolute miss count at any capacity can only grow as
// the trace extends. Checked on the exact models, where the property
// holds with no estimation slack.
func TestMetamorphicPrefixMissCounts(t *testing.T) {
	exact := []string{"olken", "lfu", "mru", "krr", "krr-topdown", "krr-linear"}
	tr := metamorphicTrace(t)
	prefix := &trace.Trace{Reqs: tr.Reqs[:tr.Len()/2]}
	sizes, err := evalSizes(metamorphicTrial("prefix", prefix, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range exact {
		name := name
		t.Run(name, func(t *testing.T) {
			full, err := BuildCurve(name, metamorphicTrial("full", tr, 7), false)
			if err != nil {
				t.Fatal(err)
			}
			part, err := BuildCurve(name, metamorphicTrial("prefix", prefix, 7), false)
			if err != nil {
				t.Fatal(err)
			}
			nFull, nPart := float64(tr.Len()), float64(prefix.Len())
			for _, c := range sizes {
				mf := full.Eval(c) * nFull
				mp := part.Eval(c) * nPart
				if mf < mp-nFull*1e-9 {
					t.Errorf("capacity %d: %.2f misses on the full trace < %.2f on its prefix",
						c, mf, mp)
				}
			}
		})
	}
}
