package difftest

import (
	"krr/internal/core"
	"krr/internal/model"
)

// Per-model MAE envelopes against the exact simulators on the harness
// trials, object granularity. These are declared bounds, not wishes:
// the fast deterministic suite fails the build when a model drifts
// past its envelope, so a perf PR that silently skews a technique
// trips here first. Bounds are set ~2x above the MAE observed across
// the default trials at the time of declaration, leaving room for
// simulator sampling noise but not for systematic regressions.
var envelopes = map[string]float64{
	// K-LRU target: the model carries the expectation of a randomized
	// policy while the reference is one simulated sample of it, so
	// both sides contribute noise.
	"krr":         0.06,
	"krr-topdown": 0.06,
	"krr-linear":  0.06,

	// Exact-LRU target. Olken is exact — its envelope only absorbs
	// step-vs-simulation interpolation at the evaluation sizes.
	// Fixed-rate SHARDS carries real spatial-sampling variance on the
	// harness's small skewed trials (observed up to ~0.07 at rate 0.3:
	// whether the head keys land in the sample dominates), and Counter
	// Stacks' sketch resolution is coarse on short traces (observed up
	// to ~0.10 on the uniform trial).
	"olken":            0.02,
	"shards":           0.12,
	"shards-fixedsize": 0.04,
	"aet":              0.08,
	"statstack":        0.08,
	"counterstacks":    0.12,
	"mimir":            0.12,

	// Exact single-pass models of LFU and MRU caches. MRU's
	// transposition stack reproduces simulation to float precision;
	// LFU's priority-sorted stack can diverge hair-thin when a
	// just-evicted object briefly outranks a resident.
	"lfu": 0.03,
	"mru": 0.02,
}

// byteEnvelopes bound the byte-granularity comparisons (CapBytes
// models on variable-size trials). Byte curves stack logarithmic
// histogram quantization on top of the object-granularity error.
var byteEnvelopes = map[string]float64{
	"krr":         0.08,
	"krr-topdown": 0.08,
	"krr-linear":  0.08,
	"olken":       0.04,
	"shards":      0.12,
}

// DefaultEnvelope is the bound applied to models registered after
// this table was written; add an explicit entry when registering a
// new technique.
const DefaultEnvelope = 0.10

// analyticEnvelopes are the per-trial bounds for the closed-form
// analytic tier (che, fagin). Unlike every stateful technique, the
// closed forms see only the popularity distribution — no sequencing —
// so their error is a property of the workload family, not of the
// model's bookkeeping. On IRM-like trials (zipf, uniform) the bounds
// keep the table's ~2x-over-observed convention (observed ≤ 0.005 on
// all three at declaration time, with generous float headroom). The
// Type A trials are declared ceilings rather than 2x bounds: their
// reuse structure is out of model by construction (DESIGN.md §14) —
// observed 0.11 on msr (whose scan/loop phases dilute the IRM hot
// set) and 0.34 on the pure loop, where the closed form degrades to
// the random-replacement line 1−C/N while K-LRU's age-biased
// eviction is pessimal on cycles.
var analyticEnvelopes = map[string]float64{
	"zipf":     0.02,
	"zipf-var": 0.02,
	"uniform":  0.02,
	"msr":      0.20,
	"loop":     0.40,
}

// analyticDefaultEnvelope bounds the analytic tier on trials without
// a declared entry (the randomized -tags difftest sweep and corpus
// replays). It must absorb the worst Type A case the random families
// generate: a pure loop against a high-K reference (miss ≈ 1 until
// C = N) puts the closed form's 1−C/N line a mean of ~0.5 away —
// structural, not a regression signal, hence the near-vacuous bound;
// the named trials above carry the real contract.
const analyticDefaultEnvelope = 0.55

// analytic reports whether a model is in the closed-form tier.
func analytic(name string) bool { return name == "che" || name == "fagin" }

// EnvelopeFor returns the declared object-granularity MAE bound for a
// model on a named trial. For every stateful technique this is the
// trial-independent Envelope; the analytic tier resolves per trial.
func EnvelopeFor(name, trial string) float64 {
	if analytic(name) {
		if e, ok := analyticEnvelopes[trial]; ok {
			return e
		}
		return analyticDefaultEnvelope
	}
	return Envelope(name)
}

// BucketEnvelope returns the declared object-granularity MAE bound
// for the krr-bucket model at a given bucket growth ratio. The
// bucketized stack reports distances at position granularity but
// mixes objects uniformly within buckets, so its error against the
// exact simulation grows with bucket width — near-linearly in
// (ratio−1) on the adversarial loop trial, whose cyclic references
// all land in the widest bucket. Observed on the harness trials:
// loop ~0.035/0.070/0.112 at ratios 1.25/1.5/2 with every realistic
// trial 3–4x lower (msr ~0.032 at ratio 2). The bound keeps the
// table's ~2x-over-observed convention across the legal ratio range.
func BucketEnvelope(ratio float64) float64 {
	return 0.03 + 0.15*(ratio-1)
}

// Envelope returns the declared object-granularity MAE bound.
func Envelope(name string) float64 {
	if name == "krr-bucket" {
		// The harness builds krr-bucket at its default ratio; the
		// ratio sweep test covers the rest of the range.
		return BucketEnvelope(core.DefaultBucketRatio)
	}
	if e, ok := envelopes[name]; ok {
		return e
	}
	return DefaultEnvelope
}

// ByteEnvelope returns the declared byte-granularity MAE bound.
func ByteEnvelope(name string) float64 {
	if e, ok := byteEnvelopes[name]; ok {
		return e
	}
	return DefaultEnvelope
}

// harnessRate is the spatial sampling rate the harness hands the
// shards model. The registry default (the paper's 0.001) is tuned for
// multi-million-request traces; on the harness's deliberately small
// trials it would sample a handful of keys and compare noise against
// noise.
const harnessRate = 0.3

// ModelOptions returns the options the harness builds a model with on
// a trial: the trial's seed and K, plus per-technique tuning needed
// to make a small-trace comparison meaningful.
func ModelOptions(name string, trial Trial) model.Options {
	opts := model.Options{K: trial.K, Seed: trial.Seed}
	if name == "shards" {
		opts.SamplingRate = harnessRate
	}
	return opts
}
