package difftest

import (
	"testing"

	"krr/internal/model"
)

// analyticModels are the closed-form tier's registry names.
var analyticModels = []string{"che", "fagin"}

// TestDifferentialAnalytic is the check.sh cheform-fast stage: just
// the closed-form tier against the deterministic trials, without
// paying for the full 14-model sweep. The full sweep
// (TestDifferentialEnvelopes) covers the same ground plus everything
// else; this test exists so the analytic tier has a sub-second gate
// of its own.
func TestDifferentialAnalytic(t *testing.T) {
	r := NewRunner(0)
	for _, trial := range FastTrials() {
		for _, name := range analyticModels {
			info, ok := model.Lookup(name)
			if !ok {
				t.Fatalf("model %q not registered", name)
			}
			res := r.CheckModel(info, trial)
			t.Log(res.String())
			if !res.Pass() {
				t.Errorf("%s on %s: MAE %.4f over envelope %.4f (err: %v)",
					res.Model, res.Trial, res.MAE, res.Envelope, res.Err)
			}
		}
	}
}

// TestAnalyticCurveInvariants holds the closed-form curves to the
// structural invariants across the configuration surface the registry
// exposes: sampling rates and fallback alphas, on every fast trial.
func TestAnalyticCurveInvariants(t *testing.T) {
	configs := []model.Options{
		{},
		{SamplingRate: 0.1},
		{AnalyticAlpha: 0.4},
		{AnalyticAlpha: 2.0},
		{SamplingRate: 0.25, AnalyticAlpha: 1.2},
	}
	for _, trial := range FastTrials() {
		for _, name := range analyticModels {
			for _, opts := range configs {
				m, err := model.New(name, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := model.ProcessAll(m, trial.Trace.Reader()); err != nil {
					t.Fatal(err)
				}
				if err := CheckCurve(m.ObjectMRC()); err != nil {
					t.Errorf("%s on %s with %+v: %v", name, trial.Name, opts, err)
				}
			}
		}
	}
}

// TestAnalyticEnvelopeDeclared pins that the per-trial envelope table
// actually resolves for the fast trials and stays below the loose
// default — a declared bound per named trial is the whole point of
// the analytic tier's difftest contract.
func TestAnalyticEnvelopeDeclared(t *testing.T) {
	for _, trial := range FastTrials() {
		for _, name := range analyticModels {
			e := EnvelopeFor(name, trial.Name)
			if e >= analyticDefaultEnvelope {
				t.Errorf("%s on %s: envelope %.3f not declared tighter than the default %.3f",
					name, trial.Name, e, analyticDefaultEnvelope)
			}
		}
	}
	if e := EnvelopeFor("che", "rand-12345"); e != analyticDefaultEnvelope {
		t.Errorf("undeclared trial resolved to %.3f, want default %.3f", e, analyticDefaultEnvelope)
	}
	if e := EnvelopeFor("olken", "zipf"); e != Envelope("olken") {
		t.Errorf("stateful model envelope changed by trial: %.3f != %.3f", e, Envelope("olken"))
	}
}
