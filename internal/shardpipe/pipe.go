// Package shardpipe implements the batched single-producer fan-out
// pipeline behind every sharded model in this repository: one routing
// goroutine partitions a request stream across W worker-owned
// consumers over single-producer single-consumer channels, moving
// requests in pooled batches so channel synchronization is amortized
// to ~1/BatchLen per request.
//
// The pipeline carries no model state of its own — each worker invokes
// a caller-supplied consume function against its shard's private
// consumer, so any stack model whose histograms merge (see
// internal/model's CapSharded) can ride the same plumbing. Extracted
// from the original KRR ShardedProfiler so the router/batch/drain
// machinery exists exactly once.
//
// For online monitoring the pipe supports Quiesce — a barrier that
// briefly parks every worker with its queue drained so the caller can
// read shard-private state mid-stream — and exports per-worker
// throughput, batch-occupancy and queue-depth telemetry via
// MetricsInto.
package shardpipe

import (
	"fmt"
	"sync"

	"krr/internal/hashing"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// BatchLen is the routing batch size: large enough to amortize channel
// overhead, small enough to keep per-shard latency and pooled memory
// trivial (256 requests × 16 bytes = 4 KiB per buffer).
const BatchLen = 256

// chanDepth bounds in-flight batches per worker; combined with the
// pool it caps pipeline memory at roughly
// W × chanDepth × BatchLen × 16 bytes.
const chanDepth = 8

// ShardSeed derives shard i's RNG seed from a pipeline seed,
// decorrelating per-shard randomness while keeping the whole pipeline
// deterministic in the one seed. Every sharded consumer uses this one
// derivation so a serial model and its sharded form stay comparable
// run-to-run.
func ShardSeed(seed uint64, shard int) uint64 {
	return hashing.Mix64(seed ^ (uint64(shard) + 1))
}

// Pipe fans one request stream out to W shard workers. The
// caller-facing API is single-producer: Send, Quiesce and Close must
// all be called from one goroutine (or be externally serialized), and
// Send must not be called after Close.
type Pipe struct {
	chans   []chan []trace.Request
	pending [][]trace.Request
	pool    sync.Pool
	wg      sync.WaitGroup
	closed  bool

	// paused implements the Quiesce barrier: each worker signals it
	// after acknowledging a nil sentinel batch, then parks on its own
	// batch channel until the producer sends a resume token. Keeping
	// the whole handshake on the per-worker channels (rather than a
	// shared field) gives every step a channel happens-before edge.
	paused sync.WaitGroup

	// Telemetry: batch counters are updated once per flushed batch (so
	// the per-request hot path stays free of atomics on the router
	// side), consumed counters once per drained batch on each worker.
	batches   telemetry.Counter
	batchReqs telemetry.Counter
	consumed  []telemetry.Counter
}

// New starts a pipe with workers shard goroutines (workers >= 1).
// Each worker calls consume(shard, req) for every request routed to
// it, strictly in arrival order; consume runs on the worker goroutine
// and must touch only shard-private state.
func New(workers int, consume func(shard int, req trace.Request)) *Pipe {
	if workers < 1 {
		workers = 1
	}
	p := &Pipe{
		chans:    make([]chan []trace.Request, workers),
		pending:  make([][]trace.Request, workers),
		consumed: make([]telemetry.Counter, workers),
	}
	p.pool.New = func() any { return make([]trace.Request, 0, BatchLen) }
	for i := 0; i < workers; i++ {
		p.chans[i] = make(chan []trace.Request, chanDepth)
		p.pending[i] = p.pool.Get().([]trace.Request)
		p.wg.Add(1)
		go p.run(i, consume)
	}
	return p
}

// run is the per-shard worker loop: drain batches into consume and
// recycle the buffers. A nil batch is the Quiesce sentinel — the
// worker acknowledges it and parks until the barrier lifts.
func (p *Pipe) run(i int, consume func(int, trace.Request)) {
	defer p.wg.Done()
	for batch := range p.chans[i] {
		if batch == nil {
			p.paused.Done()
			// Park until the barrier lifts: the producer sends exactly
			// one resume token (another nil) after its callback returns,
			// and sends nothing else in between — single-producer FIFO
			// ordering makes the next value on this channel the token.
			<-p.chans[i]
			continue
		}
		for _, req := range batch {
			consume(i, req)
		}
		p.consumed[i].Add(uint64(len(batch)))
		p.pool.Put(batch[:0])
	}
}

// Workers returns the shard count.
func (p *Pipe) Workers() int { return len(p.chans) }

// ShardOf returns the shard a key routes to. Murmur3Fmix is
// deliberately a different mixer family from the Mix64 the sampling
// filter uses, so shard assignment is independent of sampling
// admission.
func (p *Pipe) ShardOf(key uint64) int {
	if len(p.chans) == 1 {
		return 0
	}
	return int(hashing.Murmur3Fmix(key) % uint64(len(p.chans)))
}

// Send routes one request to shard i.
//
// Contract: single producer only, and never after Close — the pipe's
// workers have exited and their channels are closed, so there is no
// goroutine left to consume the request. Violations panic with
// "shardpipe: Send after Close" rather than surfacing as an opaque
// send-on-closed-channel runtime error from deep inside the batcher.
func (p *Pipe) Send(i int, req trace.Request) {
	if p.closed {
		panic("shardpipe: Send after Close")
	}
	b := append(p.pending[i], req)
	if len(b) == BatchLen {
		p.flush(i, b)
		b = p.pool.Get().([]trace.Request)
	}
	p.pending[i] = b
}

// SendBatch routes a whole slice of requests to shard i, equivalent to
// calling Send for each element — identical per-shard request order
// AND identical flush boundaries (the pending batch fills to BatchLen
// and flushes exactly as the per-request path would) — but with the
// append amortized to one copy per pending-buffer fill. Batched ingest
// planes use it to hand frame-sized runs to a shard without paying the
// per-request call. reqs is copied; the caller may recycle it
// immediately. Same single-producer/never-after-Close contract as
// Send.
func (p *Pipe) SendBatch(i int, reqs []trace.Request) {
	if p.closed {
		panic("shardpipe: Send after Close")
	}
	b := p.pending[i]
	for len(reqs) > 0 {
		n := copy(b[len(b):BatchLen], reqs)
		b = b[:len(b)+n]
		reqs = reqs[n:]
		if len(b) == BatchLen {
			p.flush(i, b)
			b = p.pool.Get().([]trace.Request)
		}
	}
	p.pending[i] = b
}

// flush hands one batch to shard i's worker, recording batch
// telemetry.
func (p *Pipe) flush(i int, b []trace.Request) {
	p.batches.Inc()
	p.batchReqs.Add(uint64(len(b)))
	p.chans[i] <- b
}

// Quiesce flushes the partial pending batches, waits until every
// worker has drained its queue and parked, runs fn — which may safely
// read any shard-private state — and then resumes the workers. After
// Close it simply runs fn (the workers have already drained and
// exited).
//
// Quiesce shares Send's single-producer contract: it must not run
// concurrently with Send or Close.
func (p *Pipe) Quiesce(fn func()) {
	if p.closed {
		fn()
		return
	}
	for i, b := range p.pending {
		if len(b) > 0 {
			p.flush(i, b)
			p.pending[i] = p.pool.Get().([]trace.Request)
		}
	}
	p.paused.Add(len(p.chans))
	for i := range p.chans {
		p.chans[i] <- nil // park sentinel
	}
	// Every worker has drained its queue and parked: fn sees shard
	// state with no writer running (the workers' prior writes are
	// published through paused.Done/Wait).
	p.paused.Wait()
	fn()
	for i := range p.chans {
		p.chans[i] <- nil // resume token
	}
}

// Close flushes pending batches and waits for every worker to finish.
// It is idempotent and must be called before reading shard state.
func (p *Pipe) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for i, b := range p.pending {
		if len(b) > 0 {
			p.flush(i, b)
		}
		p.pending[i] = nil
		close(p.chans[i])
	}
	p.wg.Wait()
}

// QueueDepth returns the number of batches queued for shard i but not
// yet picked up by its worker. Safe to call from any goroutine.
func (p *Pipe) QueueDepth(i int) int { return len(p.chans[i]) }

// Consumed returns the number of requests shard i's worker has fully
// processed. Safe to call from any goroutine.
func (p *Pipe) Consumed(i int) uint64 { return p.consumed[i].Load() }

// MetricsInto registers the pipe's telemetry under prefix: flushed
// batch counts, batch occupancy, total queued batches, and per-worker
// throughput counters.
func (p *Pipe) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"batches_total", "batches flushed to shard workers", p.batches.Load)
	set.CounterFunc(prefix+"batch_requests_total", "requests carried by flushed batches", p.batchReqs.Load)
	set.GaugeFunc(prefix+"batch_fill_avg", "average requests per flushed batch (cap 256)", func() float64 {
		b := p.batches.Load()
		if b == 0 {
			return 0
		}
		return float64(p.batchReqs.Load()) / float64(b)
	})
	set.GaugeFunc(prefix+"queue_depth", "batches enqueued but not yet consumed, all shards", func() float64 {
		var total int
		for i := range p.chans {
			total += len(p.chans[i])
		}
		return float64(total)
	})
	for i := range p.consumed {
		c := &p.consumed[i]
		set.CounterFunc(fmt.Sprintf("%sworker%d_requests_total", prefix, i),
			"requests consumed by this shard worker", c.Load)
	}
}
