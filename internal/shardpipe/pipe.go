// Package shardpipe implements the batched single-producer fan-out
// pipeline behind every sharded model in this repository: one routing
// goroutine partitions a request stream across W worker-owned
// consumers over single-producer single-consumer channels, moving
// requests in pooled batches so channel synchronization is amortized
// to ~1/BatchLen per request.
//
// The pipeline carries no model state of its own — each worker invokes
// a caller-supplied consume function against its shard's private
// consumer, so any stack model whose histograms merge (see
// internal/model's CapSharded) can ride the same plumbing. Extracted
// from the original KRR ShardedProfiler so the router/batch/drain
// machinery exists exactly once.
package shardpipe

import (
	"sync"

	"krr/internal/hashing"
	"krr/internal/trace"
)

// BatchLen is the routing batch size: large enough to amortize channel
// overhead, small enough to keep per-shard latency and pooled memory
// trivial (256 requests × 16 bytes = 4 KiB per buffer).
const BatchLen = 256

// chanDepth bounds in-flight batches per worker; combined with the
// pool it caps pipeline memory at roughly
// W × chanDepth × BatchLen × 16 bytes.
const chanDepth = 8

// ShardSeed derives shard i's RNG seed from a pipeline seed,
// decorrelating per-shard randomness while keeping the whole pipeline
// deterministic in the one seed. Every sharded consumer uses this one
// derivation so a serial model and its sharded form stay comparable
// run-to-run.
func ShardSeed(seed uint64, shard int) uint64 {
	return hashing.Mix64(seed ^ (uint64(shard) + 1))
}

// Pipe fans one request stream out to W shard workers. The
// caller-facing API is single-producer: Send must not be called
// concurrently, and not after Close.
type Pipe struct {
	chans   []chan []trace.Request
	pending [][]trace.Request
	pool    sync.Pool
	wg      sync.WaitGroup
	closed  bool
}

// New starts a pipe with workers shard goroutines (workers >= 1).
// Each worker calls consume(shard, req) for every request routed to
// it, strictly in arrival order; consume runs on the worker goroutine
// and must touch only shard-private state.
func New(workers int, consume func(shard int, req trace.Request)) *Pipe {
	if workers < 1 {
		workers = 1
	}
	p := &Pipe{
		chans:   make([]chan []trace.Request, workers),
		pending: make([][]trace.Request, workers),
	}
	p.pool.New = func() any { return make([]trace.Request, 0, BatchLen) }
	for i := 0; i < workers; i++ {
		p.chans[i] = make(chan []trace.Request, chanDepth)
		p.pending[i] = p.pool.Get().([]trace.Request)
		p.wg.Add(1)
		go p.run(i, consume)
	}
	return p
}

// run is the per-shard worker loop: drain batches into consume and
// recycle the buffers.
func (p *Pipe) run(i int, consume func(int, trace.Request)) {
	defer p.wg.Done()
	for batch := range p.chans[i] {
		for _, req := range batch {
			consume(i, req)
		}
		p.pool.Put(batch[:0])
	}
}

// Workers returns the shard count.
func (p *Pipe) Workers() int { return len(p.chans) }

// ShardOf returns the shard a key routes to. Murmur3Fmix is
// deliberately a different mixer family from the Mix64 the sampling
// filter uses, so shard assignment is independent of sampling
// admission.
func (p *Pipe) ShardOf(key uint64) int {
	if len(p.chans) == 1 {
		return 0
	}
	return int(hashing.Murmur3Fmix(key) % uint64(len(p.chans)))
}

// Send routes one request to shard i. Single producer only.
func (p *Pipe) Send(i int, req trace.Request) {
	b := append(p.pending[i], req)
	if len(b) == BatchLen {
		p.chans[i] <- b
		b = p.pool.Get().([]trace.Request)
	}
	p.pending[i] = b
}

// Close flushes pending batches and waits for every worker to finish.
// It is idempotent and must be called before reading shard state.
func (p *Pipe) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for i, b := range p.pending {
		if len(b) > 0 {
			p.chans[i] <- b
		}
		p.pending[i] = nil
		close(p.chans[i])
	}
	p.wg.Wait()
}
