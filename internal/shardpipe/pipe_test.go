package shardpipe

import (
	"sync/atomic"
	"testing"

	"krr/internal/trace"
)

// TestOrderAndCompleteness checks that every sent request arrives at
// exactly the shard it was addressed to, in send order.
func TestOrderAndCompleteness(t *testing.T) {
	const workers = 4
	const n = 10_000
	got := make([][]uint64, workers)
	p := New(workers, func(shard int, req trace.Request) {
		got[shard] = append(got[shard], req.Key)
	})
	want := make([][]uint64, workers)
	for i := uint64(0); i < n; i++ {
		shard := p.ShardOf(i)
		want[shard] = append(want[shard], i)
		p.Send(shard, trace.Request{Key: i})
	}
	p.Close()
	for s := 0; s < workers; s++ {
		if len(got[s]) != len(want[s]) {
			t.Fatalf("shard %d: got %d requests, want %d", s, len(got[s]), len(want[s]))
		}
		for i := range got[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("shard %d: request %d = key %d, want %d", s, i, got[s][i], want[s][i])
			}
		}
	}
}

// TestCloseIdempotent verifies Close can be called repeatedly and that
// a short (sub-batch) stream is fully flushed.
func TestCloseIdempotent(t *testing.T) {
	var count atomic.Uint64
	p := New(2, func(int, trace.Request) { count.Add(1) })
	for i := uint64(0); i < 7; i++ {
		p.Send(p.ShardOf(i), trace.Request{Key: i})
	}
	p.Close()
	p.Close()
	if count.Load() != 7 {
		t.Fatalf("consumed %d, want 7", count.Load())
	}
}

// TestShardSeedDistinct ensures derived shard seeds differ from each
// other and from the base seed.
func TestShardSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{42: true}
	for i := 0; i < 16; i++ {
		s := ShardSeed(42, i)
		if seen[s] {
			t.Fatalf("ShardSeed(42, %d) = %d collides", i, s)
		}
		seen[s] = true
	}
}

// TestSingleWorkerShardOf pins the degenerate W=1 routing.
func TestSingleWorkerShardOf(t *testing.T) {
	p := New(1, func(int, trace.Request) {})
	defer p.Close()
	for i := uint64(0); i < 100; i++ {
		if p.ShardOf(i) != 0 {
			t.Fatalf("ShardOf(%d) != 0 with one worker", i)
		}
	}
}
