package shardpipe

import (
	"sync/atomic"
	"testing"

	"krr/internal/trace"
)

// TestOrderAndCompleteness checks that every sent request arrives at
// exactly the shard it was addressed to, in send order.
func TestOrderAndCompleteness(t *testing.T) {
	const workers = 4
	const n = 10_000
	got := make([][]uint64, workers)
	p := New(workers, func(shard int, req trace.Request) {
		got[shard] = append(got[shard], req.Key)
	})
	want := make([][]uint64, workers)
	for i := uint64(0); i < n; i++ {
		shard := p.ShardOf(i)
		want[shard] = append(want[shard], i)
		p.Send(shard, trace.Request{Key: i})
	}
	p.Close()
	for s := 0; s < workers; s++ {
		if len(got[s]) != len(want[s]) {
			t.Fatalf("shard %d: got %d requests, want %d", s, len(got[s]), len(want[s]))
		}
		for i := range got[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("shard %d: request %d = key %d, want %d", s, i, got[s][i], want[s][i])
			}
		}
	}
}

// TestCloseIdempotent verifies Close can be called repeatedly and that
// a short (sub-batch) stream is fully flushed.
func TestCloseIdempotent(t *testing.T) {
	var count atomic.Uint64
	p := New(2, func(int, trace.Request) { count.Add(1) })
	for i := uint64(0); i < 7; i++ {
		p.Send(p.ShardOf(i), trace.Request{Key: i})
	}
	p.Close()
	p.Close()
	if count.Load() != 7 {
		t.Fatalf("consumed %d, want 7", count.Load())
	}
}

// TestSendBatchEquivalence pins SendBatch bit-identical to the
// per-request Send loop: same per-shard request sequences, same
// per-shard consumed counts, and the same number of flushed batches
// carrying the same request total — across chunk sizes straddling the
// BatchLen boundary and across partial-fill states.
func TestSendBatchEquivalence(t *testing.T) {
	const workers = 3
	const n = 4_000
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Key: uint64(i) * 0x9e3779b97f4a7c15, Size: uint32(i%500 + 1), Op: trace.Op(i % 3)}
	}

	type capture struct {
		seqs    [][]trace.Request
		batches uint64
		reqs    uint64
	}
	run := func(send func(p *Pipe, shard int, chunk []trace.Request)) capture {
		var c capture
		c.seqs = make([][]trace.Request, workers)
		p := New(workers, func(shard int, req trace.Request) {
			c.seqs[shard] = append(c.seqs[shard], req)
		})
		// Route by key as real consumers do, feeding variable-size runs
		// of same-shard requests through send.
		var runStart, runShard = 0, p.ShardOf(reqs[0].Key)
		for i := 1; i <= len(reqs); i++ {
			if i < len(reqs) && p.ShardOf(reqs[i].Key) == runShard {
				continue
			}
			send(p, runShard, reqs[runStart:i])
			if i < len(reqs) {
				runStart, runShard = i, p.ShardOf(reqs[i].Key)
			}
		}
		p.Close()
		c.batches = p.batches.Load()
		c.reqs = p.batchReqs.Load()
		return c
	}

	want := run(func(p *Pipe, shard int, chunk []trace.Request) {
		for _, r := range chunk {
			p.Send(shard, r)
		}
	})
	got := run(func(p *Pipe, shard int, chunk []trace.Request) {
		p.SendBatch(shard, chunk)
	})

	if got.batches != want.batches || got.reqs != want.reqs {
		t.Fatalf("flush accounting differs: got %d batches/%d reqs, want %d/%d",
			got.batches, got.reqs, want.batches, want.reqs)
	}
	for s := 0; s < workers; s++ {
		if len(got.seqs[s]) != len(want.seqs[s]) {
			t.Fatalf("shard %d: got %d requests, want %d", s, len(got.seqs[s]), len(want.seqs[s]))
		}
		for i := range got.seqs[s] {
			if got.seqs[s][i] != want.seqs[s][i] {
				t.Fatalf("shard %d: request %d = %+v, want %+v", s, i, got.seqs[s][i], want.seqs[s][i])
			}
		}
	}

	// Oversized single chunks (> BatchLen) split exactly like repeated
	// Send too.
	var count atomic.Uint64
	p := New(1, func(int, trace.Request) { count.Add(1) })
	p.SendBatch(0, reqs[:BatchLen*2+17])
	p.Close()
	if count.Load() != BatchLen*2+17 {
		t.Fatalf("oversized chunk: consumed %d, want %d", count.Load(), BatchLen*2+17)
	}
}

// TestSendBatchAfterClosePanicsClearly pins the shared contract.
func TestSendBatchAfterClosePanicsClearly(t *testing.T) {
	p := New(2, func(int, trace.Request) {})
	p.Close()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("SendBatch after Close did not panic")
		}
	}()
	p.SendBatch(0, []trace.Request{{Key: 1}})
}

// TestShardSeedDistinct ensures derived shard seeds differ from each
// other and from the base seed.
func TestShardSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{42: true}
	for i := 0; i < 16; i++ {
		s := ShardSeed(42, i)
		if seen[s] {
			t.Fatalf("ShardSeed(42, %d) = %d collides", i, s)
		}
		seen[s] = true
	}
}

// TestSingleWorkerShardOf pins the degenerate W=1 routing.
func TestSingleWorkerShardOf(t *testing.T) {
	p := New(1, func(int, trace.Request) {})
	defer p.Close()
	for i := uint64(0); i < 100; i++ {
		if p.ShardOf(i) != 0 {
			t.Fatalf("ShardOf(%d) != 0 with one worker", i)
		}
	}
}

// TestSendAfterClosePanicsClearly pins the Send contract: a Send after
// Close must fail with the package's own message, not an opaque
// send-on-closed-channel runtime panic.
func TestSendAfterClosePanicsClearly(t *testing.T) {
	p := New(2, func(int, trace.Request) {})
	p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Send after Close did not panic")
		}
		if msg, ok := r.(string); !ok || msg != "shardpipe: Send after Close" {
			t.Fatalf("panic = %v, want %q", r, "shardpipe: Send after Close")
		}
	}()
	p.Send(0, trace.Request{Key: 1})
}

// TestQuiesce checks the mid-stream barrier: inside fn every request
// sent so far — including sub-batch partials — has been consumed, and
// the pipe keeps working afterwards.
func TestQuiesce(t *testing.T) {
	const workers = 3
	var count atomic.Uint64
	p := New(workers, func(int, trace.Request) { count.Add(1) })

	send := func(n uint64) {
		for i := uint64(0); i < n; i++ {
			p.Send(p.ShardOf(i), trace.Request{Key: i})
		}
	}
	send(1000) // not a multiple of BatchLen: partial batches pending
	p.Quiesce(func() {
		if got := count.Load(); got != 1000 {
			t.Errorf("quiesced with %d consumed, want 1000", got)
		}
	})
	send(500)
	p.Quiesce(func() {
		if got := count.Load(); got != 1500 {
			t.Errorf("second quiesce: %d consumed, want 1500", got)
		}
	})
	p.Close()
	if count.Load() != 1500 {
		t.Fatalf("consumed %d, want 1500", count.Load())
	}
	// Quiesce after Close degenerates to running fn.
	ran := false
	p.Quiesce(func() { ran = true })
	if !ran {
		t.Fatal("Quiesce after Close did not run fn")
	}
}

// TestPipeTelemetry exercises the metric surface: per-worker consumed
// counters sum to the stream length and the batch counters agree.
func TestPipeTelemetry(t *testing.T) {
	const n = 5000
	p := New(2, func(int, trace.Request) {})
	for i := uint64(0); i < n; i++ {
		p.Send(p.ShardOf(i), trace.Request{Key: i})
	}
	p.Close()
	var consumed uint64
	for i := 0; i < p.Workers(); i++ {
		consumed += p.Consumed(i)
		if p.QueueDepth(i) != 0 {
			t.Fatalf("queue depth %d after Close", p.QueueDepth(i))
		}
	}
	if consumed != n {
		t.Fatalf("consumed %d, want %d", consumed, n)
	}
	if p.batchReqs.Load() != n {
		t.Fatalf("batchReqs = %d, want %d", p.batchReqs.Load(), n)
	}
	if p.batches.Load() < n/BatchLen {
		t.Fatalf("batches = %d, want >= %d", p.batches.Load(), n/BatchLen)
	}
}
