package olken

import (
	"testing"
	"testing/quick"

	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

// naiveLRU is a reference implementation: a plain slice ordered from
// most- to least-recently used.
type naiveLRU struct {
	keys  []uint64
	sizes []uint32
}

func (n *naiveLRU) reference(key uint64, size uint32) (cold bool, dist, byteDist uint64) {
	for i, k := range n.keys {
		if k == key {
			dist = uint64(i + 1)
			for j := 0; j <= i; j++ {
				byteDist += uint64(n.sizes[j])
			}
			copy(n.keys[1:i+1], n.keys[:i])
			copy(n.sizes[1:i+1], n.sizes[:i])
			n.keys[0], n.sizes[0] = key, size
			return false, dist, byteDist
		}
	}
	n.keys = append([]uint64{key}, n.keys...)
	n.sizes = append([]uint32{size}, n.sizes...)
	return true, 0, 0
}

func (n *naiveLRU) delete(key uint64) {
	for i, k := range n.keys {
		if k == key {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.sizes = append(n.sizes[:i], n.sizes[i+1:]...)
			return
		}
	}
}

func TestAgainstNaiveLRU(t *testing.T) {
	s := New(1)
	var ref naiveLRU
	src := xrand.New(99)
	for i := 0; i < 20000; i++ {
		key := src.Uint64n(300)
		size := uint32(1 + src.Uint64n(100))
		if prev, ok := s.SizeOf(key); ok {
			size = prev // keep sizes stable so both models agree
		}
		wantCold, wantDist, wantByte := ref.reference(key, size)
		got := s.Reference(key, size)
		if got.Cold != wantCold {
			t.Fatalf("step %d key %d: cold=%v want %v", i, key, got.Cold, wantCold)
		}
		if !got.Cold && (got.Distance != wantDist || got.ByteDistance != wantByte) {
			t.Fatalf("step %d key %d: dist=%d/%d want %d/%d",
				i, key, got.Distance, got.ByteDistance, wantDist, wantByte)
		}
	}
}

func TestAgainstNaiveLRUWithDeletes(t *testing.T) {
	s := New(2)
	var ref naiveLRU
	src := xrand.New(7)
	for i := 0; i < 10000; i++ {
		key := src.Uint64n(100)
		if src.Float64() < 0.1 {
			ref.delete(key)
			s.Delete(key)
			continue
		}
		wantCold, wantDist, _ := ref.reference(key, 10)
		got := s.Reference(key, 10)
		if got.Cold != wantCold || (!got.Cold && got.Distance != wantDist) {
			t.Fatalf("step %d: mismatch after deletes", i)
		}
	}
}

func TestSequentialDistances(t *testing.T) {
	s := New(3)
	// Touch 1..5 then re-touch in reverse: distances 1..5... actually
	// touching 5,4,3,2,1 after 1,2,3,4,5 gives distances 1,2,3,4,5.
	for k := uint64(1); k <= 5; k++ {
		if got := s.Reference(k, 1); !got.Cold {
			t.Fatal("first touch must be cold")
		}
	}
	for i, k := range []uint64{5, 4, 3, 2, 1} {
		got := s.Reference(k, 1)
		if got.Cold || got.Distance != uint64(i+1) {
			t.Fatalf("key %d: dist %d want %d", k, got.Distance, i+1)
		}
	}
}

func TestImmediateReuseDistanceOne(t *testing.T) {
	s := New(4)
	s.Reference(42, 8)
	got := s.Reference(42, 8)
	if got.Cold || got.Distance != 1 || got.ByteDistance != 8 {
		t.Fatalf("immediate reuse: %+v", got)
	}
}

func TestByteDistanceInclusive(t *testing.T) {
	s := New(5)
	// Stack becomes (top) C(4) B(2) A(3).
	s.Reference('a', 3)
	s.Reference('b', 2)
	s.Reference('c', 4)
	got := s.Reference('a', 3)
	if got.Distance != 3 {
		t.Fatalf("distance %d want 3", got.Distance)
	}
	if got.ByteDistance != 9 { // 4+2+3 inclusive
		t.Fatalf("byte distance %d want 9", got.ByteDistance)
	}
}

func TestLenAndBytes(t *testing.T) {
	s := New(6)
	s.Reference(1, 10)
	s.Reference(2, 20)
	s.Reference(1, 10)
	if s.Len() != 2 || s.Bytes() != 30 {
		t.Fatalf("len=%d bytes=%d", s.Len(), s.Bytes())
	}
	s.Delete(1)
	if s.Len() != 1 || s.Bytes() != 20 {
		t.Fatalf("after delete: len=%d bytes=%d", s.Len(), s.Bytes())
	}
	if s.Delete(1) {
		t.Fatal("double delete must report false")
	}
}

func TestSizeUpdateOnReinsertion(t *testing.T) {
	s := New(7)
	s.Reference(1, 10)
	s.Reference(1, 25)
	if b := s.Bytes(); b != 25 {
		t.Fatalf("bytes = %d, want updated 25", b)
	}
	if sz, ok := s.SizeOf(1); !ok || sz != 25 {
		t.Fatalf("SizeOf = %d,%v", sz, ok)
	}
}

func TestContains(t *testing.T) {
	s := New(8)
	if s.Contains(5) {
		t.Fatal("empty stack contains nothing")
	}
	s.Reference(5, 1)
	if !s.Contains(5) {
		t.Fatal("missing after reference")
	}
}

func TestTreapInvariants(t *testing.T) {
	// Property: counts and byte sums remain consistent under random
	// mixed operations.
	err := quick.Check(func(ops []uint16) bool {
		s := New(11)
		resident := map[uint64]uint32{}
		for _, op := range ops {
			key := uint64(op % 64)
			if op%7 == 0 {
				s.Delete(key)
				delete(resident, key)
			} else {
				size := uint32(op%100) + 1
				s.Reference(key, size)
				resident[key] = size
			}
		}
		var wantBytes uint64
		for _, sz := range resident {
			wantBytes += uint64(sz)
		}
		return s.Len() == len(resident) && s.Bytes() == wantBytes
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfilerMRCOnLoop(t *testing.T) {
	// A cyclic loop over M objects under exact LRU misses everything
	// for any cache smaller than M and hits everything at M.
	const m = 100
	p := NewProfiler(1)
	g := workload.NewLoop(m, nil)
	if err := p.ProcessAll(trace.LimitReader(g, m*20)); err != nil {
		t.Fatal(err)
	}
	curve := p.ObjectMRC(1)
	if miss := curve.Eval(m); miss > 0.06 {
		t.Fatalf("miss at full loop size = %v, want ~cold ratio", miss)
	}
	if miss := curve.Eval(m / 2); miss < 0.94 {
		t.Fatalf("miss at half loop size = %v, want ~1 (LRU loop pathology)", miss)
	}
}

func TestProfilerZipfMonotone(t *testing.T) {
	p := NewProfiler(2)
	g := workload.NewZipf(3, 5000, 1.0, nil, 0)
	if err := p.ProcessAll(trace.LimitReader(g, 100000)); err != nil {
		t.Fatal(err)
	}
	c := p.ObjectMRC(1)
	for i := 1; i < c.Len(); i++ {
		if c.Miss[i] > c.Miss[i-1]+1e-12 {
			t.Fatal("exact LRU MRC must be non-increasing")
		}
	}
	// Sanity: a big cache has lower miss ratio than a tiny one.
	if c.Eval(5000) >= c.Eval(10) {
		t.Fatal("MRC not decreasing with size")
	}
}

func TestProfilerDeleteOp(t *testing.T) {
	p := NewProfiler(3)
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Size: 1, Op: trace.OpGet},
		{Key: 1, Size: 1, Op: trace.OpDelete},
		{Key: 1, Size: 1, Op: trace.OpGet}, // cold again after delete
	}}
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if p.ObjHist().Cold() != 2 {
		t.Fatalf("cold = %d, want 2", p.ObjHist().Cold())
	}
}

func BenchmarkReference(b *testing.B) {
	s := New(1)
	src := xrand.New(5)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = src.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reference(keys[i&(1<<16-1)], 200)
	}
}
