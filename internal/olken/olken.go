// Package olken implements the classical exact-LRU stack-distance
// structure: Olken's balanced-tree formulation of Mattson's LRU stack
// (§2.1, §5.1). The stack is a treap keyed by last-access time and
// augmented with subtree object counts and subtree byte sums, so one
// reference costs O(log M) and yields both the object-granularity and
// the byte-granularity (inclusive) stack distance.
//
// This is the repository's ground-truth oracle for exact LRU, the
// baseline the paper compares against, and the substrate for SHARDS.
package olken

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/xrand"
)

type node struct {
	time   uint64 // last-access logical time; unique tree key
	objKey uint64
	size   uint32
	prio   uint64 // treap heap priority
	left   *node
	right  *node
	cnt    uint64 // subtree object count
	bytes  uint64 // subtree byte sum
}

func cnt(n *node) uint64 {
	if n == nil {
		return 0
	}
	return n.cnt
}

func bytesOf(n *node) uint64 {
	if n == nil {
		return 0
	}
	return n.bytes
}

func (n *node) pull() {
	n.cnt = 1 + cnt(n.left) + cnt(n.right)
	n.bytes = uint64(n.size) + bytesOf(n.left) + bytesOf(n.right)
}

// merge joins two treaps where every time in a precedes every time in b.
func merge(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.right = merge(a.right, b)
		a.pull()
		return a
	}
	b.left = merge(a, b.left)
	b.pull()
	return b
}

// split divides t into (times <= key, times > key).
func split(t *node, key uint64) (lo, hi *node) {
	if t == nil {
		return nil, nil
	}
	if t.time <= key {
		l, h := split(t.right, key)
		t.right = l
		t.pull()
		return t, h
	}
	l, h := split(t.left, key)
	t.left = h
	t.pull()
	return l, t
}

// Stack is an exact LRU stack with O(log M) reference cost.
type Stack struct {
	root  *node
	index map[uint64]*node
	clock uint64
	rng   *xrand.Source
}

// New returns an empty stack; seed fixes the treap priorities.
func New(seed uint64) *Stack {
	return &Stack{index: make(map[uint64]*node), rng: xrand.New(seed)}
}

// Len returns the number of resident objects (distinct referenced keys).
func (s *Stack) Len() int { return int(cnt(s.root)) }

// Bytes returns the total byte size of resident objects.
func (s *Stack) Bytes() uint64 { return bytesOf(s.root) }

// Result reports the distances of one reference.
type Result struct {
	// Cold is true for a first-touch reference; distances are then
	// undefined (infinite).
	Cold bool
	// Distance is the LRU stack distance in objects (top = 1).
	Distance uint64
	// ByteDistance is the inclusive byte-granularity distance: the
	// total size of stack positions 1..Distance. A cache with byte
	// capacity >= ByteDistance hits this reference.
	ByteDistance uint64
}

// Reference records an access to key with the given size and returns
// its distances. The object moves to the stack top; a previously
// unseen key is inserted cold. If the object's size changed since its
// last reference the new size takes effect at reinsertion.
func (s *Stack) Reference(key uint64, size uint32) Result {
	s.clock++
	n, ok := s.index[key]
	if !ok {
		s.insertTop(key, size)
		return Result{Cold: true}
	}
	dist, byteDist := s.rankOf(n.time, uint64(n.size))
	s.removeTime(n.time)
	delete(s.index, key)
	s.insertTop(key, size)
	return Result{Distance: dist, ByteDistance: byteDist}
}

// rankOf computes the number of objects with time >= t (the stack
// distance) and the byte sum of objects with time > t plus own, by one
// root-to-node descent.
func (s *Stack) rankOf(t uint64, ownSize uint64) (dist, byteDist uint64) {
	n := s.root
	var above, bytesAbove uint64
	for n != nil {
		switch {
		case t < n.time:
			above += 1 + cnt(n.right)
			bytesAbove += uint64(n.size) + bytesOf(n.right)
			n = n.left
		case t > n.time:
			n = n.right
		default:
			above += cnt(n.right)
			bytesAbove += bytesOf(n.right)
			return above + 1, bytesAbove + ownSize
		}
	}
	// Unreachable for times present in the tree.
	return above + 1, bytesAbove + ownSize
}

func (s *Stack) insertTop(key uint64, size uint32) {
	n := &node{time: s.clock, objKey: key, size: size, prio: s.rng.Uint64()}
	n.pull()
	// The new time is the global maximum, so it merges on the right.
	s.root = merge(s.root, n)
	s.index[key] = n
}

func (s *Stack) removeTime(t uint64) {
	lo, hi := split(s.root, t)
	// lo's maximum time is t; peel it off.
	lo2, target := split(lo, t-1)
	_ = target // single node with time t; discard
	s.root = merge(lo2, hi)
}

// Delete removes key from the stack if present, returning whether it
// was resident.
func (s *Stack) Delete(key uint64) bool {
	n, ok := s.index[key]
	if !ok {
		return false
	}
	s.removeTime(n.time)
	delete(s.index, key)
	return true
}

// MemoryOverheadBytes estimates the resident size of the stack's
// metadata in the §5.6 accounting style: one treap node (two words of
// payload, two child pointers, priority, count and byte augmentations)
// plus one hash-index entry per tracked object.
func (s *Stack) MemoryOverheadBytes() uint64 {
	const perNode = 64  // node struct, padded
	const perIndex = 48 // map entry: key + pointer + bucket overhead
	return uint64(s.Len()) * (perNode + perIndex)
}

// Contains reports residency of key.
func (s *Stack) Contains(key uint64) bool {
	_, ok := s.index[key]
	return ok
}

// SizeOf returns the recorded size of key and whether it is resident.
func (s *Stack) SizeOf(key uint64) (uint32, bool) {
	n, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return n.size, true
}

// Profiler runs an exact-LRU one-pass MRC construction over a request
// stream, recording both object- and byte-granularity histograms.
type Profiler struct {
	stack    *Stack
	objHist  *histogram.Dense
	byteHist *histogram.Log
}

// NewProfiler returns an empty profiler.
func NewProfiler(seed uint64) *Profiler {
	return &Profiler{
		stack:    New(seed),
		objHist:  histogram.NewDense(1024),
		byteHist: histogram.NewLog(),
	}
}

// Process feeds one request.
func (p *Profiler) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		p.stack.Delete(req.Key)
		return
	}
	res := p.stack.Reference(req.Key, req.Size)
	if res.Cold {
		p.objHist.AddCold()
		p.byteHist.AddCold()
		return
	}
	p.objHist.Add(res.Distance)
	p.byteHist.Add(res.ByteDistance)
}

// ProcessAll drains a reader.
func (p *Profiler) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		p.Process(req)
	}
}

// ObjectMRC returns the exact LRU miss-ratio curve over object-count
// cache sizes; scale rescales distances (pass 1/R under sampling).
func (p *Profiler) ObjectMRC(scale float64) *mrc.Curve {
	return mrc.FromHistogram(p.objHist, scale)
}

// ByteMRC returns the exact LRU miss-ratio curve over byte cache
// sizes.
func (p *Profiler) ByteMRC(scale float64) *mrc.Curve {
	return mrc.FromHistogram(p.byteHist, scale)
}

// ObjHist exposes the object-granularity histogram.
func (p *Profiler) ObjHist() *histogram.Dense { return p.objHist }

// ByteHist exposes the byte-granularity histogram.
func (p *Profiler) ByteHist() *histogram.Log { return p.byteHist }

// Stack exposes the underlying LRU stack.
func (p *Profiler) Stack() *Stack { return p.stack }

// MemoryOverheadBytes estimates the profiler's resident metadata:
// stack nodes plus both histogram backing arrays.
func (p *Profiler) MemoryOverheadBytes() uint64 {
	return p.stack.MemoryOverheadBytes() + p.objHist.MemBytes() + p.byteHist.MemBytes()
}
