package experiments

import (
	"fmt"

	"krr/internal/fleet"
	"krr/internal/model"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "ext.fleet",
		Title:       "Fleet advisor: waterfill partitioning vs naive splits",
		Description: "Three tenants with distinct MRC shapes share one cache budget; the marginal-gain waterfill over live KRR curves vs proportional-by-traffic and uniform splits, validated against full K-LRU simulation.",
		Run:         runExtFleet,
	})
}

// runExtFleet mirrors three shape-diverse tenant workloads into a
// fleet registry of KRR shadow models, asks the optimizer to partition
// a shared budget, and then *simulates* each tenant's K-LRU cache at
// its allocated capacity to check the advised split against ground
// truth.
func runExtFleet(opt Options) (*Result, error) {
	const k = 5
	n := int(float64(200_000) * opt.ReqFraction)
	if opt.MaxRequests > 0 && n*3 > opt.MaxRequests {
		n = opt.MaxRequests / 3
	}

	// Distinct curve shapes so the split matters: a skewed tenant whose
	// gains concentrate in a small hot set, a broad uniform tenant with
	// shallow gains, and a loop tenant whose curve is a cliff at its
	// working-set size.
	// Uneven traffic (3:2:1) separates the proportional baseline from
	// the uniform one.
	tenants := []struct {
		id   string
		reqs int
		mk   func() trace.Reader
	}{
		{"hot", n * 3 / 2, func() trace.Reader {
			return workload.NewZipf(opt.Seed, scaledKeys(20_000, opt), 1.1, nil, 0)
		}},
		{"broad", n, func() trace.Reader {
			g := workload.NewUniform(opt.Seed+1, scaledKeys(200_000, opt), nil)
			g.SetKeySpace(1 << 40)
			return g
		}},
		{"loop", n / 2, func() trace.Reader {
			g := workload.NewLoop(scaledKeys(50_000, opt), nil)
			g.SetKeySpace(2 << 40)
			return g
		}},
	}

	reg := fleet.NewRegistry(fleet.Config{
		Default: fleet.Spec{Model: "krr", Options: model.Options{K: k, Seed: opt.Seed}},
	})
	traces := make(map[string]*trace.Trace, len(tenants))
	var distinct uint64
	for _, ten := range tenants {
		tr, err := trace.Collect(ten.mk(), ten.reqs)
		if err != nil {
			return nil, err
		}
		traces[ten.id] = tr
		sum, err := trace.Summarize(tr.Reader())
		if err != nil {
			return nil, err
		}
		distinct += uint64(sum.DistinctObjects)
		if _, err := reg.Ingest(ten.id, tr.Reader()); err != nil {
			return nil, err
		}
	}

	// A budget that forces triage: roughly a third of the combined
	// working set, so no split can fit everyone.
	budget := distinct * 35 / 100
	demands, err := reg.Demands("objects")
	if err != nil {
		return nil, err
	}
	wf, err := reg.Allocate(budget, "objects")
	if err != nil {
		return nil, err
	}
	if err := wf.Feasible(); err != nil {
		return nil, fmt.Errorf("waterfill plan infeasible: %w", err)
	}
	plans := []fleet.Plan{wf, fleet.ProportionalSplit(demands, budget), fleet.UniformSplit(demands, budget)}

	// Ground truth: run each tenant's real K-LRU at its allocated
	// capacity and aggregate misses over the whole fleet's traffic.
	simulated := func(p fleet.Plan) (float64, error) {
		var misses, total uint64
		for _, a := range p.Allocations {
			tr := traces[a.Tenant]
			reqs := uint64(tr.Len())
			total += reqs
			if a.Capacity == 0 {
				misses += reqs // no cache: everything misses
				continue
			}
			cache := simulator.NewKLRU(simulator.ObjectCapacity(int(a.Capacity)), k, true, opt.Seed)
			st, err := simulator.Run(cache, tr.Reader())
			if err != nil {
				return 0, err
			}
			misses += st.Misses
		}
		if total == 0 {
			return 0, nil
		}
		return float64(misses) / float64(total), nil
	}

	table := Table{
		Title: fmt.Sprintf("Shared budget %d objects over 3 tenants (traffic %d/%d/%d, K=%d)",
			budget, n*3/2, n, n/2, k),
		Columns: []string{"policy", "hot", "broad", "loop", "predicted miss", "simulated miss"},
	}
	for _, p := range plans {
		byTenant := map[string]fleet.Allocation{}
		for _, a := range p.Allocations {
			byTenant[a.Tenant] = a
		}
		sim, err := simulated(p)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			p.Method,
			fmt.Sprintf("%d", byTenant["hot"].Capacity),
			fmt.Sprintf("%d", byTenant["broad"].Capacity),
			fmt.Sprintf("%d", byTenant["loop"].Capacity),
			f4(p.AggregateMiss),
			f4(sim),
		})
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"the waterfill row must carry the lowest predicted aggregate miss by construction; the simulated column validates the advice end to end against real K-LRU caches",
			"expected shape: waterfill starves the shallow broad tenant to fund the hot tenant's steep head and the loop tenant's cliff, which naive splits cannot do",
		},
	}, nil
}
