package experiments

import (
	"fmt"

	"krr/internal/core"
	"krr/internal/mrc"
)

func init() {
	register(Experiment{
		ID:          "space",
		Title:       "Space cost of the KRR stack (§5.6)",
		Description: "Metadata bytes per tracked object and the effect of spatial sampling.",
		Run:         runSpace,
	})
	register(Experiment{
		ID:          "ablation.kprime",
		Title:       "K′ = K^1.4 correction on vs off (§4.2)",
		Description: "Accuracy impact of the corrected stack exponent on Type A traces.",
		Run:         runAblationKPrime,
	})
	register(Experiment{
		ID:          "ablation.replacement",
		Title:       "Eviction sampling with vs without placing back (Propositions 1 & 2)",
		Description: "Miss-ratio effect of the two sampling variants for small K and large C.",
		Run:         runAblationReplacement,
	})
}

func runSpace(opt Options) (*Result, error) {
	p := mustPreset("msr-proj")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	table := Table{
		Title:   fmt.Sprintf("KRR stack metadata for msr-proj-like (M=%d)", sum.DistinctObjects),
		Columns: []string{"configuration", "tracked objects", "metadata bytes", "bytes/object", "% of 200B/object WSS"},
	}
	for _, rate := range []float64{1, 0.1, 0.01, 0.001} {
		cfg := core.Config{K: 5, Seed: opt.Seed}
		if rate < 1 {
			cfg.SamplingRate = rate
		}
		prof := core.MustProfiler(cfg)
		if err := prof.ProcessAll(tr.Reader()); err != nil {
			return nil, err
		}
		tracked := prof.Stack().Len()
		meta := prof.Stack().MemoryOverheadBytes()
		wss := uint64(sum.DistinctObjects) * 200
		perObj := "—"
		if tracked > 0 {
			perObj = fmt.Sprintf("%d", meta/uint64(tracked))
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("R = %g", rate),
			fmt.Sprintf("%d", tracked),
			fmt.Sprintf("%d", meta),
			perObj,
			fmt.Sprintf("%.4f%%", 100*float64(meta)/float64(wss)),
		})
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"paper accounting (§5.6): ~68-72 bytes/object assuming a bucketed hash map; the open-addressing position index cuts this to ~28-36 bytes/object (12 B array slot + 12 B index slot at <= 3/4 load); with R = 0.001 and 200-byte objects the metadata is well under 0.036% of the working set",
		},
	}, nil
}

func runAblationKPrime(opt Options) (*Result, error) {
	table := Table{
		Title:   "MAE vs simulated K-LRU with and without the K′ correction",
		Columns: []string{"trace", "K", "K′ = K (uncorrected)", "K′ = K^1.4 (paper)"},
	}
	var notes []string
	for _, name := range []string{"msr-web", "loop", "ycsb-e-1.5"} {
		p := mustPreset(name)
		tr, sum, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
		for _, k := range []int{4, 8, 16} {
			truth, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k)*3, opt.Workers)
			if err != nil {
				return nil, err
			}
			raw, _, err := krrCurve(tr, core.Config{K: k, KPrime: float64(k), Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			corrected, _, err := krrCurve(tr, core.Config{K: k, Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				name, fmt.Sprintf("%d", k),
				f4(mrc.MAE(raw, truth, sizes)),
				f4(mrc.MAE(corrected, truth, sizes)),
			})
		}
	}
	notes = append(notes,
		"expected shape (§4.2): the correction matters most on recency-ordered (loop/scan) traces, where uncorrected KRR under-evicts old objects")
	return &Result{Tables: []Table{table}, Notes: notes}, nil
}

func runAblationReplacement(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	fig := Figure{Title: "ablation.replacement"}
	var notes []string
	for _, k := range []int{2, 8} {
		with, err := simKLRUVariant(tr, k, sizes, true, opt)
		if err != nil {
			return nil, err
		}
		without, err := simKLRUVariant(tr, k, sizes, false, opt)
		if err != nil {
			return nil, err
		}
		fig.Panels = append(fig.Panels, Panel{
			Title: fmt.Sprintf("K=%d", k), XLabel: "cache size (# objects)", YLabel: "miss ratio",
			Series: []Series{
				curveSeries("with placing back (Prop. 1)", with, sizes),
				curveSeries("without placing back (Prop. 2)", without, sizes),
			},
		})
		notes = append(notes, fmt.Sprintf("K=%d: MAE between variants %.4f", k, mrc.MAE(with, without, sizes)))
	}
	notes = append(notes,
		"expected shape (§3): for small K and large cache the two variants yield approximately the same eviction behaviour")
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}
