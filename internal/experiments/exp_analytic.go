package experiments

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/mrc"
)

func init() {
	register(Experiment{
		ID:          "ext.analytic",
		Title:       "Closed-form analytic tier vs stateful models (§6.2)",
		Description: "Che/Fagin closed forms against the K-LRU reference and the KRR stack: accuracy, runtime and resident footprint on a Type B and a Type A trace.",
		Run:         runExtAnalytic,
	})
}

// runExtAnalytic measures what the instant-estimate tier buys and
// costs: on IRM-like (Type B) traffic the closed forms should track
// the reference at a fraction of the stateful models' footprint; on
// scan/loop (Type A) traffic their error is structural — the
// popularity distribution alone cannot see cyclic reuse — and the
// table shows exactly how far off that puts them.
func runExtAnalytic(opt Options) (*Result, error) {
	var tables []Table
	for _, presetName := range []string{"ycsb-c-0.99", "loop"} {
		p := mustPreset(presetName)
		tr, sum, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
		k := opt.Ks[len(opt.Ks)/2]
		ref, err := simKLRU(tr, k, sizes, opt.Seed, 0)
		if err != nil {
			return nil, err
		}
		table := Table{
			Title: fmt.Sprintf("Analytic tier on %s (Type %s, %d requests, M=%d, K=%d)",
				p.Name, p.Type, tr.Len(), sum.DistinctObjects, k),
			Columns: []string{"model", "MAE vs K-LRU sim", "time", "footprint"},
		}
		for _, name := range []string{"che", "fagin", "krr", "aet"} {
			m, err := model.New(name, model.Options{K: k, Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			curve, elapsed, err := modelCurve(tr, name, model.Options{K: k, Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			// Footprint is read from a second, non-finalized replay so
			// the live resident state is measured, not the drained one.
			if err := model.ProcessAll(m, tr.Reader()); err != nil {
				return nil, err
			}
			table.Rows = append(table.Rows, []string{
				name,
				f4(mrc.MAE(curve, ref, sizes)),
				dur(elapsed),
				fmt.Sprintf("%d B", model.FootprintOf(m)),
			})
		}
		tables = append(tables, table)
	}
	return &Result{
		Tables: tables,
		Notes: []string{
			"che/fagin keep no reuse state: a Space-Saving head sketch plus a HyperLogLog distinct estimate, O(1) in trace length and working set (DESIGN.md §14)",
			"Type A scans are out of model for the closed forms by construction; the loop table documents the structural error, matching the looser difftest envelopes",
		},
	}, nil
}
