// Package experiments reproduces every table and figure of the
// paper's evaluation (§5) plus the ablations called out in DESIGN.md.
// Each experiment is a registry entry mapping an identifier
// ("table5.1", "fig5.5", ...) to a runner that generates workloads,
// executes models against ground truth, and renders rows/series.
//
// Absolute numbers (notably the wall-clock rows of Tables 5.3/5.4)
// are hardware-dependent; what each runner asserts and reports is the
// paper's *shape*: orderings, ratios and crossovers.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options scales the experiment suite. The zero value is filled with
// defaults by Fill; tests use small scales, the CLI defaults to a
// laptop-sized full run.
type Options struct {
	// Scale multiplies every preset's key-space (1.0 = preset base).
	Scale float64
	// ReqFraction multiplies every preset's default request count.
	ReqFraction float64
	// MaxRequests caps the per-trace request count (0 = no cap).
	MaxRequests int
	// SimSizes is the number of simulated cache sizes for ground
	// truth (the paper uses 40 for accuracy, 25 for timing).
	SimSizes int
	// Ks are the sampling sizes swept (default 1,2,4,8,16,32).
	Ks []int
	// TracesPerFamily truncates each workload family (0 = all).
	TracesPerFamily int
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed fixes all randomness.
	Seed uint64
}

// Fill returns a copy with defaults applied.
func (o Options) Fill() Options {
	if o.Scale <= 0 {
		o.Scale = 0.2
	}
	if o.ReqFraction <= 0 {
		o.ReqFraction = 0.25
	}
	if o.SimSizes <= 0 {
		o.SimSizes = 20
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{1, 2, 4, 8, 16, 32}
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Table is one rendered table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Panel is one subplot.
type Panel struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Figure is a set of panels.
type Figure struct {
	Title  string
	Panels []Panel
}

// Result is an experiment's output.
type Result struct {
	ID      string
	Title   string
	Tables  []Table
	Figures []Figure
	// Notes carry shape assertions and paper-vs-measured commentary.
	Notes   []string
	Elapsed time.Duration
}

// Experiment is a registry entry.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(Options) (*Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes an experiment by ID with timing.
func Run(id string, opt Options) (*Result, error) {
	e, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	start := time.Now()
	res, err := e.Run(opt.Fill())
	if err != nil {
		return nil, err
	}
	res.ID = e.ID
	if res.Title == "" {
		res.Title = e.Title
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// IDs lists registered experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// WriteMarkdown renders the result as GitHub-flavoured markdown,
// including ASCII renderings of each figure panel.
func (r *Result) WriteMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
	if r.Elapsed > 0 {
		fmt.Fprintf(w, "_runtime: %s_\n\n", r.Elapsed.Round(time.Millisecond))
	}
	for _, t := range r.Tables {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
		fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
		seps := make([]string, len(t.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, row := range t.Rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
		}
		fmt.Fprintln(w)
	}
	for _, f := range r.Figures {
		fmt.Fprintf(w, "### %s\n\n", f.Title)
		for _, p := range f.Panels {
			fmt.Fprintf(w, "```\n%s```\n\n", RenderASCII(p, 72, 18))
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteCSV renders every figure series as "panel,series,x,y" lines.
func (r *Result) WriteCSV(w io.Writer) error {
	for _, f := range r.Figures {
		for _, p := range f.Panels {
			for _, s := range p.Series {
				for i := range s.X {
					if _, err := fmt.Fprintf(w, "%s,%s,%s,%v,%v\n",
						f.Title, p.Title, s.Name, s.X[i], s.Y[i]); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
