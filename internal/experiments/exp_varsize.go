package experiments

import (
	"fmt"

	"krr/internal/core"
	"krr/internal/mrc"
	"krr/internal/stats"
)

func init() {
	register(Experiment{
		ID:          "table5.2",
		Title:       "MAE of var-KRR (± spatial) on variable-size MSR and Twitter workloads",
		Description: "Byte-granularity accuracy (Table 5.2).",
		Run:         runTable52,
	})
	register(Experiment{
		ID:          "fig5.3",
		Title:       "uni-KRR vs var-KRR vs exact K-LRU on variable-size traces",
		Description: "Why size-awareness matters (Fig 5.3), with model runtimes.",
		Run:         runFig53,
	})
	register(Experiment{
		ID:          "ablation.sizearray",
		Title:       "sizeArray (Algorithm 3) vs exact Fenwick byte distances",
		Description: "Accuracy and runtime cost of the paper's approximate prefix structure.",
		Run:         runAblationSizeArray,
	})
}

// byteEvalSizes picks evaluation byte capacities over the byte WSS.
func byteEvalSizes(wssBytes uint64, n int) []uint64 {
	return mrc.EvenSizes(wssBytes, n)
}

func runTable52(opt Options) (*Result, error) {
	families := []string{"msr", "twitter"}
	table := Table{
		Title:   "MAE (byte-granularity) vs byte-capacity K-LRU simulation",
		Columns: []string{"K", "Var-KRR MSR", "Var-KRR Twitter", "+Spatial MSR", "+Spatial Twitter"},
	}
	// Accumulate per (family, K).
	plain := map[string][]stats.Welford{}
	sampled := map[string][]stats.Welford{}
	for _, fam := range families {
		plain[fam] = make([]stats.Welford, len(opt.Ks))
		sampled[fam] = make([]stats.Welford, len(opt.Ks))
	}
	var notes []string

	for _, fam := range families {
		for _, p := range familyTraces(fam, opt) {
			tr, sum, err := materialize(p, opt, true)
			if err != nil {
				return nil, err
			}
			sizes := byteEvalSizes(sum.WSSBytes, opt.SimSizes)
			rate := rateFor(sum.DistinctObjects)
			for ki, k := range opt.Ks {
				truth, err := simKLRUBytes(tr, k, sizes, opt.Seed+uint64(k)*17, opt.Workers)
				if err != nil {
					return nil, err
				}
				model, _, err := krrByteCurve(tr, core.Config{K: k, Seed: opt.Seed, Bytes: core.BytesSizeArray})
				if err != nil {
					return nil, err
				}
				plain[fam][ki].Add(mrc.MAE(model, truth, sizes))

				sModel, _, err := krrByteCurve(tr, core.Config{
					K: k, Seed: opt.Seed, Bytes: core.BytesSizeArray, SamplingRate: rate})
				if err != nil {
					return nil, err
				}
				sampled[fam][ki].Add(mrc.MAE(sModel, truth, sizes))
			}
		}
		notes = append(notes, fmt.Sprintf("%s: %d variable-size traces", fam, len(familyTraces(fam, opt))))
	}

	var sumPlain, sumSampled stats.Welford
	for ki, k := range opt.Ks {
		row := []string{fmt.Sprintf("%d", k),
			f4(plain["msr"][ki].Mean()), f4(plain["twitter"][ki].Mean()),
			f4(sampled["msr"][ki].Mean()), f4(sampled["twitter"][ki].Mean())}
		table.Rows = append(table.Rows, row)
		sumPlain.Add(plain["msr"][ki].Mean())
		sumPlain.Add(plain["twitter"][ki].Mean())
		sumSampled.Add(sampled["msr"][ki].Mean())
		sumSampled.Add(sampled["twitter"][ki].Mean())
	}
	table.Rows = append(table.Rows, []string{"Average",
		f4(sumPlain.Mean()), "", f4(sumSampled.Mean()), ""})
	notes = append(notes, "paper shape: var-KRR averages <0.001 (MSR) and <0.0003 (Twitter); spatial sampling adds ~1-2e-3")
	return &Result{Tables: []Table{table}, Notes: notes}, nil
}

func runFig53(opt Options) (*Result, error) {
	cases := []struct {
		preset string
		k      int
	}{
		{"msr-rsrch", 8}, {"msr-src1", 8}, {"msr-web", 8}, {"msr-hm", 8},
		{"tw-34.1", 16}, {"tw-26.0", 16}, {"tw-45.0", 16}, {"tw-52.7", 16},
	}
	fig := Figure{Title: "Fig 5.3"}
	var notes []string
	for _, cse := range cases {
		p := mustPreset(cse.preset)
		tr, sum, err := materialize(p, opt, true)
		if err != nil {
			return nil, err
		}
		sizes := byteEvalSizes(sum.WSSBytes, opt.SimSizes)
		truth, err := simKLRUBytes(tr, cse.k, sizes, opt.Seed+7, opt.Workers)
		if err != nil {
			return nil, err
		}
		uni, uniTime, err := krrByteCurve(tr, core.Config{K: cse.k, Seed: opt.Seed, Bytes: core.BytesUniform})
		if err != nil {
			return nil, err
		}
		vark, varTime, err := krrByteCurve(tr, core.Config{K: cse.k, Seed: opt.Seed, Bytes: core.BytesSizeArray})
		if err != nil {
			return nil, err
		}
		panel := Panel{
			Title:  fmt.Sprintf("%s K=%d", cse.preset, cse.k),
			XLabel: "cache size (bytes)", YLabel: "miss ratio",
			Series: []Series{
				curveSeries("exact K-LRU", truth, sizes),
				curveSeries("uni-KRR", uni, sizes),
				curveSeries("var-KRR", vark, sizes),
			},
		}
		fig.Panels = append(fig.Panels, panel)
		uniMAE := mrc.MAE(uni, truth, sizes)
		varMAE := mrc.MAE(vark, truth, sizes)
		notes = append(notes, fmt.Sprintf(
			"%s K=%d: uni-KRR MAE %.4f (%s), var-KRR MAE %.4f (%s)",
			cse.preset, cse.k, uniMAE, dur(uniTime), varMAE, dur(varTime)))
	}
	notes = append(notes, "expected shape: var-KRR tracks the truth; uni-KRR deviates on size-heterogeneous traces at modest extra runtime")
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func runAblationSizeArray(opt Options) (*Result, error) {
	p := mustPreset("tw-26.0")
	tr, sum, err := materialize(p, opt, true)
	if err != nil {
		return nil, err
	}
	sizes := byteEvalSizes(sum.WSSBytes, opt.SimSizes)
	const k = 8
	approx, approxTime, err := krrByteCurve(tr, core.Config{K: k, Seed: opt.Seed, Bytes: core.BytesSizeArray})
	if err != nil {
		return nil, err
	}
	exact, exactTime, err := krrByteCurve(tr, core.Config{K: k, Seed: opt.Seed, Bytes: core.BytesFenwick})
	if err != nil {
		return nil, err
	}
	table := Table{
		Title:   "sizeArray vs Fenwick (tw-26.0-like, K=8)",
		Columns: []string{"tracker", "time", "MAE vs Fenwick-tracked curve"},
		Rows: [][]string{
			{"sizeArray (Algorithm 3)", dur(approxTime), f4(mrc.MAE(approx, exact, sizes))},
			{"Fenwick (exact oracle)", dur(exactTime), "0 (reference)"},
		},
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"design choice: the paper's sizeArray trades exactness between power-of-two boundaries for O(log M) maintenance; the MAE column shows the realized curve-level cost",
		},
	}, nil
}
