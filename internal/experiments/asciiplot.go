package experiments

import (
	"fmt"
	"math"
	"strings"
)

// RenderASCII draws a panel as a text plot: one glyph per series,
// linear axes, with a legend and axis ranges. It is intentionally
// plain — the CSV output feeds real plotting tools; this rendering
// makes shapes reviewable inside EXPERIMENTS.md.
func RenderASCII(p Panel, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '~', '^'}

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return p.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, g byte) {
		cx := int((x - minX) / (maxX - minX) * float64(width-1))
		cy := int((y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = g
		}
	}
	for si, s := range p.Series {
		g := glyphs[si%len(glyphs)]
		// Draw with linear interpolation between points so sparse
		// series stay readable.
		for i := 1; i < len(s.X); i++ {
			steps := width / 2
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(s.X[i-1]+f*(s.X[i]-s.X[i-1]), s.Y[i-1]+f*(s.Y[i]-s.Y[i-1]), g)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], g)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.Title)
	fmt.Fprintf(&sb, "%-8.3g ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&sb, "         │%s\n", string(row))
	}
	fmt.Fprintf(&sb, "%-8.3g ┤%s\n", minY, strings.Repeat("─", width))
	fmt.Fprintf(&sb, "          %-12.4g%s%12.4g\n", minX, strings.Repeat(" ", maxInt(0, width-24)), maxX)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "          x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(&sb, "          %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
