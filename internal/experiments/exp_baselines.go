package experiments

import (
	"fmt"
	"time"

	"krr/internal/aet"
	"krr/internal/counterstacks"
	"krr/internal/mimir"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/shards"
	"krr/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "ext.lru-baselines",
		Title:       "Exact-LRU MRC techniques compared (§6.1)",
		Description: "Olken stack (exact) vs SHARDS vs AET vs Counter Stacks: accuracy and runtime on one trace.",
		Run:         runExtLRUBaselines,
	})
}

func runExtLRUBaselines(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	rate := rateFor(sum.DistinctObjects)

	type method struct {
		name  string
		run   func() (*mrc.Curve, error)
		notes string
	}

	// Exact reference.
	exactProf := olken.NewProfiler(1)
	startExact := time.Now()
	if err := exactProf.ProcessAll(tr.Reader()); err != nil {
		return nil, err
	}
	exactTime := time.Since(startExact)
	exact := exactProf.ObjectMRC(1)

	table := Table{
		Title:   fmt.Sprintf("Exact-LRU MRC techniques on msr-web-like (%d requests, M=%d)", tr.Len(), sum.DistinctObjects),
		Columns: []string{"technique", "MAE vs exact", "time", "space model"},
		Rows: [][]string{
			{"Olken balanced-tree stack (exact)", "0 (reference)", dur(exactTime), "O(M) tree + hash"},
		},
	}

	methods := []method{
		{
			name: fmt.Sprintf("SHARDS fixed-rate (R=%.3g)", rate),
			run: func() (*mrc.Curve, error) {
				s := shards.NewFixedRate(rate, 2, true)
				if err := s.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return s.MRC(), nil
			},
			notes: "O(R·M) tree",
		},
		{
			name: "SHARDS fixed-size (s_max=8K)",
			run: func() (*mrc.Curve, error) {
				s := shards.NewFixedSize(1.0, 8192, 3)
				if err := s.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return s.MRC(), nil
			},
			notes: "bounded: 8K objects",
		},
		{
			name: fmt.Sprintf("AET (R=%.3g)", rate),
			run: func() (*mrc.Curve, error) {
				m := aet.New(rate)
				if err := m.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return m.MRC(), nil
			},
			notes: "reuse-time histogram only",
		},
		{
			name: "StatStack (same reuse histogram)",
			run: func() (*mrc.Curve, error) {
				m := aet.New(rate)
				if err := m.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return m.StatStackMRC(), nil
			},
			notes: "reuse-time histogram only",
		},
		{
			name: "Counter Stacks (d=1000, 64 counters)",
			run: func() (*mrc.Curve, error) {
				cs := counterstacks.New(counterstacks.Config{DownsampleInterval: 1000, MaxCounters: 64})
				if err := cs.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return cs.MRC(), nil
			},
			notes: "64 HLL sketches",
		},
		{
			name: "MIMIR (B=128 buckets)",
			run: func() (*mrc.Curve, error) {
				m := mimir.New(mimir.DefaultBuckets)
				if err := m.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				return m.MRC(), nil
			},
			notes: "O(B) per access",
		},
	}
	for _, m := range methods {
		start := time.Now()
		curve, err := m.run()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		table.Rows = append(table.Rows, []string{
			m.name, f4(mrc.MAE(curve, exact, sizes)), dur(elapsed), m.notes,
		})
	}
	_ = trace.DefaultObjectSize
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"context (§2.3, §5.3): all four model *exact LRU*; for a K-LRU cache with small K they share the same systematic error that motivates KRR, and for K >= 32 any of them suffices",
		},
	}, nil
}
