package experiments

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/mrc"
)

func init() {
	register(Experiment{
		ID:          "ext.lru-baselines",
		Title:       "Exact-LRU MRC techniques compared (§6.1)",
		Description: "Every registered LRU model (Olken, SHARDS, AET, StatStack, Counter Stacks, MIMIR): accuracy and runtime on one trace.",
		Run:         runExtLRUBaselines,
	})
}

// exactLRUReference is the registry entry used as the exact baseline
// the other LRU models are scored against.
const exactLRUReference = "olken"

func runExtLRUBaselines(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	rate := rateFor(sum.DistinctObjects)

	// Exact reference: the unsampled Olken stack.
	exact, exactTime, err := modelCurve(tr, exactLRUReference, model.Options{Seed: opt.Seed})
	if err != nil {
		return nil, err
	}

	table := Table{
		Title:   fmt.Sprintf("Exact-LRU MRC techniques on msr-web-like (%d requests, M=%d)", tr.Len(), sum.DistinctObjects),
		Columns: []string{"technique", "MAE vs exact", "time", "space model"},
		Rows: [][]string{
			{exactLRUReference + " (exact reference)", "0 (reference)", dur(exactTime), registrySpace(exactLRUReference)},
		},
	}

	// Every registered model of the exact-LRU target, spatially sampled
	// at the paper's rate — no per-model wiring: the registry supplies
	// construction and metadata.
	for _, info := range model.ByTarget("lru") {
		if info.Name == exactLRUReference {
			continue
		}
		curve, elapsed, err := modelCurve(tr, info.Name, model.Options{
			Seed:         opt.Seed,
			SamplingRate: rate,
		})
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%s (R=%.3g)", info.Name, rate),
			f4(mrc.MAE(curve, exact, sizes)),
			dur(elapsed),
			info.Space,
		})
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"context (§2.3, §5.3): all techniques model *exact LRU*; for a K-LRU cache with small K they share the same systematic error that motivates KRR, and for K >= 32 any of them suffices",
			"models are enumerated from the internal/model registry (ByTarget \"lru\"); adding a model there adds a row here",
		},
	}, nil
}

// registrySpace returns the registry's space summary for a model.
func registrySpace(name string) string {
	info, _ := model.Lookup(name)
	return info.Space
}
