package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyOpts keeps experiment tests fast: minuscule key spaces and
// request counts. Shape assertions stay meaningful because every
// generator preserves its structure at small scale.
func tinyOpts() Options {
	return Options{
		Scale:           0.01,
		ReqFraction:     0.01,
		MaxRequests:     15000,
		SimSizes:        6,
		Ks:              []int{1, 4, 16},
		TracesPerFamily: 2,
		Seed:            7,
	}.Fill()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation.kprime", "ablation.redis-sampling", "ablation.replacement", "ablation.sizearray",
		"ext.aet-crossover", "ext.analytic", "ext.dlru", "ext.duel", "ext.fleet", "ext.lru-baselines", "ext.minisim", "ext.opt-bound", "ext.policies",
		"fig1.1", "fig5.1", "fig5.2", "fig5.3", "fig5.4", "fig5.5",
		"space", "table5.1", "table5.2", "table5.3", "table5.4",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	o := Options{}.Fill()
	if o.Scale <= 0 || o.ReqFraction <= 0 || o.SimSizes <= 0 || len(o.Ks) == 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

// runOne executes an experiment at tiny scale and sanity-checks the
// rendering round trip.
func runOne(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, tinyOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id %q", res.ID)
	}
	if len(res.Tables)+len(res.Figures) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	var md strings.Builder
	if err := res.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), id) {
		t.Fatalf("%s markdown missing id", id)
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig11(t *testing.T) {
	res := runOne(t, "fig1.1")
	p := res.Figures[0].Panels[0]
	// K sweep plus exact LRU.
	if len(p.Series) != len(tinyOpts().Ks)+1 {
		t.Fatalf("series count %d", len(p.Series))
	}
	// Miss ratios are probabilities.
	for _, s := range p.Series {
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("miss ratio %v out of range", y)
			}
		}
	}
}

func TestTable51ShapeAndAccuracy(t *testing.T) {
	res := runOne(t, "table5.1")
	tb := res.Tables[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("families rows = %d", len(tb.Rows))
	}
	// Every MAE cell must parse and be small (< 0.08 even at tiny
	// scale with few eval sizes).
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if v < 0 || v > 0.08 {
				t.Fatalf("MAE %v out of expected range in row %v", v, row)
			}
		}
	}
}

func TestFig51(t *testing.T) {
	res := runOne(t, "fig5.1")
	if len(res.Figures[0].Panels) != 2 {
		t.Fatal("want 2 panels")
	}
	// 3 Ks × 3 curves + LRU.
	if got := len(res.Figures[0].Panels[0].Series); got != 10 {
		t.Fatalf("series = %d, want 10", got)
	}
}

func TestFig52TypeSeparation(t *testing.T) {
	res := runOne(t, "fig5.2")
	if len(res.Figures) != 2 {
		t.Fatal("want Type A and Type B figures")
	}
	// Notes must report a larger mean K=1↔LRU gap for the Type A set
	// than for the Type B set on average.
	var gapA, gapB float64
	var nA, nB int
	for _, note := range res.Notes {
		var gap, conv float64
		if _, err := parseGapNote(note, &gap, &conv); err != nil {
			continue
		}
		if strings.Contains(note, "(A)") {
			gapA += gap
			nA++
		} else if strings.Contains(note, "(B)") {
			gapB += gap
			nB++
		}
	}
	if nA == 0 || nB == 0 {
		t.Fatalf("missing gap notes: %v", res.Notes)
	}
	if gapA/float64(nA) <= gapB/float64(nB) {
		t.Fatalf("Type A mean gap %.3f not larger than Type B %.3f", gapA/float64(nA), gapB/float64(nB))
	}
}

// parseGapNote extracts the two floats from a fig5.2 note.
func parseGapNote(note string, gap, conv *float64) (int, error) {
	i := strings.Index(note, "= ")
	if i < 0 {
		return 0, strconv.ErrSyntax
	}
	var rest string
	if _, err := fscan(note[i+2:], gap, &rest); err != nil {
		return 0, err
	}
	j := strings.LastIndex(note, "= ")
	if j <= i {
		return 0, strconv.ErrSyntax
	}
	if _, err := fscan(note[j+2:], conv, &rest); err != nil {
		return 0, err
	}
	return 2, nil
}

func fscan(s string, v *float64, rest *string) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	f, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		return 0, err
	}
	*v = f
	*rest = s[end:]
	return 1, nil
}

func TestTable52(t *testing.T) {
	res := runOne(t, "table5.2")
	tb := res.Tables[0]
	if len(tb.Rows) != len(tinyOpts().Ks)+1 { // + average row
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil || v < 0 || v > 0.15 {
				t.Fatalf("byte MAE cell %q implausible", cell)
			}
		}
	}
}

func TestFig53UniVsVar(t *testing.T) {
	res := runOne(t, "fig5.3")
	if len(res.Figures[0].Panels) != 8 {
		t.Fatalf("panels = %d, want 8", len(res.Figures[0].Panels))
	}
}

func TestTable53Ordering(t *testing.T) {
	res := runOne(t, "table5.3")
	tb := res.Tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 methods (6 serial + 2 sharded)", len(tb.Rows))
	}
	// The backward update must be faster per-request than the linear
	// baseline (shape assertion from Table 5.3).
	perM := map[string]float64{}
	for _, row := range tb.Rows {
		d, err := parseDuration(row[3])
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		perM[row[0]] = d
	}
	if perM["Backward Stack Update"] >= perM["Basic Stack (linear update)"] {
		t.Fatalf("backward (%v) not faster than linear (%v)", perM["Backward Stack Update"], perM["Basic Stack (linear update)"])
	}
	// The spatial speedup only exists when the 8K-object floor leaves
	// a rate below 1 — at this tiny test scale sampling may be fully
	// disabled, so only assert when it was actually active.
	samplingActive := true
	for _, note := range res.Notes {
		if strings.Contains(note, "rate R = 1") {
			samplingActive = false
		}
	}
	if samplingActive && perM["Backward + Spatial"] >= perM["Backward Stack Update"]*1.5 {
		t.Fatalf("spatial sampling did not reduce cost")
	}
}

func parseDuration(s string) (float64, error) {
	d, err := time.ParseDuration(s)
	return float64(d), err
}

func TestFig54Overhead(t *testing.T) {
	res := runOne(t, "fig5.4")
	if len(res.Figures[0].Panels) != 3 {
		t.Fatalf("panels = %d, want 3 families", len(res.Figures[0].Panels))
	}
	for _, p := range res.Figures[0].Panels {
		for _, s := range p.Series {
			if s.Y[0] != 1 {
				t.Fatalf("%s/%s not normalized to K=1", p.Title, s.Name)
			}
		}
		// Swap positions must grow with K.
		swaps := p.Series[1]
		if swaps.Y[len(swaps.Y)-1] <= swaps.Y[0] {
			t.Fatalf("%s: swap overhead did not grow with K", p.Title)
		}
	}
}

func TestTable54(t *testing.T) {
	res := runOne(t, "table5.4")
	if len(res.Tables[0].Rows) != 3 {
		t.Fatal("want 3 methods")
	}
}

func TestFig55RedisValidation(t *testing.T) {
	res := runOne(t, "fig5.5")
	if len(res.Figures[0].Panels) != 3 {
		t.Fatal("want 3 traces")
	}
	for _, p := range res.Figures[0].Panels {
		if len(p.Series) != 3 {
			t.Fatalf("%s: series = %d", p.Title, len(p.Series))
		}
	}
}

func TestSpaceAccounting(t *testing.T) {
	res := runOne(t, "space")
	tb := res.Tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Sampling must reduce tracked objects monotonically.
	var prev float64 = -1
	for _, row := range tb.Rows {
		tracked, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && tracked > prev {
			t.Fatalf("tracked objects grew as rate fell: %v", tb.Rows)
		}
		prev = tracked
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablation.kprime", "ablation.replacement", "ablation.sizearray", "ablation.redis-sampling"} {
		runOne(t, id)
	}
}

func TestExtensions(t *testing.T) {
	for _, id := range []string{"ext.aet-crossover", "ext.analytic", "ext.minisim", "ext.policies", "ext.dlru", "ext.duel", "ext.fleet", "ext.lru-baselines", "ext.opt-bound"} {
		runOne(t, id)
	}
}

func TestExtDLRUAdaptiveCompetitive(t *testing.T) {
	res, err := Run("ext.dlru", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The adaptive row must not be meaningfully worse than the best
	// fixed configuration.
	rows := res.Tables[0].Rows
	best := 2.0
	var adaptive float64
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(row[0], "fixed") && v < best {
			best = v
		}
		if strings.HasPrefix(row[0], "DLRU") {
			adaptive = v
		}
	}
	if adaptive > best+0.05 {
		t.Fatalf("adaptive %v much worse than best fixed %v", adaptive, best)
	}
}

func TestExtFleetWaterfillWins(t *testing.T) {
	res, err := Run("ext.fleet", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Column 4 is the predicted aggregate miss; the waterfill row must
	// be at or below both baselines.
	rows := res.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	miss := map[string]float64{}
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		miss[row[0]] = v
	}
	wf, ok := miss["waterfill"]
	if !ok {
		t.Fatalf("no waterfill row in %v", rows)
	}
	for _, base := range []string{"proportional", "uniform"} {
		v, ok := miss[base]
		if !ok {
			t.Fatalf("no %s row in %v", base, rows)
		}
		if wf > v+1e-9 {
			t.Fatalf("waterfill predicted %v worse than %s %v", wf, base, v)
		}
	}
}

func TestRenderASCIIEdgeCases(t *testing.T) {
	if out := RenderASCII(Panel{Title: "empty"}, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty panel rendering: %q", out)
	}
	p := Panel{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0.5, 0.5}}},
	}
	out := RenderASCII(p, 10, 3) // forces minimum dimensions
	if !strings.Contains(out, "flat") || !strings.Contains(out, "s") {
		t.Fatalf("rendering lost content: %q", out)
	}
	single := Panel{Title: "pt", Series: []Series{{Name: "p", X: []float64{3}, Y: []float64{1}}}}
	if out := RenderASCII(single, 40, 8); !strings.Contains(out, "pt") {
		t.Fatal("single-point series must render")
	}
}
