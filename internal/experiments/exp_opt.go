package experiments

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/simulator"
	"krr/internal/stats"
)

func init() {
	register(Experiment{
		ID:          "ext.opt-bound",
		Title:       "Belady OPT bound vs LRU and K-LRU",
		Description: "How much optimality headroom random-sampling eviction leaves on Type A and Type B traces.",
		Run:         runExtOPT,
	})
}

func runExtOPT(opt Options) (*Result, error) {
	fig := Figure{Title: "ext.opt-bound"}
	var notes []string
	for _, name := range []string{"msr-web", "msr-usr"} {
		p := mustPreset(name)
		tr, sum, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)

		optCurve := simulator.OPTMRC(tr, sizes, opt.Workers)
		k1, err := simKLRU(tr, 1, sizes, opt.Seed+1, opt.Workers)
		if err != nil {
			return nil, err
		}
		k8, err := simKLRU(tr, 8, sizes, opt.Seed+2, opt.Workers)
		if err != nil {
			return nil, err
		}
		lru, _, err := modelCurve(tr, exactLRUReference, model.Options{Seed: 1})
		if err != nil {
			return nil, err
		}

		panel := Panel{
			Title: fmt.Sprintf("%s (%s)", name, p.Type), XLabel: "cache size (# objects)", YLabel: "miss ratio",
			Series: []Series{
				curveSeries("OPT (Belady)", optCurve, sizes),
				curveSeries("K-LRU K=1", k1, sizes),
				curveSeries("K-LRU K=8", k8, sizes),
				curveSeries("exact LRU", lru, sizes),
			},
		}
		fig.Panels = append(fig.Panels, panel)

		gapLRU := stats.MAE(panel.Series[0].Y, panel.Series[3].Y)
		gapK1 := stats.MAE(panel.Series[0].Y, panel.Series[1].Y)
		notes = append(notes, fmt.Sprintf("%s: mean LRU−OPT gap %.3f, K=1−OPT gap %.3f", name, gapLRU, gapK1))
	}
	notes = append(notes,
		"reading: on loop-heavy Type A traces K=1 sits closer to OPT than LRU does (random eviction accidentally approximates OPT's streaming behaviour); on hotspot Type B traces LRU is near-optimal and sampling only approaches it")
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}
