package experiments

import (
	"fmt"

	"krr/internal/redislike"
	"krr/internal/trace"
	"krr/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "ext.duel",
		Title:       "Set-dueling policy tournament (§7 future work)",
		Description: "Leader key-partitions race rival (policy, K) configurations; PSEL counters steer the follower, audited by KRR shadow profilers.",
		Run:         runExtDuel,
	})
}

// duelWorkload is one phase-changing request stream for the
// tournament to chase.
type duelWorkload struct {
	name  string
	build func(seed uint64, keys uint64, phaseLen int) []trace.Request
}

func duelWorkloads() []duelWorkload {
	return []duelWorkload{
		{
			// One phase change in each direction: the skewed phases
			// want sampled LRU at the Redis-default K, the loop wants
			// the cheapest non-recency eviction.
			name: "skew → loop → skew",
			build: func(seed uint64, keys uint64, phaseLen int) []trace.Request {
				gens := []trace.Reader{
					workload.NewZipf(seed, keys, 1.1, nil, 0),
					workload.NewLoop(keys*2/3, nil),
					workload.NewZipf(seed+2, keys, 1.1, nil, 0),
				}
				return concatPhases(gens, phaseLen)
			},
		},
		{
			// A scan storm over a wide disjoint keyspace interleaved
			// with the hot set. The incumbent stays competitive here,
			// so this phase change tests the opposite property from
			// the loop: the tournament must hold steady instead of
			// flapping on noisy epochs.
			name: "skew → scan-storm → skew",
			build: func(seed uint64, keys uint64, phaseLen int) []trace.Request {
				scans := workload.NewScan(seed+5, keys*4, 0.8, keys, nil)
				scans.SetKeySpace(keys * 8)
				gens := []trace.Reader{
					workload.NewZipf(seed+4, keys, 1.2, nil, 0),
					workload.NewMix(seed+6,
						[]trace.Reader{workload.NewZipf(seed+4, keys, 1.2, nil, 0), scans},
						[]float64{0.5, 0.5}),
					workload.NewZipf(seed+4, keys, 1.2, nil, 0),
				}
				return concatPhases(gens, phaseLen)
			},
		},
	}
}

func concatPhases(gens []trace.Reader, phaseLen int) []trace.Request {
	reqs := make([]trace.Request, 0, len(gens)*phaseLen)
	for _, g := range gens {
		for i := 0; i < phaseLen; i++ {
			r, _ := g.Next()
			reqs = append(reqs, r)
		}
	}
	return reqs
}

func redislikeMiss(cfg redislike.Config, reqs []trace.Request) float64 {
	e := redislike.NewEngine(cfg)
	hits := 0
	for _, req := range reqs {
		if e.Access(req) {
			hits++
		}
	}
	return 1 - float64(hits)/float64(len(reqs))
}

func runExtDuel(opt Options) (*Result, error) {
	keys := scaledKeys(60_000, opt)
	budget := keys / 3
	const objCost = trace.DefaultObjectSize + redislike.PerKeyOverhead
	maxMemory := budget * objCost
	phaseLen := int(float64(300_000) * opt.ReqFraction)
	if opt.MaxRequests > 0 && phaseLen*3 > opt.MaxRequests {
		phaseLen = opt.MaxRequests / 3
	}

	rivals := redislike.DefaultRivals()
	var tables []Table
	var notes []string
	for _, wl := range duelWorkloads() {
		reqs := wl.build(opt.Seed, keys, phaseLen)

		table := Table{
			Title:   fmt.Sprintf("%s, %d requests, budget %d objects", wl.name, len(reqs), budget),
			Columns: []string{"configuration", "miss ratio"},
		}
		worst, best := 0.0, 2.0
		for _, r := range rivals {
			miss := redislikeMiss(redislike.Config{
				MaxMemory: maxMemory,
				Samples:   r.Samples,
				Policy:    r.Policy,
				Seed:      opt.Seed,
			}, reqs)
			if miss > worst {
				worst = miss
			}
			if miss < best {
				best = miss
			}
			table.Rows = append(table.Rows, []string{"static " + r.String(), f4(miss)})
		}

		d, err := redislike.NewDuel(redislike.DuelConfig{
			MaxMemory:     maxMemory,
			Rivals:        rivals,
			EpochRequests: phaseLen / 15,
			Seed:          opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		hits := 0
		for _, req := range reqs {
			if d.Access(req) {
				hits++
			}
		}
		adaptive := 1 - float64(hits)/float64(len(reqs))
		table.Rows = append(table.Rows, []string{"set-dueling tournament", f4(adaptive)})
		tables = append(tables, table)

		st := d.State()
		note := fmt.Sprintf("%s: tournament %s vs best static %s (Δ %+.4f), worst static %s; %d epochs, %d switches, final winner %s",
			wl.name, f4(adaptive), f4(best), adaptive-best, f4(worst), st.Epoch, st.Switches, d.Winner())
		if st.JudgeBestK > 0 {
			note += fmt.Sprintf("; KRR judge: best K=%d, agreed on %d/%d epochs",
				st.JudgeBestK, st.JudgeAgree, st.JudgeAgree+st.JudgeDisagree)
		}
		notes = append(notes, note)
		switch {
		case adaptive >= worst:
			notes = append(notes, fmt.Sprintf("%s: FAIL — tournament did not beat the worst static rival", wl.name))
		case adaptive > best+0.02:
			notes = append(notes, fmt.Sprintf("%s: FAIL — tournament more than 0.02 above the best static rival", wl.name))
		default:
			notes = append(notes, fmt.Sprintf("%s: PASS — within 0.02 of the best static rival and strictly below the worst", wl.name))
		}
	}
	notes = append(notes,
		"expected shape (§7): the PSEL-steered follower tracks the per-phase winner when phases flip the best configuration (loop) and holds the incumbent when they do not (scan-storm), landing near the best static choice either way")
	return &Result{Tables: tables, Notes: notes}, nil
}
