package experiments

import (
	"fmt"
	"math"
	"strings"
)

// RenderSVG draws a panel as a standalone SVG document: axes with tick
// labels, one colored polyline per series, and a legend. The CSV
// output remains the canonical data; SVG makes the curves reviewable
// directly in a browser or repository viewer.
func RenderSVG(p Panel, width, height int) string {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	const (
		marginL = 70
		marginR = 150
		marginT = 30
		marginB = 50
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	palette := []string{
		"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
		"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	esc := func(s string) string {
		s = strings.ReplaceAll(s, "&", "&amp;")
		s = strings.ReplaceAll(s, "<", "&lt;")
		return strings.ReplaceAll(s, ">", "&gt;")
	}
	fmt.Fprintf(&sb, `<text x="%d" y="18" font-family="sans-serif" font-size="13" font-weight="bold">%s</text>`+"\n",
		marginL, esc(p.Title))

	if math.IsInf(minX, 1) {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">(no data)</text>`+"\n",
			marginL, height/2)
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginT + (1-(y-minY)/(maxY-minY))*plotH }

	// Axes box and gridlines with tick labels.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)
	for i := 0; i <= 4; i++ {
		f := float64(i) / 4
		xv := minX + f*(maxX-minX)
		yv := minY + f*(maxY-minY)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px(xv), marginT, px(xv), marginT+plotH)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(yv), marginL+plotW, py(yv))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), marginT+plotH+15, fmtTick(xv))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-5, py(yv)+3, fmtTick(yv))
	}
	// Axis labels.
	if p.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-12, esc(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, esc(p.YLabel))
	}

	// Series polylines and legend.
	for si, s := range p.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) == 1 {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[0]), py(s.Y[0]), color)
		} else {
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		ly := marginT + 14 + si*16
		fmt.Fprintf(&sb, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			float64(width-marginR+8), ly, float64(width-marginR+28), ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			width-marginR+33, ly+3, esc(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// fmtTick formats an axis tick compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// WriteSVGs renders every panel of every figure, calling emit with a
// suggested file name and the SVG document.
func (r *Result) WriteSVGs(emit func(name, svg string) error) error {
	for fi, f := range r.Figures {
		for pi, p := range f.Panels {
			name := fmt.Sprintf("%s_%d_%d.svg", sanitize(r.ID), fi, pi)
			if err := emit(name, RenderSVG(p, 640, 360)); err != nil {
				return err
			}
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
