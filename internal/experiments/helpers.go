package experiments

import (
	"fmt"
	"time"

	"krr/internal/core"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

// materialize builds an in-memory trace for a preset under the given
// options.
func materialize(p workload.Preset, opt Options, variable bool) (*trace.Trace, trace.Summary, error) {
	n := int(float64(p.DefaultRequests) * opt.ReqFraction)
	if opt.MaxRequests > 0 && n > opt.MaxRequests {
		n = opt.MaxRequests
	}
	if n < 1000 {
		n = 1000
	}
	r := p.New(opt.Scale, opt.Seed, variable)
	tr, err := trace.Collect(r, n)
	if err != nil {
		return nil, trace.Summary{}, err
	}
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		return nil, trace.Summary{}, err
	}
	return tr, sum, nil
}

// mustPreset resolves a preset or fails loudly — experiment IDs are
// static, so a missing preset is a programming error.
func mustPreset(name string) workload.Preset {
	p, ok := workload.ByName(name)
	if !ok {
		panic("experiments: unknown preset " + name)
	}
	return p
}

// evalSizes picks the evaluation cache sizes for a trace: evenly
// distributed over the working set (§5.3).
func evalSizes(distinct int, n int) []uint64 {
	return mrc.EvenSizes(uint64(distinct), n)
}

// rateFor picks the spatial sampling rate with the paper's 8K-object
// floor.
func rateFor(distinct int) float64 { return sampling.RateFor(distinct) }

// modelCurve replays the trace through a registered model and returns
// its object curve and wall time. This is the standard path for
// experiments; krrCurve below remains only for ablations that reach
// into core.Config knobs the model layer does not expose (KPrime).
func modelCurve(tr *trace.Trace, name string, opts model.Options) (*mrc.Curve, time.Duration, error) {
	m, err := model.New(name, opts)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := model.ProcessAll(m, tr.Reader()); err != nil {
		return nil, 0, err
	}
	curve := m.ObjectMRC()
	return curve, time.Since(start), nil
}

// krrCurve runs a KRR profiler over the trace and returns its object
// curve and wall time.
func krrCurve(tr *trace.Trace, cfg core.Config) (*mrc.Curve, time.Duration, error) {
	p, err := core.NewProfiler(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := p.ProcessAll(tr.Reader()); err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	return p.ObjectMRC(), elapsed, nil
}

// krrByteCurve runs a byte-granularity KRR profiler.
func krrByteCurve(tr *trace.Trace, cfg core.Config) (*mrc.Curve, time.Duration, error) {
	p, err := core.NewProfiler(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := p.ProcessAll(tr.Reader()); err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	bc, err := p.ByteMRC()
	if err != nil {
		return nil, 0, err
	}
	return bc, elapsed, nil
}

// simKLRU returns the ground-truth K-LRU curve via per-size
// simulation.
func simKLRU(tr *trace.Trace, k int, sizes []uint64, seed uint64, workers int) (*mrc.Curve, error) {
	return simulator.KLRUMRC(tr, k, sizes, seed, workers)
}

// simKLRUBytes returns the byte-capacity ground truth.
func simKLRUBytes(tr *trace.Trace, k int, sizes []uint64, seed uint64, workers int) (*mrc.Curve, error) {
	return simulator.KLRUByteMRC(tr, k, sizes, seed, workers)
}

// simKLRUVariant simulates K-LRU with the chosen eviction-sampling
// variant (with or without placing back, Propositions 1/2).
func simKLRUVariant(tr *trace.Trace, k int, sizes []uint64, withReplacement bool, opt Options) (*mrc.Curve, error) {
	return simulator.MRC(tr, sizes, opt.Workers, func(capacity uint64) simulator.Cache {
		return simulator.NewKLRU(simulator.ObjectCapacity(int(capacity)), k, withReplacement, opt.Seed+capacity)
	})
}

// curveSeries samples a curve at the given sizes into a Series.
func curveSeries(name string, c *mrc.Curve, at []uint64) Series {
	s := Series{Name: name, X: make([]float64, len(at)), Y: make([]float64, len(at))}
	for i, size := range at {
		s.X[i] = float64(size)
		s.Y[i] = c.Eval(size)
	}
	return s
}

// f4 formats a float with 4 significant decimals for table cells.
func f4(v float64) string { return fmt.Sprintf("%.5f", v) }

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// dur formats a duration for table cells.
func dur(d time.Duration) string { return d.Round(time.Microsecond).String() }
