package experiments

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/parallel"
	"krr/internal/redislike"
	"krr/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "fig5.5",
		Title:       "Validating KRR against the redislike engine",
		Description: "Engine MRCs at many memory sizes vs KRR+Spatial vs the in-house K-LRU simulator (Fig 5.5).",
		Run:         runFig55,
	})
	register(Experiment{
		ID:          "ablation.redis-sampling",
		Title:       "Biased dictGetSomeKeys vs good-random sampling in the engine",
		Description: "Reproduces the §5.7 deviation between Redis and the idealized simulator.",
		Run:         runAblationRedisSampling,
	})
}

// engineMRC replays the trace against redislike engines at each
// object budget (converted to maxmemory) in parallel.
func engineMRC(tr *trace.Trace, objSizes []uint64, mode redislike.SamplingMode, seed uint64, workers int) *mrc.Curve {
	const objCost = trace.DefaultObjectSize + redislike.PerKeyOverhead
	miss := parallel.Map(len(objSizes), workers, func(i int) float64 {
		e := redislike.NewEngine(redislike.Config{
			MaxMemory: objSizes[i] * objCost,
			Samples:   redislike.DefaultSamples,
			Sampling:  mode,
			Seed:      seed + uint64(i),
		})
		var hits, total int
		r := tr.Reader()
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			if req.Op == trace.OpDelete {
				e.Access(req)
				continue
			}
			total++
			if e.Access(req) {
				hits++
			}
		}
		return 1 - float64(hits)/float64(total)
	})
	return mrc.FromPoints(objSizes, miss)
}

func runFig55(opt Options) (*Result, error) {
	const k = redislike.DefaultSamples
	fig := Figure{Title: "Fig 5.5"}
	var notes []string
	for _, name := range []string{"msr-src2", "msr-web", "msr-proj"} {
		p := mustPreset(name)
		tr, sum, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		// The paper runs 50 Redis memory sizes; scale with SimSizes.
		sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
		rate := rateFor(sum.DistinctObjects)

		redis := engineMRC(tr, sizes, redislike.SampleSomeKeys, opt.Seed, opt.Workers)
		sim, err := simKLRU(tr, k, sizes, opt.Seed+3, opt.Workers)
		if err != nil {
			return nil, err
		}
		pred, _, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed, SamplingRate: rate})
		if err != nil {
			return nil, err
		}
		fig.Panels = append(fig.Panels, Panel{
			Title: name, XLabel: "cache size (# objects)", YLabel: "miss ratio",
			Series: []Series{
				curveSeries("redislike", redis, sizes),
				curveSeries("in-house simulator", sim, sizes),
				curveSeries("KRR+Spatial", pred, sizes),
			},
		})
		notes = append(notes, fmt.Sprintf("%s: KRR vs redislike MAE %.4f, simulator vs redislike MAE %.4f",
			name, mrc.MAE(pred, redis, sizes), mrc.MAE(sim, redis, sizes)))
	}
	notes = append(notes,
		"expected shape (§5.7): KRR tracks the engine closely; a slight engine↔simulator gap remains from Redis's biased key sampling")
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func runAblationRedisSampling(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	const k = redislike.DefaultSamples

	biased := engineMRC(tr, sizes, redislike.SampleSomeKeys, opt.Seed, opt.Workers)
	good := engineMRC(tr, sizes, redislike.SampleRandomKey, opt.Seed, opt.Workers)
	sim, err := simKLRU(tr, k, sizes, opt.Seed+11, opt.Workers)
	if err != nil {
		return nil, err
	}

	table := Table{
		Title:   "Engine sampling mode vs idealized K-LRU simulator (msr-web-like, K=5)",
		Columns: []string{"engine sampling", "MAE vs simulator"},
		Rows: [][]string{
			{"dictGetSomeKeys (biased, Redis default)", f4(mrc.MAE(biased, sim, sizes))},
			{"dictGetRandomKey (good random)", f4(mrc.MAE(good, sim, sizes))},
		},
	}
	return &Result{
		Tables: []Table{table},
		Figures: []Figure{{Title: "ablation.redis-sampling", Panels: []Panel{{
			Title: "msr-web-like, K=5", XLabel: "cache size (# objects)", YLabel: "miss ratio",
			Series: []Series{
				curveSeries("someKeys (biased)", biased, sizes),
				curveSeries("randomKey (good)", good, sizes),
				curveSeries("ideal simulator", sim, sizes),
			},
		}}}},
		Notes: []string{
			"expected shape (§5.7 footnote 3): good-random sampling matches the idealized simulator more closely than the biased default",
		},
	}, nil
}
