package experiments

import (
	"encoding/xml"
	"strings"
	"testing"
)

func samplePanel() Panel {
	return Panel{
		Title: "test & panel", XLabel: "size", YLabel: "miss",
		Series: []Series{
			{Name: "a<b", X: []float64{0, 10, 20}, Y: []float64{1, 0.5, 0.1}},
			{Name: "single", X: []float64{5}, Y: []float64{0.7}},
		},
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	svg := RenderSVG(samplePanel(), 640, 360)
	// Must parse as XML (escaping correct) and carry the content.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"polyline", "circle", "test &amp; panel", "a&lt;b", "<svg"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestRenderSVGEmptyPanel(t *testing.T) {
	svg := RenderSVG(Panel{Title: "empty"}, 100, 100) // also exercises minimum sizing
	if !strings.Contains(svg, "no data") {
		t.Fatal("empty panel must render a placeholder")
	}
}

func TestRenderSVGFlatSeries(t *testing.T) {
	p := Panel{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{0.5, 0.5}}}}
	svg := RenderSVG(p, 300, 200)
	if !strings.Contains(svg, "polyline") {
		t.Fatal("flat series must still draw")
	}
}

func TestWriteSVGs(t *testing.T) {
	res := &Result{
		ID: "fig5.1",
		Figures: []Figure{
			{Title: "f", Panels: []Panel{samplePanel(), samplePanel()}},
		},
	}
	var names []string
	err := res.WriteSVGs(func(name, svg string) error {
		names = append(names, name)
		if !strings.HasPrefix(svg, "<svg") {
			t.Fatal("not an svg")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "fig5_1_0_0.svg" {
		t.Fatalf("names %v", names)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2_500_000_000: "2.5G",
		3_200_000:     "3.2M",
		45_000:        "45k",
		250:           "250",
		0.53:          "0.53",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Fatalf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
