package experiments

import (
	"fmt"
	"time"

	"krr/internal/dlru"
	"krr/internal/minisim"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "ext.aet-crossover",
		Title:       "AET vs KRR for large K (§5.3 recommendation)",
		Description: "As K grows, K-LRU converges to LRU and the cheaper AET model becomes preferable.",
		Run:         runExtAET,
	})
	register(Experiment{
		ID:          "ext.minisim",
		Title:       "Miniature simulation vs KRR (§6.2 baseline)",
		Description: "Accuracy and cost of per-size scaled-down simulation against the one-pass stack model.",
		Run:         runExtMinisim,
	})
	register(Experiment{
		ID:          "ext.policies",
		Title:       "Sampled eviction beyond recency (§7 future work)",
		Description: "Miss ratios of sampled LRU / LFU / hyperbolic / TTL priorities on skew and scan workloads.",
		Run:         runExtPolicies,
	})
	register(Experiment{
		ID:          "ext.dlru",
		Title:       "DLRU-style adaptive sampling size (§1 motivation)",
		Description: "An online controller driven by KRR shadow profilers vs fixed K on a phase-changing workload.",
		Run:         runExtDLRU,
	})
}

func runExtAET(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	table := Table{
		Title:   "MAE vs simulated K-LRU and model runtime (msr-web-like)",
		Columns: []string{"K", "KRR MAE", "KRR time", "AET MAE", "AET time"},
	}
	for _, k := range []int{4, 16, 32, 64} {
		truth, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k), opt.Workers)
		if err != nil {
			return nil, err
		}
		pred, kTime, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		aCurve, aTime, err := modelCurve(tr, "aet", model.Options{Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", k),
			f4(mrc.MAE(pred, truth, sizes)), dur(kTime),
			f4(mrc.MAE(aCurve, truth, sizes)), dur(aTime),
		})
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"expected shape (§5.3): AET models exact LRU only, so its error *falls* as K grows and K-LRU converges to LRU, while its cost stays flat and below KRR's (whose swap work grows with K)",
		},
	}, nil
}

func runExtMinisim(opt Options) (*Result, error) {
	p := mustPreset("msr-src1")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
	rate := rateFor(sum.DistinctObjects)
	const k = 5

	truth, err := simKLRU(tr, k, sizes, opt.Seed+1, opt.Workers)
	if err != nil {
		return nil, err
	}
	pred, kTime, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed, SamplingRate: rate})
	if err != nil {
		return nil, err
	}
	sim, err := minisim.New(minisim.Config{Sizes: sizes, Rate: rate, K: k, Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sim.ProcessAll(tr.Reader()); err != nil {
		return nil, err
	}
	mTime := time.Since(start)
	mini := sim.MRC()

	table := Table{
		Title:   fmt.Sprintf("msr-src1-like, K=%d, R=%.3g, %d sizes", k, rate, len(sizes)),
		Columns: []string{"method", "MAE vs full simulation", "time"},
		Rows: [][]string{
			{"KRR + spatial (one pass, all sizes)", f4(mrc.MAE(pred, truth, sizes)), dur(kTime)},
			{fmt.Sprintf("miniature simulation (%d caches)", len(sizes)), f4(mrc.MAE(mini, truth, sizes)), dur(mTime)},
		},
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"trade-off (§6.2 vs §4): miniature simulation works for any policy but costs one scaled cache per evaluated size; KRR covers every size in one stack but is K-LRU-specific",
		},
	}, nil
}

func runExtPolicies(opt Options) (*Result, error) {
	workloads := []struct {
		name string
		mk   func() trace.Reader
	}{
		{"zipf-skew", func() trace.Reader {
			return workload.NewZipf(opt.Seed, scaledKeys(100_000, opt), 1.0, nil, 0)
		}},
		{"scan-mix", func() trace.Reader {
			zipf := workload.NewZipf(opt.Seed, scaledKeys(100_000, opt), 1.1, nil, 0)
			loop := workload.NewLoop(scaledKeys(60_000, opt), nil)
			loop.SetKeySpace(1 << 40)
			return workload.NewMix(opt.Seed+1, []trace.Reader{zipf, loop}, []float64{0.6, 0.4})
		}},
	}
	priorities := []simulator.Priority{
		simulator.Recency{},
		simulator.Frequency{},
		simulator.Frequency{Decay: 0.0001},
		simulator.Hyperbolic{},
	}
	table := Table{
		Title:   "Sampled-eviction (K=10) miss ratio at 25% / 50% of the working set",
		Columns: []string{"workload", "priority", "miss @25%", "miss @50%"},
	}
	n := int(float64(1_000_000) * opt.ReqFraction)
	if opt.MaxRequests > 0 && n > opt.MaxRequests {
		n = opt.MaxRequests
	}
	for _, w := range workloads {
		tr, err := trace.Collect(w.mk(), n)
		if err != nil {
			return nil, err
		}
		sum, err := trace.Summarize(tr.Reader())
		if err != nil {
			return nil, err
		}
		for _, prio := range priorities {
			row := []string{w.name, prio.Name()}
			if d, ok := prio.(simulator.Frequency); ok && d.Decay > 0 {
				row[1] = "lfu+decay"
			}
			for _, frac := range []float64{0.25, 0.5} {
				capObj := int(float64(sum.DistinctObjects) * frac)
				cache := simulator.NewSampled(simulator.SampledConfig{
					Capacity: simulator.ObjectCapacity(capObj),
					K:        10, Priority: prio, Seed: opt.Seed,
				})
				st, err := simulator.Run(cache, tr.Reader())
				if err != nil {
					return nil, err
				}
				row = append(row, f4(st.MissRatio()))
			}
			table.Rows = append(table.Rows, row)
		}
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"§7 future work realized on the simulator side: frequency-based priorities resist the scan phase that recency-based sampling thrashes on",
		},
	}, nil
}

func scaledKeys(base uint64, opt Options) uint64 {
	v := uint64(float64(base) * opt.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

func runExtDLRU(opt Options) (*Result, error) {
	// Phase-changing workload: Zipfian skew, then a loop exceeding the
	// budget, then skew again. Fixed K is wrong in one of the phases.
	keys := scaledKeys(60_000, opt)
	budget := keys / 3
	phaseLen := int(float64(400_000) * opt.ReqFraction)
	if opt.MaxRequests > 0 && phaseLen*3 > opt.MaxRequests {
		phaseLen = opt.MaxRequests / 3
	}
	mkStream := func() []trace.Request {
		var reqs []trace.Request
		z1 := workload.NewZipf(opt.Seed, keys, 1.1, nil, 0)
		loop := workload.NewLoop(keys*2/3, nil)
		z2 := workload.NewZipf(opt.Seed+2, keys, 1.1, nil, 0)
		for _, g := range []trace.Reader{z1, loop, z2} {
			for i := 0; i < phaseLen; i++ {
				r, _ := g.Next()
				reqs = append(reqs, r)
			}
		}
		return reqs
	}
	stream := mkStream()

	runFixed := func(k int) (float64, error) {
		cache := simulator.NewKLRU(simulator.ObjectCapacity(int(budget)), k, true, opt.Seed)
		var hits int
		for _, req := range stream {
			if cache.Access(req) {
				hits++
			}
		}
		return 1 - float64(hits)/float64(len(stream)), nil
	}

	table := Table{
		Title:   fmt.Sprintf("Phase-changing workload (skew → loop → skew), budget %d objects", budget),
		Columns: []string{"configuration", "miss ratio"},
	}
	for _, k := range []int{1, 8, 32} {
		miss, err := runFixed(k)
		if err != nil {
			return nil, err
		}
		table.Rows = append(table.Rows, []string{fmt.Sprintf("fixed K=%d", k), f4(miss)})
	}

	cache := simulator.NewKLRU(simulator.ObjectCapacity(int(budget)), 32, true, opt.Seed)
	ctl, err := dlru.New(dlru.Config{
		BudgetObjects: budget,
		Candidates:    []int{1, 8, 32},
		Window:        phaseLen / 4,
		SamplingRate:  0.2,
		Seed:          opt.Seed,
	}, cache)
	if err != nil {
		return nil, err
	}
	var hits int
	for _, req := range stream {
		if ctl.Process(req) {
			hits++
		}
	}
	adaptive := 1 - float64(hits)/float64(len(stream))
	table.Rows = append(table.Rows, []string{"DLRU adaptive (KRR shadow profilers)", f4(adaptive)})

	switches := 0
	for _, d := range ctl.Decisions() {
		if d.Switched {
			switches++
		}
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			fmt.Sprintf("controller made %d decisions, %d switches, final K=%d", len(ctl.Decisions()), switches, ctl.CurrentK()),
			"expected shape (§1): the adaptive configuration tracks the best fixed K per phase and lands at or below the best static choice",
		},
	}, nil
}
