package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"krr/internal/core"
	"krr/internal/mrc"
	"krr/internal/shards"
	"krr/internal/simulator"
	"krr/internal/stats"
	"krr/internal/trace"
)

func init() {
	register(Experiment{
		ID:          "table5.3",
		Title:       "Stack update efficiency: time to process MSR src1 requests (K=5)",
		Description: "Simulation vs basic/top-down/backward stacks ± spatial sampling (Table 5.3).",
		Run:         runTable53,
	})
	register(Experiment{
		ID:          "fig5.4",
		Title:       "Normalized average stack update overhead vs K (baseline K=1)",
		Description: "Update cost growth with sampling size (Fig 5.4).",
		Run:         runFig54,
	})
	register(Experiment{
		ID:          "table5.4",
		Title:       "Merged MSR master trace: KRR + spatial vs SHARDS",
		Description: "Runtime comparison on the merged trace (Table 5.4).",
		Run:         runTable54,
	})
}

// timed runs fn over the first n requests of tr and returns the wall
// time and the per-request extrapolation to perMillion requests.
func timed(tr *trace.Trace, n int, fn func(trace.Reader) error) (time.Duration, time.Duration, error) {
	if n > tr.Len() || n <= 0 {
		n = tr.Len()
	}
	r := trace.LimitReader(tr.Reader(), n)
	start := time.Now()
	if err := fn(r); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	perM := time.Duration(float64(elapsed) / float64(n) * 1e6)
	return elapsed, perM, nil
}

func runTable53(opt Options) (*Result, error) {
	p := mustPreset("msr-src1")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	const k = 5 // Redis's default maxmemory-samples
	rate := 0.01
	if r := rateFor(sum.DistinctObjects); r > rate {
		rate = r // keep >= 8K sampled objects, like the paper's footnote
	}
	table := Table{
		Title:   fmt.Sprintf("Processing %d requests of msr-src1-like (M=%d, K=%d)", tr.Len(), sum.DistinctObjects, k),
		Columns: []string{"method", "requests run", "wall time", "extrapolated / 1M requests"},
	}
	addRow := func(name string, n int, run func(trace.Reader) error) error {
		elapsed, perM, err := timed(tr, n, run)
		if err != nil {
			return err
		}
		used := n
		if used > tr.Len() || used <= 0 {
			used = tr.Len()
		}
		table.Rows = append(table.Rows, []string{name, fmt.Sprintf("%d", used), dur(elapsed), perM.Round(time.Millisecond).String()})
		return nil
	}

	// Ground-truth simulation at 25 sizes (serial, matching the
	// paper's single-machine interpolation run).
	simSizes := mrc.EvenSizes(uint64(sum.DistinctObjects), 25)
	if err := addRow("Simulation (25 sizes, interpolation)", tr.Len(), func(r trace.Reader) error {
		t2, err := trace.ReadAll(r)
		if err != nil {
			return err
		}
		_, err = simulator.KLRUMRC(t2, k, simSizes, opt.Seed, 1)
		return err
	}); err != nil {
		return nil, err
	}

	// Basic (linear) stack: O(N·M) — run a prefix and extrapolate.
	linearCap := 20000
	if err := addRow("Basic Stack (linear update)", linearCap, func(r trace.Reader) error {
		prof := core.MustProfiler(core.Config{K: k, Method: core.Linear, Seed: opt.Seed})
		return prof.ProcessAll(r)
	}); err != nil {
		return nil, err
	}

	methods := []struct {
		name string
		cfg  core.Config
	}{
		{"Top Down Stack Update", core.Config{K: k, Method: core.TopDown, Seed: opt.Seed}},
		{"Backward Stack Update", core.Config{K: k, Method: core.Backward, Seed: opt.Seed}},
		{"Top Down + Spatial", core.Config{K: k, Method: core.TopDown, Seed: opt.Seed, SamplingRate: rate}},
		{"Backward + Spatial", core.Config{K: k, Method: core.Backward, Seed: opt.Seed, SamplingRate: rate}},
	}
	for _, m := range methods {
		m := m
		if err := addRow(m.name, tr.Len(), func(r trace.Reader) error {
			prof := core.MustProfiler(m.cfg)
			return prof.ProcessAll(r)
		}); err != nil {
			return nil, err
		}
	}

	// Sharded pipeline rows (this repo's extension): the same backward
	// stack fanned out across W hash-partitioned workers. The timed
	// region covers routing, channel hand-off and the final drain.
	for _, w := range []int{2, 4} {
		w := w
		if err := addRow(fmt.Sprintf("Backward, sharded W=%d", w), tr.Len(), func(r trace.Reader) error {
			sp, err := core.NewShardedProfiler(core.Config{K: k, Method: core.Backward, Seed: opt.Seed, Workers: w})
			if err != nil {
				return err
			}
			if err := sp.ProcessAll(r); err != nil {
				return err
			}
			sp.Close()
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			fmt.Sprintf("spatial sampling rate R = %.3g", rate),
			"expected shape (Table 5.3): backward ≪ top-down ≪ linear; spatial sampling buys ~2 further orders of magnitude; simulation sits between top-down and linear",
			fmt.Sprintf("sharded rows run W stacks over key-partitioned substreams (scaling like SHARDS with R=1/W); on this machine GOMAXPROCS=%d, so gains beyond shorter per-shard swap chains require real cores", runtime.GOMAXPROCS(0)),
		},
	}, nil
}

func runFig54(opt Options) (*Result, error) {
	familyReps := map[string][]string{
		"YCSB":    {"ycsb-c-0.99", "ycsb-e-0.99"},
		"MSR":     {"msr-src1", "msr-web", "msr-usr"},
		"Twitter": {"tw-26.0", "tw-45.0"},
	}
	fig := Figure{Title: "Fig 5.4"}
	var notes []string
	for fam, names := range familyReps {
		// Average normalized per-request time of the practical
		// (spatially sampled) pipeline — the configuration the paper
		// profiles online — plus the pure per-update swap counts,
		// which expose the underlying O(K′ log M) growth.
		times := make([]stats.Welford, len(opt.Ks))
		swaps := make([]stats.Welford, len(opt.Ks))
		for _, name := range names {
			p := mustPreset(name)
			tr, sum, err := materialize(p, opt, false)
			if err != nil {
				return nil, err
			}
			rate := rateFor(sum.DistinctObjects)
			for ki, k := range opt.Ks {
				prof := core.MustProfiler(core.Config{K: k, Seed: opt.Seed, SamplingRate: rate})
				start := time.Now()
				if err := prof.ProcessAll(tr.Reader()); err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				times[ki].Add(float64(elapsed) / float64(tr.Len()))
				st := prof.Stack()
				if st.Updates() > 0 {
					swaps[ki].Add(float64(st.SwapSteps()) / float64(st.Updates()))
				}
			}
		}
		norm := make([]float64, len(opt.Ks))
		swapNorm := make([]float64, len(opt.Ks))
		for ki := range opt.Ks {
			norm[ki] = times[ki].Mean() / times[0].Mean()
			if swaps[0].Mean() > 0 {
				swapNorm[ki] = swaps[ki].Mean() / swaps[0].Mean()
			}
		}
		xs := make([]float64, len(opt.Ks))
		for i, k := range opt.Ks {
			xs[i] = float64(k)
		}
		fig.Panels = append(fig.Panels, Panel{
			Title: fam, XLabel: "sampling size K", YLabel: "overhead / K=1",
			Series: []Series{
				{Name: "wall time", X: xs, Y: norm},
				{Name: "swap positions", X: xs, Y: swapNorm},
			},
		})
		k16idx := -1
		for i, k := range opt.Ks {
			if k == 16 {
				k16idx = i
			}
		}
		if k16idx >= 0 {
			notes = append(notes, fmt.Sprintf(
				"%s: K=16 sampled-pipeline wall ×%.2f (paper: ≤ ~4×); pure swap positions ×%.2f (theory: ~K′ = K^1.4 scaling, compressed by small-distance saturation)",
				fam, norm[k16idx], swapNorm[k16idx]))
		}
	}
	// Verify the dilution explanation: at the paper's R = 0.001 the
	// filtered requests (hash test only) dominate the pipeline, so the
	// K-overhead ratio compresses toward the paper's ≤ ~4×. Accuracy
	// is irrelevant here; this measures wall time only.
	{
		p := mustPreset("msr-src1")
		tr, _, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		wall := func(k int) (time.Duration, error) {
			prof := core.MustProfiler(core.Config{K: k, Seed: opt.Seed, SamplingRate: 0.001})
			start := time.Now()
			if err := prof.ProcessAll(tr.Reader()); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		t1, err := wall(1)
		if err != nil {
			return nil, err
		}
		t16, err := wall(16)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf(
			"at the paper's R=0.001 (filtered requests dominate): K=16 pipeline wall ×%.2f over K=1 — the ≤4× regime of Fig 5.4",
			float64(t16)/float64(t1)))
	}
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func runTable54(opt Options) (*Result, error) {
	p := mustPreset("msr-master")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	rate := rateFor(sum.DistinctObjects)

	// The paper streams a 190M-request on-disk trace through each
	// method, so decode dominates and the methods' wall times nearly
	// coincide. Reproduce that protocol: persist the trace, then
	// stream it from disk for every model.
	tmp, err := os.CreateTemp("", "krr-master-*.trace")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	if err := trace.WriteBinary(tmp, tr); err != nil {
		return nil, err
	}
	tmp.Close()

	stream := func(process func(trace.Request)) (time.Duration, error) {
		f, err := os.Open(tmp.Name())
		if err != nil {
			return 0, err
		}
		defer f.Close()
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for {
			req, err := br.Next()
			if err != nil {
				break
			}
			process(req)
		}
		return time.Since(start), nil
	}

	table := Table{
		Title: fmt.Sprintf("Merged master trace streamed from disk (%d requests, M=%d, R=%.3g), averaged over K",
			tr.Len(), sum.DistinctObjects, rate),
		Columns: []string{"method", "mean wall time"},
	}
	var tdTotal, bwTotal time.Duration
	for _, k := range opt.Ks {
		tdProf := core.MustProfiler(core.Config{K: k, Method: core.TopDown, Seed: opt.Seed, SamplingRate: rate})
		td, err := stream(tdProf.Process)
		if err != nil {
			return nil, err
		}
		tdTotal += td
		bwProf := core.MustProfiler(core.Config{K: k, Method: core.Backward, Seed: opt.Seed, SamplingRate: rate})
		bw, err := stream(bwProf.Process)
		if err != nil {
			return nil, err
		}
		bwTotal += bw
	}
	tdMean := tdTotal / time.Duration(len(opt.Ks))
	bwMean := bwTotal / time.Duration(len(opt.Ks))

	sh := shards.NewFixedRate(rate, opt.Seed, false)
	shTime, err := stream(sh.Process)
	if err != nil {
		return nil, err
	}

	table.Rows = [][]string{
		{"Top Down + Spatial (KRR)", dur(tdMean)},
		{"Backward + Spatial (KRR)", dur(bwMean)},
		{"SHARDS (fixed rate)", dur(shTime)},
	}
	return &Result{
		Tables: []Table{table},
		Notes: []string{
			"expected shape (Table 5.4): backward+spatial ≈ SHARDS; top-down ~2× slower",
			fmt.Sprintf("measured ratios: topdown/shards = %.2f, backward/shards = %.2f",
				float64(tdMean)/float64(shTime), float64(bwMean)/float64(shTime)),
			"the paper's near-parity reflects trace-decode dominance on its 190M-request trace; at this scale the per-update model cost is still visible",
		},
	}, nil
}
