package experiments

import (
	"fmt"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/stats"
	"krr/internal/workload"
)

func init() {
	register(Experiment{
		ID:          "fig1.1",
		Title:       "MRCs of MSR web under K-LRU for K = 1..32",
		Description: "Motivation: the miss ratio gap between sampling sizes (Fig 1.1).",
		Run:         runFig11,
	})
	register(Experiment{
		ID:          "table5.1",
		Title:       "Average MAE of KRR (± spatial sampling) vs simulated K-LRU",
		Description: "Accuracy across MSR, YCSB and Twitter families (Table 5.1).",
		Run:         runTable51,
	})
	register(Experiment{
		ID:          "fig5.1",
		Title:       "Actual vs predicted K-LRU MRCs (YCSB E α=1.5, MSR src1)",
		Description: "Representative overlay of model and ground truth (Fig 5.1).",
		Run:         runFig51,
	})
	register(Experiment{
		ID:          "fig5.2",
		Title:       "Type A vs Type B traces under K-LRU and LRU",
		Description: "Taxonomy of K-sensitivity (Fig 5.2).",
		Run:         runFig52,
	})
}

func runFig11(opt Options) (*Result, error) {
	p := mustPreset("msr-web")
	tr, sum, err := materialize(p, opt, false)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)

	panel := Panel{
		Title:  "msr-web-like: simulated K-LRU MRCs",
		XLabel: "cache size (# objects)",
		YLabel: "miss ratio",
	}
	for _, k := range opt.Ks {
		c, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k), opt.Workers)
		if err != nil {
			return nil, err
		}
		panel.Series = append(panel.Series, curveSeries(fmt.Sprintf("K=%d", k), c, sizes))
	}
	exact, _, err := modelCurve(tr, "lru", model.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	panel.Series = append(panel.Series, curveSeries("exact LRU", exact, sizes))

	// Shape assertion: the K=1 and LRU curves must differ materially
	// somewhere (this is the motivating gap).
	gap := 0.0
	k1 := panel.Series[0]
	lru := panel.Series[len(panel.Series)-1]
	for i := range k1.Y {
		if d := k1.Y[i] - lru.Y[i]; d > gap || -d > gap {
			if d < 0 {
				d = -d
			}
			gap = d
		}
	}
	return &Result{
		Figures: []Figure{{Title: "Fig 1.1", Panels: []Panel{panel}}},
		Notes: []string{
			fmt.Sprintf("max |K=1 − LRU| miss-ratio gap: %.3f (paper motivation: the gap is large on this trace)", gap),
		},
	}, nil
}

// familyTraces selects the traces evaluated for one family.
func familyTraces(family string, opt Options) []workload.Preset {
	ps := workload.Family(family)
	// Exclude the merged master trace from the accuracy average (the
	// paper uses it only for timing).
	out := ps[:0:0]
	for _, p := range ps {
		if p.Name != "msr-master" {
			out = append(out, p)
		}
	}
	if opt.TracesPerFamily > 0 && len(out) > opt.TracesPerFamily {
		out = out[:opt.TracesPerFamily]
	}
	return out
}

func runTable51(opt Options) (*Result, error) {
	families := []string{"msr", "ycsb", "twitter"}
	cols := []string{"family"}
	for _, k := range opt.Ks {
		cols = append(cols, fmt.Sprintf("KRR K=%d", k))
	}
	for _, k := range opt.Ks {
		cols = append(cols, fmt.Sprintf("+Spatial K=%d", k))
	}
	table := Table{Title: "Average MAE vs simulated K-LRU", Columns: cols}

	var notes []string
	var worst float64
	for _, family := range families {
		presets := familyTraces(family, opt)
		plain := make([]stats.Welford, len(opt.Ks))
		sampled := make([]stats.Welford, len(opt.Ks))
		for _, p := range presets {
			tr, sum, err := materialize(p, opt, false)
			if err != nil {
				return nil, err
			}
			sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
			rate := rateFor(sum.DistinctObjects)
			for ki, k := range opt.Ks {
				truth, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k)*13, opt.Workers)
				if err != nil {
					return nil, err
				}
				pred, _, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed})
				if err != nil {
					return nil, err
				}
				mae := mrc.MAE(pred, truth, sizes)
				plain[ki].Add(mae)
				if mae > worst {
					worst = mae
				}

				sModel, _, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed, SamplingRate: rate})
				if err != nil {
					return nil, err
				}
				sMAE := mrc.MAE(sModel, truth, sizes)
				sampled[ki].Add(sMAE)
				if sMAE > worst {
					worst = sMAE
				}
			}
		}
		row := []string{family}
		for ki := range opt.Ks {
			row = append(row, f4(plain[ki].Mean()))
		}
		for ki := range opt.Ks {
			row = append(row, f4(sampled[ki].Mean()))
		}
		table.Rows = append(table.Rows, row)
		notes = append(notes, fmt.Sprintf("%s: %d traces evaluated", family, len(presets)))
	}
	notes = append(notes, fmt.Sprintf("max MAE across all instances: %.4f (paper: ~0.01 worst case)", worst))
	return &Result{Tables: []Table{table}, Notes: notes}, nil
}

func runFig51(opt Options) (*Result, error) {
	fig := Figure{Title: "Fig 5.1"}
	var notes []string
	for _, name := range []string{"ycsb-e-1.5", "msr-src1"} {
		p := mustPreset(name)
		tr, sum, err := materialize(p, opt, false)
		if err != nil {
			return nil, err
		}
		sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
		rate := rateFor(sum.DistinctObjects)
		panel := Panel{Title: name, XLabel: "cache size (# objects)", YLabel: "miss ratio"}
		for _, k := range []int{1, 4, 16} {
			truth, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k), opt.Workers)
			if err != nil {
				return nil, err
			}
			pred, _, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed})
			if err != nil {
				return nil, err
			}
			spatial, _, err := modelCurve(tr, "krr", model.Options{K: k, Seed: opt.Seed, SamplingRate: rate})
			if err != nil {
				return nil, err
			}
			panel.Series = append(panel.Series,
				curveSeries(fmt.Sprintf("real K=%d", k), truth, sizes),
				curveSeries(fmt.Sprintf("KRR K=%d", k), pred, sizes),
				curveSeries(fmt.Sprintf("KRR+Spatial K=%d", k), spatial, sizes),
			)
			notes = append(notes, fmt.Sprintf("%s K=%d: KRR MAE %.4f, KRR+Spatial MAE %.4f",
				name, k, mrc.MAE(pred, truth, sizes), mrc.MAE(spatial, truth, sizes)))
		}
		exact, _, err := modelCurve(tr, "lru", model.Options{Seed: 1})
		if err != nil {
			return nil, err
		}
		panel.Series = append(panel.Series, curveSeries("exact LRU", exact, sizes))
		fig.Panels = append(fig.Panels, panel)
	}
	return &Result{Figures: []Figure{fig}, Notes: notes}, nil
}

func runFig52(opt Options) (*Result, error) {
	typeA := []string{"ycsb-e-1.5", "msr-src1", "msr-src2", "msr-web", "msr-proj", "tw-34.1"}
	typeB := []string{"msr-usr", "ycsb-c-0.99", "tw-45.0"}

	var notes []string
	build := func(names []string, label string) (Figure, error) {
		fig := Figure{Title: "Fig 5.2" + label}
		for _, name := range names {
			p := mustPreset(name)
			tr, sum, err := materialize(p, opt, false)
			if err != nil {
				return fig, err
			}
			sizes := evalSizes(sum.DistinctObjects, opt.SimSizes)
			panel := Panel{Title: name, XLabel: "cache size (# objects)", YLabel: "miss ratio"}
			maxK := opt.Ks[0]
			for _, k := range opt.Ks {
				if k > maxK {
					maxK = k
				}
			}
			var k1, kMax Series
			for _, k := range opt.Ks {
				c, err := simKLRU(tr, k, sizes, opt.Seed+uint64(k)*7, opt.Workers)
				if err != nil {
					return fig, err
				}
				s := curveSeries(fmt.Sprintf("K=%d", k), c, sizes)
				panel.Series = append(panel.Series, s)
				if k == 1 {
					k1 = s
				}
				if k == maxK {
					kMax = s
				}
			}
			exact, _, err := modelCurve(tr, "lru", model.Options{Seed: 1})
			if err != nil {
				return fig, err
			}
			lru := curveSeries("exact LRU", exact, sizes)
			panel.Series = append(panel.Series, lru)
			fig.Panels = append(fig.Panels, panel)

			// Shape: record the mean |K=1 − LRU| gap and the
			// largest-K↔LRU convergence.
			gap := stats.MAE(k1.Y, lru.Y)
			conv := stats.MAE(kMax.Y, lru.Y)
			notes = append(notes, fmt.Sprintf("%s (%s): mean |K=1 − LRU| = %.3f, |K=%d − LRU| = %.3f",
				name, p.Type, gap, maxK, conv))
		}
		return fig, nil
	}

	figA, err := build(typeA, "a (Type A: K-sensitive)")
	if err != nil {
		return nil, err
	}
	figB, err := build(typeB, "b (Type B: K-insensitive)")
	if err != nil {
		return nil, err
	}
	notes = append(notes,
		"expected shape: Type A panels show a wide K=1↔LRU gap; Type B curves overlap; K=32 tracks LRU everywhere")
	return &Result{Figures: []Figure{figA, figB}, Notes: notes}, nil
}
