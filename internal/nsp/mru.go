package nsp

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
)

// MRUStack computes exact Mattson stack distances for MRU
// (evict-most-recently-used) replacement in O(1) per reference.
//
// MRU satisfies the inclusion property, but its Mattson stack is NOT
// the priority-sorted order Stack maintains: the just-referenced
// object is pinned on top even though it holds the *lowest* retention
// priority, and objects evicted long ago keep frozen recency
// priorities that can outrank current residents. Running Stack with
// the MRU policy therefore models a hypothetical perfect-history
// priority cache, not a real MRU cache (the differential harness in
// internal/difftest measures the gap at up to ~0.43 mean absolute
// error on loop traces).
//
// For MRU, Mattson's general update rule — the displaced stack top
// bubbles down past every entry it outranks — collapses to a
// constant-time transposition, because the old top outranks nothing:
//
//   - hit at depth d: the referenced object and the stack top swap
//     positions; every other object keeps its position,
//   - cold miss: the old top sinks to the stack bottom and the new
//     object takes the top.
//
// Positions are stable under both moves, so a plain position array
// plus a key index give O(1) per reference with no ordering structure
// at all.
type MRUStack struct {
	keys []uint64       // position (0-based) -> key
	pos  map[uint64]int // key -> position in keys
	hist *histogram.Dense
}

// NewMRU builds an exact MRU stack-distance model.
func NewMRU() *MRUStack {
	return &MRUStack{
		pos:  make(map[uint64]int),
		hist: histogram.NewDense(1024),
	}
}

// Len returns the number of distinct objects seen.
func (s *MRUStack) Len() int { return len(s.keys) }

// Reference processes one access and returns its MRU stack distance
// (1-based depth before the update; cold references have none).
func (s *MRUStack) Reference(key uint64) Result {
	if v, ok := s.pos[key]; ok {
		d := uint64(v) + 1
		if v != 0 {
			top := s.keys[0]
			s.keys[0], s.keys[v] = key, top
			s.pos[key], s.pos[top] = 0, v
		}
		s.hist.Add(d)
		return Result{Distance: d}
	}
	if len(s.keys) > 0 {
		top := s.keys[0]
		s.keys = append(s.keys, top)
		s.pos[top] = len(s.keys) - 1
		s.keys[0] = key
	} else {
		s.keys = append(s.keys, key)
	}
	s.pos[key] = 0
	s.hist.AddCold()
	return Result{Cold: true}
}

// Process feeds one request (deletes are unsupported by the stack
// model and ignored, as in Stack).
func (s *MRUStack) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		return
	}
	s.Reference(req.Key)
}

// ProcessAll drains a reader.
func (s *MRUStack) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the MRU miss ratio curve.
func (s *MRUStack) MRC() *mrc.Curve { return mrc.FromHistogram(s.hist, 1) }

// Hist exposes the stack distance histogram.
func (s *MRUStack) Hist() *histogram.Dense { return s.hist }

// MemoryOverheadBytes estimates the model's resident metadata: the
// position array and index map plus the histogram.
func (s *MRUStack) MemoryOverheadBytes() uint64 {
	const perEntry = 48 // pos map entry
	return uint64(cap(s.keys))*8 + uint64(len(s.pos))*perEntry + s.hist.MemBytes()
}
