package nsp

import (
	"sort"
	"testing"

	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

// naiveNSP computes the same distances by brute force: position 1 is
// the previously referenced object, positions 2.. are every other
// seen object sorted by priority descending.
type naiveNSP struct {
	policy Policy
	counts map[uint64]uint64
	prios  map[uint64][2]uint64
	last   uint64
	hasTop bool
	clock  uint64
}

func newNaive(p Policy) *naiveNSP {
	return &naiveNSP{policy: p, counts: map[uint64]uint64{}, prios: map[uint64][2]uint64{}}
}

func (n *naiveNSP) reference(key uint64) (uint64, bool) {
	n.clock++
	count := n.counts[key] + 1
	n.counts[key] = count
	cold := count == 1

	var dist uint64
	if !cold {
		if n.hasTop && key == n.last {
			dist = 1
		} else {
			old := n.prios[key]
			type kp struct {
				k uint64
				p [2]uint64
			}
			var others []kp
			for k, p := range n.prios {
				if k == key || (n.hasTop && k == n.last) {
					continue
				}
				others = append(others, kp{k, p})
			}
			sort.Slice(others, func(i, j int) bool { return less(others[j].p, others[i].p) })
			rank := uint64(0)
			for _, o := range others {
				if less(old, o.p) {
					rank++
				}
			}
			dist = rank + 2
		}
	}
	n.prios[key] = n.policy.Priority(count, n.clock)
	n.last = key
	n.hasTop = true
	return dist, cold
}

func TestAgainstNaive(t *testing.T) {
	for _, policy := range []Policy{LFU{}, MRU{}} {
		s := New(policy, 1)
		ref := newNaive(policy)
		src := xrand.New(7)
		for i := 0; i < 15000; i++ {
			key := src.Uint64n(120)
			wantDist, wantCold := ref.reference(key)
			got := s.Reference(key)
			if got.Cold != wantCold {
				t.Fatalf("%s step %d: cold %v want %v", policy.Name(), i, got.Cold, wantCold)
			}
			if !got.Cold && got.Distance != wantDist {
				t.Fatalf("%s step %d key %d: dist %d want %d", policy.Name(), i, key, got.Distance, wantDist)
			}
		}
	}
}

func TestImmediateRepeatIsOne(t *testing.T) {
	s := New(LFU{}, 1)
	s.Reference(5)
	if got := s.Reference(5); got.Cold || got.Distance != 1 {
		t.Fatalf("repeat: %+v", got)
	}
}

// perfectLFUMiss simulates an exact perfect-LFU cache: on a miss the
// lowest-priority resident (other than the just-fetched object) is
// evicted; frequency history survives eviction.
func perfectLFUMiss(tr *trace.Trace, capObjects int) float64 {
	counts := map[uint64]uint64{}
	prios := map[uint64][2]uint64{}
	resident := map[uint64]bool{}
	var clock uint64
	var hits, total int
	for _, req := range tr.Reqs {
		clock++
		total++
		counts[req.Key]++
		if resident[req.Key] {
			hits++
		} else {
			resident[req.Key] = true
			for len(resident) > capObjects {
				var victim uint64
				first := true
				for k := range resident {
					if k == req.Key {
						continue
					}
					if first || less(prios[k], prios[victim]) {
						victim, first = k, false
					}
				}
				delete(resident, victim)
			}
		}
		prios[req.Key] = LFU{}.Priority(counts[req.Key], clock)
	}
	return 1 - float64(hits)/float64(total)
}

func TestLFUMRCMatchesSimulation(t *testing.T) {
	g := workload.NewZipf(3, 1500, 1.0, nil, 0)
	tr, _ := trace.Collect(g, 40000)

	s := New(LFU{}, 1)
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	curve := s.MRC()

	for _, c := range []int{100, 400, 800, 1200} {
		sim := perfectLFUMiss(tr, c)
		model := curve.Eval(uint64(c))
		if d := sim - model; d > 0.02 || d < -0.02 {
			t.Fatalf("capacity %d: simulated perfect-LFU %v vs NSP stack %v", c, sim, model)
		}
	}
}

func TestLFUKeepsHotHeadCheap(t *testing.T) {
	// Zipf traffic: LFU's miss ratio at a small cache must be low —
	// the head keys have the highest counts and are never evicted.
	g := workload.NewZipf(5, 10000, 1.2, nil, 0)
	s := New(LFU{}, 1)
	s.ProcessAll(trace.LimitReader(g, 150000))
	c := s.MRC()
	if c.Eval(500) > 0.45 {
		t.Fatalf("LFU miss at 5%% of keys = %v, too high for zipf 1.2", c.Eval(500))
	}
	for i := 1; i < c.Len(); i++ {
		if c.Miss[i] > c.Miss[i-1]+1e-12 {
			t.Fatal("NSP curve must be non-increasing")
		}
	}
}

// perfectMRUMiss simulates an exact MRU cache: on a miss with a full
// cache, the most recently accessed resident (other than the
// just-fetched object) is evicted.
func perfectMRUMiss(tr *trace.Trace, capObjects int) float64 {
	last := map[uint64]uint64{}
	resident := map[uint64]bool{}
	var clock uint64
	var hits, total int
	for _, req := range tr.Reqs {
		clock++
		total++
		if resident[req.Key] {
			hits++
		} else {
			resident[req.Key] = true
			for len(resident) > capObjects {
				var victim uint64
				var best uint64
				first := true
				for k := range resident {
					if k == req.Key {
						continue
					}
					if first || last[k] > best {
						victim, best, first = k, last[k], false
					}
				}
				delete(resident, victim)
			}
		}
		last[req.Key] = clock
	}
	return 1 - float64(hits)/float64(total)
}

func TestMRUMatchesExactSimulation(t *testing.T) {
	// The transposition stack must reproduce exact MRU-cache miss
	// ratios: MRU satisfies inclusion, so distance > c iff the
	// reference misses in a cache of capacity c.
	traces := map[string]*trace.Trace{}
	lg := workload.NewLoop(150, nil)
	traces["loop"], _ = trace.Collect(lg, 3000)
	zg := workload.NewZipf(11, 400, 0.9, nil, 0)
	traces["zipf"], _ = trace.Collect(zg, 5000)
	for name, tr := range traces {
		s := NewMRU()
		if err := s.ProcessAll(tr.Reader()); err != nil {
			t.Fatal(err)
		}
		curve := s.MRC()
		for _, c := range []int{5, 40, 75, 120, 149} {
			sim := perfectMRUMiss(tr, c)
			model := curve.Eval(uint64(c))
			if d := sim - model; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s capacity %d: simulated MRU %v vs stack %v", name, c, sim, model)
			}
		}
	}
}

func TestMRUSmallHandChecked(t *testing.T) {
	// a b c b a — distances derived by hand from Mattson's update:
	// stacks [a], [b a], [c a b], hit b at depth 3, hit a at depth 2.
	s := NewMRU()
	type step struct {
		key  uint64
		cold bool
		dist uint64
	}
	steps := []step{
		{'a', true, 0}, {'b', true, 0}, {'c', true, 0},
		{'b', false, 3}, {'a', false, 2},
	}
	for i, st := range steps {
		got := s.Reference(st.key)
		if got.Cold != st.cold || got.Distance != st.dist {
			t.Fatalf("step %d key %c: got %+v want cold=%v dist=%d",
				i, rune(st.key), got, st.cold, st.dist)
		}
	}
}

func TestMRUOnLoop(t *testing.T) {
	// MRU on a loop of M keys settles into uniform distances over
	// 2..M: miss at capacity c ≈ (M-c)/M once warm.
	const m = 200
	g := workload.NewLoop(m, nil)
	s := NewMRU()
	s.ProcessAll(trace.LimitReader(g, m*40))
	c := s.MRC()
	missHalf := c.Eval(m / 2)
	if missHalf < 0.4 || missHalf > 0.62 {
		t.Fatalf("MRU miss at M/2 = %v; expected ~(M-c)/M ≈ 0.5 behaviour", missHalf)
	}
}

func TestDeleteIgnored(t *testing.T) {
	s := New(LFU{}, 1)
	s.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	if s.Len() != 0 {
		t.Fatal("delete must be ignored")
	}
}

func TestNilPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, 1)
}

func BenchmarkLFUReference(b *testing.B) {
	s := New(LFU{}, 1)
	g := workload.NewZipf(3, 1<<16, 1.0, nil, 0)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		r, _ := g.Next()
		keys[i] = r.Key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reference(keys[i&(1<<16-1)])
	}
}
