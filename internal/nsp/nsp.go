// Package nsp implements single-pass stack distances for the NSP
// class of replacement policies (Bilardi, Ekanadham & Pattnaik, CF
// '11 — §6.2): policies where an object's priority changes only upon
// access to that object. LFU (with perfect history), MRU and OPT are
// NSP.
//
// Stack is the generic priority-ordered engine: the just-referenced
// object sits on top and every other object is ordered by its
// priority, making a reference's stack distance an order-statistic
// query — answered here in O(log M) with a priority-keyed treap, the
// same asymptotics Min-Tree achieves. This ordering coincides with
// Mattson's stack when evicted objects cannot outrank residents —
// which holds for ascending policies like LFU, whose priorities only
// grow with further accesses, but NOT for MRU, where the referenced
// object takes the globally lowest priority and long-evicted objects
// keep frozen recency priorities above current residents. Use
// MRUStack (mru.go) for exact MRU distances; Stack with the MRU
// policy survives only as the priority tuple the exact simulator
// shares.
//
// Concrete policies:
//
//   - LFU: priority = (access count, last access), modeling the
//     frequency-based sampled eviction the paper names as future work
//     (§7) in its exact, full-ordering form.
//   - MRU: priority = inverse recency (oldest objects rank highest) —
//     the classic anti-recency policy, useful for loop workloads.
package nsp

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/xrand"
)

// Policy assigns priorities. Priority returns the object's new
// priority tuple after an access given its previous state; higher
// tuples (lexicographic) are kept longer.
type Policy interface {
	// Priority returns the post-access priority for an object with
	// the given access count (including this access) at logical time
	// now.
	Priority(accessCount uint64, now uint64) [2]uint64
	// Name identifies the policy.
	Name() string
}

// LFU keeps the most frequently used objects: priority (count, time).
// Frequency history survives eviction (perfect LFU), matching the
// stack model's global ordering.
type LFU struct{}

// Priority implements Policy.
func (LFU) Priority(count, now uint64) [2]uint64 { return [2]uint64{count, now} }

// Name implements Policy.
func (LFU) Name() string { return "lfu" }

// MRU keeps the *least* recently used objects (evicts the most
// recent): priority = inverted recency.
type MRU struct{}

// Priority implements Policy.
func (MRU) Priority(_, now uint64) [2]uint64 { return [2]uint64{^now, 0} }

// Name implements Policy.
func (MRU) Name() string { return "mru" }

// node is a treap node ordered by priority tuple descending (the
// in-order traversal walks from highest to lowest priority).
type node struct {
	prio  [2]uint64
	prioR uint64 // heap priority
	left  *node
	right *node
	cnt   uint32
}

func cnt(n *node) uint32 {
	if n == nil {
		return 0
	}
	return n.cnt
}

func (n *node) pull() { n.cnt = 1 + cnt(n.left) + cnt(n.right) }

// less orders priority tuples ascending.
func less(a, b [2]uint64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Stack computes NSP stack distances.
type Stack struct {
	policy Policy
	root   *node
	// state per object: access count and current priority.
	counts map[uint64]uint64
	prios  map[uint64][2]uint64
	lastId uint64 // the previously referenced key (stack top)
	hasTop bool
	clock  uint64
	rng    *xrand.Source
	hist   *histogram.Dense
}

// New builds an NSP stack for the given policy.
func New(policy Policy, seed uint64) *Stack {
	if policy == nil {
		panic("nsp: nil policy")
	}
	return &Stack{
		policy: policy,
		counts: make(map[uint64]uint64),
		prios:  make(map[uint64][2]uint64),
		rng:    xrand.New(seed),
		hist:   histogram.NewDense(1024),
	}
}

// Len returns the number of distinct objects seen.
func (s *Stack) Len() int { return len(s.counts) }

// insert adds a priority to the treap.
func (s *Stack) insert(p [2]uint64) {
	n := &node{prio: p, prioR: s.rng.Uint64(), cnt: 1}
	s.root = merge3(s.root, n)
}

// merge3 inserts n into t preserving priority order.
func merge3(t, n *node) *node {
	if t == nil {
		return n
	}
	if n.prioR > t.prioR {
		// Split t around n's priority.
		n.left, n.right = split(t, n.prio)
		n.pull()
		return n
	}
	if less(t.prio, n.prio) {
		// Higher priorities live on the left (descending order).
		t.left = merge3(t.left, n)
	} else {
		t.right = merge3(t.right, n)
	}
	t.pull()
	return t
}

// split divides t into (priorities > p, priorities <= p).
func split(t *node, p [2]uint64) (hi, lo *node) {
	if t == nil {
		return nil, nil
	}
	if less(p, t.prio) { // t.prio > p → t goes to hi
		t.right, lo = split(t.right, p)
		t.pull()
		return t, lo
	}
	hi, t.left = split(t.left, p)
	t.pull()
	return hi, t
}

// remove deletes the node with exactly priority p (must exist).
func (s *Stack) remove(p [2]uint64) {
	s.root = removeNode(s.root, p)
}

func removeNode(t *node, p [2]uint64) *node {
	if t == nil {
		return nil
	}
	if t.prio == p {
		return mergeLR(t.left, t.right)
	}
	if less(t.prio, p) {
		t.left = removeNode(t.left, p)
	} else {
		t.right = removeNode(t.right, p)
	}
	t.pull()
	return t
}

// mergeLR joins two treaps where every priority in l exceeds every
// priority in r.
func mergeLR(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prioR >= r.prioR {
		l.right = mergeLR(l.right, r)
		l.pull()
		return l
	}
	r.left = mergeLR(l, r.left)
	r.pull()
	return r
}

// rankAbove counts nodes with priority strictly greater than p. The
// treap's in-order traversal runs from highest to lowest priority, so
// everything "above p" lies to the left of p's position.
func (s *Stack) rankAbove(p [2]uint64) uint32 {
	var above uint32
	n := s.root
	for n != nil {
		if less(p, n.prio) { // n is above p
			above += 1 + cnt(n.left)
			n = n.right
		} else {
			n = n.left
		}
	}
	return above
}

// Result is one reference's outcome.
type Result struct {
	Cold     bool
	Distance uint64
}

// Reference processes one access and returns the NSP stack distance:
// 1 for a repeat of the immediately preceding reference, otherwise
// 2 + the number of other objects with strictly higher priority
// (position 1 is always the previously referenced object).
func (s *Stack) Reference(key uint64) Result {
	s.clock++
	count, seen := s.counts[key]
	count++
	s.counts[key] = count
	newPrio := s.policy.Priority(count, s.clock)

	var res Result
	if !seen {
		res.Cold = true
		s.hist.AddCold()
		s.insert(newPrio)
		s.prios[key] = newPrio
		s.lastId = key
		s.hasTop = true
		return res
	}

	old := s.prios[key]
	if s.hasTop && key == s.lastId {
		res.Distance = 1
	} else {
		above := uint64(s.rankAbove(old))
		// Exclude the stack-top object from the priority count (it
		// occupies position 1 regardless of priority) and add it back
		// as one position.
		if s.hasTop {
			if topPrio, ok := s.prios[s.lastId]; ok && less(old, topPrio) {
				above--
			}
			res.Distance = above + 2
		} else {
			res.Distance = above + 1
		}
	}
	s.hist.Add(res.Distance)
	s.remove(old)
	s.insert(newPrio)
	s.prios[key] = newPrio
	s.lastId = key
	s.hasTop = true
	return res
}

// Process feeds one request (deletes are unsupported by the NSP model
// and ignored).
func (s *Stack) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		return
	}
	s.Reference(req.Key)
}

// ProcessAll drains a reader.
func (s *Stack) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the policy's miss ratio curve.
func (s *Stack) MRC() *mrc.Curve { return mrc.FromHistogram(s.hist, 1) }

// Hist exposes the stack distance histogram.
func (s *Stack) Hist() *histogram.Dense { return s.hist }

// MemoryOverheadBytes estimates the model's resident metadata: one
// treap node plus two map entries (counts, prios) per distinct object,
// plus the histogram.
func (s *Stack) MemoryOverheadBytes() uint64 {
	const perNode = 56  // prio tuple + heap prio + children + count, padded
	const perEntry = 48 // counts entry
	const perPrio = 56  // prios entry: key + [2]uint64 + bucket overhead
	return uint64(len(s.counts))*(perNode+perEntry+perPrio) + s.hist.MemBytes()
}
