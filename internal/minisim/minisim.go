// Package minisim implements miniature cache simulation (Waldspurger
// et al., USENIX ATC '17), the generic MRC technique of §6.2: a cache
// of size C is emulated by a miniature cache of size C·R fed only the
// spatially-sampled (rate R) subset of requests. Unlike stack models
// it needs one miniature cache per evaluated size, but it works for
// *any* replacement policy — including K-LRU — which makes it both a
// baseline and a cross-check for KRR.
package minisim

import (
	"errors"
	"io"

	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/simulator"
	"krr/internal/trace"
)

// Config assembles a miniature simulation.
type Config struct {
	// Sizes are the full-scale cache capacities (objects) to emulate.
	Sizes []uint64
	// Rate is the spatial sampling rate in (0, 1]; miniature caches
	// have capacity max(1, round(C·Rate)).
	Rate float64
	// K is the K-LRU eviction sampling size of the emulated caches.
	K int
	// Seed fixes sampling and eviction randomness.
	Seed uint64
}

// Sim runs one miniature cache per configured size over the sampled
// request subset.
type Sim struct {
	cfg    Config
	filter *sampling.Filter
	caches []*simulator.KLRU
	hits   []uint64
	misses []uint64
	seen   uint64
}

// New builds the simulation.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Sizes) == 0 {
		return nil, errors.New("minisim: no sizes")
	}
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return nil, errors.New("minisim: rate must be in (0, 1]")
	}
	if cfg.K < 1 {
		return nil, errors.New("minisim: K must be >= 1")
	}
	s := &Sim{
		cfg:    cfg,
		caches: make([]*simulator.KLRU, len(cfg.Sizes)),
		hits:   make([]uint64, len(cfg.Sizes)),
		misses: make([]uint64, len(cfg.Sizes)),
	}
	if cfg.Rate < 1 {
		s.filter = sampling.NewRate(cfg.Rate)
	}
	for i, size := range cfg.Sizes {
		mini := int(float64(size)*cfg.Rate + 0.5)
		if mini < 1 {
			mini = 1
		}
		s.caches[i] = simulator.NewKLRU(simulator.ObjectCapacity(mini), cfg.K, true, cfg.Seed+uint64(i)*97+1)
	}
	return s, nil
}

// MiniCapacity returns the miniature capacity emulating full size i.
func (s *Sim) MiniCapacity(i int) int {
	mini := int(float64(s.cfg.Sizes[i])*s.cfg.Rate + 0.5)
	if mini < 1 {
		mini = 1
	}
	return mini
}

// Process feeds one request to every miniature cache (if sampled).
func (s *Sim) Process(req trace.Request) {
	s.seen++
	if s.filter != nil && !s.filter.Sampled(req.Key) {
		return
	}
	for i, c := range s.caches {
		if req.Op == trace.OpDelete {
			c.Access(req)
			continue
		}
		if c.Access(req) {
			s.hits[i]++
		} else {
			s.misses[i]++
		}
	}
}

// ProcessAll drains a reader.
func (s *Sim) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the emulated miss ratio curve over full-scale sizes.
func (s *Sim) MRC() *mrc.Curve {
	miss := make([]float64, len(s.cfg.Sizes))
	for i := range s.cfg.Sizes {
		total := s.hits[i] + s.misses[i]
		if total == 0 {
			miss[i] = 1
			continue
		}
		miss[i] = float64(s.misses[i]) / float64(total)
	}
	return mrc.FromPoints(s.cfg.Sizes, miss)
}
