package minisim

import (
	"testing"

	"krr/internal/mrc"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Rate: 0.1, K: 5},                      // no sizes
		{Sizes: []uint64{10}, Rate: 0, K: 5},   // bad rate
		{Sizes: []uint64{10}, Rate: 1.5, K: 5}, // bad rate
		{Sizes: []uint64{10}, Rate: 0.1, K: 0}, // bad K
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestMiniCapacityFloor(t *testing.T) {
	s, err := New(Config{Sizes: []uint64{3, 10000}, Rate: 0.01, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.MiniCapacity(0) != 1 {
		t.Fatalf("tiny size must floor to 1, got %d", s.MiniCapacity(0))
	}
	if s.MiniCapacity(1) != 100 {
		t.Fatalf("mini capacity = %d, want 100", s.MiniCapacity(1))
	}
}

func TestMatchesFullKLRUSimulation(t *testing.T) {
	// The miniature emulation at R=0.2 must track the full-scale
	// simulated K-LRU curve.
	g := workload.NewMSRLike(3, workload.MSRParams{
		Blocks: 20000, HotWeight: 0.5, SeqWeight: 0.3, LoopWeight: 0.2,
		LoopLen: 6000, LoopRepeats: 2,
	})
	tr, _ := trace.Collect(g, 300000)
	sizes := mrc.EvenSizes(20000, 10)
	const k = 5

	sim, err := New(Config{Sizes: sizes, Rate: 0.2, K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	mini := sim.MRC()

	full, err := simulator.KLRUMRC(tr, k, sizes, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mae := mrc.MAE(mini, full, sizes); mae > 0.04 {
		t.Fatalf("miniature vs full simulation MAE %v", mae)
	}
}

func TestRateOneIsExact(t *testing.T) {
	// R = 1 degenerates to plain multi-size simulation.
	g := workload.NewZipf(5, 2000, 1.0, nil, 0)
	tr, _ := trace.Collect(g, 40000)
	sizes := mrc.EvenSizes(2000, 5)
	sim, err := New(Config{Sizes: sizes, Rate: 1, K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim.ProcessAll(tr.Reader())
	full, _ := simulator.KLRUMRC(tr, 3, sizes, 2, 0)
	if mae := mrc.MAE(sim.MRC(), full, sizes); mae > 0.02 {
		t.Fatalf("rate-1 minisim MAE %v", mae)
	}
}

func TestEmptyStreamAllMiss(t *testing.T) {
	sim, _ := New(Config{Sizes: []uint64{100}, Rate: 0.5, K: 2, Seed: 1})
	c := sim.MRC()
	if c.Eval(100) != 1 {
		t.Fatal("no data must mean all-miss")
	}
}

func TestDeletePropagates(t *testing.T) {
	sim, _ := New(Config{Sizes: []uint64{100}, Rate: 1, K: 2, Seed: 1})
	sim.Process(trace.Request{Key: 1, Size: 1, Op: trace.OpGet})
	sim.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	sim.Process(trace.Request{Key: 1, Size: 1, Op: trace.OpGet})
	if sim.misses[0] != 2 {
		t.Fatalf("misses = %d, want 2 (delete forgets)", sim.misses[0])
	}
}

func BenchmarkProcess20Sizes(b *testing.B) {
	sizes := mrc.EvenSizes(1<<20, 20)
	sim, _ := New(Config{Sizes: sizes, Rate: 0.01, K: 5, Seed: 1})
	g := workload.NewZipf(3, 1<<20, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Process(reqs[i&(1<<16-1)])
	}
}
