package workload

import (
	"testing"

	"krr/internal/trace"
	"krr/internal/xrand"
)

// simulateMiss replays tr against a K-LRU cache (K <= 0 means exact
// LRU) of the given object capacity and returns the miss ratio. Local
// helper to avoid importing the simulator package (which imports
// workload in its tests).
func simulateMiss(tr *trace.Trace, capObjects, k int, seed uint64) float64 {
	type ent struct {
		key  uint64
		last uint64
	}
	src := xrand.New(seed)
	var ents []ent
	idx := map[uint64]int{}
	var clock uint64
	var hits, total int
	for _, req := range tr.Reqs {
		clock++
		total++
		if i, ok := idx[req.Key]; ok {
			ents[i].last = clock
			hits++
			continue
		}
		if len(ents) >= capObjects {
			victim := 0
			if k <= 0 {
				// exact LRU: global minimum.
				for i := 1; i < len(ents); i++ {
					if ents[i].last < ents[victim].last {
						victim = i
					}
				}
			} else {
				victim = int(src.Uint64n(uint64(len(ents))))
				for j := 1; j < k; j++ {
					cand := int(src.Uint64n(uint64(len(ents))))
					if ents[cand].last < ents[victim].last {
						victim = cand
					}
				}
			}
			delete(idx, ents[victim].key)
			lastI := len(ents) - 1
			if victim != lastI {
				ents[victim] = ents[lastI]
				idx[ents[victim].key] = victim
			}
			ents = ents[:lastI]
		}
		idx[req.Key] = len(ents)
		ents = append(ents, ent{key: req.Key, last: clock})
	}
	return 1 - float64(hits)/float64(total)
}

// TestPresetTypeClassification validates the DESIGN.md substitution
// claim: presets labeled Type A must show a clear K=1 ↔ LRU miss-ratio
// gap, and Type B presets must not (§5.3, Fig 5.2).
func TestPresetTypeClassification(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cases := map[string]string{
		"msr-web":     "A",
		"msr-src2":    "A",
		"ycsb-e-0.99": "A",
		"msr-usr":     "B",
		"msr-prxy":    "B",
		"ycsb-c-0.99": "B",
		"tw-45.0":     "B",
	}
	for name, wantType := range cases {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing preset %s", name)
		}
		if p.Type != wantType {
			t.Fatalf("%s labeled %q, test expects %q", name, p.Type, wantType)
		}
		tr, err := trace.Collect(p.New(0.05, 11, false), 120000)
		if err != nil {
			t.Fatal(err)
		}
		sum, _ := trace.Summarize(tr.Reader())
		// Probe the gap at 30% and 60% of the working set.
		var maxGap float64
		for _, frac := range []float64{0.3, 0.6} {
			capObj := int(float64(sum.DistinctObjects) * frac)
			if capObj < 1 {
				capObj = 1
			}
			rnd := simulateMiss(tr, capObj, 1, 3)
			lru := simulateMiss(tr, capObj, 0, 3)
			gap := rnd - lru
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
		switch wantType {
		case "A":
			if maxGap < 0.04 {
				t.Errorf("%s (Type A): K=1↔LRU gap %.3f too small", name, maxGap)
			}
		default:
			if maxGap > 0.06 {
				t.Errorf("%s (Type B): K=1↔LRU gap %.3f too large", name, maxGap)
			}
		}
	}
}
