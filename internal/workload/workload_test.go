package workload

import (
	"math"
	"testing"

	"krr/internal/trace"
)

func collect(t *testing.T, r trace.Reader, n int) *trace.Trace {
	t.Helper()
	tr, err := trace.Collect(r, n)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("collected %d, want %d", tr.Len(), n)
	}
	return tr
}

func TestScrambleKeyBijective(t *testing.T) {
	seen := make(map[uint64]bool, 1<<16)
	for r := uint64(0); r < 1<<16; r++ {
		k := scrambleKey(r)
		if seen[k] {
			t.Fatalf("collision at rank %d", r)
		}
		seen[k] = true
	}
}

func TestZipfGenDeterministic(t *testing.T) {
	a := collect(t, NewZipf(7, 1000, 1.0, nil, 0.1), 500)
	b := collect(t, NewZipf(7, 1000, 1.0, nil, 0.1), 500)
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestZipfGenKeyBound(t *testing.T) {
	tr := collect(t, NewZipf(1, 100, 0.99, nil, 0), 10000)
	distinct := map[uint64]bool{}
	for _, r := range tr.Reqs {
		distinct[r.Key] = true
	}
	if len(distinct) > 100 {
		t.Fatalf("more distinct keys (%d) than key space (100)", len(distinct))
	}
}

func TestZipfGenSetRatio(t *testing.T) {
	tr := collect(t, NewZipf(1, 1000, 1.0, nil, 0.3), 20000)
	sets := 0
	for _, r := range tr.Reqs {
		if r.Op == trace.OpSet {
			sets++
		}
	}
	got := float64(sets) / 20000
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("set ratio %v, want ~0.3", got)
	}
}

func TestScanGenSequentialRuns(t *testing.T) {
	g := NewScan(3, 10000, 0.99, 50, nil)
	tr := collect(t, g, 5000)
	// Consecutive requests within a scan differ by the scramble
	// constant; measure how often that happens. With max scan 50 the
	// expected run length is ~25, so >= 85% of steps are sequential.
	seq := 0
	for i := 1; i < tr.Len(); i++ {
		if tr.Reqs[i].Key-tr.Reqs[i-1].Key == scrambleKey(1)-scrambleKey(0) {
			seq++
		}
	}
	if frac := float64(seq) / float64(tr.Len()-1); frac < 0.80 {
		t.Fatalf("sequential fraction %v too low for a scan workload", frac)
	}
}

func TestScanGenDefaultsMaxLen(t *testing.T) {
	g := NewScan(3, 1000, 1.0, 0, nil)
	if g.maxScanLen != 1000 {
		t.Fatalf("maxScanLen = %d, want keys", g.maxScanLen)
	}
}

func TestLoopGenCycles(t *testing.T) {
	g := NewLoop(5, nil)
	tr := collect(t, g, 12)
	for i := 0; i < 12; i++ {
		want := scrambleKey(uint64(i % 5))
		if tr.Reqs[i].Key != want {
			t.Fatalf("position %d: got %d want %d", i, tr.Reqs[i].Key, want)
		}
	}
}

func TestUniformGenSpread(t *testing.T) {
	g := NewUniform(9, 100, nil)
	tr := collect(t, g, 20000)
	distinct := map[uint64]bool{}
	for _, r := range tr.Reqs {
		distinct[r.Key] = true
	}
	if len(distinct) != 100 {
		t.Fatalf("distinct = %d, want all 100", len(distinct))
	}
}

func TestMSRLikePhases(t *testing.T) {
	g := NewMSRLike(11, MSRParams{
		Blocks: 10000, HotWeight: 1, SeqWeight: 1, LoopWeight: 1,
		HotFraction: 0.1, HotAlpha: 1.0, SeqRunMean: 32, LoopLen: 1000, LoopRepeats: 2,
	})
	tr := collect(t, g, 50000)
	s, err := trace.Summarize(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if s.DistinctObjects < 100 || s.DistinctObjects > 10000 {
		t.Fatalf("distinct objects %d implausible", s.DistinctObjects)
	}
	// Loops must create exact re-reference patterns: reuse must exist.
	if s.ColdMisses == s.Requests {
		t.Fatal("no reuse generated")
	}
}

func TestMSRLikePanics(t *testing.T) {
	for _, p := range []MSRParams{
		{},
		{Blocks: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %+v: expected panic", p)
				}
			}()
			NewMSRLike(1, p)
		}()
	}
}

func TestMSRLikeDefaultsApplied(t *testing.T) {
	g := NewMSRLike(1, MSRParams{Blocks: 100, HotWeight: 1})
	tr := collect(t, g, 1000)
	for _, r := range tr.Reqs {
		if r.Size != trace.DefaultObjectSize {
			t.Fatalf("default size not applied: %d", r.Size)
		}
	}
}

func TestTwitterLikeChurn(t *testing.T) {
	g := NewTwitterLike(13, TwitterParams{Keys: 1000, Alpha: 1.2, ChurnPeriod: 10})
	tr := collect(t, g, 50000)
	s, _ := trace.Summarize(tr.Reader())
	// Churn slides the window 5000 times, so distinct objects must
	// exceed the base key count.
	if s.DistinctObjects <= 1000 {
		t.Fatalf("churn did not expand key population: %d", s.DistinctObjects)
	}
}

func TestTwitterLikeVariableSizes(t *testing.T) {
	g := NewTwitterLike(13, TwitterParams{Keys: 5000, Alpha: 1.0})
	tr := collect(t, g, 20000)
	sizes := map[uint32]bool{}
	perKey := map[uint64]uint32{}
	for _, r := range tr.Reqs {
		sizes[r.Size] = true
		if prev, ok := perKey[r.Key]; ok && prev != r.Size {
			t.Fatal("object size must be stable per key")
		}
		perKey[r.Key] = r.Size
	}
	if len(sizes) < 100 {
		t.Fatalf("size diversity too low: %d distinct sizes", len(sizes))
	}
}

func TestMixInterleavesAllSources(t *testing.T) {
	a := NewLoop(10, nil)
	b := NewLoop(10, nil)
	b.SetKeySpace(1 << 32)
	m := NewMix(5, []trace.Reader{a, b}, []float64{1, 1})
	tr := collect(t, m, 10000)
	var fromA, fromB int
	bMin := scrambleKey(1 << 32)
	_ = bMin
	for _, r := range tr.Reqs {
		isA := false
		for i := uint64(0); i < 10; i++ {
			if r.Key == scrambleKey(i) {
				isA = true
				break
			}
		}
		if isA {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA < 4000 || fromB < 4000 {
		t.Fatalf("unbalanced mix: a=%d b=%d", fromA, fromB)
	}
}

func TestMixPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMix(1, nil, nil) },
		func() { NewMix(1, []trace.Reader{NewLoop(1, nil)}, []float64{1, 2}) },
		func() { NewMix(1, []trace.Reader{NewLoop(1, nil)}, []float64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSizeDistsDeterministicAndBounded(t *testing.T) {
	dists := []SizeDist{
		FixedSize(200),
		LogNormalSize{Mu: 5.44, Sigma: 1.2, Min: 16, Max: 1 << 19},
		ParetoSize{Xm: 64, Alpha: 1.5, Max: 1 << 20},
		UniformSize{Min: 100, Max: 200},
		ChoiceSize{Sizes: []uint32{4096, 8192}, Weights: []float64{1, 1}},
	}
	for di, d := range dists {
		for k := uint64(0); k < 2000; k++ {
			s1, s2 := d.SizeOf(k), d.SizeOf(k)
			if s1 != s2 {
				t.Fatalf("dist %d: nondeterministic at key %d", di, k)
			}
			if s1 == 0 {
				t.Fatalf("dist %d: zero size at key %d", di, k)
			}
		}
	}
}

func TestLogNormalSizeMedian(t *testing.T) {
	d := LogNormalSize{Mu: math.Log(230), Sigma: 1.0, Min: 1, Max: 1 << 30}
	below := 0
	const n = 50000
	for k := uint64(0); k < n; k++ {
		if d.SizeOf(k) < 230 {
			below++
		}
	}
	if frac := float64(below) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("median check: %v below exp(mu)", frac)
	}
}

func TestUniformSizeBounds(t *testing.T) {
	d := UniformSize{Min: 10, Max: 20}
	seen := map[uint32]bool{}
	for k := uint64(0); k < 10000; k++ {
		s := d.SizeOf(k)
		if s < 10 || s > 20 {
			t.Fatalf("out of bounds size %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected all 11 sizes, saw %d", len(seen))
	}
	degenerate := UniformSize{Min: 7, Max: 7}
	if degenerate.SizeOf(1) != 7 {
		t.Fatal("degenerate uniform size wrong")
	}
}

func TestChoiceSizeWeights(t *testing.T) {
	d := ChoiceSize{Sizes: []uint32{1, 2}, Weights: []float64{9, 1}}
	ones := 0
	const n = 50000
	for k := uint64(0); k < n; k++ {
		if d.SizeOf(k) == 1 {
			ones++
		}
	}
	if frac := float64(ones) / n; math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("weight respected: got %v for 0.9-weight choice", frac)
	}
	empty := ChoiceSize{}
	if empty.SizeOf(1) != 0 {
		t.Fatal("empty choice must return 0")
	}
}

func TestPresetsRegistry(t *testing.T) {
	ps := Presets()
	if len(ps) < 25 {
		t.Fatalf("expected >= 25 presets, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name] {
			t.Fatalf("duplicate preset %s", p.Name)
		}
		names[p.Name] = true
		if p.New == nil || p.DefaultRequests <= 0 {
			t.Fatalf("preset %s incomplete", p.Name)
		}
	}
	for _, want := range []string{"msr-src1", "msr-src2", "msr-web", "msr-proj", "msr-usr",
		"msr-master", "ycsb-c-0.99", "ycsb-e-1.5", "tw-26.0", "tw-34.1", "tw-45.0", "tw-52.7", "loop"} {
		if !names[want] {
			t.Fatalf("missing preset %s", want)
		}
	}
	if len(Family("msr")) != 14 { // 13 servers + master
		t.Fatalf("msr family size %d", len(Family("msr")))
	}
}

func TestEveryPresetGenerates(t *testing.T) {
	for _, p := range Presets() {
		for _, variable := range []bool{false, true} {
			r := p.New(0.05, 42, variable)
			tr, err := trace.Collect(r, 2000)
			if err != nil || tr.Len() != 2000 {
				t.Fatalf("%s variable=%v: len=%d err=%v", p.Name, variable, tr.Len(), err)
			}
			if !variable {
				for _, req := range tr.Reqs {
					if req.Size != trace.DefaultObjectSize {
						t.Fatalf("%s fixed variant emitted size %d", p.Name, req.Size)
					}
				}
			}
		}
	}
}

func TestPresetDeterministicAcrossCalls(t *testing.T) {
	p, ok := ByName("msr-web")
	if !ok {
		t.Fatal("missing msr-web")
	}
	a, _ := trace.Collect(p.New(0.1, 5, false), 3000)
	b, _ := trace.Collect(p.New(0.1, 5, false), 3000)
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("preset not deterministic at %d", i)
		}
	}
}

func TestMasterTraceSeparatesKeySpaces(t *testing.T) {
	p, _ := ByName("msr-master")
	tr, _ := trace.Collect(p.New(0.02, 7, false), 20000)
	s, _ := trace.Summarize(tr.Reader())
	// The merged trace must touch more distinct objects than any single
	// small server preset would at this scale.
	if s.DistinctObjects < 2000 {
		t.Fatalf("master trace distinct objects %d too small", s.DistinctObjects)
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must miss unknown presets")
	}
}

func TestTypeAPresetsExist(t *testing.T) {
	var a, b int
	for _, p := range Presets() {
		switch p.Type {
		case "A":
			a++
		case "B":
			b++
		}
	}
	if a < 5 || b < 5 {
		t.Fatalf("need both trace types represented: A=%d B=%d", a, b)
	}
}
