package workload

import (
	"krr/internal/trace"
	"krr/internal/xrand"
)

// scrambleKey maps a dense rank (0, 1, 2, ...) to a scattered 64-bit
// key. Multiplication by an odd constant is a bijection mod 2^64, so
// distinct ranks stay distinct while popular ranks spread uniformly
// across the key space — which matters for spatial sampling, whose
// hash must not correlate with popularity.
func scrambleKey(rank uint64) uint64 { return rank * 0x9e3779b97f4a7c15 }

// opFor draws get or set with the given set probability.
func opFor(src *xrand.Source, setRatio float64) trace.Op {
	if setRatio > 0 && src.Float64() < setRatio {
		return trace.OpSet
	}
	return trace.OpGet
}

// ZipfGen reimplements YCSB workload C: independent key draws from a
// Zipf(alpha) popularity distribution over Keys objects.
type ZipfGen struct {
	src      *xrand.Source
	zipf     *xrand.Zipf
	sizes    SizeDist
	setRatio float64
	space    uint64 // key-space salt for composing multi-tenant traces
}

// NewZipf returns a Zipfian generator over keys [0, keys) with
// exponent alpha. sizes may be nil for the paper's 200-byte default.
func NewZipf(seed uint64, keys uint64, alpha float64, sizes SizeDist, setRatio float64) *ZipfGen {
	src := xrand.New(seed)
	if sizes == nil {
		sizes = FixedSize(trace.DefaultObjectSize)
	}
	return &ZipfGen{
		src:      src,
		zipf:     xrand.NewZipf(src, alpha, keys),
		sizes:    sizes,
		setRatio: setRatio,
	}
}

// SetKeySpace offsets all ranks, isolating this generator's keys from
// other generators merged into one trace.
func (g *ZipfGen) SetKeySpace(space uint64) { g.space = space }

// Next returns the next request; it never returns an error.
func (g *ZipfGen) Next() (trace.Request, error) {
	rank := g.zipf.Uint64()
	key := scrambleKey(g.space + rank)
	return trace.Request{Key: key, Size: g.sizes.SizeOf(rank), Op: opFor(g.src, g.setRatio)}, nil
}

// ScanGen reimplements YCSB workload E: each scan starts at a
// Zipf-chosen rank and touches a uniformly-drawn number of
// consecutive ranks (the paper configures MaxScanLen equal to the
// number of distinct objects, §5.2).
type ScanGen struct {
	src        *xrand.Source
	zipf       *xrand.Zipf
	sizes      SizeDist
	keys       uint64
	maxScanLen uint64
	space      uint64

	cur, left uint64
}

// NewScan returns a scan-dominant generator over keys [0, keys).
// maxScanLen == 0 defaults to keys.
func NewScan(seed uint64, keys uint64, alpha float64, maxScanLen uint64, sizes SizeDist) *ScanGen {
	src := xrand.New(seed)
	if sizes == nil {
		sizes = FixedSize(trace.DefaultObjectSize)
	}
	if maxScanLen == 0 {
		maxScanLen = keys
	}
	return &ScanGen{
		src:        src,
		zipf:       xrand.NewZipf(src, alpha, keys),
		sizes:      sizes,
		keys:       keys,
		maxScanLen: maxScanLen,
	}
}

// SetKeySpace offsets all ranks.
func (g *ScanGen) SetKeySpace(space uint64) { g.space = space }

// Next returns the next request; it never returns an error.
func (g *ScanGen) Next() (trace.Request, error) {
	if g.left == 0 {
		g.cur = g.zipf.Uint64()
		g.left = 1 + g.src.Uint64n(g.maxScanLen)
	}
	rank := g.cur
	key := scrambleKey(g.space + rank)
	g.cur = (g.cur + 1) % g.keys
	g.left--
	return trace.Request{Key: key, Size: g.sizes.SizeOf(rank), Op: trace.OpGet}, nil
}

// LoopGen cycles over keys [0, keys) forever — the adversarial
// pattern for KRR called out in §4.2 (all objects share one recency
// order), and the classic LRU-pathological pattern.
type LoopGen struct {
	sizes SizeDist
	keys  uint64
	pos   uint64
	space uint64
}

// NewLoop returns a cyclic generator.
func NewLoop(keys uint64, sizes SizeDist) *LoopGen {
	if sizes == nil {
		sizes = FixedSize(trace.DefaultObjectSize)
	}
	return &LoopGen{sizes: sizes, keys: keys}
}

// SetKeySpace offsets all ranks.
func (g *LoopGen) SetKeySpace(space uint64) { g.space = space }

// Next returns the next request; it never returns an error.
func (g *LoopGen) Next() (trace.Request, error) {
	rank := g.pos
	key := scrambleKey(g.space + rank)
	g.pos = (g.pos + 1) % g.keys
	return trace.Request{Key: key, Size: g.sizes.SizeOf(rank), Op: trace.OpGet}, nil
}

// UniformGen draws keys uniformly — the memoryless baseline pattern.
type UniformGen struct {
	src   *xrand.Source
	sizes SizeDist
	keys  uint64
	space uint64
}

// NewUniform returns a uniform random generator over [0, keys).
func NewUniform(seed, keys uint64, sizes SizeDist) *UniformGen {
	if sizes == nil {
		sizes = FixedSize(trace.DefaultObjectSize)
	}
	return &UniformGen{src: xrand.New(seed), sizes: sizes, keys: keys}
}

// SetKeySpace offsets all ranks.
func (g *UniformGen) SetKeySpace(space uint64) { g.space = space }

// Next returns the next request; it never returns an error.
func (g *UniformGen) Next() (trace.Request, error) {
	rank := g.src.Uint64n(g.keys)
	key := scrambleKey(g.space + rank)
	return trace.Request{Key: key, Size: g.sizes.SizeOf(rank), Op: trace.OpGet}, nil
}

// MSRParams shapes an MSRLike generator. The three phase weights
// control the Type A / Type B character of the resulting MRC:
// scan- and loop-heavy mixes separate K-LRU variants (Type A), while
// hotspot-dominated mixes collapse them onto one curve (Type B).
type MSRParams struct {
	// Blocks is the number of distinct block addresses.
	Blocks uint64
	// HotWeight, SeqWeight and LoopWeight are the relative
	// probabilities of entering each phase.
	HotWeight, SeqWeight, LoopWeight float64
	// HotFraction of the address space receives the Zipf(HotAlpha)
	// hotspot traffic.
	HotFraction float64
	HotAlpha    float64
	// HotBurstMean is the mean number of consecutive hotspot requests.
	HotBurstMean int
	// SeqRunMean is the mean sequential run length in blocks.
	SeqRunMean int
	// LoopLen is the loop body size in blocks; LoopRepeats is how many
	// times one loop phase cycles through it.
	LoopLen     uint64
	LoopRepeats int
	// SetRatio is the fraction of write requests.
	SetRatio float64
	// Sizes assigns block sizes (nil = 200-byte paper default).
	Sizes SizeDist
}

type msrPhase uint8

const (
	phaseHot msrPhase = iota
	phaseSeq
	phaseLoop
)

// MSRLike is a block-I/O-shaped generator: a three-phase state machine
// emitting hotspot, sequential and loop traffic over one address space.
type MSRLike struct {
	p     MSRParams
	src   *xrand.Source
	zipf  *xrand.Zipf
	space uint64

	phase     msrPhase
	remaining int
	cursor    uint64 // current block for seq/loop phases
	loopStart uint64
}

// NewMSRLike builds the generator. Zero-valued weights are allowed as
// long as at least one weight is positive.
func NewMSRLike(seed uint64, p MSRParams) *MSRLike {
	if p.Blocks == 0 {
		panic("workload: MSRParams.Blocks must be positive")
	}
	if p.HotWeight <= 0 && p.SeqWeight <= 0 && p.LoopWeight <= 0 {
		panic("workload: MSRParams needs at least one positive phase weight")
	}
	if p.HotFraction <= 0 || p.HotFraction > 1 {
		p.HotFraction = 0.1
	}
	if p.HotAlpha <= 0 {
		p.HotAlpha = 1.0
	}
	if p.HotBurstMean <= 0 {
		p.HotBurstMean = 16
	}
	if p.SeqRunMean <= 0 {
		p.SeqRunMean = 64
	}
	if p.LoopLen == 0 || p.LoopLen > p.Blocks {
		p.LoopLen = p.Blocks / 4
		if p.LoopLen == 0 {
			p.LoopLen = 1
		}
	}
	if p.LoopRepeats <= 0 {
		p.LoopRepeats = 3
	}
	if p.Sizes == nil {
		p.Sizes = FixedSize(trace.DefaultObjectSize)
	}
	src := xrand.New(seed)
	hotBlocks := uint64(float64(p.Blocks) * p.HotFraction)
	if hotBlocks == 0 {
		hotBlocks = 1
	}
	return &MSRLike{
		p:    p,
		src:  src,
		zipf: xrand.NewZipf(src, p.HotAlpha, hotBlocks),
	}
}

// SetKeySpace offsets all block addresses.
func (g *MSRLike) SetKeySpace(space uint64) { g.space = space }

// geometric draws a run length with the given mean (>= 1).
func geometric(src *xrand.Source, mean int) int {
	if mean <= 1 {
		return 1
	}
	// Geometric with success prob 1/mean, support {1, 2, ...}.
	p := 1.0 / float64(mean)
	n := 1
	for src.Float64() >= p && n < mean*20 {
		n++
	}
	return n
}

func (g *MSRLike) enterPhase() {
	w := g.src.Float64() * (g.p.HotWeight + g.p.SeqWeight + g.p.LoopWeight)
	switch {
	case w < g.p.HotWeight:
		g.phase = phaseHot
		g.remaining = geometric(g.src, g.p.HotBurstMean)
	case w < g.p.HotWeight+g.p.SeqWeight:
		g.phase = phaseSeq
		g.remaining = geometric(g.src, g.p.SeqRunMean)
		g.cursor = g.src.Uint64n(g.p.Blocks)
	default:
		g.phase = phaseLoop
		g.remaining = int(g.p.LoopLen) * g.p.LoopRepeats
		g.loopStart = g.src.Uint64n(g.p.Blocks)
		g.cursor = g.loopStart
	}
}

// Next returns the next request; it never returns an error.
func (g *MSRLike) Next() (trace.Request, error) {
	if g.remaining == 0 {
		g.enterPhase()
	}
	g.remaining--
	var block uint64
	switch g.phase {
	case phaseHot:
		block = g.zipf.Uint64()
	case phaseSeq:
		block = g.cursor % g.p.Blocks
		g.cursor++
	default: // phaseLoop
		block = g.cursor % g.p.Blocks
		g.cursor++
		if g.cursor-g.loopStart >= g.p.LoopLen {
			g.cursor = g.loopStart
		}
	}
	key := scrambleKey(g.space + block)
	return trace.Request{Key: key, Size: g.p.Sizes.SizeOf(block), Op: opFor(g.src, g.p.SetRatio)}, nil
}

// TwitterParams shapes a TwitterLike generator.
type TwitterParams struct {
	// Keys is the number of distinct objects.
	Keys uint64
	// Alpha is the Zipf popularity exponent (Twitter clusters are
	// strongly skewed; the OSDI'20 study reports alpha ~ 1-1.4).
	Alpha float64
	// SetRatio is the fraction of writes.
	SetRatio float64
	// ChurnPeriod > 0 retires the oldest keys every ChurnPeriod
	// requests by sliding the rank window forward one position —
	// modeling the constant object turnover of production caches.
	ChurnPeriod int
	// Sizes assigns value sizes (nil = lognormal with ~230-byte
	// median and heavy tail, per the Twitter characterization).
	Sizes SizeDist
}

// TwitterLike models an in-memory-cache request stream with skewed
// popularity, churn and variable object sizes.
type TwitterLike struct {
	p      TwitterParams
	src    *xrand.Source
	zipf   *xrand.Zipf
	offset uint64
	count  int
	space  uint64
}

// NewTwitterLike builds the generator.
func NewTwitterLike(seed uint64, p TwitterParams) *TwitterLike {
	if p.Keys == 0 {
		panic("workload: TwitterParams.Keys must be positive")
	}
	if p.Alpha <= 0 {
		p.Alpha = 1.2
	}
	if p.Sizes == nil {
		p.Sizes = LogNormalSize{Mu: 5.44, Sigma: 1.0, Min: 16, Max: 1 << 20} // median ~230 B
	}
	src := xrand.New(seed)
	return &TwitterLike{p: p, src: src, zipf: xrand.NewZipf(src, p.Alpha, p.Keys)}
}

// SetKeySpace offsets all ranks.
func (g *TwitterLike) SetKeySpace(space uint64) { g.space = space }

// Next returns the next request; it never returns an error.
func (g *TwitterLike) Next() (trace.Request, error) {
	if g.p.ChurnPeriod > 0 {
		g.count++
		if g.count%g.p.ChurnPeriod == 0 {
			g.offset++
		}
	}
	id := g.offset + g.zipf.Uint64()
	key := scrambleKey(g.space + id)
	return trace.Request{Key: key, Size: g.p.Sizes.SizeOf(id), Op: opFor(g.src, g.p.SetRatio)}, nil
}

// Mix interleaves several readers, choosing the source of each request
// by weight — used to build the merged "master" MSR-like trace (§5.5).
type Mix struct {
	src     *xrand.Source
	readers []trace.Reader
	weights []float64
	total   float64
}

// NewMix builds a weighted interleaving of readers. Weights must be
// positive and match readers in length.
func NewMix(seed uint64, readers []trace.Reader, weights []float64) *Mix {
	if len(readers) == 0 || len(readers) != len(weights) {
		panic("workload: NewMix needs matching non-empty readers and weights")
	}
	var total float64
	for _, w := range weights {
		if w <= 0 {
			panic("workload: NewMix weights must be positive")
		}
		total += w
	}
	return &Mix{src: xrand.New(seed), readers: readers, weights: weights, total: total}
}

// Next draws a source by weight and forwards its next request. A
// sub-reader error (including EOF) ends the mix.
func (m *Mix) Next() (trace.Request, error) {
	w := m.src.Float64() * m.total
	for i, wt := range m.weights {
		if w < wt || i == len(m.weights)-1 {
			return m.readers[i].Next()
		}
		w -= wt
	}
	return m.readers[len(m.readers)-1].Next()
}
