package workload

import (
	"fmt"
	"sort"

	"krr/internal/trace"
)

// Preset is a named, reproducible workload configuration standing in
// for one of the paper's traces. New returns an unbounded reader;
// scale multiplies the key-space size (1.0 = the preset's base size,
// chosen to keep full experiment sweeps tractable on one machine) and
// variable selects the variable-object-size variant used by §5.4
// (fixed variants emit the paper's uniform 200-byte objects).
type Preset struct {
	Name            string
	Family          string // "msr", "ycsb", "twitter", "micro"
	Description     string
	Type            string // "A" (K-sensitive), "B" (K-insensitive), or ""
	DefaultRequests int
	New             func(scale float64, seed uint64, variable bool) trace.Reader
}

// scaled returns max(1, base*scale).
func scaled(base uint64, scale float64) uint64 {
	v := uint64(float64(base) * scale)
	if v == 0 {
		v = 1
	}
	return v
}

// msrSizes is the variable-size distribution for MSR-like presets: a
// block-size mix correlated with the address region, matching real
// block traces where a hot metadata region issues small I/O while
// sequential stripes issue large blocks. The correlation is what
// makes the uniform-size assumption fail (Fig 5.3A): the size
// distribution *along the stack* differs from the global mean.
func msrSizes(blocks uint64, hotFraction float64, salt uint64) SizeDist {
	boundary := uint64(float64(blocks) * hotFraction)
	if boundary == 0 {
		boundary = 1
	}
	return AddressSize{
		Boundary: boundary,
		Below: ChoiceSize{ // hot region: small metadata-ish blocks
			Sizes:   []uint32{512, 2048, 4096},
			Weights: []float64{35, 40, 25},
			Salt:    salt,
		},
		Above: ChoiceSize{ // cold/scan region: large sequential blocks
			Sizes:   []uint32{16384, 65536, 131072},
			Weights: []float64{40, 40, 20},
			Salt:    salt + 1,
		},
	}
}

// twSizes is the variable-size distribution for Twitter-like presets:
// lognormal values, small median, heavy tail.
func twSizes(salt uint64) SizeDist {
	return LogNormalSize{Mu: 5.44, Sigma: 1.2, Min: 16, Max: 1 << 19, Salt: salt}
}

func fixedOr(variable bool, v SizeDist) SizeDist {
	if variable {
		return v
	}
	return FixedSize(trace.DefaultObjectSize)
}

// msrPreset assembles an MSR-like preset.
func msrPreset(name, desc, typ string, blocks uint64, p MSRParams, reqs int) Preset {
	return Preset{
		Name:            "msr-" + name,
		Family:          "msr",
		Description:     desc,
		Type:            typ,
		DefaultRequests: reqs,
		New: func(scale float64, seed uint64, variable bool) trace.Reader {
			q := p
			q.Blocks = scaled(blocks, scale)
			if q.LoopLen > 0 {
				q.LoopLen = scaled(q.LoopLen, scale)
			}
			q.Sizes = fixedOr(variable, msrSizes(q.Blocks, q.HotFraction, seed))
			return NewMSRLike(seed, q)
		},
	}
}

// builtin returns the full preset registry. MSR presets substitute the
// 13 MSR Cambridge servers: phase weights are chosen so that the
// presets labeled Type A reproduce the K-sensitive MRC gap of Fig 5.2a
// (scan/loop heavy) and the Type B presets reproduce the K-insensitive
// curves of Fig 5.2b (hotspot heavy).
func builtin() []Preset {
	ps := []Preset{
		// ---- MSR Cambridge substitutes -------------------------------
		msrPreset("src1", "source-control server 1: scan-heavy, large space", "A",
			400_000, MSRParams{HotWeight: 0.30, SeqWeight: 0.55, LoopWeight: 0.15,
				HotFraction: 0.05, HotAlpha: 1.1, SeqRunMean: 256, LoopLen: 120_000, LoopRepeats: 2}, 4_000_000),
		msrPreset("src2", "source-control server 2: small, loop-dominated", "A",
			60_000, MSRParams{HotWeight: 0.25, SeqWeight: 0.20, LoopWeight: 0.55,
				HotFraction: 0.10, HotAlpha: 0.9, SeqRunMean: 128, LoopLen: 24_000, LoopRepeats: 4}, 2_000_000),
		msrPreset("web", "web/SQL server: loop+scan mix with big K-LRU gap", "A",
			150_000, MSRParams{HotWeight: 0.30, SeqWeight: 0.30, LoopWeight: 0.40,
				HotFraction: 0.08, HotAlpha: 1.0, SeqRunMean: 192, LoopLen: 60_000, LoopRepeats: 3}, 3_000_000),
		msrPreset("proj", "project directories: huge space, mixed phases", "A",
			600_000, MSRParams{HotWeight: 0.45, SeqWeight: 0.35, LoopWeight: 0.20,
				HotFraction: 0.04, HotAlpha: 0.95, SeqRunMean: 384, LoopLen: 200_000, LoopRepeats: 2}, 5_000_000),
		msrPreset("usr", "user home directories: hotspot-dominated", "B",
			500_000, MSRParams{HotWeight: 0.85, SeqWeight: 0.12, LoopWeight: 0.03,
				HotFraction: 0.25, HotAlpha: 0.85, SeqRunMean: 64, LoopLen: 10_000, LoopRepeats: 2}, 4_000_000),
		msrPreset("hm", "hardware monitoring: moderate hotspot", "B",
			80_000, MSRParams{HotWeight: 0.75, SeqWeight: 0.20, LoopWeight: 0.05,
				HotFraction: 0.20, HotAlpha: 1.0, SeqRunMean: 48, LoopLen: 8_000, LoopRepeats: 2}, 2_000_000),
		msrPreset("mds", "media server: scan bursts over cold archive", "A",
			250_000, MSRParams{HotWeight: 0.35, SeqWeight: 0.50, LoopWeight: 0.15,
				HotFraction: 0.06, HotAlpha: 1.05, SeqRunMean: 512, LoopLen: 80_000, LoopRepeats: 2}, 3_000_000),
		msrPreset("prn", "print server: skewed small working set", "B",
			90_000, MSRParams{HotWeight: 0.80, SeqWeight: 0.15, LoopWeight: 0.05,
				HotFraction: 0.15, HotAlpha: 1.1, SeqRunMean: 32, LoopLen: 6_000, LoopRepeats: 2}, 2_000_000),
		msrPreset("prxy", "firewall/proxy: highly skewed, tiny hot set", "B",
			120_000, MSRParams{HotWeight: 0.90, SeqWeight: 0.08, LoopWeight: 0.02,
				HotFraction: 0.05, HotAlpha: 1.25, SeqRunMean: 24, LoopLen: 4_000, LoopRepeats: 2}, 3_000_000),
		msrPreset("rsrch", "research projects: small loopy working set", "A",
			40_000, MSRParams{HotWeight: 0.30, SeqWeight: 0.25, LoopWeight: 0.45,
				HotFraction: 0.12, HotAlpha: 0.9, SeqRunMean: 96, LoopLen: 15_000, LoopRepeats: 3}, 1_500_000),
		msrPreset("stg", "staging server: long sequential stripes", "A",
			300_000, MSRParams{HotWeight: 0.25, SeqWeight: 0.65, LoopWeight: 0.10,
				HotFraction: 0.08, HotAlpha: 0.95, SeqRunMean: 768, LoopLen: 90_000, LoopRepeats: 2}, 3_000_000),
		msrPreset("ts", "terminal server: small skewed set", "B",
			50_000, MSRParams{HotWeight: 0.78, SeqWeight: 0.17, LoopWeight: 0.05,
				HotFraction: 0.18, HotAlpha: 1.05, SeqRunMean: 40, LoopLen: 5_000, LoopRepeats: 2}, 1_500_000),
		msrPreset("wdev", "web development server: mixed, mildly loopy", "A",
			70_000, MSRParams{HotWeight: 0.45, SeqWeight: 0.25, LoopWeight: 0.30,
				HotFraction: 0.15, HotAlpha: 1.0, SeqRunMean: 80, LoopLen: 20_000, LoopRepeats: 3}, 1_500_000),
	}

	// ---- YCSB ---------------------------------------------------------
	for _, alpha := range []float64{0.5, 0.99, 1.5} {
		alpha := alpha
		ps = append(ps, Preset{
			Name:            fmt.Sprintf("ycsb-c-%.2g", alpha),
			Family:          "ycsb",
			Description:     fmt.Sprintf("YCSB workload C (read-only Zipf, alpha=%.2g)", alpha),
			Type:            "B",
			DefaultRequests: 2_000_000,
			New: func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewZipf(seed, scaled(200_000, scale), alpha, fixedOr(variable, twSizes(seed)), 0)
			},
		})
		ps = append(ps, Preset{
			Name:            fmt.Sprintf("ycsb-e-%.2g", alpha),
			Family:          "ycsb",
			Description:     fmt.Sprintf("YCSB workload E (scan-dominant, alpha=%.2g, max scan = key count)", alpha),
			Type:            "A",
			DefaultRequests: 2_000_000,
			New: func(scale float64, seed uint64, variable bool) trace.Reader {
				keys := scaled(50_000, scale)
				return NewScan(seed, keys, alpha, keys, fixedOr(variable, twSizes(seed)))
			},
		})
	}

	// ---- Twitter ------------------------------------------------------
	tw := func(name, desc, typ string, reqs int, build func(scale float64, seed uint64, variable bool) trace.Reader) Preset {
		return Preset{Name: "tw-" + name, Family: "twitter", Description: desc, Type: typ, DefaultRequests: reqs, New: build}
	}
	ps = append(ps,
		tw("26.0", "Twitter cluster 26: skewed with churn", "B", 3_000_000,
			func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewTwitterLike(seed, TwitterParams{Keys: scaled(120_000, scale), Alpha: 1.15,
					SetRatio: 0.05, ChurnPeriod: 200, Sizes: fixedOr(variable, twSizes(seed))})
			}),
		tw("34.1", "Twitter cluster 34: skew plus cyclic re-scan (Type A)", "A", 3_000_000,
			func(scale float64, seed uint64, variable bool) trace.Reader {
				sizes := fixedOr(variable, twSizes(seed))
				keys := scaled(250_000, scale)
				zipf := NewTwitterLike(seed, TwitterParams{Keys: keys, Alpha: 0.9, SetRatio: 0.03, Sizes: sizes})
				loop := NewLoop(scaled(120_000, scale), sizes)
				loop.SetKeySpace(1 << 40)
				return NewMix(seed+1, []trace.Reader{zipf, loop}, []float64{0.55, 0.45})
			}),
		tw("45.0", "Twitter cluster 45: broad mild skew (Type B)", "B", 3_000_000,
			func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewTwitterLike(seed, TwitterParams{Keys: scaled(350_000, scale), Alpha: 0.95,
					SetRatio: 0.02, Sizes: fixedOr(variable, twSizes(seed))})
			}),
		tw("52.7", "Twitter cluster 52: small, write-heavy, churny", "B", 2_000_000,
			func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewTwitterLike(seed, TwitterParams{Keys: scaled(60_000, scale), Alpha: 1.3,
					SetRatio: 0.25, ChurnPeriod: 100, Sizes: fixedOr(variable, twSizes(seed))})
			}),
	)

	// ---- Micro patterns -------------------------------------------------
	ps = append(ps,
		Preset{Name: "loop", Family: "micro", Type: "A",
			Description:     "pure cyclic loop — adversarial recency pattern (§4.2)",
			DefaultRequests: 1_000_000,
			New: func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewLoop(scaled(50_000, scale), fixedOr(variable, twSizes(seed)))
			}},
		Preset{Name: "uniform", Family: "micro", Type: "B",
			Description:     "uniform random — memoryless baseline",
			DefaultRequests: 1_000_000,
			New: func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewUniform(seed, scaled(100_000, scale), fixedOr(variable, twSizes(seed)))
			}},
		Preset{Name: "zipf", Family: "micro", Type: "B",
			Description:     "plain Zipf(1.0)",
			DefaultRequests: 1_000_000,
			New: func(scale float64, seed uint64, variable bool) trace.Reader {
				return NewZipf(seed, scaled(100_000, scale), 1.0, fixedOr(variable, twSizes(seed)), 0)
			}},
	)

	// ---- Merged MSR master trace (§5.5 Table 5.4) -----------------------
	msr := make([]Preset, 0, 13)
	for _, p := range ps {
		if p.Family == "msr" {
			msr = append(msr, p)
		}
	}
	ps = append(ps, Preset{
		Name:            "msr-master",
		Family:          "msr",
		Description:     "all 13 MSR-like servers merged into one trace (disjoint key spaces)",
		Type:            "A",
		DefaultRequests: 10_000_000,
		New: func(scale float64, seed uint64, variable bool) trace.Reader {
			readers := make([]trace.Reader, len(msr))
			weights := make([]float64, len(msr))
			for i, p := range msr {
				r := p.New(scale, seed+uint64(i)*101, variable)
				// Separate each server's key space. All MSR-like
				// readers are *MSRLike and support SetKeySpace.
				if ks, ok := r.(interface{ SetKeySpace(uint64) }); ok {
					ks.SetKeySpace(uint64(i+1) << 44)
				}
				readers[i] = r
				weights[i] = float64(p.DefaultRequests)
			}
			return NewMix(seed, readers, weights)
		},
	})

	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

var registry = builtin()

// Presets returns all built-in presets sorted by name.
func Presets() []Preset { return registry }

// ByName looks up a preset.
func ByName(name string) (Preset, bool) {
	for _, p := range registry {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// Names returns all preset names.
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// Family returns all presets in a family, sorted by name.
func Family(family string) []Preset {
	var out []Preset
	for _, p := range registry {
		if p.Family == family {
			out = append(out, p)
		}
	}
	return out
}
