// Package workload synthesizes the reference streams used by the
// paper's evaluation. The original study replays licensed traces (MSR
// Cambridge block I/O, YCSB, Twitter production caches); those cannot
// ship with this repository, so each family is substituted by a
// generator that reproduces the structural properties the KRR
// evaluation actually depends on:
//
//   - MSR-like: mixtures of sequential scans, loops, and Zipf hotspots
//     over a block address space. Scan/loop-heavy mixes produce the
//     paper's "Type A" traces (K-sensitive MRCs); hotspot-heavy mixes
//     produce "Type B" (K-insensitive) (§5.3, Fig 5.2).
//   - YCSB C and E: direct reimplementations of the benchmark's
//     Zipfian and scan-dominant request distributions (§5.2).
//   - Twitter-like: power-law popularity with heavy-tailed per-key
//     value sizes, exercising the variable-object-size path (§5.4).
//
// All generators are deterministic functions of their seed and
// implement trace.Reader as unbounded streams; wrap them with
// trace.LimitReader or trace.Collect to bound them.
package workload

import (
	"math"

	"krr/internal/hashing"
	"krr/internal/xrand"
)

// SizeDist assigns a deterministic object size to each key. Sizes are
// functions of the key (not of time) so that every model and simulator
// observes identical sizes regardless of which subset of requests it
// sees — mirroring the paper's convention of using the first-request
// block size as the object size (§5.2).
type SizeDist interface {
	SizeOf(key uint64) uint32
}

// FixedSize gives every object the same size.
type FixedSize uint32

// SizeOf returns the fixed size.
func (f FixedSize) SizeOf(uint64) uint32 { return uint32(f) }

// keyUniform maps a key to a uniform value in (0, 1), stable across
// runs, salted so that independent distributions decorrelate.
func keyUniform(key, salt uint64) float64 {
	u := float64(hashing.Mix64(key^salt)>>11) * (1.0 / (1 << 53))
	// Keep clear of the endpoints for inverse-CDF transforms.
	const eps = 1e-12
	if u < eps {
		u = eps
	}
	if u > 1-eps {
		u = 1 - eps
	}
	return u
}

// LogNormalSize draws per-key sizes from a lognormal distribution,
// the canonical fit for in-memory KV value sizes (Twitter, §5.2).
type LogNormalSize struct {
	// Mu and Sigma parameterize the underlying normal; the median
	// object size is exp(Mu).
	Mu, Sigma float64
	// Min and Max clamp the result (Max 0 means no upper clamp).
	Min, Max uint32
	// Salt decorrelates this distribution from other per-key hashes.
	Salt uint64
}

// SizeOf returns the deterministic size of key.
func (l LogNormalSize) SizeOf(key uint64) uint32 {
	u := keyUniform(key, 0x5b5e5a5755524f4c^l.Salt)
	v := math.Exp(l.Mu + l.Sigma*xrand.InvNormCDF(u))
	return clampSize(v, l.Min, l.Max)
}

// ParetoSize draws per-key sizes from a type-I Pareto distribution —
// a heavier tail than lognormal, used for the most size-skewed
// Twitter-like presets.
type ParetoSize struct {
	Xm    float64 // scale (minimum size)
	Alpha float64 // tail exponent
	Max   uint32  // upper clamp (0 means none)
	Salt  uint64
}

// SizeOf returns the deterministic size of key.
func (p ParetoSize) SizeOf(key uint64) uint32 {
	u := keyUniform(key, 0x70617265746f5f5f^p.Salt)
	v := p.Xm / math.Pow(1-u, 1/p.Alpha)
	return clampSize(v, uint32(p.Xm), p.Max)
}

// UniformSize draws per-key sizes uniformly from [Min, Max].
type UniformSize struct {
	Min, Max uint32
	Salt     uint64
}

// SizeOf returns the deterministic size of key.
func (u UniformSize) SizeOf(key uint64) uint32 {
	if u.Max <= u.Min {
		return u.Min
	}
	p := keyUniform(key, 0x756e69666f726d5f^u.Salt)
	return u.Min + uint32(p*float64(u.Max-u.Min+1))
}

// ChoiceSize picks among a small set of discrete sizes with weights —
// modeling block-size mixes (MSR traces issue mostly 4 KiB with larger
// multiples mixed in).
type ChoiceSize struct {
	Sizes   []uint32
	Weights []float64 // same length as Sizes; need not be normalized
	Salt    uint64
}

// SizeOf returns the deterministic size of key.
func (c ChoiceSize) SizeOf(key uint64) uint32 {
	if len(c.Sizes) == 0 {
		return 0
	}
	var total float64
	for _, w := range c.Weights {
		total += w
	}
	if total <= 0 {
		return c.Sizes[0]
	}
	u := keyUniform(key, 0x63686f6963655f5f^c.Salt) * total
	for i, w := range c.Weights {
		if u < w {
			return c.Sizes[i]
		}
		u -= w
	}
	return c.Sizes[len(c.Sizes)-1]
}

// AddressSize assigns sizes by address region: ids below Boundary
// draw from Below, the rest from Above. Generators pass the
// pre-scramble id (block address / popularity rank) to SizeOf, so
// this creates the size↔locality correlation real block traces have —
// e.g. a hot region of small blocks with large sequential stripes
// elsewhere — which is exactly what breaks the uniform-size
// assumption (§5.4, Fig 5.3A).
type AddressSize struct {
	Boundary uint64
	Below    SizeDist
	Above    SizeDist
}

// SizeOf returns the deterministic size of id.
func (a AddressSize) SizeOf(id uint64) uint32 {
	if id < a.Boundary {
		return a.Below.SizeOf(id)
	}
	return a.Above.SizeOf(id)
}

func clampSize(v float64, min, max uint32) uint32 {
	if math.IsNaN(v) || v < 1 {
		v = 1
	}
	if min > 0 && v < float64(min) {
		v = float64(min)
	}
	if max > 0 && v > float64(max) {
		v = float64(max)
	}
	if v > float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}
