package fleet

import (
	"reflect"
	"testing"

	"krr/internal/mrc"
)

// stepCurve builds a step MRC from (size, miss) pairs; a leading
// (0, 1) point is implied by construction everywhere in the repo.
func stepCurve(sizes []uint64, miss []float64) *mrc.Curve {
	return &mrc.Curve{Sizes: sizes, Miss: miss, Interp: mrc.InterpStep}
}

func testDemands() []Demand {
	// "hot": steep — small capacity buys most of the hits.
	// "flat": shallow — needs a lot of capacity for modest gains.
	// "loop": cliff at 400, nothing before it.
	return []Demand{
		{Tenant: "hot", Weight: 6000, Curve: stepCurve(
			[]uint64{0, 50, 100, 200}, []float64{1, 0.30, 0.15, 0.10})},
		{Tenant: "flat", Weight: 3000, Curve: stepCurve(
			[]uint64{0, 500, 1000}, []float64{1, 0.80, 0.60})},
		{Tenant: "loop", Weight: 1000, Curve: stepCurve(
			[]uint64{0, 399, 400}, []float64{1, 1, 0.05})},
	}
}

func TestWaterfillFeasibleAndDeterministic(t *testing.T) {
	for _, budget := range []uint64{0, 10, 100, 500, 1000, 5000} {
		p1 := Waterfill(testDemands(), budget)
		if err := p1.Feasible(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		p2 := Waterfill(testDemands(), budget)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("budget %d: plans differ across identical runs:\n%+v\n%+v", budget, p1, p2)
		}
	}
}

func TestWaterfillMonotoneInBudget(t *testing.T) {
	last := 2.0
	for _, budget := range []uint64{0, 50, 100, 400, 600, 1000, 2000} {
		p := Waterfill(testDemands(), budget)
		if p.AggregateMiss > last+1e-12 {
			t.Fatalf("aggregate miss rose with budget: %v after %v at budget %d", p.AggregateMiss, last, budget)
		}
		last = p.AggregateMiss
	}
}

func TestWaterfillBeatsBaselines(t *testing.T) {
	for _, budget := range []uint64{300, 600, 1200} {
		wf := Waterfill(testDemands(), budget)
		prop := ProportionalSplit(testDemands(), budget)
		uni := UniformSplit(testDemands(), budget)
		if wf.AggregateMiss > prop.AggregateMiss+1e-12 {
			t.Fatalf("budget %d: waterfill %v worse than proportional %v", budget, wf.AggregateMiss, prop.AggregateMiss)
		}
		if wf.AggregateMiss > uni.AggregateMiss+1e-12 {
			t.Fatalf("budget %d: waterfill %v worse than uniform %v", budget, wf.AggregateMiss, uni.AggregateMiss)
		}
	}
}

func TestWaterfillCrossesPlateau(t *testing.T) {
	// The loop tenant's curve is flat until its working set fits; a
	// naive step-by-step greedy stalls on the zero-gain plateau, the
	// hull jumps it. At budget 450 the optimum spends 400 on the loop
	// cliff only if its weighted gain beats the hot tenant's; with
	// these weights hot wins first, then loop's cliff must be taken
	// when the budget allows both.
	d := []Demand{
		{Tenant: "hot", Weight: 1000, Curve: stepCurve(
			[]uint64{0, 50}, []float64{1, 0.2})},
		{Tenant: "loop", Weight: 5000, Curve: stepCurve(
			[]uint64{0, 399, 400}, []float64{1, 1, 0.05})},
	}
	p := Waterfill(d, 450)
	byTenant := map[string]Allocation{}
	for _, a := range p.Allocations {
		byTenant[a.Tenant] = a
	}
	if byTenant["loop"].Capacity != 400 {
		t.Fatalf("loop tenant not carried over its plateau: %+v", p)
	}
	if byTenant["hot"].Capacity != 50 {
		t.Fatalf("hot tenant starved: %+v", p)
	}
}

func TestWaterfillLeavesSaturatedBudgetIdle(t *testing.T) {
	d := []Demand{{Tenant: "a", Weight: 1, Curve: stepCurve(
		[]uint64{0, 10}, []float64{1, 0.1})}}
	p := Waterfill(d, 1000)
	if p.Allocated != 10 {
		t.Fatalf("allocated %d past the curve's last breakpoint", p.Allocated)
	}
	if err := p.Feasible(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitsOnEmptyDemands(t *testing.T) {
	for _, p := range []Plan{
		Waterfill(nil, 100),
		UniformSplit(nil, 100),
		ProportionalSplit(nil, 100),
	} {
		if err := p.Feasible(); err != nil {
			t.Fatal(err)
		}
		if p.Allocated != 0 || len(p.Allocations) != 0 {
			t.Fatalf("empty demands allocated something: %+v", p)
		}
	}
}
