package fleet

import (
	"fmt"
	"sort"

	"krr/internal/mrc"
)

// Demand is one tenant's input to the partitioning optimizer: its live
// miss-ratio curve and its traffic weight (requests seen). The
// aggregate miss ratio being minimized is the traffic-weighted mean of
// the per-tenant miss ratios, so gains are weighted by traffic.
type Demand struct {
	Tenant string
	Curve  *mrc.Curve
	Weight float64
}

// Allocation is one tenant's share of the partitioned budget.
type Allocation struct {
	Tenant   string  `json:"tenant"`
	Capacity uint64  `json:"capacity"`
	Miss     float64 `json:"miss"`
}

// Plan is a complete partitioning of a shared budget.
type Plan struct {
	// Method names the split that produced the plan.
	Method string `json:"method"`
	// Unit is "objects" or "bytes", matching the curves' size axis.
	Unit string `json:"unit"`
	// Budget is the shared capacity being partitioned.
	Budget uint64 `json:"budget"`
	// Allocated is the capacity actually handed out (<= Budget; the
	// waterfill leaves budget idle once every curve is saturated).
	Allocated uint64 `json:"allocated"`
	// AggregateMiss is the traffic-weighted mean predicted miss ratio.
	AggregateMiss float64      `json:"aggregate_miss"`
	Allocations   []Allocation `json:"allocations"`
}

// hullPoint is one vertex of a demand's concave gain envelope.
type hullPoint struct {
	cap  uint64
	gain float64 // weighted miss-ratio reduction vs capacity 0
}

// segment is one hull edge, the unit of the coarse waterfill phase.
type segment struct {
	tenant int // demand index
	index  int // edge order within the tenant's hull
	width  uint64
	slope  float64 // marginal gain per capacity unit
}

// gainPoints converts a demand's MRC breakpoints into cumulative gain
// points: gain(c) = weight * (miss(0) - miss(c)). Non-improving
// breakpoints are dropped, so gains are strictly increasing.
func gainPoints(d Demand) []hullPoint {
	pts := []hullPoint{{cap: 0, gain: 0}}
	base := d.Curve.Eval(0)
	for i, size := range d.Curve.Sizes {
		if size == 0 {
			continue
		}
		g := d.Weight * (base - d.Curve.Miss[i])
		last := pts[len(pts)-1]
		if size <= last.cap || g <= last.gain {
			continue
		}
		pts = append(pts, hullPoint{cap: size, gain: g})
	}
	return pts
}

// concaveHull reduces gain points to their upper concave envelope
// (monotone-chain: pop while the incoming point makes the previous
// vertex lie under the chord). Hull edge slopes strictly decrease, the
// property the global greedy merge relies on.
func concaveHull(pts []hullPoint) []hullPoint {
	hull := pts[:0:0]
	for _, p := range pts {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// b is under the a→p chord when slope(a,b) <= slope(b,p).
			lhs := (b.gain - a.gain) * float64(p.cap-b.cap)
			rhs := (p.gain - b.gain) * float64(b.cap-a.cap)
			if lhs > rhs {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// Waterfill partitions budget across the demands by marginal
// miss-ratio gain: hull edges from every tenant are consumed in
// decreasing-slope order while they fit, then a fine-grained pass
// advances tenants through individual MRC breakpoints that still fit
// the remainder. The result is budget-feasible by construction and
// deterministic for fixed inputs (all orderings carry explicit
// tenant-id tie-breaks).
func Waterfill(demands []Demand, budget uint64) Plan {
	demands = sortedDemands(demands)
	hulls := make([][]hullPoint, len(demands))
	var segs []segment
	for t, d := range demands {
		hulls[t] = concaveHull(gainPoints(d))
		for i := 1; i < len(hulls[t]); i++ {
			a, b := hulls[t][i-1], hulls[t][i]
			segs = append(segs, segment{
				tenant: t,
				index:  i - 1,
				width:  b.cap - a.cap,
				slope:  (b.gain - a.gain) / float64(b.cap-a.cap),
			})
		}
	}
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].slope != segs[j].slope {
			return segs[i].slope > segs[j].slope
		}
		if segs[i].tenant != segs[j].tenant {
			return demands[segs[i].tenant].Tenant < demands[segs[j].tenant].Tenant
		}
		return segs[i].index < segs[j].index
	})

	alloc := make([]uint64, len(demands)) // current capacity per tenant
	reached := make([]int, len(demands))  // hull vertex each tenant sits at
	remaining := budget
	// Coarse phase: whole hull edges, steepest first. An edge is
	// admissible only when its tenant sits exactly at the edge's start
	// vertex (a skipped too-wide edge strands the tenant's later,
	// shallower edges, preserving greedy order).
	for _, s := range segs {
		if reached[s.tenant] != s.index || s.width > remaining {
			continue
		}
		reached[s.tenant]++
		alloc[s.tenant] = hulls[s.tenant][reached[s.tenant]].cap
		remaining -= s.width
	}
	// Fine phase: single MRC breakpoints that fit the remainder, best
	// marginal gain per unit first. Each round advances one tenant one
	// breakpoint, so the loop is bounded by the total breakpoint count.
	for {
		best, bestT := -1.0, -1
		var bestCap uint64
		for t, d := range demands {
			cur := alloc[t]
			curGain := d.Weight * (d.Curve.Eval(0) - d.Curve.Eval(cur))
			for i, size := range d.Curve.Sizes {
				if size <= cur || size-cur > remaining {
					continue
				}
				dg := d.Weight*(d.Curve.Eval(0)-d.Curve.Miss[i]) - curGain
				if dg <= 0 {
					continue
				}
				if score := dg / float64(size-cur); score > best {
					best, bestT, bestCap = score, t, size
				}
				break // sizes ascend; the nearest improving step per tenant per round
			}
		}
		if bestT < 0 {
			break
		}
		remaining -= bestCap - alloc[bestT]
		alloc[bestT] = bestCap
	}
	return buildPlan("waterfill", demands, alloc, budget)
}

// UniformSplit gives every tenant an equal share of the budget.
func UniformSplit(demands []Demand, budget uint64) Plan {
	demands = sortedDemands(demands)
	alloc := make([]uint64, len(demands))
	if n := uint64(len(demands)); n > 0 {
		for t := range alloc {
			alloc[t] = budget / n
		}
	}
	return buildPlan("uniform", demands, alloc, budget)
}

// ProportionalSplit sizes shares by traffic weight — the common
// operational heuristic the waterfill is measured against.
func ProportionalSplit(demands []Demand, budget uint64) Plan {
	demands = sortedDemands(demands)
	alloc := make([]uint64, len(demands))
	var total float64
	for _, d := range demands {
		total += d.Weight
	}
	if total > 0 {
		for t, d := range demands {
			alloc[t] = uint64(float64(budget) * d.Weight / total)
		}
	}
	return buildPlan("proportional", demands, alloc, budget)
}

// sortedDemands returns a copy ordered by tenant id, the canonical
// order every split emits and every tie-break uses.
func sortedDemands(demands []Demand) []Demand {
	out := append([]Demand(nil), demands...)
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// buildPlan evaluates per-tenant miss ratios at the chosen capacities
// and assembles the plan.
func buildPlan(method string, demands []Demand, alloc []uint64, budget uint64) Plan {
	p := Plan{Method: method, Unit: "objects", Budget: budget}
	var wSum, wMiss float64
	for t, d := range demands {
		miss := d.Curve.Eval(alloc[t])
		p.Allocations = append(p.Allocations, Allocation{
			Tenant:   d.Tenant,
			Capacity: alloc[t],
			Miss:     miss,
		})
		p.Allocated += alloc[t]
		wSum += d.Weight
		wMiss += d.Weight * miss
	}
	if wSum > 0 {
		p.AggregateMiss = wMiss / wSum
	}
	return p
}

// Feasible verifies the plan against a budget (used by smoke tests and
// the HTTP layer's self-check).
func (p Plan) Feasible() error {
	var sum uint64
	for _, a := range p.Allocations {
		if a.Miss < 0 || a.Miss > 1 {
			return fmt.Errorf("fleet: tenant %s miss %v out of [0, 1]", a.Tenant, a.Miss)
		}
		sum += a.Capacity
	}
	if sum != p.Allocated {
		return fmt.Errorf("fleet: allocated %d != sum of shares %d", p.Allocated, sum)
	}
	if sum > p.Budget {
		return fmt.Errorf("fleet: allocated %d exceeds budget %d", sum, p.Budget)
	}
	return nil
}
