package fleet

import (
	"io"
	"testing"

	"krr/internal/model"
	"krr/internal/trace"
)

// readAll drains a reader into a slice.
func readAll(t *testing.T, r trace.Reader) []trace.Request {
	t.Helper()
	var out []trace.Request
	for {
		req, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, req)
	}
}

// TestIngestBatchMatchesIngest pins the wire sink path to the
// reader-based path: same stream, same spec — identical curves and
// request counters.
func TestIngestBatchMatchesIngest(t *testing.T) {
	reqs := readAll(t, zipfTrace(5, 800, 0, 20000))

	viaReader := NewRegistry(Config{})
	if _, err := viaReader.Ingest("a", trace.LimitReader(&sliceReader{reqs: reqs}, len(reqs))); err != nil {
		t.Fatal(err)
	}

	viaBatch := NewRegistry(Config{})
	for off := 0; off < len(reqs); off += 1333 {
		end := off + 1333
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := viaBatch.IngestBatch("a", reqs[off:end]); err != nil {
			t.Fatal(err)
		}
	}

	ta, _ := viaReader.Get("a")
	tb, _ := viaBatch.Get("a")
	if ta.requests.Load() != tb.requests.Load() {
		t.Fatalf("request counters: reader %d batch %d", ta.requests.Load(), tb.requests.Load())
	}
	sa, sb := ta.Snapshot(), tb.Snapshot()
	if sa.Stats.Seen != sb.Stats.Seen {
		t.Fatalf("seen: reader %d batch %d", sa.Stats.Seen, sb.Stats.Seen)
	}
	if len(sa.Object.Sizes) != len(sb.Object.Sizes) {
		t.Fatalf("curve sizes: reader %d batch %d", len(sa.Object.Sizes), len(sb.Object.Sizes))
	}
	for i := range sa.Object.Sizes {
		if sa.Object.Sizes[i] != sb.Object.Sizes[i] || sa.Object.Miss[i] != sb.Object.Miss[i] {
			t.Fatalf("curves diverge at %d", i)
		}
	}
}

// sliceReader mirrors trace.Trace's reader for a raw slice.
type sliceReader struct {
	reqs []trace.Request
	i    int
}

func (r *sliceReader) Next() (trace.Request, error) {
	if r.i >= len(r.reqs) {
		return trace.Request{}, io.EOF
	}
	req := r.reqs[r.i]
	r.i++
	return req, nil
}

// TestIngestBatchShardedModel pins the batch path through a sharded
// model (the BatchProcessor fast path) end to end.
func TestIngestBatchShardedModel(t *testing.T) {
	r := NewRegistry(Config{Default: Spec{Model: "krr", Options: model.Options{Workers: 2}}})
	reqs := readAll(t, zipfTrace(9, 400, 0, 8000))
	for off := 0; off < len(reqs); off += 512 {
		end := off + 512
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := r.IngestBatch("s", reqs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	ten, ok := r.Get("s")
	if !ok {
		t.Fatal("tenant not created")
	}
	if got := ten.Stats().Seen; got != uint64(len(reqs)) {
		t.Fatalf("seen %d, want %d", got, len(reqs))
	}
	snap := ten.Snapshot()
	if snap.Object == nil || len(snap.Object.Sizes) == 0 {
		t.Fatal("empty curve after batched ingest")
	}
	if !r.Evict("s") {
		t.Fatal("evict failed")
	}
}

// TestIngestBatchFootprintCadence pins the amortization contract: the
// cached footprint refreshes every footprintEvery batches, not per
// call.
func TestIngestBatchFootprintCadence(t *testing.T) {
	r := NewRegistry(Config{})
	reqs := readAll(t, zipfTrace(13, 600, 0, footprintEvery*4))
	ten, err := r.Ensure("c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < footprintEvery-1; i++ {
		refreshed, err := ten.IngestBatch(reqs[i : i+1])
		if err != nil {
			t.Fatal(err)
		}
		if refreshed {
			t.Fatalf("footprint refreshed at batch %d (< %d)", i+1, footprintEvery)
		}
	}
	if ten.Footprint() != 0 {
		t.Fatal("footprint cached before the refresh point")
	}
	refreshed, err := ten.IngestBatch(reqs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatalf("footprint not refreshed at batch %d", footprintEvery)
	}
	if ten.Footprint() <= 0 {
		t.Fatal("footprint not populated by the refresh")
	}
}
