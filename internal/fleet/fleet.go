// Package fleet is the multi-tenant hosting layer over the model
// registry: the piece that turns one-trace MRC construction into a
// cache-fleet advisor. It owns a concurrency-safe tenant registry
// (per-tenant model choice, sampling rate and bucket ratio via
// model.Options, per-tenant telemetry), enforces a strict global
// memory budget from model footprint accounting, and partitions a
// shared cache budget across tenants by marginal miss-ratio gain
// (allocate.go).
//
// Locking: the registry RWMutex guards only the tenant map; each
// tenant's mutex serializes access to its (serial) model. No path
// acquires the registry lock while holding a tenant lock, so the two
// levels cannot deadlock. Footprints are cached in per-tenant atomics
// after each ingest, making budget checks and /metrics scrapes pure
// atomic reads. A tenant evicted while another goroutine is mid-ingest
// into it is merely orphaned: the ingest completes into a model no
// longer counted or reachable, and the arena is collected when the
// ingest returns.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"krr/internal/model"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// ErrNoTenant is returned for operations on unknown tenant ids.
var ErrNoTenant = errors.New("fleet: no such tenant")

// ErrTenantExists is returned by Create for a taken id.
var ErrTenantExists = errors.New("fleet: tenant exists")

// Spec is a tenant's model choice.
type Spec struct {
	// Model is a model-registry name or alias ("krr", "krr-bucket",
	// "olken", ...).
	Model string
	// Options configure the model (K, seed, sampling rate, byte mode,
	// workers, bucket ratio).
	Options model.Options
}

// Config shapes a Registry.
type Config struct {
	// Default is the spec used when ingest auto-creates a tenant.
	// Zero value means {"krr", defaults}.
	Default Spec
	// MemoryBudgetBytes caps the summed model footprints; exceeding it
	// evicts least-recently-used tenants. 0 means unlimited.
	MemoryBudgetBytes int64
	// MaxTenants caps the tenant count; creating past it evicts the
	// least-recently-used tenant. 0 means unlimited.
	MaxTenants int
	// IdleTTL is the idle horizon for SweepIdle. 0 disables sweeping.
	IdleTTL time.Duration
	// Clock supplies time (tests inject a fake). Nil means time.Now.
	Clock func() time.Time
}

func (c *Config) fill() {
	if c.Default.Model == "" {
		c.Default.Model = "krr"
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Tenant is one hosted shadow model.
type Tenant struct {
	// ID is the registry key.
	ID string
	// Spec is the model choice the tenant was built with.
	Spec Spec

	// mu serializes model access: serial models tolerate one caller at
	// a time, and Footprint must not race Process.
	mu    sync.Mutex
	model model.Model

	set       *telemetry.Set
	requests  telemetry.Counter
	batches   uint64 // guarded by mu; drives footprint refresh cadence
	footprint atomic.Int64
	lastUse   atomic.Int64 // unix nanos
	created   time.Time
}

// Set returns the tenant's telemetry set (model metrics under
// krr_model_, tenant counters under tenant_).
func (t *Tenant) Set() *telemetry.Set { return t.set }

// Footprint returns the tenant's cached model footprint in bytes
// (refreshed after every ingest).
func (t *Tenant) Footprint() int64 { return t.footprint.Load() }

// touch refreshes the LRU clock.
func (t *Tenant) touch(now time.Time) { t.lastUse.Store(now.UnixNano()) }

// Snapshot reads the tenant's live curves without finalizing.
func (t *Tenant) Snapshot() model.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.model.Snapshot()
}

// Stats reports the tenant's stream counters.
func (t *Tenant) Stats() model.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.model.Stats()
}

// Ingest drains a reader into the tenant's model and refreshes the
// cached footprint. It returns the number of requests processed.
func (t *Tenant) Ingest(r trace.Reader) (uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.model.Stats().Seen
	err := model.ProcessAll(t.model, r)
	n := t.model.Stats().Seen - before
	t.requests.Add(n)
	t.footprint.Store(model.FootprintOf(t.model))
	return n, err
}

// footprintEvery is the batch cadence of footprint refreshes on the
// IngestBatch hot path. Footprint reads quiesce sharded pipelines —
// far too expensive per frame — so the cached value may lag by up to
// footprintEvery-1 batches (at most a few MiB of drift at typical
// frame sizes) between refreshes.
const footprintEvery = 64

// IngestBatch feeds one decoded request batch to the tenant's model —
// the wire ingest hot path. It differs from Ingest in two ways: the
// batch goes through the model's BatchProcessor fast path when it has
// one, and the cached footprint is refreshed only every footprintEvery
// batches instead of per call. The returned bool reports whether this
// call refreshed the footprint; callers re-check the memory budget
// only then.
func (t *Tenant) IngestBatch(reqs []trace.Request) (refreshed bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	err = model.ProcessBatch(t.model, reqs)
	t.requests.Add(uint64(len(reqs)))
	t.batches++
	if t.batches%footprintEvery == 0 {
		t.footprint.Store(model.FootprintOf(t.model))
		refreshed = true
	}
	return refreshed, err
}

// close releases model resources (sharded pipelines hold worker
// goroutines).
func (t *Tenant) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.model.(io.Closer); ok {
		_ = c.Close()
	}
}

// TenantInfo is a read-only listing row.
type TenantInfo struct {
	ID        string    `json:"id"`
	Model     string    `json:"model"`
	Requests  uint64    `json:"requests"`
	Footprint int64     `json:"footprint_bytes"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
}

// Registry hosts the tenant fleet.
type Registry struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[string]*Tenant

	created         telemetry.Counter
	evictedTTL      telemetry.Counter
	evictedBudget   telemetry.Counter
	evictedCapacity telemetry.Counter
	evictedManual   telemetry.Counter
	allocations     telemetry.Counter
}

// NewRegistry builds an empty fleet registry.
func NewRegistry(cfg Config) *Registry {
	cfg.fill()
	return &Registry{cfg: cfg, tenants: make(map[string]*Tenant)}
}

// newTenant builds a tenant (no locks held).
func (r *Registry) newTenant(id string, spec Spec) (*Tenant, error) {
	if spec.Model == "" {
		spec = r.cfg.Default
	}
	m, err := model.New(spec.Model, spec.Options)
	if err != nil {
		return nil, err
	}
	now := r.cfg.Clock()
	t := &Tenant{
		ID:      id,
		Spec:    spec,
		model:   m,
		set:     telemetry.NewSet(),
		created: now,
	}
	t.touch(now)
	if ms, ok := m.(model.MetricSource); ok {
		ms.MetricsInto(t.set, "krr_model_")
	}
	t.set.CounterFunc("tenant_requests_total", "requests ingested for this tenant", t.requests.Load)
	t.set.GaugeFunc("tenant_footprint_bytes", "cached model footprint in bytes", func() float64 {
		return float64(t.footprint.Load())
	})
	return t, nil
}

// Create registers a new tenant with an explicit spec. A zero-Model
// spec uses the configured default.
func (r *Registry) Create(id string, spec Spec) (*Tenant, error) {
	if id == "" {
		return nil, errors.New("fleet: empty tenant id")
	}
	t, err := r.newTenant(id, spec)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, dup := r.tenants[id]; dup {
		r.mu.Unlock()
		t.close()
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, id)
	}
	r.tenants[id] = t
	evicted := r.enforceCapacityLocked(id)
	r.mu.Unlock()
	r.created.Inc()
	closeAll(evicted)
	return t, nil
}

// Ensure returns the tenant, creating it with the default spec when
// absent — the ingest-side auto-create path.
func (r *Registry) Ensure(id string) (*Tenant, error) {
	r.mu.RLock()
	t, ok := r.tenants[id]
	r.mu.RUnlock()
	if ok {
		return t, nil
	}
	t, err := r.Create(id, r.cfg.Default)
	if errors.Is(err, ErrTenantExists) {
		// Lost the create race; the winner's tenant is the one.
		r.mu.RLock()
		t, ok = r.tenants[id]
		r.mu.RUnlock()
		if ok {
			return t, nil
		}
		return nil, ErrNoTenant
	}
	return t, err
}

// Get looks a tenant up.
func (r *Registry) Get(id string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	return t, ok
}

// Evict removes a tenant, releasing its model resources.
func (r *Registry) Evict(id string) bool {
	r.mu.Lock()
	t, ok := r.tenants[id]
	if ok {
		delete(r.tenants, id)
	}
	r.mu.Unlock()
	if !ok {
		return false
	}
	r.evictedManual.Inc()
	t.close()
	return true
}

// Len returns the tenant count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Footprint returns the summed cached footprints of all tenants.
func (r *Registry) Footprint() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, t := range r.tenants {
		total += t.footprint.Load()
	}
	return total
}

// Ingest drains a reader into the tenant (auto-created when absent),
// then enforces the global memory budget, evicting idle tenants if the
// new data pushed the fleet over.
func (r *Registry) Ingest(id string, reader trace.Reader) (uint64, error) {
	t, err := r.Ensure(id)
	if err != nil {
		return 0, err
	}
	t.touch(r.cfg.Clock())
	n, err := t.Ingest(reader)
	r.enforceBudget(id)
	return n, err
}

// IngestBatch feeds one decoded batch to the tenant (auto-created when
// absent) — the wire data plane's sink. Budget enforcement rides the
// tenant's amortized footprint refresh instead of running per frame.
func (r *Registry) IngestBatch(id string, reqs []trace.Request) error {
	t, err := r.Ensure(id)
	if err != nil {
		return err
	}
	t.touch(r.cfg.Clock())
	refreshed, err := t.IngestBatch(reqs)
	if refreshed {
		r.enforceBudget(id)
	}
	return err
}

// Snapshot reads a tenant's live curves.
func (r *Registry) Snapshot(id string) (model.Snapshot, error) {
	t, ok := r.Get(id)
	if !ok {
		return model.Snapshot{}, fmt.Errorf("%w: %s", ErrNoTenant, id)
	}
	t.touch(r.cfg.Clock())
	return t.Snapshot(), nil
}

// List returns tenant rows sorted by id.
func (r *Registry) List() []TenantInfo {
	r.mu.RLock()
	out := make([]TenantInfo, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, TenantInfo{
			ID:        t.ID,
			Model:     t.Spec.Model,
			Requests:  t.requests.Load(),
			Footprint: t.footprint.Load(),
			Created:   t.created,
			LastUsed:  time.Unix(0, t.lastUse.Load()),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// lruLocked returns the least-recently-used tenant, excluding one
// protected id ("" protects nothing). Ties break on id so eviction
// order is deterministic under a frozen clock.
func (r *Registry) lruLocked(protect string) *Tenant {
	var victim *Tenant
	for id, t := range r.tenants {
		if id == protect {
			continue
		}
		if victim == nil {
			victim = t
			continue
		}
		lu, lv := t.lastUse.Load(), victim.lastUse.Load()
		if lu < lv || (lu == lv && t.ID < victim.ID) {
			victim = t
		}
	}
	return victim
}

// enforceCapacityLocked evicts LRU tenants past MaxTenants, protecting
// the just-created id. Caller holds the write lock; returned tenants
// are closed by the caller after unlocking.
func (r *Registry) enforceCapacityLocked(protect string) []*Tenant {
	if r.cfg.MaxTenants <= 0 {
		return nil
	}
	var out []*Tenant
	for len(r.tenants) > r.cfg.MaxTenants {
		victim := r.lruLocked(protect)
		if victim == nil {
			break
		}
		delete(r.tenants, victim.ID)
		r.evictedCapacity.Inc()
		out = append(out, victim)
	}
	return out
}

// enforceBudget evicts LRU tenants while the summed footprint exceeds
// the configured memory budget. The protected id (the tenant that just
// ingested) survives even if it alone exceeds the budget — evicting
// the data that was just paid for would make ingest a no-op.
func (r *Registry) enforceBudget(protect string) {
	if r.cfg.MemoryBudgetBytes <= 0 {
		return
	}
	var evicted []*Tenant
	r.mu.Lock()
	for {
		var total int64
		for _, t := range r.tenants {
			total += t.footprint.Load()
		}
		if total <= r.cfg.MemoryBudgetBytes {
			break
		}
		victim := r.lruLocked(protect)
		if victim == nil {
			break
		}
		delete(r.tenants, victim.ID)
		r.evictedBudget.Inc()
		evicted = append(evicted, victim)
	}
	r.mu.Unlock()
	closeAll(evicted)
}

// SweepIdle evicts tenants idle longer than IdleTTL, returning how
// many were removed.
func (r *Registry) SweepIdle() int {
	if r.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := r.cfg.Clock().Add(-r.cfg.IdleTTL).UnixNano()
	var evicted []*Tenant
	r.mu.Lock()
	for id, t := range r.tenants {
		if t.lastUse.Load() < cutoff {
			delete(r.tenants, id)
			r.evictedTTL.Inc()
			evicted = append(evicted, t)
		}
	}
	r.mu.Unlock()
	closeAll(evicted)
	return len(evicted)
}

func closeAll(ts []*Tenant) {
	for _, t := range ts {
		t.close()
	}
}

// Demands snapshots every tenant's live curve for the optimizer.
// unit is "objects" or "bytes"; byte demands require every tenant to
// run a byte-capable model. Tenants whose curves are still empty
// (no requests) are skipped.
func (r *Registry) Demands(unit string) ([]Demand, error) {
	r.mu.RLock()
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].ID < tenants[j].ID })

	var demands []Demand
	for _, t := range tenants {
		snap := t.Snapshot()
		curve := snap.Object
		if unit == "bytes" {
			if snap.Byte == nil {
				return nil, fmt.Errorf("fleet: tenant %s has no byte curve (model %s not in a byte mode)", t.ID, t.Spec.Model)
			}
			curve = snap.Byte
		}
		if snap.Stats.Seen == 0 || curve == nil {
			continue
		}
		demands = append(demands, Demand{
			Tenant: t.ID,
			Curve:  curve,
			Weight: float64(snap.Stats.Seen),
		})
	}
	return demands, nil
}

// Allocate waterfills budget across the live tenants by marginal
// miss-ratio gain.
func (r *Registry) Allocate(budget uint64, unit string) (Plan, error) {
	demands, err := r.Demands(unit)
	if err != nil {
		return Plan{}, err
	}
	r.allocations.Inc()
	plan := Waterfill(demands, budget)
	if unit == "bytes" {
		plan.Unit = "bytes"
	}
	return plan, nil
}

// MetricsInto registers fleet-level metrics under prefix.
func (r *Registry) MetricsInto(set *telemetry.Set, prefix string) {
	set.GaugeFunc(prefix+"tenants", "live tenant count", func() float64 {
		return float64(r.Len())
	})
	set.GaugeFunc(prefix+"footprint_bytes", "summed cached model footprints", func() float64 {
		return float64(r.Footprint())
	})
	set.GaugeFunc(prefix+"memory_budget_bytes", "configured global memory budget (0 = unlimited)", func() float64 {
		return float64(r.cfg.MemoryBudgetBytes)
	})
	set.CounterFunc(prefix+"tenants_created_total", "tenants created", r.created.Load)
	set.CounterFunc(prefix+"evictions_ttl_total", "tenants evicted by idle TTL", r.evictedTTL.Load)
	set.CounterFunc(prefix+"evictions_budget_total", "tenants evicted by memory budget", r.evictedBudget.Load)
	set.CounterFunc(prefix+"evictions_capacity_total", "tenants evicted by MaxTenants", r.evictedCapacity.Load)
	set.CounterFunc(prefix+"evictions_manual_total", "tenants evicted by request", r.evictedManual.Load)
	set.CounterFunc(prefix+"allocations_total", "partitioning plans computed", r.allocations.Load)
}
