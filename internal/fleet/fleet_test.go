package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"krr/internal/model"
	"krr/internal/trace"
	"krr/internal/workload"
)

// fakeClock is a manually advanced clock for deterministic LRU/TTL
// ordering.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// zipfTrace returns a reader of n Zipfian requests over the given key
// count, salted into its own key space.
func zipfTrace(seed, keys uint64, space uint64, n int) trace.Reader {
	g := workload.NewZipf(seed, keys, 0.9, nil, 0)
	g.SetKeySpace(space)
	return trace.LimitReader(g, n)
}

func TestIngestAutoCreatesAndCounts(t *testing.T) {
	r := NewRegistry(Config{})
	n, err := r.Ingest("a", zipfTrace(1, 500, 0, 4000))
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if n != 4000 {
		t.Fatalf("ingested %d, want 4000", n)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	ten, ok := r.Get("a")
	if !ok {
		t.Fatal("tenant a missing")
	}
	if fp := ten.Footprint(); fp <= 0 {
		t.Fatalf("tenant footprint = %d, want > 0", fp)
	}
	if total := r.Footprint(); total != ten.Footprint() {
		t.Fatalf("registry footprint %d != tenant footprint %d", total, ten.Footprint())
	}
	snap, err := r.Snapshot("a")
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if snap.Object == nil || snap.Object.Eval(0) != 1 {
		t.Fatalf("snapshot curve malformed: %+v", snap.Object)
	}
}

func TestCreateDuplicateAndSpec(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.Create("a", Spec{Model: "krr-bucket"}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := r.Create("a", Spec{}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate Create err = %v, want ErrTenantExists", err)
	}
	if _, err := r.Create("bad", Spec{Model: "no-such-model"}); err == nil {
		t.Fatal("Create with unknown model succeeded")
	}
	ten, _ := r.Get("a")
	if ten.Spec.Model != "krr-bucket" {
		t.Fatalf("spec not retained: %+v", ten.Spec)
	}
}

// TestIdleEvictionFreesFootprint is the satellite proof: an evicted
// tenant's arena memory leaves the registry's accounting entirely.
func TestIdleEvictionFreesFootprint(t *testing.T) {
	clock := newFakeClock()
	r := NewRegistry(Config{IdleTTL: time.Minute, Clock: clock.Now})
	if _, err := r.Ingest("a", zipfTrace(1, 2000, 0, 8000)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(30 * time.Second)
	if _, err := r.Ingest("b", zipfTrace(2, 2000, 1<<40, 8000)); err != nil {
		t.Fatal(err)
	}
	before := r.Footprint()
	if before <= 0 {
		t.Fatalf("footprint before sweep = %d, want > 0", before)
	}
	tenA, _ := r.Get("a")
	fpA := tenA.Footprint()
	if fpA <= 0 {
		t.Fatalf("tenant a footprint = %d, want > 0", fpA)
	}

	// 45s later: a is 75s idle (evict), b is 45s idle (keep).
	clock.Advance(45 * time.Second)
	if n := r.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle evicted %d, want 1", n)
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("tenant a survived the sweep")
	}
	after := r.Footprint()
	if after != before-fpA {
		t.Fatalf("footprint after sweep = %d, want %d - %d = %d", after, before, fpA, before-fpA)
	}

	// All tenants past TTL: registry drains to zero bytes.
	clock.Advance(2 * time.Minute)
	if n := r.SweepIdle(); n != 1 {
		t.Fatalf("second sweep evicted %d, want 1", n)
	}
	if fp := r.Footprint(); fp != 0 {
		t.Fatalf("footprint after full sweep = %d, want 0", fp)
	}
}

func TestBudgetEvictionKeepsIngestingTenant(t *testing.T) {
	clock := newFakeClock()
	// Budget fits roughly one 2000-object krr model (~55 KiB) but not
	// two.
	r := NewRegistry(Config{MemoryBudgetBytes: 80 << 10, Clock: clock.Now})
	if _, err := r.Ingest("old", zipfTrace(1, 2000, 0, 8000)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if _, err := r.Ingest("new", zipfTrace(2, 2000, 1<<40, 8000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("old"); ok {
		t.Fatalf("LRU tenant survived a budget breach (footprint %d)", r.Footprint())
	}
	if _, ok := r.Get("new"); !ok {
		t.Fatal("just-ingested tenant was evicted")
	}
	if fp := r.Footprint(); fp > 80<<10 {
		t.Fatalf("footprint %d still over budget", fp)
	}
}

func TestMaxTenantsEvictsLRU(t *testing.T) {
	clock := newFakeClock()
	r := NewRegistry(Config{MaxTenants: 2, Clock: clock.Now})
	for i, id := range []string{"a", "b", "c"} {
		clock.Advance(time.Second)
		if _, err := r.Ingest(id, zipfTrace(uint64(i+1), 100, uint64(i)<<40, 500)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("oldest tenant a survived MaxTenants eviction")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("tenant %s missing", id)
		}
	}
}

func TestRegistryAllocateDeterministic(t *testing.T) {
	r := NewRegistry(Config{})
	// Distinct shapes: hot zipf, broad uniform, loop.
	if _, err := r.Ingest("hot", zipfTrace(1, 300, 0, 20000)); err != nil {
		t.Fatal(err)
	}
	uni := workload.NewUniform(2, 5000, nil)
	uni.SetKeySpace(1 << 40)
	if _, err := r.Ingest("broad", trace.LimitReader(uni, 20000)); err != nil {
		t.Fatal(err)
	}
	loop := workload.NewLoop(800, nil)
	loop.SetKeySpace(2 << 40)
	if _, err := r.Ingest("loop", trace.LimitReader(loop, 20000)); err != nil {
		t.Fatal(err)
	}

	p1, err := r.Allocate(3000, "objects")
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := p1.Feasible(); err != nil {
		t.Fatal(err)
	}
	if len(p1.Allocations) != 3 {
		t.Fatalf("allocations = %d, want 3", len(p1.Allocations))
	}
	p2, err := r.Allocate(3000, "objects")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("allocation not deterministic for a fixed trace set:\n%+v\n%+v", p1, p2)
	}

	wf := p1.AggregateMiss
	demands, err := r.Demands("objects")
	if err != nil {
		t.Fatal(err)
	}
	if prop := ProportionalSplit(demands, 3000); wf > prop.AggregateMiss+1e-12 {
		t.Fatalf("waterfill %v worse than proportional %v", wf, prop.AggregateMiss)
	}
	if uni := UniformSplit(demands, 3000); wf > uni.AggregateMiss+1e-12 {
		t.Fatalf("waterfill %v worse than uniform %v", wf, uni.AggregateMiss)
	}
}

// TestConcurrentMultiTenantIngest is the -race satellite: goroutines
// ingest into disjoint and overlapping tenant ids while Allocate,
// Snapshot, List and SweepIdle run against the same registry.
func TestConcurrentMultiTenantIngest(t *testing.T) {
	clock := newFakeClock()
	r := NewRegistry(Config{
		MemoryBudgetBytes: 8 << 20,
		MaxTenants:        16,
		IdleTTL:           time.Hour,
		Clock:             clock.Now,
	})
	const (
		workers = 8
		batches = 6
		perReq  = 1500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				// Even workers share tenant "shared"; odd workers own a
				// disjoint id — both contention patterns in one run.
				id := "shared"
				if w%2 == 1 {
					id = fmt.Sprintf("own-%d", w)
				}
				seed := uint64(w*batches + b + 1)
				if _, err := r.Ingest(id, zipfTrace(seed, 400, uint64(w)<<40, perReq)); err != nil {
					t.Errorf("Ingest(%s): %v", id, err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if p, err := r.Allocate(2000, "objects"); err != nil {
				t.Errorf("Allocate: %v", err)
			} else if err := p.Feasible(); err != nil {
				t.Errorf("plan infeasible: %v", err)
			}
			_, _ = r.Snapshot("shared")
			_ = r.List()
			_ = r.Footprint()
			r.SweepIdle()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if r.Len() == 0 {
		t.Fatal("no tenants survived")
	}
	shared, ok := r.Get("shared")
	if !ok {
		t.Fatal("shared tenant missing")
	}
	if got := shared.Stats().Seen; got != uint64(workers/2*batches*perReq) {
		t.Fatalf("shared tenant saw %d requests, want %d", got, workers/2*batches*perReq)
	}
}

func TestEvictReleasesShardedWorkers(t *testing.T) {
	r := NewRegistry(Config{})
	if _, err := r.Create("s", Spec{Model: "krr", Options: model.Options{Workers: 4, Seed: 1}}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := r.Ingest("s", zipfTrace(1, 500, 0, 5000)); err != nil {
		t.Fatal(err)
	}
	if !r.Evict("s") {
		t.Fatal("Evict returned false")
	}
	if r.Evict("s") {
		t.Fatal("double Evict returned true")
	}
	if fp := r.Footprint(); fp != 0 {
		t.Fatalf("footprint after eviction = %d, want 0", fp)
	}
}
