// Package mimir implements the MIMIR bucketing scheme (Saemundsson et
// al., SoCC '14), the coarse-grained LRU stack of §6.1: the stack is
// divided into B aging buckets; objects within a bucket are unordered,
// so an access costs O(1) amortized and the stack distance is
// estimated as the total size of newer buckets plus half the object's
// own bucket. With B = 128 the paper reports near-exact MRCs.
package mimir

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
)

// DefaultBuckets is the bucket count MIMIR's authors recommend.
const DefaultBuckets = 128

// Stack is a MIMIR bucketed LRU stack.
type Stack struct {
	maxBuckets int

	// Buckets are identified by monotonically increasing ids; the
	// active window is [oldest, newest]. counts[i] is the population
	// of bucket oldest+i.
	oldest uint64
	counts []uint64

	pos  map[uint64]uint64 // key -> bucket id (may predate oldest; clamped)
	hist *histogram.Dense
}

// New returns a stack with the given bucket budget (<= 0 uses the
// default).
func New(buckets int) *Stack {
	if buckets <= 1 {
		buckets = DefaultBuckets
	}
	return &Stack{
		maxBuckets: buckets,
		counts:     []uint64{0},
		pos:        make(map[uint64]uint64),
		hist:       histogram.NewDense(1024),
	}
}

// Len returns the number of tracked objects.
func (s *Stack) Len() int { return len(s.pos) }

// Buckets returns the active bucket count.
func (s *Stack) Buckets() int { return len(s.counts) }

// newestID returns the id of the most recent bucket.
func (s *Stack) newestID() uint64 { return s.oldest + uint64(len(s.counts)) - 1 }

// clampID maps a possibly-stale bucket id into the active window
// (merged buckets collapse into the oldest).
func (s *Stack) clampID(id uint64) uint64 {
	if id < s.oldest {
		return s.oldest
	}
	return id
}

// Reference processes one access, returning the estimated stack
// distance and whether the reference was cold.
func (s *Stack) Reference(key uint64) (distance uint64, cold bool) {
	id, ok := s.pos[key]
	if ok {
		id = s.clampID(id)
		idx := int(id - s.oldest)
		// Distance: everything in newer buckets + half this bucket.
		var newer uint64
		for j := idx + 1; j < len(s.counts); j++ {
			newer += s.counts[j]
		}
		distance = newer + s.counts[idx]/2 + 1
		s.hist.Add(distance)
		s.counts[idx]--
	} else {
		cold = true
		s.hist.AddCold()
	}
	s.counts[len(s.counts)-1]++
	s.pos[key] = s.newestID()
	s.rotateIfNeeded()
	return distance, cold
}

// rotateIfNeeded opens a fresh bucket when the newest one exceeds its
// share (n/B) and merges the two oldest when the budget is exceeded.
func (s *Stack) rotateIfNeeded() {
	share := uint64(len(s.pos)/s.maxBuckets) + 1
	if s.counts[len(s.counts)-1] < share {
		return
	}
	s.counts = append(s.counts, 0)
	if len(s.counts) > s.maxBuckets {
		// Merge the two oldest: objects in bucket `oldest` flow into
		// `oldest+1` implicitly via clampID.
		s.counts[1] += s.counts[0]
		s.counts = s.counts[1:]
		s.oldest++
	}
}

// Delete removes key from the stack, returning residency.
func (s *Stack) Delete(key uint64) bool {
	id, ok := s.pos[key]
	if !ok {
		return false
	}
	idx := int(s.clampID(id) - s.oldest)
	s.counts[idx]--
	delete(s.pos, key)
	return true
}

// Process feeds one request.
func (s *Stack) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		s.Delete(req.Key)
		return
	}
	s.Reference(req.Key)
}

// ProcessAll drains a reader.
func (s *Stack) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the modeled exact-LRU miss ratio curve.
func (s *Stack) MRC() *mrc.Curve { return mrc.FromHistogram(s.hist, 1) }

// Hist exposes the stack distance histogram.
func (s *Stack) Hist() *histogram.Dense { return s.hist }

// MemoryOverheadBytes estimates the stack's resident metadata: the
// position map, the bucket population array and the histogram.
func (s *Stack) MemoryOverheadBytes() uint64 {
	const perEntry = 48 // map entry: key + bucket id + bucket overhead
	return uint64(len(s.pos))*perEntry + uint64(cap(s.counts))*8 + s.hist.MemBytes()
}
