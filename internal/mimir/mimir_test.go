package mimir

import (
	"testing"

	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestColdThenHit(t *testing.T) {
	s := New(8)
	if _, cold := s.Reference(1); !cold {
		t.Fatal("first touch must be cold")
	}
	d, cold := s.Reference(1)
	if cold {
		t.Fatal("second touch must hit")
	}
	if d == 0 || d > 2 {
		t.Fatalf("immediate reuse distance %d", d)
	}
}

func TestBucketBudgetRespected(t *testing.T) {
	s := New(16)
	src := xrand.New(3)
	for i := 0; i < 50000; i++ {
		s.Reference(src.Uint64n(5000))
	}
	if s.Buckets() > 16 {
		t.Fatalf("buckets %d exceed budget", s.Buckets())
	}
	if s.Len() > 5000 {
		t.Fatalf("tracked %d objects", s.Len())
	}
	// Population conservation: bucket counts sum to tracked objects.
	var sum uint64
	for _, c := range s.counts {
		sum += c
	}
	if sum != uint64(s.Len()) {
		t.Fatalf("bucket counts %d != tracked %d", sum, s.Len())
	}
}

func TestMatchesExactLRUOnZipf(t *testing.T) {
	g := workload.NewZipf(3, 20000, 0.8, nil, 0)
	tr, _ := trace.Collect(g, 300000)

	s := New(DefaultBuckets)
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	model := s.MRC()

	exact := olken.NewProfiler(1)
	exact.ProcessAll(tr.Reader())
	truth := exact.ObjectMRC(1)

	sizes := mrc.EvenSizes(20000, 25)
	if mae := mrc.MAE(model, truth, sizes); mae > 0.03 {
		t.Fatalf("MIMIR vs exact LRU MAE %v", mae)
	}
}

func TestLoopTrace(t *testing.T) {
	const m = 5000
	s := New(DefaultBuckets)
	g := workload.NewLoop(m, nil)
	s.ProcessAll(trace.LimitReader(g, m*10))
	c := s.MRC()
	if c.Eval(m/2) < 0.9 {
		t.Fatalf("miss(M/2) = %v", c.Eval(m/2))
	}
	if c.Eval(m+m/8) > 0.15 {
		t.Fatalf("miss beyond loop = %v", c.Eval(m+m/8))
	}
}

func TestDelete(t *testing.T) {
	s := New(8)
	s.Reference(1)
	if !s.Delete(1) || s.Delete(1) {
		t.Fatal("delete semantics")
	}
	if s.Len() != 0 {
		t.Fatal("object not removed")
	}
	if _, cold := s.Reference(1); !cold {
		t.Fatal("re-reference after delete must be cold")
	}
}

func TestDefaultBuckets(t *testing.T) {
	if New(0).maxBuckets != DefaultBuckets {
		t.Fatal("default not applied")
	}
}

func TestProcessDeleteOp(t *testing.T) {
	s := New(8)
	s.Process(trace.Request{Key: 1, Op: trace.OpGet})
	s.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	s.Process(trace.Request{Key: 1, Op: trace.OpGet})
	if s.Hist().Cold() != 2 {
		t.Fatalf("cold = %d", s.Hist().Cold())
	}
}

func BenchmarkReference(b *testing.B) {
	s := New(DefaultBuckets)
	g := workload.NewZipf(3, 1<<18, 1.0, nil, 0)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		r, _ := g.Next()
		keys[i] = r.Key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reference(keys[i&(1<<16-1)])
	}
}
