package model

import (
	"fmt"
	"sync"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/shardpipe"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// histSource is implemented by adapters whose registry entry declares
// CapSharded: the Sharded wrapper reads shard histograms directly and
// merges them, bypassing the sub-models' own curve accessors.
type histSource interface {
	objHist() *histogram.Dense
	byteHist() *histogram.Log
}

// Sharded fans a request stream out over W instances of one model, one
// per keyspace partition, and merges their histograms into a single
// curve (§5.5's parallel decomposition, generalized beyond KRR).
//
// Correctness rests on the CapSharded contract: a uniform hash
// partition of the keyspace is itself a spatial sample at rate 1/W, so
// each shard's distances are unbiased samples and the merged histogram
// is rescaled by W (times 1/R for any additional spatial sampling,
// applied once at the router so shards see an identical admitted
// stream regardless of W). The shard router hashes with a different
// mixer family than the sampling filter, keeping the two partitions
// independent.
//
// Unlike serial models, Sharded serializes its API internally: a
// monitoring goroutine may call Snapshot (or Stats) while another
// drives Process — snapshot reads quiesce the pipeline, merge the
// worker-owned histograms race-free, and resume the workers. Process
// itself remains single-producer (one streaming goroutine; the W-way
// parallelism lives behind the pipe).
type Sharded struct {
	finalizer
	// mu serializes Process, Snapshot and the finalizing accessors so a
	// monitor thread can snapshot a live stream. The streaming path pays
	// one uncontended lock per request, noise next to the shard hash and
	// batch append it guards.
	mu      sync.Mutex
	pipe    *shardpipe.Pipe
	subs    []Model
	sources []histSource
	filter  *sampling.Filter
	bytes   bool
	seen    telemetry.Counter
	sampled telemetry.Counter
	// scratch holds per-shard runs assembled by ProcessBatch, reused
	// across calls (guarded by mu like the rest of the routing state).
	scratch [][]trace.Request
}

// NewSharded builds workers instances of the named model — shard i
// seeded with shardpipe.ShardSeed(opts.Seed, i) — behind a batched
// fan-out pipeline. The model must declare CapSharded. Spatial
// sampling (opts.SamplingRate) is applied at the router; sub-models
// are built unsampled and serial.
func NewSharded(name string, workers int, opts Options) (*Sharded, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	if !info.Caps.Has(CapSharded) {
		return nil, fmt.Errorf("model: %s histograms are not shard-mergeable (no CapSharded)", info.Name)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	s := &Sharded{bytes: opts.Bytes != BytesOff}
	if opts.sampled() {
		s.filter = sampling.NewRate(opts.SamplingRate)
	}
	for i := 0; i < workers; i++ {
		sub := opts
		sub.Workers = 0
		sub.SamplingRate = 0
		sub.Seed = shardpipe.ShardSeed(opts.Seed, i)
		m, err := info.New(sub)
		if err != nil {
			return nil, err
		}
		src, ok := m.(histSource)
		if !ok || src.objHist() == nil {
			return nil, fmt.Errorf("model: %s declares CapSharded but exposes no mergeable histogram", info.Name)
		}
		s.subs = append(s.subs, m)
		s.sources = append(s.sources, src)
	}
	s.pipe = shardpipe.New(workers, func(shard int, req trace.Request) {
		// Errors are impossible here: sub-models are never finalized —
		// their histograms are read directly after the pipe drains.
		_ = s.subs[shard].Process(req)
	})
	return s, nil
}

// Workers returns the shard count.
func (s *Sharded) Workers() int { return s.pipe.Workers() }

// Process implements Model. It routes the request to its key's shard;
// the call returns once the request is enqueued, not processed.
func (s *Sharded) Process(req trace.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return err
	}
	s.seen.Inc()
	if s.filter != nil && !s.filter.Sampled(req.Key) {
		return nil
	}
	s.sampled.Inc()
	s.pipe.Send(s.pipe.ShardOf(req.Key), req)
	return nil
}

// ProcessBatch implements BatchProcessor: one lock acquisition and one
// pipe append per shard for the whole batch, instead of per request.
// Requests are partitioned into per-shard runs (arrival order preserved
// within each shard, which is all the SPSC pipe guarantees anyway), so
// the resulting model state is identical to per-request Process.
func (s *Sharded) ProcessBatch(reqs []trace.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.guard(); err != nil {
		return err
	}
	s.seen.Add(uint64(len(reqs)))
	if s.scratch == nil {
		s.scratch = make([][]trace.Request, len(s.subs))
	}
	var admitted uint64
	for _, req := range reqs {
		if s.filter != nil && !s.filter.Sampled(req.Key) {
			continue
		}
		admitted++
		shard := s.pipe.ShardOf(req.Key)
		s.scratch[shard] = append(s.scratch[shard], req)
	}
	s.sampled.Add(admitted)
	for i, run := range s.scratch {
		if len(run) > 0 {
			s.pipe.SendBatch(i, run)
			s.scratch[i] = run[:0]
		}
	}
	return nil
}

// drain finalizes: flush and join the pipe, freeze the model.
func (s *Sharded) drain() {
	if !s.finalized {
		s.pipe.Close()
	}
	s.finalize()
}

// scale is the distance rescale undoing both samplings: keyspace
// partition (×W) and spatial filter (×1/R).
func (s *Sharded) scale() float64 {
	scale := float64(len(s.subs))
	if s.filter != nil {
		scale /= s.filter.Rate()
	}
	return scale
}

// mergedObject merges the shard object histograms into one curve. The
// caller must guarantee the workers are not mutating them: hold mu and
// be finalized, or be inside a pipe.Quiesce callback.
func (s *Sharded) mergedObject() *mrc.Curve {
	merged := histogram.NewDense(1024)
	for _, src := range s.sources {
		merged.Merge(src.objHist())
	}
	return mrc.FromHistogram(merged, s.scale())
}

// mergedByte merges the shard byte histograms; same safety contract as
// mergedObject.
func (s *Sharded) mergedByte() *mrc.Curve {
	merged := histogram.NewLog()
	for _, src := range s.sources {
		if h := src.byteHist(); h != nil {
			merged.Merge(h)
		}
	}
	return mrc.FromHistogram(merged, s.scale())
}

// ObjectMRC implements Model: it drains the pipeline, merges the shard
// histograms and rescales distances by W/R.
func (s *Sharded) ObjectMRC() *mrc.Curve {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain()
	return s.mergedObject()
}

// ByteMRC implements Model; nil unless built with a byte mode.
func (s *Sharded) ByteMRC() *mrc.Curve {
	if !s.bytes {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain()
	return s.mergedByte()
}

// Snapshot implements Model: the merged curve of the stream so far,
// without closing the pipeline. Mid-stream it quiesces the pipe —
// partial batches flush, workers park at a barrier, the merge reads
// the worker-owned histograms race-free, and the workers resume; after
// finalization it reads the drained histograms directly. Either way
// the merge is the same computation ObjectMRC performs, so a snapshot
// at end-of-stream is bit-identical to the finalized curves.
func (s *Sharded) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Stats: Stats{Seen: s.seen.Load(), Sampled: s.sampled.Load(), Finalized: s.finalized},
	}
	merge := func() {
		snap.Object = s.mergedObject()
		if s.bytes {
			snap.Byte = s.mergedByte()
		}
	}
	if s.finalized {
		merge()
	} else {
		s.pipe.Quiesce(merge)
	}
	return snap
}

// Stats implements Model, reporting router-side counters.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Seen: s.seen.Load(), Sampled: s.sampled.Load(), Finalized: s.finalized}
}

// Footprint implements FootprintSource: the sum of the shard
// sub-models' footprints. Mid-stream it quiesces the pipe so the
// worker-owned structures are read race-free; after finalization it
// reads them directly.
func (s *Sharded) Footprint() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	sum := func() {
		for _, sub := range s.subs {
			total += FootprintOf(sub)
		}
	}
	if s.finalized {
		sum()
	} else {
		s.pipe.Quiesce(sum)
	}
	return total
}

// Close releases the pipeline's worker goroutines without reading any
// curve. Safe to call repeatedly; the model is finalized afterwards.
// Tenant eviction paths use it so a discarded sharded model does not
// leak its workers.
func (s *Sharded) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain()
	return nil
}

// MetricsInto implements MetricSource: router stream counters, the
// pipe's batch/queue metrics, and each shard sub-model's metrics under
// a shard<i>_ prefix. All registered values are atomics, safe to
// scrape while the pipeline streams.
func (s *Sharded) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"requests_seen_total", "requests offered to the router", s.seen.Load)
	set.CounterFunc(prefix+"requests_sampled_total", "requests admitted past spatial sampling", s.sampled.Load)
	s.pipe.MetricsInto(set, prefix+"pipe_")
	for i, sub := range s.subs {
		if ms, ok := sub.(MetricSource); ok {
			ms.MetricsInto(set, fmt.Sprintf("%sshard%d_", prefix, i))
		}
	}
}
