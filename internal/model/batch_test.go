package model

import (
	"testing"

	"krr/internal/trace"
)

// TestShardedProcessBatchEquivalence pins the batched ingest fast path
// to per-request Process: same options, same stream, arbitrary batch
// boundaries — bit-identical curves and identical stream counters.
func TestShardedProcessBatchEquivalence(t *testing.T) {
	tr := synthTrace(t, 40000, 4000, 7)
	reqs := tr.Reqs
	opts := Options{K: 5, Seed: 11, SamplingRate: 0.3, Workers: 4, Bytes: BytesOn}

	serial, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if err := serial.Process(req); err != nil {
			t.Fatal(err)
		}
	}

	batched, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := batched.(BatchProcessor)
	if !ok {
		t.Fatal("sharded model does not implement BatchProcessor")
	}
	// Ragged batch boundaries, including empty and oversized chunks.
	sizes := []int{1, 0, 7, 4096, 63, 997, 2}
	for i := 0; len(reqs) > 0; i++ {
		n := sizes[i%len(sizes)]
		if n > len(reqs) {
			n = len(reqs)
		}
		if err := bp.ProcessBatch(reqs[:n]); err != nil {
			t.Fatal(err)
		}
		reqs = reqs[n:]
	}

	ss, bs := serial.Stats(), batched.Stats()
	if ss.Seen != bs.Seen || ss.Sampled != bs.Sampled {
		t.Fatalf("stats diverge: serial %+v batched %+v", ss, bs)
	}
	if !sameCurve(serial.ObjectMRC(), batched.ObjectMRC()) {
		t.Fatal("object curves diverge between Process and ProcessBatch")
	}
	if !sameCurve(serial.ByteMRC(), batched.ByteMRC()) {
		t.Fatal("byte curves diverge between Process and ProcessBatch")
	}
}

// TestProcessBatchFallback pins the helper's per-request fallback for
// serial models (which do not implement BatchProcessor).
func TestProcessBatchFallback(t *testing.T) {
	tr := synthTrace(t, 5000, 500, 3)
	reqs := tr.Reqs
	opts := Options{K: 5, Seed: 9}

	serial, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if err := serial.Process(req); err != nil {
			t.Fatal(err)
		}
	}
	viaHelper, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := viaHelper.(BatchProcessor); ok {
		t.Fatal("serial krr unexpectedly implements BatchProcessor; fallback untested")
	}
	for off := 0; off < len(reqs); off += 321 {
		end := off + 321
		if end > len(reqs) {
			end = len(reqs)
		}
		if err := ProcessBatch(viaHelper, reqs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if !sameCurve(serial.ObjectMRC(), viaHelper.ObjectMRC()) {
		t.Fatal("ProcessBatch fallback diverges from Process")
	}
}

// TestShardedProcessBatchAfterFinalize pins the guard.
func TestShardedProcessBatchAfterFinalize(t *testing.T) {
	m, err := New("krr", Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	bp := m.(BatchProcessor)
	if err := bp.ProcessBatch([]trace.Request{{Key: 1, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	m.ObjectMRC()
	if err := bp.ProcessBatch([]trace.Request{{Key: 2, Size: 1}}); err != ErrFinalized {
		t.Fatalf("ProcessBatch after finalize = %v, want ErrFinalized", err)
	}
}
