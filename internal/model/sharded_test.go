package model

import (
	"testing"

	"krr/internal/core"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

// TestShardedMatchesCoreShardedProfiler pins the generic wrapper to
// the KRR-specific pipeline it generalizes: same seeds, same router,
// same merge — bit-identical curves.
func TestShardedMatchesCoreShardedProfiler(t *testing.T) {
	tr := synthTrace(t, 30000, 3000, 21)
	opts := Options{K: 5, Seed: 42, SamplingRate: 0.2, Workers: 4}

	m, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, tr)

	sp, err := core.NewShardedProfiler(core.Config{
		K:            opts.K,
		Seed:         opts.Seed,
		SamplingRate: opts.SamplingRate,
		Workers:      opts.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}

	got, want := m.ObjectMRC(), sp.ObjectMRC()
	if !sameCurve(got, want) {
		t.Fatalf("model.Sharded(krr) diverges from core.ShardedProfiler:\n got %d points\nwant %d points",
			len(got.Sizes), len(want.Sizes))
	}
}

// TestShardedVsSerial is the acceptance bound: on two preset-style
// workloads, the sharded curve stays within MAE 0.01 of the serial
// model's. Sharding is spatial sampling at rate 1/W with full
// coverage, so the two are estimates of the same curve.
func TestShardedVsSerial(t *testing.T) {
	workloads := []struct {
		name string
		gen  trace.Reader
		n    int
		wss  uint64
	}{
		{"zipf", workload.NewZipf(31, 20000, 0.9, workload.FixedSize(trace.DefaultObjectSize), 0.1), 150000, 20000},
		{"uniform", workload.NewUniform(77, 8000, workload.FixedSize(trace.DefaultObjectSize)), 120000, 8000},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			tr, err := trace.Collect(w.gen, w.n)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"krr", "krr-bucket", "olken", "mimir"} {
				serial := buildCurve(t, name, Options{Seed: 9}, tr)
				sharded := buildCurve(t, name, Options{Seed: 9, Workers: 4}, tr)
				at := mrc.EvenSizes(w.wss, 64)
				if mae := mrc.MAE(serial, sharded, at); mae > 0.01 {
					t.Errorf("%s: MAE(serial, 4-way sharded) = %.4f > 0.01", name, mae)
				}
			}
		})
	}
}

// TestShardedLifecycle covers the wrapper's own Model contract:
// curve-read freezing, stats, byte curves, and worker clamping.
func TestShardedLifecycle(t *testing.T) {
	tr := synthTrace(t, 10000, 1000, 13)
	s, err := NewSharded("krr", 3, Options{Seed: 5, Bytes: BytesOn})
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", s.Workers())
	}
	feed(t, s, tr)
	obj := s.ObjectMRC()
	checkCurveShape(t, obj, "sharded/obj")
	bc := s.ByteMRC()
	if bc == nil {
		t.Fatal("nil byte curve with BytesOn")
	}
	checkCurveShape(t, bc, "sharded/bytes")
	if err := s.Process(trace.Request{Key: 1}); err != ErrFinalized {
		t.Fatalf("Process after curve read: %v, want ErrFinalized", err)
	}
	st := s.Stats()
	if st.Seen != uint64(tr.Len()) || st.Sampled != st.Seen || !st.Finalized {
		t.Fatalf("stats = %+v", st)
	}

	// Workers < 1 clamps to a single shard.
	s1, err := NewSharded("olken", 0, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", s1.Workers())
	}
	feed(t, s1, tr)
	checkCurveShape(t, s1.ObjectMRC(), "sharded/1way")
}

// TestShardedRejectsUnmergeable: CapSharded is the gate.
func TestShardedRejectsUnmergeable(t *testing.T) {
	for _, name := range []string{"aet", "counterstacks", "shards", "lfu"} {
		if _, err := NewSharded(name, 4, Options{}); err == nil {
			t.Errorf("NewSharded(%s) accepted a model without CapSharded", name)
		}
	}
	if _, err := NewSharded("nope", 4, Options{}); err == nil {
		t.Error("NewSharded accepted an unknown model")
	}
}
