package model

import (
	"fmt"
	"sort"
)

// Info is one registry entry: identity, provenance, cost summary,
// capability flags, and the factory.
type Info struct {
	// Name is the canonical registry key (also the CLI -model value).
	Name string
	// Aliases resolve to this entry in Lookup/New ("lru" → "olken").
	Aliases []string
	// Target is the replacement policy whose MRC the model
	// constructs: "klru", "lru", "lfu" or "mru". Experiment runners
	// group models by target instead of switching on names.
	Target string
	// Paper cites the technique's source.
	Paper string
	// Complexity summarizes the per-reference cost (M = tracked
	// objects, K = sampling size).
	Complexity string
	// Space summarizes the resident state.
	Space string
	// Caps flags supported features; the conformance suite enforces
	// them.
	Caps Caps
	// New builds a serial instance. Factories must honor every
	// Options field covered by the entry's Caps and return an error —
	// never panic — on unsupported combinations.
	New func(Options) (Model, error)
}

var registry = map[string]Info{}

// aliasIndex maps alias → canonical name.
var aliasIndex = map[string]string{}

// Register adds an entry; duplicate names or aliases are programming
// errors.
func Register(info Info) {
	if info.Name == "" || info.New == nil {
		panic("model: Register with empty name or nil factory")
	}
	if _, dup := registry[info.Name]; dup {
		panic("model: duplicate registration of " + info.Name)
	}
	if _, dup := aliasIndex[info.Name]; dup {
		panic("model: name " + info.Name + " already registered as an alias")
	}
	for _, a := range info.Aliases {
		if _, dup := registry[a]; dup {
			panic("model: alias " + a + " already registered as a name")
		}
		if _, dup := aliasIndex[a]; dup {
			panic("model: duplicate alias " + a)
		}
		aliasIndex[a] = info.Name
	}
	registry[info.Name] = info
}

// Lookup resolves a name or alias.
func Lookup(name string) (Info, bool) {
	if canon, ok := aliasIndex[name]; ok {
		name = canon
	}
	info, ok := registry[name]
	return info, ok
}

// Names lists canonical registered names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered entry sorted by name.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// ByTarget returns the registered entries modeling one replacement
// policy, sorted by name.
func ByTarget(target string) []Info {
	var out []Info
	for _, info := range All() {
		if info.Target == target {
			out = append(out, info)
		}
	}
	return out
}

// New validates opts against the named model's capabilities and
// builds it. Options.Workers > 1 returns the model wrapped in the
// sharded fan-out pipeline.
func New(name string, opts Options) (Model, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Bytes != BytesOff && !info.Caps.Has(CapBytes) {
		return nil, fmt.Errorf("model: %s does not support byte-granularity curves", info.Name)
	}
	if opts.Workers > 1 {
		return NewSharded(name, opts.Workers, opts)
	}
	return info.New(opts)
}
