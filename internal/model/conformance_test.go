package model

import (
	"errors"
	"fmt"
	"testing"

	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

// synthTrace materializes a reproducible Zipf trace so every model in
// a test sees the identical request sequence.
func synthTrace(t *testing.T, n int, keys, seed uint64) *trace.Trace {
	t.Helper()
	gen := workload.NewZipf(seed, keys, 0.9, workload.FixedSize(trace.DefaultObjectSize), 0.1)
	tr, err := trace.Collect(gen, n)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return tr
}

func feed(t *testing.T, m Model, tr *trace.Trace) {
	t.Helper()
	if err := ProcessAll(m, tr.Reader()); err != nil {
		t.Fatalf("ProcessAll: %v", err)
	}
}

// buildCurve constructs the named model, replays tr, and returns the
// object curve.
func buildCurve(t *testing.T, name string, opts Options, tr *trace.Trace) *mrc.Curve {
	t.Helper()
	m, err := New(name, opts)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	feed(t, m, tr)
	return m.ObjectMRC()
}

func checkCurveShape(t *testing.T, c *mrc.Curve, label string) {
	t.Helper()
	if c == nil || len(c.Sizes) == 0 {
		t.Fatalf("%s: empty curve", label)
	}
	if len(c.Sizes) != len(c.Miss) {
		t.Fatalf("%s: %d sizes vs %d miss values", label, len(c.Sizes), len(c.Miss))
	}
	for i := range c.Sizes {
		if i > 0 && c.Sizes[i] <= c.Sizes[i-1] {
			t.Fatalf("%s: sizes not strictly increasing at %d: %d after %d",
				label, i, c.Sizes[i], c.Sizes[i-1])
		}
		if c.Miss[i] < 0 || c.Miss[i] > 1 {
			t.Fatalf("%s: miss[%d] = %v out of [0, 1]", label, i, c.Miss[i])
		}
		// Tolerate float summation jitter but no real increase.
		if i > 0 && c.Miss[i] > c.Miss[i-1]+1e-9 {
			t.Fatalf("%s: miss ratio increases at %d: %v after %v",
				label, i, c.Miss[i], c.Miss[i-1])
		}
	}
}

func sameCurve(a, b *mrc.Curve) bool {
	if len(a.Sizes) != len(b.Sizes) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] || a.Miss[i] != b.Miss[i] {
			return false
		}
	}
	return true
}

// TestConformance holds every registry entry to the Model contract:
// sane monotone curves, bit-identical reruns under one seed, frozen
// state after the first curve read, and honest Stats counters.
func TestConformance(t *testing.T) {
	tr := synthTrace(t, 20000, 2000, 11)
	for _, info := range All() {
		info := info
		for _, opts := range []Options{
			{Seed: 7},
			{Seed: 7, SamplingRate: 0.1},
		} {
			opts := opts
			name := fmt.Sprintf("%s/rate=%v", info.Name, opts.SamplingRate)
			t.Run(name, func(t *testing.T) {
				c1 := buildCurve(t, info.Name, opts, tr)
				checkCurveShape(t, c1, info.Name)
				c2 := buildCurve(t, info.Name, opts, tr)
				if !sameCurve(c1, c2) {
					t.Fatalf("%s: same seed, different curves", info.Name)
				}
			})
		}
	}
}

// TestConformanceFinalized checks the lifecycle contract: the first
// curve accessor freezes the model and later Process calls fail with
// ErrFinalized.
func TestConformanceFinalized(t *testing.T) {
	tr := synthTrace(t, 2000, 200, 3)
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			// Rate 1 = explicitly unsampled, even for the shards* models
			// whose zero value means "the technique's default rate".
			m, err := New(info.Name, Options{Seed: 7, SamplingRate: 1})
			if err != nil {
				t.Fatal(err)
			}
			feed(t, m, tr)
			st := m.Stats()
			if st.Seen != uint64(tr.Len()) {
				t.Fatalf("Seen = %d, want %d", st.Seen, tr.Len())
			}
			if st.Sampled != st.Seen {
				t.Fatalf("unsampled model: Sampled = %d != Seen = %d", st.Sampled, st.Seen)
			}
			if st.Finalized {
				t.Fatal("finalized before any curve read")
			}
			if m.ObjectMRC() == nil {
				t.Fatal("nil object curve")
			}
			if !m.Stats().Finalized {
				t.Fatal("not finalized after curve read")
			}
			if err := m.Process(trace.Request{Key: 1}); !errors.Is(err, ErrFinalized) {
				t.Fatalf("Process after curve read: got %v, want ErrFinalized", err)
			}
		})
	}
}

// TestConformanceSampledCounter checks Stats.Sampled tracks the
// spatial filter for every model, including those that filter
// internally.
func TestConformanceSampledCounter(t *testing.T) {
	tr := synthTrace(t, 20000, 2000, 5)
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m, err := New(info.Name, Options{Seed: 7, SamplingRate: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			feed(t, m, tr)
			st := m.Stats()
			if st.Seen != uint64(tr.Len()) {
				t.Fatalf("Seen = %d, want %d", st.Seen, tr.Len())
			}
			if st.Sampled == 0 || st.Sampled >= st.Seen {
				t.Fatalf("Sampled = %d with rate 0.1 over %d requests", st.Sampled, st.Seen)
			}
		})
	}
}

// TestConformanceBytes checks ByteMRC against CapBytes: nil without a
// byte mode (or without the capability), a monotone curve with one.
func TestConformanceBytes(t *testing.T) {
	tr := synthTrace(t, 5000, 500, 9)
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m, err := New(info.Name, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			feed(t, m, tr)
			if c := m.ByteMRC(); c != nil {
				t.Fatalf("ByteMRC non-nil with BytesOff")
			}

			if !info.Caps.Has(CapBytes) {
				if _, err := New(info.Name, Options{Seed: 7, Bytes: BytesOn}); err == nil {
					t.Fatal("byte mode accepted without CapBytes")
				}
				return
			}
			mb, err := New(info.Name, Options{Seed: 7, Bytes: BytesOn})
			if err != nil {
				t.Fatal(err)
			}
			feed(t, mb, tr)
			c := mb.ByteMRC()
			if c == nil {
				t.Fatal("ByteMRC nil with BytesOn and CapBytes")
			}
			checkCurveShape(t, c, info.Name+"/bytes")
		})
	}
}

// deleteTraces builds a round of gets over ten keys, deletes of all
// ten, and a second round of gets — plus the same trace with the
// deletes stripped.
func deleteTraces() (withDel, without *trace.Trace) {
	withDel, without = &trace.Trace{}, &trace.Trace{}
	add := func(req trace.Request) {
		withDel.Append(req)
		if req.Op != trace.OpDelete {
			without.Append(req)
		}
	}
	for k := uint64(1); k <= 10; k++ {
		add(trace.Request{Key: k, Size: trace.DefaultObjectSize})
	}
	for k := uint64(1); k <= 10; k++ {
		add(trace.Request{Key: k, Op: trace.OpDelete})
	}
	for k := uint64(1); k <= 10; k++ {
		add(trace.Request{Key: k, Size: trace.DefaultObjectSize})
	}
	return withDel, without
}

// TestConformanceDeletes holds each entry to its CapDeletes flag:
// models without it must produce identical curves whether or not
// deletes appear; models with it must see the deleted keys' second
// round as cold misses (strictly higher miss ratio at large sizes).
// Sampling is disabled (rate 1) so a 30-request trace is fully
// observed.
func TestConformanceDeletes(t *testing.T) {
	withDel, without := deleteTraces()
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			opts := Options{Seed: 7, SamplingRate: 1}
			cDel := buildCurve(t, info.Name, opts, withDel)
			cNo := buildCurve(t, info.Name, opts, without)
			const at = 1 << 30 // past every working-set size: steady-state miss ratio
			if info.Caps.Has(CapDeletes) {
				if cDel.Eval(at) <= cNo.Eval(at) {
					t.Fatalf("CapDeletes model ignored deletes: miss %v (with) vs %v (without)",
						cDel.Eval(at), cNo.Eval(at))
				}
			} else if !sameCurve(cDel, cNo) {
				t.Fatalf("model without CapDeletes changed its curve on deletes")
			}
		})
	}
}

// TestRegistryLookup covers alias resolution and the registry's
// validation surface.
func TestRegistryLookup(t *testing.T) {
	if info, ok := Lookup("lru"); !ok || info.Name != "olken" {
		t.Fatalf(`Lookup("lru") = %+v, %v; want olken`, info, ok)
	}
	if info, ok := Lookup("krr-backward"); !ok || info.Name != "krr" {
		t.Fatalf(`Lookup("krr-backward") = %+v, %v; want krr`, info, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if _, err := New("nope", Options{}); err == nil {
		t.Fatal("New of unknown name succeeded")
	}
	if _, err := New("krr", Options{SamplingRate: 2}); err == nil {
		t.Fatal("out-of-range sampling rate accepted")
	}
	if _, err := New("aet", Options{Workers: 4}); err == nil {
		t.Fatal("Workers > 1 accepted without CapSharded")
	}
	if _, err := New("krr-bucket", Options{BucketRatio: 0.5}); err == nil {
		t.Fatal("bucket ratio below 1 accepted")
	}
	if _, err := New("krr-bucket", Options{BucketRatio: 8}); err == nil {
		t.Fatal("bucket ratio above the maximum accepted")
	}
	if _, err := New("krr-bucket", Options{BucketRatio: 1.25}); err != nil {
		t.Fatalf("in-range bucket ratio rejected: %v", err)
	}
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names/All disagree: %d vs %d", len(names), len(All()))
	}
	for _, target := range []string{"klru", "lru", "lfu", "mru"} {
		if len(ByTarget(target)) == 0 {
			t.Fatalf("no models for target %q", target)
		}
	}
}
