// Package model is the unified streaming layer over every miss-ratio
// curve technique in this repository. Byrne's survey ("A Survey of
// Miss-Ratio Curve Construction Techniques") frames KRR, Olken stacks,
// SHARDS, AET, Counter Stacks and MIMIR as one abstraction — a
// one-pass consumer of a request stream that emits an MRC — and this
// package makes that abstraction concrete: a Model interface, a
// validated Options struct shared by every technique, and a
// name→factory registry with capability flags so CLIs, experiments and
// benchmarks enumerate models instead of hard-wiring them.
//
// # Lifecycle
//
// A Model is built by New (or a registry factory), fed requests with
// Process (or the ProcessAll helper), and finalized by the first call
// to ObjectMRC or ByteMRC. Finalization flushes any buffered state
// (partial Counter Stacks batches, in-flight sharded pipelines);
// afterwards Process returns ErrFinalized.
//
// For online monitoring — the shadow-profiler deployment the source
// paper motivates — Snapshot reads the curve of the stream so far
// WITHOUT finalizing: buffered state is evaluated on copies (or
// behind a momentary pipeline quiesce for sharded models), the live
// state is untouched, and Process stays legal afterwards. A snapshot
// taken at end-of-stream is bit-identical to the finalized curve; the
// conformance suite pins this for every registry entry.
//
// # Seeding convention
//
// All model randomness derives from Options.Seed, threaded by each
// adapter into constructors that take positional seeds (olken.New,
// nsp.New) exactly once. Models with no internal randomness — AET,
// Counter Stacks, MIMIR, and the deterministic hash-based spatial
// sampling filter — ignore the seed and are bit-reproducible by
// construction. Sharded wrappers derive shard i's seed as
// shardpipe.ShardSeed(Seed, i), so a model and its sharded form stay
// deterministic in the one configured seed. Two models built from the
// same (name, Options) over the same stream always produce identical
// curves; the registry conformance suite enforces this for every
// entry.
package model

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"krr/internal/cheform"
	"krr/internal/core"
	"krr/internal/mrc"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// ErrFinalized is returned by Process once a curve accessor has been
// called: the model's histograms are frozen.
var ErrFinalized = errors.New("model: Process after curve read")

// DefaultK is the K-LRU sampling size assumed when Options.K is zero —
// Redis's default maxmemory-samples.
const DefaultK = 5

// ByteMode selects byte-granularity distance handling for models with
// CapBytes.
type ByteMode uint8

// Byte modes. Modes beyond BytesOn are KRR-specific tracker choices;
// other byte-capable models treat every non-off mode as BytesOn.
const (
	// BytesOff records object-granularity distances only; ByteMRC
	// returns nil.
	BytesOff ByteMode = iota
	// BytesOn enables the model's native byte tracking (exact for tree
	// stacks, the paper's sizeArray for KRR).
	BytesOn
	// BytesUniform estimates byte distances as φ × mean object size —
	// the uniform-size assumption ("uni-KRR", §5.4).
	BytesUniform
	// BytesSizeArray forces the paper's logarithmic sizeArray
	// (Algorithm 3, "var-KRR").
	BytesSizeArray
	// BytesFenwick forces the exact Fenwick-tree byte tracker.
	BytesFenwick
)

// String names the mode.
func (m ByteMode) String() string {
	switch m {
	case BytesOff:
		return "off"
	case BytesOn:
		return "on"
	case BytesUniform:
		return "uniform"
	case BytesSizeArray:
		return "sizearray"
	case BytesFenwick:
		return "fenwick"
	default:
		return "bytemode?"
	}
}

// ByteModeByName parses a byte mode mnemonic.
func ByteModeByName(name string) (ByteMode, bool) {
	switch name {
	case "off", "":
		return BytesOff, true
	case "on":
		return BytesOn, true
	case "uniform":
		return BytesUniform, true
	case "sizearray":
		return BytesSizeArray, true
	case "fenwick":
		return BytesFenwick, true
	}
	return BytesOff, false
}

// Caps flags what a model supports. The registry conformance suite
// holds every entry to its declared flags.
type Caps uint8

const (
	// CapBytes: the model can emit byte-granularity curves (ByteMRC
	// non-nil when built with a byte mode).
	CapBytes Caps = 1 << iota
	// CapDeletes: OpDelete removes the object from the modeled stack
	// (its next reference is a cold miss). Models without this flag
	// ignore deletes entirely.
	CapDeletes
	// CapSharded: distances measured on a uniform hash partition of
	// the keyspace are unbiased 1/W-scaled samples and the model's
	// histograms merge exactly, so the Sharded wrapper applies.
	CapSharded
)

// Has reports whether all flags in want are set.
func (c Caps) Has(want Caps) bool { return c&want == want }

// String renders set flags as a comma list.
func (c Caps) String() string {
	var parts []string
	if c.Has(CapBytes) {
		parts = append(parts, "bytes")
	}
	if c.Has(CapDeletes) {
		parts = append(parts, "deletes")
	}
	if c.Has(CapSharded) {
		parts = append(parts, "sharded")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// Options configures any registered model. The zero value is valid
// and means: K = DefaultK, seed 0, no spatial sampling, object
// granularity only, serial.
type Options struct {
	// K is the K-LRU sampling size, used by the K-LRU models (krr*)
	// and ignored by exact-LRU techniques. 0 means DefaultK.
	K int
	// Seed fixes all model randomness (see the package seeding
	// convention).
	Seed uint64
	// SamplingRate applies SHARDS-style spatial sampling when in
	// (0, 1); 0 or 1 disables it. For the shards* models — which are
	// sampling techniques — it sets the (starting) sample rate
	// instead, with the technique's own default when 0.
	SamplingRate float64
	// Bytes selects byte-granularity distance handling; non-off
	// requires CapBytes.
	Bytes ByteMode
	// Workers > 1 wraps the model in the sharded fan-out pipeline
	// (requires CapSharded); 0 or 1 builds it serial.
	Workers int
	// BucketRatio sets the krr-bucket model's geometric bucket growth
	// ratio, in [1, core.MaxBucketRatio]; 0 means the technique's
	// default (core.DefaultBucketRatio). Other models ignore it.
	BucketRatio float64
	// AnalyticAlpha is the fallback Zipf exponent the closed-form
	// analytic models (che, fagin) use when the online rank-frequency
	// fit is degenerate (analysis.ZipfFit's 0 sentinel), in
	// (0, cheform.MaxAlpha]; 0 means the technique's default
	// (cheform.DefaultAlpha). Other models ignore it.
	AnalyticAlpha float64
}

// k returns the effective sampling size.
func (o Options) k() int {
	if o.K <= 0 {
		return DefaultK
	}
	return o.K
}

// sampled reports whether spatial sampling is active.
func (o Options) sampled() bool { return o.SamplingRate > 0 && o.SamplingRate < 1 }

// Validate checks field ranges (capability cross-checks happen in
// New, where the target model is known).
func (o Options) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("model: options K = %d, must be >= 0", o.K)
	}
	if o.SamplingRate < 0 || o.SamplingRate > 1 {
		return fmt.Errorf("model: sampling rate %v out of [0, 1]", o.SamplingRate)
	}
	if o.Bytes > BytesFenwick {
		return fmt.Errorf("model: unknown byte mode %d", o.Bytes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("model: options Workers = %d, must be >= 0", o.Workers)
	}
	if o.BucketRatio != 0 && (o.BucketRatio < 1 || o.BucketRatio > core.MaxBucketRatio) {
		return fmt.Errorf("model: bucket ratio %v out of [1, %v]", o.BucketRatio, core.MaxBucketRatio)
	}
	if o.AnalyticAlpha != 0 && (o.AnalyticAlpha < 0 || o.AnalyticAlpha > cheform.MaxAlpha) {
		return fmt.Errorf("model: analytic alpha %v out of (0, %v]", o.AnalyticAlpha, cheform.MaxAlpha)
	}
	return nil
}

// Stats reports a model's stream counters.
type Stats struct {
	// Seen is the number of requests offered via Process.
	Seen uint64
	// Sampled is the number admitted past spatial sampling (== Seen
	// when sampling is off).
	Sampled uint64
	// Finalized reports whether a curve accessor has frozen the model.
	Finalized bool
}

// Snapshot is a point-in-time curve read: the curves the model would
// emit if the stream ended at the moment it was taken, plus the stream
// counters at that moment.
type Snapshot struct {
	// Object is the curve over object-count cache sizes.
	Object *mrc.Curve
	// Byte is the curve over byte cache sizes; nil without a byte mode.
	Byte *mrc.Curve
	// Stats are the stream counters when the snapshot was taken.
	Stats Stats
}

// Model is a streaming MRC constructor: feed it a request stream,
// then read the curve.
//
// Serial models are not safe for concurrent use; shard the stream
// (see Sharded, whose Snapshot and Process are internally serialized)
// or serialize calls externally.
type Model interface {
	// Process feeds one request. It returns ErrFinalized after a curve
	// accessor has been called.
	Process(req trace.Request) error
	// ObjectMRC finalizes the model and returns the miss ratio curve
	// over object-count cache sizes.
	ObjectMRC() *mrc.Curve
	// ByteMRC finalizes the model and returns the curve over byte
	// cache sizes, or nil when the model was not built with a byte
	// mode (or lacks CapBytes).
	ByteMRC() *mrc.Curve
	// Snapshot returns the curves of the stream so far without
	// finalizing: Process stays legal afterwards, and a snapshot taken
	// at end-of-stream is bit-identical to the finalized curves.
	Snapshot() Snapshot
	// Stats reports stream counters.
	Stats() Stats
}

// MetricSource is implemented by models that expose live internal
// telemetry. Every registry-built model and the Sharded wrapper
// implement it; a monitoring daemon registers the model's counters
// into its exposition set once at startup and scrapes are then
// atomic reads, safe while Process streams on another goroutine.
type MetricSource interface {
	// MetricsInto registers the model's metrics under prefix.
	MetricsInto(set *telemetry.Set, prefix string)
}

// FootprintSource is implemented by models that can report their
// resident metadata size — the §5.6 memory-overhead accounting
// extended to every technique. Footprint must be called under the
// same serialization as Process (it reads live map and slice
// headers); concurrent consumers cache the result in an atomic
// between calls rather than registering it as a live gauge.
type FootprintSource interface {
	// Footprint returns the model's estimated resident metadata in
	// bytes.
	Footprint() int64
}

// FootprintOf returns m's footprint when it implements
// FootprintSource, else 0.
func FootprintOf(m Model) int64 {
	if fs, ok := m.(FootprintSource); ok {
		return fs.Footprint()
	}
	return 0
}

// BatchProcessor is implemented by models with a batched ingest fast
// path: one ProcessBatch call is equivalent to calling Process on each
// request in order, but amortizes per-call overhead (locking, shard
// routing) over the whole batch. The wire ingest plane feeds frames
// through this interface.
type BatchProcessor interface {
	ProcessBatch(reqs []trace.Request) error
}

// ProcessBatch feeds a whole batch to m through its BatchProcessor
// fast path when it has one, falling back to per-request Process. The
// two paths produce identical model state.
func ProcessBatch(m Model, reqs []trace.Request) error {
	if bp, ok := m.(BatchProcessor); ok {
		return bp.ProcessBatch(reqs)
	}
	for _, req := range reqs {
		if err := m.Process(req); err != nil {
			return err
		}
	}
	return nil
}

// ProcessAll drains a reader into m, using the trace.BatchReader fast
// path when available. It stops at the first Process error.
func ProcessAll(m Model, r trace.Reader) error {
	var buf [64]trace.Request
	for {
		n, err := trace.ReadBatch(r, buf[:])
		for _, req := range buf[:n] {
			if perr := m.Process(req); perr != nil {
				return perr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// finalizer is the shared Process-after-read guard embedded by every
// adapter.
type finalizer struct {
	finalized bool
}

func (f *finalizer) finalize() { f.finalized = true }

// guard returns ErrFinalized once the model is frozen.
func (f *finalizer) guard() error {
	if f.finalized {
		return ErrFinalized
	}
	return nil
}
