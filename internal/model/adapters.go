package model

import (
	"krr/internal/aet"
	"krr/internal/cheform"
	"krr/internal/core"
	"krr/internal/counterstacks"
	"krr/internal/hashing"
	"krr/internal/histogram"
	"krr/internal/mimir"
	"krr/internal/mrc"
	"krr/internal/nsp"
	"krr/internal/olken"
	"krr/internal/sampling"
	"krr/internal/shards"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// streamModel is the one adapter shape every registered model is
// expressed in: a spatial filter (external, applied here, or internal
// to the technique and mirrored only for the Sampled counter), a
// per-request process function, an optional finalization flush, and
// curve constructors. CapSharded models additionally expose their raw
// histograms for the Sharded wrapper's merge.
type streamModel struct {
	finalizer
	// filter, when non-nil, drops unsampled requests before process —
	// used by models with no sampling of their own; their curves are
	// rescaled by 1/rate.
	filter *sampling.Filter
	// admit, when non-nil, mirrors an internal filter's admission
	// decision purely for the Sampled counter (aet, shards).
	admit     func(key uint64) bool
	process   func(trace.Request)
	flush     func() // optional; runs once at finalization
	objCurve  func() *mrc.Curve
	byteCurve func() *mrc.Curve // nil = byte curves off or unsupported
	// snapObj overrides the object curve for non-finalizing snapshots.
	// Required for models whose flush commits buffered state (Counter
	// Stacks); every other technique's objCurve is already
	// non-destructive and doubles as the snapshot read.
	snapObj func() *mrc.Curve
	// metrics, when non-nil, registers the technique's internal live
	// telemetry (stack gauges, update counters) alongside the adapter's
	// stream counters in MetricsInto.
	metrics func(*telemetry.Set, string)
	// footprint reports the technique's resident metadata bytes; must
	// be called under the same serialization as process.
	footprint func() uint64

	// Mergeable histograms for CapSharded models; nil otherwise.
	objDense *histogram.Dense
	byteLog  *histogram.Log

	// Stream counters are atomics so MetricsInto consumers (a /metrics
	// scrape) may read them while another goroutine drives Process.
	seen    telemetry.Counter
	sampled telemetry.Counter
}

// Process implements Model.
func (m *streamModel) Process(req trace.Request) error {
	if err := m.guard(); err != nil {
		return err
	}
	m.seen.Inc()
	if m.filter != nil {
		if !m.filter.Sampled(req.Key) {
			return nil
		}
		m.sampled.Inc()
	} else if m.admit == nil || m.admit(req.Key) {
		m.sampled.Inc()
	}
	m.process(req)
	return nil
}

// finalizeOnce flushes buffered state on the first curve read.
func (m *streamModel) finalizeOnce() {
	if !m.finalized && m.flush != nil {
		m.flush()
	}
	m.finalize()
}

// ObjectMRC implements Model.
func (m *streamModel) ObjectMRC() *mrc.Curve {
	m.finalizeOnce()
	return m.objCurve()
}

// ByteMRC implements Model.
func (m *streamModel) ByteMRC() *mrc.Curve {
	if m.byteCurve == nil {
		return nil
	}
	m.finalizeOnce()
	return m.byteCurve()
}

// Snapshot implements Model: the curve of the stream so far, read
// without flushing or freezing. Buffered state (a partial Counter
// Stacks batch) is evaluated through snapObj on copies; every other
// curve constructor is non-destructive, so the finalized read path and
// the snapshot path run the identical computation — which is what
// makes an end-of-stream snapshot bit-identical to the final curves.
func (m *streamModel) Snapshot() Snapshot {
	snap := Snapshot{Stats: m.Stats()}
	if m.snapObj != nil && !m.finalized {
		snap.Object = m.snapObj()
	} else {
		snap.Object = m.objCurve()
	}
	if m.byteCurve != nil {
		snap.Byte = m.byteCurve()
	}
	return snap
}

// Stats implements Model.
func (m *streamModel) Stats() Stats {
	return Stats{Seen: m.seen.Load(), Sampled: m.sampled.Load(), Finalized: m.finalized}
}

// MetricsInto implements MetricSource: the adapter's stream counters
// plus any technique-internal metrics under the same prefix.
func (m *streamModel) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"requests_seen_total", "requests offered via Process", m.seen.Load)
	set.CounterFunc(prefix+"requests_sampled_total", "requests admitted past sampling", m.sampled.Load)
	if m.metrics != nil {
		m.metrics(set, prefix)
	}
}

// Footprint implements FootprintSource. Like Process it is not safe
// for concurrent use; callers serialize it against the stream.
func (m *streamModel) Footprint() int64 {
	if m.footprint == nil {
		return 0
	}
	return int64(m.footprint())
}

func (m *streamModel) objHist() *histogram.Dense { return m.objDense }
func (m *streamModel) byteHist() *histogram.Log  { return m.byteLog }

// extFilter builds the adapter-side spatial filter and the distance
// rescale that undoes it (1/R), for models that do not sample
// internally.
func extFilter(o Options) (*sampling.Filter, float64) {
	if !o.sampled() {
		return nil, 1
	}
	f := sampling.NewRate(o.SamplingRate)
	return f, 1 / f.Rate()
}

// --- KRR (core) -------------------------------------------------------

// coreByteMode maps the unified byte mode onto KRR's tracker choices;
// BytesOn means the paper's var-KRR sizeArray.
func coreByteMode(m ByteMode) core.ByteMode {
	switch m {
	case BytesUniform:
		return core.BytesUniform
	case BytesFenwick:
		return core.BytesFenwick
	case BytesOn, BytesSizeArray:
		return core.BytesSizeArray
	default:
		return core.BytesOff
	}
}

func newKRR(method core.UpdateMethod) func(Options) (Model, error) {
	return func(o Options) (Model, error) {
		filter, scale := extFilter(o)
		p, err := core.NewProfiler(core.Config{
			K:      o.k(),
			Seed:   o.Seed,
			Method: method,
			Bytes:  coreByteMode(o.Bytes),
		})
		if err != nil {
			return nil, err
		}
		m := &streamModel{
			filter:   filter,
			process:  p.Process,
			objCurve: func() *mrc.Curve { return mrc.FromHistogram(p.ObjHist(), scale) },
			objDense: p.ObjHist(),
			metrics:  p.Stack().MetricsInto,
		}
		m.footprint = func() uint64 {
			fp := p.Stack().MemoryOverheadBytes() + p.ObjHist().MemBytes()
			if m.byteLog != nil {
				fp += m.byteLog.MemBytes()
			}
			return fp
		}
		if o.Bytes != BytesOff {
			m.byteCurve = func() *mrc.Curve { return mrc.FromHistogram(p.ByteHist(), scale) }
			m.byteLog = p.ByteHist()
		}
		return m, nil
	}
}

// newKRRBucket builds the bucketized KRR stack model: the Eq. 4.1
// stay-probability evaluated at geometric-bucket granularity over a
// flat SoA arena, O(log M) per reference with no pow on the hot path.
// Object granularity only — byte trackers are tied to the exact
// per-position shifts the bucketized update does not perform.
func newKRRBucket(o Options) (Model, error) {
	filter, scale := extFilter(o)
	p, err := core.NewBucketProfiler(core.BucketConfig{
		K:     o.k(),
		Seed:  o.Seed,
		Ratio: o.BucketRatio,
	})
	if err != nil {
		return nil, err
	}
	return &streamModel{
		filter:    filter,
		process:   p.Process,
		objCurve:  func() *mrc.Curve { return mrc.FromHistogram(p.ObjHist(), scale) },
		objDense:  p.ObjHist(),
		metrics:   p.Stack().MetricsInto,
		footprint: func() uint64 { return p.Stack().MemoryOverheadBytes() + p.ObjHist().MemBytes() },
	}, nil
}

// --- Olken exact-LRU stack -------------------------------------------

func newOlken(o Options) (Model, error) {
	filter, scale := extFilter(o)
	p := olken.NewProfiler(o.Seed)
	m := &streamModel{
		filter:    filter,
		process:   p.Process,
		objCurve:  func() *mrc.Curve { return p.ObjectMRC(scale) },
		objDense:  p.ObjHist(),
		footprint: p.MemoryOverheadBytes,
	}
	if o.Bytes != BytesOff {
		m.byteCurve = func() *mrc.Curve { return p.ByteMRC(scale) }
		m.byteLog = p.ByteHist()
	}
	return m, nil
}

// --- SHARDS ----------------------------------------------------------

// shardsRate resolves the rate for the shards* models, for which
// SamplingRate is the technique's own parameter: 0 means the paper
// default, 1 disables sampling (degenerating to an exact stack).
func shardsRate(o Options) float64 {
	if o.SamplingRate == 0 {
		return sampling.DefaultRate
	}
	return o.SamplingRate
}

func newShardsFixedRate(o Options) (Model, error) {
	rate := shardsRate(o)
	s := shards.NewFixedRate(rate, o.Seed, true)
	admit := sampling.NewRate(rate)
	m := &streamModel{
		admit:     admit.Sampled,
		process:   s.Process,
		objCurve:  s.MRC,
		footprint: s.MemoryOverheadBytes,
	}
	if o.Bytes != BytesOff {
		m.byteCurve = s.ByteMRC
	}
	return m, nil
}

// DefaultFixedSizeObjects is the sample-set bound for the
// shards-fixedsize model, the paper's s_max (§2.4 / FAST '15 §4).
const DefaultFixedSizeObjects = 8192

func newShardsFixedSize(o Options) (Model, error) {
	start := o.SamplingRate
	if start == 0 {
		start = 1.0 // SHARDS_adj starts unsampled and adapts down
	}
	s := shards.NewFixedSize(start, DefaultFixedSizeObjects, o.Seed)
	return &streamModel{
		admit: func(key uint64) bool {
			return hashing.Mix64(key)%sampling.Modulus < s.Threshold()
		},
		process:   s.Process,
		objCurve:  s.MRC,
		footprint: s.MemoryOverheadBytes,
	}, nil
}

// --- AET / StatStack -------------------------------------------------

// newAETMonitor wires one reuse-time monitor behind the adapter. The
// spatial filter stays inside the monitor: AET measures reuse times in
// full-stream references, so the clock must tick on unsampled
// requests too (which is also why its curves need no rescaling).
func newAETMonitor(o Options, curve func(*aet.Monitor) *mrc.Curve) (Model, error) {
	mon := aet.New(o.SamplingRate)
	var admit func(uint64) bool
	if o.sampled() {
		admit = sampling.NewRate(o.SamplingRate).Sampled
	}
	return &streamModel{
		admit:     admit,
		process:   mon.Process,
		objCurve:  func() *mrc.Curve { return curve(mon) },
		footprint: mon.MemoryOverheadBytes,
	}, nil
}

func newAET(o Options) (Model, error) {
	return newAETMonitor(o, (*aet.Monitor).MRC)
}

func newStatStack(o Options) (Model, error) {
	return newAETMonitor(o, (*aet.Monitor).StatStackMRC)
}

// --- Counter Stacks --------------------------------------------------

func newCounterStacks(o Options) (Model, error) {
	filter, scale := extFilter(o)
	cs := counterstacks.New(counterstacks.Config{})
	return &streamModel{
		filter:    filter,
		process:   cs.Process,
		flush:     cs.Flush,
		objCurve:  func() *mrc.Curve { return mrc.FromHistogram(cs.Hist(), scale) },
		snapObj:   func() *mrc.Curve { return mrc.FromHistogram(cs.SnapshotHist(), scale) },
		footprint: cs.MemoryOverheadBytes,
	}, nil
}

// --- MIMIR -----------------------------------------------------------

func newMimir(o Options) (Model, error) {
	filter, scale := extFilter(o)
	m := mimir.New(mimir.DefaultBuckets)
	return &streamModel{
		filter:    filter,
		process:   m.Process,
		objCurve:  func() *mrc.Curve { return mrc.FromHistogram(m.Hist(), scale) },
		objDense:  m.Hist(),
		footprint: m.MemoryOverheadBytes,
	}, nil
}

// --- NSP policies (LFU, MRU) -----------------------------------------

func newNSP(policy nsp.Policy) func(Options) (Model, error) {
	return func(o Options) (Model, error) {
		filter, scale := extFilter(o)
		s := nsp.New(policy, o.Seed)
		return &streamModel{
			filter:    filter,
			process:   s.Process,
			objCurve:  func() *mrc.Curve { return mrc.FromHistogram(s.Hist(), scale) },
			footprint: s.MemoryOverheadBytes,
		}, nil
	}
}

// newMRU uses the exact O(1) transposition stack: the generic
// priority-sorted engine is not Mattson's stack for MRU (see nsp
// package docs), a divergence the difftest harness measures at up to
// ~0.43 MAE against exact simulation on loop traces.
func newMRU(o Options) (Model, error) {
	filter, scale := extFilter(o)
	s := nsp.NewMRU()
	return &streamModel{
		filter:    filter,
		process:   s.Process,
		objCurve:  func() *mrc.Curve { return mrc.FromHistogram(s.Hist(), scale) },
		footprint: s.MemoryOverheadBytes,
	}, nil
}

// --- Closed-form analytic (Che / Fagin) ------------------------------

// newAnalytic builds the instant-estimate tier: a cheform popularity
// fitter behind the adapter. No distance bookkeeping exists to merge,
// so no CapSharded; deletes don't change the popularity distribution,
// so no CapDeletes (the fitter ignores them, keeping curves invariant
// under delete injection). The fitter's curve read is non-destructive
// and deterministic in the sketch state, so objCurve doubles as the
// snapshot read and end-of-stream snapshots are bit-identical to the
// finalized curve.
func newAnalytic(variant cheform.Variant) func(Options) (Model, error) {
	return func(o Options) (Model, error) {
		filter, scale := extFilter(o)
		f, err := cheform.New(cheform.Config{
			Variant:      variant,
			DefaultAlpha: o.AnalyticAlpha,
		})
		if err != nil {
			return nil, err
		}
		return &streamModel{
			filter:    filter,
			process:   f.Process,
			objCurve:  func() *mrc.Curve { return f.Curve(scale) },
			footprint: f.MemoryOverheadBytes,
		}, nil
	}
}

// --- Registry --------------------------------------------------------

func init() {
	Register(Info{
		Name:       "krr",
		Aliases:    []string{"krr-backward"},
		Target:     "klru",
		Paper:      "Yang, Wang & Wang, ICPP '21",
		Complexity: "O(K log M) expected/ref",
		Space:      "O(M) array + open-address index",
		Caps:       CapBytes | CapDeletes | CapSharded,
		New:        newKRR(core.Backward),
	})
	Register(Info{
		Name:       "krr-topdown",
		Target:     "klru",
		Paper:      "Yang, Wang & Wang, ICPP '21 (Alg. 1)",
		Complexity: "O(K log² M) expected/ref",
		Space:      "O(M) array + open-address index",
		Caps:       CapBytes | CapDeletes | CapSharded,
		New:        newKRR(core.TopDown),
	})
	Register(Info{
		Name:       "krr-linear",
		Target:     "klru",
		Paper:      "Mattson et al. '70 walk, §2.2",
		Complexity: "O(M)/ref",
		Space:      "O(M) array + open-address index",
		Caps:       CapBytes | CapDeletes | CapSharded,
		New:        newKRR(core.Linear),
	})
	Register(Info{
		Name:       "krr-bucket",
		Target:     "klru",
		Paper:      "Yang, Wang & Wang, ICPP '21 × Saemundsson et al., SoCC '14 (buckets)",
		Complexity: "O(log M)/ref",
		Space:      "O(M) SoA arena + O(log M) buckets",
		Caps:       CapDeletes | CapSharded,
		New:        newKRRBucket,
	})
	Register(Info{
		Name:       "olken",
		Aliases:    []string{"lru"},
		Target:     "lru",
		Paper:      "Olken '81 / Mattson et al. '70",
		Complexity: "O(log M)/ref",
		Space:      "O(M) treap + hash",
		Caps:       CapBytes | CapDeletes | CapSharded,
		New:        newOlken,
	})
	Register(Info{
		Name:       "shards",
		Target:     "lru",
		Paper:      "Waldspurger et al., FAST '15",
		Complexity: "O(log R·M) per sampled ref",
		Space:      "O(R·M) tree",
		Caps:       CapBytes | CapDeletes,
		New:        newShardsFixedRate,
	})
	Register(Info{
		Name:       "shards-fixedsize",
		Target:     "lru",
		Paper:      "Waldspurger et al., FAST '15 (SHARDS_adj)",
		Complexity: "O(log s_max) per sampled ref",
		Space:      "bounded: s_max objects",
		Caps:       CapDeletes,
		New:        newShardsFixedSize,
	})
	Register(Info{
		Name:       "aet",
		Target:     "lru",
		Paper:      "Hu et al., USENIX ATC '16",
		Complexity: "O(1) amortized/ref",
		Space:      "reuse-time histogram + last-seen map",
		Caps:       CapDeletes,
		New:        newAET,
	})
	Register(Info{
		Name:       "statstack",
		Target:     "lru",
		Paper:      "Eklöv & Hagersten, ISPASS '10",
		Complexity: "O(1) amortized/ref",
		Space:      "reuse-time histogram + last-seen map",
		Caps:       CapDeletes,
		New:        newStatStack,
	})
	Register(Info{
		Name:       "counterstacks",
		Target:     "lru",
		Paper:      "Wires et al., OSDI '14",
		Complexity: "O(C)/ref (C live counters)",
		Space:      "C HLL sketches",
		Caps:       0,
		New:        newCounterStacks,
	})
	Register(Info{
		Name:       "mimir",
		Target:     "lru",
		Paper:      "Saemundsson et al., SoCC '14",
		Complexity: "O(1) amortized/ref",
		Space:      "O(B) buckets + key map",
		Caps:       CapDeletes | CapSharded,
		New:        newMimir,
	})
	Register(Info{
		Name:       "che",
		Aliases:    []string{"che-approx"},
		Target:     "klru",
		Paper:      "Che, Tung & Wang, JSAC '02 / Berthet '17",
		Complexity: "O(log H)/ref (H head counters)",
		Space:      "O(1): H counters + HLL",
		Caps:       0,
		New:        newAnalytic(cheform.Che),
	})
	Register(Info{
		Name:       "fagin",
		Target:     "klru",
		Paper:      "Fagin '77 / Berthet '17",
		Complexity: "O(log H)/ref (H head counters)",
		Space:      "O(1): H counters + HLL",
		Caps:       0,
		New:        newAnalytic(cheform.Fagin),
	})
	Register(Info{
		Name:       "lfu",
		Target:     "lfu",
		Paper:      "Bilardi, Ekanadham & Pattnaik, CF '11 (NSP)",
		Complexity: "O(log M)/ref",
		Space:      "O(M) treap + maps",
		Caps:       0,
		New:        newNSP(nsp.LFU{}),
	})
	Register(Info{
		Name:       "mru",
		Target:     "mru",
		Paper:      "Mattson et al. '70 transposition stack",
		Complexity: "O(1)/ref",
		Space:      "O(M) position array + map",
		Caps:       0,
		New:        newMRU,
	})
}
