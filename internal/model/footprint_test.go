package model

import (
	"testing"

	"krr/internal/trace"
)

// TestFootprintAllModels holds every registry entry to the
// FootprintSource contract: after processing a stream, the reported
// resident size is positive and grows with the tracked population.
func TestFootprintAllModels(t *testing.T) {
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m, err := New(info.Name, Options{Seed: 1})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			fs, ok := m.(FootprintSource)
			if !ok {
				t.Fatalf("%s does not implement FootprintSource", info.Name)
			}
			small := feedKeys(t, m, 64)
			big, err2 := New(info.Name, Options{Seed: 1})
			if err2 != nil {
				t.Fatalf("New: %v", err2)
			}
			bigFp := feedKeys(t, big, 4096)
			if small <= 0 {
				t.Fatalf("footprint after 64 keys = %d, want > 0", small)
			}
			if bigFp < small {
				t.Fatalf("footprint shrank with population: 64 keys -> %d, 4096 keys -> %d", small, bigFp)
			}
			_ = fs
		})
	}
}

// feedKeys processes n distinct keys and returns the model footprint.
func feedKeys(t *testing.T, m Model, n int) int64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := m.Process(trace.Request{Key: uint64(i), Size: 100}); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
	return FootprintOf(m)
}

// TestShardedFootprintAndClose checks the wrapper sums shard
// footprints mid-stream (through a quiesce) and that Close releases
// the pipeline idempotently.
func TestShardedFootprintAndClose(t *testing.T) {
	s, err := NewSharded("krr", 4, Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	for i := 0; i < 2048; i++ {
		if err := s.Process(trace.Request{Key: uint64(i % 300), Size: 10}); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
	if fp := s.Footprint(); fp <= 0 {
		t.Fatalf("sharded footprint = %d, want > 0", fp)
	}
	if err := s.Process(trace.Request{Key: 1, Size: 10}); err != nil {
		t.Fatalf("Process after Footprint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Process(trace.Request{Key: 1, Size: 10}); err != ErrFinalized {
		t.Fatalf("Process after Close = %v, want ErrFinalized", err)
	}
	if fp := s.Footprint(); fp <= 0 {
		t.Fatalf("post-close footprint = %d, want > 0", fp)
	}
}
