package model

import (
	"fmt"
	"sync"
	"testing"

	"krr/internal/trace"
)

// snapshotVariants enumerates the option sets a model's snapshot
// contract is held to: plain, spatially sampled, byte-granularity
// (CapBytes only), and the sharded pipeline (CapSharded only).
func snapshotVariants(info Info) []Options {
	variants := []Options{
		{Seed: 7},
		{Seed: 7, SamplingRate: 0.1},
	}
	if info.Caps.Has(CapBytes) {
		variants = append(variants, Options{Seed: 7, Bytes: BytesOn})
	}
	if info.Caps.Has(CapSharded) {
		variants = append(variants, Options{Seed: 7, Workers: 3})
		if info.Caps.Has(CapBytes) {
			variants = append(variants, Options{Seed: 7, Workers: 3, Bytes: BytesOn})
		}
	}
	return variants
}

// TestSnapshotAtEOFBitIdentical pins the central snapshot guarantee
// for every registry entry and the Sharded wrapper: a Snapshot taken
// at end-of-stream — before any finalizing accessor — is bit-identical
// to the finalized curves.
//
// The trace length is deliberately not a multiple of the Counter
// Stacks downsampling interval, so the partial-batch snapshot path
// (clone + flush on the copy) is exercised rather than the trivial
// pending == 0 fast path.
func TestSnapshotAtEOFBitIdentical(t *testing.T) {
	tr := synthTrace(t, 20500, 2000, 11)
	for _, info := range All() {
		info := info
		for _, opts := range snapshotVariants(info) {
			opts := opts
			name := fmt.Sprintf("%s/rate=%v/bytes=%v/w=%d", info.Name, opts.SamplingRate, opts.Bytes, opts.Workers)
			t.Run(name, func(t *testing.T) {
				m, err := New(info.Name, opts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				feed(t, m, tr)

				snap := m.Snapshot()
				if snap.Stats.Finalized {
					t.Fatal("snapshot must not finalize the model")
				}
				if snap.Stats.Seen != uint64(tr.Len()) {
					t.Fatalf("snapshot Seen = %d, want %d", snap.Stats.Seen, tr.Len())
				}
				checkCurveShape(t, snap.Object, "snapshot object curve")

				final := m.ObjectMRC()
				if !sameCurve(snap.Object, final) {
					t.Fatal("snapshot at EOF differs from finalized object curve")
				}
				if opts.Bytes != BytesOff {
					fb := m.ByteMRC()
					if snap.Byte == nil || fb == nil {
						t.Fatal("byte mode set but snapshot/final byte curve is nil")
					}
					if !sameCurve(snap.Byte, fb) {
						t.Fatal("snapshot at EOF differs from finalized byte curve")
					}
				} else if snap.Byte != nil {
					t.Fatal("snapshot byte curve must be nil with bytes off")
				}

				// Snapshot after finalization stays readable and equal.
				again := m.Snapshot()
				if !again.Stats.Finalized {
					t.Fatal("post-finalize snapshot must report Finalized")
				}
				if !sameCurve(again.Object, final) {
					t.Fatal("post-finalize snapshot differs from finalized curve")
				}
			})
		}
	}
}

// TestSnapshotDoesNotPerturbStream checks that mid-stream snapshots
// leave the live state untouched: a model snapshotted repeatedly while
// streaming must end with exactly the curve of an undisturbed control
// model, and Process must stay legal after every snapshot.
func TestSnapshotDoesNotPerturbStream(t *testing.T) {
	tr := synthTrace(t, 20500, 2000, 13)
	reqs := materialize(t, tr)
	for _, info := range All() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			opts := Options{Seed: 5}
			probed, err := New(info.Name, opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var lastSeen uint64
			for i, req := range reqs {
				if err := probed.Process(req); err != nil {
					t.Fatalf("Process after snapshot: %v", err)
				}
				if (i+1)%4096 == 0 {
					snap := probed.Snapshot()
					checkCurveShape(t, snap.Object, "mid-stream snapshot")
					if snap.Stats.Seen <= lastSeen {
						t.Fatalf("snapshot Seen not advancing: %d then %d", lastSeen, snap.Stats.Seen)
					}
					lastSeen = snap.Stats.Seen
				}
			}
			control := buildCurve(t, info.Name, opts, tr)
			if !sameCurve(probed.ObjectMRC(), control) {
				t.Fatalf("%s: mid-stream snapshots perturbed the final curve", info.Name)
			}
		})
	}
}

// materialize flattens a trace into a request slice for per-request
// driving.
func materialize(t *testing.T, tr *trace.Trace) []trace.Request {
	t.Helper()
	var reqs []trace.Request
	r := tr.Reader()
	for {
		req, err := r.Next()
		if err != nil {
			break
		}
		reqs = append(reqs, req)
	}
	if len(reqs) != tr.Len() {
		t.Fatalf("materialized %d of %d requests", len(reqs), tr.Len())
	}
	return reqs
}

// TestShardedSnapshotConcurrent drives a Sharded model's Process from
// one goroutine while another takes periodic snapshots — the online
// monitoring deployment. Run under -race this pins the quiesce
// barrier's synchronization; the final curve must equal an undisturbed
// control, proving snapshots don't drop, duplicate, or reorder
// requests.
func TestShardedSnapshotConcurrent(t *testing.T) {
	tr := synthTrace(t, 30000, 2500, 17)
	reqs := materialize(t, tr)
	opts := Options{Seed: 9, Workers: 4}

	m, err := New("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Sharded); !ok {
		t.Fatalf("Workers=4 built %T, want *Sharded", m)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			snap := m.Snapshot()
			if snap.Object == nil {
				t.Error("concurrent snapshot returned nil curve")
				return
			}
		}
	}()
	for _, req := range reqs {
		if err := m.Process(req); err != nil {
			t.Fatalf("Process: %v", err)
		}
	}
	close(done)
	wg.Wait()

	control := buildCurve(t, "krr", opts, tr)
	if !sameCurve(m.ObjectMRC(), control) {
		t.Fatal("concurrent snapshots perturbed the sharded curve")
	}
}
