package shards

import (
	"sort"
	"testing"

	"krr/internal/hashing"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/sampling"
	"krr/internal/trace"
	"krr/internal/workload"
)

func zipfTrace(seed uint64, keys uint64, n int) *trace.Trace {
	g := workload.NewZipf(seed, keys, 0.8, nil, 0)
	tr, _ := trace.Collect(g, n)
	return tr
}

func TestFixedRateApproximatesExactLRU(t *testing.T) {
	tr := zipfTrace(3, 50000, 300000)

	exact := olken.NewProfiler(1)
	if err := exact.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	truth := exact.ObjectMRC(1)

	s := NewFixedRate(0.3, 2, false)
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	approx := s.MRC()

	sizes := mrc.EvenSizes(50000, 25)
	if mae := mrc.MAE(truth, approx, sizes); mae > 0.03 {
		t.Fatalf("fixed-rate SHARDS MAE %v vs exact LRU", mae)
	}
}

func TestFixedRateAdjustImprovesNormalization(t *testing.T) {
	tr := zipfTrace(5, 20000, 100000)
	plain := NewFixedRate(0.1, 2, false)
	adj := NewFixedRate(0.1, 2, true)
	plain.ProcessAll(tr.Reader())
	adj.ProcessAll(tr.Reader())
	// The adjusted histogram total must be >= the plain one and close
	// to seen × rate.
	if adj.prof.ObjHist().Total() < plain.prof.ObjHist().Total() {
		t.Fatal("adjustment removed mass")
	}
	want := float64(100000) * 0.1
	got := float64(adj.prof.ObjHist().Total())
	if got < want*0.999 {
		t.Fatalf("adjusted total %v, want >= %v", got, want)
	}
}

func TestFixedRatePanics(t *testing.T) {
	for _, rate := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v: expected panic", rate)
				}
			}()
			NewFixedRate(rate, 1, false)
		}()
	}
}

func TestFixedSizeBoundsSampleSet(t *testing.T) {
	const sMax = 500
	s := NewFixedSize(1.0, sMax, 3)
	g := workload.NewZipf(7, 100000, 0.8, nil, 0)
	if err := s.ProcessAll(trace.LimitReader(g, 200000)); err != nil {
		t.Fatal(err)
	}
	if s.TrackedObjects() > sMax {
		t.Fatalf("tracked %d > sMax %d", s.TrackedObjects(), sMax)
	}
	if s.Rate() >= 1.0 {
		t.Fatal("rate must have been lowered")
	}
}

func TestFixedSizeCurveReasonable(t *testing.T) {
	tr := zipfTrace(9, 30000, 200000)

	exact := olken.NewProfiler(1)
	exact.ProcessAll(tr.Reader())
	truth := exact.ObjectMRC(1)

	s := NewFixedSize(1.0, 2000, 4)
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	approx := s.MRC()
	sizes := mrc.EvenSizes(30000, 20)
	if mae := mrc.MAE(truth, approx, sizes); mae > 0.06 {
		t.Fatalf("fixed-size SHARDS MAE %v", mae)
	}
}

func TestFixedSizeDeleteHandling(t *testing.T) {
	s := NewFixedSize(1.0, 100, 1)
	s.Process(trace.Request{Key: 1, Size: 1, Op: trace.OpGet})
	s.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	if s.TrackedObjects() != 0 {
		t.Fatal("delete must remove from sample set")
	}
	// Unknown key delete is a no-op.
	s.Process(trace.Request{Key: 99, Op: trace.OpDelete})
}

func TestFixedSizeEmptyMRC(t *testing.T) {
	s := NewFixedSize(0.5, 10, 1)
	c := s.MRC()
	if c.Eval(100) != 1 {
		t.Fatal("empty model must predict all-miss")
	}
}

func TestFixedSizePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFixedSize(0, 10, 1) },
		func() { NewFixedSize(0.5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFixedRateByteMRC(t *testing.T) {
	g := workload.NewTwitterLike(3, workload.TwitterParams{Keys: 5000, Alpha: 1.0})
	tr, _ := trace.Collect(g, 50000)
	s := NewFixedRate(0.5, 2, false)
	s.ProcessAll(tr.Reader())
	c := s.ByteMRC()
	if c.Len() < 2 {
		t.Fatal("byte curve empty")
	}
	if c.Eval(0) != 1 {
		t.Fatal("byte curve must start at 1")
	}
}

// slowFixedSize is the pre-optimization map-based FixedSize, kept as
// a test oracle: per-reference map writes, a full sample-set scan per
// over-cap insert, and a sorted-map histogram. The flat-histogram /
// lazy-heap rewrite must reproduce its output bit for bit.
type slowFixedSize struct {
	sMax      int
	threshold uint64
	stack     *olken.Stack
	hashes    map[uint64]uint64
	hist      map[uint64]float64
	coldW     float64
	totalW    float64
}

func newSlowFixedSize(startRate float64, sMax int, seed uint64) *slowFixedSize {
	return &slowFixedSize{
		sMax:      sMax,
		threshold: uint64(startRate*sampling.Modulus + 0.5),
		stack:     olken.New(seed),
		hashes:    make(map[uint64]uint64),
		hist:      make(map[uint64]float64),
	}
}

func (s *slowFixedSize) process(req trace.Request) {
	h := hashing.Mix64(req.Key) % sampling.Modulus
	if h >= s.threshold {
		return
	}
	if req.Op == trace.OpDelete {
		if s.stack.Delete(req.Key) {
			delete(s.hashes, req.Key)
		}
		return
	}
	rate := float64(s.threshold) / sampling.Modulus
	res := s.stack.Reference(req.Key, req.Size)
	s.hashes[req.Key] = h
	w := 1 / rate
	s.totalW += w
	if res.Cold {
		s.coldW += w
		for s.stack.Len() > s.sMax {
			var maxHash uint64
			for _, hh := range s.hashes {
				if hh > maxHash {
					maxHash = hh
				}
			}
			s.threshold = maxHash
			for key, hh := range s.hashes {
				if hh >= s.threshold {
					s.stack.Delete(key)
					delete(s.hashes, key)
				}
			}
		}
		return
	}
	d := uint64(float64(res.Distance)/rate + 0.5)
	if d == 0 {
		d = 1
	}
	s.hist[d] += w
}

func (s *slowFixedSize) mrc() *mrc.Curve {
	dists := make([]uint64, 0, len(s.hist))
	for d := range s.hist {
		dists = append(dists, d)
	}
	sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
	c := &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	var cum float64
	for _, d := range dists {
		cum += s.hist[d]
		c.Sizes = append(c.Sizes, d)
		c.Miss = append(c.Miss, clamp01(1-cum/s.totalW))
	}
	return c
}

// TestFixedSizeMatchesMapReference pins the optimized FixedSize to the
// map-based original, bit for bit, across randomized traces with
// deletes and sample caps small enough to force many threshold
// shrinks. Eviction order differs between the two (hash-sorted heap
// pops vs map iteration), so this also certifies that eviction order
// cannot affect the curve.
func TestFixedSizeMatchesMapReference(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		keys uint64
		sMax int
	}{
		{seed: 11, keys: 30000, sMax: 300},
		{seed: 12, keys: 5000, sMax: 64},
		{seed: 13, keys: 80000, sMax: 1000},
	} {
		g := workload.NewZipf(tc.seed, tc.keys, 0.9, nil, 0.05)
		tr, err := trace.Collect(g, 100000)
		if err != nil {
			t.Fatal(err)
		}
		fast := NewFixedSize(1.0, tc.sMax, 7)
		slow := newSlowFixedSize(1.0, tc.sMax, 7)
		for _, req := range tr.Reqs {
			fast.Process(req)
			slow.process(req)
		}
		if fast.Threshold() != slow.threshold {
			t.Fatalf("seed %d: threshold %d vs reference %d", tc.seed, fast.Threshold(), slow.threshold)
		}
		if fast.TrackedObjects() != slow.stack.Len() {
			t.Fatalf("seed %d: tracked %d vs reference %d", tc.seed, fast.TrackedObjects(), slow.stack.Len())
		}
		got, want := fast.MRC(), slow.mrc()
		if len(got.Sizes) != len(want.Sizes) {
			t.Fatalf("seed %d: breakpoint counts differ: %d vs %d", tc.seed, len(got.Sizes), len(want.Sizes))
		}
		for i := range got.Sizes {
			if got.Sizes[i] != want.Sizes[i] || got.Miss[i] != want.Miss[i] {
				t.Fatalf("seed %d: curves differ at %d: (%d, %v) vs (%d, %v)",
					tc.seed, i, got.Sizes[i], got.Miss[i], want.Sizes[i], want.Miss[i])
			}
		}
	}
}

func BenchmarkFixedRateProcess(b *testing.B) {
	s := NewFixedRate(0.01, 1, false)
	g := workload.NewZipf(3, 1<<20, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(reqs[i&(1<<16-1)])
	}
}

// TestFixedRateAdjustBulkMatchesLoop pins the SHARDS_adj shortfall
// credit to its original per-reference form: adding the shortfall in
// one AddN call must produce exactly the curve the old
// Add(1)-in-a-loop code did.
func TestFixedRateAdjustBulkMatchesLoop(t *testing.T) {
	tr := zipfTrace(9, 20000, 100000)

	adj := NewFixedRate(0.05, 2, true)
	if err := adj.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	got := adj.MRC()

	// Reference: identical run without the adjustment, then apply the
	// pre-AddN loop by hand.
	plain := NewFixedRate(0.05, 2, false)
	if err := plain.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	hist := plain.prof.ObjHist()
	expected := uint64(float64(plain.seen)*plain.filter.Rate() + 0.5)
	for i := hist.Total(); i < expected; i++ {
		hist.Add(1)
	}
	want := mrc.FromHistogram(hist, 1/plain.filter.Rate())

	if len(got.Sizes) != len(want.Sizes) {
		t.Fatalf("breakpoint counts differ: %d vs %d", len(got.Sizes), len(want.Sizes))
	}
	for i := range got.Sizes {
		if got.Sizes[i] != want.Sizes[i] || got.Miss[i] != want.Miss[i] {
			t.Fatalf("curves differ at %d: (%d, %v) vs (%d, %v)",
				i, got.Sizes[i], got.Miss[i], want.Sizes[i], want.Miss[i])
		}
	}
}
