// Package shards implements SHARDS (Waldspurger et al., FAST '15) —
// the spatially-sampled exact-LRU MRC approximation the paper uses
// both as its sampling technique (§2.4) and as the baseline LRU model
// KRR's runtime is compared against (Table 5.4).
//
// Two variants are provided:
//
//   - FixedRate: the sampling condition hash(L) mod P < T with a
//     constant threshold; distances are measured on the sampled
//     stream with an Olken tree and rescaled by 1/R.
//   - FixedSize: SHARDS_adj's bounded-memory mode — the threshold is
//     lowered whenever the sample set exceeds sMax, evicting keys
//     whose hash no longer qualifies; each distance is rescaled by
//     the rate in force when it was recorded.
package shards

import (
	"errors"
	"io"

	"krr/internal/hashing"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/sampling"
	"krr/internal/trace"
)

// FixedRate is constant-rate SHARDS.
type FixedRate struct {
	filter *sampling.Filter
	prof   *olken.Profiler
	seen   uint64
	// adjust adds the SHARDS_adj correction: the difference between
	// the expected and actual sampled reference counts is credited to
	// the smallest-distance bucket, correcting the miss-ratio
	// normalization for sampling deviation.
	adjust bool
}

// NewFixedRate builds a fixed-rate SHARDS model. rate must be in
// (0, 1]; adjust enables the SHARDS_adj count correction.
func NewFixedRate(rate float64, seed uint64, adjust bool) *FixedRate {
	if rate <= 0 || rate > 1 {
		panic("shards: rate must be in (0, 1]")
	}
	return &FixedRate{
		filter: sampling.NewRate(rate),
		prof:   olken.NewProfiler(seed),
		adjust: adjust,
	}
}

// Rate returns the effective sampling rate.
func (s *FixedRate) Rate() float64 { return s.filter.Rate() }

// Process feeds one request.
func (s *FixedRate) Process(req trace.Request) {
	s.seen++
	if !s.filter.Sampled(req.Key) {
		return
	}
	s.prof.Process(req)
}

// ProcessAll drains a reader.
func (s *FixedRate) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the approximated exact-LRU curve over object cache
// sizes. It is non-destructive: the SHARDS_adj shortfall credit is
// applied to a copy of the histogram, so repeated calls — including
// mid-stream snapshot reads — never compound the correction into the
// live counts.
func (s *FixedRate) MRC() *mrc.Curve {
	hist := s.prof.ObjHist()
	if s.adjust {
		expected := uint64(float64(s.seen)*s.filter.Rate() + 0.5)
		actual := hist.Total()
		if expected > actual {
			// Credit the shortfall to distance 1: under-sampling means
			// short-distance references were missed.
			adjusted := hist.Clone()
			adjusted.AddN(1, expected-actual)
			return mrc.FromHistogram(adjusted, 1/s.filter.Rate())
		}
	}
	return mrc.FromHistogram(hist, 1/s.filter.Rate())
}

// ByteMRC returns the curve over byte cache sizes.
func (s *FixedRate) ByteMRC() *mrc.Curve {
	return mrc.FromHistogram(s.prof.ByteHist(), 1/s.filter.Rate())
}

// MemoryOverheadBytes estimates the model's resident metadata (the
// sampled-stream Olken profiler).
func (s *FixedRate) MemoryOverheadBytes() uint64 {
	return s.prof.MemoryOverheadBytes()
}

// FixedSize is bounded-memory SHARDS: at most sMax sampled objects are
// tracked, with the sampling threshold lowered as needed.
//
// Both per-request structures are flat. Recorded weights accumulate in
// a dense array indexed by rescaled distance (the index range is the
// working-set scale every dense-histogram model pays), and threshold
// shrinks pop a lazy max-heap over the sample set's hashes — the two
// map-driven paths (per-reference map assignment plus a full sample
// scan on every over-cap insert) that used to dominate the model's
// per-request cost.
type FixedSize struct {
	sMax      int
	threshold uint64 // current T; sampling condition hash mod P < T
	stack     *olken.Stack
	hashes    map[uint64]uint64 // key -> hash mod P, for liveness
	// byHash is a max-heap of (hash, key) over the live sample set.
	// Entries are pushed once per residency and stale entries (keys
	// already evicted or deleted) are discarded lazily on pop, so a
	// threshold shrink costs O(log sMax) amortized per evicted key.
	byHash []hashEntry
	// hist accumulates weight per rescaled distance; weights are 1/R
	// at record time since one sampled reference stands for 1/R
	// unsampled ones. Grown on demand.
	hist   []float64
	coldW  float64
	totalW float64
	seen   uint64
}

// hashEntry orders the live sample set by hash for threshold shrinks.
type hashEntry struct{ h, key uint64 }

// NewFixedSize builds a fixed-size SHARDS model starting at rate
// startRate with a cap of sMax tracked objects.
func NewFixedSize(startRate float64, sMax int, seed uint64) *FixedSize {
	if startRate <= 0 || startRate > 1 {
		panic("shards: startRate must be in (0, 1]")
	}
	if sMax < 2 {
		panic("shards: sMax must be >= 2")
	}
	return &FixedSize{
		sMax:      sMax,
		threshold: uint64(startRate*sampling.Modulus + 0.5),
		stack:     olken.New(seed),
		hashes:    make(map[uint64]uint64),
	}
}

// Rate returns the current effective sampling rate.
func (s *FixedSize) Rate() float64 {
	return float64(s.threshold) / sampling.Modulus
}

// Threshold returns the current sampling threshold T (the condition
// is hash mod P < T).
func (s *FixedSize) Threshold() uint64 { return s.threshold }

// TrackedObjects returns the current sample-set size.
func (s *FixedSize) TrackedObjects() int { return s.stack.Len() }

// MemoryOverheadBytes estimates the model's resident metadata: the
// bounded Olken stack, the liveness map, the shrink heap and the dense
// weight array.
func (s *FixedSize) MemoryOverheadBytes() uint64 {
	const perEntry = 48 // hashes map entry
	return s.stack.MemoryOverheadBytes() +
		uint64(len(s.hashes))*perEntry +
		uint64(cap(s.byHash))*16 +
		uint64(cap(s.hist))*8
}

// Process feeds one request.
func (s *FixedSize) Process(req trace.Request) {
	s.seen++
	h := hashing.Mix64(req.Key) % sampling.Modulus
	if h >= s.threshold {
		return
	}
	if req.Op == trace.OpDelete {
		if s.stack.Delete(req.Key) {
			delete(s.hashes, req.Key)
		}
		return
	}
	rate := s.Rate()
	res := s.stack.Reference(req.Key, req.Size)
	w := 1 / rate
	s.totalW += w
	if res.Cold {
		// A key's hash never changes, so one (hash, key) pair per
		// residency is enough for the shrink heap.
		s.hashes[req.Key] = h
		s.pushHash(hashEntry{h: h, key: req.Key})
		s.coldW += w
		s.shrinkIfNeeded()
		return
	}
	d := uint64(float64(res.Distance)/rate + 0.5)
	if d == 0 {
		d = 1
	}
	if need := int(d) + 1; need > len(s.hist) {
		s.hist = append(s.hist, make([]float64, need-len(s.hist))...)
	}
	s.hist[d] += w
}

// shrinkIfNeeded lowers the threshold until the sample set fits sMax,
// evicting objects whose hash no longer qualifies. The new threshold
// is the maximum resident hash (an exclusive bound, so the key(s)
// holding it always leave), read off the heap top after discarding
// stale entries.
func (s *FixedSize) shrinkIfNeeded() {
	for s.stack.Len() > s.sMax {
		for {
			if _, live := s.hashes[s.byHash[0].key]; live {
				break
			}
			s.popHash()
		}
		s.threshold = s.byHash[0].h
		for len(s.byHash) > 0 && s.byHash[0].h >= s.threshold {
			e := s.popHash()
			if _, live := s.hashes[e.key]; live {
				s.stack.Delete(e.key)
				delete(s.hashes, e.key)
			}
		}
	}
}

// pushHash adds an entry to the byHash max-heap.
func (s *FixedSize) pushHash(e hashEntry) {
	s.byHash = append(s.byHash, e)
	i := len(s.byHash) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.byHash[parent].h >= s.byHash[i].h {
			break
		}
		s.byHash[parent], s.byHash[i] = s.byHash[i], s.byHash[parent]
		i = parent
	}
}

// popHash removes and returns the maximum-hash entry.
func (s *FixedSize) popHash() hashEntry {
	top := s.byHash[0]
	n := len(s.byHash) - 1
	s.byHash[0] = s.byHash[n]
	s.byHash = s.byHash[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s.byHash[r].h > s.byHash[c].h {
			c = r
		}
		if s.byHash[i].h >= s.byHash[c].h {
			break
		}
		s.byHash[i], s.byHash[c] = s.byHash[c], s.byHash[i]
		i = c
	}
	return top
}

// ProcessAll drains a reader.
func (s *FixedSize) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// MRC returns the approximated exact-LRU curve.
func (s *FixedSize) MRC() *mrc.Curve {
	if s.totalW == 0 {
		return &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	}
	c := &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	var cum float64
	for d, w := range s.hist {
		if w == 0 {
			continue
		}
		cum += w
		c.Sizes = append(c.Sizes, uint64(d))
		c.Miss = append(c.Miss, clamp01(1-cum/s.totalW))
	}
	return c
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
