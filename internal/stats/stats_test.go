package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMAE(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{2, 2, 1}
	if got := MAE(a, b); got != 1 {
		t.Fatalf("MAE = %v, want 1", got)
	}
	if MAE(nil, nil) != 0 {
		t.Fatal("empty MAE must be 0")
	}
}

func TestMAEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

func TestMAEProperties(t *testing.T) {
	// Symmetry and identity of indiscernibles.
	err := quick.Check(func(a []float64) bool {
		if MAE(a, a) != 0 {
			return false
		}
		b := make([]float64, len(a))
		for i := range a {
			b[i] = a[i] + 1
		}
		return math.Abs(MAE(a, b)-MAE(b, a)) < 1e-15
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsErr(t *testing.T) {
	if got := MaxAbsErr([]float64{0, 5, 2}, []float64{1, 1, 2}); got != 4 {
		t.Fatalf("MaxAbsErr = %v, want 4", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Variance()-4) > 1e-12 {
		t.Fatalf("variance = %v, want 4", w.Variance())
	}
	if math.Abs(w.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", w.StdDev())
	}
}

func TestWelfordSmallN(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator must report zero variance")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatal("single observation must report zero variance")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		// Skip pathological magnitudes that break the naive formula.
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		m := Mean(xs)
		var v float64
		for _, x := range xs {
			v += (x - m) * (x - m)
		}
		v /= float64(len(xs))
		return math.Abs(w.Variance()-v) <= 1e-6*(1+v)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 0)
	want := []float64{1, 2, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v", out)
		}
	}
}

func TestNormalizePanicsOnZeroBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Normalize([]float64{0, 1}, 0)
}
