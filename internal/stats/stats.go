// Package stats provides the small statistical helpers used across the
// evaluation harness: mean absolute error between curves, running
// moments, and normalization.
package stats

import (
	"math"
	"sort"
)

// MAE returns the mean absolute error between two equal-length
// vectors. It panics on length mismatch and returns 0 for empty input.
func MAE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MAE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum / float64(len(a))
}

// MaxAbsErr returns the maximum absolute difference between two
// equal-length vectors.
func MaxAbsErr(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: MaxAbsErr length mismatch")
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Welford accumulates mean and variance in one pass with good
// numerical stability. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// Normalize returns xs scaled so that the element at index base is 1.
// It panics if that element is zero.
func Normalize(xs []float64, base int) []float64 {
	if xs[base] == 0 {
		panic("stats: Normalize by zero")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / xs[base]
	}
	return out
}
