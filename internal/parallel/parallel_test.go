package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 1000
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachParallelism(t *testing.T) {
	// With 4 workers at least 2 goroutines must overlap; detect via a
	// high-water mark of concurrently active calls.
	var active, peak int32
	ForEach(64, 4, func(int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // small spin to encourage overlap
			_ = i
		}
		atomic.AddInt32(&active, -1)
	})
	if peak < 2 {
		t.Skipf("no overlap observed (peak=%d); single-CPU machine?", peak)
	}
}

func TestGroupCollectsFirstError(t *testing.T) {
	var g Group
	sentinel := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 3 {
				return sentinel
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait() = %v, want sentinel", err)
	}
}

func TestGroupNoError(t *testing.T) {
	var g Group
	for i := 0; i < 5; i++ {
		g.Go(func() error { return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait() = %v", err)
	}
}

func TestForEachChunkedCoversAllIndices(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{1000, 4, 0}, {1000, 4, 7}, {5, 8, 2}, {1, 1, 0}, {0, 4, 16}, {1000, 1, 64},
	} {
		var hits sync.Map
		var count atomic.Int64
		ForEachChunked(tc.n, tc.workers, tc.chunk, func(i int) {
			if _, dup := hits.LoadOrStore(i, true); dup {
				t.Errorf("n=%d w=%d c=%d: index %d visited twice", tc.n, tc.workers, tc.chunk, i)
			}
			count.Add(1)
		})
		if int(count.Load()) != tc.n {
			t.Fatalf("n=%d w=%d c=%d: visited %d indices", tc.n, tc.workers, tc.chunk, count.Load())
		}
	}
}

func BenchmarkForEachCheapBody(b *testing.B) {
	var sink atomic.Int64
	b.Run("ForEach", func(b *testing.B) {
		ForEach(b.N, 8, func(i int) { sink.Add(1) })
	})
	b.Run("Chunked", func(b *testing.B) {
		ForEachChunked(b.N, 8, 1024, func(i int) { sink.Add(1) })
	})
}

func TestMapOrder(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
