// Package parallel provides the small fan-out helpers used by the
// evaluation harness: a bounded parallel-for over an index range and a
// first-error group. The ground-truth MRCs in the paper are obtained
// by simulating a K-LRU cache at 25-50 independent sizes; those
// simulations share nothing and scale linearly with cores.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 selects GOMAXPROCS. It returns after all calls finish.
// fn must be safe for concurrent invocation on distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Lock-free work stealing: one fetch-add per index. At high
	// worker counts a mutex-guarded counter serializes the grab and
	// becomes the bottleneck for cheap bodies; an atomic increment
	// is a single contended cache line with no parking.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// ForEachChunked is ForEach for cheap bodies: workers claim
// contiguous chunks of chunk indices with one atomic operation per
// chunk, trading scheduling granularity for a 1/chunk reduction in
// counter contention. chunk <= 0 picks a size that gives each worker
// ~4 chunks.
func ForEachChunked(n, workers, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if chunk <= 0 {
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	if workers == 1 || chunk >= n {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Group runs functions concurrently and retains the first error.
// The zero value is ready to use.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	done bool
}

// Go launches fn on a new goroutine.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if !g.done {
				g.err = err
				g.done = true
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every launched function returns, then reports the
// first error observed (or nil).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Map applies fn to every index in [0, n) with bounded parallelism and
// collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
