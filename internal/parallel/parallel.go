// Package parallel provides the small fan-out helpers used by the
// evaluation harness: a bounded parallel-for over an index range and a
// first-error group. The ground-truth MRCs in the paper are obtained
// by simulating a K-LRU cache at 25-50 independent sizes; those
// simulations share nothing and scale linearly with cores.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// workers <= 0 selects GOMAXPROCS. It returns after all calls finish.
// fn must be safe for concurrent invocation on distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Group runs functions concurrently and retains the first error.
// The zero value is ready to use.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
	done bool
}

// Go launches fn on a new goroutine.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if !g.done {
				g.err = err
				g.done = true
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every launched function returns, then reports the
// first error observed (or nil).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Map applies fn to every index in [0, n) with bounded parallelism and
// collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
