package wire

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"krr/internal/telemetry"
	"krr/internal/trace"
)

// collectSink records every ingested request per tenant.
type collectSink struct {
	mu   sync.Mutex
	got  map[string][]trace.Request
	errs error
}

func (cs *collectSink) IngestBatch(tenant string, reqs []trace.Request) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.got == nil {
		cs.got = make(map[string][]trace.Request)
	}
	cs.got[tenant] = append(cs.got[tenant], reqs...)
	return cs.errs
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestServerEndToEnd pins the full loop: client frames in, sink batches
// out, every request intact and in order, zero drops when the sink
// keeps up.
func TestServerEndToEnd(t *testing.T) {
	sink := &collectSink{}
	srv, addr := startServer(t, Config{Sink: sink})

	c, err := Dial(addr, "acme")
	if err != nil {
		t.Fatal(err)
	}
	c.Latency = telemetry.NewHistogram(telemetry.ExpBuckets(1e-6, 2, 21))
	want := testReqs(10_000)
	for off := 0; off < len(want); off += 777 {
		end := off + 777
		if end > len(want) {
			end = len(want)
		}
		if err := c.SendBatch(want[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != uint64(len(want)) || st.AckedRequests != uint64(len(want)) {
		t.Fatalf("stats: sent %d acked %d, want %d", st.Requests, st.AckedRequests, len(want))
	}
	if st.DroppedFrames != 0 || st.DroppedRequests != 0 {
		t.Fatalf("unexpected drops: %+v", st)
	}
	// The server has acked every frame, but the last sink call may still
	// be in flight; Close drains the workers.
	srv.Close()
	sink.mu.Lock()
	got := sink.got["acme"]
	sink.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("sink saw %d requests, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if srv.Requests() != uint64(len(want)) || srv.Dropped() != 0 {
		t.Fatalf("server counters: requests %d dropped %d", srv.Requests(), srv.Dropped())
	}
	if c.Latency.Count() == 0 {
		t.Fatal("no ack latency samples recorded")
	}
}

// TestServerMultiTenant pins per-connection tenant routing.
func TestServerMultiTenant(t *testing.T) {
	sink := &collectSink{}
	srv, addr := startServer(t, Config{Sink: sink})

	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			c, err := Dial(addr, tenant)
			if err != nil {
				t.Error(err)
				return
			}
			if err := c.SendBatch(testReqs(500)); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Close(); err != nil {
				t.Error(err)
			}
		}(tenant)
	}
	wg.Wait()
	srv.Close()
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, tenant := range []string{"a", "b", "c"} {
		if len(sink.got[tenant]) != 500 {
			t.Fatalf("tenant %q: %d requests, want 500", tenant, len(sink.got[tenant]))
		}
	}
}

// TestServerOverload pins deterministic shedding: a sink stalled behind
// a gate while a client pours in 10x more frames than the queue holds
// must produce counted drops on both sides, bounded queue occupancy,
// and exact conservation (accepted + dropped == sent).
func TestServerOverload(t *testing.T) {
	gate := make(chan struct{})
	var inflight, maxInflight atomic.Int64
	sink := SinkFunc(func(tenant string, reqs []trace.Request) error {
		cur := inflight.Add(1)
		for {
			max := maxInflight.Load()
			if cur <= max || maxInflight.CompareAndSwap(max, cur) {
				break
			}
		}
		<-gate
		inflight.Add(-1)
		return nil
	})
	const depth = 4
	srv, addr := startServer(t, Config{Sink: sink, QueueDepth: depth})

	c, err := Dial(addr, "flood")
	if err != nil {
		t.Fatal(err)
	}
	// 10x oversubscription: far more frames than the queue + worker can
	// hold while the sink is gated shut.
	const frames = 10 * (depth + 1)
	const perFrame = 256
	reqs := testReqs(perFrame)
	for i := 0; i < frames; i++ {
		if err := c.SendBatch(reqs); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the server has acked (accepted or shed) every frame, so
	// the drop accounting below is stable, then open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.Stats()
		if st.AckedFrames+st.DroppedFrames == frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acks stalled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	st, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	if st.DroppedFrames == 0 {
		t.Fatal("10x oversubscription produced no drops")
	}
	if st.AckedFrames+st.DroppedFrames != frames {
		t.Fatalf("conservation: acked %d + dropped %d != sent %d", st.AckedFrames, st.DroppedFrames, frames)
	}
	if st.AckedRequests+st.DroppedRequests != frames*perFrame {
		t.Fatalf("request conservation: %+v", st)
	}
	// Server-side accounting must agree with the client's ack stream.
	if srv.Dropped() != st.DroppedRequests {
		t.Fatalf("server dropped %d, client saw %d", srv.Dropped(), st.DroppedRequests)
	}
	if srv.Requests() != st.AckedRequests {
		t.Fatalf("server accepted %d, client saw %d", srv.Requests(), st.AckedRequests)
	}
	// Boundedness: at most one batch in the sink at a time (per-conn
	// worker is serial), so memory stays queue-capped no matter the
	// oversubscription factor.
	if maxInflight.Load() > 1 {
		t.Fatalf("sink saw %d concurrent batches from one connection", maxInflight.Load())
	}
}

// TestServerSinkError pins the failure path: after the sink errors, the
// server stops accepting frames on that connection and reports
// StatusBad instead of silently dropping.
func TestServerSinkError(t *testing.T) {
	var calls atomic.Int64
	sink := SinkFunc(func(tenant string, reqs []trace.Request) error {
		calls.Add(1)
		return trace.ErrBadFormat
	})
	srv, addr := startServer(t, Config{Sink: sink})

	c, err := Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	// Keep sending until the error propagates back; the first frame is
	// always accepted (the sink hasn't run yet at admission time).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.SendBatch(testReqs(64)); err != nil {
			break
		}
		if err := c.Flush(); err != nil {
			break
		}
		if ep := c.ackErr.Load(); ep != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sink error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := c.Close()
	if err == nil {
		t.Fatalf("Close returned no error after sink failure; stats %+v", st)
	}
	srv.Close()
	if calls.Load() == 0 {
		t.Fatal("sink never called")
	}
	if srv.sinkErrs.Load() == 0 {
		t.Fatal("sink errors not counted")
	}
}

// TestServerBadHeader pins that garbage connections are rejected
// without wedging the accept loop.
func TestServerBadHeader(t *testing.T) {
	sink := &collectSink{}
	srv, addr := startServer(t, Config{Sink: sink})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil || buf[0] != StatusBad {
		t.Fatalf("bad header response: %v %#x", err, buf[0])
	}
	conn.Close()

	// The server survives: a well-formed connection still works.
	c, err := Dial(addr, "ok")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(testReqs(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if srv.badFrames.Load() == 0 {
		t.Fatal("bad header not counted")
	}
}

// TestServerMetricsInto pins that the wire metrics land in a Set.
func TestServerMetricsInto(t *testing.T) {
	sink := &collectSink{}
	srv, addr := startServer(t, Config{Sink: sink})
	set := telemetry.NewSet()
	srv.MetricsInto(set, "wire_")

	c, err := Dial(addr, "m")
	if err != nil {
		t.Fatal(err)
	}
	c.SendBatch(testReqs(100))
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	var sb strings.Builder
	if err := set.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"wire_requests_total 100",
		"wire_connections_total 1",
		"wire_dropped_requests_total 0",
		"wire_ingest_latency_seconds_bucket",
		"wire_ingest_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
