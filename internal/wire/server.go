package wire

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"krr/internal/telemetry"
	"krr/internal/trace"
)

// Sink consumes decoded frames. IngestBatch is called once per
// accepted frame from the owning connection's worker goroutine, in
// frame order per connection; reqs is only valid for the duration of
// the call (the buffer is recycled afterwards), so implementations
// must not retain it. Distinct connections call concurrently —
// fleet-style sinks serialize per tenant internally.
type Sink interface {
	IngestBatch(tenant string, reqs []trace.Request) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(tenant string, reqs []trace.Request) error

// IngestBatch calls the function.
func (f SinkFunc) IngestBatch(tenant string, reqs []trace.Request) error {
	return f(tenant, reqs)
}

// DefaultQueueDepth is the per-connection bounded queue, in frames.
// With 4096-record frames that is 1 MiB of queued requests per
// connection before shedding starts.
const DefaultQueueDepth = 16

// Config shapes a Server.
type Config struct {
	// Sink receives accepted frames. Required.
	Sink Sink
	// QueueDepth bounds each connection's ingest queue in frames;
	// frames arriving at a full queue are discarded and acked
	// StatusOverloaded. 0 means DefaultQueueDepth.
	QueueDepth int
}

// Server terminates wire-protocol connections: per connection, a
// reader goroutine decodes frames into pooled batches and a worker
// goroutine feeds them to the sink, with a bounded queue between the
// two. The reader never blocks on a slow sink — it sheds load frame by
// frame once the queue is full — so per-connection memory is capped at
// QueueDepth × frame size no matter how far the sink falls behind.
type Server struct {
	cfg  Config
	pool BatchPool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connsTotal telemetry.Counter
	active     telemetry.Gauge
	frames     telemetry.Counter
	requests   telemetry.Counter
	dropFrames telemetry.Counter
	dropReqs   telemetry.Counter
	badFrames  telemetry.Counter
	sinkErrs   telemetry.Counter
	latency    *telemetry.Histogram
}

// NewServer builds a server over a sink.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Sink == nil {
		return nil, errors.New("wire: config needs a Sink")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	return &Server{
		cfg:   cfg,
		conns: make(map[net.Conn]struct{}),
		// 1µs .. ~1s exponential ladder: frame-granularity sink latency.
		latency: telemetry.NewHistogram(telemetry.ExpBuckets(1e-6, 2, 21)),
	}, nil
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.active.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops accepting, closes every live connection and waits for
// their workers to drain. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// forget removes a finished connection.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.active.Add(-1)
	s.wg.Done()
}

// serveConn runs one connection: header, then the frame loop. The
// reader owns the ack writer (single writer, acks stay in frame
// order); the worker owns sink calls and batch recycling.
func (s *Server) serveConn(conn net.Conn) {
	defer s.forget(conn)
	defer conn.Close()

	br := bufio.NewReaderSize(conn, 1<<18)
	bw := bufio.NewWriterSize(conn, 1<<12)
	tenant, err := ReadHeader(br)
	if err != nil {
		s.badFrames.Inc()
		bw.WriteByte(StatusBad)
		bw.Flush()
		return
	}

	queue := make(chan []trace.Request, s.cfg.QueueDepth)
	var sinkFailed atomic.Bool
	var workerWg sync.WaitGroup
	workerWg.Add(1)
	go func() {
		defer workerWg.Done()
		for batch := range queue {
			if sinkFailed.Load() {
				s.pool.Put(batch)
				continue
			}
			t0 := time.Now()
			err := s.cfg.Sink.IngestBatch(tenant, batch)
			s.latency.Observe(time.Since(t0).Seconds())
			s.pool.Put(batch)
			if err != nil {
				s.sinkErrs.Inc()
				sinkFailed.Store(true)
			}
		}
	}()

	dec := NewDecoder(br, &s.pool)
	for {
		n, err := dec.NextCount()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			s.badFrames.Inc()
			bw.WriteByte(StatusBad)
			break
		}
		if sinkFailed.Load() {
			s.badFrames.Inc()
			bw.WriteByte(StatusBad)
			break
		}
		// Admission control. The reader is this queue's only sender, so
		// the occupancy check cannot race another producer: a full queue
		// here is still full (or fuller) at send time.
		if len(queue) == cap(queue) {
			if err := dec.Discard(n); err != nil {
				s.badFrames.Inc()
				bw.WriteByte(StatusBad)
				break
			}
			s.dropFrames.Inc()
			s.dropReqs.Add(uint64(n))
			bw.WriteByte(StatusOverloaded)
			if err := bw.Flush(); err != nil {
				break
			}
			continue
		}
		batch, err := dec.ReadBatch(n)
		if err != nil {
			s.badFrames.Inc()
			bw.WriteByte(StatusBad)
			break
		}
		queue <- batch
		s.frames.Inc()
		s.requests.Add(uint64(n))
		bw.WriteByte(StatusOK)
		if err := bw.Flush(); err != nil {
			break
		}
	}
	bw.Flush()
	close(queue)
	workerWg.Wait()
}

// Latency returns the per-frame sink latency histogram (seconds).
func (s *Server) Latency() *telemetry.Histogram { return s.latency }

// Dropped returns the total requests shed by overloaded queues.
func (s *Server) Dropped() uint64 { return s.dropReqs.Load() }

// Requests returns the total requests accepted into ingest queues.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// MetricsInto registers the server's metrics under prefix: connection
// and frame counters, drop counters (the overload signal), and the
// ingest latency histogram with p50/p99 gauges.
func (s *Server) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"connections_total", "wire connections accepted", s.connsTotal.Load)
	set.GaugeFunc(prefix+"connections_active", "wire connections currently open", func() float64 {
		return float64(s.active.Load())
	})
	set.CounterFunc(prefix+"frames_total", "frames accepted into ingest queues", s.frames.Load)
	set.CounterFunc(prefix+"requests_total", "requests accepted into ingest queues", s.requests.Load)
	set.CounterFunc(prefix+"dropped_frames_total", "frames shed by full ingest queues", s.dropFrames.Load)
	set.CounterFunc(prefix+"dropped_requests_total", "requests shed by full ingest queues", s.dropReqs.Load)
	set.CounterFunc(prefix+"bad_frames_total", "malformed frames or headers", s.badFrames.Load)
	set.CounterFunc(prefix+"sink_errors_total", "frames rejected by the ingest sink", s.sinkErrs.Load)
	set.RegisterHistogram(prefix+"ingest_latency_seconds", "per-frame sink ingest latency", s.latency)
	set.GaugeFunc(prefix+"ingest_latency_p50_seconds", "median per-frame sink ingest latency", func() float64 {
		return s.latency.Quantile(0.50)
	})
	set.GaugeFunc(prefix+"ingest_latency_p99_seconds", "p99 per-frame sink ingest latency", func() float64 {
		return s.latency.Quantile(0.99)
	})
}
