package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"

	"krr/internal/trace"
)

func testReqs(n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{
			Key:  uint64(i) * 0x9e3779b97f4a7c15,
			Size: uint32(i%4096 + 1),
			Op:   trace.Op(i % 3),
		}
	}
	return reqs
}

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, "tenant-42"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != "tenant-42" {
		t.Fatalf("tenant = %q", got)
	}

	if err := WriteHeader(io.Discard, ""); err == nil {
		t.Fatal("empty tenant accepted")
	}
	if err := WriteHeader(io.Discard, strings.Repeat("x", 256)); err == nil {
		t.Fatal("oversized tenant accepted")
	}
	if _, err := ReadHeader(strings.NewReader("XXXX\x01\x01t")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadHeader(strings.NewReader("KRW1\x07\x01t")); err == nil {
		t.Fatal("bad version accepted")
	}
}

// TestFrameRoundTrip pins both decode paths — the zero-copy memcpy and
// the per-record fallback — to the identical result.
func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 256, 4096} {
		reqs := testReqs(n)
		frame := AppendFrame(nil, reqs)
		if len(frame) != 4+n*RecordSize {
			t.Fatalf("n=%d: frame length %d, want %d", n, len(frame), 4+n*RecordSize)
		}
		for _, fallback := range []bool{false, true} {
			dec := NewDecoder(bufio.NewReader(bytes.NewReader(frame)), nil)
			dec.forceFallback = fallback
			count, err := dec.NextCount()
			if err != nil || count != n {
				t.Fatalf("n=%d fallback=%v: NextCount = %d, %v", n, fallback, count, err)
			}
			batch, err := dec.ReadBatch(count)
			if err != nil {
				t.Fatalf("n=%d fallback=%v: ReadBatch: %v", n, fallback, err)
			}
			if len(batch) != n {
				t.Fatalf("n=%d fallback=%v: decoded %d", n, fallback, len(batch))
			}
			for i := range batch {
				if batch[i] != reqs[i] {
					t.Fatalf("n=%d fallback=%v: record %d = %+v, want %+v", n, fallback, i, batch[i], reqs[i])
				}
			}
			dec.Recycle(batch)
			if _, err := dec.NextCount(); err != io.EOF {
				t.Fatalf("n=%d fallback=%v: trailing read = %v, want EOF", n, fallback, err)
			}
		}
	}
}

// TestOversizedCountRejected pins the over-allocation guard: a hostile
// length prefix errors out before any buffer is sized from it.
func TestOversizedCountRejected(t *testing.T) {
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, MaxFrameRecords+1)
	dec := NewDecoder(bufio.NewReader(bytes.NewReader(frame)), nil)
	if _, err := dec.NextCount(); err == nil {
		t.Fatal("count > MaxFrameRecords accepted")
	}
	frame = binary.LittleEndian.AppendUint32(frame[:0], 0xffffffff)
	dec = NewDecoder(bufio.NewReader(bytes.NewReader(frame)), nil)
	if _, err := dec.NextCount(); err == nil {
		t.Fatal("count 2^32-1 accepted")
	}
}

// TestTruncatedFrame pins truncation behaviour: mid-prefix and
// mid-payload cuts are ErrBadFrame, a cut exactly at a frame boundary
// is clean EOF.
func TestTruncatedFrame(t *testing.T) {
	reqs := testReqs(10)
	frame := AppendFrame(nil, reqs)
	for _, cut := range []int{1, 3, 4 + 5, len(frame) - 1} {
		for _, fallback := range []bool{false, true} {
			dec := NewDecoder(bufio.NewReader(bytes.NewReader(frame[:cut])), nil)
			dec.forceFallback = fallback
			n, err := dec.NextCount()
			if err == nil {
				_, err = dec.ReadBatch(n)
			}
			if err == nil {
				t.Fatalf("cut=%d fallback=%v: truncated frame accepted", cut, fallback)
			}
		}
	}
	dec := NewDecoder(bufio.NewReader(bytes.NewReader(frame)), nil)
	n, _ := dec.NextCount()
	b, err := dec.ReadBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	dec.Recycle(b)
	if _, err := dec.NextCount(); err != io.EOF {
		t.Fatalf("frame-boundary end = %v, want io.EOF", err)
	}
}

// TestDiscard pins the shedding path: Discard consumes exactly the
// frame payload so the next frame parses.
func TestDiscard(t *testing.T) {
	frame := AppendFrame(nil, testReqs(100))
	frame = AppendFrame(frame, testReqs(3))
	dec := NewDecoder(bufio.NewReader(bytes.NewReader(frame)), nil)
	n, err := dec.NextCount()
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Discard(n); err != nil {
		t.Fatal(err)
	}
	n, err = dec.NextCount()
	if err != nil || n != 3 {
		t.Fatalf("after discard: count = %d, %v", n, err)
	}
	b, err := dec.ReadBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	dec.Recycle(b)
}

// TestDecodeHotPathAllocFree pins the tentpole claim: decoding frames
// through the pooled batch cycle allocates nothing per request — and
// nothing at all in steady state — on either decode path.
func TestDecodeHotPathAllocFree(t *testing.T) {
	const perFrame = 4096
	frame := AppendFrame(nil, testReqs(perFrame))
	stream := bytes.NewReader(nil)
	br := bufio.NewReaderSize(stream, 1<<18)
	pool := &BatchPool{}
	for _, fallback := range []bool{false, true} {
		dec := NewDecoder(br, pool)
		dec.forceFallback = fallback
		// Warm the pool and the fallback scratch.
		stream.Reset(frame)
		br.Reset(stream)
		n, _ := dec.NextCount()
		b, err := dec.ReadBatch(n)
		if err != nil {
			t.Fatal(err)
		}
		dec.Recycle(b)

		var sink uint64
		allocs := testing.AllocsPerRun(100, func() {
			stream.Reset(frame)
			br.Reset(stream)
			n, err := dec.NextCount()
			if err != nil {
				t.Fatal(err)
			}
			batch, err := dec.ReadBatch(n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range batch {
				sink += batch[i].Key
			}
			dec.Recycle(batch)
		})
		if allocs != 0 {
			t.Fatalf("fallback=%v: %v allocs per %d-request frame, want 0", fallback, allocs, perFrame)
		}
		_ = sink
	}
}

// TestBatchPool pins the free-list behaviour.
func TestBatchPool(t *testing.T) {
	var p BatchPool
	b := p.Get(100)
	if cap(b) < 100 {
		t.Fatalf("cap %d < 100", cap(b))
	}
	p.Put(b)
	b2 := p.Get(50)
	if cap(b2) < 100 {
		t.Fatal("pool did not recycle the larger buffer")
	}
	p.Put(b2)
	// Bounded: pounding Put never grows past maxPooledBatches.
	for i := 0; i < 3*maxPooledBatches; i++ {
		p.Put(make([]trace.Request, 0, 8))
	}
	if len(p.free) > maxPooledBatches {
		t.Fatalf("free list %d > bound %d", len(p.free), maxPooledBatches)
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	const perFrame = 4096
	frame := AppendFrame(nil, testReqs(perFrame))
	stream := bytes.NewReader(nil)
	br := bufio.NewReaderSize(stream, 1<<18)
	for _, bench := range []struct {
		name     string
		fallback bool
	}{{"zerocopy", false}, {"fallback", true}} {
		b.Run(bench.name, func(b *testing.B) {
			if bench.name == "zerocopy" && !zeroCopy {
				b.Skip("layout mismatch on this platform")
			}
			dec := NewDecoder(br, &BatchPool{})
			dec.forceFallback = bench.fallback
			b.SetBytes(perFrame * RecordSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stream.Reset(frame)
				br.Reset(stream)
				n, _ := dec.NextCount()
				batch, err := dec.ReadBatch(n)
				if err != nil {
					b.Fatal(err)
				}
				dec.Recycle(batch)
			}
		})
	}
}
