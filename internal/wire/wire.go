// Package wire implements the batched binary ingest protocol that
// turns krrserve's model hosting into a servable data plane. The
// HTTP/NDJSON path decodes a JSON object per request; this protocol
// moves fixed-width records in length-prefixed frames over raw TCP and
// decodes a whole frame with one copy into a pooled []trace.Request —
// zero per-request allocations, and on little-endian machines zero
// per-record byte shuffling (the wire record layout matches the
// in-memory trace.Request layout, so a frame is read straight off the
// socket into the batch's backing array).
//
// # Stream layout
//
// A connection carries one header followed by frames until the client
// closes its write side:
//
//	header  magic   [4]byte  "KRW1"
//	        version uint8    1
//	        tlen    uint8    tenant id length (1..255)
//	        tenant  [tlen]byte
//	frame   count   uint32   records in the frame (LE, <= MaxFrameRecords)
//	        records count × { key uint64 LE, size uint32 LE, op uint8, pad [3]byte }
//
// The count prefix is the frame's length prefix: the payload is
// exactly count × RecordSize bytes. Bounding count before any
// allocation means a hostile length prefix can never drive an
// oversized allocation — the decoder errors out instead.
//
// # Acks and backpressure
//
// The server writes one status byte per frame, in frame order:
// StatusOK when the frame was accepted into the connection's bounded
// queue, StatusOverloaded when the queue was full and the frame was
// dropped (read and discarded, counted, never buffered), StatusBad
// before closing on a malformed frame. Load shedding is therefore
// explicit and deterministic: memory per connection is capped by the
// queue depth, drops are visible to both sides, and a client that
// wants lossless delivery throttles on the OK ack stream instead of
// relying on unbounded server buffering.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"unsafe"

	"krr/internal/trace"
)

// Magic opens every connection.
var Magic = [4]byte{'K', 'R', 'W', '1'}

// Version is the protocol version this package speaks.
const Version = 1

// RecordSize is the fixed wire size of one request record.
const RecordSize = 16

// MaxFrameRecords caps the count prefix of a single frame: 64Ki
// records = 1 MiB of payload. Anything larger is a protocol error,
// rejected before any buffer is sized from the untrusted count.
const MaxFrameRecords = 1 << 16

// MaxTenantLen caps the tenant id (the header length field is a byte).
const MaxTenantLen = 255

// Frame status bytes, one per frame, written in frame order.
const (
	// StatusOK: the frame was accepted into the ingest queue.
	StatusOK byte = 0
	// StatusOverloaded: the bounded queue was full; the frame was
	// discarded and counted. Later frames may still be accepted.
	StatusOverloaded byte = 1
	// StatusBad: the frame (or stream) was malformed; the server closes
	// the connection after sending it.
	StatusBad byte = 0xff
)

// ErrBadFrame reports a malformed wire stream.
var ErrBadFrame = errors.New("wire: bad frame")

// ErrOverloaded reports frames shed by the server's bounded queue; the
// client surfaces it once per connection in Stats form rather than per
// frame.
var ErrOverloaded = errors.New("wire: server overloaded, frames dropped")

// headerSize is the fixed prefix of the connection header.
const headerSize = 4 + 1 + 1

// zeroCopy reports whether trace.Request's in-memory layout matches
// the wire record layout byte for byte — the field offsets line up and
// the machine is little-endian — so frames can be memcpy'd (indeed
// read directly off the socket) into []trace.Request. On any platform
// where this fails the codec falls back to per-record field decoding;
// both paths are exercised by tests regardless of the host.
var zeroCopy = func() bool {
	var r trace.Request
	if unsafe.Sizeof(r) != RecordSize ||
		unsafe.Offsetof(r.Key) != 0 ||
		unsafe.Offsetof(r.Size) != 8 ||
		unsafe.Offsetof(r.Op) != 12 {
		return false
	}
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02 // little-endian host
}()

// reqBytes views a request slice as its backing bytes. Only called
// when zeroCopy is true.
func reqBytes(reqs []trace.Request) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&reqs[0])), len(reqs)*RecordSize)
}

// WriteHeader writes the connection header for a tenant.
func WriteHeader(w io.Writer, tenant string) error {
	if tenant == "" || len(tenant) > MaxTenantLen {
		return fmt.Errorf("%w: tenant id length %d out of [1, %d]", ErrBadFrame, len(tenant), MaxTenantLen)
	}
	var hdr [headerSize]byte
	copy(hdr[:4], Magic[:])
	hdr[4] = Version
	hdr[5] = byte(len(tenant))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, tenant)
	return err
}

// ReadHeader validates the connection header and returns the tenant
// id.
func ReadHeader(r io.Reader) (string, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", fmt.Errorf("%w: short header: %v", ErrBadFrame, err)
	}
	if [4]byte(hdr[:4]) != Magic {
		return "", fmt.Errorf("%w: magic %q", ErrBadFrame, hdr[:4])
	}
	if hdr[4] != Version {
		return "", fmt.Errorf("%w: version %d (want %d)", ErrBadFrame, hdr[4], Version)
	}
	tlen := int(hdr[5])
	if tlen == 0 {
		return "", fmt.Errorf("%w: empty tenant id", ErrBadFrame)
	}
	tenant := make([]byte, tlen)
	if _, err := io.ReadFull(r, tenant); err != nil {
		return "", fmt.Errorf("%w: short tenant id: %v", ErrBadFrame, err)
	}
	return string(tenant), nil
}

// AppendFrame appends one encoded frame carrying reqs to dst and
// returns the extended slice. Callers reuse dst across frames to keep
// encoding allocation-free. Panics if len(reqs) > MaxFrameRecords
// (a programming error — split batches first).
func AppendFrame(dst []byte, reqs []trace.Request) []byte {
	if len(reqs) > MaxFrameRecords {
		panic("wire: frame larger than MaxFrameRecords")
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(reqs)))
	for i := range reqs {
		r := &reqs[i]
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		dst = binary.LittleEndian.AppendUint32(dst, r.Size)
		dst = append(dst, byte(r.Op), 0, 0, 0)
	}
	return dst
}

// BatchPool recycles frame-sized []trace.Request buffers so steady-
// state decoding allocates nothing. It is a mutex-guarded free list
// rather than a sync.Pool: Put-ing a slice into a sync.Pool boxes the
// slice header (one heap allocation per frame), while pushing onto a
// preallocated list is free. The list is bounded, so a burst of large
// frames cannot turn the pool into a leak. The zero value is ready to
// use; one pool may serve many connections.
type BatchPool struct {
	mu   sync.Mutex
	free [][]trace.Request
}

// maxPooledBatches bounds the free list; with MaxFrameRecords-sized
// buffers this caps pool memory at 64 MiB in the absolute worst case
// (typical frames are 64 KiB).
const maxPooledBatches = 64

// Get returns a zero-length batch with capacity at least n.
func (bp *BatchPool) Get(n int) []trace.Request {
	bp.mu.Lock()
	if last := len(bp.free) - 1; last >= 0 {
		b := bp.free[last]
		bp.free[last] = nil
		bp.free = bp.free[:last]
		bp.mu.Unlock()
		if cap(b) >= n {
			return b[:0]
		}
		// Undersized leftover from a smaller-frame era: let it go and
		// size up. Uniform frame streams never hit this branch twice.
		return make([]trace.Request, 0, n)
	}
	bp.mu.Unlock()
	return make([]trace.Request, 0, n)
}

// Put recycles a batch.
func (bp *BatchPool) Put(b []trace.Request) {
	if cap(b) == 0 {
		return
	}
	bp.mu.Lock()
	if len(bp.free) < maxPooledBatches {
		if bp.free == nil {
			bp.free = make([][]trace.Request, 0, maxPooledBatches)
		}
		bp.free = append(bp.free, b[:0])
	}
	bp.mu.Unlock()
}

// Decoder reads frames from one connection's stream. It owns no
// buffers beyond a scratch for the non-zero-copy fallback; frame
// batches come from the shared pool.
type Decoder struct {
	br      *bufio.Reader
	pool    *BatchPool
	scratch []byte
	// forceFallback disables the zero-copy path (tests pin both paths
	// on every platform).
	forceFallback bool
}

// NewDecoder wraps a buffered reader. pool may be shared across
// connections; nil means an internal private pool.
func NewDecoder(br *bufio.Reader, pool *BatchPool) *Decoder {
	if pool == nil {
		pool = &BatchPool{}
	}
	return &Decoder{br: br, pool: pool}
}

// NextCount reads and bounds-checks the next frame's record count.
// io.EOF (clean, at a frame boundary) marks the end of the stream; any
// truncation inside the prefix is ErrBadFrame.
func (d *Decoder) NextCount() (int, error) {
	// Peek+Discard instead of io.ReadFull into a local: a stack array
	// passed through the io.Reader interface escapes, and that one
	// 4-byte heap allocation per frame is the difference between an
	// allocation-free hot path and not.
	pfx, err := d.br.Peek(4)
	if err != nil {
		if errors.Is(err, io.EOF) && len(pfx) == 0 {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: truncated count prefix: %v", ErrBadFrame, err)
	}
	n := binary.LittleEndian.Uint32(pfx)
	d.br.Discard(4)
	if n > MaxFrameRecords {
		return 0, fmt.Errorf("%w: frame count %d exceeds max %d", ErrBadFrame, n, MaxFrameRecords)
	}
	return int(n), nil
}

// ReadBatch reads the payload of a frame whose count NextCount just
// returned, decoded into a pooled batch. The caller must return the
// batch to the pool (Recycle) once consumed. On little-endian hosts
// the payload is read directly into the batch's backing array — the
// "decode" is the socket read itself.
func (d *Decoder) ReadBatch(n int) ([]trace.Request, error) {
	batch := d.pool.Get(n)[:n]
	if n == 0 {
		return batch, nil
	}
	if zeroCopy && !d.forceFallback {
		if _, err := io.ReadFull(d.br, reqBytes(batch)); err != nil {
			d.pool.Put(batch)
			return nil, fmt.Errorf("%w: truncated frame payload: %v", ErrBadFrame, err)
		}
		return batch, nil
	}
	need := n * RecordSize
	if cap(d.scratch) < need {
		d.scratch = make([]byte, need)
	}
	buf := d.scratch[:need]
	if _, err := io.ReadFull(d.br, buf); err != nil {
		d.pool.Put(batch)
		return nil, fmt.Errorf("%w: truncated frame payload: %v", ErrBadFrame, err)
	}
	for i := range batch {
		rec := buf[i*RecordSize:]
		batch[i] = trace.Request{
			Key:  binary.LittleEndian.Uint64(rec[0:8]),
			Size: binary.LittleEndian.Uint32(rec[8:12]),
			Op:   trace.Op(rec[12]),
		}
	}
	return batch, nil
}

// Recycle returns a batch obtained from ReadBatch to the pool.
func (d *Decoder) Recycle(b []trace.Request) { d.pool.Put(b) }

// Discard consumes and drops the payload of a frame whose count
// NextCount just returned — the overload shedding path. No batch is
// allocated or pulled from the pool.
func (d *Decoder) Discard(n int) error {
	if _, err := d.br.Discard(n * RecordSize); err != nil {
		return fmt.Errorf("%w: truncated frame payload: %v", ErrBadFrame, err)
	}
	return nil
}
