package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"krr/internal/trace"
)

// FuzzReadHeader pins that arbitrary bytes never panic the header
// parser and that a successful parse round-trips.
func FuzzReadHeader(f *testing.F) {
	var seed bytes.Buffer
	WriteHeader(&seed, "tenant")
	f.Add(seed.Bytes())
	f.Add([]byte("KRW1"))
	f.Add([]byte("KRW1\x01\x00"))
	f.Add([]byte("KRW1\x01\xfftoo-short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tenant, err := ReadHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := WriteHeader(&out, tenant); werr != nil {
			t.Fatalf("accepted tenant %q does not re-encode: %v", tenant, werr)
		}
		if !bytes.HasPrefix(data, out.Bytes()) {
			t.Fatalf("parsed header %x is not a prefix of input %x", out.Bytes(), data)
		}
	})
}

// FuzzDecoder pins the frame loop against hostile streams: truncated
// frames, bad counts and garbage must error (never panic), oversized
// length prefixes must be rejected before any allocation is sized from
// them, and whatever decodes must survive an encode→decode round trip
// record for record (wire padding bytes are ignored on decode, so the
// round trip is semantic, not byte-exact).
func FuzzDecoder(f *testing.F) {
	f.Add(AppendFrame(nil, testReqs(3)), false)
	f.Add(AppendFrame(AppendFrame(nil, testReqs(1)), testReqs(0)), true)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, false)
	f.Add([]byte{1, 0, 0, 0, 42}, true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, data []byte, fallback bool) {
		pool := &BatchPool{}
		dec := NewDecoder(bufio.NewReader(bytes.NewReader(data)), pool)
		dec.forceFallback = fallback
		var all []trace.Request
		var reenc []byte
		for {
			n, err := dec.NextCount()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejected, fine — just must not panic
			}
			if n > MaxFrameRecords {
				t.Fatalf("NextCount accepted %d > MaxFrameRecords", n)
			}
			batch, err := dec.ReadBatch(n)
			if err != nil {
				return
			}
			if len(batch) != n {
				t.Fatalf("ReadBatch(%d) returned %d records", n, len(batch))
			}
			all = append(all, batch...)
			reenc = AppendFrame(reenc, batch)
			dec.Recycle(batch)
		}
		// Clean EOF: the decoded stream must round-trip through our own
		// encoder on the opposite decode path.
		dec2 := NewDecoder(bufio.NewReader(bytes.NewReader(reenc)), pool)
		dec2.forceFallback = !fallback
		i := 0
		for {
			n, err := dec2.NextCount()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("re-decode count: %v", err)
			}
			batch, err := dec2.ReadBatch(n)
			if err != nil {
				t.Fatalf("re-decode batch: %v", err)
			}
			for _, r := range batch {
				if r != all[i] {
					t.Fatalf("record %d: round trip %+v != %+v", i, r, all[i])
				}
				i++
			}
			dec2.Recycle(batch)
		}
		if i != len(all) {
			t.Fatalf("round trip decoded %d records, want %d", i, len(all))
		}
	})
}

// FuzzDecoderDiscard pins the shedding path against the same hostile
// streams: Discard must consume exactly what ReadBatch would have.
func FuzzDecoderDiscard(f *testing.F) {
	f.Add(AppendFrame(AppendFrame(nil, testReqs(5)), testReqs(2)))
	f.Add([]byte{0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		read := NewDecoder(bufio.NewReader(bytes.NewReader(data)), nil)
		skip := NewDecoder(bufio.NewReader(bytes.NewReader(data)), nil)
		for {
			n1, err1 := read.NextCount()
			n2, err2 := skip.NextCount()
			if (err1 == nil) != (err2 == nil) || n1 != n2 {
				t.Fatalf("count divergence: %d,%v vs %d,%v", n1, err1, n2, err2)
			}
			if err1 != nil {
				return
			}
			var batch []trace.Request
			batch, err1 = read.ReadBatch(n1)
			err2 = skip.Discard(n2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("payload divergence: %v vs %v", err1, err2)
			}
			if err1 != nil {
				return
			}
			read.Recycle(batch)
		}
	})
}
