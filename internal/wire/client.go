package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"krr/internal/telemetry"
	"krr/internal/trace"
)

// latencyRing sizes the in-flight timestamp ring for ack-latency
// sampling. Frames deeper in flight than the ring simply go unsampled
// (their slot is reused; the seq tag detects the reuse).
const latencyRing = 4096

// Stats summarizes one client connection.
type Stats struct {
	// Frames and Requests count everything sent.
	Frames, Requests uint64
	// AckedFrames/AckedRequests were accepted by the server.
	AckedFrames, AckedRequests uint64
	// DroppedFrames/DroppedRequests were shed by the server's bounded
	// queue (StatusOverloaded).
	DroppedFrames, DroppedRequests uint64
}

// Client speaks the wire protocol from the load-generator side: one
// goroutine calls SendBatch/Flush/Close, while an internal reader
// consumes the server's ack stream, keeping drop accounting and
// ack-latency samples without ever blocking the send path.
type Client struct {
	conn  net.Conn
	bw    *bufio.Writer
	enc   []byte
	start time.Time

	seq    uint64 // frames written (send side only)
	reqs   uint64
	sendMu sync.Mutex // guards the send path against concurrent misuse

	// counts is a FIFO of per-frame record counts, pushed by the
	// sender and popped by the ack reader (acks arrive in frame
	// order). Bounded in practice by frames in flight.
	countMu sync.Mutex
	counts  []int
	head    int

	// tagged timestamp ring: slot i holds the send time of frame seq
	// when tags[i] == seq, letting the ack reader compute frame→ack
	// round trips lock-free.
	tags  [latencyRing]atomic.Uint64
	times [latencyRing]atomic.Int64

	// Latency, when non-nil, receives one ack round-trip observation
	// (seconds) per sampled frame. Set it before the first SendBatch.
	Latency *telemetry.Histogram

	ackWg       sync.WaitGroup
	ackedFrames atomic.Uint64
	ackedReqs   atomic.Uint64
	dropFrames  atomic.Uint64
	dropReqs    atomic.Uint64
	ackErr      atomic.Pointer[error]
}

// Dial connects to a wire server and writes the tenant header.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, tenant)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection: it writes the tenant
// header and starts the ack reader. The client owns conn afterwards.
func NewClient(conn net.Conn, tenant string) (*Client, error) {
	c := &Client{
		conn:  conn,
		bw:    bufio.NewWriterSize(conn, 1<<16),
		start: time.Now(),
	}
	if err := WriteHeader(c.bw, tenant); err != nil {
		return nil, err
	}
	c.ackWg.Add(1)
	go c.readAcks()
	return c, nil
}

// popCount removes the oldest in-flight frame's record count.
func (c *Client) popCount() int {
	c.countMu.Lock()
	defer c.countMu.Unlock()
	if c.head >= len(c.counts) {
		return 0 // server acked more frames than we sent: broken peer
	}
	n := c.counts[c.head]
	c.head++
	// Compact once the consumed prefix dominates, keeping the FIFO
	// allocation proportional to frames in flight.
	if c.head > 1024 && c.head*2 > len(c.counts) {
		c.counts = append(c.counts[:0], c.counts[c.head:]...)
		c.head = 0
	}
	return n
}

// pushCount records a sent frame's record count and timestamp.
func (c *Client) pushCount(seq uint64, n int) {
	c.countMu.Lock()
	c.counts = append(c.counts, n)
	c.countMu.Unlock()
	slot := seq % latencyRing
	c.times[slot].Store(int64(time.Since(c.start)))
	c.tags[slot].Store(seq)
}

// readAcks drains the server's status stream until EOF.
func (c *Client) readAcks() {
	defer c.ackWg.Done()
	br := bufio.NewReaderSize(c.conn, 1<<12)
	var ackSeq uint64
	for {
		status, err := br.ReadByte()
		if err != nil {
			if err != io.EOF {
				e := fmt.Errorf("wire: ack stream: %w", err)
				c.ackErr.Store(&e)
			}
			return
		}
		n := c.popCount()
		switch status {
		case StatusOK:
			c.ackedFrames.Add(1)
			c.ackedReqs.Add(uint64(n))
			slot := ackSeq % latencyRing
			if c.tags[slot].Load() == ackSeq && c.Latency != nil {
				c.Latency.Observe(float64(int64(time.Since(c.start))-c.times[slot].Load()) / 1e9)
			}
		case StatusOverloaded:
			c.dropFrames.Add(1)
			c.dropReqs.Add(uint64(n))
		default:
			e := fmt.Errorf("%w: server reported status %#x", ErrBadFrame, status)
			c.ackErr.Store(&e)
			return
		}
		ackSeq++
	}
}

// SendBatch encodes reqs as one or more frames (splitting at
// MaxFrameRecords) and writes them to the connection. The encode
// buffer is reused across calls; steady-state sends allocate nothing.
func (c *Client) SendBatch(reqs []trace.Request) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	for len(reqs) > 0 {
		n := len(reqs)
		if n > MaxFrameRecords {
			n = MaxFrameRecords
		}
		c.enc = AppendFrame(c.enc[:0], reqs[:n])
		if _, err := c.bw.Write(c.enc); err != nil {
			return err
		}
		c.pushCount(c.seq, n)
		c.seq++
		c.reqs += uint64(n)
		reqs = reqs[n:]
	}
	return nil
}

// Flush pushes buffered frames to the socket.
func (c *Client) Flush() error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.bw.Flush()
}

// Stats returns the connection's current accounting. Ack-side numbers
// trail the send side by the frames still in flight.
func (c *Client) Stats() Stats {
	c.sendMu.Lock()
	frames, reqs := c.seq, c.reqs
	c.sendMu.Unlock()
	return Stats{
		Frames:          frames,
		Requests:        reqs,
		AckedFrames:     c.ackedFrames.Load(),
		AckedRequests:   c.ackedReqs.Load(),
		DroppedFrames:   c.dropFrames.Load(),
		DroppedRequests: c.dropReqs.Load(),
	}
}

// Close flushes, half-closes the write side, waits for the server to
// ack every in-flight frame (the ack stream ends when the server
// finishes the connection), and closes the socket. The returned Stats
// cover the whole connection; the error reports protocol or transport
// failures, not overload drops — those are in the Stats.
func (c *Client) Close() (Stats, error) {
	c.sendMu.Lock()
	flushErr := c.bw.Flush()
	c.sendMu.Unlock()
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.conn.(closeWriter); ok {
		cw.CloseWrite()
	} else {
		// No half-close (e.g. an in-memory pipe): the server sees EOF
		// only on full close; drop the remaining acks.
		c.conn.Close()
	}
	c.ackWg.Wait()
	c.conn.Close()
	st := c.Stats()
	if flushErr != nil {
		return st, flushErr
	}
	if ep := c.ackErr.Load(); ep != nil {
		return st, *ep
	}
	return st, nil
}
