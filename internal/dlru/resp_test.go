// External test package: redislike's duel layer imports dlru for its
// shadow judge, so an in-package test importing redislike would cycle.
package dlru_test

import (
	"strconv"
	"testing"

	"krr/internal/dlru"
	"krr/internal/redislike"
	"krr/internal/trace"
	"krr/internal/workload"
)

// TestControllerDrivesRedisOverRESP is the full DLRU deployment story:
// the controller shadows the request stream with KRR profilers and
// reconfigures a live redislike server's maxmemory-samples over the
// wire via CONFIG SET — exactly how DLRU manages a real Redis.
func TestControllerDrivesRedisOverRESP(t *testing.T) {
	const budget = 400
	const objCost = 200 + 48
	srv := redislike.NewServer(redislike.Config{
		MaxMemory: budget * objCost,
		Samples:   32,
		Seed:      5,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := redislike.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	tunable := redislike.NewTunableClient(client)

	ctl, err := dlru.New(dlru.Config{
		BudgetObjects: budget,
		Candidates:    []int{1, 32},
		Window:        5_000,
		SamplingRate:  0.5,
		Seed:          3,
	}, tunable)
	if err != nil {
		t.Fatal(err)
	}
	// New resets the live server to the first candidate over RESP.
	if v, _ := client.ConfigGet("maxmemory-samples"); v != "1" {
		t.Fatalf("initial maxmemory-samples = %q", v)
	}

	// A loop larger than the budget: the controller must keep K=1.
	g := workload.NewLoop(800, nil)
	if err := ctl.ProcessAll(trace.LimitReader(g, 25_000)); err != nil {
		t.Fatal(err)
	}
	if err := tunable.Err(); err != nil {
		t.Fatal(err)
	}
	if got := ctl.CurrentK(); got != 1 {
		t.Fatalf("controller K = %d, want 1 on a loop", got)
	}
	v, err := client.ConfigGet("maxmemory-samples")
	if err != nil || v != strconv.Itoa(ctl.CurrentK()) {
		t.Fatalf("server samples %q diverged from controller %d (err %v)", v, ctl.CurrentK(), err)
	}
	// The server really served the stream.
	if n, _ := client.Do("DBSIZE"); n == "0" {
		t.Fatal("server holds no keys")
	}
}
