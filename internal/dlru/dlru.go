// Package dlru implements a DLRU-style controller (Wang, Yang & Wang,
// MEMSYS '20 — the paper's motivating application, §1): because
// random sampling-based eviction has no rigid ordering structure, the
// sampling size K can be reconfigured online, and KRR makes the
// decision cheap — one spatially-sampled shadow profiler per candidate
// K predicts the miss ratio the production cache *would* have at its
// current budget, and the controller switches the live cache to the
// argmin.
package dlru

import (
	"errors"
	"fmt"
	"io"

	"krr/internal/core"
	"krr/internal/trace"
)

// Tunable is the control surface of a live cache whose eviction sampling
// size can change online (e.g. *simulator.KLRU, or a Redis CONFIG SET
// maxmemory-samples adapter).
type Tunable interface {
	Access(req trace.Request) bool
	SetSamplingSize(k int)
}

// Decision records one controller evaluation.
type Decision struct {
	// AtRequest is the request count when the decision was taken.
	AtRequest uint64
	// ChosenK is the selected sampling size.
	ChosenK int
	// Predicted maps each candidate K to its predicted miss ratio.
	Predicted map[int]float64
	// Switched reports whether the live cache was reconfigured.
	Switched bool
}

// Config assembles a Controller.
type Config struct {
	// BudgetObjects is the live cache's capacity in objects — the
	// point on each candidate's MRC that is compared.
	BudgetObjects uint64
	// Candidates are the sampling sizes considered (default
	// 1,2,4,8,16,32).
	Candidates []int
	// Window is the number of requests between decisions (default
	// 100k).
	Window int
	// SamplingRate is the shadow profilers' spatial sampling rate
	// (default 0.01).
	SamplingRate float64
	// MinImprovement is the miss-ratio margin a new K must win by
	// before the controller switches (hysteresis, default 0.005).
	MinImprovement float64
	// Seed fixes profiler randomness.
	Seed uint64
}

func (c *Config) fill() error {
	if c.BudgetObjects == 0 {
		return errors.New("dlru: BudgetObjects required")
	}
	if len(c.Candidates) == 0 {
		c.Candidates = []int{1, 2, 4, 8, 16, 32}
	}
	for _, k := range c.Candidates {
		if k < 1 {
			return fmt.Errorf("dlru: candidate K %d invalid", k)
		}
	}
	if c.Window <= 0 {
		c.Window = 100_000
	}
	if c.SamplingRate <= 0 || c.SamplingRate > 1 {
		c.SamplingRate = 0.01
	}
	if c.MinImprovement < 0 {
		c.MinImprovement = 0.005
	}
	return nil
}

// Controller shadows a request stream with one KRR profiler per
// candidate K and periodically reconfigures the attached cache.
type Controller struct {
	cfg       Config
	cache     Tunable // may be nil (advisory mode)
	profilers map[int]*core.Profiler
	count     uint64
	currentK  int
	decisions []Decision
}

// New builds a controller driving cache (nil for advisory-only use).
// The live cache starts at the first candidate.
func New(cfg Config, cache Tunable) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctl := &Controller{cfg: cfg, cache: cache, profilers: make(map[int]*core.Profiler)}
	for i, k := range cfg.Candidates {
		rate := cfg.SamplingRate
		p, err := core.NewProfiler(core.Config{K: k, Seed: cfg.Seed + uint64(i)*131, SamplingRate: rate})
		if err != nil {
			return nil, err
		}
		ctl.profilers[k] = p
	}
	ctl.currentK = cfg.Candidates[0]
	if cache != nil {
		cache.SetSamplingSize(ctl.currentK)
	}
	return ctl, nil
}

// CurrentK returns the sampling size currently in force.
func (c *Controller) CurrentK() int { return c.currentK }

// Decisions returns the decision log.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Predictions returns each candidate's current predicted miss ratio
// at the configured budget.
func (c *Controller) Predictions() map[int]float64 {
	out := make(map[int]float64, len(c.profilers))
	for k, p := range c.profilers {
		out[k] = p.ObjectMRC().Eval(c.cfg.BudgetObjects)
	}
	return out
}

// Process forwards one request to the live cache (if any) and the
// shadow profilers, reconfiguring at window boundaries. It returns
// the live cache's hit result (false in advisory mode).
func (c *Controller) Process(req trace.Request) bool {
	hit := false
	if c.cache != nil {
		hit = c.cache.Access(req)
	}
	for _, p := range c.profilers {
		p.Process(req)
	}
	c.count++
	if c.count%uint64(c.cfg.Window) == 0 {
		c.decide()
	}
	return hit
}

// ProcessAll drains a reader.
func (c *Controller) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		c.Process(req)
	}
}

func (c *Controller) decide() {
	pred := c.Predictions()
	bestK, bestMiss := c.currentK, pred[c.currentK]
	for _, k := range c.cfg.Candidates {
		if pred[k] < bestMiss {
			bestK, bestMiss = k, pred[k]
		}
	}
	switched := false
	if bestK != c.currentK && pred[c.currentK]-bestMiss > c.cfg.MinImprovement {
		c.currentK = bestK
		if c.cache != nil {
			c.cache.SetSamplingSize(bestK)
		}
		switched = true
	}
	c.decisions = append(c.decisions, Decision{
		AtRequest: c.count,
		ChosenK:   c.currentK,
		Predicted: pred,
		Switched:  switched,
	})
}
