// Package dlru implements a DLRU-style controller (Wang, Yang & Wang,
// MEMSYS '20 — the paper's motivating application, §1): because
// random sampling-based eviction has no rigid ordering structure, the
// sampling size K can be reconfigured online, and KRR makes the
// decision cheap — one spatially-sampled shadow profiler per candidate
// K predicts the miss ratio the production cache *would* have at its
// current budget, and the controller switches the live cache to the
// argmin.
package dlru

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"krr/internal/core"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// Tunable is the control surface of a live cache whose eviction sampling
// size can change online (e.g. *simulator.KLRU, or a Redis CONFIG SET
// maxmemory-samples adapter).
type Tunable interface {
	Access(req trace.Request) bool
	SetSamplingSize(k int)
}

// Decision records one controller evaluation.
type Decision struct {
	// AtRequest is the request count when the decision was taken.
	AtRequest uint64
	// BudgetObjects is the cache budget the candidates were compared
	// at — it can change between decisions when a fleet allocation
	// retargets the controller.
	BudgetObjects uint64
	// ChosenK is the selected sampling size.
	ChosenK int
	// Predicted maps each candidate K to its predicted miss ratio.
	Predicted map[int]float64
	// Switched reports whether the live cache was reconfigured.
	Switched bool
}

// Config assembles a Controller.
type Config struct {
	// BudgetObjects is the live cache's capacity in objects — the
	// point on each candidate's MRC that is compared.
	BudgetObjects uint64
	// Candidates are the sampling sizes considered (default
	// 1,2,4,8,16,32).
	Candidates []int
	// Window is the number of requests between decisions (default
	// 100k).
	Window int
	// SamplingRate is the shadow profilers' spatial sampling rate
	// (default 0.01).
	SamplingRate float64
	// MinImprovement is the miss-ratio margin a new K must win by
	// before the controller switches (hysteresis, default 0.005).
	MinImprovement float64
	// Seed fixes profiler randomness.
	Seed uint64
}

func (c *Config) fill() error {
	if c.BudgetObjects == 0 {
		return errors.New("dlru: BudgetObjects required")
	}
	if len(c.Candidates) == 0 {
		c.Candidates = []int{1, 2, 4, 8, 16, 32}
	}
	for _, k := range c.Candidates {
		if k < 1 {
			return fmt.Errorf("dlru: candidate K %d invalid", k)
		}
	}
	if c.Window <= 0 {
		c.Window = 100_000
	}
	if c.SamplingRate <= 0 || c.SamplingRate > 1 {
		c.SamplingRate = 0.01
	}
	if c.MinImprovement < 0 {
		c.MinImprovement = 0.005
	}
	return nil
}

// Controller shadows a request stream with one KRR profiler per
// candidate K and periodically reconfigures the attached cache.
//
// Process and the decision log are single-caller, like every serial
// model in this repository. The controller *state* the outside world
// cares about — current K, the budget in force, the last decision's
// position and outcome — lives in atomics and is exported through
// MetricsInto, so a /metrics scrape (or a fleet supervisor) reads it
// race-free while the stream runs. SetBudgetObjects is likewise safe
// to call from another goroutine: fleet allocations retarget a live
// controller without pausing it.
type Controller struct {
	cfg       Config
	cache     Tunable // may be nil (advisory mode)
	profilers map[int]*core.Profiler
	count     uint64
	decisions []Decision

	// Cross-goroutine state: see the struct comment.
	budget        atomic.Uint64
	currentK      atomic.Int64
	lastDecision  atomic.Uint64 // request count of the last decision
	lastPredicted atomic.Uint64 // Float64bits of the chosen K's miss
	decided       telemetry.Counter
	switched      telemetry.Counter
}

// New builds a controller driving cache (nil for advisory-only use).
// The live cache starts at the first candidate.
func New(cfg Config, cache Tunable) (*Controller, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctl := &Controller{cfg: cfg, cache: cache, profilers: make(map[int]*core.Profiler)}
	for i, k := range cfg.Candidates {
		rate := cfg.SamplingRate
		p, err := core.NewProfiler(core.Config{K: k, Seed: cfg.Seed + uint64(i)*131, SamplingRate: rate})
		if err != nil {
			return nil, err
		}
		ctl.profilers[k] = p
	}
	ctl.budget.Store(cfg.BudgetObjects)
	ctl.currentK.Store(int64(cfg.Candidates[0]))
	if cache != nil {
		cache.SetSamplingSize(cfg.Candidates[0])
	}
	return ctl, nil
}

// CurrentK returns the sampling size currently in force (safe from any
// goroutine).
func (c *Controller) CurrentK() int { return int(c.currentK.Load()) }

// BudgetObjects returns the cache budget decisions are evaluated at.
func (c *Controller) BudgetObjects() uint64 { return c.budget.Load() }

// SetBudgetObjects retargets the controller to a new cache budget —
// the fleet-allocation hook. Safe to call while Process streams on
// another goroutine; the next window's decision compares candidates at
// the new budget.
func (c *Controller) SetBudgetObjects(n uint64) {
	if n == 0 {
		return
	}
	c.budget.Store(n)
}

// Decisions returns the decision log.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Predictions returns each candidate's current predicted miss ratio
// at the configured budget.
func (c *Controller) Predictions() map[int]float64 {
	return c.predictionsAt(c.budget.Load())
}

// predictionsAt evaluates every candidate at one fixed budget. decide
// threads a single budget load through both the comparison and the
// Decision record so a concurrent SetBudgetObjects cannot make the log
// claim a budget the candidates were never evaluated at.
func (c *Controller) predictionsAt(budget uint64) map[int]float64 {
	out := make(map[int]float64, len(c.profilers))
	for k, p := range c.profilers {
		out[k] = p.ObjectMRC().Eval(budget)
	}
	return out
}

// MetricsInto registers the controller's observable state under
// prefix — the one observability surface both the single-cache CLI
// path and the fleet layer read. All values are atomics, safe to
// scrape mid-stream.
func (c *Controller) MetricsInto(set *telemetry.Set, prefix string) {
	set.GaugeFunc(prefix+"current_k", "sampling size currently in force", func() float64 {
		return float64(c.currentK.Load())
	})
	set.GaugeFunc(prefix+"budget_objects", "cache budget decisions are evaluated at", func() float64 {
		return float64(c.budget.Load())
	})
	set.GaugeFunc(prefix+"last_decision_request", "request count of the last decision", func() float64 {
		return float64(c.lastDecision.Load())
	})
	set.GaugeFunc(prefix+"last_predicted_miss", "chosen K's predicted miss at the last decision", func() float64 {
		return math.Float64frombits(c.lastPredicted.Load())
	})
	set.CounterFunc(prefix+"decisions_total", "window decisions taken", c.decided.Load)
	set.CounterFunc(prefix+"switches_total", "decisions that reconfigured the cache", c.switched.Load)
}

// Process forwards one request to the live cache (if any) and the
// shadow profilers, reconfiguring at window boundaries. It returns
// the live cache's hit result (false in advisory mode).
func (c *Controller) Process(req trace.Request) bool {
	hit := false
	if c.cache != nil {
		hit = c.cache.Access(req)
	}
	for _, p := range c.profilers {
		p.Process(req)
	}
	c.count++
	if c.count%uint64(c.cfg.Window) == 0 {
		c.decide()
	}
	return hit
}

// ProcessAll drains a reader.
func (c *Controller) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		c.Process(req)
	}
}

func (c *Controller) decide() {
	budget := c.budget.Load()
	pred := c.predictionsAt(budget)
	current := int(c.currentK.Load())
	bestK, bestMiss := current, pred[current]
	for _, k := range c.cfg.Candidates {
		if pred[k] < bestMiss {
			bestK, bestMiss = k, pred[k]
		}
	}
	switched := false
	if bestK != current && pred[current]-bestMiss > c.cfg.MinImprovement {
		current = bestK
		c.currentK.Store(int64(bestK))
		if c.cache != nil {
			c.cache.SetSamplingSize(bestK)
		}
		switched = true
		c.switched.Inc()
	}
	c.decided.Inc()
	c.lastDecision.Store(c.count)
	c.lastPredicted.Store(math.Float64bits(pred[current]))
	c.decisions = append(c.decisions, Decision{
		AtRequest:     c.count,
		BudgetObjects: budget,
		ChosenK:       current,
		Predicted:     pred,
		Switched:      switched,
	})
}
