package dlru

import (
	"bytes"
	"strings"
	"testing"

	"krr/internal/simulator"
	"krr/internal/telemetry"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("missing budget must fail")
	}
	if _, err := New(Config{BudgetObjects: 10, Candidates: []int{0}}, nil); err == nil {
		t.Fatal("invalid candidate must fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := New(Config{BudgetObjects: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.cfg.Candidates) != 6 || c.cfg.Window != 100_000 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if c.CurrentK() != 1 {
		t.Fatalf("initial K = %d", c.CurrentK())
	}
}

func TestControllerPrefersSmallKOnLoop(t *testing.T) {
	// A loop larger than the budget: LRU-like (large K) thrashes,
	// random-like (small K) retains a working fraction. The
	// controller must settle on a small K.
	const loopLen = 2000
	const budget = 1000
	ctl, err := New(Config{
		BudgetObjects: budget,
		Candidates:    []int{1, 4, 16, 32},
		Window:        20_000,
		SamplingRate:  0.5,
		Seed:          3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewLoop(loopLen, nil)
	if err := ctl.ProcessAll(trace.LimitReader(g, 100_000)); err != nil {
		t.Fatal(err)
	}
	if got := ctl.CurrentK(); got > 4 {
		t.Fatalf("controller chose K=%d on a loop, want small", got)
	}
	pred := ctl.Predictions()
	if pred[1] >= pred[32] {
		t.Fatalf("profilers disagree with loop physics: %v", pred)
	}
	if len(ctl.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
}

func TestControllerDrivesLiveCache(t *testing.T) {
	const budget = 500
	cache := simulator.NewKLRU(simulator.ObjectCapacity(budget), 32, true, 9)
	ctl, err := New(Config{
		BudgetObjects: budget,
		Candidates:    []int{1, 32},
		Window:        10_000,
		SamplingRate:  0.5,
		Seed:          5,
	}, cache)
	if err != nil {
		t.Fatal(err)
	}
	// New attaches and resets the cache to the first candidate.
	if cache.K() != 1 {
		t.Fatalf("initial live K = %d", cache.K())
	}
	// A Zipfian phase where large K (LRU-like) wins clearly:
	// strongly-skewed reuse benefits from strict recency ordering...
	// actually on a loop phase the controller must move to K=1; then
	// verify the switch reached the cache.
	g := workload.NewLoop(1000, nil)
	if err := ctl.ProcessAll(trace.LimitReader(g, 50_000)); err != nil {
		t.Fatal(err)
	}
	if cache.K() != ctl.CurrentK() {
		t.Fatalf("live cache K %d diverged from controller %d", cache.K(), ctl.CurrentK())
	}
	if ctl.CurrentK() != 1 {
		t.Fatalf("controller should pick K=1 on a loop, got %d", ctl.CurrentK())
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	ctl, err := New(Config{
		BudgetObjects:  100,
		Candidates:     []int{1, 2},
		Window:         1_000,
		SamplingRate:   1, // clamps to default — fine
		MinImprovement: 1, // impossible margin: never switch
		Seed:           7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewLoop(500, nil)
	if err := ctl.ProcessAll(trace.LimitReader(g, 20_000)); err != nil {
		t.Fatal(err)
	}
	for _, d := range ctl.Decisions() {
		if d.Switched {
			t.Fatal("switch despite impossible improvement margin")
		}
	}
	if ctl.CurrentK() != 1 {
		t.Fatal("K must stay at the initial candidate")
	}
}

func TestAdaptiveBeatsWorstFixedK(t *testing.T) {
	// End-to-end: on a loop workload the adaptive cache's realized
	// miss ratio must beat the worst fixed candidate by a margin.
	const budget = 800
	run := func(fixedK int, adaptive bool) float64 {
		cache := simulator.NewKLRU(simulator.ObjectCapacity(budget), fixedK, true, 11)
		g := workload.NewLoop(1600, nil)
		if !adaptive {
			st, err := simulator.Run(cache, trace.LimitReader(g, 80_000))
			if err != nil {
				t.Fatal(err)
			}
			return st.MissRatio()
		}
		ctl, err := New(Config{
			BudgetObjects: budget,
			Candidates:    []int{1, 8, 32},
			Window:        8_000,
			SamplingRate:  0.5,
			Seed:          13,
		}, cache)
		if err != nil {
			t.Fatal(err)
		}
		var hits, total int
		r := trace.LimitReader(g, 80_000)
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			total++
			if ctl.Process(req) {
				hits++
			}
		}
		return 1 - float64(hits)/float64(total)
	}
	adaptiveMiss := run(32, true)
	worstFixed := run(32, false)
	if adaptiveMiss >= worstFixed-0.02 {
		t.Fatalf("adaptive %v did not beat worst fixed K=32 %v", adaptiveMiss, worstFixed)
	}
}

func TestSetBudgetObjectsRetargetsDecisions(t *testing.T) {
	ctl, err := New(Config{
		BudgetObjects: 50,
		Candidates:    []int{1, 32},
		Window:        5_000,
		SamplingRate:  1,
		Seed:          1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewZipf(1, 2000, 0.9, nil, 0)
	if err := ctl.ProcessAll(trace.LimitReader(gen, 5_000)); err != nil {
		t.Fatal(err)
	}
	ctl.SetBudgetObjects(800)
	if ctl.BudgetObjects() != 800 {
		t.Fatalf("budget = %d, want 800", ctl.BudgetObjects())
	}
	ctl.SetBudgetObjects(0) // ignored: zero budget is meaningless
	if ctl.BudgetObjects() != 800 {
		t.Fatalf("zero SetBudgetObjects overwrote the budget")
	}
	if err := ctl.ProcessAll(trace.LimitReader(gen, 5_000)); err != nil {
		t.Fatal(err)
	}
	dec := ctl.Decisions()
	if len(dec) != 2 {
		t.Fatalf("decisions = %d, want 2", len(dec))
	}
	if dec[0].BudgetObjects != 50 || dec[1].BudgetObjects != 800 {
		t.Fatalf("decision budgets = %d, %d; want 50, 800", dec[0].BudgetObjects, dec[1].BudgetObjects)
	}
}

func TestControllerMetrics(t *testing.T) {
	cache := simulator.NewKLRU(simulator.ObjectCapacity(64), 1, true, 1)
	ctl, err := New(Config{
		BudgetObjects: 64,
		Candidates:    []int{1, 8},
		Window:        2_000,
		SamplingRate:  1,
		Seed:          1,
	}, cache)
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.NewSet()
	ctl.MetricsInto(set, "dlru_")
	gen := workload.NewZipf(2, 500, 1.0, nil, 0)
	if err := ctl.ProcessAll(trace.LimitReader(gen, 10_000)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dlru_current_k ", "dlru_budget_objects 64",
		"dlru_decisions_total 5", "dlru_last_decision_request 10000",
		"dlru_last_predicted_miss ", "dlru_switches_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestDecideBudgetConsistentUnderConcurrentRetarget pins the decide()
// budget fix: the comparison and the Decision record must come from a
// single budget load, so a SetBudgetObjects racing a window boundary
// can never produce a log entry claiming a budget the candidates were
// not evaluated at. Run under -race this also exercises the atomic
// pathway itself.
func TestDecideBudgetConsistentUnderConcurrentRetarget(t *testing.T) {
	ctl, err := New(Config{
		BudgetObjects: 100,
		Candidates:    []int{1, 32},
		Window:        500,
		SamplingRate:  1,
		Seed:          1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[uint64]bool{100: true, 900: true}
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(done)
		next := uint64(900)
		for {
			select {
			case <-stop:
				return
			default:
				ctl.SetBudgetObjects(next)
				next = 1000 - next
			}
		}
	}()
	gen := workload.NewZipf(2, 3000, 1.0, nil, 0)
	if err := ctl.ProcessAll(trace.LimitReader(gen, 30_000)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	dec := ctl.Decisions()
	if len(dec) == 0 {
		t.Fatal("no decisions taken")
	}
	for i, d := range dec {
		if !valid[d.BudgetObjects] {
			t.Fatalf("decision %d recorded budget %d, never a configured value", i, d.BudgetObjects)
		}
	}
}
