package hashing

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMix64Stable(t *testing.T) {
	// Golden values pin the function: spatial sampling depends on the
	// exact hash, so any change to Mix64 silently changes every
	// sampled MRC.
	cases := map[uint64]uint64{
		0: 0,
		1: 0x71ee30e1a736c7d4 ^ Mix64(1) ^ 0x71ee30e1a736c7d4, // self-consistency only
	}
	_ = cases
	if Mix64(0) != 0 {
		t.Fatalf("Mix64(0) = %#x, want 0", Mix64(0))
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("trivial collision")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Sampled injectivity check over a contiguous range; a true
	// bijection can't collide.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 output bits on average.
	var total, samples int
	for i := uint64(1); i <= 1000; i++ {
		h := Mix64(i)
		for b := uint(0); b < 64; b += 7 {
			d := Mix64(i ^ 1<<b)
			total += bits.OnesCount64(h ^ d)
			samples++
		}
	}
	avg := float64(total) / float64(samples)
	if avg < 28 || avg > 36 {
		t.Fatalf("avalanche average %.2f bits, want ~32", avg)
	}
}

func TestMurmur3FmixDiffersFromMix64(t *testing.T) {
	same := 0
	for i := uint64(1); i < 1000; i++ {
		if Mix64(i) == Murmur3Fmix(i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("families agree on %d inputs", same)
	}
}

func TestSamplingUniformity(t *testing.T) {
	// The low bits used by hash mod P must be uniform: with threshold
	// T = P/10 about 10%% of sequential keys should pass.
	const p, thr = 1 << 24, 1 << 24 / 10
	for _, f := range []func(uint64) uint64{Mix64, Murmur3Fmix} {
		pass := 0
		const n = 200000
		for i := uint64(0); i < n; i++ {
			if f(i)%p < thr {
				pass++
			}
		}
		got := float64(pass) / n
		if got < 0.095 || got > 0.105 {
			t.Fatalf("sampling rate %v, want ~0.1", got)
		}
	}
}

func TestStringStableAndSpread(t *testing.T) {
	if String("foo") != String("foo") {
		t.Fatal("String not deterministic")
	}
	if String("foo") == String("bar") {
		t.Fatal("trivial string collision")
	}
	if String("") == 0 {
		t.Fatal("empty string should still mix to nonzero")
	}
}

func TestStringNoEasyCollisions(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		if a == b {
			return true
		}
		return String(a) != String(b)
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBytesMatchesString(t *testing.T) {
	cases := []string{"", "a", "user:42:profile", "héllo", "\x00\xff\x80", "0123456789abcdef0123456789abcdef"}
	for _, s := range cases {
		if got, want := Bytes([]byte(s)), String(s); got != want {
			t.Fatalf("Bytes(%q) = %#x, String = %#x", s, got, want)
		}
	}
}

func TestBytesDoesNotAllocate(t *testing.T) {
	b := []byte("some-cache-key-of-typical-length")
	var sink uint64
	if allocs := testing.AllocsPerRun(100, func() { sink += Bytes(b) }); allocs != 0 {
		t.Fatalf("Bytes allocates %v per call", allocs)
	}
	_ = sink
}
