// Package hashing provides stable 64-bit hash functions for spatial
// sampling. Stability matters: the SHARDS-style sampling condition
// hash(L) mod P < T must select the same subset of keys on every run
// and in every process, so these functions are fixed algorithms with
// no per-process randomization (unlike hash/maphash).
package hashing

// Mix64 is the SplitMix64 finalizer (Stafford variant 13). It is a
// bijection on 64-bit integers with excellent avalanche behaviour,
// which makes it a good spatial-sampling hash for integer keys: every
// input bit flips each output bit with probability ~1/2.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Murmur3Fmix is the MurmurHash3 64-bit finalizer, kept as an
// independent second family for hash-quality cross checks.
func Murmur3Fmix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// String hashes an arbitrary byte-string key with the FNV-1a core
// followed by a Mix64 finalization, for callers whose cache keys are
// strings rather than integers.
func String(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// Bytes is String over a byte slice, for parsers that hold keys as
// sub-slices of an input buffer and must not allocate a string to hash
// them. Bytes(b) == String(string(b)) for every b.
func Bytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return Mix64(h)
}
