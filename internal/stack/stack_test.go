package stack

import (
	"math"
	"testing"

	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestLRUStackMatchesOlken(t *testing.T) {
	s := New(LRUStay)
	oracle := olken.New(1)
	src := xrand.New(3)
	for i := 0; i < 20000; i++ {
		key := src.Uint64n(400)
		want := oracle.Reference(key, 1)
		dist, cold := s.Reference(key)
		if cold != want.Cold {
			t.Fatalf("step %d: cold %v vs %v", i, cold, want.Cold)
		}
		if !cold && uint64(dist) != want.Distance {
			t.Fatalf("step %d key %d: dist %d vs olken %d", i, key, dist, want.Distance)
		}
	}
}

func TestStackInclusionProperty(t *testing.T) {
	// By construction a stack algorithm satisfies inclusion: the cache
	// of size c is positions 1..c, and 1..c ⊂ 1..c+1 trivially. The
	// meaningful check is that the update touches positions only by
	// permutation: the multiset of keys is preserved and positions stay
	// consistent.
	s := New(KRRStay(xrand.New(5), 4))
	src := xrand.New(8)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		key := src.Uint64n(200)
		seen[key] = true
		s.Reference(key)
		if s.Len() != len(seen) {
			t.Fatalf("step %d: stack len %d, want %d", i, s.Len(), len(seen))
		}
	}
	// Every key occupies exactly one position, and pos is the inverse
	// of the keys array.
	for i := 1; i <= s.Len(); i++ {
		if s.PositionOf(s.At(i)) != i {
			t.Fatalf("pos map inconsistent at %d", i)
		}
	}
}

func TestReferenceTopIsNoop(t *testing.T) {
	s := New(LRUStay)
	s.Reference(7)
	dist, cold := s.Reference(7)
	if cold || dist != 1 {
		t.Fatalf("top reference: dist=%d cold=%v", dist, cold)
	}
}

func TestDelete(t *testing.T) {
	s := New(LRUStay)
	for k := uint64(1); k <= 5; k++ {
		s.Reference(k)
	}
	// Stack (top..bottom): 5 4 3 2 1.
	if !s.Delete(3) {
		t.Fatal("delete resident must return true")
	}
	if s.Delete(3) {
		t.Fatal("double delete must return false")
	}
	if s.Len() != 4 {
		t.Fatalf("len %d", s.Len())
	}
	// Key 1 was at position 5; after removing key 3 it sits at 4.
	if s.PositionOf(1) != 4 {
		t.Fatalf("position of key 1 = %d, want 4", s.PositionOf(1))
	}
	dist, cold := s.Reference(1)
	if cold || dist != 4 {
		t.Fatalf("distance after delete: %d cold=%v", dist, cold)
	}
}

func TestKRRStayProbability(t *testing.T) {
	// Empirical stay frequency at position i must match ((i-1)/i)^k.
	src := xrand.New(4)
	const k = 4.0
	stay := KRRStay(src, k)
	for _, i := range []int{2, 3, 10, 100} {
		stays := 0
		const trials = 100000
		for n := 0; n < trials; n++ {
			if stay(i) {
				stays++
			}
		}
		want := math.Pow(float64(i-1)/float64(i), k)
		got := float64(stays) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("position %d: stay freq %v, want %v", i, got, want)
		}
	}
}

func TestKRRK1IsRandomReplacement(t *testing.T) {
	// Mattson verified the RR stack (K=1) evicts uniformly: for a
	// cache of size C, each resident is evicted with probability 1/C.
	// Equivalently, the miss ratio of a uniform workload over M
	// objects at size C approaches the memoryless hit rate C/M.
	const m, c = 400, 100
	g := workload.NewUniform(3, m, nil)
	p := NewKRRProfiler(5, 1)
	tr, _ := trace.Collect(g, 150000)
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	curve := p.MRC(1)
	got := curve.Eval(c)
	want := 1 - float64(c)/float64(m)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("RR uniform miss at C=%d: %v, want ~%v", c, got, want)
	}
}

func TestLRUProfilerOnLoop(t *testing.T) {
	const m = 50
	p := NewLRUProfiler()
	g := workload.NewLoop(m, nil)
	tr, _ := trace.Collect(g, m*20)
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	c := p.MRC(1)
	if c.Eval(m-1) < 0.9 {
		t.Fatal("LRU loop must thrash below loop size")
	}
	if c.Eval(m) > 0.1 {
		t.Fatal("LRU loop must hit at loop size")
	}
}

func TestProfilerDelete(t *testing.T) {
	p := NewLRUProfiler()
	p.Process(trace.Request{Key: 1, Op: trace.OpGet})
	p.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	p.Process(trace.Request{Key: 1, Op: trace.OpGet})
	if p.Hist().Cold() != 2 {
		t.Fatalf("cold = %d, want 2", p.Hist().Cold())
	}
}

func TestNewPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil)
}

func BenchmarkLinearKRRUpdate(b *testing.B) {
	p := NewKRRProfiler(1, math.Pow(5, 1.4))
	g := workload.NewZipf(3, 1<<14, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(reqs[i&(1<<16-1)])
	}
}
