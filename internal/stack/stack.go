// Package stack implements Mattson's generalized stack algorithm
// (§2.2) with the linear update procedure of Figure 2.1: on a
// reference with stack distance φ, a carried object starts at the
// stack top and walks down; at each position the maxPriority function
// decides whether the incumbent keeps its slot or is picked up and
// carried further, and the final carried object lands at φ.
//
// This is the O(M)-per-update "Basic Stack" baseline of Table 5.3 and
// the behavioural reference against which the fast KRR updates in
// internal/core are validated. Policies are expressed as a stay
// function: the probability-bearing decision of Equation 4.1.
package stack

import (
	"errors"
	"io"
	"math"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/xrand"
)

// StayFunc reports whether the incumbent object at stack position i
// (2 <= i < φ) keeps its position against the carried-down object —
// i.e. whether maxPriority(y(i-1), s(i)) == s(i). Implementations may
// be probabilistic.
type StayFunc func(i int) bool

// LRUStay never lets the incumbent stay: every position above φ
// shifts down by one, which is exactly the LRU stack.
func LRUStay(int) bool { return false }

// KRRStay returns the KRR stay rule of Equation 4.1: the object at
// position i survives with probability ((i-1)/i)^k. k = 1 is
// Mattson's RR stack.
func KRRStay(src *xrand.Source, k float64) StayFunc {
	return func(i int) bool {
		p := float64(i-1) / float64(i)
		if k != 1 {
			p = math.Pow(p, k)
		}
		return src.Float64() < p
	}
}

// Stack is a generalized priority stack with linear update cost.
// Positions are 1-based; position 1 is the top.
type Stack struct {
	keys []uint64 // keys[0] unused
	pos  map[uint64]int
	stay StayFunc
}

// New returns an empty stack driven by the given stay rule.
func New(stay StayFunc) *Stack {
	if stay == nil {
		panic("stack: nil StayFunc")
	}
	return &Stack{keys: make([]uint64, 1), pos: make(map[uint64]int), stay: stay}
}

// Len returns the number of distinct objects on the stack.
func (s *Stack) Len() int { return len(s.keys) - 1 }

// At returns the key at 1-based position i.
func (s *Stack) At(i int) uint64 { return s.keys[i] }

// PositionOf returns the 1-based stack position of key, or 0.
func (s *Stack) PositionOf(key uint64) int { return s.pos[key] }

// Reference processes one access, returning the pre-update stack
// distance (φ) and whether the reference was cold. Cold references
// report distance Len() after insertion (their φ per Mattson is γ_t).
func (s *Stack) Reference(key uint64) (distance int, cold bool) {
	phi, ok := s.pos[key]
	if !ok {
		cold = true
		s.keys = append(s.keys, key)
		phi = len(s.keys) - 1
		s.pos[key] = phi
	}
	s.update(key, phi)
	if cold {
		return phi, true
	}
	return phi, false
}

// update performs the Mattson linear stack update of Figure 2.1.
func (s *Stack) update(key uint64, phi int) {
	if phi == 1 {
		return
	}
	carried := s.keys[1]
	for i := 2; i < phi; i++ {
		if s.stay(i) {
			continue
		}
		// Swap position: deposit the carried object, pick up the
		// incumbent.
		carried, s.keys[i] = s.keys[i], carried
		s.pos[s.keys[i]] = i
	}
	s.keys[phi] = carried
	s.pos[carried] = phi
	s.keys[1] = key
	s.pos[key] = 1
}

// Delete removes key, compacting the stack (O(M)); returns residency.
func (s *Stack) Delete(key uint64) bool {
	phi, ok := s.pos[key]
	if !ok {
		return false
	}
	copy(s.keys[phi:], s.keys[phi+1:])
	s.keys = s.keys[:len(s.keys)-1]
	delete(s.pos, key)
	for i := phi; i < len(s.keys); i++ {
		s.pos[s.keys[i]] = i
	}
	return true
}

// Profiler builds an MRC with the linear stack — the Table 5.3
// baseline.
type Profiler struct {
	stack *Stack
	hist  *histogram.Dense
}

// NewKRRProfiler returns a linear-update KRR profiler with exponent k
// (the already-corrected K′).
func NewKRRProfiler(seed uint64, k float64) *Profiler {
	return &Profiler{
		stack: New(KRRStay(xrand.New(seed), k)),
		hist:  histogram.NewDense(1024),
	}
}

// NewLRUProfiler returns a linear-update exact-LRU profiler.
func NewLRUProfiler() *Profiler {
	return &Profiler{stack: New(LRUStay), hist: histogram.NewDense(1024)}
}

// Process feeds one request.
func (p *Profiler) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		p.stack.Delete(req.Key)
		return
	}
	dist, cold := p.stack.Reference(req.Key)
	if cold {
		p.hist.AddCold()
		return
	}
	p.hist.Add(uint64(dist))
}

// ProcessAll drains a reader.
func (p *Profiler) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		p.Process(req)
	}
}

// MRC returns the miss ratio curve; scale rescales distances (1/R
// under spatial sampling).
func (p *Profiler) MRC(scale float64) *mrc.Curve {
	return mrc.FromHistogram(p.hist, scale)
}

// Hist exposes the histogram.
func (p *Profiler) Hist() *histogram.Dense { return p.hist }

// Stack exposes the underlying stack.
func (p *Profiler) Stack() *Stack { return p.stack }
