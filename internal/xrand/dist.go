package xrand

import "math"

// Zipf samples from a Zipf(α) distribution over {0, 1, ..., n-1} where
// rank r is drawn with probability proportional to 1/(r+1)^α.
//
// The implementation is the rejection-inversion method of Hörmann and
// Derflinger ("Rejection-inversion to generate variates from monotone
// discrete distributions", 1996), the same algorithm used by YCSB's
// ZipfianGenerator and math/rand.Zipf, reimplemented here so that the
// workload generators share one deterministic Source and support
// α ≤ 1 as well as α > 1 (α = 1 is handled by a harmonic special case
// inside h/hInv).
type Zipf struct {
	src  *Source
	n    uint64
	q    float64 // skew exponent α
	oneQ float64 // 1 - q
	// Precomputed constants of the rejection-inversion scheme.
	hIntegralX1        float64
	hIntegralNumPoints float64
	sCut               float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent q > 0.
// It panics if n == 0 or q <= 0.
func NewZipf(src *Source, q float64, n uint64) *Zipf {
	if n == 0 {
		panic("xrand: NewZipf with n == 0")
	}
	if q <= 0 {
		panic("xrand: NewZipf with q <= 0")
	}
	z := &Zipf{src: src, n: n, q: q, oneQ: 1 - q}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumPoints = z.hIntegral(float64(n) + 0.5)
	z.sCut = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// N returns the support size.
func (z *Zipf) N() uint64 { return z.n }

// Alpha returns the skew exponent.
func (z *Zipf) Alpha() float64 { return z.q }

// h is the density proxy x^-q.
func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.q * math.Log(x))
}

// hIntegral is the antiderivative of h.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.q)*logX) * logX
}

// hIntegralInv is the inverse of hIntegral.
func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * (1 - z.q)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x, stable near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x, stable near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Uint64 draws the next Zipf deviate in [0, n).
func (z *Zipf) Uint64() uint64 {
	for {
		u := z.hIntegralNumPoints + z.src.Float64()*(z.hIntegralX1-z.hIntegralNumPoints)
		x := z.hIntegralInv(u)
		k := x + 0.5
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		kk := math.Floor(k)
		if kk-x <= z.sCut || u >= z.hIntegral(kk+0.5)-z.h(kk) {
			return uint64(kk) - 1
		}
	}
}

// LogNormal samples exp(N(mu, sigma^2)). Used for value-size
// distributions of the Twitter-like workloads, whose object sizes are
// heavy-tailed but bounded in practice.
type LogNormal struct {
	src       *Source
	mu, sigma float64
}

// NewLogNormal returns a lognormal sampler. sigma must be >= 0.
func NewLogNormal(src *Source, mu, sigma float64) *LogNormal {
	if sigma < 0 {
		panic("xrand: NewLogNormal with sigma < 0")
	}
	return &LogNormal{src: src, mu: mu, sigma: sigma}
}

// Float64 draws the next lognormal deviate.
func (l *LogNormal) Float64() float64 {
	return math.Exp(l.mu + l.sigma*l.src.NormFloat64())
}

// Pareto samples from a (type I) Pareto distribution with scale xm > 0
// and shape alpha > 0: P(X > x) = (xm/x)^alpha for x >= xm.
type Pareto struct {
	src       *Source
	xm, alpha float64
}

// NewPareto returns a Pareto sampler.
func NewPareto(src *Source, xm, alpha float64) *Pareto {
	if xm <= 0 || alpha <= 0 {
		panic("xrand: NewPareto with non-positive parameter")
	}
	return &Pareto{src: src, xm: xm, alpha: alpha}
}

// Float64 draws the next Pareto deviate via inverse transform.
func (p *Pareto) Float64() float64 {
	return p.xm / math.Pow(p.src.Float64Open(), 1/p.alpha)
}
