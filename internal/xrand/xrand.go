// Package xrand provides fast, deterministic pseudo-random number
// generation and the heavy-tailed samplers used by the synthetic
// workload generators and the probabilistic KRR stack.
//
// The core generator is xoshiro256**, seeded through SplitMix64 so that
// any 64-bit seed yields a well-mixed initial state. All state is local
// to the Source value: no global locking, which matters because the
// multi-size simulation sweeps run one generator per goroutine.
package xrand

import "math"

// Source is a xoshiro256** pseudo-random generator. The zero value is
// not a valid generator; use New or Seed before drawing from it.
//
// Source intentionally does not implement math/rand.Source64 locking or
// any synchronization: each goroutine owns its Source.
type Source struct {
	s0, s1, s2, s3 uint64

	// Cached second deviate from the polar Box-Muller transform.
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from a 64-bit seed. Distinct seeds
// yield statistically independent streams for all practical purposes.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0, s.s1, s.s2, s.s3 = next(), next(), next(), next()
	// A state of all zeros would lock the generator at zero; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Jump advances the stream by 2^128 draws, equivalent to that many
// Uint64 calls. Use it to split one seed into non-overlapping
// sub-streams for parallel workers.
func (s *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= s.s0
				t1 ^= s.s1
				t2 ^= s.s2
				t3 ^= s.s3
			}
			s.Uint64()
		}
	}
	s.s0, s.s1, s.s2, s.s3 = t0, t1, t2, t3
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform value in (0, 1]. The backward KRR stack
// update draws from a half-open interval excluding zero so that the
// inverse-CDF step r^(1/K) never maps to rank zero.
func (s *Source) Float64Open() float64 {
	return 1.0 - s.Float64()
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method: one multiply in the common
// case, unbiased.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	v := s.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform value in [0, n) as an int. It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal deviate via the polar
// Box-Muller transform. One spare deviate is cached.
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (s *Source) ExpFloat64() float64 {
	return -math.Log(s.Float64Open())
}
