package xrand

import (
	"math"
	"testing"
)

func TestInvNormCDFKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0.5:       0,
		0.8413447: 1, // Phi(1)
		0.9772499: 2, // Phi(2)
		0.1586553: -1,
		0.025:     -1.959964,
		0.975:     1.959964,
		0.001:     -3.090232,
		0.999:     3.090232,
	}
	for p, want := range cases {
		if got := InvNormCDF(p); math.Abs(got-want) > 1e-4 {
			t.Fatalf("InvNormCDF(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestInvNormCDFRoundTrip(t *testing.T) {
	// Phi(InvNormCDF(p)) == p across the domain, including deep tails.
	for _, p := range []float64{1e-10, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.99, 1 - 1e-6} {
		x := InvNormCDF(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		if math.Abs(back-p) > 1e-9*(1+p) && math.Abs(back-p) > 1e-12 {
			t.Fatalf("round trip p=%v: got %v", p, back)
		}
	}
}

func TestInvNormCDFEndpoints(t *testing.T) {
	if !math.IsInf(InvNormCDF(0), -1) || !math.IsInf(InvNormCDF(1), 1) {
		t.Fatal("endpoints must be infinite")
	}
}

func TestInvNormCDFMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		x := InvNormCDF(p)
		if x <= prev {
			t.Fatalf("not monotone at p=%v", p)
		}
		prev = x
	}
}
