package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("zero-seeded generator produced %d zeros in 100 draws", zeros)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		g := s.Float64Open()
		if g <= 0 || g > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", g)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3)
	err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := s.Uint64n(n)
		return v < n
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPerm(t *testing.T) {
	s := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	xs := make([]int, 50)
	for i := range xs {
		xs[i] = i
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestJumpDiverges(t *testing.T) {
	a := New(99)
	b := New(99)
	b.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided %d times", same)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(19)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}

func TestZipfBounds(t *testing.T) {
	s := New(23)
	for _, alpha := range []float64{0.5, 0.99, 1.0, 1.5, 2.5} {
		z := NewZipf(s, alpha, 1000)
		for i := 0; i < 10000; i++ {
			if v := z.Uint64(); v >= 1000 {
				t.Fatalf("alpha=%v: out-of-range draw %d", alpha, v)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank-0 frequency must match 1/H_{n,α} within tolerance, and a
	// larger α must concentrate more mass on the head.
	s := New(29)
	const n = 1000
	const draws = 400000
	freq0 := func(alpha float64) float64 {
		z := NewZipf(s, alpha, n)
		c := 0
		for i := 0; i < draws; i++ {
			if z.Uint64() == 0 {
				c++
			}
		}
		return float64(c) / draws
	}
	for _, alpha := range []float64{0.5, 0.99, 1.5} {
		var h float64
		for r := 1; r <= n; r++ {
			h += 1 / math.Pow(float64(r), alpha)
		}
		want := 1 / h
		got := freq0(alpha)
		if math.Abs(got-want) > 0.15*want+0.002 {
			t.Fatalf("alpha=%v: head frequency %v, want ~%v", alpha, got, want)
		}
	}
	if f1, f2 := freq0(0.5), freq0(1.5); f1 >= f2 {
		t.Fatalf("skew not monotone: freq0(0.5)=%v >= freq0(1.5)=%v", f1, f2)
	}
}

func TestZipfSingleton(t *testing.T) {
	z := NewZipf(New(1), 1.0, 1)
	for i := 0; i < 100; i++ {
		if z.Uint64() != 0 {
			t.Fatal("singleton Zipf must always draw 0")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		q float64
		n uint64
	}{{0, 10}, {-1, 10}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%v,%v): expected panic", c.q, c.n)
				}
			}()
			NewZipf(New(1), c.q, c.n)
		}()
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(31)
	ln := NewLogNormal(s, math.Log(200), 1.0)
	const n = 100000
	vals := 0
	for i := 0; i < n; i++ {
		if ln.Float64() < 200 {
			vals++
		}
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	if frac := float64(vals) / n; math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("lognormal median check: %v below exp(mu), want ~0.5", frac)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(37)
	p := NewPareto(s, 64, 1.5)
	const n = 200000
	over := 0
	for i := 0; i < n; i++ {
		v := p.Float64()
		if v < 64 {
			t.Fatalf("Pareto deviate %v below scale", v)
		}
		if v > 128 {
			over++
		}
	}
	// P(X > 2*xm) = 2^-1.5 ≈ 0.3536.
	want := math.Pow(2, -1.5)
	if got := float64(over) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("Pareto tail mass %v, want ~%v", got, want)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkZipf(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 0.99, 1<<20)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Uint64()
	}
	_ = sink
}
