package sampling

import (
	"math"
	"testing"

	"krr/internal/trace"
)

func TestRateClamping(t *testing.T) {
	if NewRate(-1).Rate() != 0 {
		t.Fatal("negative rate must clamp to 0")
	}
	if NewRate(2).Rate() != 1 {
		t.Fatal("rate > 1 must clamp to 1")
	}
	if got := NewRate(0.001).Rate(); math.Abs(got-0.001) > 1e-6 {
		t.Fatalf("rate = %v", got)
	}
	if New(Modulus+5).Threshold() != Modulus {
		t.Fatal("threshold must clamp to Modulus")
	}
}

func TestSampledDeterministic(t *testing.T) {
	f := NewRate(0.1)
	g := NewRate(0.1)
	for k := uint64(0); k < 1000; k++ {
		if f.Sampled(k) != g.Sampled(k) {
			t.Fatal("sampling must be deterministic")
		}
	}
}

func TestSampledRateEmpirical(t *testing.T) {
	f := NewRate(0.01)
	const n = 500000
	hit := 0
	for k := uint64(0); k < n; k++ {
		if f.Sampled(k) {
			hit++
		}
	}
	got := float64(hit) / n
	if math.Abs(got-0.01) > 0.002 {
		t.Fatalf("empirical rate %v, want ~0.01", got)
	}
}

func TestSubsetProperty(t *testing.T) {
	// A lower-rate filter must sample a subset of a higher-rate one —
	// the property SHARDS relies on for rate adaptation.
	lo, hi := NewRate(0.01), NewRate(0.1)
	for k := uint64(0); k < 100000; k++ {
		if lo.Sampled(k) && !hi.Sampled(k) {
			t.Fatalf("key %d sampled at 0.01 but not at 0.1", k)
		}
	}
}

func TestZeroAndFullFilter(t *testing.T) {
	zero, full := NewRate(0), NewRate(1)
	for k := uint64(0); k < 1000; k++ {
		if zero.Sampled(k) {
			t.Fatal("zero-rate filter sampled a key")
		}
		if !full.Sampled(k) {
			t.Fatal("full-rate filter rejected a key")
		}
	}
}

func TestReaderFiltersConsistently(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 10000; i++ {
		tr.Append(trace.Request{Key: uint64(i % 500), Size: 1})
	}
	f := NewRate(0.05)
	got, err := trace.ReadAll(f.Reader(tr.Reader()))
	if err != nil {
		t.Fatal(err)
	}
	// Every reference to a sampled key must appear; none to unsampled.
	want := 0
	for _, r := range tr.Reqs {
		if f.Sampled(r.Key) {
			want++
		}
	}
	if got.Len() != want {
		t.Fatalf("filtered %d, want %d", got.Len(), want)
	}
	for _, r := range got.Reqs {
		if !f.Sampled(r.Key) {
			t.Fatal("unsampled key leaked through")
		}
	}
}

func TestSampleCountsInput(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 321; i++ {
		tr.Append(trace.Request{Key: uint64(i)})
	}
	_, seen, err := NewRate(0.5).Sample(tr.Reader())
	if err != nil || seen != 321 {
		t.Fatalf("seen=%d err=%v", seen, err)
	}
}

func TestRateFor(t *testing.T) {
	if got := RateFor(100_000_000); got != DefaultRate {
		t.Fatalf("large workload rate %v, want default", got)
	}
	// 8K floor: a 80K-object workload needs rate 0.1024 -> ~0.1.
	if got := RateFor(80_000); math.Abs(got-float64(MinSampledObjects)/80000) > 1e-9 {
		t.Fatalf("small workload rate %v", got)
	}
	if got := RateFor(100); got != 1 {
		t.Fatalf("tiny workload rate %v, want 1", got)
	}
	if got := RateFor(0); got != DefaultRate {
		t.Fatalf("unknown size rate %v, want default", got)
	}
}
