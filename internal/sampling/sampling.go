// Package sampling implements SHARDS-style uniform spatial sampling
// (§2.4): a reference to key L is admitted iff
//
//	hash(L) mod P < T
//
// so the same keys are sampled on every run, every model, and every
// process, and every reference to a sampled key is admitted. The
// effective sampling rate is R = T/P. Stack distances measured on the
// sampled stream are unbiased estimates of actual distance times R, so
// MRC x-axes are rescaled by 1/R (handled by mrc.FromHistogram).
package sampling

import (
	"errors"
	"io"

	"krr/internal/hashing"
	"krr/internal/trace"
)

// Modulus is the fixed P of the sampling condition. A power of two
// keeps the mod a mask; 2^24 gives rate granularity of ~6e-8.
const Modulus = 1 << 24

// Filter is a deterministic spatial sampling filter. The zero value
// samples nothing; use New or NewRate.
type Filter struct {
	threshold uint64
}

// New returns a filter with an explicit threshold T in [0, Modulus].
func New(threshold uint64) *Filter {
	if threshold > Modulus {
		threshold = Modulus
	}
	return &Filter{threshold: threshold}
}

// NewRate returns a filter with rate ~= rate (clamped to [0, 1]).
func NewRate(rate float64) *Filter {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return New(uint64(rate*Modulus + 0.5))
}

// Rate returns the effective sampling rate T/P.
func (f *Filter) Rate() float64 { return float64(f.threshold) / Modulus }

// Threshold returns T.
func (f *Filter) Threshold() uint64 { return f.threshold }

// Sampled reports whether key passes the sampling condition.
func (f *Filter) Sampled(key uint64) bool {
	return hashing.Mix64(key)%Modulus < f.threshold
}

// Reader returns a trace.Reader yielding only sampled requests.
func (f *Filter) Reader(r trace.Reader) trace.Reader {
	return trace.FuncReader(func() (trace.Request, error) {
		for {
			req, err := r.Next()
			if err != nil {
				return trace.Request{}, err
			}
			if f.Sampled(req.Key) {
				return req, nil
			}
		}
	})
}

// Sample drains r and returns the sampled subset as an in-memory
// trace together with the count of input requests seen.
func (f *Filter) Sample(r trace.Reader) (*trace.Trace, int, error) {
	out := &trace.Trace{}
	seen := 0
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, seen, nil
		}
		if err != nil {
			return nil, seen, err
		}
		seen++
		if f.Sampled(req.Key) {
			out.Append(req)
		}
	}
}

// DefaultRate is the paper's default spatial sampling rate (§4.4).
const DefaultRate = 0.001

// MinSampledObjects is the accuracy floor from §5.3: the rate is
// raised for small workloads so that at least this many distinct
// objects are expected in the sample.
const MinSampledObjects = 8192

// RateFor returns the sampling rate for a workload with the given
// number of distinct objects: DefaultRate, raised as needed to keep
// the expected sampled-object count at or above MinSampledObjects,
// and clamped to 1.
func RateFor(distinctObjects int) float64 {
	r := DefaultRate
	if distinctObjects > 0 {
		if need := float64(MinSampledObjects) / float64(distinctObjects); need > r {
			r = need
		}
	}
	if r > 1 {
		r = 1
	}
	return r
}
