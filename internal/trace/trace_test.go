package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{Reqs: []Request{
		{Key: 1, Size: 100, Op: OpGet},
		{Key: 2, Size: 4096, Op: OpSet},
		{Key: 1, Size: 100, Op: OpGet},
		{Key: 3, Size: 1, Op: OpDelete},
		{Key: 1<<63 + 7, Size: 1<<32 - 1, Op: OpGet},
	}}
}

func TestOpString(t *testing.T) {
	if OpGet.String() != "get" || OpSet.String() != "set" || OpDelete.String() != "delete" {
		t.Fatal("op mnemonics wrong")
	}
	if Op(200).String() != "op?" {
		t.Fatal("unknown op must stringify safely")
	}
}

func TestSliceReader(t *testing.T) {
	tr := sampleTrace()
	r := tr.Reader()
	var got []Request
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, req)
	}
	if !reflect.DeepEqual(got, tr.Reqs) {
		t.Fatalf("reader mismatch: %v vs %v", got, tr.Reqs)
	}
	// Readers are independent.
	r2 := tr.Reader()
	if req, _ := r2.Next(); req.Key != 1 {
		t.Fatal("second reader must start fresh")
	}
}

func TestReadAllAndCollect(t *testing.T) {
	tr := sampleTrace()
	got, err := ReadAll(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, tr.Reqs) {
		t.Fatal("ReadAll mismatch")
	}
	head, err := Collect(tr.Reader(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 2 || head.Reqs[1].Key != 2 {
		t.Fatalf("Collect(2) = %v", head.Reqs)
	}
	over, err := Collect(tr.Reader(), 100)
	if err != nil || over.Len() != tr.Len() {
		t.Fatalf("Collect beyond EOF: len=%d err=%v", over.Len(), err)
	}
}

func TestLimitReader(t *testing.T) {
	tr := sampleTrace()
	lr := LimitReader(tr.Reader(), 3)
	n := 0
	for {
		_, err := lr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("LimitReader yielded %d", n)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, tr.Reqs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Reqs, tr.Reqs)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	err := quick.Check(func(keys []uint64, sizes []uint32) bool {
		tr := &Trace{}
		for i, k := range keys {
			size := uint32(DefaultObjectSize)
			if i < len(sizes) {
				size = sizes[i]
			}
			tr.Append(Request{Key: k, Size: size, Op: Op(i % 3)})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Reqs, tr.Reqs) ||
			(len(got.Reqs) == 0 && len(tr.Reqs) == 0)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
	if _, err := ReadBinary(strings.NewReader("")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("empty stream err = %v, want ErrBadFormat", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	_, err := ReadBinary(bytes.NewReader(trunc))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated err = %v, want ErrBadFormat", err)
	}
}

func TestBinaryReaderLen(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinaryReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if br.Len() != uint64(tr.Len()) {
		t.Fatalf("Len = %d, want %d", br.Len(), tr.Len())
	}
	br.Next()
	if br.Len() != uint64(tr.Len()-1) {
		t.Fatal("Len must decrease after Next")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Reqs, tr.Reqs) {
		t.Fatalf("csv round trip mismatch:\n got %v\nwant %v", got.Reqs, tr.Reqs)
	}
}

func TestCSVDefaultsAndComments(t *testing.T) {
	in := "# comment\n\n42\n7,512\n9,64,set\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{Key: 42, Size: DefaultObjectSize, Op: OpGet},
		{Key: 7, Size: 512, Op: OpGet},
		{Key: 9, Size: 64, Op: OpSet},
	}
	if !reflect.DeepEqual(tr.Reqs, want) {
		t.Fatalf("got %v want %v", tr.Reqs, want)
	}
}

func TestCSVErrors(t *testing.T) {
	for _, in := range []string{"abc\n", "1,xyz\n", "1,2,frob\n", "1,2,3,4\n"} {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("input %q: err = %v, want ErrBadFormat", in, err)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Reqs: []Request{
		{Key: 1, Size: 100, Op: OpGet},
		{Key: 2, Size: 50, Op: OpGet},
		{Key: 1, Size: 100, Op: OpGet},
		{Key: 2, Size: 75, Op: OpSet}, // size change after first touch does not alter WSS
	}}
	s, err := Summarize(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != 4 || s.DistinctObjects != 2 || s.ColdMisses != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.WSSBytes != 150 {
		t.Fatalf("WSSBytes = %d, want 150 (first-request sizes)", s.WSSBytes)
	}
	if s.TotalBytes != 325 {
		t.Fatalf("TotalBytes = %d, want 325", s.TotalBytes)
	}
}

func TestSummarizeWithDelete(t *testing.T) {
	tr := &Trace{Reqs: []Request{
		{Key: 1, Size: 10, Op: OpGet},
		{Key: 2, Size: 10, Op: OpGet},
		{Key: 1, Size: 0, Op: OpDelete},
		{Key: 3, Size: 10, Op: OpGet},
	}}
	s, err := Summarize(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	// Max concurrent distinct objects is 2: {1,2} then {2,3}.
	if s.DistinctObjects != 2 {
		t.Fatalf("DistinctObjects = %d, want 2", s.DistinctObjects)
	}
	if s.ColdMisses != 3 {
		t.Fatalf("ColdMisses = %d, want 3", s.ColdMisses)
	}
}

func TestFuncReader(t *testing.T) {
	calls := 0
	fr := FuncReader(func() (Request, error) {
		calls++
		if calls > 2 {
			return Request{}, io.EOF
		}
		return Request{Key: uint64(calls)}, nil
	})
	tr, err := ReadAll(fr)
	if err != nil || tr.Len() != 2 {
		t.Fatalf("len=%d err=%v", tr.Len(), err)
	}
}
