// Package trace defines the request model shared by every component:
// workload generators produce requests, cache simulators and stack
// models consume them, and codecs persist them.
//
// A request is (key, size, op). Keys are opaque 64-bit identifiers
// (string keys should be pre-hashed with hashing.String). Sizes are in
// bytes and only matter to the variable-object-size models; the
// fixed-size experiments in the paper normalize every object to 200
// bytes (§5.2).
package trace

import (
	"errors"
	"io"
)

// Op is the request operation type.
type Op uint8

// Operations. Get and Set are the standard cache operations the paper
// normalizes all traces to; Delete removes an object from the cache
// and the model stacks.
const (
	OpGet Op = iota
	OpSet
	OpDelete
)

// String returns the lowercase operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	case OpDelete:
		return "delete"
	default:
		return "op?"
	}
}

// DefaultObjectSize is the uniform object size (bytes) the paper
// assigns when normalizing fixed-size workloads (§5.2).
const DefaultObjectSize = 200

// Request is one cache reference.
type Request struct {
	Key  uint64
	Size uint32
	Op   Op
}

// Reader streams requests. Next returns io.EOF after the final
// request.
type Reader interface {
	Next() (Request, error)
}

// Trace is an in-memory request sequence.
type Trace struct {
	Reqs []Request
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Reqs) }

// Append adds a request.
func (t *Trace) Append(r Request) { t.Reqs = append(t.Reqs, r) }

// Reader returns a fresh reader over the trace; multiple readers may
// iterate independently.
func (t *Trace) Reader() Reader { return &sliceReader{reqs: t.Reqs} }

type sliceReader struct {
	reqs []Request
	pos  int
}

func (r *sliceReader) Next() (Request, error) {
	if r.pos >= len(r.reqs) {
		return Request{}, io.EOF
	}
	req := r.reqs[r.pos]
	r.pos++
	return req, nil
}

// NextBatch copies up to len(dst) requests, implementing BatchReader.
func (r *sliceReader) NextBatch(dst []Request) (int, error) {
	if r.pos >= len(r.reqs) {
		return 0, io.EOF
	}
	n := copy(dst, r.reqs[r.pos:])
	r.pos += n
	return n, nil
}

// BatchReader is an optional fast path over Reader: NextBatch fills
// dst with up to len(dst) requests and returns how many were written.
// It returns 0, io.EOF once the stream is exhausted. High-throughput
// consumers (the sharded profiler pipeline) use it to amortize the
// per-request interface-call cost.
type BatchReader interface {
	Reader
	NextBatch(dst []Request) (int, error)
}

// ReadBatch fills dst from r, using the BatchReader fast path when r
// provides one and falling back to per-request Next calls otherwise.
// It returns the number of requests written; n == 0 with io.EOF marks
// the end of the stream. A short (non-zero) batch is not an EOF
// indicator — callers keep reading until 0, io.EOF.
func ReadBatch(r Reader, dst []Request) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(dst)
	}
	for i := range dst {
		req, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) && i > 0 {
				return i, nil
			}
			return i, err
		}
		dst[i] = req
	}
	return len(dst), nil
}

// ReadAll drains a reader into an in-memory trace.
func ReadAll(r Reader) (*Trace, error) {
	t := &Trace{}
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Append(req)
	}
}

// Collect materializes up to n requests from r. It stops early at EOF.
func Collect(r Reader, n int) (*Trace, error) {
	t := &Trace{Reqs: make([]Request, 0, n)}
	for i := 0; i < n; i++ {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Append(req)
	}
	return t, nil
}

// LimitReader returns a reader yielding at most n requests from r.
func LimitReader(r Reader, n int) Reader { return &limitReader{r: r, left: n} }

type limitReader struct {
	r    Reader
	left int
}

func (l *limitReader) Next() (Request, error) {
	if l.left <= 0 {
		return Request{}, io.EOF
	}
	l.left--
	return l.r.Next()
}

// FuncReader adapts a function to the Reader interface.
type FuncReader func() (Request, error)

// Next calls the function.
func (f FuncReader) Next() (Request, error) { return f() }

// Summary describes aggregate trace properties used to pick cache
// sizes for simulation sweeps.
type Summary struct {
	Requests        int
	DistinctObjects int
	// TotalBytes is the sum of request sizes over the whole trace.
	TotalBytes uint64
	// WSSBytes is the working-set size in bytes: the sum over distinct
	// objects of the size seen on their first request, matching the
	// paper's MSR convention of using the first-request block size.
	WSSBytes uint64
	// ColdMisses counts first-touch references (== DistinctObjects for
	// traces without deletes).
	ColdMisses int
}

// Summarize makes one pass over a reader and aggregates its Summary.
func Summarize(r Reader) (Summary, error) {
	var s Summary
	seen := make(map[uint64]struct{})
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return s, nil
		}
		if err != nil {
			return s, err
		}
		s.Requests++
		s.TotalBytes += uint64(req.Size)
		if req.Op == OpDelete {
			delete(seen, req.Key)
			continue
		}
		if _, ok := seen[req.Key]; !ok {
			seen[req.Key] = struct{}{}
			s.DistinctObjects = max(s.DistinctObjects, len(seen))
			s.WSSBytes += uint64(req.Size)
			s.ColdMisses++
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
