package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadBinary ensures arbitrary byte streams never panic the
// binary decoder and that well-formed prefixes round-trip.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	WriteBinary(&seed, &Trace{Reqs: []Request{
		{Key: 1, Size: 2, Op: OpGet},
		{Key: 1<<64 - 1, Size: 1<<32 - 1, Op: OpDelete},
	}})
	f.Add(seed.Bytes())
	f.Add([]byte("KRT1"))
	f.Add([]byte{})
	f.Add([]byte("KRT1\x00\x00\x00\x00\x00\x00\x00\x10short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded traces must re-encode to a stream that decodes to
		// the same requests.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Reqs) != len(tr.Reqs) {
			t.Fatalf("round trip length %d != %d", len(back.Reqs), len(tr.Reqs))
		}
		if len(tr.Reqs) > 0 && !reflect.DeepEqual(back.Reqs, tr.Reqs) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzReadCSV ensures arbitrary text never panics the CSV parser and
// accepted inputs round-trip (for ops the writer emits).
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2,get\n")
	f.Add("# comment\n\n42\n7,512\n9,64,set\n")
	f.Add("1,2,3,4\n")
	f.Add(",,,\n")
	f.Add("18446744073709551615,4294967295,delete\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-decode of own output failed: %v\noutput: %q", err, buf.String())
		}
		if len(back.Reqs) != len(tr.Reqs) {
			t.Fatalf("round trip length %d != %d", len(back.Reqs), len(tr.Reqs))
		}
	})
}
