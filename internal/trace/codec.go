package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format:
//
//	magic   [4]byte  "KRT1"
//	count   uint64   number of records (little endian)
//	records count × { key uint64, size uint32, op uint8 }
//
// The format is dense (13 bytes/record) so that multi-hundred-million
// request traces stay manageable on disk.

var binaryMagic = [4]byte{'K', 'R', 'T', '1'}

// ErrBadFormat reports a malformed trace stream.
var ErrBadFormat = errors.New("trace: bad format")

const recordSize = 13

// WriteBinary encodes the trace to w in the binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Reqs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, r := range t.Reqs {
		binary.LittleEndian.PutUint64(rec[0:8], r.Key)
		binary.LittleEndian.PutUint32(rec[8:12], r.Size)
		rec[12] = byte(r.Op)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a full binary trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return ReadAll(br)
}

// BinaryReader streams requests from a binary-format trace.
type BinaryReader struct {
	br   *bufio.Reader
	left uint64
}

// NewBinaryReader validates the header and returns a streaming reader.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing count: %v", ErrBadFormat, err)
	}
	return &BinaryReader{br: br, left: binary.LittleEndian.Uint64(hdr[:])}, nil
}

// Len returns the number of records remaining.
func (b *BinaryReader) Len() uint64 { return b.left }

// Next returns the next request or io.EOF.
func (b *BinaryReader) Next() (Request, error) {
	if b.left == 0 {
		return Request{}, io.EOF
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(b.br, rec[:]); err != nil {
		return Request{}, fmt.Errorf("%w: truncated record: %v", ErrBadFormat, err)
	}
	b.left--
	return Request{
		Key:  binary.LittleEndian.Uint64(rec[0:8]),
		Size: binary.LittleEndian.Uint32(rec[8:12]),
		Op:   Op(rec[12]),
	}, nil
}

// WriteCSV encodes the trace as "key,size,op" lines, one per request.
// The textual form is for interchange and debugging; prefer the binary
// format for large traces.
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, r := range t.Reqs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s\n", r.Key, r.Size, r.Op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV decodes "key,size,op" lines. Blank lines and lines starting
// with '#' are skipped. A missing op defaults to get; a missing size
// defaults to DefaultObjectSize.
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		t.Append(req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseCSVLine(line string) (Request, error) {
	fields := strings.Split(line, ",")
	if len(fields) < 1 || len(fields) > 3 {
		return Request{}, fmt.Errorf("want 1-3 fields, got %d", len(fields))
	}
	key, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return Request{}, fmt.Errorf("key: %v", err)
	}
	req := Request{Key: key, Size: DefaultObjectSize, Op: OpGet}
	if len(fields) >= 2 {
		size, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 10, 32)
		if err != nil {
			return Request{}, fmt.Errorf("size: %v", err)
		}
		req.Size = uint32(size)
	}
	if len(fields) == 3 {
		switch op := strings.TrimSpace(fields[2]); op {
		case "get", "read", "":
			req.Op = OpGet
		case "set", "write", "add", "replace":
			req.Op = OpSet
		case "delete", "del":
			req.Op = OpDelete
		default:
			return Request{}, fmt.Errorf("unknown op %q", op)
		}
	}
	return req, nil
}
