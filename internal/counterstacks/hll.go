// Package counterstacks implements a compact Counter Stacks model
// (Wires et al., OSDI '14), the third exact-LRU MRC baseline from the
// paper's related work (§6.1): the LRU stack distance of a reference
// is the number of distinct keys seen since its previous occurrence,
// so a set of probabilistic cardinality counters started at staggered
// times recovers the whole stack-distance distribution from counter
// increments alone — no stack, no per-object metadata.
package counterstacks

import "math"

const (
	// 2^14 registers, ~0.8% standard error. Counter Stacks subtracts
	// estimates taken one batch apart, so the counters' absolute noise
	// must stay small relative to the per-batch increment; the extra
	// registers (16 KiB/counter) buy that headroom.
	hllPrecision = 14
	hllRegisters = 1 << hllPrecision
)

// hll is a HyperLogLog cardinality counter over 64-bit hashes.
type hll struct {
	registers [hllRegisters]uint8
}

// add folds one (already well-mixed) hash into the sketch.
func (h *hll) add(hash uint64) {
	idx := hash >> (64 - hllPrecision)
	rest := hash<<hllPrecision | 1<<(hllPrecision-1) // guard bit keeps rho <= 64-p+1
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > h.registers[idx] {
		h.registers[idx] = rho
	}
}

// estimate returns the approximate cardinality with the standard
// HyperLogLog bias corrections (small-range linear counting).
func (h *hll) estimate() float64 {
	const m = float64(hllRegisters)
	alpha := 0.7213 / (1 + 1.079/m)
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for the small range.
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// merge folds other into h (register-wise max).
func (h *hll) merge(other *hll) {
	for i := range h.registers {
		if other.registers[i] > h.registers[i] {
			h.registers[i] = other.registers[i]
		}
	}
}
