package counterstacks

import (
	"errors"
	"io"

	"krr/internal/hashing"
	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/trace"
)

// Config shapes a Stack.
type Config struct {
	// DownsampleInterval is how many requests share one counter start
	// and one finite-difference evaluation (the paper's d). Larger
	// values cost less and blur distances more. Default 1000.
	DownsampleInterval int
	// MaxCounters bounds memory: when exceeded, the two adjacent
	// counters with the closest counts are merged (the paper's
	// pruning). The oldest counter is never pruned, keeping the cold
	// classification exact. Default 64.
	MaxCounters int
}

func (c *Config) fill() {
	if c.DownsampleInterval <= 0 {
		c.DownsampleInterval = 1000
	}
	if c.MaxCounters < 4 {
		c.MaxCounters = 64
	}
}

// counter is one staggered cardinality counter.
type counter struct {
	sketch    hll
	lastCount float64 // estimate at the previous batch boundary
}

// Stack is the Counter Stacks model.
type Stack struct {
	cfg      Config
	counters []*counter // oldest first
	hist     *histogram.Log
	pending  int // requests in the current batch
	seen     uint64
}

// New builds a Counter Stacks model.
func New(cfg Config) *Stack {
	cfg.fill()
	s := &Stack{cfg: cfg, hist: histogram.NewLog()}
	s.counters = append(s.counters, &counter{}) // the permanent oldest counter
	return s
}

// Process feeds one request. Deletes are ignored: cardinality
// counters cannot un-count a key, which the original system accepts
// (deletions are rare in the storage traces it targets).
func (s *Stack) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		return
	}
	s.seen++
	h := hashing.Mix64(req.Key)
	for _, c := range s.counters {
		c.sketch.add(h)
	}
	s.pending++
	if s.pending >= s.cfg.DownsampleInterval {
		s.finishBatch()
	}
}

// finishBatch evaluates finite differences and starts a new counter.
func (s *Stack) finishBatch() {
	n := len(s.counters)
	counts := make([]float64, n)
	deltas := make([]float64, n)
	batch := float64(s.pending)
	for i, c := range s.counters {
		counts[i] = c.sketch.estimate()
		deltas[i] = counts[i] - c.lastCount
		// Clamp HLL noise into the feasible range.
		if deltas[i] < 0 {
			deltas[i] = 0
		}
		if deltas[i] > batch {
			deltas[i] = batch
		}
	}
	// A key new to a counter is new to every younger counter, so the
	// true per-batch increments are non-decreasing from oldest to
	// newest. Enforcing that with a running max removes the upward
	// bias that independently clamping each adjacent difference would
	// introduce (spurious positive diffs from estimate noise).
	for i := 1; i < n; i++ {
		if deltas[i] < deltas[i-1] {
			deltas[i] = deltas[i-1]
		}
	}
	// Requests whose previous occurrence lies between the starts of
	// counters i (older) and i+1 (newer) incremented i+1 but not i;
	// their stack distances lie between the two counters' distinct
	// counts. Spread the mass uniformly across that interval — after
	// pruning, adjacent counters can be far apart, and a point mass
	// would put a cliff in the curve.
	for i := 0; i < n-1; i++ {
		units := int(deltas[i+1] - deltas[i] + 0.5)
		lo, hi := counts[i+1], counts[i]
		if hi < lo {
			hi = lo
		}
		for j := 0; j < units; j++ {
			frac := (float64(j) + 0.5) / float64(units)
			s.hist.Add(uint64(lo + frac*(hi-lo) + 0.5))
		}
	}
	// Requests new even to the oldest counter are cold (the oldest
	// counter starts with the stream).
	for d := deltas[0]; d >= 1; d-- {
		s.hist.AddCold()
	}
	// Requests not new to the newest counter reused within the batch:
	// distance is at most the newest counter's within-batch growth;
	// approximate with half the batch's distinct growth.
	intra := batch - deltas[n-1]
	for d := intra; d >= 1; d-- {
		s.hist.Add(uint64(deltas[n-1]/2) + 1)
	}

	for i, c := range s.counters {
		c.lastCount = counts[i]
	}
	s.counters = append(s.counters, &counter{})
	s.pending = 0
	s.pruneIfNeeded()
}

// pruneIfNeeded merges the adjacent pair with the closest counts
// (their windows have converged, so they carry redundant
// information), never touching the oldest counter.
func (s *Stack) pruneIfNeeded() {
	for len(s.counters) > s.cfg.MaxCounters {
		bestIdx, bestGap := -1, 0.0
		for i := 1; i < len(s.counters)-1; i++ {
			// Relative gap keeps the retained counters geometrically
			// spaced, bounding the per-distance relative error.
			gap := (s.counters[i].lastCount - s.counters[i+1].lastCount) /
				(s.counters[i].lastCount + 1)
			if bestIdx == -1 || gap < bestGap {
				bestIdx, bestGap = i, gap
			}
		}
		if bestIdx < 0 {
			return
		}
		// Drop the newer of the pair: the older one's window covers it.
		s.counters = append(s.counters[:bestIdx+1], s.counters[bestIdx+2:]...)
	}
}

// Flush evaluates the current partial batch, if any. ProcessAll calls
// it at EOF; streaming consumers that feed Process directly (the
// model layer) call it once before reading the curve.
func (s *Stack) Flush() {
	if s.pending > 0 {
		s.finishBatch()
	}
}

// ProcessAll drains a reader and flushes the final partial batch.
func (s *Stack) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			s.Flush()
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(req)
	}
}

// Counters returns the live counter count (memory proxy).
func (s *Stack) Counters() int { return len(s.counters) }

// Seen returns the number of processed requests.
func (s *Stack) Seen() uint64 { return s.seen }

// MemoryOverheadBytes estimates the model's resident metadata: the HLL
// register arrays (the dominant term) plus the histogram.
func (s *Stack) MemoryOverheadBytes() uint64 {
	const perCounter = hllRegisters + 16 // registers + lastCount + pointer
	return uint64(len(s.counters))*perCounter + s.hist.MemBytes()
}

// MRC returns the modeled exact-LRU miss ratio curve.
func (s *Stack) MRC() *mrc.Curve {
	return mrc.FromHistogram(s.hist, 1)
}

// SnapshotHist returns the stack-distance histogram the model would
// hold if the stream ended now, without committing the current partial
// batch: the batch is evaluated on a deep copy of the counters and
// histogram, leaving the live state untouched so Process may continue.
// At end-of-stream (after Flush, or with pending == 0) it returns the
// live histogram itself, so a snapshot curve is bit-identical to MRC.
func (s *Stack) SnapshotHist() *histogram.Log {
	if s.pending == 0 {
		return s.hist
	}
	clone := &Stack{
		cfg:      s.cfg,
		counters: make([]*counter, len(s.counters)),
		hist:     s.hist.Clone(),
		pending:  s.pending,
		seen:     s.seen,
	}
	for i, c := range s.counters {
		cc := *c // hll registers are a value array: this is a deep copy
		clone.counters[i] = &cc
	}
	clone.finishBatch()
	return clone.hist
}

// SnapshotMRC returns the curve the model would produce if the stream
// ended now (see SnapshotHist).
func (s *Stack) SnapshotMRC() *mrc.Curve {
	return mrc.FromHistogram(s.SnapshotHist(), 1)
}

// Hist exposes the stack-distance histogram.
func (s *Stack) Hist() *histogram.Log { return s.hist }
