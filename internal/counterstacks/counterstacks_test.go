package counterstacks

import (
	"math"
	"testing"

	"krr/internal/hashing"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 10_000, 500_000} {
		var h hll
		for i := 0; i < n; i++ {
			h.add(hashing.Mix64(uint64(i)))
		}
		got := h.estimate()
		if relErr := math.Abs(got-float64(n)) / float64(n); relErr > 0.05 {
			t.Fatalf("n=%d: estimate %.0f, rel err %.3f", n, got, relErr)
		}
	}
}

func TestHLLDuplicatesDontCount(t *testing.T) {
	var h hll
	for i := 0; i < 100_000; i++ {
		h.add(hashing.Mix64(uint64(i % 50)))
	}
	if got := h.estimate(); got > 80 {
		t.Fatalf("50 distinct keys estimated as %.0f", got)
	}
}

func TestHLLMerge(t *testing.T) {
	var a, b hll
	for i := 0; i < 1000; i++ {
		a.add(hashing.Mix64(uint64(i)))
		b.add(hashing.Mix64(uint64(i + 1000)))
	}
	a.merge(&b)
	if got := a.estimate(); math.Abs(got-2000) > 150 {
		t.Fatalf("merged estimate %.0f, want ~2000", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	s := New(Config{})
	if s.cfg.DownsampleInterval != 1000 || s.cfg.MaxCounters != 64 {
		t.Fatalf("defaults: %+v", s.cfg)
	}
	if s.Counters() != 1 {
		t.Fatal("must start with the permanent oldest counter")
	}
}

func TestLoopTrace(t *testing.T) {
	// Loop over M: all reuse distances M; the curve must be high below
	// M and low at/above it.
	const m = 2000
	s := New(Config{DownsampleInterval: 200})
	g := workload.NewLoop(m, nil)
	if err := s.ProcessAll(trace.LimitReader(g, m*15)); err != nil {
		t.Fatal(err)
	}
	c := s.MRC()
	if lo := c.Eval(m / 3); lo < 0.7 {
		t.Fatalf("miss(M/3) = %v, want high", lo)
	}
	if hi := c.Eval(m * 2); hi > 0.3 {
		t.Fatalf("miss(2M) = %v, want low", hi)
	}
}

func TestMatchesExactLRUOnZipf(t *testing.T) {
	g := workload.NewZipf(3, 20000, 0.8, nil, 0)
	tr, _ := trace.Collect(g, 300000)

	s := New(Config{DownsampleInterval: 500, MaxCounters: 128})
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	model := s.MRC()

	exact := olken.NewProfiler(1)
	exact.ProcessAll(tr.Reader())
	truth := exact.ObjectMRC(1)

	sizes := mrc.EvenSizes(20000, 20)
	if mae := mrc.MAE(model, truth, sizes); mae > 0.06 {
		t.Fatalf("counter stacks vs exact LRU MAE %v", mae)
	}
}

func TestPruningBoundsCounters(t *testing.T) {
	s := New(Config{DownsampleInterval: 100, MaxCounters: 8})
	g := workload.NewZipf(5, 5000, 1.0, nil, 0)
	if err := s.ProcessAll(trace.LimitReader(g, 50000)); err != nil {
		t.Fatal(err)
	}
	if s.Counters() > 8 {
		t.Fatalf("counters %d exceed cap", s.Counters())
	}
	if s.Seen() != 50000 {
		t.Fatalf("seen %d", s.Seen())
	}
}

func TestDeleteIgnored(t *testing.T) {
	s := New(Config{DownsampleInterval: 10})
	s.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	if s.Seen() != 0 {
		t.Fatal("deletes must not count as references")
	}
}

func TestPartialBatchFlushed(t *testing.T) {
	s := New(Config{DownsampleInterval: 1000})
	tr := &trace.Trace{}
	for i := 0; i < 150; i++ {
		tr.Append(trace.Request{Key: uint64(i % 10), Size: 1})
	}
	if err := s.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	c := s.MRC()
	// 10 distinct keys referenced 15× each: the curve must show hits
	// at small sizes.
	if c.Eval(50) > 0.5 {
		t.Fatalf("partial batch lost: miss(50) = %v", c.Eval(50))
	}
}

func BenchmarkProcess(b *testing.B) {
	s := New(Config{DownsampleInterval: 1000, MaxCounters: 64})
	g := workload.NewZipf(3, 1<<20, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(reqs[i&(1<<16-1)])
	}
}
