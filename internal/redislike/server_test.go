package redislike

import (
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := NewServer(cfg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestServerPingSetGetDel(t *testing.T) {
	_, addr := startServer(t, Config{Seed: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if pong, err := c.Do("PING"); err != nil || pong != "PONG" {
		t.Fatalf("ping: %q %v", pong, err)
	}
	if err := c.Set(42, 100); err != nil {
		t.Fatal(err)
	}
	size, ok, err := c.Get(42)
	if err != nil || !ok || size != 100 {
		t.Fatalf("get: size=%d ok=%v err=%v", size, ok, err)
	}
	if _, ok, _ := c.Get(999); ok {
		t.Fatal("missing key must return nil")
	}
	if n, err := c.Do("DEL", "42"); err != nil || n != "1" {
		t.Fatalf("del: %q %v", n, err)
	}
	if _, ok, _ := c.Get(42); ok {
		t.Fatal("deleted key still present")
	}
}

func TestServerDBSizeInfoFlush(t *testing.T) {
	_, addr := startServer(t, Config{Seed: 1})
	c, _ := Dial(addr)
	defer c.Close()

	c.Set(1, 10)
	c.Set(2, 10)
	if n, _ := c.Do("DBSIZE"); n != "2" {
		t.Fatalf("dbsize = %q", n)
	}
	info, err := c.Do("INFO")
	if err != nil || !strings.Contains(info, "keys:2") {
		t.Fatalf("info: %q %v", info, err)
	}
	if _, err := c.Do("FLUSHALL"); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Do("DBSIZE"); n != "0" {
		t.Fatalf("dbsize after flush = %q", n)
	}
}

func TestServerStringKeysAndErrors(t *testing.T) {
	_, addr := startServer(t, Config{Seed: 1})
	c, _ := Dial(addr)
	defer c.Close()

	if _, err := c.Do("SET", "user:1001", "payload"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("GET", "user:1001")
	if err != nil || len(v) != len("payload") {
		t.Fatalf("string key get: %q %v", v, err)
	}
	if _, err := c.Do("NOSUCH"); err == nil {
		t.Fatal("unknown command must error")
	}
	if _, err := c.Do("SET", "onlykey"); err == nil {
		t.Fatal("arity error expected")
	}
}

func TestServerEvictionOverRESP(t *testing.T) {
	const maxMem = 20 * (100 + perKeyOverhead)
	_, addr := startServer(t, Config{MaxMemory: maxMem, Seed: 3})
	c, _ := Dial(addr)
	defer c.Close()
	for k := uint64(0); k < 200; k++ {
		if err := c.Set(k, 100); err != nil {
			t.Fatal(err)
		}
	}
	n, _ := c.Do("DBSIZE")
	if n != "20" && n != "19" && n != "18" {
		t.Fatalf("dbsize after eviction = %q, want ~20", n)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, addr := startServer(t, Config{Seed: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			base := uint64(w) * 1000
			for i := uint64(0); i < 100; i++ {
				if err := c.Set(base+i, 10); err != nil {
					t.Error(err)
					return
				}
				if _, ok, err := c.Get(base + i); err != nil || !ok {
					t.Errorf("worker %d: lost key %d", w, base+i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerQuit(t *testing.T) {
	_, addr := startServer(t, Config{Seed: 1})
	c, _ := Dial(addr)
	if ok, err := c.Do("QUIT"); err != nil || ok != "OK" {
		t.Fatalf("quit: %q %v", ok, err)
	}
	// Connection is closed server-side; the next command fails.
	if _, err := c.Do("PING"); err == nil {
		t.Fatal("post-quit command must fail")
	}
	c.Close()
}

func TestInlineCommands(t *testing.T) {
	// Telnet-style inline commands must parse.
	_, addr := startServer(t, Config{Seed: 1})
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.conn.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := c.readReply()
	if err != nil || reply != "PONG" {
		t.Fatalf("inline ping: %q %v", reply, err)
	}
}
