package redislike

import (
	"testing"

	"krr/internal/trace"
)

func TestConfigGetSet(t *testing.T) {
	_, addr := startServer(t, Config{MaxMemory: 10000, Samples: 5, Seed: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if v, err := c.ConfigGet("maxmemory-samples"); err != nil || v != "5" {
		t.Fatalf("ConfigGet: %q %v", v, err)
	}
	if err := c.ConfigSet("maxmemory-samples", "12"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.ConfigGet("maxmemory-samples"); v != "12" {
		t.Fatalf("after set: %q", v)
	}
	if v, _ := c.ConfigGet("maxmemory"); v != "10000" {
		t.Fatalf("maxmemory: %q", v)
	}
	if err := c.ConfigSet("maxmemory", "2000"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.ConfigGet("maxmemory"); v != "2000" {
		t.Fatalf("after maxmemory set: %q", v)
	}
	// Errors.
	if err := c.ConfigSet("maxmemory-samples", "abc"); err == nil {
		t.Fatal("non-integer must fail")
	}
	if err := c.ConfigSet("appendonly", "yes"); err == nil {
		t.Fatal("unsupported parameter must fail")
	}
}

func TestConfigSetMaxMemoryEvictsImmediately(t *testing.T) {
	const objCost = 100 + perKeyOverhead
	_, addr := startServer(t, Config{MaxMemory: 100 * objCost, Seed: 3})
	c, _ := Dial(addr)
	defer c.Close()
	for k := uint64(0); k < 100; k++ {
		c.Set(k, 100)
	}
	if n, _ := c.Do("DBSIZE"); n != "100" {
		t.Fatalf("dbsize %q", n)
	}
	if err := c.ConfigSet("maxmemory", "1480"); err != nil { // ~10 objects
		t.Fatal(err)
	}
	n, _ := c.Do("DBSIZE")
	if n != "10" && n != "9" {
		t.Fatalf("dbsize after shrink = %q, want ~10", n)
	}
}

func TestTunableClientDrivesServer(t *testing.T) {
	const objCost = 200 + perKeyOverhead
	_, addr := startServer(t, Config{MaxMemory: 50 * objCost, Samples: 5, Seed: 7})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tc := NewTunableClient(c)

	// Cache-aside semantics over the wire.
	if tc.Access(trace.Request{Key: 1, Size: 200, Op: trace.OpGet}) {
		t.Fatal("first access must miss")
	}
	if !tc.Access(trace.Request{Key: 1, Size: 200, Op: trace.OpGet}) {
		t.Fatal("second access must hit")
	}
	tc.Access(trace.Request{Key: 1, Op: trace.OpDelete})
	if tc.Access(trace.Request{Key: 1, Size: 200, Op: trace.OpGet}) {
		t.Fatal("deleted key must miss")
	}

	// Online reconfiguration reaches the engine.
	tc.SetSamplingSize(9)
	if v, _ := c.ConfigGet("maxmemory-samples"); v != "9" {
		t.Fatalf("samples after SetSamplingSize: %q", v)
	}
	if err := tc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineSetSamplesFloor(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.SetSamples(0)
	if e.Samples() != 1 {
		t.Fatalf("samples floor: %d", e.Samples())
	}
}
