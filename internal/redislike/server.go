package redislike

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"krr/internal/hashing"
	"krr/internal/trace"
)

// Server exposes an Engine over a minimal RESP2 subset: PING, SET,
// GET, DEL, DBSIZE, INFO, FLUSHALL, QUIT. Values are not retained —
// only their sizes — so GET returns a synthesized value of the stored
// length, which preserves all cache dynamics while keeping memory
// bounded by metadata.
type Server struct {
	mu     sync.Mutex
	engine *Engine
	cfg    Config

	// duel, when set, replaces the single engine with a set-dueling
	// policy tournament: commands route by key partition and INFO
	// grows a duel_* section.
	duel    *Duel
	duelCfg DuelConfig

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer wraps an engine configuration.
func NewServer(cfg Config) *Server {
	return &Server{engine: NewEngine(cfg), cfg: cfg, closed: make(chan struct{})}
}

// NewDuelServer wraps a set-dueling tournament instead of a single
// engine.
func NewDuelServer(cfg DuelConfig) (*Server, error) {
	d, err := NewDuel(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{duel: d, duelCfg: cfg, closed: make(chan struct{})}, nil
}

// Engine returns the wrapped engine (callers must not race with a
// running server; intended for post-shutdown inspection). Nil for a
// duel server.
func (s *Server) Engine() *Engine { return s.engine }

// Duel returns the wrapped tournament (nil for a plain server). Its
// atomic state accessors are safe while the server runs; everything
// else requires external serialization.
func (s *Server) Duel() *Duel { return s.duel }

// Listen starts accepting on addr ("127.0.0.1:0" picks a free port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener and waits for connections to drain.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		if quit := s.dispatch(w, args); quit {
			w.Flush()
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one command, returning true on QUIT.
func (s *Server) dispatch(w *bufio.Writer, args []string) bool {
	if len(args) == 0 {
		writeError(w, "empty command")
		return false
	}
	cmd := strings.ToUpper(args[0])
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case "PING":
		fmt.Fprintf(w, "+PONG\r\n")
	case "SET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'set'")
			return false
		}
		if s.duel != nil {
			s.duel.Set(parseKey(args[1]), uint32(len(args[2])))
		} else {
			s.engine.Set(parseKey(args[1]), uint32(len(args[2])))
		}
		fmt.Fprintf(w, "+OK\r\n")
	case "GET":
		if len(args) != 2 {
			writeError(w, "wrong number of arguments for 'get'")
			return false
		}
		var (
			size uint32
			ok   bool
		)
		if s.duel != nil {
			size, ok = s.duel.Get(parseKey(args[1]))
		} else {
			size, ok = s.engine.Get(parseKey(args[1]))
		}
		if !ok {
			fmt.Fprintf(w, "$-1\r\n")
			return false
		}
		fmt.Fprintf(w, "$%d\r\n", size)
		writeZeros(w, int(size))
		fmt.Fprintf(w, "\r\n")
	case "DEL":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'del'")
			return false
		}
		n := 0
		for _, k := range args[1:] {
			deleted := false
			if s.duel != nil {
				deleted = s.duel.Del(parseKey(k))
			} else {
				deleted = s.engine.Del(parseKey(k))
			}
			if deleted {
				n++
			}
		}
		fmt.Fprintf(w, ":%d\r\n", n)
	case "DBSIZE":
		if s.duel != nil {
			fmt.Fprintf(w, ":%d\r\n", s.duel.Len())
		} else {
			fmt.Fprintf(w, ":%d\r\n", s.engine.Len())
		}
	case "INFO":
		info := ""
		if s.duel != nil {
			info = s.duel.Info()
		} else {
			info = s.engine.Info()
		}
		fmt.Fprintf(w, "$%d\r\n%s\r\n", len(info), info)
	case "FLUSHALL":
		if s.duel != nil {
			d, err := NewDuel(s.duelCfg)
			if err != nil {
				writeError(w, err.Error())
				return false
			}
			s.duel = d
		} else {
			s.engine = NewEngine(s.cfg)
		}
		fmt.Fprintf(w, "+OK\r\n")
	case "CONFIG":
		s.handleConfig(w, args[1:])
	case "QUIT":
		fmt.Fprintf(w, "+OK\r\n")
		return true
	default:
		writeError(w, "unknown command '"+args[0]+"'")
	}
	return false
}

// handleConfig implements the CONFIG GET/SET subset used for online
// reconfiguration: maxmemory and maxmemory-samples.
func (s *Server) handleConfig(w *bufio.Writer, args []string) {
	if len(args) < 2 {
		writeError(w, "wrong number of arguments for 'config'")
		return
	}
	param := strings.ToLower(args[1])
	switch strings.ToUpper(args[0]) {
	case "GET":
		var val string
		switch param {
		case "maxmemory":
			if s.duel != nil {
				val = strconv.FormatUint(s.duelCfg.MaxMemory, 10)
			} else {
				val = strconv.FormatUint(s.engine.cfg.MaxMemory, 10)
			}
		case "maxmemory-samples":
			if s.duel != nil {
				val = strconv.Itoa(s.duel.Winner().Samples)
			} else {
				val = strconv.Itoa(s.engine.Samples())
			}
		case "maxmemory-policy":
			if s.duel != nil {
				val = s.duel.Winner().Policy.String()
			} else {
				val = s.engine.Policy().String()
			}
		default:
			fmt.Fprintf(w, "*0\r\n")
			return
		}
		fmt.Fprintf(w, "*2\r\n$%d\r\n%s\r\n$%d\r\n%s\r\n", len(param), param, len(val), val)
	case "SET":
		if len(args) != 3 {
			writeError(w, "wrong number of arguments for 'config set'")
			return
		}
		if s.duel != nil {
			writeError(w, "parameter is steered by the policy tournament; start without -duel for manual control")
			return
		}
		switch param {
		case "maxmemory":
			v, err := strconv.ParseUint(args[2], 10, 64)
			if err != nil {
				writeError(w, "argument couldn't be parsed into an integer")
				return
			}
			s.engine.SetMaxMemory(v)
		case "maxmemory-samples":
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 1 {
				writeError(w, "argument couldn't be parsed into an integer")
				return
			}
			s.engine.SetSamples(v)
		default:
			writeError(w, "unsupported CONFIG parameter: "+param)
			return
		}
		fmt.Fprintf(w, "+OK\r\n")
	default:
		writeError(w, "unknown CONFIG subcommand")
	}
}

// parseKey converts a textual key: decimal integers map directly,
// anything else is hashed.
func parseKey(s string) uint64 {
	if v, err := strconv.ParseUint(s, 10, 64); err == nil {
		return v
	}
	return hashing.String(s)
}

func writeError(w *bufio.Writer, msg string) {
	fmt.Fprintf(w, "-ERR %s\r\n", msg)
}

func writeZeros(w *bufio.Writer, n int) {
	var chunk [256]byte
	for i := range chunk {
		chunk[i] = 'x'
	}
	for n > 0 {
		c := n
		if c > len(chunk) {
			c = len(chunk)
		}
		w.Write(chunk[:c])
		n -= c
	}
}

// errProtocol reports malformed RESP input.
var errProtocol = errors.New("redislike: protocol error")

// readCommand parses one RESP command: either an array of bulk strings
// or a bare inline line (telnet style).
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errProtocol
	}
	if line[0] != '*' {
		return strings.Fields(line), nil // inline command
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > 1024 {
		return nil, errProtocol
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, errProtocol
		}
		size, err := strconv.Atoi(hdr[1:])
		if err != nil || size < 0 || size > 64<<20 {
			return nil, errProtocol
		}
		buf := make([]byte, size+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[size] != '\r' || buf[size+1] != '\n' {
			return nil, errProtocol
		}
		args = append(args, string(buf[:size]))
	}
	return args, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// Client is a minimal RESP client for the examples and tests.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a redislike (or real Redis) server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do issues one command and returns the raw reply.
func (c *Client) Do(args ...string) (string, error) {
	fmt.Fprintf(c.w, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(c.w, "$%d\r\n%s\r\n", len(a), a)
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	return c.readReply()
}

func (c *Client) readReply() (string, error) {
	line, err := readLine(c.r)
	if err != nil {
		return "", err
	}
	if len(line) == 0 {
		return "", errProtocol
	}
	switch line[0] {
	case '+', ':':
		return line[1:], nil
	case '-':
		return "", errors.New(line[1:])
	case '$':
		size, err := strconv.Atoi(line[1:])
		if err != nil {
			return "", errProtocol
		}
		if size < 0 {
			return "", nil // nil bulk
		}
		buf := make([]byte, size+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return "", err
		}
		return string(buf[:size]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n < 0 || n > 1024 {
			return "", errProtocol
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			part, err := c.readReply()
			if err != nil {
				return "", err
			}
			parts = append(parts, part)
		}
		return strings.Join(parts, " "), nil
	default:
		return "", errProtocol
	}
}

// ConfigSet issues CONFIG SET param value.
func (c *Client) ConfigSet(param, value string) error {
	_, err := c.Do("CONFIG", "SET", param, value)
	return err
}

// ConfigGet issues CONFIG GET param, returning the value.
func (c *Client) ConfigGet(param string) (string, error) {
	reply, err := c.Do("CONFIG", "GET", param)
	if err != nil {
		return "", err
	}
	fields := strings.Fields(reply)
	if len(fields) != 2 {
		return "", fmt.Errorf("redislike: unexpected CONFIG GET reply %q", reply)
	}
	return fields[1], nil
}

// TunableClient adapts a RESP connection to the DLRU controller's
// Tunable surface: cache-aside Access plus online CONFIG SET of
// maxmemory-samples — exactly how DLRU drives a real Redis. Network
// errors are retained (Err) rather than returned, matching the
// controller's fire-and-forget interface.
type TunableClient struct {
	c       *Client
	lastErr error
}

// NewTunableClient wraps an established client.
func NewTunableClient(c *Client) *TunableClient { return &TunableClient{c: c} }

// Err returns the first error encountered, if any.
func (t *TunableClient) Err() error { return t.lastErr }

// Access performs a cache-aside get-then-fill and reports hits.
func (t *TunableClient) Access(req trace.Request) bool {
	switch req.Op {
	case trace.OpDelete:
		if _, err := t.c.Do("DEL", strconv.FormatUint(req.Key, 10)); err != nil && t.lastErr == nil {
			t.lastErr = err
		}
		return false
	case trace.OpSet:
		if err := t.c.Set(req.Key, int(req.Size)); err != nil && t.lastErr == nil {
			t.lastErr = err
		}
		return false
	default:
		_, ok, err := t.c.Get(req.Key)
		if err != nil {
			if t.lastErr == nil {
				t.lastErr = err
			}
			return false
		}
		if ok {
			return true
		}
		if err := t.c.Set(req.Key, int(req.Size)); err != nil && t.lastErr == nil {
			t.lastErr = err
		}
		return false
	}
}

// SetSamplingSize reconfigures maxmemory-samples over the wire.
func (t *TunableClient) SetSamplingSize(k int) {
	if err := t.c.ConfigSet("maxmemory-samples", strconv.Itoa(k)); err != nil && t.lastErr == nil {
		t.lastErr = err
	}
}

// Set stores a value of the given size.
func (c *Client) Set(key uint64, size int) error {
	_, err := c.Do("SET", strconv.FormatUint(key, 10), strings.Repeat("v", size))
	return err
}

// Get fetches a key, returning the value length and presence.
func (c *Client) Get(key uint64) (int, bool, error) {
	v, err := c.Do("GET", strconv.FormatUint(key, 10))
	if err != nil {
		return 0, false, err
	}
	if v == "" {
		return 0, false, nil
	}
	return len(v), true, nil
}
