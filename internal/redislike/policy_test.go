package redislike

import (
	"testing"

	"krr/internal/trace"
)

func TestLFUIncrementLogarithmic(t *testing.T) {
	e := NewEngine(Config{Policy: PolicyLFU, Seed: 1})
	obj := &object{lfu: lfuInitVal}
	// At the initial value the increment probability is 1, so the
	// first touch always bumps it.
	e.lfuIncrement(obj)
	if obj.lfu != lfuInitVal+1 {
		t.Fatalf("first increment: lfu = %d", obj.lfu)
	}
	// High counters rise rarely: out of 1000 tries at counter 105,
	// p = 1/(100*10+1) — expect ~1.
	obj.lfu = 105
	rises := 0
	for i := 0; i < 1000; i++ {
		before := obj.lfu
		e.lfuIncrement(obj)
		if obj.lfu != before {
			rises++
			obj.lfu = 105
		}
	}
	if rises > 20 {
		t.Fatalf("high counter rose %d/1000 times — not logarithmic", rises)
	}
	// Saturation.
	obj.lfu = 255
	e.lfuIncrement(obj)
	if obj.lfu != 255 {
		t.Fatal("counter must saturate at 255")
	}
}

func TestLFUDecay(t *testing.T) {
	e := NewEngine(Config{Policy: PolicyLFU, Seed: 1})
	obj := &object{lfu: 10, lfuTouched: 0}
	e.ticks = lfuDecayTime * 3
	e.lfuDecay(obj)
	if obj.lfu != 7 {
		t.Fatalf("lfu after 3 decay steps = %d, want 7", obj.lfu)
	}
	// Floor at zero.
	obj.lfu = 1
	obj.lfuTouched = 0
	e.ticks = lfuDecayTime * 50
	e.lfuDecay(obj)
	if obj.lfu != 0 {
		t.Fatalf("lfu = %d, want floor 0", obj.lfu)
	}
}

func TestPolicyLFUSurvivesScan(t *testing.T) {
	// LFU keeps a frequently-accessed hot set through a cold scan
	// that would flush LRU.
	const hot = 50
	const maxMem = 200 * (100 + perKeyOverhead)
	runScan := func(policy Policy) int {
		e := NewEngine(Config{MaxMemory: maxMem, Policy: policy, Seed: 7})
		for round := 0; round < 50; round++ {
			for k := uint64(0); k < hot; k++ {
				e.Access(trace.Request{Key: k, Size: 100})
			}
		}
		for k := uint64(10000); k < 10000+400; k++ {
			e.Access(trace.Request{Key: k, Size: 100})
		}
		survivors := 0
		for k := uint64(0); k < hot; k++ {
			if _, ok := e.Get(k); ok {
				survivors++
			}
		}
		return survivors
	}
	lfu := runScan(PolicyLFU)
	lru := runScan(PolicyLRU)
	// Redis's LFU_INIT_VAL=5 makes fresh scan keys resemble lightly
	// used ones, so retention is partial — but it must clearly beat
	// LRU, which flushes the hot set entirely under a scan twice the
	// cache size.
	if lfu < hot/2 {
		t.Fatalf("LFU retained only %d/%d hot keys", lfu, hot)
	}
	if lfu <= lru+10 {
		t.Fatalf("LFU (%d) should retain clearly more hot keys than LRU (%d) under a scan", lfu, lru)
	}
}

func TestPolicyRandomEvictsUniformly(t *testing.T) {
	// With allkeys-random and good sampling, eviction ignores recency:
	// recently-touched keys are as likely to die as cold ones.
	const keys = 200
	const maxMem = keys * (100 + perKeyOverhead)
	e := NewEngine(Config{MaxMemory: maxMem, Policy: PolicyRandom, Sampling: SampleRandomKey, Seed: 9})
	for k := uint64(0); k < keys; k++ {
		e.Access(trace.Request{Key: k, Size: 100})
	}
	// Touch the first half repeatedly (recency signal).
	for round := 0; round < 20; round++ {
		for k := uint64(0); k < keys/2; k++ {
			e.Get(k)
		}
	}
	// Evict half the cache.
	for k := uint64(1000); k < 1000+keys/2; k++ {
		e.Access(trace.Request{Key: k, Size: 100})
	}
	touched, untouched := 0, 0
	for k := uint64(0); k < keys/2; k++ {
		if _, ok := e.Get(k); ok {
			touched++
		}
	}
	for k := uint64(keys / 2); k < keys; k++ {
		if _, ok := e.Get(k); ok {
			untouched++
		}
	}
	// Random eviction: both halves lose similar amounts (vs LRU, where
	// the untouched half would be wiped out).
	if diff := touched - untouched; diff > 25 || diff < -25 {
		t.Fatalf("random policy shows recency bias: touched %d vs untouched %d", touched, untouched)
	}
	if e.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
}

func TestPolicyRandomWithBiasedSampling(t *testing.T) {
	// The someKeys path for allkeys-random must also work.
	const maxMem = 20 * (100 + perKeyOverhead)
	e := NewEngine(Config{MaxMemory: maxMem, Policy: PolicyRandom, Seed: 3})
	for k := uint64(0); k < 200; k++ {
		e.Access(trace.Request{Key: k, Size: 100})
	}
	if e.Len() > 20 {
		t.Fatalf("len %d over budget", e.Len())
	}
}
