package redislike

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"krr/internal/dlru"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// This file implements a ChampSim-style set-dueling policy tournament
// (DRRIP's PSEL counters generalized to N rivals, AMPT's multi-policy
// epochs) on top of the redislike engine. A set-associative cache
// duels on sets; a hash-table cache duels on *key partitions*: the top
// PartitionBits of the key hash split the keyspace into 2^bits
// statistically identical slices, the first len(Rivals) of which are
// leader partitions — miniature engines pinned to one rival
// configuration each, with a proportional share of the memory budget.
// Every other partition belongs to the follower engine, which is
// steered to whichever rival currently holds the highest saturating
// PSEL win counter. Because sampling-based eviction has no rigid
// ordering structure (§1), the follower can flip both its sampling
// size K and its policy online without any state migration.
//
// A dlru.Controller in advisory mode rides along as a second judge:
// its per-K KRR shadow profilers predict, from live non-finalizing
// MRC snapshots, which sampling size a K-LRU cache of the same budget
// *should* prefer, and the duel records whether the empirical PSEL
// winner agrees — an online audit of the tournament against the model.

// Duel defaults.
const (
	// DefaultPartitionBits gives 64 partitions; with the default four
	// rivals the leaders observe 1/16 of the traffic in total, close
	// to DRRIP's 64-of-2048 leader-set ratio.
	DefaultPartitionBits = 6
	// DefaultEpochRequests is the epoch length in requests.
	DefaultEpochRequests = 20_000
	// DefaultPSELMax is the saturating win-counter ceiling. Kept
	// deliberately narrow (2 bits): the ceiling bounds how much
	// history a long-dominant rival can bank, so a phase change
	// flips the steering within a couple of epochs instead of having
	// to grind down an arbitrarily deep lead (the reason DRRIP's
	// PSEL is narrow relative to its update rate — and an epoch here
	// already aggregates thousands of accesses, so little extra
	// smoothing is needed on top).
	DefaultPSELMax = 3
	// DefaultScoreWindow pools each leader's hit/miss deltas over this
	// many trailing epochs before scoring. One epoch of a leader
	// partition is a small sample (EpochRequests / 2^bits requests),
	// and a cyclic workload whose period straddles the epoch length
	// aliases into alternating good/bad epochs for the same rival;
	// pooling two epochs de-aliases that and stops winner flapping.
	DefaultScoreWindow = 2
	// DefaultShadowRate is the judge profilers' spatial sampling rate.
	DefaultShadowRate = 0.1
)

// Rival is one contender configuration in the tournament.
type Rival struct {
	// Name labels the rival in telemetry and INFO (default
	// "<policy>-k<Samples>").
	Name string
	// Samples is the rival's maxmemory-samples (eviction sampling
	// size K).
	Samples int
	// Policy is the rival's eviction policy.
	Policy Policy
}

func (r Rival) String() string {
	if r.Name != "" {
		return r.Name
	}
	if r.Policy == PolicyRandom {
		return "random"
	}
	return fmt.Sprintf("%s-k%d", r.Policy, r.Samples)
}

// DefaultRivals is the stock tournament: recency at the Redis-default
// K, the K=1 degenerate sampler, frequency, and uniform-random.
func DefaultRivals() []Rival {
	return []Rival{
		{Samples: DefaultSamples, Policy: PolicyLRU},
		{Samples: 1, Policy: PolicyLRU},
		{Samples: DefaultSamples, Policy: PolicyLFU},
		{Samples: 1, Policy: PolicyRandom},
	}
}

// ParseRivals parses a comma-separated rival list of "policy:K" specs,
// e.g. "lru:5,lru:1,lfu:5,random:1". The literal "default" yields
// DefaultRivals.
func ParseRivals(spec string) ([]Rival, error) {
	if spec == "default" {
		return DefaultRivals(), nil
	}
	var rivals []Rival
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, kStr, ok := strings.Cut(part, ":")
		k := 1
		if ok {
			v, err := strconv.Atoi(kStr)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("redislike: rival %q: bad sampling size %q", part, kStr)
			}
			k = v
		}
		var pol Policy
		switch strings.ToLower(name) {
		case "lru":
			pol = PolicyLRU
		case "lfu":
			pol = PolicyLFU
		case "random":
			pol = PolicyRandom
		default:
			return nil, fmt.Errorf("redislike: rival %q: unknown policy %q", part, name)
		}
		rivals = append(rivals, Rival{Samples: k, Policy: pol})
	}
	if len(rivals) < 2 {
		return nil, errors.New("redislike: a duel needs at least 2 rivals")
	}
	return rivals, nil
}

// DuelConfig shapes a tournament.
type DuelConfig struct {
	// MaxMemory is the total eviction threshold in bytes, split
	// proportionally between the leader partitions and the follower.
	MaxMemory uint64
	// Rivals are the contender configurations (default DefaultRivals).
	Rivals []Rival
	// PartitionBits sets the partition count to 2^bits (default 6).
	PartitionBits int
	// EpochRequests is how many requests one PSEL epoch spans
	// (default 20000).
	EpochRequests int
	// PSELMax is the saturating win-counter ceiling (default 3).
	PSELMax int64
	// ScoreWindow pools each leader's deltas over this many trailing
	// epochs when scoring (default 2).
	ScoreWindow int
	// Sampling selects the candidate sampler for every engine.
	Sampling SamplingMode
	// ClockResolution is shared by every engine (default 1).
	ClockResolution int
	// ShadowRate is the KRR judge's spatial sampling rate; < 0
	// disables the judge (default 0.1). The judge also requires
	// MaxMemory > 0 and at least two distinct PolicyLRU sampling
	// sizes among the rivals.
	ShadowRate float64
	// Seed fixes all randomness.
	Seed uint64
}

func (c *DuelConfig) fill() error {
	if len(c.Rivals) == 0 {
		c.Rivals = DefaultRivals()
	}
	if len(c.Rivals) < 2 {
		return errors.New("redislike: a duel needs at least 2 rivals")
	}
	if c.PartitionBits <= 0 {
		c.PartitionBits = DefaultPartitionBits
	}
	if c.PartitionBits > 16 {
		return fmt.Errorf("redislike: PartitionBits %d too large (max 16)", c.PartitionBits)
	}
	if len(c.Rivals) >= 1<<c.PartitionBits {
		return fmt.Errorf("redislike: %d rivals need more than %d partitions",
			len(c.Rivals), 1<<c.PartitionBits)
	}
	if c.EpochRequests <= 0 {
		c.EpochRequests = DefaultEpochRequests
	}
	if c.PSELMax <= 0 {
		c.PSELMax = DefaultPSELMax
	}
	if c.ScoreWindow <= 0 {
		c.ScoreWindow = DefaultScoreWindow
	}
	if c.ShadowRate == 0 {
		c.ShadowRate = DefaultShadowRate
	}
	for i, r := range c.Rivals {
		if r.Samples < 1 {
			return fmt.Errorf("redislike: rival %d: Samples %d invalid", i, r.Samples)
		}
	}
	return nil
}

// leader is one rival's dedicated partition. The mutable counters the
// outside world can observe are atomics so a /metrics scrape never
// races the (externally serialized) request path.
type leader struct {
	rival  Rival
	engine *Engine

	hits   telemetry.Counter
	misses telemetry.Counter
	wins   telemetry.Counter
	psel   atomic.Int64
	// epochMiss holds Float64bits of the last completed epoch's miss
	// ratio (NaN until the leader has seen traffic).
	epochMiss atomic.Uint64

	lastHits   uint64
	lastMisses uint64

	// window rings the last ScoreWindow epochs' (hit, miss) deltas;
	// scoring pools them into one sample. Only endEpoch touches it.
	window [][2]uint64
	winPos int
}

// Duel runs the tournament. Like Engine it is single-caller on the
// request path (Server serializes); all observable state is atomic.
type Duel struct {
	cfg      DuelConfig
	bits     uint
	follower *Engine
	leaders  []*leader

	followerMem  uint64
	followerHits telemetry.Counter
	followerMiss telemetry.Counter

	reqCount uint64
	epoch    atomic.Uint64
	winner   atomic.Int64
	switches telemetry.Counter

	judge         *dlru.Controller
	judgeBestK    atomic.Int64
	judgeAgree    telemetry.Counter
	judgeDisagree telemetry.Counter
}

// NewDuel builds a tournament.
func NewDuel(cfg DuelConfig) (*Duel, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	parts := uint64(1) << cfg.PartitionBits
	leaderMem := cfg.MaxMemory / parts
	d := &Duel{
		cfg:         cfg,
		bits:        uint(cfg.PartitionBits),
		followerMem: cfg.MaxMemory - leaderMem*uint64(len(cfg.Rivals)),
	}
	for i, r := range cfg.Rivals {
		d.leaders = append(d.leaders, &leader{
			rival: r,
			engine: NewEngine(Config{
				MaxMemory:       leaderMem,
				Samples:         r.Samples,
				Policy:          r.Policy,
				Sampling:        cfg.Sampling,
				ClockResolution: cfg.ClockResolution,
				Seed:            cfg.Seed + uint64(i)*977,
			}),
		})
		d.leaders[i].psel.Store(cfg.PSELMax / 2)
		d.leaders[i].epochMiss.Store(math.Float64bits(math.NaN()))
		d.leaders[i].window = make([][2]uint64, cfg.ScoreWindow)
	}
	first := cfg.Rivals[0]
	d.follower = NewEngine(Config{
		MaxMemory:       d.followerMem,
		Samples:         first.Samples,
		Policy:          first.Policy,
		Sampling:        cfg.Sampling,
		ClockResolution: cfg.ClockResolution,
		Seed:            cfg.Seed + 104729,
	})
	if ks := d.judgeCandidates(); len(ks) >= 2 && cfg.MaxMemory > 0 && cfg.ShadowRate > 0 {
		budget := cfg.MaxMemory / (trace.DefaultObjectSize + perKeyOverhead)
		if budget == 0 {
			budget = 1
		}
		judge, err := dlru.New(dlru.Config{
			BudgetObjects: budget,
			Candidates:    ks,
			Window:        cfg.EpochRequests,
			SamplingRate:  cfg.ShadowRate,
			Seed:          cfg.Seed + 224737,
		}, nil)
		if err != nil {
			return nil, err
		}
		d.judge = judge
	}
	return d, nil
}

// judgeCandidates returns the distinct sampling sizes of the
// PolicyLRU rivals — the configurations KRR can model.
func (d *Duel) judgeCandidates() []int {
	seen := map[int]bool{}
	var ks []int
	for _, r := range d.cfg.Rivals {
		if r.Policy == PolicyLRU && !seen[r.Samples] {
			seen[r.Samples] = true
			ks = append(ks, r.Samples)
		}
	}
	sort.Ints(ks)
	return ks
}

// partition maps a key to its partition via the top hash bits — the
// dict's bucket index uses the low bits, so leader membership and
// bucket placement stay independent.
func (d *Duel) partition(key uint64) int {
	return int(hashKey(key) >> (64 - d.bits))
}

// engineFor routes a key: leader index in [0, len rivals) or -1 for
// the follower.
func (d *Duel) engineFor(key uint64) (*Engine, int) {
	if p := d.partition(key); p < len(d.leaders) {
		return d.leaders[p].engine, p
	}
	return d.follower, -1
}

// account records one get outcome against the owning partition.
func (d *Duel) account(li int, hit bool) {
	switch {
	case li >= 0 && hit:
		d.leaders[li].hits.Inc()
	case li >= 0:
		d.leaders[li].misses.Inc()
	case hit:
		d.followerHits.Inc()
	default:
		d.followerMiss.Inc()
	}
}

// step advances the epoch machinery and feeds the judge.
func (d *Duel) step(req trace.Request) {
	if d.judge != nil {
		d.judge.Process(req)
	}
	d.reqCount++
	if d.reqCount%uint64(d.cfg.EpochRequests) == 0 {
		d.endEpoch()
	}
}

// Access adapts the tournament to the simulator request convention
// (cache-aside get-or-fill), routing by key partition.
func (d *Duel) Access(req trace.Request) bool {
	e, li := d.engineFor(req.Key)
	hit := e.Access(req)
	if req.Op != trace.OpDelete && req.Op != trace.OpSet {
		d.account(li, hit)
	}
	d.step(req)
	return hit
}

// Get looks up a key in its partition.
func (d *Duel) Get(key uint64) (uint32, bool) {
	e, li := d.engineFor(key)
	size, ok := e.Get(key)
	d.account(li, ok)
	d.step(trace.Request{Key: key, Op: trace.OpGet})
	return size, ok
}

// Set stores a key in its partition.
func (d *Duel) Set(key uint64, size uint32) {
	e, _ := d.engineFor(key)
	e.Set(key, size)
	d.step(trace.Request{Key: key, Op: trace.OpSet, Size: size})
}

// Del removes a key from its partition.
func (d *Duel) Del(key uint64) bool {
	e, _ := d.engineFor(key)
	ok := e.Del(key)
	d.step(trace.Request{Key: key, Op: trace.OpDelete})
	return ok
}

// endEpoch closes one PSEL epoch: score the leaders on their hit/miss
// deltas pooled over the trailing ScoreWindow epochs, bump the
// winner's saturating counter, decay the losers', steer the follower
// to the highest counter, and let the KRR judge grade the outcome.
func (d *Duel) endEpoch() {
	d.epoch.Add(1)
	best, bestMiss := -1, 0.0
	for i, l := range d.leaders {
		h, m := l.hits.Load(), l.misses.Load()
		dh, dm := h-l.lastHits, m-l.lastMisses
		l.lastHits, l.lastMisses = h, m
		if dh+dm > 0 {
			l.epochMiss.Store(math.Float64bits(float64(dm) / float64(dh+dm)))
		}
		l.window[l.winPos] = [2]uint64{dh, dm}
		l.winPos = (l.winPos + 1) % len(l.window)
		var wh, wm uint64
		for _, w := range l.window {
			wh += w[0]
			wm += w[1]
		}
		if wh+wm == 0 {
			continue // idle across the window: no evidence either way
		}
		miss := float64(wm) / float64(wh+wm)
		if best < 0 || miss < bestMiss {
			best, bestMiss = i, miss
		}
	}
	if best >= 0 {
		for i, l := range d.leaders {
			p := l.psel.Load()
			switch {
			case i == best:
				l.wins.Inc()
				if p < d.cfg.PSELMax {
					l.psel.Store(p + 1)
				}
			case p > 0:
				l.psel.Store(p - 1)
			}
		}
	}
	cur := int(d.winner.Load())
	top := cur
	for i := range d.leaders {
		if d.leaders[i].psel.Load() > d.leaders[top].psel.Load() {
			top = i
		}
	}
	if top != cur {
		d.winner.Store(int64(top))
		r := d.cfg.Rivals[top]
		d.follower.SetSamples(r.Samples)
		d.follower.SetPolicy(r.Policy)
		d.switches.Inc()
	}
	d.auditEpoch()
}

// auditEpoch asks the KRR judge which sampling size a K-LRU cache of
// the duel's budget should prefer, from live non-finalizing MRC
// snapshots, and records whether the PSEL winner agrees. The judge's
// budget tracks the observed mean object cost so the prediction stays
// anchored to the real resident capacity.
func (d *Duel) auditEpoch() {
	if d.judge == nil {
		return
	}
	if n := d.Len(); n > 0 {
		if mean := d.UsedMemory() / uint64(n); mean > 0 {
			d.judge.SetBudgetObjects(d.cfg.MaxMemory / mean)
		}
	}
	pred := d.judge.Predictions()
	bestK, bestMiss := 0, math.Inf(1)
	for _, k := range d.judgeCandidates() {
		if pred[k] < bestMiss {
			bestK, bestMiss = k, pred[k]
		}
	}
	if bestK == 0 {
		return
	}
	d.judgeBestK.Store(int64(bestK))
	w := d.cfg.Rivals[int(d.winner.Load())]
	if w.Policy == PolicyLRU && w.Samples == bestK {
		d.judgeAgree.Inc()
	} else {
		d.judgeDisagree.Inc()
	}
}

// Winner returns the rival currently steering the follower.
func (d *Duel) Winner() Rival { return d.cfg.Rivals[int(d.winner.Load())] }

// WinnerIndex returns the winning rival's index.
func (d *Duel) WinnerIndex() int { return int(d.winner.Load()) }

// Epoch returns the number of completed epochs.
func (d *Duel) Epoch() uint64 { return d.epoch.Load() }

// Switches returns how many epochs changed the follower's steering.
func (d *Duel) Switches() uint64 { return d.switches.Load() }

// Judge exposes the advisory KRR controller (nil when disabled).
func (d *Duel) Judge() *dlru.Controller { return d.judge }

// Rivals returns the contender configurations.
func (d *Duel) Rivals() []Rival { return append([]Rival(nil), d.cfg.Rivals...) }

// Follower exposes the follower engine (serialize access externally).
func (d *Duel) Follower() *Engine { return d.follower }

// Len returns resident keys across every partition.
func (d *Duel) Len() int {
	n := d.follower.Len()
	for _, l := range d.leaders {
		n += l.engine.Len()
	}
	return n
}

// UsedMemory returns the tracked footprint across every partition.
func (d *Duel) UsedMemory() uint64 {
	used := d.follower.UsedMemory()
	for _, l := range d.leaders {
		used += l.engine.UsedMemory()
	}
	return used
}

// Stats aggregates engine counters across every partition.
func (d *Duel) Stats() Stats {
	st := d.follower.Stats()
	for _, l := range d.leaders {
		ls := l.engine.Stats()
		st.Hits += ls.Hits
		st.Misses += ls.Misses
		st.Sets += ls.Sets
		st.Dels += ls.Dels
		st.Evictions += ls.Evictions
	}
	return st
}

// LeaderState is one rival's observable duel state.
type LeaderState struct {
	Rival     Rival
	PSEL      int64
	Wins      uint64
	Hits      uint64
	Misses    uint64
	EpochMiss float64 // NaN until the leader has completed an epoch with traffic
}

// DuelState is a consistent-enough snapshot of the tournament for
// JSON/INFO surfaces; every field is read from atomics.
type DuelState struct {
	Epoch         uint64
	WinnerIndex   int
	Winner        string
	Switches      uint64
	Leaders       []LeaderState
	JudgeBestK    int // 0 when the judge is disabled or undecided
	JudgeAgree    uint64
	JudgeDisagree uint64
}

// State snapshots the duel (safe from any goroutine).
func (d *Duel) State() DuelState {
	st := DuelState{
		Epoch:         d.epoch.Load(),
		WinnerIndex:   int(d.winner.Load()),
		Switches:      d.switches.Load(),
		JudgeBestK:    int(d.judgeBestK.Load()),
		JudgeAgree:    d.judgeAgree.Load(),
		JudgeDisagree: d.judgeDisagree.Load(),
	}
	st.Winner = d.cfg.Rivals[st.WinnerIndex].String()
	for _, l := range d.leaders {
		st.Leaders = append(st.Leaders, LeaderState{
			Rival:     l.rival,
			PSEL:      l.psel.Load(),
			Wins:      l.wins.Load(),
			Hits:      l.hits.Load(),
			Misses:    l.misses.Load(),
			EpochMiss: math.Float64frombits(l.epochMiss.Load()),
		})
	}
	return st
}

// metricName folds a rival name into a Prometheus-safe suffix.
func metricName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// MetricsInto registers the duel's observable state under prefix,
// including the judge controller's own metrics under prefix+"judge_".
// All readers are atomics, safe to scrape mid-stream.
func (d *Duel) MetricsInto(set *telemetry.Set, prefix string) {
	set.GaugeFunc(prefix+"epoch", "completed PSEL epochs", func() float64 {
		return float64(d.epoch.Load())
	})
	set.GaugeFunc(prefix+"winner_index", "index of the rival steering the follower", func() float64 {
		return float64(d.winner.Load())
	})
	set.CounterFunc(prefix+"switches_total", "epochs that re-steered the follower", d.switches.Load)
	set.CounterFunc(prefix+"follower_hits_total", "follower partition get hits", d.followerHits.Load)
	set.CounterFunc(prefix+"follower_misses_total", "follower partition get misses", d.followerMiss.Load)
	for i, l := range d.leaders {
		l := l
		name := metricName(l.rival.String())
		help := fmt.Sprintf("leader %d (%s)", i, l.rival)
		set.GaugeFunc(prefix+"psel_"+name, help+" saturating win counter", func() float64 {
			return float64(l.psel.Load())
		})
		set.CounterFunc(prefix+"leader_wins_total_"+name, help+" epoch wins", l.wins.Load)
		set.CounterFunc(prefix+"leader_hits_total_"+name, help+" get hits", l.hits.Load)
		set.CounterFunc(prefix+"leader_misses_total_"+name, help+" get misses", l.misses.Load)
		set.GaugeFunc(prefix+"leader_epoch_miss_"+name, help+" last epoch miss ratio", func() float64 {
			return math.Float64frombits(l.epochMiss.Load())
		})
	}
	if d.judge != nil {
		set.GaugeFunc(prefix+"judge_best_k", "KRR-predicted best sampling size", func() float64 {
			return float64(d.judgeBestK.Load())
		})
		set.CounterFunc(prefix+"judge_agree_total", "epochs where the PSEL winner matched the KRR prediction", d.judgeAgree.Load)
		set.CounterFunc(prefix+"judge_disagree_total", "epochs where the PSEL winner diverged from the KRR prediction", d.judgeDisagree.Load)
		d.judge.MetricsInto(set, prefix+"judge_")
	}
}

// Info renders the aggregate INFO fields plus a duel section.
func (d *Duel) Info() string {
	st := d.State()
	agg := d.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "used_memory:%d\nmaxmemory:%d\nkeys:%d\nkeyspace_hits:%d\nkeyspace_misses:%d\nevicted_keys:%d\n",
		d.UsedMemory(), d.cfg.MaxMemory, d.Len(), agg.Hits, agg.Misses, agg.Evictions)
	fmt.Fprintf(&b, "duel_epoch:%d\nduel_winner:%s\nduel_switches:%d\n", st.Epoch, st.Winner, st.Switches)
	for _, l := range st.Leaders {
		fmt.Fprintf(&b, "duel_psel_%s:%d\n", metricName(l.Rival.String()), l.PSEL)
	}
	if d.judge != nil {
		fmt.Fprintf(&b, "duel_judge_best_k:%d\nduel_judge_agree:%d\nduel_judge_disagree:%d\n",
			st.JudgeBestK, st.JudgeAgree, st.JudgeDisagree)
	}
	return b.String()
}
