package redislike

import (
	"fmt"

	"krr/internal/trace"
	"krr/internal/xrand"
)

// LRU clock parameters, mirroring Redis's 24-bit object clock.
const (
	lruBits = 24
	lruMask = 1<<lruBits - 1
	// EvictionPoolSize matches Redis's EVPOOL_SIZE.
	EvictionPoolSize = 16
	// DefaultSamples matches Redis 5+'s default maxmemory-samples.
	DefaultSamples = 5
	// PerKeyOverhead approximates Redis's per-key bookkeeping cost
	// (dict entry + robj header) counted against maxmemory. Exported
	// so budget math outside the package (experiments, duel sizing)
	// matches the engine's accounting.
	PerKeyOverhead = 48
	perKeyOverhead = PerKeyOverhead
)

// Policy selects the eviction policy, mirroring Redis's
// maxmemory-policy for the allkeys family.
type Policy uint8

// Policies.
const (
	// PolicyLRU is allkeys-lru: evict the sample's least recently
	// used key (the policy the paper models).
	PolicyLRU Policy = iota
	// PolicyRandom is allkeys-random: evict a uniformly random key —
	// the K=1 degenerate case of sampled LRU.
	PolicyRandom
	// PolicyLFU is allkeys-lfu: evict the sample's least frequently
	// used key, tracked with Redis's 8-bit logarithmic (Morris)
	// counter and idle-time decay.
	PolicyLFU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyRandom:
		return "random"
	case PolicyLFU:
		return "lfu"
	default:
		return "policy?"
	}
}

// LFU counter parameters, mirroring Redis defaults.
const (
	lfuInitVal   = 5   // LFU_INIT_VAL: new keys start warm
	lfuLogFactor = 10  // lfu-log-factor
	lfuDecayTime = 600 // clock ticks per decay step (lfu-decay-time analogue)
)

// SamplingMode selects how eviction candidates are sampled.
type SamplingMode uint8

// Sampling modes.
const (
	// SampleSomeKeys is Redis's default dictGetSomeKeys bucket walk:
	// fast but bucket-correlated.
	SampleSomeKeys SamplingMode = iota
	// SampleRandomKey draws each candidate independently via
	// dictGetRandomKey: slower, good randomness (§5.7 footnote 3).
	SampleRandomKey
)

// Config shapes an Engine.
type Config struct {
	// MaxMemory is the eviction threshold in bytes (counting value
	// sizes plus per-key overhead). 0 disables eviction.
	MaxMemory uint64
	// Samples is maxmemory-samples (default 5).
	Samples int
	// Policy selects the eviction policy (default PolicyLRU).
	Policy Policy
	// Sampling selects the candidate sampler.
	Sampling SamplingMode
	// ClockResolution is how many commands share one LRU clock tick;
	// Redis ticks in wall-clock seconds, so many commands observe the
	// same clock value. 1 gives a perfect recency clock.
	ClockResolution int
	// Seed fixes the engine's randomness.
	Seed uint64
}

func (c *Config) fill() {
	if c.Samples <= 0 {
		c.Samples = DefaultSamples
	}
	if c.ClockResolution <= 0 {
		c.ClockResolution = 1
	}
}

// object is a stored value's metadata. Values themselves are not
// materialized — only their size is tracked, which is all the cache
// dynamics depend on.
type object struct {
	size uint32
	lru  uint32 // 24-bit clock value at last touch
	// lfu is Redis's 8-bit logarithmic access counter, maintained
	// only under PolicyLFU.
	lfu uint8
	// lfuTouched is the clock value of the last LFU decay check.
	lfuTouched uint32
}

// Stats counts engine activity.
type Stats struct {
	Hits, Misses, Sets, Dels, Evictions uint64
}

// Engine is the single-threaded cache core. Wrap it with Server for
// network access; serialize access externally if shared.
type Engine struct {
	cfg   Config
	dict  *dict
	src   *xrand.Source
	used  uint64
	ticks uint64
	stats Stats

	pool      evictionPool
	sampleBuf []*dictEntry
}

// NewEngine builds an engine.
func NewEngine(cfg Config) *Engine {
	cfg.fill()
	return &Engine{
		cfg:       cfg,
		dict:      newDict(),
		src:       xrand.New(cfg.Seed),
		sampleBuf: make([]*dictEntry, 0, cfg.Samples),
	}
}

// clock returns the current 24-bit LRU clock.
func (e *Engine) clock() uint32 {
	return uint32(e.ticks/uint64(e.cfg.ClockResolution)) & lruMask
}

// idleTime returns how many clock units ago obj was touched,
// accounting for 24-bit wraparound exactly as Redis does.
func (e *Engine) idleTime(obj *object) uint32 {
	now := e.clock()
	if now >= obj.lru {
		return now - obj.lru
	}
	return lruMask - obj.lru + now
}

// touch refreshes an object's recency clock and, under PolicyLFU, its
// logarithmic frequency counter.
func (e *Engine) touch(obj *object) {
	obj.lru = e.clock()
	if e.cfg.Policy == PolicyLFU {
		e.lfuDecay(obj)
		e.lfuIncrement(obj)
	}
}

// lfuDecay decrements the counter once per lfuDecayTime clock ticks
// elapsed since the last check (Redis's lfu-decay-time).
func (e *Engine) lfuDecay(obj *object) {
	now := e.clock()
	var elapsed uint32
	if now >= obj.lfuTouched {
		elapsed = now - obj.lfuTouched
	} else {
		elapsed = lruMask - obj.lfuTouched + now
	}
	steps := elapsed / lfuDecayTime
	if steps == 0 {
		return
	}
	if uint32(obj.lfu) > steps {
		obj.lfu -= uint8(steps)
	} else {
		obj.lfu = 0
	}
	obj.lfuTouched = now
}

// lfuIncrement applies Redis's probabilistic logarithmic increment:
// the counter rises with probability 1/((counter-init)·factor + 1),
// saturating at 255.
func (e *Engine) lfuIncrement(obj *object) {
	if obj.lfu == 255 {
		return
	}
	base := float64(obj.lfu) - lfuInitVal
	if base < 0 {
		base = 0
	}
	p := 1.0 / (base*lfuLogFactor + 1)
	if e.src.Float64() < p {
		obj.lfu++
	}
}

// evictionScore returns the pool metric for a candidate: higher means
// a better victim (Redis stores "idle" in the pool for both policies;
// for LFU it uses 255 - counter).
func (e *Engine) evictionScore(obj *object) uint32 {
	if e.cfg.Policy == PolicyLFU {
		e.lfuDecay(obj)
		return 255 - uint32(obj.lfu)
	}
	return e.idleTime(obj)
}

// SetSamples reconfigures maxmemory-samples online — the Redis
// CONFIG SET that the DLRU controller exploits (§1). k must be >= 1.
func (e *Engine) SetSamples(k int) {
	if k < 1 {
		k = 1
	}
	e.cfg.Samples = k
	if cap(e.sampleBuf) < k {
		e.sampleBuf = make([]*dictEntry, 0, k)
	}
}

// Samples returns the current maxmemory-samples.
func (e *Engine) Samples() int { return e.cfg.Samples }

// SetPolicy switches the eviction policy online — the second knob the
// set-dueling tournament steers (Redis: CONFIG SET maxmemory-policy).
// Objects carry their LFU counters from creation, so a switch into
// PolicyLFU starts from warm-init counters and decays from there,
// exactly like a real Redis policy flip on a running instance.
func (e *Engine) SetPolicy(p Policy) { e.cfg.Policy = p }

// Policy returns the eviction policy in force.
func (e *Engine) Policy() Policy { return e.cfg.Policy }

// SetMaxMemory reconfigures the eviction threshold, evicting
// immediately if the new limit is already exceeded (0 disables).
func (e *Engine) SetMaxMemory(bytes uint64) {
	e.cfg.MaxMemory = bytes
	e.evictIfNeeded()
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Len returns the number of stored keys.
func (e *Engine) Len() int { return e.dict.used }

// UsedMemory returns the tracked memory footprint.
func (e *Engine) UsedMemory() uint64 { return e.used }

// Get looks up key, touching its LRU clock. It returns the stored
// size and whether the key was present.
func (e *Engine) Get(key uint64) (uint32, bool) {
	e.ticks++
	if ent := e.dict.find(key); ent != nil {
		e.touch(ent.obj)
		e.pool.removeKey(key)
		e.stats.Hits++
		return ent.obj.size, true
	}
	e.stats.Misses++
	return 0, false
}

// Set stores key with a value of the given size, evicting as needed.
func (e *Engine) Set(key uint64, size uint32) {
	e.ticks++
	e.store(key, size)
}

// store implements Set without advancing the clock, so a cache-aside
// fill can share the tick of the Get that missed (one tick per
// request, the K-LRU simulator convention).
func (e *Engine) store(key uint64, size uint32) {
	e.stats.Sets++
	cost := uint64(size) + perKeyOverhead
	if prev := e.dict.find(key); prev != nil {
		e.used -= uint64(prev.obj.size) + perKeyOverhead
		prev.obj.size = size
		e.touch(prev.obj)
		e.used += cost
	} else {
		e.dict.set(key, &object{size: size, lru: e.clock(), lfu: lfuInitVal, lfuTouched: e.clock()})
		e.used += cost
	}
	// A just-written key is maximally fresh: drop any stale high-idle
	// pool entry left from before the touch (or from a prior life of a
	// randomly-evicted key), or the next eviction cycle could pick this
	// hot key on its stale score.
	e.pool.removeKey(key)
	e.evictIfNeeded()
}

// Del removes key, reporting whether it existed.
func (e *Engine) Del(key uint64) bool {
	e.ticks++
	obj := e.dict.del(key)
	if obj == nil {
		return false
	}
	e.stats.Dels++
	e.used -= uint64(obj.size) + perKeyOverhead
	e.pool.removeKey(key)
	return true
}

// Access adapts the engine to the cache-simulator request convention:
// a get that misses is followed by a set of the object (cache-aside
// fill), which is how the §5.7 validation replays traces against
// Redis.
func (e *Engine) Access(req trace.Request) bool {
	switch req.Op {
	case trace.OpDelete:
		e.Del(req.Key)
		return false
	case trace.OpSet:
		e.Set(req.Key, req.Size)
		return false
	default:
		if _, ok := e.Get(req.Key); ok {
			return true
		}
		// The fill shares the missing Get's tick: one clock advance
		// per request, not two, so idle times on miss-heavy traces
		// match the simulator convention.
		e.store(req.Key, req.Size)
		return false
	}
}

// poolEntry is one eviction-pool slot.
type poolEntry struct {
	key  uint64
	idle uint32
	used bool
}

// evictionPool mirrors Redis's EVPOOL: a small array kept sorted by
// idle time ascending; the best eviction candidate (largest idle) sits
// at the highest used index. Candidates persist across eviction
// cycles, which lets good victims found in earlier samples survive to
// later decisions.
type evictionPool struct {
	slots [EvictionPoolSize]poolEntry
}

// offer inserts a candidate, keeping the array sorted by idle time and
// dropping the smallest-idle entry on overflow. Duplicate keys update
// in place.
func (p *evictionPool) offer(key uint64, idle uint32) {
	p.removeKey(key)
	// Find insertion point among used slots (sorted ascending by idle).
	n := 0
	for n < EvictionPoolSize && p.slots[n].used {
		n++
	}
	pos := 0
	for pos < n && p.slots[pos].idle < idle {
		pos++
	}
	if n == EvictionPoolSize {
		if pos == 0 {
			return // worse than every current candidate
		}
		// Shift left, dropping slot 0.
		copy(p.slots[0:], p.slots[1:pos])
		p.slots[pos-1] = poolEntry{key: key, idle: idle, used: true}
		return
	}
	copy(p.slots[pos+1:n+1], p.slots[pos:n])
	p.slots[pos] = poolEntry{key: key, idle: idle, used: true}
}

// takeBest pops the highest-idle candidate, or returns false.
func (p *evictionPool) takeBest() (uint64, bool) {
	for i := EvictionPoolSize - 1; i >= 0; i-- {
		if p.slots[i].used {
			key := p.slots[i].key
			p.slots[i].used = false
			return key, true
		}
	}
	return 0, false
}

// removeKey drops a key from the pool (after deletion or update).
func (p *evictionPool) removeKey(key uint64) {
	n := 0
	for n < EvictionPoolSize && p.slots[n].used {
		n++
	}
	for i := 0; i < n; i++ {
		if p.slots[i].key == key {
			copy(p.slots[i:], p.slots[i+1:n])
			p.slots[n-1].used = false
			return
		}
	}
}

// evictIfNeeded implements Redis's approximated eviction loop: while
// over maxmemory, sample keys, feed the eviction pool (scored by the
// active policy), and delete the pool's best candidate. allkeys-random
// skips the pool and deletes a random key directly, as Redis does.
func (e *Engine) evictIfNeeded() {
	if e.cfg.MaxMemory == 0 {
		return
	}
	for e.used > e.cfg.MaxMemory && e.dict.used > 0 {
		if e.cfg.Policy == PolicyRandom {
			var ent *dictEntry
			if e.cfg.Sampling == SampleRandomKey {
				ent = e.dict.randomKey(e.src)
			} else if got := e.dict.someKeys(e.src, 1, e.sampleBuf); len(got) > 0 {
				ent = got[0]
			}
			if ent == nil {
				return
			}
			e.used -= uint64(ent.obj.size) + perKeyOverhead
			e.dict.del(ent.key)
			e.stats.Evictions++
			continue
		}
		e.samplePool()
		key, ok := e.pool.takeBest()
		if !ok {
			continue // resample
		}
		ent := e.dict.find(key)
		if ent == nil {
			continue // stale pool entry
		}
		e.used -= uint64(ent.obj.size) + perKeyOverhead
		e.dict.del(key)
		e.stats.Evictions++
	}
}

// samplePool draws Samples candidates and offers them to the pool.
func (e *Engine) samplePool() {
	switch e.cfg.Sampling {
	case SampleRandomKey:
		for i := 0; i < e.cfg.Samples; i++ {
			if ent := e.dict.randomKey(e.src); ent != nil {
				e.pool.offer(ent.key, e.evictionScore(ent.obj))
			}
		}
	default:
		e.sampleBuf = e.dict.someKeys(e.src, e.cfg.Samples, e.sampleBuf)
		for _, ent := range e.sampleBuf {
			e.pool.offer(ent.key, e.evictionScore(ent.obj))
		}
	}
}

// Info renders a small INFO-style summary.
func (e *Engine) Info() string {
	return fmt.Sprintf(
		"used_memory:%d\nmaxmemory:%d\nkeys:%d\nkeyspace_hits:%d\nkeyspace_misses:%d\nevicted_keys:%d\n",
		e.used, e.cfg.MaxMemory, e.dict.used, e.stats.Hits, e.stats.Misses, e.stats.Evictions)
}
