package redislike

import (
	"math"
	"testing"

	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestDictBasics(t *testing.T) {
	d := newDict()
	if d.find(1) != nil {
		t.Fatal("empty dict found a key")
	}
	d.set(1, &object{size: 10})
	d.set(2, &object{size: 20})
	if d.used != 2 {
		t.Fatalf("used = %d", d.used)
	}
	if e := d.find(1); e == nil || e.obj.size != 10 {
		t.Fatal("find failed")
	}
	if prev := d.set(1, &object{size: 15}); prev == nil || prev.size != 10 {
		t.Fatal("replace must return previous object")
	}
	if d.used != 2 {
		t.Fatal("replace must not grow used")
	}
	if obj := d.del(1); obj == nil || obj.size != 15 {
		t.Fatal("del must return the object")
	}
	if d.del(1) != nil {
		t.Fatal("double delete must return nil")
	}
	if d.used != 1 {
		t.Fatalf("used = %d after delete", d.used)
	}
}

func TestDictGrowPreservesEntries(t *testing.T) {
	d := newDict()
	const n = 10000
	for k := uint64(0); k < n; k++ {
		d.set(k, &object{size: uint32(k)})
	}
	if d.used != n {
		t.Fatalf("used = %d", d.used)
	}
	for k := uint64(0); k < n; k++ {
		e := d.find(k)
		if e == nil || e.obj.size != uint32(k) {
			t.Fatalf("key %d lost after growth", k)
		}
	}
	count := 0
	d.forEach(func(*dictEntry) { count++ })
	if count != n {
		t.Fatalf("forEach visited %d", count)
	}
}

func TestDictSomeKeys(t *testing.T) {
	d := newDict()
	for k := uint64(0); k < 1000; k++ {
		d.set(k, &object{})
	}
	src := xrand.New(1)
	out := d.someKeys(src, 5, nil)
	if len(out) != 5 {
		t.Fatalf("someKeys returned %d", len(out))
	}
	for _, e := range out {
		if d.find(e.key) == nil {
			t.Fatal("sampled key not in dict")
		}
	}
	if got := d.someKeys(src, 0, out); len(got) != 0 {
		t.Fatal("count 0 must return empty")
	}
	empty := newDict()
	if got := empty.someKeys(src, 5, nil); len(got) != 0 {
		t.Fatal("empty dict must return no samples")
	}
}

func TestDictRandomKeyCoverage(t *testing.T) {
	d := newDict()
	const n = 50
	for k := uint64(0); k < n; k++ {
		d.set(k, &object{})
	}
	src := xrand.New(2)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		seen[d.randomKey(src).key] = true
	}
	if len(seen) != n {
		t.Fatalf("randomKey covered %d of %d keys", len(seen), n)
	}
	if newDict().randomKey(src) != nil {
		t.Fatal("empty dict must return nil")
	}
}

func TestEvictionPoolOrdering(t *testing.T) {
	var p evictionPool
	p.offer(1, 10)
	p.offer(2, 30)
	p.offer(3, 20)
	key, ok := p.takeBest()
	if !ok || key != 2 {
		t.Fatalf("best = %d, want key 2 (idle 30)", key)
	}
	key, _ = p.takeBest()
	if key != 3 {
		t.Fatalf("second best = %d, want 3", key)
	}
}

func TestEvictionPoolOverflow(t *testing.T) {
	var p evictionPool
	for i := uint64(0); i < EvictionPoolSize; i++ {
		p.offer(i, uint32(i)+100)
	}
	// Worse than everything: rejected.
	p.offer(99, 1)
	for i := 0; i < EvictionPoolSize; i++ {
		k, ok := p.takeBest()
		if !ok {
			t.Fatal("pool drained early")
		}
		if k == 99 {
			t.Fatal("worst candidate must have been rejected")
		}
	}
	// Better than everything: replaces the lowest.
	for i := uint64(0); i < EvictionPoolSize; i++ {
		p.offer(i, uint32(i)+100)
	}
	p.offer(77, 9999)
	k, _ := p.takeBest()
	if k != 77 {
		t.Fatalf("best = %d, want 77", k)
	}
}

func TestEvictionPoolDuplicateAndRemove(t *testing.T) {
	var p evictionPool
	p.offer(5, 10)
	p.offer(5, 50)
	k, _ := p.takeBest()
	if k != 5 {
		t.Fatal("pool lost the key")
	}
	if _, ok := p.takeBest(); ok {
		t.Fatal("duplicate offer must not duplicate the entry")
	}
	p.offer(6, 10)
	p.removeKey(6)
	if _, ok := p.takeBest(); ok {
		t.Fatal("removed key must not be returned")
	}
}

func TestEngineGetSetDel(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	if _, ok := e.Get(1); ok {
		t.Fatal("empty engine hit")
	}
	e.Set(1, 100)
	if size, ok := e.Get(1); !ok || size != 100 {
		t.Fatalf("get = %d,%v", size, ok)
	}
	if !e.Del(1) || e.Del(1) {
		t.Fatal("del semantics wrong")
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Sets != 1 || st.Dels != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineMemoryAccounting(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Set(1, 100)
	want := uint64(100 + perKeyOverhead)
	if e.UsedMemory() != want {
		t.Fatalf("used = %d, want %d", e.UsedMemory(), want)
	}
	e.Set(1, 50) // shrink in place
	want = 50 + perKeyOverhead
	if e.UsedMemory() != want {
		t.Fatalf("after shrink: used = %d, want %d", e.UsedMemory(), want)
	}
	e.Del(1)
	if e.UsedMemory() != 0 {
		t.Fatalf("after delete: used = %d", e.UsedMemory())
	}
}

func TestEngineEvictsUnderMaxMemory(t *testing.T) {
	const maxMem = 50 * (100 + perKeyOverhead)
	e := NewEngine(Config{MaxMemory: maxMem, Seed: 3})
	for k := uint64(0); k < 500; k++ {
		e.Set(k, 100)
		if e.UsedMemory() > maxMem {
			t.Fatalf("used %d exceeds maxmemory after set %d", e.UsedMemory(), k)
		}
	}
	if e.Len() == 0 || e.Len() > 50 {
		t.Fatalf("resident keys %d implausible", e.Len())
	}
	if e.Stats().Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestEngineEvictsColdKeys(t *testing.T) {
	// Keep half the keys hot; evictions should fall mostly on the
	// cold half — the essence of approximated LRU.
	const keys = 200
	const maxMem = keys * (100 + perKeyOverhead)
	e := NewEngine(Config{MaxMemory: maxMem, Seed: 5})
	for k := uint64(0); k < keys; k++ {
		e.Set(k, 100)
	}
	// Touch the hot half repeatedly.
	for round := 0; round < 20; round++ {
		for k := uint64(0); k < keys/2; k++ {
			e.Get(k)
		}
	}
	// Insert new keys to force evictions.
	for k := uint64(1000); k < 1000+keys/2; k++ {
		e.Set(k, 100)
	}
	hotSurvivors := 0
	for k := uint64(0); k < keys/2; k++ {
		if _, ok := e.Get(k); ok {
			hotSurvivors++
		}
	}
	if hotSurvivors < keys/2*8/10 {
		t.Fatalf("only %d/%d hot keys survived eviction", hotSurvivors, keys/2)
	}
}

func TestIdleTimeWraparound(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	obj := &object{lru: lruMask - 5}
	e.ticks = uint64(lruMask) + 11 // clock wrapped to 10
	if got := e.idleTime(obj); got != 15 {
		t.Fatalf("wrapped idle = %d, want 15", got)
	}
}

func TestClockResolutionCoarsens(t *testing.T) {
	e := NewEngine(Config{Seed: 1, ClockResolution: 100})
	c0 := e.clock()
	for i := 0; i < 50; i++ {
		e.Set(uint64(i), 1)
	}
	if e.clock() != c0 {
		t.Fatal("clock must not advance within one resolution window")
	}
	for i := 0; i < 100; i++ {
		e.Set(uint64(i+100), 1)
	}
	if e.clock() == c0 {
		t.Fatal("clock must advance across windows")
	}
}

func TestAccessCacheAside(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	if e.Access(trace.Request{Key: 1, Size: 10, Op: trace.OpGet}) {
		t.Fatal("first access must miss")
	}
	if !e.Access(trace.Request{Key: 1, Size: 10, Op: trace.OpGet}) {
		t.Fatal("second access must hit (miss fills)")
	}
	if e.Access(trace.Request{Key: 1, Size: 10, Op: trace.OpSet}) {
		t.Fatal("set never reports a hit")
	}
	e.Access(trace.Request{Key: 1, Op: trace.OpDelete})
	if e.Len() != 0 {
		t.Fatal("delete must remove")
	}
}

// missRatio replays a trace through an engine with the given config.
func missRatio(tr *trace.Trace, cfg Config) float64 {
	e := NewEngine(cfg)
	var hits, total int
	r := tr.Reader()
	for {
		req, err := r.Next()
		if err != nil {
			break
		}
		if req.Op == trace.OpDelete {
			e.Access(req)
			continue
		}
		total++
		if e.Access(req) {
			hits++
		}
	}
	return 1 - float64(hits)/float64(total)
}

func TestEngineMatchesIdealKLRUSimulator(t *testing.T) {
	// §5.7: the engine's miss ratio should be close to an idealized
	// K-LRU simulator at the same object budget, and the good-random
	// sampling mode should be at least as close as the biased default.
	g := workload.NewZipf(7, 5000, 0.9, nil, 0)
	tr, _ := trace.Collect(g, 100000)

	const residentObjects = 1000
	const objCost = 200 + perKeyOverhead
	cfg := Config{MaxMemory: residentObjects * objCost, Samples: 5, Seed: 9}

	biased := missRatio(tr, cfg)
	cfgGood := cfg
	cfgGood.Sampling = SampleRandomKey
	good := missRatio(tr, cfgGood)

	// Idealized simulator at the same object capacity.
	ideal := simulateKLRUMiss(tr, residentObjects, 5, 31)

	if math.Abs(good-ideal) > 0.03 {
		t.Fatalf("good-random engine %v vs ideal K-LRU %v", good, ideal)
	}
	if math.Abs(biased-ideal) > 0.08 {
		t.Fatalf("biased engine %v too far from ideal %v", biased, ideal)
	}
}

func simulateKLRUMiss(tr *trace.Trace, capObjects, k int, seed uint64) float64 {
	type ent struct {
		key  uint64
		last uint64
	}
	src := xrand.New(seed)
	var ents []ent
	idx := map[uint64]int{}
	var clock uint64
	var hits, total int
	r := tr.Reader()
	for {
		req, err := r.Next()
		if err != nil {
			break
		}
		clock++
		total++
		if i, ok := idx[req.Key]; ok {
			ents[i].last = clock
			hits++
			continue
		}
		if len(ents) >= capObjects {
			victim := int(src.Uint64n(uint64(len(ents))))
			for j := 1; j < k; j++ {
				cand := int(src.Uint64n(uint64(len(ents))))
				if ents[cand].last < ents[victim].last {
					victim = cand
				}
			}
			delete(idx, ents[victim].key)
			lastI := len(ents) - 1
			if victim != lastI {
				ents[victim] = ents[lastI]
				idx[ents[victim].key] = victim
			}
			ents = ents[:lastI]
		}
		idx[req.Key] = len(ents)
		ents = append(ents, ent{key: req.Key, last: clock})
	}
	return 1 - float64(hits)/float64(total)
}

func BenchmarkEngineAccess(b *testing.B) {
	e := NewEngine(Config{MaxMemory: 1 << 22, Seed: 1})
	g := workload.NewZipf(3, 1<<16, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Access(reqs[i&(1<<16-1)])
	}
}

// TestAccessMissSingleTick pins the one-tick-per-request convention:
// the cache-aside fill after a missing Get must share the Get's clock
// advance, or idle times on miss-heavy traces run twice as fast as
// the K-LRU simulator the §5.7 validation compares against.
func TestAccessMissSingleTick(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	cases := []struct {
		req  trace.Request
		want uint64
	}{
		{trace.Request{Key: 1, Size: 100, Op: trace.OpGet}, 1}, // miss + fill
		{trace.Request{Key: 1, Size: 100, Op: trace.OpGet}, 2}, // hit
		{trace.Request{Key: 2, Size: 100, Op: trace.OpSet}, 3}, // explicit set
		{trace.Request{Key: 2, Op: trace.OpDelete}, 4},         // delete
		{trace.Request{Key: 2, Size: 100, Op: trace.OpGet}, 5}, // miss + fill again
	}
	for i, c := range cases {
		e.Access(c.req)
		if e.ticks != c.want {
			t.Fatalf("case %d: ticks = %d, want %d", i, e.ticks, c.want)
		}
	}
}

// poolHolds reports whether the eviction pool has an entry for key.
func poolHolds(p *evictionPool, key uint64) bool {
	for _, s := range p.slots {
		if s.used && s.key == key {
			return true
		}
	}
	return false
}

// TestTouchedKeyLeavesEvictionPool pins the stale-candidate fix: a key
// sitting in the eviction pool with a high recorded idle time must be
// dropped when a Get or Set refreshes it, or the next eviction cycle
// can evict a hot key on its stale score.
func TestTouchedKeyLeavesEvictionPool(t *testing.T) {
	e := NewEngine(Config{Seed: 1})
	e.Set(7, 100)
	e.Set(8, 100)

	e.pool.offer(7, 500)
	e.pool.offer(8, 500)
	if !poolHolds(&e.pool, 7) || !poolHolds(&e.pool, 8) {
		t.Fatal("pool setup failed")
	}
	if _, ok := e.Get(7); !ok {
		t.Fatal("key 7 missing")
	}
	if poolHolds(&e.pool, 7) {
		t.Fatal("Get hit left key 7 in the eviction pool with a stale idle time")
	}
	e.Set(8, 120)
	if poolHolds(&e.pool, 8) {
		t.Fatal("Set on existing key left key 8 in the eviction pool with a stale idle time")
	}
}
