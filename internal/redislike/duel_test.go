package redislike

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"krr/internal/telemetry"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestDuelConfigValidation(t *testing.T) {
	if _, err := NewDuel(DuelConfig{Rivals: []Rival{{Samples: 5}}}); err == nil {
		t.Fatal("one rival must fail")
	}
	if _, err := NewDuel(DuelConfig{Rivals: []Rival{{Samples: 0}, {Samples: 1}}}); err == nil {
		t.Fatal("zero sampling size must fail")
	}
	if _, err := NewDuel(DuelConfig{
		Rivals:        []Rival{{Samples: 1}, {Samples: 2}, {Samples: 3}},
		PartitionBits: 1,
	}); err == nil {
		t.Fatal("more rivals than partitions must fail")
	}
	d, err := NewDuel(DuelConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rivals()) != len(DefaultRivals()) {
		t.Fatalf("defaults not applied: %v", d.Rivals())
	}
}

func TestParseRivals(t *testing.T) {
	rs, err := ParseRivals("lru:5, lfu:3 ,random:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rival{
		{Samples: 5, Policy: PolicyLRU},
		{Samples: 3, Policy: PolicyLFU},
		{Samples: 1, Policy: PolicyRandom},
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("rival %d = %+v, want %+v", i, rs[i], want[i])
		}
	}
	if rs, err = ParseRivals("default"); err != nil || len(rs) != 4 {
		t.Fatalf("default spec: %v %v", rs, err)
	}
	for _, bad := range []string{"", "lru:5", "ttl:2,lru:1", "lru:x,lfu:1", "lru:0,lfu:1"} {
		if _, err := ParseRivals(bad); err == nil {
			t.Fatalf("spec %q must fail", bad)
		}
	}
}

// winEpoch forces one epoch outcome by crediting the chosen leader
// with a perfect epoch and every other leader with a total miss.
func winEpoch(d *Duel, winner int) {
	for i, l := range d.leaders {
		if i == winner {
			l.hits.Add(100)
		} else {
			l.misses.Add(100)
		}
	}
	d.endEpoch()
}

func TestPSELSaturationAndFloor(t *testing.T) {
	d, err := NewDuel(DuelConfig{
		Rivals: []Rival{{Samples: 5, Policy: PolicyLRU}, {Samples: 1, Policy: PolicyRandom}},
		// Window 1 isolates the PSEL state machine from score pooling.
		ScoreWindow: 1,
		PSELMax:     4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both counters start at PSELMax/2 = 2. Leader 0 wins far more
	// epochs than the counter can hold: it must saturate at PSELMax
	// while the loser bottoms out at 0, not wrap.
	for i := 0; i < 10; i++ {
		winEpoch(d, 0)
	}
	if got := d.leaders[0].psel.Load(); got != 4 {
		t.Fatalf("winner PSEL = %d, want saturation at 4", got)
	}
	if got := d.leaders[1].psel.Load(); got != 0 {
		t.Fatalf("loser PSEL = %d, want floor 0", got)
	}
	if d.Epoch() != 10 {
		t.Fatalf("epochs = %d, want 10", d.Epoch())
	}
	// The comeback needs to out-win the saturated incumbent: from
	// (4, 0) each challenger win moves the pair one step, so the
	// third win reaches (1, 3) and flips the steering. Saturation
	// bounds how much history a dominant phase can bank — the DRRIP
	// property.
	wins := 0
	for d.WinnerIndex() == 0 {
		winEpoch(d, 1)
		wins++
		if wins > 8 {
			t.Fatal("challenger never took over")
		}
	}
	if wins < 3 {
		t.Fatalf("challenger took over after %d wins; saturation ceiling broken", wins)
	}
	if d.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", d.Switches())
	}
	if d.Winner().Policy != PolicyRandom {
		t.Fatalf("winner = %v", d.Winner())
	}
}

func TestEpochRolloverViaAccess(t *testing.T) {
	d, err := NewDuel(DuelConfig{
		Rivals:        []Rival{{Samples: 5, Policy: PolicyLRU}, {Samples: 1, Policy: PolicyRandom}},
		EpochRequests: 100,
		ShadowRate:    -1,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		d.Access(trace.Request{Key: uint64(i % 40), Size: 100, Op: trace.OpGet})
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch = %d after 250 requests with epoch length 100, want 2", d.Epoch())
	}
	st := d.State()
	var tracked uint64
	for _, l := range st.Leaders {
		tracked += l.Hits + l.Misses
	}
	tracked += d.followerHits.Load() + d.followerMiss.Load()
	if tracked != 250 {
		t.Fatalf("partition accounting lost requests: %d of 250", tracked)
	}
}

func TestFollowerSteeringAppliesRivalConfig(t *testing.T) {
	d, err := NewDuel(DuelConfig{
		Rivals: []Rival{
			{Samples: 5, Policy: PolicyLRU},
			{Samples: 9, Policy: PolicyLFU},
		},
		ScoreWindow: 1,
		PSELMax:     2,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.follower.Samples() != 5 || d.follower.Policy() != PolicyLRU {
		t.Fatalf("follower must start on rival 0: K=%d policy=%v",
			d.follower.Samples(), d.follower.Policy())
	}
	for i := 0; i < 4; i++ {
		winEpoch(d, 1)
	}
	if d.WinnerIndex() != 1 {
		t.Fatalf("winner = %d", d.WinnerIndex())
	}
	if d.follower.Samples() != 9 || d.follower.Policy() != PolicyLFU {
		t.Fatalf("follower not steered: K=%d policy=%v",
			d.follower.Samples(), d.follower.Policy())
	}
	if d.Switches() != 1 {
		t.Fatalf("switches = %d", d.Switches())
	}
}

// phaseStream builds the canonical phase-changing trace: hot Zipf
// reuse, then a loop wider than the budget, then Zipf again.
func phaseStream(seed uint64, keys uint64, phaseLen int) []trace.Request {
	var reqs []trace.Request
	z1 := workload.NewZipf(seed, keys, 1.1, nil, 0)
	loop := workload.NewLoop(keys*2/3, nil)
	z2 := workload.NewZipf(seed+2, keys, 1.1, nil, 0)
	for _, g := range []trace.Reader{z1, loop, z2} {
		for i := 0; i < phaseLen; i++ {
			r, _ := g.Next()
			reqs = append(reqs, r)
		}
	}
	return reqs
}

func duelMiss(t *testing.T, cfg DuelConfig, reqs []trace.Request) (*Duel, float64) {
	t.Helper()
	d, err := NewDuel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, req := range reqs {
		if d.Access(req) {
			hits++
		}
	}
	return d, 1 - float64(hits)/float64(len(reqs))
}

func engineMiss(cfg Config, reqs []trace.Request) float64 {
	e := NewEngine(cfg)
	hits := 0
	for _, req := range reqs {
		if e.Access(req) {
			hits++
		}
	}
	return 1 - float64(hits)/float64(len(reqs))
}

// TestDuelSmoke is the check.sh duel-smoke stage: on a seeded
// phase-changing workload the tournament must land within a small
// margin of the best static rival and strictly below the worst.
func TestDuelSmoke(t *testing.T) {
	const keys = 6000
	const budgetObjects = 2000
	const objCost = trace.DefaultObjectSize + perKeyOverhead
	const phaseLen = 30_000
	reqs := phaseStream(11, keys, phaseLen)

	rivals := DefaultRivals()
	worst, best := 0.0, 1.0
	for _, r := range rivals {
		miss := engineMiss(Config{
			MaxMemory: budgetObjects * objCost,
			Samples:   r.Samples,
			Policy:    r.Policy,
			Seed:      7,
		}, reqs)
		if miss > worst {
			worst = miss
		}
		if miss < best {
			best = miss
		}
	}
	d, adaptive := duelMiss(t, DuelConfig{
		MaxMemory:     budgetObjects * objCost,
		Rivals:        rivals,
		EpochRequests: phaseLen / 15,
		Seed:          7,
	}, reqs)
	t.Logf("duel %.4f, best static %.4f, worst static %.4f, switches %d, winner %v",
		adaptive, best, worst, d.Switches(), d.Winner())
	if adaptive >= worst {
		t.Fatalf("duel %.4f did not beat worst static %.4f", adaptive, worst)
	}
	if adaptive > best+0.02 {
		t.Fatalf("duel %.4f more than 0.02 above best static %.4f", adaptive, best)
	}
	if d.Epoch() == 0 {
		t.Fatal("no epochs completed")
	}
}

func TestDuelDeterministicUnderSeed(t *testing.T) {
	const phaseLen = 8_000
	reqs := phaseStream(5, 3000, phaseLen)
	cfg := DuelConfig{
		MaxMemory:     1000 * (trace.DefaultObjectSize + perKeyOverhead),
		EpochRequests: 2_000,
		Seed:          9,
	}
	d1, m1 := duelMiss(t, cfg, reqs)
	d2, m2 := duelMiss(t, cfg, reqs)
	if m1 != m2 {
		t.Fatalf("miss ratios diverged under identical seeds: %v vs %v", m1, m2)
	}
	s1, s2 := d1.State(), d2.State()
	if s1.WinnerIndex != s2.WinnerIndex || s1.Switches != s2.Switches || s1.Epoch != s2.Epoch {
		t.Fatalf("duel state diverged: %+v vs %+v", s1, s2)
	}
	for i := range s1.Leaders {
		if s1.Leaders[i].PSEL != s2.Leaders[i].PSEL || s1.Leaders[i].Wins != s2.Leaders[i].Wins {
			t.Fatalf("leader %d diverged: %+v vs %+v", i, s1.Leaders[i], s2.Leaders[i])
		}
	}
}

func TestDuelJudgeAuditsWinner(t *testing.T) {
	// Two LRU rivals on a loop wider than the budget: both the PSEL
	// duel and the KRR judge must conclude K=1 beats K=32, and agree.
	d, err := NewDuel(DuelConfig{
		MaxMemory: 600 * (trace.DefaultObjectSize + perKeyOverhead),
		Rivals: []Rival{
			{Samples: 32, Policy: PolicyLRU},
			{Samples: 1, Policy: PolicyLRU},
		},
		EpochRequests: 10_000,
		ShadowRate:    0.5,
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Judge() == nil {
		t.Fatal("judge must be armed with two distinct LRU Ks")
	}
	g := workload.NewLoop(1200, nil)
	for i := 0; i < 60_000; i++ {
		req, _ := g.Next()
		d.Access(req)
	}
	st := d.State()
	if w := d.Winner(); w.Samples != 1 {
		t.Fatalf("duel winner %v, want K=1 on a loop", w)
	}
	if st.JudgeBestK != 1 {
		t.Fatalf("judge best K = %d, want 1", st.JudgeBestK)
	}
	if st.JudgeAgree == 0 {
		t.Fatal("judge never agreed with the duel")
	}
	if st.JudgeAgree+st.JudgeDisagree != st.Epoch {
		t.Fatalf("judge graded %d epochs of %d", st.JudgeAgree+st.JudgeDisagree, st.Epoch)
	}
}

func TestDuelTelemetryExposition(t *testing.T) {
	d, err := NewDuel(DuelConfig{
		MaxMemory:     500 * (trace.DefaultObjectSize + perKeyOverhead),
		EpochRequests: 1_000,
		ShadowRate:    0.5,
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.NewSet()
	d.MetricsInto(set, "duel_")
	g := workload.NewZipf(3, 2000, 1.0, nil, 0)
	for i := 0; i < 5_000; i++ {
		req, _ := g.Next()
		d.Access(req)
	}
	var buf bytes.Buffer
	if err := set.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"duel_epoch 5", "duel_winner_index ", "duel_switches_total ",
		"duel_psel_lru_k5 ", "duel_psel_lru_k1 ", "duel_psel_lfu_k5 ", "duel_psel_random ",
		"duel_leader_wins_total_lru_k5 ", "duel_leader_epoch_miss_random ",
		"duel_follower_hits_total ", "duel_follower_misses_total ",
		"duel_judge_best_k ", "duel_judge_agree_total ", "duel_judge_disagree_total ",
		"duel_judge_current_k ", // nested dlru controller metrics
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	info := d.Info()
	for _, want := range []string{
		"duel_epoch:5", "duel_winner:", "duel_switches:",
		"duel_psel_lru_k5:", "duel_judge_best_k:",
	} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
}

func TestDuelIdleLeaderKeepsPSEL(t *testing.T) {
	d, err := NewDuel(DuelConfig{
		Rivals: []Rival{
			{Samples: 5, Policy: PolicyLRU},
			{Samples: 1, Policy: PolicyRandom},
		},
		PSELMax: 8,
		Seed:    19,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only leader 0 sees traffic: it wins, but the idle leader must
	// not decay below... it does decay as the loser. An epoch where
	// NO leader sees traffic must leave every counter untouched.
	before := []int64{d.leaders[0].psel.Load(), d.leaders[1].psel.Load()}
	d.endEpoch()
	after := []int64{d.leaders[0].psel.Load(), d.leaders[1].psel.Load()}
	if before[0] != after[0] || before[1] != after[1] {
		t.Fatalf("traffic-free epoch moved PSEL: %v -> %v", before, after)
	}
	if d.Epoch() != 1 {
		t.Fatal("epoch must still advance")
	}
	if !math.IsNaN(d.State().Leaders[0].EpochMiss) {
		t.Fatal("epoch miss must stay NaN before any traffic")
	}
}
