// Package redislike implements a miniature Redis-compatible in-memory
// cache engine — the §5.7 validation substrate. It reproduces the
// specific mechanics that make real Redis's "approximated LRU" deviate
// slightly from an idealized K-LRU simulator:
//
//   - a 24-bit wrapping LRU clock with bounded resolution,
//   - an eviction pool of 16 candidates retained across evictions,
//   - key sampling via dictGetSomeKeys-style bucket walking, which
//     returns *correlated* keys (consecutive hash buckets) rather than
//     an ideal uniform sample; a good-random mode mirrors Redis's
//     dictGetRandomKey for comparison (§5.7 footnote 3).
//
// A minimal RESP/TCP server in server.go exposes the engine over the
// wire for the end-to-end example.
package redislike

import "krr/internal/xrand"

// dictEntry is one chained-hash node.
type dictEntry struct {
	key  uint64
	obj  *object
	next *dictEntry
}

// dict is a power-of-two chained hash table modeled on Redis's dict.
// Growth rehashes eagerly (Redis rehashes incrementally; the
// distinction does not affect eviction behaviour).
type dict struct {
	buckets []*dictEntry
	used    int
}

func newDict() *dict {
	return &dict{buckets: make([]*dictEntry, 16)}
}

func (d *dict) mask() uint64 { return uint64(len(d.buckets) - 1) }

// hashKey mixes the key into a bucket index. Redis uses siphash; any
// well-mixed function preserves the sampling behaviour.
func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// find returns the entry for key, or nil.
func (d *dict) find(key uint64) *dictEntry {
	for e := d.buckets[hashKey(key)&d.mask()]; e != nil; e = e.next {
		if e.key == key {
			return e
		}
	}
	return nil
}

// set inserts or replaces key's object, returning the previous object
// (nil if the key is new).
func (d *dict) set(key uint64, obj *object) *object {
	idx := hashKey(key) & d.mask()
	for e := d.buckets[idx]; e != nil; e = e.next {
		if e.key == key {
			prev := e.obj
			e.obj = obj
			return prev
		}
	}
	d.buckets[idx] = &dictEntry{key: key, obj: obj, next: d.buckets[idx]}
	d.used++
	if d.used > len(d.buckets) {
		d.grow()
	}
	return nil
}

// del removes key, returning its object (nil if absent).
func (d *dict) del(key uint64) *object {
	idx := hashKey(key) & d.mask()
	var prev *dictEntry
	for e := d.buckets[idx]; e != nil; prev, e = e, e.next {
		if e.key == key {
			if prev == nil {
				d.buckets[idx] = e.next
			} else {
				prev.next = e.next
			}
			d.used--
			return e.obj
		}
	}
	return nil
}

func (d *dict) grow() {
	old := d.buckets
	d.buckets = make([]*dictEntry, len(old)*2)
	for _, e := range old {
		for e != nil {
			next := e.next
			idx := hashKey(e.key) & d.mask()
			e.next = d.buckets[idx]
			d.buckets[idx] = e
			e = next
		}
	}
}

// someKeys emulates dictGetSomeKeys: starting from a random bucket it
// walks consecutive buckets, appending every chained entry, until
// count entries are collected or a step budget is exhausted. The
// returned sample is therefore bucket-correlated — Redis accepts this
// bias for speed, and it is the cause of the simulator↔Redis MRC
// deviation observed in §5.7.
func (d *dict) someKeys(src *xrand.Source, count int, out []*dictEntry) []*dictEntry {
	out = out[:0]
	if d.used == 0 || count == 0 {
		return out
	}
	idx := src.Uint64n(uint64(len(d.buckets)))
	maxSteps := count * 10
	for steps := 0; len(out) < count && steps < maxSteps; steps++ {
		for e := d.buckets[idx]; e != nil && len(out) < count; e = e.next {
			out = append(out, e)
		}
		idx = (idx + 1) & d.mask()
	}
	return out
}

// randomKey emulates dictGetRandomKey: a uniform bucket draw repeated
// until a non-empty bucket is found, then a uniform choice within the
// chain. Slower than someKeys but a good random sample.
func (d *dict) randomKey(src *xrand.Source) *dictEntry {
	if d.used == 0 {
		return nil
	}
	for {
		e := d.buckets[src.Uint64n(uint64(len(d.buckets)))]
		if e == nil {
			continue
		}
		n := 0
		for x := e; x != nil; x = x.next {
			n++
		}
		pick := int(src.Uint64n(uint64(n)))
		for i := 0; i < pick; i++ {
			e = e.next
		}
		return e
	}
}

// forEach visits every entry.
func (d *dict) forEach(fn func(*dictEntry)) {
	for _, e := range d.buckets {
		for ; e != nil; e = e.next {
			fn(e)
		}
	}
}
