package cheform

import (
	"math"
	"math/bits"

	"krr/internal/hashing"
)

const (
	// hllPrecision fixes the register count at 4096 (~4 KB), giving a
	// relative standard error of 1.04/√4096 ≈ 1.6% — ample for a
	// distinct estimate that only positions the power-law tail.
	hllPrecision = 12
	hllRegisters = 1 << hllPrecision
)

// hll is a fixed-precision HyperLogLog cardinality estimator over the
// repository's SplitMix64 key mixer (Flajolet et al. '07, with the
// HLL++ linear-counting small-range correction). Fully deterministic:
// no seed, no sampling.
type hll struct {
	reg [hllRegisters]uint8
}

func newHLL() *hll { return &hll{} }

// Add observes one key.
func (h *hll) Add(key uint64) {
	x := hashing.Mix64(key)
	idx := x >> (64 - hllPrecision)
	w := x << hllPrecision
	var rank uint8
	if w == 0 {
		rank = 64 - hllPrecision + 1
	} else {
		rank = uint8(bits.LeadingZeros64(w)) + 1
	}
	if h.reg[idx] < rank {
		h.reg[idx] = rank
	}
}

// Estimate returns the estimated number of distinct keys observed.
func (h *hll) Estimate() float64 {
	const m = float64(hllRegisters)
	var sum float64
	zeros := 0
	for _, r := range h.reg {
		sum += math.Exp2(-float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Small-range correction: linear counting is more accurate while
	// empty registers remain. With 64-bit hashes no large-range
	// correction is needed.
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// memBytes reports the register array size.
func (h *hll) memBytes() uint64 { return hllRegisters }
