package cheform

import (
	"math"
	"testing"
)

// syntheticFit builds a plausible fitted popularity model: a small
// exact head plus a power-law tail at the given exponent.
func syntheticFit(alpha float64) Fit {
	return Fit{
		Requests: 1_000_000,
		Distinct: 5000,
		Alpha:    alpha,
		Head: []HeadRun{
			{Count: 50_000, Ranks: 1},
			{Count: 20_000, Ranks: 2},
			{Count: 8_000, Ranks: 5},
			{Count: 2_000, Ranks: 20},
		},
	}
}

var testAlphas = []float64{0.4, 1.0, 2.0}

func TestCharTimeMonotonic(t *testing.T) {
	for _, alpha := range testAlphas {
		segs := buildSegments(syntheticFit(alpha))
		for _, v := range []Variant{Che, Fagin} {
			prev := 0.0
			for c := 10.0; c <= 4500; c += 250 {
				tc := charTime(segs, v, c)
				if tc <= prev {
					t.Errorf("alpha=%v %v: T(%v)=%v not above T at previous size %v",
						alpha, v, c, tc, prev)
				}
				prev = tc
			}
		}
	}
}

// TestCharTimeBracketing: the bisection must actually solve the
// characteristic equation — occupancy at the returned T matches the
// requested cache size to high relative precision, across extreme
// exponents and both variants.
func TestCharTimeBracketing(t *testing.T) {
	for _, alpha := range testAlphas {
		segs := buildSegments(syntheticFit(alpha))
		for _, v := range []Variant{Che, Fagin} {
			for _, c := range []float64{1, 17, 300, 2500, 4900} {
				tc := charTime(segs, v, c)
				occ := occupancy(segs, v, tc)
				if math.Abs(occ-c) > 1e-6*c {
					t.Errorf("alpha=%v %v: occupancy(T(%v)) = %v, bracket did not converge",
						alpha, v, c, occ)
				}
			}
		}
	}
}

func TestMissRatioDecreasesInT(t *testing.T) {
	for _, alpha := range testAlphas {
		segs := buildSegments(syntheticFit(alpha))
		for _, v := range []Variant{Che, Fagin} {
			prev := math.Inf(1)
			for _, tc := range []float64{0, 1, 10, 1e3, 1e5, 1e7} {
				m := missRatio(segs, v, tc)
				if m > prev+1e-12 {
					t.Errorf("alpha=%v %v: miss ratio rose from %v to %v at T=%v",
						alpha, v, prev, m, tc)
				}
				prev = m
			}
		}
	}
}

// TestUniformClosedForm pins the solver on the one case with a pencil
// answer: uniform popularity over n keys gives occupancy
// C = n(1−e^(−T/n)), hence miss(C) = e^(−T(C)/n) = 1 − C/n exactly.
func TestUniformClosedForm(t *testing.T) {
	segs := []segment{{n: 100, p: 0.01}}
	for _, c := range []float64{10, 50, 90} {
		tc := charTime(segs, Che, c)
		m := missRatio(segs, Che, tc)
		want := 1 - c/100
		if math.Abs(m-want) > 1e-6 {
			t.Errorf("uniform: miss(%v) = %v, want %v", c, m, want)
		}
	}
}

// TestExtremeAlphaCurves: full curve builds at the exponent extremes
// stay structurally sound and end at the cold-miss floor N/R.
func TestExtremeAlphaCurves(t *testing.T) {
	for _, alpha := range []float64{0.4, 2.0} {
		for _, v := range []Variant{Che, Fagin} {
			fit := syntheticFit(alpha)
			curve := buildCurve(fit, Config{Variant: v, Points: DefaultPoints}, 1)
			if curve.Sizes[0] != 0 || curve.Miss[0] != 1 {
				t.Fatalf("alpha=%v %v: curve must start at (0, 1)", alpha, v)
			}
			prevSize := uint64(0)
			prevMiss := math.Inf(1)
			for i := range curve.Sizes {
				if i > 0 && curve.Sizes[i] <= prevSize {
					t.Fatalf("alpha=%v %v: sizes not strictly increasing at %d", alpha, v, i)
				}
				if curve.Miss[i] < 0 || curve.Miss[i] > 1 || curve.Miss[i] > prevMiss {
					t.Fatalf("alpha=%v %v: miss not monotone in [0,1] at %d: %v",
						alpha, v, i, curve.Miss[i])
				}
				prevSize, prevMiss = curve.Sizes[i], curve.Miss[i]
			}
			cold := fit.Distinct / float64(fit.Requests)
			final := curve.Miss[len(curve.Miss)-1]
			if math.Abs(final-cold) > 1e-3 {
				t.Errorf("alpha=%v %v: final miss %v, want the cold ratio %v", alpha, v, final, cold)
			}
		}
	}
}

// TestVariantsDiverge: Che and Fagin are different formulas; on a
// skewed fit with a short characteristic window they must not emit
// bit-identical decay values (a guard against one variant silently
// aliasing the other).
func TestVariantsDiverge(t *testing.T) {
	if decay(Che, 0.3, 5) == decay(Fagin, 0.3, 5) {
		t.Error("Che and Fagin decay identical on a high-popularity key")
	}
	if decay(Fagin, 1, 5) != 0 {
		t.Error("Fagin decay of a p=1 key must be 0")
	}
	if decay(Che, 0, 5) != 1 {
		t.Error("decay of a p=0 key must be 1")
	}
}
