package cheform

import (
	"math"
	"reflect"
	"testing"

	"krr/internal/trace"
)

func get(key uint64) trace.Request { return trace.Request{Key: key, Size: 1, Op: trace.OpGet} }

func TestTopKExactWithinBudget(t *testing.T) {
	tk := newTopK(64)
	// 10 keys, key i observed 10·(i+1) times: fits the budget, so all
	// counts are exact with zero inherited error.
	for i := uint64(0); i < 10; i++ {
		for j := uint64(0); j < 10*(i+1); j++ {
			tk.Observe(i)
		}
	}
	got := tk.Guaranteed()
	want := []uint64{100, 90, 80, 70, 60, 50, 40, 30, 20, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("guaranteed counts %v, want exact %v", got, want)
	}
}

// TestTopKChurnDistrusted: cyclic access over a keyspace larger than
// the counter budget leaves every counter dominated by inherited
// error; the trusted list must come back empty rather than reporting
// churn noise as heavy hitters.
func TestTopKChurnDistrusted(t *testing.T) {
	tk := newTopK(64)
	for round := 0; round < 50; round++ {
		for key := uint64(0); key < 100; key++ {
			tk.Observe(key)
		}
	}
	if got := tk.Guaranteed(); len(got) != 0 {
		t.Fatalf("churned sketch reported %d trusted counters: %v", len(got), got)
	}
}

func TestHLLEstimate(t *testing.T) {
	h := newHLL()
	const n = 10_000
	for i := uint64(0); i < n; i++ {
		h.Add(i)
		h.Add(i) // duplicates must not inflate the estimate
	}
	est := h.Estimate()
	if math.Abs(est-n) > 0.05*n {
		t.Fatalf("estimate %v for %d distinct keys (>5%% off)", est, n)
	}
}

func TestFitterFallbackAlpha(t *testing.T) {
	f, err := New(Config{DefaultAlpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Every key referenced exactly once: no fit is possible and the
	// configured default must be reported as a fallback.
	for i := uint64(0); i < 500; i++ {
		f.Process(get(i))
	}
	fit := f.Fit()
	if !fit.Fallback || fit.Alpha != 0.7 {
		t.Fatalf("want fallback to configured alpha 0.7, got %+v", fit)
	}
}

func TestFitterRecoversAlpha(t *testing.T) {
	f, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Zipf(1.0) by construction: key i referenced ⌊2000/(i+1)⌋ times.
	for i := uint64(0); i < 100; i++ {
		for j := uint64(0); j < 2000/(i+1); j++ {
			f.Process(get(i))
		}
	}
	fit := f.Fit()
	if fit.Fallback {
		t.Fatal("fit fell back on a clean power law")
	}
	if math.Abs(fit.Alpha-1.0) > 0.2 {
		t.Fatalf("fitted alpha %v, want ~1.0", fit.Alpha)
	}
	if math.Abs(fit.Distinct-100) > 5 {
		t.Fatalf("distinct estimate %v, want ~100", fit.Distinct)
	}
}

func TestFitterIgnoresDeletes(t *testing.T) {
	f, _ := New(Config{})
	g, _ := New(Config{})
	for i := uint64(0); i < 50; i++ {
		for j := uint64(0); j < 40; j++ {
			f.Process(get(i))
			g.Process(get(i))
			g.Process(trace.Request{Key: i, Op: trace.OpDelete})
		}
	}
	if f.Requests() != g.Requests() {
		t.Fatalf("deletes counted as requests: %d != %d", f.Requests(), g.Requests())
	}
	if !reflect.DeepEqual(f.Curve(1), g.Curve(1)) {
		t.Fatal("deletes perturbed the curve")
	}
}

func TestFitterDeterministicAndNonDestructive(t *testing.T) {
	build := func() *Fitter {
		f, _ := New(Config{})
		for round := 0; round < 30; round++ {
			for i := uint64(0); i < 2000; i++ {
				if i%7 != 0 {
					continue
				}
				f.Process(get(i))
			}
			f.Process(get(uint64(round % 3))) // a hot head
		}
		return f
	}
	a, b := build(), build()
	mid := a.Curve(1) // mid-read must not perturb later reads
	if !reflect.DeepEqual(a.Curve(1), b.Curve(1)) {
		t.Fatal("identical streams produced different curves")
	}
	if !reflect.DeepEqual(mid, a.Curve(1)) {
		t.Fatal("Curve() mutated fitter state")
	}
}

// TestCurveUniformStream pins the end-to-end pipeline on the analytic
// closed case: a uniform 100-key stream must come out as the
// miss(C) ≈ 1−C/N line with the cold-ratio floor at C = N.
func TestCurveUniformStream(t *testing.T) {
	f, _ := New(Config{})
	const keys, rounds = 100, 200
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < keys; i++ {
			f.Process(get(i))
		}
	}
	curve := f.Curve(1)
	if got := curve.Eval(50); math.Abs(got-0.5) > 0.05 {
		t.Errorf("miss(50) = %v, want ~0.5 on a uniform 100-key stream", got)
	}
	cold := float64(keys) / float64(keys*rounds)
	if got := curve.Eval(keys + 10); math.Abs(got-cold) > 0.01 {
		t.Errorf("miss beyond N = %v, want the cold ratio %v", got, cold)
	}
}

func TestEmptyFitterCurve(t *testing.T) {
	f, _ := New(Config{})
	curve := f.Curve(1)
	if len(curve.Sizes) != 1 || curve.Sizes[0] != 0 || curve.Miss[0] != 1 {
		t.Fatalf("empty stream curve %+v, want the single (0, 1) point", curve)
	}
}

func TestMemoryOverheadBounded(t *testing.T) {
	f, _ := New(Config{})
	if f.MemoryOverheadBytes() == 0 {
		t.Fatal("footprint must count the HLL registers even before traffic")
	}
	for i := uint64(0); i < 1_000_000; i++ {
		f.Process(get(i % 250_000))
	}
	fp := f.MemoryOverheadBytes()
	if fp == 0 || fp > 200_000 {
		t.Fatalf("footprint %d bytes: the analytic tier must stay O(1) (~tens of KB)", fp)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{DefaultAlpha: -1},
		{DefaultAlpha: MaxAlpha + 1},
		{Heads: 2},
		{Points: 1},
		{Variant: Fagin + 1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
