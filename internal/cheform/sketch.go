package cheform

import "sort"

// tkEntry is one Space-Saving counter. err is the count the entry
// inherited when it took over an evicted counter, so count − err is a
// guaranteed lower bound on the key's true frequency (Metwally,
// Agrawal & El Abbadi '05).
type tkEntry struct {
	key   uint64
	count uint64
	err   uint64
	seq   uint64
}

// topk is a deterministic Space-Saving heavy-hitter sketch: a
// min-heap of counters ordered by (count, seq) over a key index.
// The monotone sequence number breaks count ties, so eviction order —
// and therefore the whole sketch state — is a pure function of the
// request stream, never of Go map iteration order. That determinism
// is what lets the model layer promise bit-identical curves for
// identical streams.
type topk struct {
	limit int
	heap  []tkEntry
	pos   map[uint64]int // key → heap index
	seq   uint64
}

func newTopK(limit int) *topk {
	return &topk{limit: limit, pos: make(map[uint64]int, limit)}
}

// Observe counts one reference. Tracked keys increment in place; an
// untracked key either fills a free counter or takes over the
// minimum one, inheriting its count as error.
func (t *topk) Observe(key uint64) {
	t.seq++
	if i, ok := t.pos[key]; ok {
		t.heap[i].count++
		t.heap[i].seq = t.seq
		t.siftDown(i)
		return
	}
	if len(t.heap) < t.limit {
		t.heap = append(t.heap, tkEntry{key: key, count: 1, seq: t.seq})
		t.pos[key] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	min := t.heap[0]
	delete(t.pos, min.key)
	t.heap[0] = tkEntry{key: key, count: min.count + 1, err: min.count, seq: t.seq}
	t.pos[key] = 0
	t.siftDown(0)
}

// Guaranteed returns the guaranteed counts (count − err) of the
// trusted counters in descending order. A counter is trusted when its
// direct evidence exceeds its inherited noise (count − err > err);
// under churn — keyspace much larger than the counter budget with no
// real heavy hitters — every counter is mostly inherited error, the
// list comes back empty, and the popularity model correctly falls
// back to its tail-only form. The multiset is deterministic in the
// stream; key identities are deliberately dropped — the popularity
// model only needs the rank-frequency shape.
func (t *topk) Guaranteed() []uint64 {
	out := make([]uint64, 0, len(t.heap))
	for _, e := range t.heap {
		if g := e.count - e.err; g > e.err {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// Len returns the number of live counters.
func (t *topk) Len() int { return len(t.heap) }

// memBytes estimates resident sketch metadata: the counter array plus
// the key index (Go map bucket overhead included).
func (t *topk) memBytes() uint64 {
	const perEntry = 32 // tkEntry
	const perIndex = 48 // map bucket share per key
	return uint64(cap(t.heap))*perEntry + uint64(len(t.pos))*perIndex + 64
}

func (t *topk) less(i, j int) bool {
	if t.heap[i].count != t.heap[j].count {
		return t.heap[i].count < t.heap[j].count
	}
	return t.heap[i].seq < t.heap[j].seq
}

func (t *topk) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].key] = i
	t.pos[t.heap[j].key] = j
}

func (t *topk) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *topk) siftDown(i int) {
	n := len(t.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && t.less(left, smallest) {
			smallest = left
		}
		if right < n && t.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}
