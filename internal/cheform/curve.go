package cheform

import (
	"math"
	"sort"

	"krr/internal/mrc"
)

// segment is a run of popularity ranks sharing one per-key reference
// probability; the closed-form sums run over segments instead of keys,
// so one solver evaluation costs O(head runs + tail buckets), not
// O(distinct keys).
type segment struct {
	n float64 // ranks covered
	p float64 // per-key reference probability
}

const (
	// tailBucketRatio is the geometric growth of the tail's rank
	// buckets: the i^(−α) weight is near-constant within a 1.25× rank
	// span, so bucketing the tail costs ~log(N) segments for
	// negligible model error.
	tailBucketRatio = 1.25
	// bisectIters fixes the characteristic-time bisection depth; 64
	// halvings resolve T to full float precision from any bracket.
	bisectIters = 64
)

// buildSegments assembles the hybrid popularity model: exact head
// runs from the guaranteed sketch counts, then a power-law tail over
// the remaining ranks carrying the mass the head could not attribute.
func buildSegments(fit Fit) []segment {
	R := float64(fit.Requests)
	segs := make([]segment, 0, len(fit.Head)+64)
	var headMass, headRanks float64
	for _, run := range fit.Head {
		segs = append(segs, segment{n: float64(run.Ranks), p: float64(run.Count) / R})
		headMass += float64(run.Count) * float64(run.Ranks) / R
		headRanks += float64(run.Ranks)
	}
	tailMass := 1 - headMass
	// The continuum maps rank i to the interval [i−1, i], so the tail
	// integral starts at the last head rank — or at 0.5 when the head
	// is empty, keeping the first rank's weight finite for α ≥ 1.
	x0 := headRanks
	if x0 < 0.5 {
		x0 = 0.5
	}
	tailRanks := fit.Distinct - x0
	if tailRanks < 1 || tailMass <= 0 {
		return segs
	}
	// Geometric rank buckets over (x0, Distinct], weighted by the
	// closed-form integral of x^(−α) across each bucket.
	type bucket struct{ n, w float64 }
	var buckets []bucket
	var wTotal float64
	for x := x0; x < fit.Distinct; {
		next := x * tailBucketRatio
		if next < x+1 {
			next = x + 1
		}
		if next > fit.Distinct {
			next = fit.Distinct
		}
		w := powIntegral(x, next, fit.Alpha)
		if w < 0 {
			w = 0
		}
		buckets = append(buckets, bucket{n: next - x, w: w})
		wTotal += w
		x = next
	}
	if wTotal <= 0 {
		// Degenerate integral (extreme α underflow): fall back to a
		// uniform tail.
		for _, b := range buckets {
			segs = append(segs, segment{n: b.n, p: tailMass / tailRanks})
		}
		return segs
	}
	for _, b := range buckets {
		segs = append(segs, segment{n: b.n, p: tailMass * b.w / wTotal / b.n})
	}
	return segs
}

// powIntegral is ∫ x^(−α) dx over [x1, x2].
func powIntegral(x1, x2, alpha float64) float64 {
	if math.Abs(alpha-1) < 1e-9 {
		return math.Log(x2 / x1)
	}
	e := 1 - alpha
	return (math.Pow(x2, e) - math.Pow(x1, e)) / e
}

// decay is the variant's P(key absent from the cache): e^(−p·T) for
// Che, (1−p)^T for Fagin (computed as e^(T·log1p(−p)) so tiny p stays
// exact).
func decay(v Variant, p, t float64) float64 {
	if p <= 0 {
		return 1
	}
	if v == Fagin {
		if p >= 1 {
			return 0
		}
		return math.Exp(t * math.Log1p(-p))
	}
	return math.Exp(-p * t)
}

// occupancy is the expected number of cached keys at characteristic
// time t — the right-hand side of the characteristic equation.
func occupancy(segs []segment, v Variant, t float64) float64 {
	var sum float64
	for _, s := range segs {
		sum += s.n * (1 - decay(v, s.p, t))
	}
	return sum
}

// charTime solves the characteristic equation occupancy(T) = C by
// bracket doubling plus bisection. occupancy is continuous and
// non-decreasing in T, so once a bracket [0, hi] with
// occupancy(hi) ≥ C exists, bisection converges unconditionally; when
// C exceeds the attainable occupancy the doubling loop caps out and
// the returned T drives every decay term to 0, which is the correct
// limit (the cache holds everything that is ever referenced).
func charTime(segs []segment, v Variant, c float64) float64 {
	hi := 1.0
	for i := 0; i < 200 && occupancy(segs, v, hi) < c; i++ {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < bisectIters; i++ {
		mid := lo + (hi-lo)/2
		if occupancy(segs, v, mid) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// missRatio is the stationary closed-form miss ratio at
// characteristic time t, normalized over the modeled mass (the head's
// sketch error keeps Σ n·p slightly below 1).
func missRatio(segs []segment, v Variant, t float64) float64 {
	var num, den float64
	for _, s := range segs {
		m := s.n * s.p
		num += m * decay(v, s.p, t)
		den += m
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// sizeGrid returns the cache sizes (in keys) the curve is evaluated
// at: a power-of-two ladder resolving the steep head plus an even
// grid out to the distinct-key estimate.
func sizeGrid(n float64, points int) []float64 {
	if n <= 1 {
		return []float64{n}
	}
	grid := make([]float64, 0, points+64)
	for c := 1.0; c < n; c *= 2 {
		grid = append(grid, c)
	}
	step := n / float64(points)
	if step < 1 {
		step = 1
	}
	for c := step; c < n; c += step {
		grid = append(grid, c)
	}
	grid = append(grid, n)
	sort.Float64s(grid)
	return grid
}

// buildCurve evaluates the closed form over the size grid, applies
// the finite-trace correction C/R (see the package comment), and
// enforces the curve invariants: clamped to [0, 1] and monotone
// non-increasing (the +C/R term can tilt the flat tail upward by
// O(1/R), which the running minimum flattens back).
func buildCurve(fit Fit, cfg Config, scale float64) *mrc.Curve {
	c := &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpLinear}
	if fit.Requests == 0 || fit.Distinct < 1 {
		return c
	}
	segs := buildSegments(fit)
	r := float64(fit.Requests)
	prev := 1.0
	for _, keys := range sizeGrid(fit.Distinct, cfg.Points) {
		t := charTime(segs, cfg.Variant, keys)
		m := missRatio(segs, cfg.Variant, t) + keys/r
		if m > prev {
			m = prev
		}
		if m < 0 {
			m = 0
		}
		prev = m
		size := uint64(keys*scale + 0.5)
		if size == 0 {
			size = 1
		}
		if last := len(c.Sizes) - 1; c.Sizes[last] == size {
			c.Miss[last] = m
			continue
		}
		c.Sizes = append(c.Sizes, size)
		c.Miss = append(c.Miss, m)
	}
	return c
}
