// Package cheform is the instant-estimate model tier: closed-form
// analytic LRU miss-ratio curves driven by an online popularity fit
// instead of per-request distance bookkeeping. Where every other
// technique in this repository tracks some image of the reuse
// behavior (a stack, a reuse-time histogram, a counter sketch),
// cheform keeps only a constant-size summary of the request
// popularity distribution — a Space-Saving top-k sketch plus a
// HyperLogLog distinct-key estimate — and computes the whole curve
// from it in closed form at read time. Memory is O(1) in both trace
// length and working-set size; the curve costs a numeric solve per
// evaluated cache size and nothing per request beyond the sketch
// update.
//
// # The approximations
//
// Under the independent reference model with per-key reference
// probabilities p_i, Che's approximation (Che, Tung & Wang, JSAC '02)
// says an LRU cache of capacity C behaves as if every key were
// evicted exactly T(C) time units after its last reference, where the
// characteristic time T solves
//
//	C = Σ_i (1 − e^(−p_i·T))
//
// and the steady-state miss ratio is
//
//	m(C) = Σ_i p_i · e^(−p_i·T(C)).
//
// The Fagin variant (Fagin '77) is the discrete-window form of the
// same idea: P(key i missing from a window of τ references) is
// (1−p_i)^τ instead of e^(−p_i·T). Both are exact in limiting regimes
// and remarkably accurate for skewed IRM-like traffic (Berthet '17
// surveys the family under power-law popularity); neither sees
// sequencing, so cyclic/scan (Type A) traces are out of model — the
// difftest envelopes for this tier are correspondingly looser there.
//
// # The popularity fit
//
// The probabilities p_i are fitted online as a hybrid: an exact
// empirical head from the Space-Saving sketch's guaranteed counts
// (count − error is a lower bound on a tracked key's true count), and
// a power-law tail i^(−α) over the remaining ranks up to the
// HyperLogLog distinct estimate, carrying the mass the head could not
// attribute. α comes from analysis.ZipfFit over the guaranteed head
// counts; when the fit is degenerate (its documented 0 sentinel) the
// fitter falls back to the configured default exponent.
//
// # Finite-trace correction
//
// The closed forms model an infinite stationary stream; a finite
// trace of R requests additionally pays one compulsory miss per
// distinct key. The stationary model credits key i's first access
// with only e^(−p_i·T) miss probability, so the shortfall is
// Σ_i (1 − e^(−p_i·T))/R — which by the characteristic equation is
// exactly C/R:
//
//	m_trace(C) = m(C) + C/R,
//
// clamped into [0, 1] and to monotone non-increasing. At C = N this
// yields N/R, the exact cold-miss ratio.
package cheform

import (
	"fmt"

	"krr/internal/analysis"
	"krr/internal/mrc"
	"krr/internal/trace"
)

// Variant selects the closed form.
type Variant uint8

const (
	// Che is the continuous-time characteristic-time approximation:
	// P(absent) = e^(−p·T).
	Che Variant = iota
	// Fagin is the discrete reference-window form: P(absent) = (1−p)^τ.
	Fagin
)

// String names the variant.
func (v Variant) String() string {
	if v == Fagin {
		return "fagin"
	}
	return "che"
}

const (
	// DefaultHeads is the default Space-Saving counter budget: enough
	// to resolve the informative head analysis.ZipfFit regresses over
	// (ranks up to 1000) while keeping the sketch tens of KB.
	DefaultHeads = 1024
	// DefaultAlpha is the fallback Zipf exponent used when the online
	// rank-frequency fit returns its degenerate-head 0 sentinel. It is
	// deliberately near-uniform: the fallback only fires when the
	// sketch head shows no detectable skew, so the default models what
	// was observed — effectively flat popularity. Configure a larger
	// exponent when the stream is known to be skewed but sampled too
	// thinly for the fit to see it.
	DefaultAlpha = 0.05
	// MaxAlpha bounds both configured and fitted exponents; beyond it
	// the tail mass degenerates onto the first tail rank anyway.
	MaxAlpha = 8.0
	// DefaultPoints is the default evaluation-grid density of the
	// emitted curve (on top of a power-of-two ladder for the head).
	DefaultPoints = 96
)

// Config parameterizes a Fitter. The zero value selects the Che
// variant with all defaults.
type Config struct {
	// Variant selects Che or Fagin.
	Variant Variant
	// Heads is the Space-Saving counter budget; 0 means DefaultHeads.
	Heads int
	// DefaultAlpha is the fallback Zipf exponent for degenerate fits;
	// 0 means DefaultAlpha, otherwise it must be in (0, MaxAlpha].
	DefaultAlpha float64
	// Points is the evaluation-grid density; 0 means DefaultPoints.
	Points int
}

// Fitter consumes a request stream and fits the popularity model the
// closed forms evaluate. It is not safe for concurrent use.
type Fitter struct {
	cfg      Config
	top      *topk
	card     *hll
	requests uint64
}

// New builds a Fitter. Zero Config fields take package defaults.
func New(cfg Config) (*Fitter, error) {
	if cfg.Variant > Fagin {
		return nil, fmt.Errorf("cheform: unknown variant %d", cfg.Variant)
	}
	if cfg.Heads == 0 {
		cfg.Heads = DefaultHeads
	}
	if cfg.Heads < 8 {
		return nil, fmt.Errorf("cheform: heads = %d, must be >= 8", cfg.Heads)
	}
	if cfg.DefaultAlpha == 0 {
		cfg.DefaultAlpha = DefaultAlpha
	}
	if cfg.DefaultAlpha < 0 || cfg.DefaultAlpha > MaxAlpha {
		return nil, fmt.Errorf("cheform: default alpha %v out of (0, %v]", cfg.DefaultAlpha, MaxAlpha)
	}
	if cfg.Points == 0 {
		cfg.Points = DefaultPoints
	}
	if cfg.Points < 2 {
		return nil, fmt.Errorf("cheform: points = %d, must be >= 2", cfg.Points)
	}
	return &Fitter{cfg: cfg, top: newTopK(cfg.Heads), card: newHLL()}, nil
}

// Process feeds one request into the popularity sketches. Deletes are
// ignored: the closed forms model the popularity distribution of the
// reference stream, which a delete does not change.
func (f *Fitter) Process(req trace.Request) {
	if req.Op == trace.OpDelete {
		return
	}
	f.requests++
	f.top.Observe(req.Key)
	f.card.Add(req.Key)
}

// Requests returns the number of non-delete requests observed.
func (f *Fitter) Requests() uint64 { return f.requests }

// HeadRun is a run of consecutive popularity ranks sharing one
// guaranteed count.
type HeadRun struct {
	// Count is the Space-Saving guaranteed count (count − error).
	Count uint64
	// Ranks is the number of head ranks carrying Count.
	Ranks int
}

// Fit is the fitted popularity model: everything the closed forms
// need, detached from the live sketches.
type Fit struct {
	// Requests is the non-delete stream length the fit summarizes.
	Requests uint64
	// Distinct is the estimated number of distinct keys (≥ the head
	// rank count).
	Distinct float64
	// Alpha is the tail's power-law exponent.
	Alpha float64
	// Fallback reports that Alpha is the configured default because
	// analysis.ZipfFit returned its degenerate-head sentinel.
	Fallback bool
	// Head is the empirical head: guaranteed counts in descending
	// order, run-length encoded.
	Head []HeadRun
}

// Fit summarizes the sketches into a popularity model. It reads the
// sketch state without mutating it, so Fit (and Curve) may be called
// mid-stream and again at end of stream; the same state always yields
// the identical Fit.
func (f *Fitter) Fit() Fit {
	fit := Fit{Requests: f.requests, Alpha: f.cfg.DefaultAlpha, Fallback: true}
	if f.requests == 0 {
		return fit
	}
	counts := f.top.Guaranteed()
	if a := analysis.ZipfFit(counts); a > 0 {
		fit.Alpha = a
		fit.Fallback = false
		if fit.Alpha > MaxAlpha {
			fit.Alpha = MaxAlpha
		}
	}
	// Counters whose guaranteed count is 1 carry no evidence beyond
	// "this key exists" — under churn every tracked key bottoms out at
	// count − err = 1 — so they are left to the tail model: their
	// ranks and mass flow back into the power-law remainder instead of
	// pinning junk per-key probabilities of 1/R.
	for i := 0; i < len(counts) && counts[i] > 1; {
		j := i
		for j < len(counts) && counts[j] == counts[i] {
			j++
		}
		fit.Head = append(fit.Head, HeadRun{Count: counts[i], Ranks: j - i})
		i = j
	}
	est := f.card.Estimate()
	if est < float64(len(counts)) {
		est = float64(len(counts))
	}
	if est < 1 {
		est = 1
	}
	fit.Distinct = est
	return fit
}

// Curve fits the popularity model and evaluates the closed form into
// a miss-ratio curve. scale rescales cache sizes (pass 1/R when the
// fitter saw a spatially sampled stream at rate R). Non-destructive:
// the fitter may keep streaming afterwards.
func (f *Fitter) Curve(scale float64) *mrc.Curve {
	return buildCurve(f.Fit(), f.cfg, scale)
}

// MemoryOverheadBytes reports the resident sketch metadata: the
// Space-Saving heap and index plus the HyperLogLog registers. This is
// the whole model state — the §5.6 accounting that makes this tier
// the leftmost point of the accuracy-vs-cost frontier.
func (f *Fitter) MemoryOverheadBytes() uint64 {
	return f.top.memBytes() + f.card.memBytes()
}
