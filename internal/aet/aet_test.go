package aet

import (
	"testing"

	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestLoopTraceExact(t *testing.T) {
	// A cyclic loop over M objects has every reuse time equal to M, so
	// AET must reproduce the LRU step: miss ~1 below M, cold-ratio at M.
	const m = 200
	mon := New(0)
	g := workload.NewLoop(m, nil)
	if err := mon.ProcessAll(trace.LimitReader(g, m*30)); err != nil {
		t.Fatal(err)
	}
	c := mon.MRC()
	if got := c.Eval(m / 2); got < 0.9 {
		t.Fatalf("miss(M/2) = %v, want ~1", got)
	}
	if got := c.Eval(m + 1); got > 0.1 {
		t.Fatalf("miss(M) = %v, want ~cold ratio", got)
	}
}

func TestMatchesExactLRUOnZipf(t *testing.T) {
	g := workload.NewZipf(3, 20000, 0.9, nil, 0)
	tr, _ := trace.Collect(g, 300000)

	mon := New(0)
	if err := mon.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	model := mon.MRC()

	exact := olken.NewProfiler(1)
	if err := exact.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	truth := exact.ObjectMRC(1)

	sizes := mrc.EvenSizes(20000, 25)
	if mae := mrc.MAE(model, truth, sizes); mae > 0.03 {
		t.Fatalf("AET vs exact LRU MAE %v", mae)
	}
}

func TestMatchesExactLRUOnMSRLike(t *testing.T) {
	g := workload.NewMSRLike(5, workload.MSRParams{
		Blocks: 8000, HotWeight: 0.5, SeqWeight: 0.3, LoopWeight: 0.2,
		LoopLen: 2000, LoopRepeats: 2,
	})
	tr, _ := trace.Collect(g, 200000)

	mon := New(0)
	mon.ProcessAll(tr.Reader())
	exact := olken.NewProfiler(1)
	exact.ProcessAll(tr.Reader())

	sizes := mrc.EvenSizes(8000, 20)
	if mae := mrc.MAE(mon.MRC(), exact.ObjectMRC(1), sizes); mae > 0.05 {
		t.Fatalf("AET vs exact LRU on mixed trace MAE %v", mae)
	}
}

func TestSpatialSamplingClose(t *testing.T) {
	g := workload.NewZipf(7, 50000, 0.7, nil, 0)
	tr, _ := trace.Collect(g, 400000)

	full := New(0)
	full.ProcessAll(tr.Reader())
	sampled := New(0.2)
	sampled.ProcessAll(tr.Reader())

	if sampled.References() >= full.References() {
		t.Fatal("filter inactive")
	}
	sizes := mrc.EvenSizes(50000, 20)
	if mae := mrc.MAE(full.MRC(), sampled.MRC(), sizes); mae > 0.03 {
		t.Fatalf("sampled vs full AET MAE %v", mae)
	}
}

func TestDeleteForgets(t *testing.T) {
	mon := New(0)
	mon.Process(trace.Request{Key: 1, Op: trace.OpGet})
	mon.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	mon.Process(trace.Request{Key: 1, Op: trace.OpGet})
	if mon.reuses != 0 || mon.cold != 2 {
		t.Fatalf("reuses=%d cold=%d, delete must forget", mon.reuses, mon.cold)
	}
}

func TestEmptyMonitor(t *testing.T) {
	c := New(0).MRC()
	if c.Eval(100) != 1 {
		t.Fatal("empty monitor must predict all-miss")
	}
}

func TestCurveMonotone(t *testing.T) {
	g := workload.NewTwitterLike(9, workload.TwitterParams{Keys: 5000, Alpha: 1.1})
	mon := New(0)
	mon.ProcessAll(trace.LimitReader(g, 100000))
	c := mon.MRC()
	for i := 1; i < c.Len(); i++ {
		if c.Miss[i] > c.Miss[i-1]+1e-12 {
			t.Fatalf("AET curve not monotone at %d", i)
		}
	}
}

func BenchmarkProcess(b *testing.B) {
	mon := New(0.01)
	g := workload.NewZipf(3, 1<<20, 1.0, nil, 0)
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Process(reqs[i&(1<<16-1)])
	}
}
