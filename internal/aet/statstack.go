package aet

import (
	"krr/internal/histogram"
	"krr/internal/mrc"
)

// StatStackMRC derives the exact-LRU curve from the same reuse-time
// histogram with the StatStack estimator (Eklov & Hagersten, ISPASS
// '10, §6.1): instead of solving the eviction-time equation, it
// converts each reuse time r into an *expected stack distance*
//
//	D(r) = Σ_{k=1..r} P(rt > k)
//
// — the expected number of the r intervening references whose own
// reuse reaches past the window, i.e. the expected count of distinct
// other objects inside the interval — and accumulates a stack distance
// histogram from which the MRC follows as usual.
//
// AET and StatStack agree asymptotically; their finite-trace
// estimates differ, which makes the pair a useful cross-check.
func (m *Monitor) StatStackMRC() *mrc.Curve {
	total := float64(m.References())
	if total == 0 {
		return &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	}

	// First pass over the reuse-time histogram: build D(r) breakpoints
	// cumulatively. P(rt > k) is piecewise constant between recorded
	// reuse times, so D grows linearly within each bucket.
	type seg struct {
		r     uint64  // reuse time at the bucket boundary
		d     float64 // D(r) at the boundary
		count uint64  // references with this reuse time
	}
	greater := float64(m.reuses + m.cold)
	var segs []seg
	var dAcc float64
	var lastR uint64
	m.hist.Buckets(func(r, count uint64) {
		p := greater / total
		dAcc += p * float64(r-lastR)
		lastR = r
		greater -= float64(count)
		segs = append(segs, seg{r: r, d: dAcc, count: count})
	})

	// Second pass: every reference with reuse time r has expected
	// stack distance D(r); cold references are infinite.
	sdh := histogram.NewLog()
	for _, s := range segs {
		d := uint64(s.d + 0.5)
		if d == 0 {
			d = 1
		}
		for i := uint64(0); i < s.count; i++ {
			sdh.Add(d)
		}
	}
	for i := uint64(0); i < m.cold; i++ {
		sdh.AddCold()
	}
	return mrc.FromHistogram(sdh, 1)
}
