package aet

import (
	"testing"

	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
)

func TestStatStackLoopExact(t *testing.T) {
	const m = 300
	mon := New(0)
	g := workload.NewLoop(m, nil)
	mon.ProcessAll(trace.LimitReader(g, m*20))
	c := mon.StatStackMRC()
	if c.Eval(m/2) < 0.9 {
		t.Fatalf("miss(M/2) = %v, want ~1", c.Eval(m/2))
	}
	if c.Eval(m+2) > 0.1 {
		t.Fatalf("miss(M) = %v, want ~cold", c.Eval(m+2))
	}
}

func TestStatStackMatchesExactLRU(t *testing.T) {
	g := workload.NewZipf(11, 20000, 0.9, nil, 0)
	tr, _ := trace.Collect(g, 300000)
	mon := New(0)
	mon.ProcessAll(tr.Reader())
	model := mon.StatStackMRC()

	exact := olken.NewProfiler(1)
	exact.ProcessAll(tr.Reader())
	truth := exact.ObjectMRC(1)

	sizes := mrc.EvenSizes(20000, 25)
	if mae := mrc.MAE(model, truth, sizes); mae > 0.03 {
		t.Fatalf("StatStack vs exact LRU MAE %v", mae)
	}
}

func TestStatStackAgreesWithAET(t *testing.T) {
	// Two estimators over one histogram must agree closely.
	g := workload.NewMSRLike(5, workload.MSRParams{
		Blocks: 6000, HotWeight: 0.6, SeqWeight: 0.2, LoopWeight: 0.2,
		LoopLen: 1500, LoopRepeats: 2,
	})
	mon := New(0)
	mon.ProcessAll(trace.LimitReader(g, 150000))
	sizes := mrc.EvenSizes(6000, 20)
	if mae := mrc.MAE(mon.MRC(), mon.StatStackMRC(), sizes); mae > 0.03 {
		t.Fatalf("AET vs StatStack MAE %v", mae)
	}
}

func TestStatStackEmpty(t *testing.T) {
	if New(0).StatStackMRC().Eval(5) != 1 {
		t.Fatal("empty monitor must be all-miss")
	}
}
