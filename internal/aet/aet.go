// Package aet implements the Average Eviction Time model (Hu et al.,
// USENIX ATC '16 / ACM TOS '18) — the reuse-time-based exact-LRU MRC
// technique the paper recommends over KRR when K >= 32, where K-LRU
// has converged to LRU (§5.3, §6.1).
//
// AET is a kinetic model: an LRU stack position advances toward
// eviction at speed P(t), the probability that a reuse interval
// exceeds age t. The average eviction time of a cache of size c is
// the T solving
//
//	∫₀ᵀ P(t) dt = c
//
// and the miss ratio at c is P(T): the fraction of reuses whose reuse
// time exceeds the average eviction time. Both follow from one pass
// that records the reuse-time histogram — no stack is maintained at
// all, which is why AET is so cheap.
package aet

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/trace"
)

// Monitor collects the reuse-time distribution of a request stream.
type Monitor struct {
	filter   *sampling.Filter // nil = monitor everything
	lastSeen map[uint64]uint64
	hist     *histogram.Log
	clock    uint64 // logical time in (unsampled) references
	cold     uint64
	reuses   uint64
}

// New returns a monitor. samplingRate in (0, 1) monitors only the
// spatially sampled keys (reuse times are still measured in full-
// stream references, so no rescaling is needed); 0 or 1 monitors all.
func New(samplingRate float64) *Monitor {
	m := &Monitor{
		lastSeen: make(map[uint64]uint64),
		hist:     histogram.NewLog(),
	}
	if samplingRate > 0 && samplingRate < 1 {
		m.filter = sampling.NewRate(samplingRate)
	}
	return m
}

// Process feeds one request. Delete forgets the key (its next access
// is a cold miss).
func (m *Monitor) Process(req trace.Request) {
	m.clock++
	if m.filter != nil && !m.filter.Sampled(req.Key) {
		return
	}
	if req.Op == trace.OpDelete {
		delete(m.lastSeen, req.Key)
		return
	}
	if last, ok := m.lastSeen[req.Key]; ok {
		m.hist.Add(m.clock - last)
		m.reuses++
	} else {
		m.cold++
	}
	m.lastSeen[req.Key] = m.clock
}

// ProcessAll drains a reader.
func (m *Monitor) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		m.Process(req)
	}
}

// References returns the number of sampled references.
func (m *Monitor) References() uint64 { return m.reuses + m.cold }

// MemoryOverheadBytes estimates the monitor's resident metadata: the
// last-seen map plus the reuse-time histogram.
func (m *Monitor) MemoryOverheadBytes() uint64 {
	const perEntry = 48 // map entry: key + value + bucket overhead
	return uint64(len(m.lastSeen))*perEntry + m.hist.MemBytes()
}

// MRC solves the AET equation across the reuse-time histogram and
// returns the modeled exact-LRU miss ratio curve over object-count
// cache sizes.
//
// Numerically: walking t upward, P(t) is piecewise constant between
// recorded reuse times, so the integral accumulates in closed form
// per histogram bucket. Each bucket boundary yields one curve
// breakpoint (c = ∫₀ᵗ P, miss = P(t)).
func (m *Monitor) MRC() *mrc.Curve {
	total := float64(m.References())
	// P(t) is constant between recorded reuse times, so the curve is a
	// left-hold step function: for c between two breakpoints, the
	// average eviction time falls between the same two reuse times and
	// the miss ratio is the left breakpoint's.
	c := &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	if total == 0 {
		return c
	}
	// greater(t) = count of reuse intervals with reuse time > t, plus
	// cold references (infinite reuse time).
	greater := float64(m.reuses + m.cold)
	var integral float64 // ∫ P dt so far
	var lastT uint64
	m.hist.Buckets(func(t, count uint64) {
		p := greater / total
		integral += p * float64(t-lastT)
		lastT = t
		greater -= float64(count)
		missAfter := greater / total
		size := uint64(integral + 0.5)
		if n := len(c.Sizes); size <= c.Sizes[n-1] {
			c.Miss[n-1] = missAfter
			return
		}
		c.Sizes = append(c.Sizes, size)
		c.Miss = append(c.Miss, missAfter)
	})
	return c
}
