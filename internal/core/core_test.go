package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestKPrimeFor(t *testing.T) {
	if KPrimeFor(1) != 1 {
		t.Fatal("K=1 must stay 1 (RR is exact)")
	}
	if KPrimeFor(0) != 1 || KPrimeFor(-2) != 1 {
		t.Fatal("degenerate K must clamp to 1")
	}
	if got := KPrimeFor(5); math.Abs(got-math.Pow(5, 1.4)) > 1e-12 {
		t.Fatalf("K'=%v", got)
	}
}

func TestMethodStrings(t *testing.T) {
	if Backward.String() != "backward" || TopDown.String() != "topdown" || Linear.String() != "linear" {
		t.Fatal("method names wrong")
	}
	if UpdateMethod(9).String() != "method?" {
		t.Fatal("unknown method must stringify safely")
	}
}

func TestNewStackPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStack(0, 1)
}

// fillStack references keys 1..n once so the stack holds n objects
// in known order (key n on top).
func fillStack(s *Stack, n int) {
	for k := uint64(1); k <= uint64(n); k++ {
		s.Reference(k, 1)
	}
}

func TestChainStructure(t *testing.T) {
	// Every sampler must emit a strictly ascending chain from 1 to φ.
	for _, m := range []UpdateMethod{Backward, TopDown, Linear} {
		s := NewStack(3.2, 42, WithMethod(m))
		fillStack(s, 200)
		for trial := 0; trial < 500; trial++ {
			phi := int32(2 + trial%199)
			switch m {
			case Backward:
				s.buildChainBackward(phi)
			case TopDown:
				s.buildChainTopDown(phi)
			default:
				s.buildChainLinear(phi)
			}
			c := s.chain
			if c[0] != 1 || c[len(c)-1] != phi {
				t.Fatalf("%v: chain endpoints %v for phi=%d", m, c, phi)
			}
			for i := 1; i < len(c); i++ {
				if c[i] <= c[i-1] {
					t.Fatalf("%v: chain not ascending: %v", m, c)
				}
			}
		}
	}
}

func TestSwapMarginalsMatchEquation41(t *testing.T) {
	// Each interior position i must appear in the chain with
	// probability 1 - ((i-1)/i)^K, identically for all three samplers.
	const phi, k, trials = 40, 4.0, 40000
	for _, m := range []UpdateMethod{Backward, TopDown, Linear} {
		s := NewStack(k, 7, WithMethod(m))
		fillStack(s, phi)
		counts := make([]int, phi+1)
		for trial := 0; trial < trials; trial++ {
			switch m {
			case Backward:
				s.buildChainBackward(phi)
			case TopDown:
				s.buildChainTopDown(phi)
			default:
				s.buildChainLinear(phi)
			}
			for _, v := range s.chain {
				counts[v]++
			}
		}
		for i := 2; i < phi; i++ {
			want := 1 - math.Pow(float64(i-1)/float64(i), k)
			got := float64(counts[i]) / trials
			if math.Abs(got-want) > 0.012 {
				t.Fatalf("%v: position %d swap freq %v, want %v", m, i, got, want)
			}
		}
		if counts[1] != trials || counts[phi] != trials {
			t.Fatalf("%v: endpoints must always be in the chain", m)
		}
	}
}

func TestExpectedSwapCountIsKLogM(t *testing.T) {
	// Corollary 1: E[β] = sum_{i=2}^{φ-1} 1-((i-1)/i)^K ≈ K ln φ.
	const phi = 1000
	for _, k := range []float64{1, 2, 5} {
		s := NewStack(k, 3, WithMethod(Backward))
		fillStack(s, phi)
		const trials = 3000
		var total int
		for i := 0; i < trials; i++ {
			s.buildChainBackward(phi)
			total += len(s.chain) - 2
		}
		got := float64(total) / trials
		var want float64
		for i := 2; i < phi; i++ {
			want += 1 - math.Pow(float64(i-1)/float64(i), k)
		}
		if math.Abs(got-want) > 0.15*want+0.5 {
			t.Fatalf("k=%v: mean swaps %v, analytic %v", k, got, want)
		}
	}
}

func TestHugeKBehavesLikeLRU(t *testing.T) {
	// With an enormous exponent every position swaps, so distances
	// must equal the exact LRU stack distances reference by reference.
	for _, m := range []UpdateMethod{Backward, TopDown, Linear} {
		s := NewStack(1e7, 1, WithMethod(m))
		oracle := olken.New(9)
		src := xrand.New(31)
		for i := 0; i < 5000; i++ {
			key := src.Uint64n(500)
			want := oracle.Reference(key, 1)
			got := s.Reference(key, 1)
			if got.Cold != want.Cold {
				t.Fatalf("%v step %d: cold mismatch", m, i)
			}
			if !got.Cold && got.Distance != want.Distance {
				t.Fatalf("%v step %d: dist %d, LRU %d", m, i, got.Distance, want.Distance)
			}
		}
	}
}

func TestPositionMapStaysPermutation(t *testing.T) {
	err := quick.Check(func(ops []uint16, method uint8) bool {
		s := NewStack(2.7, 5, WithMethod(UpdateMethod(method%3)))
		for _, op := range ops {
			key := uint64(op % 128)
			if op%11 == 0 {
				s.Delete(key)
				continue
			}
			s.Reference(key, uint32(op%50)+1)
		}
		if s.pos.Len() != s.Len() {
			return false
		}
		for i := 1; i <= s.Len(); i++ {
			if s.pos.get(s.keys[i]) != int32(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCompacts(t *testing.T) {
	s := NewStack(1e7, 1) // LRU-like for determinism
	fillStack(s, 5)       // top..bottom: 5 4 3 2 1
	if !s.Delete(3) {
		t.Fatal("resident delete must return true")
	}
	if s.Delete(3) {
		t.Fatal("double delete must return false")
	}
	if s.Len() != 4 || s.PositionOf(1) != 4 {
		t.Fatalf("compaction wrong: len=%d pos(1)=%d", s.Len(), s.PositionOf(1))
	}
	got := s.Reference(1, 1)
	if got.Cold || got.Distance != 4 {
		t.Fatalf("post-delete distance %d", got.Distance)
	}
}

func TestReferenceTopShortCircuit(t *testing.T) {
	s := NewStack(2, 1)
	s.Reference(9, 1)
	before := s.SwapSteps()
	res := s.Reference(9, 1)
	if res.Cold || res.Distance != 1 {
		t.Fatalf("top hit: %+v", res)
	}
	if s.SwapSteps() != before {
		t.Fatal("top hit must not produce swap work")
	}
}

func TestKRRMatchesLinearReferenceMRC(t *testing.T) {
	// The fast samplers and the linear baseline must produce
	// statistically identical MRCs on a real workload.
	g := workload.NewMSRLike(3, workload.MSRParams{
		Blocks: 3000, HotWeight: 0.4, SeqWeight: 0.3, LoopWeight: 0.3,
		LoopLen: 900, LoopRepeats: 3,
	})
	tr, _ := trace.Collect(g, 60000)
	sizes := mrc.EvenSizes(3000, 20)

	curves := map[UpdateMethod]*mrc.Curve{}
	for _, m := range []UpdateMethod{Backward, TopDown, Linear} {
		p := MustProfiler(Config{K: 4, Method: m, Seed: 11})
		if err := p.ProcessAll(tr.Reader()); err != nil {
			t.Fatal(err)
		}
		curves[m] = p.ObjectMRC()
	}
	if mae := mrc.MAE(curves[Backward], curves[Linear], sizes); mae > 0.015 {
		t.Fatalf("backward vs linear MAE %v", mae)
	}
	if mae := mrc.MAE(curves[TopDown], curves[Linear], sizes); mae > 0.015 {
		t.Fatalf("topdown vs linear MAE %v", mae)
	}
}

func TestKRRPredictsKLRUSimulation(t *testing.T) {
	// The headline claim (§5.3): KRR's one-pass MRC tracks the
	// simulated K-LRU cache across K.
	g := workload.NewMSRLike(5, workload.MSRParams{
		Blocks: 2500, HotWeight: 0.35, SeqWeight: 0.25, LoopWeight: 0.4,
		HotFraction: 0.1, HotAlpha: 1.0, LoopLen: 1000, LoopRepeats: 3,
	})
	tr, _ := trace.Collect(g, 80000)
	sizes := mrc.EvenSizes(2500, 12)

	for _, k := range []int{1, 4, 16} {
		p := MustProfiler(Config{K: k, Seed: 21})
		if err := p.ProcessAll(tr.Reader()); err != nil {
			t.Fatal(err)
		}
		model := p.ObjectMRC()

		truth, err := simulateKLRU(tr, k, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if mae := mrc.MAE(model, truth, sizes); mae > 0.03 {
			t.Fatalf("K=%d: KRR vs simulation MAE %v", k, mae)
		}
	}
}

// simulateKLRU is a local ground-truth helper (avoids importing the
// simulator package in non-test code paths; the experiments package
// wires the real thing).
func simulateKLRU(tr *trace.Trace, k int, sizes []uint64) (*mrc.Curve, error) {
	miss := make([]float64, len(sizes))
	for i, size := range sizes {
		cache := newTestKLRU(int(size), k, uint64(size)*7+1)
		var hits, total int
		r := tr.Reader()
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			total++
			if cache.access(req.Key) {
				hits++
			}
		}
		miss[i] = 1 - float64(hits)/float64(total)
	}
	return mrc.FromPoints(sizes, miss), nil
}

type testKLRU struct {
	cap   int
	k     int
	src   *xrand.Source
	keys  []uint64
	last  []uint64
	index map[uint64]int
	clock uint64
}

func newTestKLRU(cap, k int, seed uint64) *testKLRU {
	return &testKLRU{cap: cap, k: k, src: xrand.New(seed), index: make(map[uint64]int)}
}

func (c *testKLRU) access(key uint64) bool {
	c.clock++
	if i, ok := c.index[key]; ok {
		c.last[i] = c.clock
		return true
	}
	if len(c.keys) >= c.cap {
		victim := int(c.src.Uint64n(uint64(len(c.keys))))
		for j := 1; j < c.k; j++ {
			cand := int(c.src.Uint64n(uint64(len(c.keys))))
			if c.last[cand] < c.last[victim] {
				victim = cand
			}
		}
		delete(c.index, c.keys[victim])
		lastIdx := len(c.keys) - 1
		if victim != lastIdx {
			c.keys[victim], c.last[victim] = c.keys[lastIdx], c.last[lastIdx]
			c.index[c.keys[victim]] = victim
		}
		c.keys, c.last = c.keys[:lastIdx], c.last[:lastIdx]
	}
	c.index[key] = len(c.keys)
	c.keys = append(c.keys, key)
	c.last = append(c.last, c.clock)
	return false
}

func TestSpatialSamplingAccuracy(t *testing.T) {
	// KRR under spatial sampling must track unsampled KRR (§5.3).
	// Mild skew: with a strongly Zipfian trace the handful of hottest
	// keys carry so much mass that their random inclusion dominates
	// the sampling variance (the paper's workloads have millions of
	// objects, where this averages out).
	g := workload.NewZipf(9, 60000, 0.6, nil, 0)
	tr, _ := trace.Collect(g, 400000)

	full := MustProfiler(Config{K: 8, Seed: 3})
	if err := full.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	sampledP := MustProfiler(Config{K: 8, Seed: 3, SamplingRate: 0.2})
	if err := sampledP.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	sizes := mrc.EvenSizes(60000, 20)
	if mae := mrc.MAE(full.ObjectMRC(), sampledP.ObjectMRC(), sizes); mae > 0.03 {
		t.Fatalf("sampled vs full MAE %v", mae)
	}
	if sampledP.Sampled() == 0 || sampledP.Sampled() >= sampledP.Seen() {
		t.Fatalf("filter inactive: %d of %d", sampledP.Sampled(), sampledP.Seen())
	}
}

func TestUniformByteDistance(t *testing.T) {
	s := NewStack(2, 1)
	s.Reference(1, 100)
	s.Reference(2, 300)
	// mean size 200; distance 2 → 400.
	if got := s.UniformByteDistance(2); got != 400 {
		t.Fatalf("uniform byte distance %d, want 400", got)
	}
	empty := NewStack(2, 1)
	if empty.UniformByteDistance(5) != 0 {
		t.Fatal("empty stack must estimate 0")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewProfiler(Config{K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := NewProfiler(Config{K: 1, SamplingRate: -0.5}); err == nil {
		t.Fatal("negative rate must fail")
	}
	if _, err := NewProfiler(Config{K: 1, SamplingRate: 2}); err == nil {
		t.Fatal("rate > 1 must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustProfiler must panic on bad config")
		}
	}()
	MustProfiler(Config{K: 0})
}

func TestByteMRCErrsWhenOff(t *testing.T) {
	p := MustProfiler(Config{K: 2, Seed: 1})
	c, err := p.ByteMRC()
	if !errors.Is(err, ErrBytesOff) {
		t.Fatalf("ByteMRC error = %v, want ErrBytesOff", err)
	}
	if c != nil {
		t.Fatal("ByteMRC must return a nil curve with ErrBytesOff")
	}
	sp, err := NewShardedProfiler(Config{K: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if _, err := sp.ByteMRC(); !errors.Is(err, ErrBytesOff) {
		t.Fatalf("sharded ByteMRC error = %v, want ErrBytesOff", err)
	}
}

func TestProfilerDeleteOp(t *testing.T) {
	p := MustProfiler(Config{K: 2, Seed: 1})
	p.Process(trace.Request{Key: 1, Op: trace.OpGet, Size: 1})
	p.Process(trace.Request{Key: 1, Op: trace.OpDelete})
	p.Process(trace.Request{Key: 1, Op: trace.OpGet, Size: 1})
	if p.ObjHist().Cold() != 2 {
		t.Fatalf("cold = %d, want 2 (delete forgets)", p.ObjHist().Cold())
	}
}

func TestBuildMRCConvenience(t *testing.T) {
	g := workload.NewZipf(1, 1000, 1.0, nil, 0)
	curve, err := BuildMRC(trace.LimitReader(g, 20000), Config{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if curve.Eval(1000) >= curve.Eval(10) {
		t.Fatal("curve not decreasing")
	}
	if _, err := BuildMRC(g, Config{K: 0}); err == nil {
		t.Fatal("bad config must propagate")
	}
}

func TestMemoryOverheadAccounting(t *testing.T) {
	s := NewStack(2, 1)
	fillStack(s, 100)
	per := s.MemoryOverheadBytes() / 100
	// Open-addressing index: 12 B array slot + 12 B/index slot at
	// >= 3/8 instantaneous load — well under the paper's ~72 B/object
	// bucketed-map accounting (§5.6), but never below the raw 24 B.
	if per < 24 || per > 60 {
		t.Fatalf("per-object overhead %d bytes, expected ~28-48 with the open-addressing index", per)
	}
}

func TestResetHistogramsKeepsStack(t *testing.T) {
	p := MustProfiler(Config{K: 4, Seed: 1, Bytes: BytesSizeArray})
	g := workload.NewZipf(3, 500, 1.0, nil, 0)
	tr, _ := trace.Collect(g, 10000)
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	warmLen := p.Stack().Len()
	if p.ObjHist().Total() == 0 {
		t.Fatal("no distances recorded")
	}
	p.ResetHistograms()
	if p.ObjHist().Total() != 0 || p.ByteHist().Total() != 0 {
		t.Fatal("histograms not cleared")
	}
	if p.Stack().Len() != warmLen {
		t.Fatal("reset must keep the stack warm")
	}
	// The next window records non-cold distances immediately: the
	// stack remembers the objects.
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if p.ObjHist().Cold() != 0 {
		t.Fatalf("warm stack produced %d cold misses", p.ObjHist().Cold())
	}
}

func TestStatsCounters(t *testing.T) {
	s := NewStack(4, 1)
	fillStack(s, 50)
	if s.Updates() != 50 {
		t.Fatalf("updates = %d", s.Updates())
	}
	before := s.SwapSteps()
	s.Reference(1, 1) // distance 50 — guaranteed interior positions
	if s.Updates() != 51 {
		t.Fatal("update counter")
	}
	_ = before // swaps may be zero for one update; counters checked above
}
