package core

import (
	"math"
	"testing"

	"krr/internal/xrand"
)

// TestPowOpenAccuracy sweeps the kernel's whole admissible domain and
// bounds its relative error against math.Pow. The sampler quantizes
// r^(1/K′) through ceil(r·(i-1)), so 1e-9 relative error is ~4 orders
// of magnitude below the coarsest quantization any stack position
// sees.
func TestPowOpenAccuracy(t *testing.T) {
	src := xrand.New(123)
	const n = 2_000_000
	worst := 0.0
	for i := 0; i < n; i++ {
		x := src.Float64Open()
		if i%5 == 0 {
			// Stress tiny x (deep exponents) too.
			x = math.Exp(-70 * src.Float64())
			if x == 0 {
				continue
			}
		}
		p := src.Float64Open()
		got := powOpen(x, p)
		want := math.Pow(x, p)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 2e-9 {
		t.Fatalf("worst relative error %.3e > 2e-9", worst)
	}
	// Boundary cases.
	if powOpen(1, 0.3) != 1 {
		t.Fatal("powOpen(1, p) != 1")
	}
	for _, p := range []float64{1e-6, 0.054, 0.5, 1} {
		got := powOpen(math.SmallestNonzeroFloat64*1e16, p)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("powOpen degenerate at tiny x, p=%v: %v", p, got)
		}
	}
}

// TestPowOpenMonotone: the inverse CDF must stay monotone in r or the
// sampler's distribution warps.
func TestPowOpenMonotone(t *testing.T) {
	const p = 1 / 18.379 // K = 8 → 1/K′
	prev := 0.0
	for i := 1; i <= 100_000; i++ {
		x := float64(i) / 100_000
		v := powOpen(x, p)
		if v < prev {
			t.Fatalf("powOpen not monotone at x=%v", x)
		}
		prev = v
	}
	if prev > 1 {
		t.Fatalf("powOpen(1-, p) = %v > 1", prev)
	}
}

func BenchmarkPowOpen(b *testing.B) {
	src := xrand.New(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Float64Open()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += powOpen(xs[i&4095], 0.0544)
	}
	_ = sink
}

func BenchmarkMathPow(b *testing.B) {
	src := xrand.New(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Float64Open()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Pow(xs[i&4095], 0.0544)
	}
	_ = sink
}

func BenchmarkExpLog(b *testing.B) {
	src := xrand.New(1)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = src.Float64Open()
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += math.Exp(0.0544 * math.Log(xs[i&4095]))
	}
	_ = sink
}
