package core

import "krr/internal/xrand"

// rngBatch sizes the uniform-draw buffer shared by the stack samplers.
const rngBatch = 64

// drawBatch batches uniform draws for the stack samplers: refilling a
// small buffer in a tight loop amortizes the per-draw call overhead
// without changing the consumed sequence.
type drawBatch struct {
	src *xrand.Source
	buf [rngBatch]float64
	pos int
}

// newDrawBatch wraps src with an empty buffer; the first draw refills.
func newDrawBatch(src *xrand.Source) drawBatch {
	return drawBatch{src: src, pos: rngBatch}
}

// next returns the next batched uniform draw from (0, 1]. The consumed
// sequence is identical to calling src.Float64Open per draw.
func (d *drawBatch) next() float64 {
	if d.pos == rngBatch {
		src := d.src
		for i := range d.buf {
			d.buf[i] = src.Float64Open()
		}
		d.pos = 0
	}
	v := d.buf[d.pos]
	d.pos++
	return v
}
