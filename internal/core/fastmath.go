package core

import "math"

// This file implements the backward sampler's x^p kernel. Profiling
// shows the inverse-CDF step r^(1/K′) = exp((1/K′)·ln r) spends
// nearly half of every KRR update inside math.Exp/math.Log; those
// routines handle the full float64 domain (signs, infinities, NaNs,
// subnormals, >1e300 magnitudes) that this call site can never
// produce. powOpen exploits the known ranges — x ∈ (0, 1] is a
// 53-bit uniform draw, p ∈ (0, 1] — with table-driven log2/exp2:
//
//	x^p = 2^(p·log2 x)
//
// log2 x: split the mantissa m ∈ [1,2) on its top 7 bits, so
// m = hi·(1+r) with r < 2^-7; log2 hi comes from a 128-entry table
// and log2(1+r) from a 4-term alternating series (error ≲ 6e-12).
//
// 2^z (z ≤ 0): split z = n + j/64 + g with g < 1/64; 2^(j/64) comes
// from a 64-entry table, 2^g from a cubic (error ≲ 3e-11), and 2^n
// is assembled directly into the exponent bits. z ≥ -53 here (p ≤ 1,
// x ≥ 2^-53), so the result never goes subnormal.
//
// Both tables together are 1.5 KiB — L1-resident under any workload.
// Relative error is bounded by ~1e-9 (asserted against math.Pow in
// fastmath_test.go), far below the 1/(i-1) quantization the sampler's
// ceil applies to the result, so the swap-set distribution is
// unchanged (the jointdist equality test pins this).

const (
	logTabBits = 7
	logTabSize = 1 << logTabBits // mantissa split: 128 entries
	expTabBits = 6
	expTabSize = 1 << expTabBits // fraction split: 64 entries
)

var (
	// logTab[j] = {1/(1+j/128) rounded, -log2 of that rounding}.
	logRecip [logTabSize]float64
	logVal   [logTabSize]float64
	// expTab[j] = 2^(j/64).
	expTab [expTabSize]float64
)

func init() {
	for j := 0; j < logTabSize; j++ {
		r := 1 / (1 + float64(j)/logTabSize)
		logRecip[j] = r
		logVal[j] = -math.Log2(r)
	}
	for j := 0; j < expTabSize; j++ {
		expTab[j] = math.Exp2(float64(j) / expTabSize)
	}
}

const (
	invLn2 = 1.4426950408889634074 // 1/ln 2
	ln2    = 0.6931471805599453094
	ln2Sq  = ln2 * ln2
	ln2Cu  = ln2 * ln2 * ln2
)

// powOpen returns x^p for x in (0, 1] and p in (0, 1] with ≤ ~1e-9
// relative error. Callers outside those ranges get garbage — this is
// a kernel, not a math.Pow replacement.
func powOpen(x, p float64) float64 {
	if x == 1 {
		return 1
	}
	// log2(x) from exponent bits + mantissa table split.
	bits := math.Float64bits(x)
	e := int64(bits>>52) - 1023
	j := (bits >> (52 - logTabBits)) & (logTabSize - 1)
	m := math.Float64frombits(bits&(1<<52-1) | 1023<<52) // mantissa in [1,2)
	r := m*logRecip[j] - 1                               // |r| < 2^-7 + rounding
	r2 := r * r
	// log2(1+r) = (r - r²/2 + r³/3 - r⁴/4)/ln2, error ≲ 6e-12.
	l2 := float64(e) + logVal[j] + (r-r2*(0.5-r*(1.0/3-r*0.25)))*invLn2

	// 2^(p·l2), z in [-53, 0).
	z := p * l2
	nf := math.Floor(z)
	f := z - nf // [0, 1)
	k := uint64(f * expTabSize)
	g := f - float64(k)/expTabSize // [0, 1/64)
	// 2^g cubic in g, error ≲ 3e-11.
	p2g := 1 + g*(ln2+g*(ln2Sq*0.5+g*(ln2Cu/6)))
	scale := math.Float64frombits(uint64(int64(nf)+1023) << 52)
	return scale * expTab[k] * p2g
}
