package core

import (
	"fmt"
	"math"
	"testing"
)

// TestSwapJointDistributionEquality verifies that the three samplers
// draw swap *sets* (not just per-position marginals) from the same
// joint distribution. For φ = 6 the interior is positions 2..5 — 16
// possible subsets — small enough to compare full empirical
// distributions against the analytic product of independent
// Bernoullis, P(S) = Π_{i∈S} p_i · Π_{i∉S} (1−p_i) with
// p_i = 1 − ((i−1)/i)^K′.
func TestSwapJointDistributionEquality(t *testing.T) {
	const phi = 6
	const kPrime = 2.5
	const trials = 300000

	pSwap := func(i int) float64 {
		return 1 - math.Pow(float64(i-1)/float64(i), kPrime)
	}
	analytic := map[string]float64{}
	for mask := 0; mask < 16; mask++ {
		p := 1.0
		key := ""
		for bit := 0; bit < 4; bit++ {
			pos := bit + 2
			if mask&(1<<bit) != 0 {
				p *= pSwap(pos)
				key += fmt.Sprintf("%d,", pos)
			} else {
				p *= 1 - pSwap(pos)
			}
		}
		analytic[key] = p
	}

	for _, m := range []UpdateMethod{Backward, TopDown, Linear} {
		s := NewStack(kPrime, 1234+uint64(m), WithMethod(m))
		fillStack(s, phi)
		counts := map[string]int{}
		for trial := 0; trial < trials; trial++ {
			switch m {
			case Backward:
				s.buildChainBackward(phi)
			case TopDown:
				s.buildChainTopDown(phi)
			default:
				s.buildChainLinear(phi)
			}
			key := ""
			for _, v := range s.chain {
				if v > 1 && v < phi {
					key += fmt.Sprintf("%d,", v)
				}
			}
			counts[key]++
		}
		for key, want := range analytic {
			got := float64(counts[key]) / trials
			if math.Abs(got-want) > 0.006 {
				t.Fatalf("%v: subset {%s} frequency %.4f, analytic %.4f", m, key, got, want)
			}
		}
	}
}
