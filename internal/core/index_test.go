package core

import (
	"testing"
	"testing/quick"

	"krr/internal/xrand"
)

// TestPosIndexMatchesMap drives the index and a reference map through
// the same randomized put/overwrite/delete schedule and requires them
// to agree after every operation batch.
func TestPosIndexMatchesMap(t *testing.T) {
	err := quick.Check(func(ops []uint32) bool {
		ix := newPosIndex()
		ref := make(map[uint64]int32)
		for _, op := range ops {
			key := uint64(op % 512) // force collisions and reuse
			switch op % 3 {
			case 0, 1:
				pos := int32(op%1000) + 1
				ix.put(key, pos)
				ref[key] = pos
			case 2:
				got := ix.del(key)
				_, want := ref[key]
				if got != want {
					return false
				}
				delete(ref, key)
			}
		}
		if ix.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if ix.get(k) != v {
				return false
			}
		}
		// Absent keys must read as 0.
		for probe := uint64(0); probe < 600; probe += 7 {
			if _, ok := ref[probe]; !ok && ix.get(probe) != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPosIndexZeroKey checks that key 0 is a first-class key: slot
// emptiness is keyed on the value (positions are 1-based), not on a
// key sentinel.
func TestPosIndexZeroKey(t *testing.T) {
	ix := newPosIndex()
	if ix.get(0) != 0 {
		t.Fatal("empty index must miss key 0")
	}
	ix.put(0, 7)
	if ix.get(0) != 7 {
		t.Fatal("key 0 not stored")
	}
	ix.set(0, 9)
	if ix.get(0) != 9 {
		t.Fatal("key 0 not overwritten")
	}
	if !ix.del(0) || ix.del(0) {
		t.Fatal("key 0 delete broken")
	}
	if ix.get(0) != 0 || ix.Len() != 0 {
		t.Fatal("key 0 still present after delete")
	}
}

// TestPosIndexBackwardShift fills one probe cluster, deletes from its
// middle, and checks every survivor is still reachable — the property
// tombstone-free deletion must preserve.
func TestPosIndexBackwardShift(t *testing.T) {
	ix := newPosIndex()
	// Dense sequential keys: fibonacci hashing spreads them, but with
	// enough keys every cluster shape shows up.
	const n = 10_000
	for k := uint64(1); k <= n; k++ {
		ix.put(k, int32(k))
	}
	for k := uint64(2); k <= n; k += 3 {
		if !ix.del(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= n; k++ {
		want := int32(k)
		if k%3 == 2 {
			want = 0
		}
		if got := ix.get(k); got != want {
			t.Fatalf("get(%d) = %d, want %d", k, got, want)
		}
	}
}

// TestPosIndexGrowth checks rehashing retains every entry across many
// doublings.
func TestPosIndexGrowth(t *testing.T) {
	ix := newPosIndex()
	const n = 1 << 16
	for k := uint64(0); k < n; k++ {
		ix.put(k*0x9e3779b9, int32(k%1_000_000)+1)
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d, want %d", ix.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		if got := ix.get(k * 0x9e3779b9); got != int32(k%1_000_000)+1 {
			t.Fatalf("get lost key %d: %d", k, got)
		}
	}
}

// --- micro-benchmarks pinning the hot-path claims --------------------

// benchKeys builds a realistic Zipf-less key mix: uniform keys over a
// working set, exercising hit-dominated lookups.
func benchKeys(n int, space uint64) []uint64 {
	src := xrand.New(99)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = src.Uint64n(space)
	}
	return keys
}

// BenchmarkPosIndex and BenchmarkBuiltinMap compare the index against
// map[uint64]int32 on the stack's actual access mix (lookup + position
// overwrite), isolating the open-addressing win claimed in the §5.6
// notes.
func BenchmarkPosIndex(b *testing.B) {
	keys := benchKeys(1<<16, 1<<15)
	ix := newPosIndex()
	for _, k := range keys {
		ix.put(k, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		p := ix.get(k)
		ix.put(k, p%1000+1)
	}
}

func BenchmarkBuiltinMap(b *testing.B) {
	keys := benchKeys(1<<16, 1<<15)
	m := make(map[uint64]int32)
	for _, k := range keys {
		m[k] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		p := m[k]
		m[k] = p%1000 + 1
	}
}

// BenchmarkReferenceColdInsert pins the cold-path cost: every key is
// new, so each Reference appends and performs exactly one index
// insert (the duplicate cold-path write was eliminated — position 1
// is written once by update, not pre-written at φ and overwritten).
func BenchmarkReferenceColdInsert(b *testing.B) {
	s := NewStack(KPrimeFor(8), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reference(uint64(i)+1, 1)
	}
}

// BenchmarkReferenceHot pins the serial Process hot path on a steady
// working set (the ≥15% serial improvement acceptance target rides on
// this plus the Table 5.1 benches).
func BenchmarkReferenceHot(b *testing.B) {
	const ws = 1 << 15
	keys := benchKeys(1<<16, ws)
	s := NewStack(KPrimeFor(8), 1)
	for k := uint64(0); k < ws; k++ {
		s.Reference(k, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reference(keys[i&(1<<16-1)], 1)
	}
}
