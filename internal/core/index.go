package core

// posIndex is the stack's key→position hash index: an open-addressing
// table mapping uint64 keys to 1-based int32 stack positions. It
// replaces the built-in map on the profiler hot path — every Reference
// performs one lookup plus O(K log M) position writes, and a flat
// linear-probe table with fibonacci hashing beats map[uint64]int32 on
// both by avoiding bucket chaining, per-bucket tophash scans and write
// barriers.
//
// Invariants:
//   - capacity is a power of two; home slot is the top log2(cap) bits
//     of key * 2^64/φ (fibonacci hashing), so sequential and low-entropy
//     keys still spread.
//   - a slot with vals[i] == 0 is empty. Stack positions are 1-based,
//     so 0 never collides with a stored value and no separate occupancy
//     bitmap or key sentinel is needed (key 0 is a legal key).
//   - deletion backward-shifts displaced entries into the gap instead
//     of leaving tombstones, so probe sequences never grow with delete
//     traffic and load stays == occupancy.
type posIndex struct {
	keys  []uint64
	vals  []int32
	mask  uint64
	shift uint
	n     int
	max   int // grow threshold (3/4 load)
}

// fibMul is 2^64 / golden ratio, the fibonacci-hashing multiplier.
const fibMul = 0x9e3779b97f4a7c15

const posIndexMinCap = 16

func newPosIndex() *posIndex {
	ix := &posIndex{}
	ix.init(posIndexMinCap)
	return ix
}

func (ix *posIndex) init(capacity int) {
	ix.keys = make([]uint64, capacity)
	ix.vals = make([]int32, capacity)
	ix.mask = uint64(capacity - 1)
	ix.shift = 64 - uint(log2Ceil(capacity))
	ix.max = capacity - capacity>>2
	ix.n = 0
}

// log2Ceil returns ceil(log2(v)) for v >= 1 (v is a power of two here,
// so it is exact).
func log2Ceil(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

func (ix *posIndex) home(key uint64) uint64 {
	return (key * fibMul) >> ix.shift
}

// Len returns the number of stored keys.
func (ix *posIndex) Len() int { return ix.n }

// get returns the position stored for key, or 0 if absent.
func (ix *posIndex) get(key uint64) int32 {
	i := ix.home(key)
	for {
		v := ix.vals[i]
		if v == 0 {
			return 0
		}
		if ix.keys[i] == key {
			return v
		}
		i = (i + 1) & ix.mask
	}
}

// put inserts or overwrites key's position (pos must be >= 1).
func (ix *posIndex) put(key uint64, pos int32) {
	i := ix.home(key)
	for {
		v := ix.vals[i]
		if v == 0 {
			if ix.n >= ix.max {
				ix.grow()
				ix.put(key, pos)
				return
			}
			ix.keys[i] = key
			ix.vals[i] = pos
			ix.n++
			return
		}
		if ix.keys[i] == key {
			ix.vals[i] = pos
			return
		}
		i = (i + 1) & ix.mask
	}
}

// set overwrites the position of a key that is known to be present.
// It is the hot-loop variant used by the stack's cyclic shift, where
// every touched key is already indexed.
func (ix *posIndex) set(key uint64, pos int32) {
	i := ix.home(key)
	for ix.keys[i] != key || ix.vals[i] == 0 {
		i = (i + 1) & ix.mask
	}
	ix.vals[i] = pos
}

// del removes key, backward-shifting the probe chain so no tombstone
// remains. It reports whether the key was present.
func (ix *posIndex) del(key uint64) bool {
	i := ix.home(key)
	for {
		if ix.vals[i] == 0 {
			return false
		}
		if ix.keys[i] == key {
			break
		}
		i = (i + 1) & ix.mask
	}
	// Backward-shift: walk the contiguous occupied run after the gap;
	// any entry whose home lies cyclically at or before the gap can
	// legally move into it, re-opening the gap further down the run.
	j := i
	for {
		j = (j + 1) & ix.mask
		if ix.vals[j] == 0 {
			break
		}
		h := ix.home(ix.keys[j])
		if (j-h)&ix.mask >= (j-i)&ix.mask {
			ix.keys[i] = ix.keys[j]
			ix.vals[i] = ix.vals[j]
			i = j
		}
	}
	ix.vals[i] = 0
	ix.n--
	return true
}

// grow doubles the table and rehashes every live entry.
func (ix *posIndex) grow() {
	oldKeys, oldVals := ix.keys, ix.vals
	ix.init(len(oldKeys) * 2)
	for i, v := range oldVals {
		if v != 0 {
			ix.put(oldKeys[i], v)
		}
	}
}

// memBytes returns the resident size of the table's backing arrays,
// for the §5.6 metadata accounting.
func (ix *posIndex) memBytes() uint64 {
	return uint64(len(ix.keys)) * (8 + 4)
}
