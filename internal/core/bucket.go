package core

import (
	"math"

	"krr/internal/telemetry"
	"krr/internal/xrand"
)

// This file implements the bucketized KRR stack: the Eq. 4.1
// probability model evaluated at bucket granularity instead of
// per-position, for O(log M) work per reference with no pow on the
// hot path.
//
// The derivation: for one stack update to depth φ, the probability
// that positions a..b contain no swap-chain point is exactly
// ((a-1)/b)^K′ (telescoping Eq. 4.1 across the interval — the same
// closed form Algorithm 1 splits on), and the no-swap events of
// disjoint intervals are independent. Partition positions 1..M into
// fixed geometric buckets and the whole inverse-CDF walk of
// buildChainBackward collapses to one Bernoulli per bucket below the
// referenced one — "does the chain land in this bucket at all" — with
// a precomputed threshold, because bucket boundaries never move.
// Bucket 0 starts at position 1, so its threshold is 0 and it is
// always on the chain.
//
// The chain's effect on the stack is applied MIMIR-style, rotating
// victims between buckets instead of shifting every chain position:
// the referenced object leaves a hole at φ; walking the visited
// buckets deep-to-shallow, one member of each visited bucket drops
// down to fill the hole in the previously visited (deeper) bucket;
// the referenced object lands in bucket 0. The dropped member is
// chosen uniformly within its bucket: in the exact update the object
// a bucket gives up sits at its deepest chain point, but the exact
// stack also reshuffles bucket members every update through the
// chain's interior points, so over updates every member's exit
// exposure equalizes — the uniform choice models the time-averaged
// (well-mixed) dynamics. (Sampling the one-update marginal — the
// deepest-point law ⌈b·u^{1/K′}⌉ — is measurably worse: without the
// reshuffling it makes intra-bucket position sticky and shallow
// members near-immortal.) The approximation vanishes as the bucket
// ratio approaches 1: with ratio 1 every bucket holds one position
// and the walk is exactly Mattson's per-position linear law.
//
// Keys and sizes live in a flat structure-of-arrays arena indexed by
// slot id with free-list recycling; the stack order is a permutation
// array of slot ids, and the PR-1 open-addressing posIndex maps
// key → slot. The structure is pointer-free: snapshotting or sharding
// it costs a few slice copies.

// DefaultBucketRatio is the geometric bucket growth ratio used when a
// configuration leaves it zero: buckets coarse enough for the O(1)
// amortized update, fine enough to stay near the backward sampler's
// accuracy (see difftest.BucketEnvelope). Measured on the harness
// trials, ratio 2 sits within ~0.015 MAE of the exact backward law
// while halving the per-reference bucket walk vs ratio 1.25.
const DefaultBucketRatio = 2.0

// MaxBucketRatio bounds configurable bucket ratios; beyond ~4 the
// coarse top buckets visibly distort the distance distribution.
const MaxBucketRatio = 4.0

// bucketSpan is one geometric bucket: the closed range of nominal
// stack positions it owns and the precomputed probability that a
// stack update's swap chain skips it entirely.
type bucketSpan struct {
	start, end int32
	// pNoSwap = ((start-1)/end)^K′ — Eq. 4.1 telescoped across the
	// span. 0 for bucket 0 (position 1 is always a chain endpoint).
	pNoSwap float64
	// scale = width/(1-pNoSwap) turns a draw's tail into a victim
	// offset in one multiply: conditioned on u > pNoSwap,
	// (u-pNoSwap)/(1-pNoSwap) is again uniform in (0, 1], so
	// start + ⌊(u-pNoSwap)·scale⌋ is a uniform position in the span.
	scale float64
}

// BucketStack is the bucketized KRR stack. Positions are 1-based
// nominal positions with position 1 the top; distances are reported
// at position granularity while updates run at bucket granularity.
type BucketStack struct {
	kPrime float64
	ratio  float64
	draws  drawBatch

	// Arena: slot-indexed parallel arrays ([0] unused) plus a free
	// list recycling slots of deleted objects.
	keys  []uint64
	sizes []uint32
	pos   []int32 // slot -> nominal position
	free  []int32

	order []int32 // nominal position -> slot ([0] unused)

	index *posIndex // key -> slot

	buckets []bucketSpan
	// ends[i] == buckets[i].end, kept flat so bucketOf's binary search
	// touches one densely packed cache line instead of striding
	// through 24-byte spans.
	ends       []int32
	totalBytes uint64

	// Live telemetry, single-writer atomics (see Stack).
	moves    telemetry.Counter // inter-bucket victim moves applied
	updates  telemetry.Counter
	depthSum telemetry.Counter // Σφ over updates
	resident telemetry.Gauge
}

// NewBucketStack returns an empty bucketized KRR stack with exponent
// kPrime (pass KPrimeFor(K)) and geometric bucket ratio in
// [1, MaxBucketRatio]; ratio 0 selects DefaultBucketRatio.
func NewBucketStack(kPrime, ratio float64, seed uint64) *BucketStack {
	if kPrime <= 0 {
		panic("core: kPrime must be positive")
	}
	if ratio == 0 {
		ratio = DefaultBucketRatio
	}
	if ratio < 1 || ratio > MaxBucketRatio {
		panic("core: bucket ratio out of [1, MaxBucketRatio]")
	}
	return &BucketStack{
		kPrime: kPrime,
		ratio:  ratio,
		draws:  newDrawBatch(xrand.New(seed)),
		keys:   make([]uint64, 1),
		sizes:  make([]uint32, 1),
		pos:    make([]int32, 1),
		order:  make([]int32, 1),
		index:  newPosIndex(),
	}
}

// KPrime returns the stack exponent.
func (s *BucketStack) KPrime() float64 { return s.kPrime }

// Ratio returns the geometric bucket growth ratio.
func (s *BucketStack) Ratio() float64 { return s.ratio }

// Len returns the number of objects on the stack.
func (s *BucketStack) Len() int { return len(s.order) - 1 }

// Buckets returns the number of active buckets.
func (s *BucketStack) Buckets() int { return len(s.buckets) }

// TotalBytes returns the byte total across resident objects.
func (s *BucketStack) TotalBytes() uint64 { return s.totalBytes }

// At returns the key at 1-based nominal position i.
func (s *BucketStack) At(i int) uint64 { return s.keys[s.order[i]] }

// PositionOf returns key's 1-based nominal position, or 0 if absent.
func (s *BucketStack) PositionOf(key uint64) int32 {
	slot := s.index.get(key)
	if slot == 0 {
		return 0
	}
	return s.pos[slot]
}

// Moves returns the cumulative inter-bucket victim moves applied —
// the bucketized analog of Stack.SwapSteps.
func (s *BucketStack) Moves() uint64 { return s.moves.Load() }

// Updates returns the number of stack updates performed.
func (s *BucketStack) Updates() uint64 { return s.updates.Load() }

// DepthSum returns the cumulative reference depth (Σφ over updates).
func (s *BucketStack) DepthSum() uint64 { return s.depthSum.Load() }

// MetricsInto registers the stack's live counters under prefix; all
// reads are atomic and scrape-safe mid-stream.
func (s *BucketStack) MetricsInto(set *telemetry.Set, prefix string) {
	set.GaugeFunc(prefix+"stack_len", "objects resident on the bucketized KRR stack", func() float64 {
		return float64(s.resident.Load())
	})
	set.GaugeFunc(prefix+"buckets", "active geometric buckets", func() float64 {
		return float64(len(s.buckets))
	})
	set.CounterFunc(prefix+"updates_total", "stack updates performed", s.updates.Load)
	set.CounterFunc(prefix+"bucket_moves_total", "inter-bucket victim moves applied", s.moves.Load)
	set.CounterFunc(prefix+"update_depth_sum", "cumulative reference depth phi across updates", s.depthSum.Load)
	set.GaugeFunc(prefix+"bucket_moves_per_update", "average victim moves per stack update", func() float64 {
		u := s.updates.Load()
		if u == 0 {
			return 0
		}
		return float64(s.moves.Load()) / float64(u)
	})
	set.GaugeFunc(prefix+"update_depth_avg", "average reference depth per stack update", func() float64 {
		u := s.updates.Load()
		if u == 0 {
			return 0
		}
		return float64(s.depthSum.Load()) / float64(u)
	})
}

// bucketOf returns the index of the bucket owning nominal position p.
func (s *BucketStack) bucketOf(p int32) int {
	ends := s.ends
	lo, hi := 0, len(ends)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ends[mid] < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// newSpan builds bucket idx of the fixed nominal geometry: capacity
// max(1, round(ratio^idx)), starting right after the previous bucket.
// The spans — and therefore every pNoSwap — depend only on (ratio,
// K′), so a deleted-then-regrown bucket is always rebuilt identically.
func (s *BucketStack) newSpan(idx int) bucketSpan {
	var start int32 = 1
	if idx > 0 {
		start = s.buckets[idx-1].end + 1
	}
	width := int32(math.Round(math.Pow(s.ratio, float64(idx))))
	if width < 1 {
		width = 1
	}
	sp := bucketSpan{start: start, end: start + width - 1, scale: float64(width)}
	if start > 1 {
		sp.pNoSwap = math.Pow(float64(start-1)/float64(sp.end), s.kPrime)
		sp.scale = float64(width) / (1 - sp.pNoSwap)
	}
	return sp
}

// allocSlot takes a slot off the free list or extends the arena.
func (s *BucketStack) allocSlot(key uint64, size uint32) int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		s.keys[slot] = key
		s.sizes[slot] = size
		return slot
	}
	s.keys = append(s.keys, key)
	s.sizes = append(s.sizes, size)
	s.pos = append(s.pos, 0)
	return int32(len(s.keys) - 1)
}

// Reference processes an access to key with the given object size and
// returns its stack distance (the nominal position, Cold for first
// touches — appended to the stack bottom before the update, matching
// Algorithm 1's convention).
func (s *BucketStack) Reference(key uint64, size uint32) Result {
	slot := s.index.get(key)
	var res Result
	var p int32
	if slot == 0 {
		slot = s.allocSlot(key, size)
		s.order = append(s.order, slot)
		p = int32(len(s.order) - 1)
		s.pos[slot] = p
		if nb := len(s.buckets); nb == 0 || p > s.buckets[nb-1].end {
			s.buckets = append(s.buckets, s.newSpan(nb))
			s.ends = append(s.ends, s.buckets[nb].end)
		}
		s.index.put(key, slot)
		s.totalBytes += uint64(size)
		s.resident.Set(int64(len(s.order) - 1))
		res.Cold = true
	} else {
		p = s.pos[slot]
		if s.sizes[slot] != size {
			s.totalBytes += uint64(size) - uint64(s.sizes[slot])
			s.sizes[slot] = size
		}
		res.Distance = uint64(p)
	}
	s.update(slot, p)
	return res
}

// update applies one bucket-granular stack update for a reference at
// nominal position p: one Bernoulli per bucket above p's, then a
// deep-to-shallow victim rotation through the visited buckets.
func (s *BucketStack) update(slot, p int32) {
	s.updates.Inc()
	s.depthSum.Add(uint64(p))
	b := s.bucketOf(p)
	if b == 0 {
		// Top bucket: the bucket-granular state is unchanged.
		return
	}
	order, pos, bks := s.order, s.pos, s.buckets
	hole := p
	var moved uint64
	for j := b - 1; j >= 1; j-- {
		bk := bks[j]
		u := s.draws.next()
		if u <= bk.pNoSwap {
			continue
		}
		// The draw's tail doubles as the victim draw (see
		// bucketSpan.scale); rounding can land one past the span.
		q := bk.start + int32((u-bk.pNoSwap)*bk.scale)
		if q > bk.end {
			q = bk.end
		}
		v := order[q]
		order[hole] = v
		pos[v] = hole
		hole = q
		moved++
	}
	// Bucket 0 is the single position 1 (width round(ratio^0) = 1 for
	// every legal ratio) and is always on the chain, so its "victim
	// draw" is deterministic: the object at position 1 drops into the
	// hole and the referenced object takes the top.
	v := order[1]
	order[hole] = v
	pos[v] = hole
	order[1] = slot
	pos[slot] = 1
	s.moves.Add(moved + 1)
}

// Delete removes key from the stack in O(buckets): the hole cascades
// downward, each bucket below pulling one uniform member up from the
// next deeper bucket, so every bucket's span stays fully occupied and
// only the bottom position is surrendered. Returns whether the key
// was resident.
func (s *BucketStack) Delete(key uint64) bool {
	slot := s.index.get(key)
	if slot == 0 {
		return false
	}
	p := s.pos[slot]
	n := int32(len(s.order) - 1)
	last := s.bucketOf(n)
	hole := p
	for j := s.bucketOf(p); j < last; j++ {
		bk := s.buckets[j+1]
		hi := bk.end
		if hi > n {
			hi = n
		}
		q := bk.start + int32(s.draws.next()*float64(hi-bk.start+1))
		if q > hi {
			q = hi
		}
		v := s.order[q]
		s.order[hole] = v
		s.pos[v] = hole
		hole = q
	}
	if hole != n {
		v := s.order[n]
		s.order[hole] = v
		s.pos[v] = hole
	}
	s.order = s.order[:n]
	for len(s.buckets) > 0 && s.buckets[len(s.buckets)-1].start > n-1 {
		s.buckets = s.buckets[:len(s.buckets)-1]
		s.ends = s.ends[:len(s.buckets)]
	}
	s.totalBytes -= uint64(s.sizes[slot])
	s.pos[slot] = 0
	s.free = append(s.free, slot)
	s.index.del(key)
	s.resident.Set(int64(len(s.order) - 1))
	return true
}

// MemoryOverheadBytes reports the resident metadata cost (§5.6
// accounting): 16 B per arena slot (key + size + position), 4 B per
// stack position, the open-addressing index, and the bucket table.
func (s *BucketStack) MemoryOverheadBytes() uint64 {
	return uint64(len(s.keys)-1)*(8+4+4) +
		uint64(len(s.order)-1)*4 +
		uint64(len(s.free))*4 +
		s.index.memBytes() +
		uint64(len(s.buckets))*(24+4)
}
