package core

import (
	"errors"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/shardpipe"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// ShardedProfiler partitions one request stream across W independent
// KRR stacks and merges their histograms — the multicore form of the
// one-pass profiler.
//
// Why this is statistically sound: sharding by a uniform hash of the
// key is exactly SHARDS-style spatial partitioning (§2.4) with W
// complementary filters of rate 1/W each. Every shard sees an
// unbiased sample of the keyspace, so a stack distance d measured
// inside a shard estimates d·W positions of the unsharded stack; the
// merged histogram therefore scales its distances by W on top of any
// spatial-sampling factor 1/R — the same rescaling SHARDS applies,
// with the bonus that no reference is dropped (the W "samples"
// together cover the whole stream).
//
// Mechanics: the caller's goroutine routes requests — spatial filter
// first (so rejected requests never cross a channel), then shard
// selection and batched hand-off through an internal/shardpipe.Pipe
// (see that package for the batching/SPSC-channel details). Each
// worker owns a private Profiler (stack + histograms) and never shares
// mutable state; the only cross-goroutine transfers are batch
// hand-offs and the final merge after Close.
//
// The caller-facing API is single-producer: Process/ProcessAll must
// not be called concurrently, and not after Close.
type ShardedProfiler struct {
	cfg    Config
	filter *sampling.Filter

	shards []*Profiler
	pipe   *shardpipe.Pipe

	seen    telemetry.Counter
	sampled telemetry.Counter
}

// NewShardedProfiler builds a W-way sharded profiler from cfg
// (cfg.Workers = W ≥ 1; 1 degenerates to a serial profiler behind the
// same API). Worker stacks derive distinct seeds from cfg.Seed.
func NewShardedProfiler(cfg Config) (*ShardedProfiler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	sp := &ShardedProfiler{
		cfg:    cfg,
		shards: make([]*Profiler, w),
	}
	if cfg.SamplingRate > 0 && cfg.SamplingRate < 1 {
		sp.filter = sampling.NewRate(cfg.SamplingRate)
	}
	for i := 0; i < w; i++ {
		shardCfg := cfg
		shardCfg.Workers = 0
		// The router already filtered; a per-shard filter would
		// square the sampling rate.
		shardCfg.SamplingRate = 0
		shardCfg.Seed = shardpipe.ShardSeed(cfg.Seed, i)
		p, err := NewProfiler(shardCfg)
		if err != nil {
			return nil, err
		}
		sp.shards[i] = p
	}
	sp.pipe = shardpipe.New(w, func(shard int, req trace.Request) {
		sp.shards[shard].Process(req)
	})
	return sp, nil
}

// Workers returns the shard count.
func (sp *ShardedProfiler) Workers() int { return len(sp.shards) }

// Seen returns the number of requests offered (before sampling).
func (sp *ShardedProfiler) Seen() uint64 { return sp.seen.Load() }

// Sampled returns the number of requests admitted by the filter.
func (sp *ShardedProfiler) Sampled() uint64 { return sp.sampled.Load() }

// MetricsInto registers pipeline-wide telemetry under prefix: router
// counters, the shardpipe's batch/queue/throughput metrics, and
// cross-shard aggregates of the per-stack update counters. All reads
// are atomic and safe while the pipeline is streaming.
func (sp *ShardedProfiler) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"requests_seen_total", "requests offered to the router", sp.seen.Load)
	set.CounterFunc(prefix+"requests_sampled_total", "requests admitted past spatial sampling", sp.sampled.Load)
	sp.pipe.MetricsInto(set, prefix+"pipe_")
	set.GaugeFunc(prefix+"stack_len", "objects resident across all shard stacks", func() float64 {
		var total int64
		for _, p := range sp.shards {
			total += p.stack.resident.Load()
		}
		return float64(total)
	})
	set.CounterFunc(prefix+"swap_steps_total", "interior swap positions applied across shards", func() uint64 {
		var total uint64
		for _, p := range sp.shards {
			total += p.stack.SwapSteps()
		}
		return total
	})
	set.CounterFunc(prefix+"updates_total", "stack updates performed across shards", func() uint64 {
		var total uint64
		for _, p := range sp.shards {
			total += p.stack.Updates()
		}
		return total
	})
}

// Process routes one request to its shard. Single producer only.
func (sp *ShardedProfiler) Process(req trace.Request) {
	sp.seen.Inc()
	if sp.filter != nil && !sp.filter.Sampled(req.Key) {
		return
	}
	sp.sampled.Inc()
	sp.pipe.Send(sp.pipe.ShardOf(req.Key), req)
}

// ProcessAll drains a reader through the router, pulling input in
// batches when the reader supports it.
func (sp *ShardedProfiler) ProcessAll(r trace.Reader) error {
	var buf [shardpipe.BatchLen]trace.Request
	for {
		n, err := trace.ReadBatch(r, buf[:])
		for _, req := range buf[:n] {
			sp.Process(req)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// Close flushes pending batches and waits for every worker to finish.
// It is idempotent and must be called (directly or via the MRC
// accessors) before reading results.
func (sp *ShardedProfiler) Close() { sp.pipe.Close() }

// scale converts per-shard sampled distances back to full-trace cache
// sizes: W shards × spatial rate R give an effective per-shard rate
// R/W, hence a W/R distance multiplier.
func (sp *ShardedProfiler) scale() float64 {
	s := float64(len(sp.shards))
	if sp.filter != nil {
		s /= sp.filter.Rate()
	}
	return s
}

// mergedObjHist folds the per-shard object histograms.
func (sp *ShardedProfiler) mergedObjHist() *histogram.Dense {
	merged := histogram.NewDense(1024)
	for _, p := range sp.shards {
		merged.Merge(p.ObjHist())
	}
	return merged
}

// ObjectMRC closes the pipeline and returns the merged
// object-granularity miss ratio curve.
func (sp *ShardedProfiler) ObjectMRC() *mrc.Curve {
	sp.Close()
	return mrc.FromHistogram(sp.mergedObjHist(), sp.scale())
}

// ByteMRC closes the pipeline and returns the merged byte-granularity
// curve, or ErrBytesOff if the profiler was built with BytesOff.
func (sp *ShardedProfiler) ByteMRC() (*mrc.Curve, error) {
	if sp.cfg.Bytes == BytesOff {
		return nil, ErrBytesOff
	}
	sp.Close()
	merged := histogram.NewLog()
	for _, p := range sp.shards {
		merged.Merge(p.ByteHist())
	}
	return mrc.FromHistogram(merged, sp.scale()), nil
}

// Shard exposes shard i's profiler for inspection (stats, stack
// state). Only safe after Close.
func (sp *ShardedProfiler) Shard(i int) *Profiler { return sp.shards[i] }

// MemoryOverheadBytes sums the §5.6 metadata accounting across
// shards. Only safe after Close.
func (sp *ShardedProfiler) MemoryOverheadBytes() uint64 {
	var total uint64
	for _, p := range sp.shards {
		total += p.Stack().MemoryOverheadBytes()
	}
	return total
}
