package core

import (
	"errors"
	"fmt"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// BucketConfig assembles a bucketized KRR profiler.
type BucketConfig struct {
	// K is the K-LRU sampling size being modeled. Must be >= 1.
	K int
	// KPrime overrides the stack exponent; 0 applies K′ = K^1.4.
	KPrime float64
	// Ratio is the geometric bucket growth ratio in
	// [1, MaxBucketRatio]; 0 selects DefaultBucketRatio. Ratio 1
	// degenerates to the exact per-position linear walk.
	Ratio float64
	// SamplingRate applies SHARDS-style spatial sampling when in
	// (0, 1); 0 or 1 disables it.
	SamplingRate float64
	// Seed fixes all randomness.
	Seed uint64
}

func (c BucketConfig) kPrime() float64 {
	if c.KPrime > 0 {
		return c.KPrime
	}
	return KPrimeFor(c.K)
}

func (c BucketConfig) ratio() float64 {
	if c.Ratio == 0 {
		return DefaultBucketRatio
	}
	return c.Ratio
}

func (c BucketConfig) validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: bucket config K = %d, must be >= 1", c.K)
	}
	if c.Ratio != 0 && (c.Ratio < 1 || c.Ratio > MaxBucketRatio) {
		return fmt.Errorf("core: bucket ratio %v out of [1, %v]", c.Ratio, MaxBucketRatio)
	}
	if c.SamplingRate < 0 || c.SamplingRate > 1 {
		return fmt.Errorf("core: sampling rate %v out of [0, 1]", c.SamplingRate)
	}
	return nil
}

// BucketProfiler builds K-LRU miss ratio curves in one pass over the
// bucketized stack — object granularity only (byte trackers are tied
// to per-position shifts the bucketized update does not perform). Not
// safe for concurrent use.
type BucketProfiler struct {
	cfg    BucketConfig
	stack  *BucketStack
	filter *sampling.Filter

	objHist *histogram.Dense

	seen    telemetry.Counter
	sampled telemetry.Counter
}

// NewBucketProfiler builds a bucketized profiler from cfg.
func NewBucketProfiler(cfg BucketConfig) (*BucketProfiler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &BucketProfiler{
		cfg:     cfg,
		stack:   NewBucketStack(cfg.kPrime(), cfg.ratio(), cfg.Seed),
		objHist: histogram.NewDense(1024),
	}
	if cfg.SamplingRate > 0 && cfg.SamplingRate < 1 {
		p.filter = sampling.NewRate(cfg.SamplingRate)
	}
	return p, nil
}

// MustBucketProfiler is NewBucketProfiler, panicking on config errors.
func MustBucketProfiler(cfg BucketConfig) *BucketProfiler {
	p, err := NewBucketProfiler(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the profiler's configuration.
func (p *BucketProfiler) Config() BucketConfig { return p.cfg }

// Stack exposes the underlying bucketized stack.
func (p *BucketProfiler) Stack() *BucketStack { return p.stack }

// Seen returns the number of requests offered (before sampling).
func (p *BucketProfiler) Seen() uint64 { return p.seen.Load() }

// Sampled returns the number of requests admitted by the filter.
func (p *BucketProfiler) Sampled() uint64 { return p.sampled.Load() }

// MetricsInto registers the profiler's live telemetry under prefix.
func (p *BucketProfiler) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"requests_seen_total", "requests offered (before spatial sampling)", p.seen.Load)
	set.CounterFunc(prefix+"requests_sampled_total", "requests admitted past spatial sampling", p.sampled.Load)
	p.stack.MetricsInto(set, prefix)
}

// Process feeds one request.
func (p *BucketProfiler) Process(req trace.Request) {
	p.seen.Inc()
	if p.filter != nil && !p.filter.Sampled(req.Key) {
		return
	}
	p.sampled.Inc()
	if req.Op == trace.OpDelete {
		p.stack.Delete(req.Key)
		return
	}
	res := p.stack.Reference(req.Key, req.Size)
	if res.Cold {
		p.objHist.AddCold()
		return
	}
	p.objHist.Add(res.Distance)
}

// ProcessAll drains a reader.
func (p *BucketProfiler) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		p.Process(req)
	}
}

// scale converts sampled distances back to full-trace cache sizes.
func (p *BucketProfiler) scale() float64 {
	if p.filter == nil {
		return 1
	}
	return 1 / p.filter.Rate()
}

// ObjectMRC returns the modeled K-LRU miss ratio curve over
// object-count cache sizes.
func (p *BucketProfiler) ObjectMRC() *mrc.Curve {
	return mrc.FromHistogram(p.objHist, p.scale())
}

// ObjHist exposes the object histogram.
func (p *BucketProfiler) ObjHist() *histogram.Dense { return p.objHist }

// ResetHistograms clears the recorded distance distribution while
// keeping the stack state intact (see Profiler.ResetHistograms).
func (p *BucketProfiler) ResetHistograms() {
	p.objHist = histogram.NewDense(1024)
}
