package core

// Byte-granularity stack distance support (§4.4.1). The KRR stack
// itself orders objects; turning a stack position φ into a byte
// distance requires the cumulative size of positions 1..φ. Two
// trackers implement this:
//
//   - sizeArray: the paper's structure — one running prefix sum per
//     power-of-two boundary, updated in O(log M) per stack update and
//     queried with linear interpolation (Algorithm 3). Approximate
//     between boundaries, exact at them.
//   - fenwick: an exact binary indexed tree over per-position sizes,
//     O(log M) per point change (so O(K log² M) per stack update).
//     Used as the correctness oracle and as an ablation point.
//
// Both consume the same update feed: Append on cold insertion, Resize
// when a resident object's size changes, and ApplySwaps with the
// ascending swap chain *before* the stack arrays move, so the sizes
// slice still reflects pre-update positions.

// byteTracker maintains cumulative sizes along the stack.
type byteTracker interface {
	// Append accounts a new object at the stack bottom (position n+1).
	Append(size uint32)
	// Resize accounts an in-place size change at pos.
	Resize(pos int32, old, new uint32)
	// ByteDistance returns the (possibly approximate) cumulative size
	// of stack positions 1..phi, inclusive.
	ByteDistance(phi int32, s *Stack) uint64
	// ApplySwaps accounts one stack update given the ascending swap
	// chain (including endpoints 1 and φ), the pre-move sizes slice,
	// and the referenced object's (post-Resize) size.
	ApplySwaps(chain []int32, sizes []uint32, refSize uint32)
	// Rebuild reconstructs the tracker from scratch (after Delete).
	Rebuild(sizes []uint32)
}

// sizeArray is the paper's logarithmic prefix structure: prefix[j]
// holds the total size of stack positions 1..2^j (or of the whole
// stack while it is shorter than 2^j).
type sizeArray struct {
	prefix []uint64
	total  uint64
	n      int32 // stack length
}

func newSizeArray() *sizeArray { return &sizeArray{} }

// Append accounts a new object at position n+1.
func (a *sizeArray) Append(size uint32) {
	a.n++
	// Grow levels until the top level covers the whole stack. A new
	// level's boundary 2^j >= n, so it currently covers everything
	// accumulated so far.
	for len(a.prefix) == 0 || int32(1)<<(len(a.prefix)-1) < a.n {
		a.prefix = append(a.prefix, a.total)
	}
	a.total += uint64(size)
	for j := range a.prefix {
		if int32(1)<<j >= a.n {
			a.prefix[j] += uint64(size)
		}
	}
}

// Resize accounts an in-place size change.
func (a *sizeArray) Resize(pos int32, old, new uint32) {
	delta := uint64(new) - uint64(old) // two's-complement wrap is fine
	a.total += delta
	for j := range a.prefix {
		if int32(1)<<j >= pos {
			a.prefix[j] += delta
		}
	}
}

// ByteDistance implements Algorithm 3: locate the power-of-two
// boundary at or below φ and interpolate toward the next one.
func (a *sizeArray) ByteDistance(phi int32, _ *Stack) uint64 {
	if phi <= 0 || a.n == 0 {
		return 0
	}
	if phi > a.n {
		phi = a.n
	}
	idx := log2Floor(phi)
	lo := int32(1) << idx
	loVal := a.prefix[idx]
	if lo == phi {
		return loVal
	}
	hi := int32(1) << (idx + 1)
	if hi > a.n {
		hi = a.n
	}
	var hiVal uint64
	if idx+1 < len(a.prefix) {
		hiVal = a.prefix[idx+1]
	} else {
		hiVal = a.total
	}
	if hi <= lo {
		return loVal
	}
	frac := float64(phi-lo) / float64(hi-lo)
	return loVal + uint64(frac*float64(hiVal-loVal)+0.5)
}

// ApplySwaps adjusts each boundary below φ: the object governing the
// boundary (the deepest swap position at or above it... precisely,
// the largest chain position <= the boundary) moves below the
// boundary, and the referenced object enters at the top. Boundaries
// at or beyond φ are unchanged — the reference object replaces
// itself.
func (a *sizeArray) ApplySwaps(chain []int32, sizes []uint32, refSize uint32) {
	phi := chain[len(chain)-1]
	ci := 0
	for j := range a.prefix {
		p := int32(1) << j
		if p >= phi {
			break
		}
		// Advance to the largest chain position <= p. Boundaries grow
		// monotonically with j, so ci only moves forward.
		for ci+1 < len(chain) && chain[ci+1] <= p {
			ci++
		}
		governing := chain[ci]
		a.prefix[j] += uint64(refSize) - uint64(sizes[governing])
	}
}

// Rebuild recomputes every boundary from the sizes slice (1-based).
func (a *sizeArray) Rebuild(sizes []uint32) {
	a.prefix = a.prefix[:0]
	a.total = 0
	a.n = 0
	for _, sz := range sizes[1:] {
		a.Append(sz)
	}
}

// fenwick is an exact per-position byte tracker.
type fenwick struct {
	tree []uint64 // 1-based; tree[0] unused
	n    int32
}

func newFenwick() *fenwick { return &fenwick{tree: make([]uint64, 1)} }

// sum returns the prefix sum of positions 1..pos.
func (f *fenwick) sum(pos int32) uint64 {
	var s uint64
	for ; pos > 0; pos -= pos & (-pos) {
		s += f.tree[pos]
	}
	return s
}

// add applies a (wrapping) delta at pos.
func (f *fenwick) add(pos int32, delta uint64) {
	for ; pos <= f.n; pos += pos & (-pos) {
		f.tree[pos] += delta
	}
}

// Append extends the tree by one position holding size.
func (f *fenwick) Append(size uint32) {
	f.n++
	// Initialize the new node to the sum of its covered range
	// (n-lowbit(n), n-1], then add the new value.
	low := f.n - (f.n & (-f.n))
	init := f.sum(f.n-1) - f.sum(low)
	f.tree = append(f.tree, init)
	f.add(f.n, uint64(size))
}

// Resize applies a size change at pos.
func (f *fenwick) Resize(pos int32, old, new uint32) {
	f.add(pos, uint64(new)-uint64(old))
}

// ByteDistance returns the exact cumulative size of positions 1..phi.
func (f *fenwick) ByteDistance(phi int32, _ *Stack) uint64 {
	if phi > f.n {
		phi = f.n
	}
	return f.sum(phi)
}

// ApplySwaps moves sizes along the chain: each swap position receives
// the size of the previous chain position, and the top receives the
// referenced object's size.
func (f *fenwick) ApplySwaps(chain []int32, sizes []uint32, refSize uint32) {
	for i := len(chain) - 1; i >= 1; i-- {
		cur, prev := chain[i], chain[i-1]
		f.add(cur, uint64(sizes[prev])-uint64(sizes[cur]))
	}
	f.add(1, uint64(refSize)-uint64(sizes[1]))
}

// Rebuild reconstructs the tree from the sizes slice (1-based).
func (f *fenwick) Rebuild(sizes []uint32) {
	f.tree = f.tree[:1]
	f.n = 0
	for _, sz := range sizes[1:] {
		f.Append(sz)
	}
}
