package core

import (
	"math"
	"testing"

	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

// bruteByteDistance computes the exact inclusive byte distance from
// the stack's sizes slice.
func bruteByteDistance(s *Stack, phi int32) uint64 {
	var sum uint64
	for i := int32(1); i <= phi; i++ {
		sum += uint64(s.sizes[i])
	}
	return sum
}

func TestFenwickExactUnderUpdates(t *testing.T) {
	// After every reference, the Fenwick tracker must agree with a
	// brute-force prefix sum at every position.
	s := NewStack(3, 5, WithFenwick())
	f := s.tracker.(*fenwick)
	src := xrand.New(11)
	for step := 0; step < 4000; step++ {
		key := src.Uint64n(150)
		size := uint32(1 + src.Uint64n(500))
		if prev := s.pos.get(key); prev != 0 {
			size = s.sizes[prev] // hold sizes fixed most of the time
			if step%17 == 0 {
				size += 7 // but exercise Resize too
			}
		}
		s.Reference(key, size)
		if step%23 != 0 {
			continue
		}
		for _, phi := range []int32{1, 2, int32(s.Len()/2) + 1, int32(s.Len())} {
			if phi > int32(s.Len()) {
				continue
			}
			if got, want := f.sum(phi), bruteByteDistance(s, phi); got != want {
				t.Fatalf("step %d phi %d: fenwick %d, brute %d", step, phi, got, want)
			}
		}
	}
}

func TestFenwickUnderDeletes(t *testing.T) {
	s := NewStack(2, 7, WithFenwick())
	f := s.tracker.(*fenwick)
	src := xrand.New(3)
	for step := 0; step < 2000; step++ {
		key := src.Uint64n(60)
		if step%13 == 0 {
			s.Delete(key)
		} else {
			s.Reference(key, uint32(1+key%97))
		}
		if s.Len() > 0 && step%29 == 0 {
			phi := int32(s.Len())
			if got, want := f.sum(phi), bruteByteDistance(s, phi); got != want {
				t.Fatalf("step %d: fenwick %d, brute %d after deletes", step, got, want)
			}
		}
	}
}

func TestSizeArrayExactAtBoundaries(t *testing.T) {
	// The sizeArray must be *exact* at power-of-two boundaries: the
	// interpolation of Algorithm 3 is only between them.
	s := NewStack(4, 9, WithSizeArray())
	a := s.tracker.(*sizeArray)
	src := xrand.New(17)
	for step := 0; step < 5000; step++ {
		key := src.Uint64n(300)
		size := uint32(1 + src.Uint64n(1000))
		if prev := s.pos.get(key); prev != 0 {
			size = s.sizes[prev]
		}
		s.Reference(key, size)
		if step%31 != 0 {
			continue
		}
		for j := 0; (1 << j) <= s.Len(); j++ {
			phi := int32(1) << j
			if got, want := a.prefix[j], bruteByteDistance(s, phi); got != want {
				t.Fatalf("step %d boundary 2^%d: sizeArray %d, brute %d", step, j, got, want)
			}
		}
		if a.total != s.totalBytes {
			t.Fatalf("total drift: %d vs %d", a.total, s.totalBytes)
		}
	}
}

func TestSizeArrayInterpolationReasonable(t *testing.T) {
	// Between boundaries, Algorithm 3's estimate must stay within the
	// bracketing boundary values and track the truth closely on
	// homogeneous-ish sizes.
	s := NewStack(3, 13, WithSizeArray())
	src := xrand.New(23)
	for step := 0; step < 20000; step++ {
		s.Reference(src.Uint64n(2000), uint32(100+src.Uint64n(100)))
	}
	a := s.tracker.(*sizeArray)
	var relErr, samples float64
	for phi := int32(2); phi < int32(s.Len()); phi += 37 {
		got := float64(a.ByteDistance(phi, s))
		want := float64(bruteByteDistance(s, phi))
		relErr += math.Abs(got-want) / want
		samples++
	}
	if avg := relErr / samples; avg > 0.05 {
		t.Fatalf("mean relative interpolation error %v", avg)
	}
}

func TestSizeArrayMatchesFenwickStatistically(t *testing.T) {
	// var-KRR with the approximate sizeArray must produce nearly the
	// same byte MRC as the exact Fenwick tracker.
	g := workload.NewTwitterLike(3, workload.TwitterParams{Keys: 3000, Alpha: 1.0})
	tr, _ := trace.Collect(g, 60000)

	approx := MustProfiler(Config{K: 8, Seed: 5, Bytes: BytesSizeArray})
	exact := MustProfiler(Config{K: 8, Seed: 5, Bytes: BytesFenwick})
	if err := approx.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	if err := exact.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	wss := exact.Stack().TotalBytes()
	sizes := mrc.EvenSizes(wss, 25)
	ac, err := approx.ByteMRC()
	if err != nil {
		t.Fatal(err)
	}
	ec, err := exact.ByteMRC()
	if err != nil {
		t.Fatal(err)
	}
	if mae := mrc.MAE(ac, ec, sizes); mae > 0.02 {
		t.Fatalf("sizeArray vs fenwick byte MRC MAE %v", mae)
	}
}

func TestUniformVsVarByteDistances(t *testing.T) {
	// On heterogeneous sizes the uniform assumption must diverge from
	// the exact byte distance (the motivation for §4.4.1), while the
	// sizeArray stays close.
	s := NewStack(1e7, 3, WithFenwick()) // LRU-like ordering for determinism
	// Sizes alternate tiny/huge.
	for k := uint64(1); k <= 1000; k++ {
		size := uint32(10)
		if k%2 == 0 {
			size = 10000
		}
		s.Reference(k, size)
	}
	res := s.Reference(1, 10) // deepest position
	exactD := res.ByteDistance
	uniD := s.UniformByteDistance(res.Distance)
	if exactD == 0 {
		t.Fatal("exact byte distance missing")
	}
	// Exact: ~500*10 + 500*10000. Uniform happens to match on global
	// mean for the full-depth object; probe a shallow one instead.
	s2 := NewStack(1e7, 3, WithFenwick())
	for k := uint64(1); k <= 1000; k++ {
		size := uint32(10)
		if k > 500 {
			size = 10000
		}
		s2.Reference(k, size)
	}
	// Object 999 sits near the top with only huge objects above it.
	res2 := s2.Reference(999, 10000)
	exact2 := float64(res2.ByteDistance)
	uni2 := float64(s2.UniformByteDistance(res2.Distance))
	if math.Abs(uni2-exact2)/exact2 < 0.2 {
		t.Fatalf("uniform estimate %v suspiciously close to exact %v on skewed layout", uni2, exact2)
	}
	_ = uniD
}

func TestVarKRRPredictsByteKLRU(t *testing.T) {
	// End-to-end §5.4: var-KRR byte MRC vs a byte-capacity K-LRU
	// simulation. (Uses the lightweight local simulator from
	// core_test to stay import-cycle-free.)
	g := workload.NewTwitterLike(7, workload.TwitterParams{Keys: 2000, Alpha: 1.1})
	tr, _ := trace.Collect(g, 50000)

	const k = 8
	p := MustProfiler(Config{K: k, Seed: 9, Bytes: BytesSizeArray})
	if err := p.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	model, err := p.ByteMRC()
	if err != nil {
		t.Fatal(err)
	}

	wss := p.Stack().TotalBytes()
	sizes := mrc.EvenSizes(wss, 8)
	miss := make([]float64, len(sizes))
	for i, capBytes := range sizes {
		cache := newTestByteKLRU(capBytes, k, uint64(i)*31+1)
		var hits, total int
		r := tr.Reader()
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			total++
			if cache.access(req.Key, req.Size) {
				hits++
			}
		}
		miss[i] = 1 - float64(hits)/float64(total)
	}
	truth := mrc.FromPoints(sizes, miss)
	if mae := mrc.MAE(model, truth, sizes); mae > 0.04 {
		t.Fatalf("var-KRR vs byte K-LRU simulation MAE %v", mae)
	}
}

type testByteKLRU struct {
	capBytes uint64
	k        int
	src      *xrand.Source
	keys     []uint64
	sizes    []uint32
	last     []uint64
	index    map[uint64]int
	used     uint64
	clock    uint64
}

func newTestByteKLRU(capBytes uint64, k int, seed uint64) *testByteKLRU {
	return &testByteKLRU{capBytes: capBytes, k: k, src: xrand.New(seed), index: make(map[uint64]int)}
}

func (c *testByteKLRU) access(key uint64, size uint32) bool {
	c.clock++
	if i, ok := c.index[key]; ok {
		c.last[i] = c.clock
		return true
	}
	if uint64(size) > c.capBytes {
		return false
	}
	for len(c.keys) > 0 && c.used+uint64(size) > c.capBytes {
		victim := int(c.src.Uint64n(uint64(len(c.keys))))
		for j := 1; j < c.k; j++ {
			cand := int(c.src.Uint64n(uint64(len(c.keys))))
			if c.last[cand] < c.last[victim] {
				victim = cand
			}
		}
		c.used -= uint64(c.sizes[victim])
		delete(c.index, c.keys[victim])
		lastI := len(c.keys) - 1
		if victim != lastI {
			c.keys[victim], c.sizes[victim], c.last[victim] = c.keys[lastI], c.sizes[lastI], c.last[lastI]
			c.index[c.keys[victim]] = victim
		}
		c.keys, c.sizes, c.last = c.keys[:lastI], c.sizes[:lastI], c.last[:lastI]
	}
	c.index[key] = len(c.keys)
	c.keys = append(c.keys, key)
	c.sizes = append(c.sizes, size)
	c.last = append(c.last, c.clock)
	c.used += uint64(size)
	return false
}

func TestTrackersRebuildAfterDelete(t *testing.T) {
	for _, opt := range []Option{WithSizeArray(), WithFenwick()} {
		s := NewStack(2, 3, opt)
		for k := uint64(1); k <= 64; k++ {
			s.Reference(k, uint32(k))
		}
		s.Delete(32)
		// Tracker must agree with brute force after the rebuild.
		got := s.tracker.ByteDistance(int32(s.Len()), s)
		want := bruteByteDistance(s, int32(s.Len()))
		if got != want {
			t.Fatalf("rebuild: tracker %d, brute %d", got, want)
		}
	}
}

func TestByteDistanceEdgeCases(t *testing.T) {
	for _, opt := range []Option{WithSizeArray(), WithFenwick()} {
		s := NewStack(2, 3, opt)
		if d := s.tracker.ByteDistance(1, s); d != 0 {
			t.Fatalf("empty stack byte distance %d", d)
		}
		s.Reference(1, 42)
		if d := s.tracker.ByteDistance(1, s); d != 42 {
			t.Fatalf("singleton byte distance %d, want 42", d)
		}
		// Clamp beyond stack length.
		if d := s.tracker.ByteDistance(99, s); d != 42 {
			t.Fatalf("overlong byte distance %d, want clamp to total", d)
		}
	}
}

func BenchmarkVarKRRSizeArray(b *testing.B) {
	benchVar(b, BytesSizeArray)
}

func BenchmarkVarKRRFenwick(b *testing.B) {
	benchVar(b, BytesFenwick)
}

func benchVar(b *testing.B, mode ByteMode) {
	p := MustProfiler(Config{K: 5, Seed: 1, Bytes: mode})
	g := workload.NewTwitterLike(3, workload.TwitterParams{Keys: 1 << 15, Alpha: 1.0})
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		reqs[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(reqs[i&(1<<16-1)])
	}
}
