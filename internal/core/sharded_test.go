package core

import (
	"fmt"
	"testing"

	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

// shardedTestTrace materializes a preset for the equivalence tests.
func shardedTestTrace(t *testing.T, preset string, n int) *trace.Trace {
	t.Helper()
	p, ok := workload.ByName(preset)
	if !ok {
		t.Fatalf("unknown preset %s", preset)
	}
	tr, err := trace.Collect(p.New(0.2, 7, false), n)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShardedMatchesSerialMRC is the statistical-equivalence check the
// whole design rests on: a W=4 sharded profiler and the serial
// profiler must produce MRCs within the paper's accuracy tolerance on
// realistic workloads. The two runs use different randomness and the
// sharded one measures W subsampled stacks, so agreement is
// statistical, not bitwise — MAE ≤ 0.01 matches the paper's own
// KRR-vs-simulation acceptance bar (§5.3).
func TestShardedMatchesSerialMRC(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test needs full-size traces")
	}
	for _, preset := range []string{"msr-web", "ycsb-c-0.99"} {
		t.Run(preset, func(t *testing.T) {
			tr := shardedTestTrace(t, preset, 400_000)
			sum, err := trace.Summarize(tr.Reader())
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{K: 8, Seed: 42}
			serial := MustProfiler(cfg)
			if err := serial.ProcessAll(tr.Reader()); err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 4
			sp, err := NewShardedProfiler(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sp.ProcessAll(tr.Reader()); err != nil {
				t.Fatal(err)
			}
			a, b := serial.ObjectMRC(), sp.ObjectMRC()
			at := mrc.EvenSizes(uint64(sum.DistinctObjects), 40)
			if mae := mrc.MAE(a, b, at); mae > 0.01 {
				t.Fatalf("sharded vs serial MAE = %.4f > 0.01", mae)
			}
			if sp.Seen() != uint64(tr.Len()) {
				t.Fatalf("seen %d of %d requests", sp.Seen(), tr.Len())
			}
		})
	}
}

// TestShardedWithSpatialSampling stacks both sampling layers: the
// spatial filter (R) in the router and hash sharding (W) behind it.
// The combined scale W/R must still land on the serial curve.
func TestShardedWithSpatialSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test needs full-size traces")
	}
	tr := shardedTestTrace(t, "msr-web", 400_000)
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	serial := MustProfiler(Config{K: 4, Seed: 42})
	if err := serial.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardedProfiler(Config{K: 4, Seed: 42, Workers: 4, SamplingRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	at := mrc.EvenSizes(uint64(sum.DistinctObjects), 40)
	if mae := mrc.MAE(serial.ObjectMRC(), sp.ObjectMRC(), at); mae > 0.02 {
		t.Fatalf("sharded+spatial vs serial MAE = %.4f > 0.02", mae)
	}
	if sp.Sampled() >= sp.Seen() {
		t.Fatal("filter admitted everything at R = 0.1")
	}
}

// TestShardedBytesMRC exercises the byte-granularity merge path.
func TestShardedBytesMRC(t *testing.T) {
	p, _ := workload.ByName("tw-26.0")
	tr, err := trace.Collect(p.New(0.1, 7, true), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewShardedProfiler(Config{K: 4, Seed: 1, Workers: 3, Bytes: BytesSizeArray})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	c, err := sp.ByteMRC()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatalf("degenerate byte curve: %d points", c.Len())
	}
	for i := 1; i < c.Len(); i++ {
		if c.Miss[i] > c.Miss[i-1]+1e-9 {
			t.Fatalf("byte curve not non-increasing at %d", i)
		}
	}
}

// TestShardedRequestConservation checks exact plumbing (not
// statistics): every admitted request lands in exactly one shard
// histogram, and the merged totals add up.
func TestShardedRequestConservation(t *testing.T) {
	tr := shardedTestTrace(t, "msr-src1", 50_000)
	for _, w := range []int{1, 2, 4, 7} {
		sp, err := NewShardedProfiler(Config{K: 2, Seed: 9, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if err := sp.ProcessAll(tr.Reader()); err != nil {
			t.Fatal(err)
		}
		sp.Close()
		var total uint64
		for i := 0; i < sp.Workers(); i++ {
			total += sp.Shard(i).ObjHist().Total()
		}
		if total != uint64(tr.Len()) {
			t.Fatalf("W=%d: shards recorded %d of %d requests", w, total, tr.Len())
		}
		if got := sp.mergedObjHist().Total(); got != total {
			t.Fatalf("W=%d: merge lost requests: %d != %d", w, got, total)
		}
	}
}

// TestShardedDeleteOps routes deletes like any other request (same
// key → same shard), so per-shard stacks stay consistent.
func TestShardedDeleteOps(t *testing.T) {
	sp, err := NewShardedProfiler(Config{K: 2, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		k := uint64(i % 500)
		sp.Process(trace.Request{Key: k, Size: 1, Op: trace.OpGet})
		if i%13 == 0 {
			sp.Process(trace.Request{Key: k, Size: 1, Op: trace.OpDelete})
		}
	}
	sp.Close()
	resident := 0
	for i := 0; i < sp.Workers(); i++ {
		resident += sp.Shard(i).Stack().Len()
	}
	if resident == 0 || resident > 500 {
		t.Fatalf("resident objects across shards = %d", resident)
	}
}

// TestShardedPipelineRace floods a W=8 pipeline with a key mix that
// fills channels and recycles pool buffers; run under -race this
// exercises every cross-goroutine hand-off in the router, workers,
// pool, and merge.
func TestShardedPipelineRace(t *testing.T) {
	sp, err := NewShardedProfiler(Config{K: 4, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200_000; i++ {
		// Mixed hot/cold keys keep all shards busy simultaneously.
		k := uint64(i) % 1000
		if i%3 == 0 {
			k = uint64(i)
		}
		sp.Process(trace.Request{Key: k, Size: 1})
	}
	c := sp.ObjectMRC() // closes, joins, merges
	if c.Len() == 0 {
		t.Fatal("empty curve")
	}
	sp.Close() // idempotent
}

// TestShardedWorkersValidation covers config plumbing.
func TestShardedWorkersValidation(t *testing.T) {
	if _, err := NewShardedProfiler(Config{K: 1, Workers: -1}); err == nil {
		t.Fatal("negative Workers must fail validation")
	}
	if _, err := NewProfiler(Config{K: 1, Workers: -1}); err == nil {
		t.Fatal("negative Workers must fail serial validation too")
	}
	// Workers 0 and 1 both yield a single-shard pipeline.
	for _, w := range []int{0, 1} {
		sp, err := NewShardedProfiler(Config{K: 1, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if sp.Workers() != 1 {
			t.Fatalf("Workers()=%d for cfg %d", sp.Workers(), w)
		}
		sp.Close()
	}
}

// TestBuildMRCShardedPath checks the facade dispatch: Workers > 1
// must produce a sane curve through BuildMRC.
func TestBuildMRCShardedPath(t *testing.T) {
	tr := shardedTestTrace(t, "msr-src2", 50_000)
	for _, w := range []int{1, 4} {
		c, err := BuildMRC(tr.Reader(), Config{K: 4, Seed: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() < 2 || c.Eval(0) != 1 {
			t.Fatalf("W=%d: degenerate curve", w)
		}
	}
}

// BenchmarkShardedProcess measures router+pipeline throughput inside
// the core package across worker counts (the facade-level
// BenchmarkShardedKRR in the repo root pins the acceptance ratio).
func BenchmarkShardedProcess(b *testing.B) {
	p, _ := workload.ByName("msr-web")
	tr, err := trace.Collect(p.New(0.1, 42, false), 1<<17)
	if err != nil {
		b.Fatal(err)
	}
	reqs := tr.Reqs
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			sp, err := NewShardedProfiler(Config{K: 8, Seed: 1, Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.Process(reqs[i%len(reqs)])
			}
			b.StopTimer()
			sp.Close()
		})
	}
}
