package core

import (
	"errors"
	"fmt"
	"io"

	"krr/internal/histogram"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

// ErrBytesOff reports a byte-granularity curve request on a profiler
// built with BytesOff. Long-running servers route mis-addressed byte
// queries into this sentinel instead of a crash.
var ErrBytesOff = errors.New("core: byte-granularity distances disabled (built with BytesOff)")

// ByteMode selects how byte-granularity distances are produced.
type ByteMode uint8

// Byte modes.
const (
	// BytesOff records object-granularity distances only.
	BytesOff ByteMode = iota
	// BytesUniform estimates byte distances as φ × mean object size —
	// the uniform-size assumption ("uni-KRR", §5.4) that var-KRR is
	// evaluated against.
	BytesUniform
	// BytesSizeArray uses the paper's logarithmic sizeArray
	// (Algorithm 3) — "var-KRR".
	BytesSizeArray
	// BytesFenwick uses the exact Fenwick byte tracker.
	BytesFenwick
)

// String names the mode.
func (m ByteMode) String() string {
	switch m {
	case BytesOff:
		return "off"
	case BytesUniform:
		return "uniform"
	case BytesSizeArray:
		return "sizearray"
	case BytesFenwick:
		return "fenwick"
	default:
		return "bytemode?"
	}
}

// Config assembles a KRR profiler.
type Config struct {
	// K is the K-LRU sampling size being modeled. Must be >= 1.
	K int
	// KPrime overrides the stack exponent; 0 applies the paper's
	// K′ = K^1.4 correction (§4.2). Set to float64(K) to ablate the
	// correction.
	KPrime float64
	// Method selects the update sampler (default Backward).
	Method UpdateMethod
	// Bytes selects byte-granularity distance handling.
	Bytes ByteMode
	// SamplingRate applies SHARDS-style spatial sampling when in
	// (0, 1); 0 or 1 disables it (§2.4).
	SamplingRate float64
	// Seed fixes all randomness.
	Seed uint64
	// Workers > 1 opts into the sharded parallel pipeline: requests
	// are hash-partitioned across Workers independent stacks and the
	// histograms merged (see ShardedProfiler). 0 or 1 keeps the
	// serial profiler. Only BuildMRC and ShardedProfiler honor it; a
	// plain Profiler is always serial.
	Workers int
}

func (c Config) kPrime() float64 {
	if c.KPrime > 0 {
		return c.KPrime
	}
	return KPrimeFor(c.K)
}

func (c Config) validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: config K = %d, must be >= 1", c.K)
	}
	if c.SamplingRate < 0 || c.SamplingRate > 1 {
		return fmt.Errorf("core: sampling rate %v out of [0, 1]", c.SamplingRate)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: config Workers = %d, must be >= 0", c.Workers)
	}
	return nil
}

// Profiler builds K-LRU miss ratio curves in one pass (§4), optionally
// under spatial sampling. A Profiler is not safe for concurrent use;
// shard the stream or serialize Process calls externally.
type Profiler struct {
	cfg    Config
	stack  *Stack
	filter *sampling.Filter

	objHist  *histogram.Dense
	byteHist *histogram.Log

	seen    telemetry.Counter // pre-filter request count
	sampled telemetry.Counter
}

// NewProfiler builds a profiler from cfg.
func NewProfiler(cfg Config) (*Profiler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	opts := []Option{WithMethod(cfg.Method)}
	switch cfg.Bytes {
	case BytesSizeArray:
		opts = append(opts, WithSizeArray())
	case BytesFenwick:
		opts = append(opts, WithFenwick())
	}
	p := &Profiler{
		cfg:     cfg,
		stack:   NewStack(cfg.kPrime(), cfg.Seed, opts...),
		objHist: histogram.NewDense(1024),
	}
	if cfg.Bytes != BytesOff {
		p.byteHist = histogram.NewLog()
	}
	if cfg.SamplingRate > 0 && cfg.SamplingRate < 1 {
		p.filter = sampling.NewRate(cfg.SamplingRate)
	}
	return p, nil
}

// MustProfiler is NewProfiler, panicking on config errors; for tests
// and examples with static configs.
func MustProfiler(cfg Config) *Profiler {
	p, err := NewProfiler(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the profiler's configuration.
func (p *Profiler) Config() Config { return p.cfg }

// Stack exposes the underlying KRR stack.
func (p *Profiler) Stack() *Stack { return p.stack }

// Seen returns the number of requests offered (before sampling).
func (p *Profiler) Seen() uint64 { return p.seen.Load() }

// Sampled returns the number of requests admitted by the filter.
func (p *Profiler) Sampled() uint64 { return p.sampled.Load() }

// MetricsInto registers the profiler's live telemetry under prefix:
// stream counters plus the underlying stack's update metrics. All
// values are atomically readable while Process runs on another
// goroutine.
func (p *Profiler) MetricsInto(set *telemetry.Set, prefix string) {
	set.CounterFunc(prefix+"requests_seen_total", "requests offered (before spatial sampling)", p.seen.Load)
	set.CounterFunc(prefix+"requests_sampled_total", "requests admitted past spatial sampling", p.sampled.Load)
	p.stack.MetricsInto(set, prefix)
}

// Process feeds one request.
func (p *Profiler) Process(req trace.Request) {
	p.seen.Inc()
	if p.filter != nil && !p.filter.Sampled(req.Key) {
		return
	}
	p.sampled.Inc()
	if req.Op == trace.OpDelete {
		p.stack.Delete(req.Key)
		return
	}
	res := p.stack.Reference(req.Key, req.Size)
	if res.Cold {
		p.objHist.AddCold()
		if p.byteHist != nil {
			p.byteHist.AddCold()
		}
		return
	}
	p.objHist.Add(res.Distance)
	if p.byteHist == nil {
		return
	}
	switch p.cfg.Bytes {
	case BytesUniform:
		p.byteHist.Add(p.stack.UniformByteDistance(res.Distance))
	default:
		p.byteHist.Add(res.ByteDistance)
	}
}

// ProcessAll drains a reader.
func (p *Profiler) ProcessAll(r trace.Reader) error {
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		p.Process(req)
	}
}

// scale converts sampled distances back to full-trace cache sizes.
func (p *Profiler) scale() float64 {
	if p.filter == nil {
		return 1
	}
	return 1 / p.filter.Rate()
}

// ObjectMRC returns the modeled K-LRU miss ratio curve over
// object-count cache sizes.
func (p *Profiler) ObjectMRC() *mrc.Curve {
	return mrc.FromHistogram(p.objHist, p.scale())
}

// ByteMRC returns the modeled curve over byte cache sizes, or
// ErrBytesOff if the profiler was built with BytesOff. (It used to
// panic; a monitoring daemon must survive a mis-routed byte query.)
func (p *Profiler) ByteMRC() (*mrc.Curve, error) {
	if p.byteHist == nil {
		return nil, ErrBytesOff
	}
	return mrc.FromHistogram(p.byteHist, p.scale()), nil
}

// ObjHist exposes the object histogram.
func (p *Profiler) ObjHist() *histogram.Dense { return p.objHist }

// ByteHist exposes the byte histogram (nil when BytesOff).
func (p *Profiler) ByteHist() *histogram.Log { return p.byteHist }

// ResetHistograms clears the recorded distance distributions while
// keeping the stack (and thus the modeled cache state) intact. Online
// monitors call this at window boundaries so each window's MRC
// reflects recent traffic rather than the whole history — the stack
// carries the warm state across windows, exactly like the live cache
// it models.
func (p *Profiler) ResetHistograms() {
	p.objHist = histogram.NewDense(1024)
	if p.byteHist != nil {
		p.byteHist = histogram.NewLog()
	}
}

// BuildMRC is the one-call convenience: model a K-LRU cache over a
// reader and return the object-granularity curve. cfg.Workers > 1
// routes through the sharded parallel pipeline.
func BuildMRC(r trace.Reader, cfg Config) (*mrc.Curve, error) {
	if cfg.Workers > 1 {
		sp, err := NewShardedProfiler(cfg)
		if err != nil {
			return nil, err
		}
		defer sp.Close()
		if err := sp.ProcessAll(r); err != nil {
			return nil, err
		}
		return sp.ObjectMRC(), nil
	}
	p, err := NewProfiler(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.ProcessAll(r); err != nil {
		return nil, err
	}
	return p.ObjectMRC(), nil
}
