package core

import (
	"math"
	"testing"

	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
	"krr/internal/xrand"
)

func TestBucketGeometry(t *testing.T) {
	s := NewBucketStack(KPrimeFor(5), 1.5, 1)
	for i := 0; i < 5000; i++ {
		s.Reference(uint64(i), 1)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", s.Len())
	}
	var prevEnd int32
	for i, bk := range s.buckets {
		if bk.start != prevEnd+1 {
			t.Fatalf("bucket %d starts at %d, want %d", i, bk.start, prevEnd+1)
		}
		width := int32(math.Round(math.Pow(1.5, float64(i))))
		if width < 1 {
			width = 1
		}
		if bk.end-bk.start+1 != width {
			t.Fatalf("bucket %d width = %d, want %d", i, bk.end-bk.start+1, width)
		}
		wantNo := 0.0
		if bk.start > 1 {
			wantNo = math.Pow(float64(bk.start-1)/float64(bk.end), s.kPrime)
		}
		if math.Abs(bk.pNoSwap-wantNo) > 1e-12 {
			t.Fatalf("bucket %d pNoSwap = %v, want %v", i, bk.pNoSwap, wantNo)
		}
		prevEnd = bk.end
	}
	if last := s.buckets[len(s.buckets)-1]; last.start > 5000 {
		t.Fatalf("trailing empty bucket [%d, %d] with N = 5000", last.start, last.end)
	}

	// Ratio 1 degenerates to one position per bucket.
	s1 := NewBucketStack(1, 1, 1)
	for i := 0; i < 100; i++ {
		s1.Reference(uint64(i), 1)
	}
	for i, bk := range s1.buckets {
		if bk.start != int32(i+1) || bk.end != int32(i+1) {
			t.Fatalf("ratio-1 bucket %d spans [%d, %d], want [%d, %d]", i, bk.start, bk.end, i+1, i+1)
		}
	}
}

// checkBucketInvariants verifies the arena/order/index cross-structure
// invariants after an arbitrary operation sequence.
func checkBucketInvariants(t *testing.T, s *BucketStack) {
	t.Helper()
	n := s.Len()
	if s.index.Len() != n {
		t.Fatalf("index holds %d keys, stack holds %d", s.index.Len(), n)
	}
	seen := make(map[int32]bool, n)
	for p := int32(1); p <= int32(n); p++ {
		slot := s.order[p]
		if slot <= 0 || int(slot) >= len(s.keys) {
			t.Fatalf("order[%d] = %d out of arena range", p, slot)
		}
		if seen[slot] {
			t.Fatalf("slot %d appears twice in order", slot)
		}
		seen[slot] = true
		if s.pos[slot] != p {
			t.Fatalf("pos[%d] = %d, want %d", slot, s.pos[slot], p)
		}
		if got := s.index.get(s.keys[slot]); got != slot {
			t.Fatalf("index[%#x] = %d, want slot %d", s.keys[slot], got, slot)
		}
	}
	for _, slot := range s.free {
		if seen[slot] {
			t.Fatalf("free slot %d still referenced by order", slot)
		}
		if s.pos[slot] != 0 {
			t.Fatalf("free slot %d has pos %d, want 0", slot, s.pos[slot])
		}
	}
	if n > 0 {
		last := s.buckets[len(s.buckets)-1]
		if int32(n) < last.start || int32(n) > last.end {
			t.Fatalf("N = %d outside last bucket [%d, %d]", n, last.start, last.end)
		}
	} else if len(s.buckets) != 0 {
		t.Fatalf("empty stack retains %d buckets", len(s.buckets))
	}
}

func TestBucketStackInvariantsUnderChurn(t *testing.T) {
	for _, ratio := range []float64{1, 1.5, 2, 4} {
		s := NewBucketStack(KPrimeFor(5), ratio, 7)
		r := xrand.New(99)
		for i := 0; i < 20000; i++ {
			key := r.Uint64() % 700
			if r.Uint64()%10 == 0 {
				s.Delete(key)
			} else {
				s.Reference(key, 1)
			}
		}
		checkBucketInvariants(t, s)
		// Drain to empty through Delete.
		for key := uint64(0); key < 700; key++ {
			s.Delete(key)
		}
		if s.Len() != 0 {
			t.Fatalf("ratio %v: Len = %d after deleting every key", ratio, s.Len())
		}
		checkBucketInvariants(t, s)
		// The arena recycles: regrowth reuses freed slots.
		before := len(s.keys)
		for key := uint64(0); key < 300; key++ {
			s.Reference(key, 1)
		}
		if len(s.keys) != before {
			t.Fatalf("arena grew from %d to %d slots despite %d free", before, len(s.keys), 700)
		}
		checkBucketInvariants(t, s)
	}
}

func TestBucketStackDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := NewBucketStack(KPrimeFor(8), 1.5, 42)
		r := xrand.New(5)
		var out []uint64
		for i := 0; i < 5000; i++ {
			res := s.Reference(r.Uint64()%300, 1)
			if !res.Cold {
				out = append(out, res.Distance)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs recorded %d vs %d distances", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("distance %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBucketStackDelete(t *testing.T) {
	s := NewBucketStack(KPrimeFor(5), 1.5, 3)
	for i := 0; i < 1000; i++ {
		s.Reference(uint64(i), 2)
	}
	if !s.Delete(500) {
		t.Fatal("Delete(500) = false for a resident key")
	}
	if s.Delete(500) {
		t.Fatal("Delete(500) = true after removal")
	}
	if s.Len() != 999 {
		t.Fatalf("Len = %d after delete, want 999", s.Len())
	}
	if s.TotalBytes() != 999*2 {
		t.Fatalf("TotalBytes = %d, want %d", s.TotalBytes(), 999*2)
	}
	if !s.Reference(500, 2).Cold {
		t.Fatal("re-reference after delete must be cold")
	}
	checkBucketInvariants(t, s)
}

// TestBucketRatioConvergence is the satellite property test: as the
// bucket ratio approaches 1 the bucketized stack converges to the
// exact backward-KRR distance law (at ratio 1 the per-bucket Bernoulli
// IS the per-position linear walk, which draws from the same joint
// swap-set distribution as Algorithm 2). Both sides are randomized
// models, so the comparison is between curves, with a tolerance that
// tightens as the ratio shrinks.
func TestBucketRatioConvergence(t *testing.T) {
	tr, err := trace.Collect(workload.NewZipf(17, 3000, 0.9, nil, 0), 60_000)
	if err != nil {
		t.Fatal(err)
	}
	ref := MustProfiler(Config{K: 8, Seed: 21})
	if err := ref.ProcessAll(tr.Reader()); err != nil {
		t.Fatal(err)
	}
	refCurve := ref.ObjectMRC()
	sizes := mrc.EvenSizes(3000, 30)

	maes := make(map[float64]float64)
	for _, ratio := range []float64{1, 2, 4} {
		p := MustBucketProfiler(BucketConfig{K: 8, Ratio: ratio, Seed: 22})
		if err := p.ProcessAll(tr.Reader()); err != nil {
			t.Fatal(err)
		}
		maes[ratio] = mrc.MAE(refCurve, p.ObjectMRC(), sizes)
		t.Logf("ratio %.2f: MAE vs backward = %.4f", ratio, maes[ratio])
	}
	// Ratio 1 is the same distance law as backward up to sampling
	// noise between two randomized runs.
	if maes[1] > 0.02 {
		t.Fatalf("ratio 1 MAE vs backward = %.4f, want <= 0.02 (statistical noise only)", maes[1])
	}
	if maes[4] > 0.15 {
		t.Fatalf("ratio 4 MAE vs backward = %.4f, want <= 0.15", maes[4])
	}
	if maes[1] > maes[4]+0.01 {
		t.Fatalf("MAE did not shrink toward ratio 1: ratio1=%.4f ratio4=%.4f", maes[1], maes[4])
	}
}

func TestBucketConfigValidate(t *testing.T) {
	if _, err := NewBucketProfiler(BucketConfig{K: 0}); err == nil {
		t.Fatal("K = 0 must be rejected")
	}
	if _, err := NewBucketProfiler(BucketConfig{K: 5, Ratio: 0.5}); err == nil {
		t.Fatal("ratio 0.5 must be rejected")
	}
	if _, err := NewBucketProfiler(BucketConfig{K: 5, Ratio: 9}); err == nil {
		t.Fatal("ratio 9 must be rejected")
	}
	if _, err := NewBucketProfiler(BucketConfig{K: 5, SamplingRate: 2}); err == nil {
		t.Fatal("sampling rate 2 must be rejected")
	}
	p, err := NewBucketProfiler(BucketConfig{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stack().Ratio(); got != DefaultBucketRatio {
		t.Fatalf("default ratio = %v, want %v", got, DefaultBucketRatio)
	}
}
