package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency/size histogram built from the
// same ingredients as Counter: one atomic add per observation, no
// locks, no allocation. Bucket upper bounds are fixed at construction
// (a final implicit +Inf bucket catches the tail), so Observe is a
// short linear scan over a handful of float compares — cheap enough
// for per-frame instrumentation on the ingest hot path.
//
// Reads (Count, Sum, Quantile, exposition) are race-free snapshots of
// the atomics and may run while writers observe. Cross-bucket reads
// are not atomic as a group; like every Prometheus histogram, a scrape
// may see a count that is mid-update by one observation, which is
// harmless for monitoring.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given strictly increasing
// finite upper bounds. It panics on unsorted, duplicate, or non-finite
// bounds (programming errors, same policy as Set registration).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram with no buckets")
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	if !sort.Float64sAreSorted(own) {
		panic("telemetry: histogram bounds not sorted")
	}
	for i, b := range own {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: histogram bound must be finite")
		}
		if i > 0 && own[i-1] == b {
			panic("telemetry: duplicate histogram bound")
		}
	}
	return &Histogram{bounds: own, counts: make([]atomic.Uint64, len(own)+1)}
}

// ExpBuckets returns n upper bounds growing geometrically from start
// by factor — the usual latency bucket ladder. Panics on a
// non-positive start, factor <= 1, or n < 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Values in the
// +Inf bucket clamp to the largest finite bound. It returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// writePrometheus renders the histogram in the Prometheus text format:
// cumulative le buckets, then _sum and _count. labels is the
// pre-rendered label body ("" or `tenant="x"`); the le label composes
// with it.
func (h *Histogram) writePrometheus(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n",
			name, labels, sep, formatValue(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
	return err
}

// Histogram creates, registers and returns a histogram with the given
// bucket upper bounds (see NewHistogram).
func (s *Set) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	s.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram appends an externally owned histogram — typically
// a component's field, registered by its MetricsInto — under the same
// naming rules as scalar metrics.
func (s *Set) RegisterHistogram(name, help string, h *Histogram) {
	if name == "" || h == nil {
		panic("telemetry: register with empty name or nil histogram")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.names[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	s.names[name] = struct{}{}
	s.metrics = append(s.metrics, metric{name: name, help: help, kind: KindHistogram, hist: h})
}
