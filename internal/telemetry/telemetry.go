// Package telemetry provides the cheap runtime metrics layer behind
// online monitoring: allocation-free atomic counters and gauges that a
// hot path updates with single RMW instructions, grouped into named
// Sets with expvar and Prometheus text exposition.
//
// The design splits instrumentation from exposition. Components own
// Counter/Gauge values as plain struct fields (single-writer updates
// cost one uncontended atomic add, a few nanoseconds against the
// microsecond-scale per-request cost of any stack model) and register
// them into a Set via MetricsInto-style methods; serving layers own
// the Set and render it on demand. Reads are always race-free: every
// exported value is either an atomic load or a caller-supplied
// function reading atomics, so /metrics can be scraped while workers
// are mid-stream.
package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind tags a metric for the Prometheus TYPE line.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// metric is one registered exposition entry: a scalar reader, or a
// histogram (read nil, hist set).
type metric struct {
	name string
	help string
	kind Kind
	read func() float64
	hist *Histogram
}

// Set is a named collection of metrics. Registration methods panic on
// duplicate or empty names (programming errors); reads take a snapshot
// under an RWMutex, so registration may race with exposition but
// individual value reads never block writers.
type Set struct {
	mu      sync.RWMutex
	metrics []metric
	names   map[string]struct{}
}

// NewSet returns an empty metric set.
func NewSet() *Set { return &Set{names: make(map[string]struct{})} }

// register appends one exposition entry.
func (s *Set) register(name, help string, kind Kind, read func() float64) {
	if name == "" || read == nil {
		panic("telemetry: register with empty name or nil reader")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.names[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	s.names[name] = struct{}{}
	s.metrics = append(s.metrics, metric{name: name, help: help, kind: kind, read: read})
}

// Counter creates, registers and returns a new counter.
func (s *Set) Counter(name, help string) *Counter {
	c := &Counter{}
	s.CounterFunc(name, help, c.Load)
	return c
}

// Gauge creates, registers and returns a new gauge.
func (s *Set) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	s.register(name, help, KindGauge, func() float64 { return float64(g.Load()) })
	return g
}

// CounterFunc registers an externally owned counter value — typically
// the Load method of a component's Counter field. fn must be safe to
// call from any goroutine.
func (s *Set) CounterFunc(name, help string, fn func() uint64) {
	s.register(name, help, KindCounter, func() float64 { return float64(fn()) })
}

// GaugeFunc registers an externally owned gauge value. fn must be safe
// to call from any goroutine.
func (s *Set) GaugeFunc(name, help string, fn func() float64) {
	s.register(name, help, KindGauge, fn)
}

// snapshot copies the registration list so exposition runs without
// holding the lock across metric reads.
func (s *Set) snapshot() []metric {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]metric, len(s.metrics))
	copy(out, s.metrics)
	return out
}

// WritePrometheus renders the set in the Prometheus text exposition
// format (one HELP/TYPE/value triple per metric, registration order).
func (s *Set) WritePrometheus(w io.Writer) error {
	return s.WritePrometheusLabeled(w, "", nil)
}

// WritePrometheusLabeled renders the set with a label suffix attached
// to every sample, e.g. labels = `tenant="t1"` yields
// `name{tenant="t1"} value`. A multi-tenant exposition concatenates
// many sets sharing metric names; to keep the output a valid single
// document, HELP/TYPE header lines are emitted only for metric names
// not yet present in seen (which is updated in place). Passing a nil
// seen emits headers unconditionally; empty labels render bare names.
func (s *Set) WritePrometheusLabeled(w io.Writer, labels string, seen map[string]bool) error {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	for _, m := range s.snapshot() {
		if seen == nil || !seen[m.name] {
			if seen != nil {
				seen[m.name] = true
			}
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		if m.hist != nil {
			if err := m.hist.writePrometheus(w, m.name, labels); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", m.name, suffix, formatValue(m.read())); err != nil {
			return err
		}
	}
	return nil
}

// EscapeLabelValue escapes a string for use inside a Prometheus label
// value (backslash, double quote and newline, per the text format).
func EscapeLabelValue(v string) string {
	var b []byte
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(b)
}

// formatValue renders integral values without an exponent (the common
// case for counters) and everything else in compact float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Expvar returns the set as an expvar.Func rendering a name→value
// map, suitable for expvar.Publish.
func (s *Set) Expvar() expvar.Func {
	return func() any {
		out := make(map[string]float64, len(s.metrics))
		for _, m := range s.snapshot() {
			if m.hist != nil {
				out[m.name+"_count"] = float64(m.hist.Count())
				out[m.name+"_sum"] = m.hist.Sum()
				out[m.name+"_p50"] = m.hist.Quantile(0.50)
				out[m.name+"_p99"] = m.hist.Quantile(0.99)
				continue
			}
			out[m.name] = m.read()
		}
		return out
	}
}

// Publish registers the set under name in the process-global expvar
// namespace (served at /debug/vars).
func (s *Set) Publish(name string) { expvar.Publish(name, s.Expvar()) }
