package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	// 100 observations uniform over (0, 8]: 0.08, 0.16, ..., 8.0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.08)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 0.0
	for i := 1; i <= 100; i++ {
		wantSum += float64(i) * 0.08
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// True median is 4.04; interpolation within the (2,4] bucket puts
	// the estimate at its upper edge, and p99 lands in (4,8].
	if q := h.Quantile(0.5); math.Abs(q-4.0) > 0.2 {
		t.Fatalf("p50 = %v, want ~4.0", q)
	}
	if q := h.Quantile(0.99); q < 4 || q > 8 {
		t.Fatalf("p99 = %v, want in (4, 8]", q)
	}
	// Everything past the last bound clamps to it.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 4, 10))
	var wg sync.WaitGroup
	const per = 10000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 4*per {
		t.Fatalf("count = %d, want %d", h.Count(), 4*per)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != 4*per {
		t.Fatalf("bucket sum = %d, want %d", cum, 4*per)
	}
}

func TestHistogramExposition(t *testing.T) {
	set := NewSet()
	h := set.Histogram("ingest_latency_seconds", "per-frame ingest latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var b strings.Builder
	if err := set.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ingest_latency_seconds histogram",
		`ingest_latency_seconds_bucket{le="0.001"} 1`,
		`ingest_latency_seconds_bucket{le="0.01"} 2`,
		`ingest_latency_seconds_bucket{le="+Inf"} 3`,
		"ingest_latency_seconds_sum 5.0055",
		"ingest_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Labeled exposition composes the le label with the label set.
	b.Reset()
	if err := set.WritePrometheusLabeled(&b, `tenant="t1"`, nil); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	for _, want := range []string{
		`ingest_latency_seconds_bucket{tenant="t1",le="0.001"} 1`,
		`ingest_latency_seconds_sum{tenant="t1"} 5.0055`,
		`ingest_latency_seconds_count{tenant="t1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}

	// Expvar view exports count/sum and the two headline quantiles.
	m := set.Expvar()().(map[string]float64)
	if m["ingest_latency_seconds_count"] != 3 {
		t.Fatalf("expvar count = %v", m["ingest_latency_seconds_count"])
	}
	if m["ingest_latency_seconds_p99"] == 0 {
		t.Fatal("expvar p99 missing")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if math.Abs(b[i]-want[i])/want[i] > 1e-12 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(ExpBuckets(1e-6, 2, 20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
