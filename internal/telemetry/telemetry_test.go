package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}

func TestSetPrometheusOutput(t *testing.T) {
	s := NewSet()
	c := s.Counter("reqs_total", "requests seen")
	c.Add(42)
	g := s.Gauge("queue_depth", "in-flight batches")
	g.Set(3)
	s.GaugeFunc("fill_avg", "average batch fill", func() float64 { return 1.5 })

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests seen",
		"# TYPE reqs_total counter",
		"reqs_total 42",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"fill_avg 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "reqs_total") > strings.Index(out, "queue_depth") {
		t.Fatal("metrics out of registration order")
	}
}

func TestSetExpvar(t *testing.T) {
	s := NewSet()
	s.Counter("a", "").Add(2)
	s.Gauge("b", "").Set(-1)
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(s.Expvar().String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["a"] != 2 || decoded["b"] != -1 {
		t.Fatalf("expvar map = %v", decoded)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	s := NewSet()
	s.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	s.Gauge("x", "")
}

// TestConcurrentReadsAndWrites drives writers against exposition under
// the race detector.
func TestConcurrentReadsAndWrites(t *testing.T) {
	s := NewSet()
	c := s.Counter("hits", "")
	g := s.Gauge("len", "")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			c.Inc()
			g.Set(int64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			var b strings.Builder
			if err := s.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Load() != 10000 {
		t.Fatalf("hits = %d, want 10000", c.Load())
	}
}
