package analysis

import (
	"math"
	"testing"

	"krr/internal/histogram"
	"krr/internal/trace"
	"krr/internal/workload"
)

func analyzePreset(t *testing.T, name string, n int, variable bool) Report {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("missing preset %s", name)
	}
	rep, err := Analyze(trace.LimitReader(p.New(0.05, 3, variable), n))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEmptyTrace(t *testing.T) {
	rep, err := Analyze((&trace.Trace{}).Reader())
	if err != nil || rep.Requests != 0 {
		t.Fatalf("%+v %v", rep, err)
	}
}

func TestZipfAlphaRecovered(t *testing.T) {
	// The fitted exponent must recover the generator's alpha within a
	// reasonable band.
	for _, alpha := range []float64{0.8, 1.2} {
		g := workload.NewZipf(7, 50000, alpha, nil, 0)
		rep, err := Analyze(trace.LimitReader(g, 400000))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.ZipfAlphaFit-alpha) > 0.25 {
			t.Fatalf("alpha %v fitted as %v", alpha, rep.ZipfAlphaFit)
		}
	}
}

func TestSkewOrdering(t *testing.T) {
	// Higher alpha -> larger head share.
	low := analyzeZipf(t, 0.6)
	high := analyzeZipf(t, 1.4)
	if low.TopShare10 >= high.TopShare10 {
		t.Fatalf("head share not ordered: %v vs %v", low.TopShare10, high.TopShare10)
	}
	if !(high.TopShare1 < high.TopShare10 && high.TopShare10 < high.TopShare100) {
		t.Fatalf("shares not nested: %+v", high)
	}
}

func analyzeZipf(t *testing.T, alpha float64) Report {
	t.Helper()
	g := workload.NewZipf(7, 20000, alpha, nil, 0)
	rep, err := Analyze(trace.LimitReader(g, 200000))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestLoopReusePercentiles(t *testing.T) {
	// Every reuse time in a loop over M equals M.
	const m = 1000
	g := workload.NewLoop(m, nil)
	rep, err := Analyze(trace.LimitReader(g, m*10))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []uint64{rep.ReuseP50, rep.ReuseP90, rep.ReuseP99} {
		if float64(p) < m*0.95 || float64(p) > m*1.05 {
			t.Fatalf("loop reuse percentile %d, want ~%d", p, m)
		}
	}
}

func TestOperationMix(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Size: 1, Op: trace.OpGet},
		{Key: 1, Size: 1, Op: trace.OpGet},
		{Key: 2, Size: 1, Op: trace.OpSet},
		{Key: 1, Size: 1, Op: trace.OpDelete},
	}}
	rep, err := Analyze(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GetRatio != 0.5 || rep.SetRatio != 0.25 || rep.DeleteRatio != 0.25 {
		t.Fatalf("mix %+v", rep)
	}
}

func TestSizeStatistics(t *testing.T) {
	rep := analyzePreset(t, "tw-26.0", 100000, true)
	if rep.MeanObjectSize <= 0 || rep.MaxObjectSize == 0 {
		t.Fatalf("size stats empty: %+v", rep)
	}
	if rep.MedianObjectSize > rep.MaxObjectSize {
		t.Fatal("median above max")
	}
	// Lognormal sizes: mean above median.
	if rep.MeanObjectSize < float64(rep.MedianObjectSize) {
		t.Fatalf("heavy tail missing: mean %v median %d", rep.MeanObjectSize, rep.MedianObjectSize)
	}
	fixed := analyzePreset(t, "tw-26.0", 50000, false)
	if fixed.MeanObjectSize != trace.DefaultObjectSize {
		t.Fatalf("fixed variant mean size %v", fixed.MeanObjectSize)
	}
}

func TestColdAndWSS(t *testing.T) {
	rep := analyzePreset(t, "zipf", 100000, false)
	if rep.ColdMissRatio <= 0 || rep.ColdMissRatio >= 1 {
		t.Fatalf("cold ratio %v", rep.ColdMissRatio)
	}
	if rep.WSSBytes != uint64(rep.DistinctObjects)*trace.DefaultObjectSize {
		t.Fatalf("WSS %d inconsistent with %d objects", rep.WSSBytes, rep.DistinctObjects)
	}
}

func TestMSRPresetsShapeSanity(t *testing.T) {
	// Type B presets (hotspot heavy) must concentrate more traffic in
	// the head than scan-heavy Type A presets at equal scale.
	typeA := analyzePreset(t, "msr-stg", 150000, false)
	typeB := analyzePreset(t, "msr-prxy", 150000, false)
	if typeB.TopShare100 <= typeA.TopShare100 {
		t.Fatalf("hotspot preset head share %v not above scan preset %v",
			typeB.TopShare100, typeA.TopShare100)
	}
}

// --- Issue 9 regression tests: degenerate traces and rank rounding ---

func TestSingleRecordTrace(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{{Key: 7, Size: 128, Op: trace.OpGet}}}
	rep, err := Analyze(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 1 || rep.DistinctObjects != 1 {
		t.Fatalf("unexpected counts: %+v", rep)
	}
	if rep.MeanObjectSize != 128 || rep.MedianObjectSize != 128 || rep.MaxObjectSize != 128 {
		t.Errorf("size stats wrong on single-record trace: %+v", rep)
	}
	if rep.ZipfAlphaFit != 0 {
		t.Errorf("one-point popularity must hit the degenerate-fit sentinel, got %v", rep.ZipfAlphaFit)
	}
}

// TestDeleteOnlyTraceNoPanic pins the size-stats crash: a trace with
// requests but no sized objects (delete-only stream) used to panic on
// sizes[len(sizes)/2] and emit a 0/0 NaN mean. The report must come
// back zero-valued instead.
func TestDeleteOnlyTraceNoPanic(t *testing.T) {
	tr := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Op: trace.OpDelete},
		{Key: 2, Op: trace.OpDelete},
	}}
	rep, err := Analyze(tr.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 || rep.DeleteRatio != 1 {
		t.Fatalf("unexpected op mix: %+v", rep)
	}
	if math.IsNaN(rep.MeanObjectSize) || rep.MeanObjectSize != 0 || rep.MedianObjectSize != 0 {
		t.Errorf("size stats must be zero-valued on a size-less trace: mean=%v median=%d",
			rep.MeanObjectSize, rep.MedianObjectSize)
	}
}

// TestHistPercentileBoundaries pins the ceiling-rank convention: p=0
// lands on the smallest recorded distance, p=1 on the largest, and a
// total=1 histogram reports its one sample at every p (the floor
// truncation used to target rank 0 and always report the first
// bucket).
func TestHistPercentileBoundaries(t *testing.T) {
	single := histogram.NewLog()
	single.Add(300)
	var want uint64
	single.Buckets(func(d, _ uint64) { want = d })
	for _, p := range []float64{0, 0.5, 1} {
		if got := histPercentile(single, p); got != want {
			t.Errorf("total=1: p=%v returned %d, want the single sample bucket %d", p, got, want)
		}
	}

	multi := histogram.NewLog()
	multi.Add(1)
	multi.Add(50)
	multi.Add(4000)
	var buckets []uint64
	multi.Buckets(func(d, _ uint64) { buckets = append(buckets, d) })
	if got := histPercentile(multi, 0); got != buckets[0] {
		t.Errorf("p=0 returned %d, want first bucket %d", got, buckets[0])
	}
	if got := histPercentile(multi, 1); got != buckets[len(buckets)-1] {
		t.Errorf("p=1 returned %d, want last bucket %d", got, buckets[len(buckets)-1])
	}
	// Median of three samples is the middle one by ceiling rank
	// (⌈0.5·3⌉ = 2).
	if got := histPercentile(multi, 0.5); got != buckets[1] {
		t.Errorf("p=0.5 returned %d, want middle bucket %d", got, buckets[1])
	}

	if got := histPercentile(histogram.NewLog(), 0.5); got != 0 {
		t.Errorf("empty histogram returned %d, want 0", got)
	}
}

// TestZipfFitDegenerate pins the documented 0 sentinel: heads with
// fewer than 3 informative ranks, all-singleton frequencies, and
// constant (zero-slope) heads must all return exactly 0.
func TestZipfFitDegenerate(t *testing.T) {
	cases := [][]uint64{
		nil,
		{},
		{1, 1, 1, 1, 1},
		{9, 4},
		{5, 5, 5, 5, 5, 5},
	}
	for _, freqs := range cases {
		if got := ZipfFit(freqs); got != 0 {
			t.Errorf("ZipfFit(%v) = %v, want the 0 sentinel", freqs, got)
		}
	}
	if got := ZipfFit([]uint64{400, 200, 100, 50, 25}); got <= 0 {
		t.Errorf("genuine power law returned sentinel: %v", got)
	}
}
