// Package analysis characterizes request traces: popularity skew
// (Zipf exponent fit, head concentration), reuse-time percentiles,
// object-size distribution and operation mix. The workload chapter of
// the paper (§5.2) summarizes its traces with exactly these
// statistics; the tracestat tool exposes them for synthetic and
// imported traces alike, and the tests pin the synthetic generators
// to their intended shapes.
package analysis

import (
	"errors"
	"io"
	"math"
	"sort"

	"krr/internal/histogram"
	"krr/internal/trace"
)

// Report is a trace characterization.
type Report struct {
	Requests        int
	DistinctObjects int
	ColdMissRatio   float64

	// Operation mix.
	GetRatio, SetRatio, DeleteRatio float64

	// Popularity.
	TopShare1    float64 // share of requests to the hottest key
	TopShare10   float64
	TopShare100  float64
	ZipfAlphaFit float64 // -slope of the log-log rank-frequency fit

	// Reuse times (in references; only re-references counted).
	ReuseP50, ReuseP90, ReuseP99 uint64

	// Sizes (per distinct object, first-seen size).
	MeanObjectSize   float64
	MedianObjectSize uint32
	MaxObjectSize    uint32
	TotalBytes       uint64
	WSSBytes         uint64
}

// Analyze characterizes a full request stream.
func Analyze(r trace.Reader) (Report, error) {
	var rep Report
	counts := make(map[uint64]uint64)
	lastSeen := make(map[uint64]uint64)
	firstSize := make(map[uint64]uint32)
	reuse := histogram.NewLog()
	var clock uint64
	var gets, sets, dels int

	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return rep, err
		}
		clock++
		rep.Requests++
		rep.TotalBytes += uint64(req.Size)
		switch req.Op {
		case trace.OpDelete:
			dels++
			delete(lastSeen, req.Key)
			continue
		case trace.OpSet:
			sets++
		default:
			gets++
		}
		counts[req.Key]++
		if last, ok := lastSeen[req.Key]; ok {
			reuse.Add(clock - last)
		}
		lastSeen[req.Key] = clock
		if _, ok := firstSize[req.Key]; !ok {
			firstSize[req.Key] = req.Size
			rep.WSSBytes += uint64(req.Size)
		}
	}
	if rep.Requests == 0 {
		return rep, nil
	}
	n := float64(rep.Requests)
	rep.GetRatio = float64(gets) / n
	rep.SetRatio = float64(sets) / n
	rep.DeleteRatio = float64(dels) / n
	rep.DistinctObjects = len(firstSize)
	rep.ColdMissRatio = float64(len(firstSize)) / n

	// Popularity: rank-frequency.
	freqs := make([]uint64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	accessed := float64(gets + sets)
	share := func(top int) float64 {
		var s uint64
		for i := 0; i < top && i < len(freqs); i++ {
			s += freqs[i]
		}
		if accessed == 0 {
			return 0
		}
		return float64(s) / accessed
	}
	rep.TopShare1 = share(1)
	rep.TopShare10 = share(10)
	rep.TopShare100 = share(100)
	rep.ZipfAlphaFit = ZipfFit(freqs)

	// Reuse percentiles from the log histogram.
	rep.ReuseP50 = histPercentile(reuse, 0.50)
	rep.ReuseP90 = histPercentile(reuse, 0.90)
	rep.ReuseP99 = histPercentile(reuse, 0.99)

	// Sizes.
	sizes := make([]uint32, 0, len(firstSize))
	var sizeSum float64
	for _, s := range firstSize {
		sizes = append(sizes, s)
		sizeSum += float64(s)
		if s > rep.MaxObjectSize {
			rep.MaxObjectSize = s
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	// A trace can have requests but no sized objects (delete-only
	// streams): without the guard the mean is 0/0 = NaN and the median
	// index panics. Size statistics stay zero-valued instead.
	if len(sizes) > 0 {
		rep.MeanObjectSize = sizeSum / float64(len(sizes))
		rep.MedianObjectSize = sizes[len(sizes)/2]
	}
	return rep, nil
}

// ZipfFit estimates the Zipf exponent by least-squares regression of
// log(frequency) on log(rank) over the informative head of a
// descending rank-frequency list (ranks up to 1000, frequencies > 1).
//
// It returns 0 — the degenerate-fit sentinel — when the head carries
// no usable power law: fewer than 3 ranks with frequency > 1 (e.g.
// every key referenced at most once), or a constant/non-decreasing
// head whose regression slope is not negative. Callers that need a
// working exponent (the cheform popularity fitter) must treat 0 as
// "no fit" and substitute their own default rather than feeding a
// zero exponent into downstream formulas.
func ZipfFit(sortedFreqs []uint64) float64 {
	var xs, ys []float64
	for i, f := range sortedFreqs {
		if i >= 1000 || f <= 1 {
			break
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(f)))
	}
	if len(xs) < 3 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	if slope >= -1e-9 {
		// Frequencies are sorted descending, so a flat slope — exactly
		// 0 on constant heads up to float summation noise — or a
		// numerically positive one means there is no power law to fit.
		return 0
	}
	return -slope
}

// histPercentile returns the p-quantile distance of a log histogram:
// the smallest recorded distance with at least ⌈p·total⌉ samples at
// or below it, matching telemetry.Histogram.Quantile's ceiling-rank
// convention. The floor of the previous implementation truncated the
// rank — a single sample at p = 0.5 targeted rank 0 and always
// reported the first bucket; the ceiling (clamped to [1, total])
// lands p = 0 on the smallest recorded distance, p = 1 on the
// largest, and any p on the one sample of a total = 1 histogram.
func histPercentile(h *histogram.Log, p float64) uint64 {
	total := h.Total() - h.Cold()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum, result uint64
	done := false
	h.Buckets(func(d, c uint64) {
		if done {
			return
		}
		cum += c
		if cum >= rank {
			result = d
			done = true
		}
	})
	return result
}
