// Package mrc defines the Miss Ratio Curve type produced by every
// model and simulator in this repository, plus the error metric used
// throughout the paper's evaluation (mean absolute error across a set
// of evaluated cache sizes, §5.3).
//
// A Curve maps cache size — in objects for fixed-size workloads, in
// bytes for variable-size workloads — to miss ratio. Curves are
// represented as sorted breakpoints and evaluated with linear
// interpolation, which is exactly how the paper turns a finite set of
// simulated sizes into a curve (§5.1).
package mrc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"krr/internal/histogram"
)

// Interp selects how Eval behaves between breakpoints.
type Interp uint8

const (
	// InterpLinear joins breakpoints with straight lines — appropriate
	// for curves sampled at a few simulated cache sizes (§5.1).
	InterpLinear Interp = iota
	// InterpStep holds the value of the breakpoint at or below the
	// queried size — exact for histogram-derived curves, where the
	// miss ratio is constant between consecutive observed distances.
	InterpStep
)

// Curve is a miss-ratio curve: Miss[i] is the miss ratio of a cache of
// capacity Sizes[i]. Sizes is strictly increasing.
type Curve struct {
	Sizes  []uint64
	Miss   []float64
	Interp Interp
}

// FromPointsTolerance is the float-error budget FromPoints forgives:
// miss ratios within this distance outside [0, 1] are clamped to the
// nearest bound rather than rejected. Models that rescale histogram
// weights (sampling-rate corrections, sharded merges) can accumulate
// one-ulp drift like 1.0000000001, which is noise, not a bug.
const FromPointsTolerance = 1e-9

// FromPoints builds a curve from parallel slices, sorting by size and
// dropping duplicate sizes (keeping the last). Miss ratios within
// FromPointsTolerance outside [0, 1] are clamped; it panics on length
// mismatch or a genuinely out-of-range miss ratio.
func FromPoints(sizes []uint64, miss []float64) *Curve {
	if len(sizes) != len(miss) {
		panic("mrc: FromPoints length mismatch")
	}
	type pt struct {
		s uint64
		m float64
	}
	pts := make([]pt, len(sizes))
	for i := range sizes {
		m := miss[i]
		switch {
		case m >= 0 && m <= 1:
		case m < 0 && m >= -FromPointsTolerance:
			m = 0
		case m > 1 && m <= 1+FromPointsTolerance:
			m = 1
		default:
			panic(fmt.Sprintf("mrc: miss ratio %v out of [0,1]", m))
		}
		pts[i] = pt{sizes[i], m}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].s < pts[j].s })
	c := &Curve{}
	for _, p := range pts {
		if n := len(c.Sizes); n > 0 && c.Sizes[n-1] == p.s {
			c.Miss[n-1] = p.m
			continue
		}
		c.Sizes = append(c.Sizes, p.s)
		c.Miss = append(c.Miss, p.m)
	}
	return c
}

// FromHistogram converts a stack-distance histogram into a curve.
//
// scale rescales distances to cache sizes: pass 1 for an unsampled
// stream, or 1/R when the histogram was collected under spatial
// sampling with rate R (a sampled stack distance d stands for d/R
// unsampled objects or bytes, §2.4).
//
// The curve starts at (0, 1): an empty cache misses everything. Each
// histogram bucket at distance d contributes a breakpoint at size
// d*scale whose miss ratio counts all references with distance > d
// plus cold misses.
func FromHistogram(h histogram.Histogram, scale float64) *Curve {
	if scale <= 0 {
		panic("mrc: non-positive scale")
	}
	total := h.Total()
	c := &Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: InterpStep}
	if total == 0 {
		return c
	}
	var cum uint64
	h.Buckets(func(d, count uint64) {
		cum += count
		size := uint64(float64(d)*scale + 0.5)
		if size == 0 {
			size = 1
		}
		m := 1 - float64(cum)/float64(total)
		if n := len(c.Sizes); c.Sizes[n-1] == size {
			c.Miss[n-1] = m
			return
		}
		c.Sizes = append(c.Sizes, size)
		c.Miss = append(c.Miss, m)
	})
	return c
}

// Len returns the number of breakpoints.
func (c *Curve) Len() int { return len(c.Sizes) }

// WSS returns the largest breakpoint size — for a one-pass stack model
// this is (approximately) the working-set size, beyond which the miss
// ratio is the cold-miss ratio.
func (c *Curve) WSS() uint64 {
	if len(c.Sizes) == 0 {
		return 0
	}
	return c.Sizes[len(c.Sizes)-1]
}

// Eval returns the miss ratio at an arbitrary cache size by linear
// interpolation between surrounding breakpoints. Sizes before the
// first breakpoint evaluate to 1 (or the first value if it has size
// 0); sizes beyond the last breakpoint evaluate to the final value.
func (c *Curve) Eval(size uint64) float64 {
	n := len(c.Sizes)
	if n == 0 {
		return 1
	}
	if size < c.Sizes[0] {
		// Strictly before the first breakpoint: a cache smaller than
		// any observed size misses everything. (Only reachable when
		// Sizes[0] > 0, i.e. curves built by FromPoints; histogram
		// curves always start at size 0.)
		return 1
	}
	if size == c.Sizes[0] {
		return c.Miss[0]
	}
	if size >= c.Sizes[n-1] {
		return c.Miss[n-1]
	}
	// Find first breakpoint >= size.
	i := sort.Search(n, func(i int) bool { return c.Sizes[i] >= size })
	if c.Sizes[i] == size {
		return c.Miss[i]
	}
	lo, hi := i-1, i
	if c.Interp == InterpStep {
		return c.Miss[lo]
	}
	span := float64(c.Sizes[hi] - c.Sizes[lo])
	frac := float64(size-c.Sizes[lo]) / span
	return c.Miss[lo] + frac*(c.Miss[hi]-c.Miss[lo])
}

// EvalMany evaluates the curve at each size.
func (c *Curve) EvalMany(sizes []uint64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = c.Eval(s)
	}
	return out
}

// MAE returns the mean absolute error between two curves evaluated at
// the given cache sizes — the paper's accuracy metric (§5.3).
func MAE(a, b *Curve, at []uint64) float64 {
	if len(at) == 0 {
		return 0
	}
	var sum float64
	for _, s := range at {
		d := a.Eval(s) - b.Eval(s)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(at))
}

// EvenSizes returns n cache sizes evenly distributed over (0, wss],
// the paper's choice of evaluation points (§5.3 uses 40, §5.5 uses 25).
func EvenSizes(wss uint64, n int) []uint64 {
	if n <= 0 || wss == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 1; i <= n; i++ {
		s := uint64(float64(wss) * float64(i) / float64(n))
		if s == 0 {
			s = 1
		}
		if len(out) > 0 && out[len(out)-1] == s {
			continue
		}
		out = append(out, s)
	}
	return out
}

// curveJSON is the stable JSON shape of a Curve.
type curveJSON struct {
	Sizes  []uint64  `json:"sizes"`
	Miss   []float64 `json:"miss"`
	Interp string    `json:"interp"`
}

// MarshalJSON encodes the curve with a readable interpolation tag.
func (c *Curve) MarshalJSON() ([]byte, error) {
	interp := "linear"
	if c.Interp == InterpStep {
		interp = "step"
	}
	return json.Marshal(curveJSON{Sizes: c.Sizes, Miss: c.Miss, Interp: interp})
}

// UnmarshalJSON decodes a curve, validating monotone sizes and
// miss-ratio bounds.
func (c *Curve) UnmarshalJSON(data []byte) error {
	var cj curveJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	if len(cj.Sizes) != len(cj.Miss) {
		return fmt.Errorf("mrc: sizes/miss length mismatch %d/%d", len(cj.Sizes), len(cj.Miss))
	}
	for i := range cj.Sizes {
		if i > 0 && cj.Sizes[i] <= cj.Sizes[i-1] {
			return fmt.Errorf("mrc: sizes not strictly increasing at %d", i)
		}
		if cj.Miss[i] < 0 || cj.Miss[i] > 1 {
			return fmt.Errorf("mrc: miss ratio %v out of [0,1]", cj.Miss[i])
		}
	}
	c.Sizes, c.Miss = cj.Sizes, cj.Miss
	switch cj.Interp {
	case "step":
		c.Interp = InterpStep
	case "linear", "":
		c.Interp = InterpLinear
	default:
		return fmt.Errorf("mrc: unknown interp %q", cj.Interp)
	}
	return nil
}

// WriteJSON emits the curve as a JSON document.
func (c *Curve) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadJSON decodes a curve written by WriteJSON.
func ReadJSON(r io.Reader) (*Curve, error) {
	var c Curve
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteCSV emits "size,missratio" lines.
func (c *Curve) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range c.Sizes {
		if _, err := fmt.Fprintf(bw, "%d,%.6f\n", c.Sizes[i], c.Miss[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Downsample returns a curve with at most n breakpoints, preserving
// the first and last, for compact plotting. n == 1 keeps only the
// last breakpoint (the working-set-size / cold-miss point).
func (c *Curve) Downsample(n int) *Curve {
	if n <= 0 || c.Len() <= n {
		return c
	}
	if n == 1 {
		last := c.Len() - 1
		return &Curve{Sizes: []uint64{c.Sizes[last]}, Miss: []float64{c.Miss[last]}, Interp: c.Interp}
	}
	out := &Curve{Sizes: make([]uint64, 0, n), Miss: make([]float64, 0, n), Interp: c.Interp}
	last := c.Len() - 1
	for i := 0; i < n; i++ {
		idx := i * last / (n - 1)
		if m := len(out.Sizes); m > 0 && out.Sizes[m-1] == c.Sizes[idx] {
			continue
		}
		out.Sizes = append(out.Sizes, c.Sizes[idx])
		out.Miss = append(out.Miss, c.Miss[idx])
	}
	return out
}
