package mrc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"krr/internal/histogram"
)

func TestFromPointsSortsAndDedups(t *testing.T) {
	c := FromPoints([]uint64{30, 10, 20, 10}, []float64{0.3, 0.9, 0.5, 0.8})
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Sizes[0] != 10 || c.Sizes[1] != 20 || c.Sizes[2] != 30 {
		t.Fatalf("sizes %v", c.Sizes)
	}
	if c.Miss[0] != 0.8 { // duplicate keeps the last value
		t.Fatalf("dup miss %v", c.Miss[0])
	}
}

func TestFromPointsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FromPoints([]uint64{1}, nil) },
		func() { FromPoints([]uint64{1}, []float64{1.5}) },
		func() { FromPoints([]uint64{1}, []float64{-0.1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEvalInterpolation(t *testing.T) {
	c := FromPoints([]uint64{0, 10, 20}, []float64{1, 0.5, 0.1})
	cases := map[uint64]float64{
		0:   1,
		5:   0.75,
		10:  0.5,
		15:  0.3,
		20:  0.1,
		100: 0.1, // beyond last: hold
	}
	for size, want := range cases {
		if got := c.Eval(size); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Eval(%d) = %v, want %v", size, got, want)
		}
	}
}

func TestEvalEmptyAndBeforeFirst(t *testing.T) {
	var empty Curve
	if empty.Eval(10) != 1 {
		t.Fatal("empty curve must evaluate to 1")
	}
	c := FromPoints([]uint64{100}, []float64{0.4})
	if c.Eval(5) != 1 {
		t.Fatalf("Eval(5) = %v: sizes before the first breakpoint must miss everything", c.Eval(5))
	}
	if c.Eval(100) != 0.4 {
		t.Fatalf("Eval at the first breakpoint = %v, want 0.4", c.Eval(100))
	}
}

// TestEvalBeforeFirstBreakpoint is the regression test for the
// boundary bug where size < Sizes[0] (with Sizes[0] > 0) returned
// Miss[0] instead of the documented all-miss ratio of 1, flattering
// FromPoints-built simulator curves at small cache sizes.
func TestEvalBeforeFirstBreakpoint(t *testing.T) {
	for _, interp := range []Interp{InterpLinear, InterpStep} {
		c := FromPoints([]uint64{100, 200, 300}, []float64{0.5, 0.3, 0.1})
		c.Interp = interp
		for _, size := range []uint64{0, 1, 50, 99} {
			if got := c.Eval(size); got != 1 {
				t.Fatalf("interp %d: Eval(%d) = %v, want 1", interp, size, got)
			}
		}
		if got := c.Eval(100); got != 0.5 {
			t.Fatalf("interp %d: Eval(100) = %v, want 0.5 (first breakpoint inclusive)", interp, got)
		}
		if got := c.Eval(300); got != 0.1 {
			t.Fatalf("interp %d: Eval(300) = %v, want 0.1", interp, got)
		}
	}
	// A first breakpoint at size 0 keeps its own value: there is no
	// "before" a zero-size cache.
	z := FromPoints([]uint64{0, 10}, []float64{1, 0.2})
	if z.Eval(0) != 1 {
		t.Fatal("Eval(0) with a size-0 breakpoint must return its value")
	}
}

func TestFromPointsClampsFloatJitter(t *testing.T) {
	c := FromPoints([]uint64{1, 2}, []float64{1 + 1e-10, -1e-10})
	if c.Miss[0] != 1 || c.Miss[1] != 0 {
		t.Fatalf("jitter not clamped: %v", c.Miss)
	}
	for _, bad := range []float64{1 + 1e-8, -1e-8} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("miss ratio %v beyond tolerance must panic", bad)
				}
			}()
			FromPoints([]uint64{1}, []float64{bad})
		}()
	}
}

func TestFromHistogramBasics(t *testing.T) {
	h := histogram.NewDense(8)
	// 10 refs: distances 1×4, 2×3, 5×2, cold×1.
	for i := 0; i < 4; i++ {
		h.Add(1)
	}
	for i := 0; i < 3; i++ {
		h.Add(2)
	}
	for i := 0; i < 2; i++ {
		h.Add(5)
	}
	h.AddCold()
	c := FromHistogram(h, 1)
	// Size 0 → 1. Size 1 → (3+2+1)/10. Size 2 → 3/10. Size 5 → 1/10.
	if got := c.Eval(0); got != 1 {
		t.Fatalf("miss(0) = %v", got)
	}
	if got := c.Eval(1); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("miss(1) = %v, want 0.6", got)
	}
	if got := c.Eval(2); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("miss(2) = %v, want 0.3", got)
	}
	if got := c.Eval(5); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("miss(5) = %v, want 0.1 (cold ratio)", got)
	}
	if got := c.Eval(1000); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("miss(inf) = %v, want cold ratio", got)
	}
}

func TestStepInterpolation(t *testing.T) {
	// A loop trace: every re-reference at distance 100. The curve must
	// hold miss=~1 for every size below 100 — no linear ramp.
	h := histogram.NewDense(128)
	for i := 0; i < 95; i++ {
		h.Add(100)
	}
	for i := 0; i < 5; i++ {
		h.AddCold()
	}
	c := FromHistogram(h, 1)
	if c.Interp != InterpStep {
		t.Fatal("histogram curves must be step-interpolated")
	}
	if got := c.Eval(50); got != 1 {
		t.Fatalf("miss(50) = %v, want 1 (step hold)", got)
	}
	if got := c.Eval(99); got != 1 {
		t.Fatalf("miss(99) = %v, want 1", got)
	}
	if got := c.Eval(100); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("miss(100) = %v, want 0.05", got)
	}
}

func TestFromHistogramScale(t *testing.T) {
	h := histogram.NewDense(4)
	h.Add(3)
	h.Add(3)
	h.AddCold()
	c := FromHistogram(h, 1000) // R = 0.001
	// The breakpoint must land at 3000, not 3.
	if c.WSS() != 3000 {
		t.Fatalf("WSS = %d, want 3000", c.WSS())
	}
	if got := c.Eval(3000); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("miss(3000) = %v, want 1/3", got)
	}
}

func TestFromHistogramEmpty(t *testing.T) {
	c := FromHistogram(histogram.NewDense(1), 1)
	if c.Eval(0) != 1 || c.Eval(100) != 1 {
		t.Fatal("empty histogram must be all-miss")
	}
}

func TestFromHistogramPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromHistogram(histogram.NewDense(1), 0)
}

func TestCurveMonotoneFromHistogram(t *testing.T) {
	// Any histogram yields a non-increasing curve.
	err := quick.Check(func(ds []uint16, cold uint8) bool {
		h := histogram.NewDense(16)
		for _, d := range ds {
			h.Add(uint64(d%1000) + 1)
		}
		for i := 0; i < int(cold); i++ {
			h.AddCold()
		}
		c := FromHistogram(h, 1)
		for i := 1; i < c.Len(); i++ {
			if c.Miss[i] > c.Miss[i-1]+1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMAE(t *testing.T) {
	a := FromPoints([]uint64{0, 10}, []float64{1, 0})
	b := FromPoints([]uint64{0, 10}, []float64{1, 0.2})
	at := []uint64{10}
	if got := MAE(a, b, at); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	if MAE(a, b, nil) != 0 {
		t.Fatal("empty evaluation set must give 0")
	}
	if MAE(a, a, []uint64{0, 3, 10, 50}) != 0 {
		t.Fatal("self MAE must be 0")
	}
}

func TestEvenSizes(t *testing.T) {
	sizes := EvenSizes(4000, 40)
	if len(sizes) != 40 {
		t.Fatalf("len = %d", len(sizes))
	}
	if sizes[0] != 100 || sizes[39] != 4000 {
		t.Fatalf("range %d..%d", sizes[0], sizes[39])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes must be strictly increasing")
		}
	}
	if EvenSizes(0, 10) != nil || EvenSizes(100, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
	// Tiny WSS collapses duplicates.
	small := EvenSizes(3, 10)
	for i := 1; i < len(small); i++ {
		if small[i] <= small[i-1] {
			t.Fatal("dedup failed")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	c := FromPoints([]uint64{0, 5}, []float64{1, 0.25})
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "0,1.000000\n5,0.250000\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := FromPoints([]uint64{0, 10, 20}, []float64{1, 0.5, 0.1})
	c.Interp = InterpStep
	var buf strings.Builder
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Interp != InterpStep || back.Len() != 3 || back.Eval(10) != 0.5 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{"sizes":[1],"miss":[0.5,0.6]}`,          // length mismatch
		`{"sizes":[2,1],"miss":[0.5,0.6]}`,        // not increasing
		`{"sizes":[1],"miss":[1.5]}`,              // out of range
		`{"sizes":[1],"miss":[0.5],"interp":"x"}`, // bad interp
		`{`, // malformed
	}
	for _, in := range bad {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q must fail", in)
		}
	}
}

func TestDownsample(t *testing.T) {
	sizes := make([]uint64, 100)
	miss := make([]float64, 100)
	for i := range sizes {
		sizes[i] = uint64(i + 1)
		miss[i] = 1 - float64(i)/100
	}
	c := FromPoints(sizes, miss)
	d := c.Downsample(10)
	if d.Len() > 10 {
		t.Fatalf("downsample len %d", d.Len())
	}
	if d.Sizes[0] != 1 || d.Sizes[d.Len()-1] != 100 {
		t.Fatal("downsample must keep endpoints")
	}
	if got := c.Downsample(200); got != c {
		t.Fatal("downsample below breakpoint count must be identity")
	}
}

func TestDownsampleEdgeCases(t *testing.T) {
	sizes := make([]uint64, 50)
	miss := make([]float64, 50)
	for i := range sizes {
		sizes[i] = uint64(i + 1)
		miss[i] = 1 - float64(i)/50
	}
	c := FromPoints(sizes, miss)

	// n == 1 keeps only the last breakpoint (used to divide by zero).
	d := c.Downsample(1)
	if d.Len() != 1 || d.Sizes[0] != 50 || d.Miss[0] != c.Miss[49] {
		t.Fatalf("Downsample(1) = %v/%v", d.Sizes, d.Miss)
	}
	if d.Interp != c.Interp {
		t.Fatal("Downsample(1) must preserve interpolation mode")
	}

	// n == 2 keeps both endpoints.
	d2 := c.Downsample(2)
	if d2.Len() != 2 || d2.Sizes[0] != 1 || d2.Sizes[1] != 50 {
		t.Fatalf("Downsample(2) sizes = %v", d2.Sizes)
	}

	// Curve shorter than n is the identity (same object).
	short := FromPoints([]uint64{1, 2}, []float64{0.5, 0.1})
	if short.Downsample(5) != short {
		t.Fatal("short curve must be returned unchanged")
	}
	// n <= 0 is the identity too.
	if c.Downsample(0) != c || c.Downsample(-3) != c {
		t.Fatal("non-positive n must be the identity")
	}

	// Duplicate collapsed indexes: many breakpoints squeezed into few
	// slots must stay strictly increasing.
	d3 := c.Downsample(7)
	for i := 1; i < d3.Len(); i++ {
		if d3.Sizes[i] <= d3.Sizes[i-1] {
			t.Fatalf("downsampled sizes not strictly increasing: %v", d3.Sizes)
		}
	}
}

func TestEvenSizesEdgeCases(t *testing.T) {
	// n == 1 yields exactly the WSS point.
	if got := EvenSizes(1000, 1); len(got) != 1 || got[0] != 1000 {
		t.Fatalf("EvenSizes(1000, 1) = %v", got)
	}
	// wss == 1 collapses every slot onto size 1.
	if got := EvenSizes(1, 25); len(got) != 1 || got[0] != 1 {
		t.Fatalf("EvenSizes(1, 25) = %v", got)
	}
	// n > wss dedups to exactly wss strictly-increasing sizes.
	got := EvenSizes(5, 40)
	if len(got) != 5 {
		t.Fatalf("EvenSizes(5, 40) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sizes not strictly increasing: %v", got)
		}
	}
	if got[len(got)-1] != 5 {
		t.Fatalf("last size %d, want wss", got[len(got)-1])
	}
}
