package mrc

import (
	"math"
	"math/rand"
	"testing"

	"krr/internal/histogram"
)

// fillRandom populates a histogram with a random mix of finite
// distances (up to maxDist) and cold misses, returning (total refs,
// cold refs). maxDist stays small for Dense — it allocates one slot
// per distance — and large for Log.
func fillRandom(rng *rand.Rand, h histogram.Histogram, maxDist int64) (total, cold uint64) {
	n := 1 + rng.Intn(2000)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			h.AddCold()
			cold++
		} else {
			// Mix short and long distances so both the head buckets and
			// the tail are exercised.
			var d uint64
			if rng.Float64() < 0.5 {
				d = 1 + uint64(rng.Intn(64))
			} else {
				d = 1 + uint64(rng.Int63n(maxDist))
			}
			h.Add(d)
		}
		total++
	}
	return total, cold
}

// checkCurveInvariants asserts the FromHistogram output contract:
// starts at (0, 1), sizes strictly increasing, miss ratios within
// [0, 1] and non-increasing, and the tail equal to the cold-miss
// ratio.
func checkCurveInvariants(t *testing.T, c *Curve, total, cold uint64, scale float64) {
	t.Helper()
	if len(c.Sizes) == 0 || c.Sizes[0] != 0 || c.Miss[0] != 1 {
		t.Fatalf("curve must start at (0, 1); got %d points, first (%d, %v)",
			len(c.Sizes), c.Sizes[0], c.Miss[0])
	}
	if len(c.Sizes) != len(c.Miss) {
		t.Fatalf("len(Sizes) = %d != len(Miss) = %d", len(c.Sizes), len(c.Miss))
	}
	for i := 1; i < len(c.Sizes); i++ {
		if c.Sizes[i] <= c.Sizes[i-1] {
			t.Fatalf("sizes not strictly increasing at %d: %d after %d (scale %v)",
				i, c.Sizes[i], c.Sizes[i-1], scale)
		}
		if c.Miss[i] < 0 || c.Miss[i] > 1 {
			t.Fatalf("miss[%d] = %v out of [0, 1]", i, c.Miss[i])
		}
		if c.Miss[i] > c.Miss[i-1] {
			t.Fatalf("miss increases at %d: %v after %v (scale %v)",
				i, c.Miss[i], c.Miss[i-1], scale)
		}
	}
	wantTail := float64(cold) / float64(total)
	if got := c.Miss[len(c.Miss)-1]; math.Abs(got-wantTail) > 1e-12 {
		t.Fatalf("tail miss = %v, want cold ratio %v", got, wantTail)
	}
}

// TestFromHistogramProperties is the randomized contract check for
// FromHistogram over both histogram implementations and a spread of
// scales (1 = unsampled, 1/R for sampled streams, W/R for sharded
// merges).
func TestFromHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var h histogram.Histogram
		maxDist := int64(1) << 30
		if trial%2 == 0 {
			h = histogram.NewDense(1 + rng.Intn(512))
			maxDist = 8192
		} else {
			h = histogram.NewLog()
		}
		total, cold := fillRandom(rng, h, maxDist)
		// Scales from heavy downsampling rescale (1/0.001) down to
		// fractional (distance-compressing) values.
		scale := math.Exp(rng.Float64()*math.Log(2000)) / 2 // [0.5, 1000)
		c := FromHistogram(h, scale)
		checkCurveInvariants(t, c, total, cold, scale)
	}
}

// TestFromHistogramColdOnly pins the degenerate all-cold stream: the
// curve never drops below 1 anywhere.
func TestFromHistogramColdOnly(t *testing.T) {
	h := histogram.NewDense(4)
	for i := 0; i < 10; i++ {
		h.AddCold()
	}
	c := FromHistogram(h, 1)
	for _, size := range []uint64{0, 1, 100, 1 << 40} {
		if got := c.Eval(size); got != 1 {
			t.Fatalf("all-cold stream: miss(%d) = %v, want 1", size, got)
		}
	}
}
