// Package histogram implements the stack-distance histograms (SDH)
// behind every MRC in this repository. A stack algorithm emits one
// distance per reference; the miss ratio of a cache of size c is the
// fraction of references whose distance exceeds c (plus cold misses),
// so an MRC is one cumulative pass over the histogram (§2.1).
//
// Two representations are provided. Dense keeps an exact count per
// distance and suits object-granularity distances (bounded by the
// number of distinct sampled objects). Log keeps HDR-style
// logarithmic buckets with 64 sub-buckets per octave (relative error
// <= 1/64) and suits byte-granularity distances, which can span nine
// orders of magnitude.
package histogram

import "math/bits"

// Histogram is the write interface shared by both representations.
type Histogram interface {
	// Add records one reference with the given finite stack distance
	// (distance >= 1; 0 is treated as 1).
	Add(distance uint64)
	// AddN records count references at one finite stack distance in
	// O(1) — the bulk form of Add for correction terms (SHARDS_adj
	// shortfall credits) and histogram merges.
	AddN(distance, count uint64)
	// AddCold records one first-touch reference (infinite distance).
	AddCold()
	// Total returns the number of recorded references.
	Total() uint64
	// Cold returns the number of cold (infinite-distance) references.
	Cold() uint64
	// Buckets iterates finite distances in increasing order, calling
	// fn with a representative distance and the count recorded at it.
	Buckets(fn func(distance, count uint64))
}

// Dense is an exact per-distance histogram.
type Dense struct {
	counts []uint64 // counts[d] for distance d; index 0 unused
	cold   uint64
	total  uint64
}

// NewDense returns an empty dense histogram with capacity hint n.
func NewDense(n int) *Dense {
	if n < 1 {
		n = 1
	}
	return &Dense{counts: make([]uint64, 0, n+1)}
}

// Add records one finite distance.
func (h *Dense) Add(distance uint64) {
	if distance == 0 {
		distance = 1
	}
	for uint64(len(h.counts)) <= distance {
		h.counts = append(h.counts, 0)
	}
	h.counts[distance]++
	h.total++
}

// AddN records count references at one finite distance.
func (h *Dense) AddN(distance, count uint64) {
	if count == 0 {
		return
	}
	if distance == 0 {
		distance = 1
	}
	for uint64(len(h.counts)) <= distance {
		h.counts = append(h.counts, 0)
	}
	h.counts[distance] += count
	h.total += count
}

// AddCold records one cold miss.
func (h *Dense) AddCold() {
	h.cold++
	h.total++
}

// Total returns the number of recorded references.
func (h *Dense) Total() uint64 { return h.total }

// Cold returns the number of cold references.
func (h *Dense) Cold() uint64 { return h.cold }

// MaxDistance returns the largest recorded finite distance (0 if none).
func (h *Dense) MaxDistance() uint64 {
	for d := len(h.counts) - 1; d >= 1; d-- {
		if h.counts[d] != 0 {
			return uint64(d)
		}
	}
	return 0
}

// Count returns the exact count at one distance.
func (h *Dense) Count(distance uint64) uint64 {
	if distance >= uint64(len(h.counts)) {
		return 0
	}
	return h.counts[distance]
}

// Buckets iterates nonzero distances in increasing order.
func (h *Dense) Buckets(fn func(distance, count uint64)) {
	for d := 1; d < len(h.counts); d++ {
		if c := h.counts[d]; c != 0 {
			fn(uint64(d), c)
		}
	}
}

// MemBytes reports the resident size of the histogram's backing
// array — the footprint-accounting counterpart of the §5.6 stack
// metadata numbers.
func (h *Dense) MemBytes() uint64 { return uint64(cap(h.counts))*8 + 24 }

// Clone returns an independent deep copy — the basis for
// non-destructive snapshot reads, where a correction or flush is
// applied to the copy while the live histogram keeps accumulating.
func (h *Dense) Clone() *Dense {
	out := &Dense{cold: h.cold, total: h.total}
	out.counts = append(out.counts, h.counts...)
	return out
}

// Merge folds other into h.
func (h *Dense) Merge(other *Dense) {
	other.Buckets(func(d, c uint64) {
		for uint64(len(h.counts)) <= d {
			h.counts = append(h.counts, 0)
		}
		h.counts[d] += c
	})
	h.cold += other.cold
	h.total += other.total
}

const (
	logSubBits  = 6
	logSubCount = 1 << logSubBits // sub-buckets per octave
)

// Log is a logarithmic histogram: exact below logSubCount, then 64
// sub-buckets per power of two. Suitable for byte distances.
type Log struct {
	counts []uint64
	cold   uint64
	total  uint64
}

// NewLog returns an empty logarithmic histogram.
func NewLog() *Log { return &Log{} }

// logIndex maps a distance to its bucket index.
func logIndex(v uint64) int {
	if v < logSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= logSubBits
	shift := uint(e - logSubBits)
	sub := int(v>>shift) - logSubCount
	return (e-logSubBits+1)*logSubCount + sub
}

// logLowerBound inverts logIndex to the smallest distance in a bucket.
func logLowerBound(idx int) uint64 {
	block := idx >> logSubBits
	sub := idx & (logSubCount - 1)
	if block == 0 {
		return uint64(sub)
	}
	// Saturate instead of overflowing for indexes past the top octave
	// (only reachable when asking for the bound of the bucket after the
	// one containing values near 1<<64).
	if block-1 >= 64-bits.Len64(uint64(logSubCount+sub))+1 {
		return ^uint64(0)
	}
	return uint64(logSubCount+sub) << uint(block-1)
}

// logRepresentative returns the midpoint of a bucket, used as the
// distance reported during iteration.
func logRepresentative(idx int) uint64 {
	lo := logLowerBound(idx)
	block := idx >> logSubBits
	if block == 0 {
		return lo
	}
	width := uint64(1) << uint(block-1)
	return lo + width/2
}

// Add records one finite distance.
func (h *Log) Add(distance uint64) {
	if distance == 0 {
		distance = 1
	}
	idx := logIndex(distance)
	for len(h.counts) <= idx {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx]++
	h.total++
}

// AddN records count references at one finite distance.
func (h *Log) AddN(distance, count uint64) {
	if count == 0 {
		return
	}
	if distance == 0 {
		distance = 1
	}
	idx := logIndex(distance)
	for len(h.counts) <= idx {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx] += count
	h.total += count
}

// AddCold records one cold miss.
func (h *Log) AddCold() {
	h.cold++
	h.total++
}

// Total returns the number of recorded references.
func (h *Log) Total() uint64 { return h.total }

// Cold returns the number of cold references.
func (h *Log) Cold() uint64 { return h.cold }

// Buckets iterates nonzero buckets in increasing distance order.
func (h *Log) Buckets(fn func(distance, count uint64)) {
	for idx, c := range h.counts {
		if c != 0 {
			fn(logRepresentative(idx), c)
		}
	}
}

// MemBytes reports the resident size of the histogram's backing array.
func (h *Log) MemBytes() uint64 { return uint64(cap(h.counts))*8 + 24 }

// Clone returns an independent deep copy.
func (h *Log) Clone() *Log {
	out := &Log{cold: h.cold, total: h.total}
	out.counts = append(out.counts, h.counts...)
	return out
}

// Merge folds other into h.
func (h *Log) Merge(other *Log) {
	for idx, c := range other.counts {
		if c == 0 {
			continue
		}
		for len(h.counts) <= idx {
			h.counts = append(h.counts, 0)
		}
		h.counts[idx] += c
	}
	h.cold += other.cold
	h.total += other.total
}
