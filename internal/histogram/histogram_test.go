package histogram

import (
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	h := NewDense(10)
	h.Add(1)
	h.Add(3)
	h.Add(3)
	h.AddCold()
	if h.Total() != 4 || h.Cold() != 1 {
		t.Fatalf("total=%d cold=%d", h.Total(), h.Cold())
	}
	if h.Count(3) != 2 || h.Count(1) != 1 || h.Count(2) != 0 {
		t.Fatal("counts wrong")
	}
	if h.MaxDistance() != 3 {
		t.Fatalf("MaxDistance = %d", h.MaxDistance())
	}
}

func TestDenseZeroClampedToOne(t *testing.T) {
	h := NewDense(4)
	h.Add(0)
	if h.Count(1) != 1 {
		t.Fatal("distance 0 must clamp to 1")
	}
}

func TestDenseBucketsOrdered(t *testing.T) {
	h := NewDense(8)
	for _, d := range []uint64{5, 1, 9, 5, 2} {
		h.Add(d)
	}
	var last uint64
	var sum uint64
	h.Buckets(func(d, c uint64) {
		if d <= last {
			t.Fatalf("bucket order violated: %d after %d", d, last)
		}
		last = d
		sum += c
	})
	if sum != 5 {
		t.Fatalf("bucket counts sum %d, want 5", sum)
	}
}

func TestDenseMerge(t *testing.T) {
	a, b := NewDense(4), NewDense(4)
	a.Add(1)
	a.AddCold()
	b.Add(1)
	b.Add(7)
	a.Merge(b)
	if a.Total() != 4 || a.Cold() != 1 || a.Count(1) != 2 || a.Count(7) != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestDenseEmptyMaxDistance(t *testing.T) {
	if NewDense(0).MaxDistance() != 0 {
		t.Fatal("empty histogram MaxDistance must be 0")
	}
}

func TestLogIndexMonotone(t *testing.T) {
	last := -1
	for v := uint64(1); v < 1<<20; v = v + 1 + v/37 {
		idx := logIndex(v)
		if idx < last {
			t.Fatalf("logIndex not monotone at %d", v)
		}
		last = idx
	}
}

func TestLogIndexLowerBoundInverse(t *testing.T) {
	// The lower bound of the bucket containing v must be <= v, and v
	// must be below the lower bound of the next bucket.
	err := quick.Check(func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		idx := logIndex(v)
		lo := logLowerBound(idx)
		next := logLowerBound(idx + 1)
		// The very top bucket's upper bound (2^64) saturates to
		// MaxUint64, which legitimately contains MaxUint64 itself.
		return lo <= v && (v < next || next == ^uint64(0))
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogRelativeError(t *testing.T) {
	// Representative distance must be within 1/64 relative error.
	for v := uint64(1); v < 1<<30; v = v*2 + 3 {
		rep := logRepresentative(logIndex(v))
		var diff float64
		if rep > v {
			diff = float64(rep-v) / float64(v)
		} else {
			diff = float64(v-rep) / float64(v)
		}
		if diff > 1.0/logSubCount+1e-9 {
			t.Fatalf("v=%d rep=%d relative error %v", v, rep, diff)
		}
	}
}

func TestLogSmallValuesExact(t *testing.T) {
	h := NewLog()
	for v := uint64(1); v < logSubCount; v++ {
		h.Add(v)
	}
	n := uint64(0)
	h.Buckets(func(d, c uint64) {
		if c != 1 {
			t.Fatalf("distance %d count %d", d, c)
		}
		n++
	})
	if n != logSubCount-1 {
		t.Fatalf("expected %d exact buckets, got %d", logSubCount-1, n)
	}
}

func TestLogTotals(t *testing.T) {
	h := NewLog()
	h.Add(1)
	h.Add(1 << 40)
	h.AddCold()
	if h.Total() != 3 || h.Cold() != 1 {
		t.Fatalf("total=%d cold=%d", h.Total(), h.Cold())
	}
}

func TestLogMerge(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.Add(100)
	b.Add(100)
	b.Add(1 << 33)
	b.AddCold()
	a.Merge(b)
	if a.Total() != 4 || a.Cold() != 1 {
		t.Fatalf("total=%d cold=%d", a.Total(), a.Cold())
	}
	var sum uint64
	a.Buckets(func(_, c uint64) { sum += c })
	if sum != 3 {
		t.Fatalf("finite count %d, want 3", sum)
	}
}

func TestLogBucketsOrdered(t *testing.T) {
	h := NewLog()
	for v := uint64(1); v < 1<<22; v = v*3 + 1 {
		h.Add(v)
	}
	var last uint64
	h.Buckets(func(d, _ uint64) {
		if d <= last {
			t.Fatalf("log buckets out of order: %d after %d", d, last)
		}
		last = d
	})
}

func TestInterfaceCompliance(t *testing.T) {
	var _ Histogram = NewDense(1)
	var _ Histogram = NewLog()
}

// collect snapshots a histogram as (cold, total, bucket map) for exact
// comparison.
func collect(h Histogram) (uint64, uint64, map[uint64]uint64) {
	m := map[uint64]uint64{}
	h.Buckets(func(d, c uint64) { m[d] += c })
	return h.Cold(), h.Total(), m
}

// sameHist fails the test unless a and b are bucket-for-bucket equal.
func sameHist(t *testing.T, label string, a, b Histogram) {
	t.Helper()
	ac, at, am := collect(a)
	bc, bt, bm := collect(b)
	if ac != bc || at != bt {
		t.Fatalf("%s: cold/total (%d,%d) != (%d,%d)", label, ac, at, bc, bt)
	}
	if len(am) != len(bm) {
		t.Fatalf("%s: bucket counts differ: %d vs %d", label, len(am), len(bm))
	}
	for d, c := range am {
		if bm[d] != c {
			t.Fatalf("%s: bucket %d: %d != %d", label, d, c, bm[d])
		}
	}
}

// TestDenseMergeExact: merging W shard histograms is bucket-for-bucket
// identical to one histogram fed the concatenated stream — the
// property the sharded profiler's final merge relies on.
func TestDenseMergeExact(t *testing.T) {
	const shards = 5
	parts := make([]*Dense, shards)
	for i := range parts {
		parts[i] = NewDense(8)
	}
	whole := NewDense(8)
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 20_000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		s := parts[rng%shards]
		switch d := rng >> 32 % 4000; {
		case d == 0:
			s.AddCold()
			whole.AddCold()
		default:
			s.Add(d)
			whole.Add(d)
		}
	}
	merged := NewDense(1)
	for _, p := range parts {
		merged.Merge(p)
	}
	sameHist(t, "dense", merged, whole)
}

// TestLogMergeExact is the Dense exactness property on the log-bucketed
// byte histogram, spanning several octaves and sub-bucket boundaries.
func TestLogMergeExact(t *testing.T) {
	const shards = 4
	parts := make([]*Log, shards)
	for i := range parts {
		parts[i] = NewLog()
	}
	whole := NewLog()
	rng := uint64(12345)
	for i := 0; i < 20_000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		s := parts[rng%shards]
		d := rng >> 16 % (1 << 34)
		if d == 0 {
			s.AddCold()
			whole.AddCold()
			continue
		}
		s.Add(d)
		whole.Add(d)
	}
	merged := NewLog()
	for _, p := range parts {
		merged.Merge(p)
	}
	sameHist(t, "log", merged, whole)
}

// TestMergeEmpty: merging an empty histogram is a no-op, and merging
// into an empty histogram copies the source exactly.
func TestMergeEmpty(t *testing.T) {
	a := NewDense(4)
	a.Add(3)
	a.AddCold()
	a.Merge(NewDense(4))
	if a.Total() != 2 || a.Cold() != 1 || a.Count(3) != 1 {
		t.Fatalf("merge with empty changed a: %+v", a)
	}
	b := NewDense(1)
	b.Merge(a)
	sameHist(t, "empty-dst", b, a)

	l := NewLog()
	l.Add(77)
	l.Merge(NewLog())
	if l.Total() != 1 {
		t.Fatal("log merge with empty changed totals")
	}
	m := NewLog()
	m.Merge(l)
	sameHist(t, "empty-dst-log", m, l)
}

func TestAddNMatchesRepeatedAdd(t *testing.T) {
	loop, bulk := NewDense(8), NewDense(8)
	for _, d := range []uint64{1, 5, 0, 300} {
		for i := 0; i < 1000; i++ {
			loop.Add(d)
		}
		bulk.AddN(d, 1000)
	}
	if loop.Total() != bulk.Total() {
		t.Fatalf("totals differ: %d vs %d", loop.Total(), bulk.Total())
	}
	type bucket struct{ d, c uint64 }
	collect := func(h Histogram) []bucket {
		var out []bucket
		h.Buckets(func(d, c uint64) { out = append(out, bucket{d, c}) })
		return out
	}
	a, b := collect(loop), collect(bulk)
	if len(a) != len(b) {
		t.Fatalf("bucket counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAddNLogMatchesRepeatedAdd(t *testing.T) {
	loop, bulk := NewLog(), NewLog()
	for _, d := range []uint64{1, 63, 64, 100000, 1 << 40} {
		for i := 0; i < 137; i++ {
			loop.Add(d)
		}
		bulk.AddN(d, 137)
	}
	if loop.Total() != bulk.Total() {
		t.Fatalf("totals differ: %d vs %d", loop.Total(), bulk.Total())
	}
	match := true
	i := 0
	loop.Buckets(func(d, c uint64) {
		found := false
		j := 0
		bulk.Buckets(func(bd, bc uint64) {
			if j == i && (bd != d || bc != c) {
				match = false
			}
			if j == i {
				found = true
			}
			j++
		})
		if !found {
			match = false
		}
		i++
	})
	if !match {
		t.Fatal("log buckets differ between Add loop and AddN")
	}
}

func TestAddNZeroCountIsNoop(t *testing.T) {
	d := NewDense(4)
	d.AddN(7, 0)
	if d.Total() != 0 {
		t.Fatal("AddN with count 0 must record nothing")
	}
	l := NewLog()
	l.AddN(7, 0)
	if l.Total() != 0 {
		t.Fatal("AddN with count 0 must record nothing")
	}
}
