package krr

// Facade exports for the repository's extension features: the AET
// exact-LRU model recommended for large K, miniature cache
// simulation, the DLRU-style adaptive sampling-size controller, and
// generalized sampled-eviction priorities.

import (
	"krr/internal/aet"
	"krr/internal/counterstacks"
	"krr/internal/dlru"
	"krr/internal/minisim"
	"krr/internal/nsp"
	"krr/internal/simulator"
)

// CounterStack models exact LRU from staggered probabilistic
// cardinality counters (Wires et al., OSDI '14) — §6.1.
type CounterStack = counterstacks.Stack

// CounterStackConfig assembles a CounterStack.
type CounterStackConfig = counterstacks.Config

// NewCounterStack builds a Counter Stacks model.
func NewCounterStack(cfg CounterStackConfig) *CounterStack { return counterstacks.New(cfg) }

// AETMonitor models exact LRU from the reuse-time distribution (Hu et
// al., ATC '16). The paper recommends it over KRR once K >= 32, where
// K-LRU has converged to LRU (§5.3).
type AETMonitor = aet.Monitor

// NewAETMonitor returns an AET monitor; samplingRate in (0, 1)
// enables spatial sampling.
func NewAETMonitor(samplingRate float64) *AETMonitor { return aet.New(samplingRate) }

// MiniSim emulates K-LRU caches at many sizes with scaled-down
// miniature caches over a sampled stream (Waldspurger et al., ATC '17).
type MiniSim = minisim.Sim

// MiniSimConfig assembles a MiniSim.
type MiniSimConfig = minisim.Config

// NewMiniSim builds a miniature simulation.
func NewMiniSim(cfg MiniSimConfig) (*MiniSim, error) { return minisim.New(cfg) }

// DLRUController adapts a live cache's eviction sampling size online,
// driven by KRR shadow profilers (the DLRU idea, §1).
type DLRUController = dlru.Controller

// DLRUConfig assembles a DLRUController.
type DLRUConfig = dlru.Config

// TunableCache is a live cache whose sampling size can be
// reconfigured online.
type TunableCache = dlru.Tunable

// NewDLRUController builds a controller driving cache (nil for
// advisory mode).
func NewDLRUController(cfg DLRUConfig, cache TunableCache) (*DLRUController, error) {
	return dlru.New(cfg, cache)
}

// NewTunableKLRUCache builds a K-LRU simulator that satisfies
// TunableCache.
func NewTunableKLRUCache(capacityObjects, k int, seed uint64) interface {
	Cache
	TunableCache
} {
	return simulator.NewKLRU(simulator.ObjectCapacity(capacityObjects), k, true, seed)
}

// EvictionPriority scores an object for sampled eviction; lower
// scores evict first.
type EvictionPriority = simulator.Priority

// Sampled-eviction priorities beyond recency (§7 future work).
var (
	// PriorityLRU evicts the sample's least recently used object.
	PriorityLRU EvictionPriority = simulator.Recency{}
	// PriorityLFU evicts the sample's least frequently used object.
	PriorityLFU EvictionPriority = simulator.Frequency{}
	// PriorityHyperbolic evicts by lowest frequency-per-lifetime.
	PriorityHyperbolic EvictionPriority = simulator.Hyperbolic{}
	// PriorityTTL evicts the sample's soonest-to-expire object.
	PriorityTTL EvictionPriority = simulator.TTL{}
)

// SampledCacheConfig assembles a sampled-eviction cache with a
// pluggable priority.
type SampledCacheConfig = simulator.SampledConfig

// NewSampledCache builds a sampled-eviction cache.
func NewSampledCache(cfg SampledCacheConfig) Cache { return simulator.NewSampled(cfg) }

// NSPStack computes one-pass stack distances for NSP-class priority
// policies (Bilardi et al., CF '11): perfect LFU and MRU.
type NSPStack = nsp.Stack

// NewLFUStack returns an NSP stack modeling a perfect-LFU cache.
func NewLFUStack(seed uint64) *NSPStack { return nsp.New(nsp.LFU{}, seed) }

// NewMRUStack returns an NSP stack modeling an MRU cache.
func NewMRUStack(seed uint64) *NSPStack { return nsp.New(nsp.MRU{}, seed) }

// OPTMRC computes Belady's clairvoyant-optimal miss ratio curve — the
// lower bound against which every replacement policy is read.
func OPTMRC(tr *Trace, sizes []uint64, workers int) *Curve {
	return simulator.OPTMRC(tr, sizes, workers)
}

// ObjectCapacity expresses a capacity in objects.
func ObjectCapacity(n int) simulator.Capacity { return simulator.ObjectCapacity(n) }

// ByteCapacityOf expresses a capacity in bytes.
func ByteCapacityOf(b uint64) simulator.Capacity { return simulator.ByteCapacity(b) }
