# Developer entry points. `make check` is the CI gate.

GO ?= go

.PHONY: check fast test bench bench-smoke results difftest fuzz-short serve-smoke ingest-smoke loadbench

check: ## vet + build + race tests + bench smoke
	./scripts/check.sh

fast: ## check without -race
	./scripts/check.sh fast

test:
	$(GO) test ./...

bench: ## full table/figure benchmark sweep
	$(GO) test -run=NONE -bench=. -benchmem .

bench-smoke: ## compile-and-run sanity pass over the Table 5.3 benches
	$(GO) test -run=NONE -bench=Table5_3 -benchtime=100x .

serve-smoke: ## end-to-end krrserve test: build, ingest, scrape, SIGTERM
	$(GO) test -count=1 -run TestServeSmoke -v ./cmd/krrserve/

ingest-smoke: ## krrload -> krrserve wire plane over loopback, zero drops required
	$(GO) test -count=1 -run TestIngestSmoke -v ./cmd/krrserve/

loadbench: ## sustained wire-ingest throughput sweep (see results/ingest_bench.md)
	./scripts/loadbench.sh

results: ## regenerate the paper tables/figures under results/
	$(GO) run ./cmd/experiments -run all -out results

difftest: ## long randomized differential sweep (seed via DIFFTEST_SEED)
	$(GO) test -tags difftest -count=1 -run TestDifferentialRandomSweep -v ./internal/difftest/

fuzz-short: ## 10s per fuzz target: trace codec + model process loops
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz=FuzzModelProcess -fuzztime=10s ./internal/difftest/
