package krr_test

import (
	"fmt"

	"krr"
)

// ExampleBuildMRC models a Redis-style K-LRU cache in one pass and
// reads the predicted miss ratio at a candidate capacity.
func ExampleBuildMRC() {
	gen := krr.PresetReader("loop", 0.02, 1, false) // 1000-object loop
	curve, err := krr.BuildMRC(krr.Limit(gen, 50_000), krr.Config{
		K:    1, // pure random replacement: KRR is exact here
		Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	// Random replacement on a loop retains a useful fraction at half
	// the loop size (the fixed point of m = 1−e^(−2m) ≈ 0.80), where
	// exact LRU would miss everything.
	fmt.Printf("miss at half the loop: %.1f\n", curve.Eval(500))
	fmt.Printf("miss at the full loop: %.1f\n", curve.Eval(1000))
	// Output:
	// miss at half the loop: 0.8
	// miss at the full loop: 0.0
}

// ExampleNewProfiler shows streaming use with spatial sampling.
func ExampleNewProfiler() {
	p, err := krr.NewProfiler(krr.Config{K: 10, Seed: 1, SamplingRate: 0.5})
	if err != nil {
		panic(err)
	}
	gen := krr.PresetReader("zipf", 0.02, 3, false)
	for i := 0; i < 100_000; i++ {
		req, _ := gen.Next()
		p.Process(req) // negligible overhead next to serving the request
	}
	curve := p.ObjectMRC()
	fmt.Println("curve starts at miss ratio", curve.Eval(0))
	fmt.Println("sampled a strict subset:", p.Sampled() < p.Seen())
	// Output:
	// curve starts at miss ratio 1
	// sampled a strict subset: true
}

// ExampleKPrimeFor shows the paper's corrected stack exponent.
func ExampleKPrimeFor() {
	fmt.Printf("K=1  -> K' = %.2f (RR stack is already exact)\n", krr.KPrimeFor(1))
	fmt.Printf("K=10 -> K' = %.2f\n", krr.KPrimeFor(10))
	// Output:
	// K=1  -> K' = 1.00 (RR stack is already exact)
	// K=10 -> K' = 25.12
}

// ExampleMAE compares a model curve against ground-truth simulation —
// the paper's accuracy metric.
func ExampleMAE() {
	gen := krr.PresetReader("zipf", 0.01, 5, false)
	tr, _ := krr.Collect(gen, 40_000)

	model, _ := krr.BuildMRC(tr.Reader(), krr.Config{K: 5, Seed: 2})
	sizes := krr.EvenSizes(1000, 5)
	truth, _ := krr.SimulateMRC(tr, 5, sizes, 9, 2)

	fmt.Println("model tracks simulation:", krr.MAE(model, truth, sizes) < 0.05)
	// Output:
	// model tracks simulation: true
}
