// A/B benchmark-regression guard for the KRR hot path. Unlike the
// Go benchmark harness — which times each model in its own run, so a
// frequency shift or noisy neighbor between runs reads as a
// regression — this test interleaves short alternating measurement
// rounds of the models under one process and compares per-round
// medians, making the RATIOS robust to drift that hits all rounds
// alike. The absolute bounds encode the repo's standing perf claims:
// krr-bucket within 5x of aet, and backward krr within its historical
// envelope of aet, on the Table 5.1 configuration.
//
// The guard is opt-in (set KRR_BENCH_GUARD=1) because wall-clock
// assertions are only meaningful on an otherwise idle machine;
// scripts/check.sh runs it as its own stage.
package krr_test

import (
	"os"
	"sort"
	"testing"
	"time"

	"krr/internal/model"
	"krr/internal/trace"
)

// abRounds and abChunk size the measurement: each model is timed
// abRounds times in alternation, abChunk requests per round.
const (
	abRounds = 7
	abChunk  = 1 << 15
)

// abModel is one competitor in the interleaved comparison.
type abModel struct {
	name string
	m    model.Model
	ns   []float64 // per-round ns/req
}

// medianNs reports the model's median per-round ns/req.
func (a *abModel) medianNs() float64 {
	s := append([]float64(nil), a.ns...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// TestKRRHotPathABGuard holds the KRR hot-path speed ratios to their
// declared bounds with an interleaved A/B measurement.
func TestKRRHotPathABGuard(t *testing.T) {
	if os.Getenv("KRR_BENCH_GUARD") == "" {
		t.Skip("set KRR_BENCH_GUARD=1 to run the wall-clock A/B guard")
	}
	tr := benchTraceT(t, "msr-web", 1<<17)
	reqs := tr.Reqs

	mk := func(name string) *abModel {
		m, err := model.New(name, model.Options{Seed: 1, SamplingRate: 1})
		if err != nil {
			t.Fatal(err)
		}
		return &abModel{name: name, m: m}
	}
	models := []*abModel{mk("aet"), mk("krr-bucket"), mk("krr")}

	// Warm-up: populate each model's working state so every timed
	// round measures steady-state cost.
	for _, am := range models {
		for _, r := range reqs {
			am.m.Process(r)
		}
	}

	// Interleaved rounds: model A chunk, model B chunk, ... repeated,
	// so slow drift (thermal, scheduler) lands on every model equally.
	off := 0
	for round := 0; round < abRounds; round++ {
		for _, am := range models {
			start := time.Now()
			for i := 0; i < abChunk; i++ {
				am.m.Process(reqs[(off+i)%len(reqs)])
			}
			am.ns = append(am.ns, float64(time.Since(start).Nanoseconds())/abChunk)
		}
		off += abChunk
	}

	aet, bucket, krr := models[0].medianNs(), models[1].medianNs(), models[2].medianNs()
	t.Logf("median ns/req: aet=%.1f krr-bucket=%.1f krr=%.1f", aet, bucket, krr)
	t.Logf("ratios: bucket/aet=%.2f krr/aet=%.2f", bucket/aet, krr/aet)

	// Declared bounds, with headroom over the measured steady state
	// (~4.7x and ~50x when introduced): a breach means a real hot-path
	// regression, not measurement noise.
	if bucket > 5.0*aet {
		t.Errorf("krr-bucket median %.1f ns/req is %.2fx aet (%.1f ns/req), bound 5x",
			bucket, bucket/aet, aet)
	}
	if krr > 65.0*aet {
		t.Errorf("krr median %.1f ns/req is %.2fx aet (%.1f ns/req), bound 65x",
			krr, krr/aet, aet)
	}
}

// benchTraceT is benchTrace for tests.
func benchTraceT(t *testing.T, preset string, n int) *trace.Trace {
	t.Helper()
	tr, err := collectPreset(preset, n, false)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
