module krr

go 1.22
