#!/bin/sh
# check.sh — the repo's CI gate: vet, build, race-enabled tests, and a
# benchmark smoke pass (compile + a 100-iteration Table 5.3 sweep so
# the bench harness itself can't rot). Run from the repo root:
#
#   ./scripts/check.sh          # full gate
#   ./scripts/check.sh fast     # skip -race (quick local iteration)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

if [ "${1:-}" = "fast" ]; then
	echo "== go test (no race)"
	go test ./...
else
	echo "== go test -race"
	go test -race ./...
fi

echo "== bench smoke (Table 5.3, 100x)"
go test -run=NONE -bench=Table5_3 -benchtime=100x .

echo "check.sh: OK"
