#!/bin/sh
# check.sh — the repo's CI gate: formatting, vet, build, race-enabled
# tests, and a benchmark smoke pass (compile + a 100-iteration Table
# 5.3 sweep so the bench harness itself can't rot). Run from the repo
# root:
#
#   ./scripts/check.sh          # full gate
#   ./scripts/check.sh fast     # skip full -race (quick local iteration)
#
# The model-registry conformance suite (internal/model) always runs
# under -race, even in fast mode: it exercises the sharded fan-out
# pipeline, whose bugs are data races by construction.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== difftest-fast (differential harness, deterministic trials)"
go test -count=1 -run 'TestDifferential|TestCorpus|TestMetamorphic' ./internal/difftest/

echo "== cheform-fast (analytic tier: solver, fitter, declared envelopes)"
go test -count=1 ./internal/cheform/
go test -count=1 -run 'TestDifferentialAnalytic|TestAnalyticCurveInvariants' ./internal/difftest/

if [ "${1:-}" = "fast" ]; then
	echo "== go test (no race)"
	go test ./...
	echo "== model conformance + snapshots (-race)"
	go test -race -run 'TestConformance|TestSharded|TestSnapshot|TestQuiesce' ./internal/model/ ./internal/shardpipe/
	echo "== redislike + dlru (-race: duel counters, controller retarget)"
	go test -race ./internal/redislike/... ./internal/dlru/...
else
	echo "== go test -race"
	go test -race ./...
fi

echo "== duel-smoke (set-dueling tournament tracks the best static rival)"
go test -count=1 -run TestDuelSmoke ./internal/redislike/

echo "== krrserve smoke (build daemon, ingest over HTTP, scrape, SIGTERM)"
go test -count=1 -run TestServeSmoke ./cmd/krrserve/

echo "== fleet smoke (3 tenants, shared budget, /allocate plan checks)"
go test -count=1 -run TestFleetSmoke ./cmd/krrserve/

echo "== ingest smoke (krrload -> krrserve wire plane over loopback, zero drops)"
go test -count=1 -run TestIngestSmoke ./cmd/krrserve/

echo "== wire hot-path alloc guard (decode must stay allocation-free)"
go test -count=1 -run TestDecodeHotPathAllocFree ./internal/wire/

echo "== bench smoke (Table 5.3, 100x)"
go test -run=NONE -bench=Table5_3 -benchtime=100x .

echo "== KRR hot-path A/B guard (interleaved ratios vs aet)"
KRR_BENCH_GUARD=1 go test -count=1 -run TestKRRHotPathABGuard .

echo "check.sh: OK"
