// Package krr is a Go library for modeling random sampling-based LRU
// caches ("K-LRU", as implemented by Redis): given a request stream it
// constructs the miss ratio curve (MRC) a K-LRU cache of any size
// would exhibit, in a single pass, using the KRR probabilistic stack
// algorithm from
//
//	Junyao Yang, Yuchen Wang, Zhenlin Wang.
//	"Efficient Modeling of Random Sampling-Based LRU." ICPP 2021.
//
// The package is a facade over the implementation packages:
//
//   - Profiler (internal/core) — the KRR stack with O(K log M)
//     backward updates, optional byte-granularity distances for
//     variable object sizes, and SHARDS-style spatial sampling.
//   - Simulators (internal/simulator, internal/redislike) — ground
//     truth: exact LRU, K-LRU, and a Redis-like engine.
//   - Models (internal/model) — the unified streaming layer: every
//     MRC technique (KRR, Olken, SHARDS, AET, Counter Stacks, MIMIR,
//     NSP) behind one Model interface and name→factory registry; see
//     Models, NewModel and BuildMRCWith.
//   - Baselines (internal/olken, internal/shards, internal/stack) —
//     exact-LRU stack models and SHARDS.
//   - Workloads (internal/workload) — synthetic MSR-, YCSB- and
//     Twitter-like request generators.
//
// # Quick start
//
//	gen := krr.PresetReader("msr-web", 1.0, 42, false)
//	curve, err := krr.BuildMRC(krr.Limit(gen, 1_000_000), krr.Config{
//		K:            10,            // Redis maxmemory-samples
//		SamplingRate: 0.001,         // SHARDS spatial sampling
//	})
//	missRatio := curve.Eval(500_000) // cache of 500k objects
package krr

import (
	"krr/internal/core"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/sampling"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

// Version is the library version.
const Version = "1.0.0"

// Request is one cache reference: an opaque 64-bit key, an object
// size in bytes, and an operation.
type Request = trace.Request

// Op is a request operation.
type Op = trace.Op

// Operations.
const (
	OpGet    = trace.OpGet
	OpSet    = trace.OpSet
	OpDelete = trace.OpDelete
)

// Reader streams requests; Next returns io.EOF at the end.
type Reader = trace.Reader

// Trace is an in-memory request sequence.
type Trace = trace.Trace

// Curve is a miss ratio curve.
type Curve = mrc.Curve

// Config assembles a Profiler. The zero value is invalid: K must be
// at least 1.
type Config = core.Config

// Profiler builds K-LRU MRCs in one pass.
type Profiler = core.Profiler

// ShardedProfiler partitions one request stream across Config.Workers
// independent KRR stacks (hash-sharded by key, SHARDS-style) and
// merges their histograms. See NewShardedProfiler.
type ShardedProfiler = core.ShardedProfiler

// UpdateMethod selects the stack update sampler.
type UpdateMethod = core.UpdateMethod

// Update methods.
const (
	// UpdateBackward is Algorithm 2: O(K log M) per access (default).
	UpdateBackward = core.Backward
	// UpdateTopDown is Algorithm 1: O(K log² M) per access.
	UpdateTopDown = core.TopDown
	// UpdateLinear is Mattson's O(M) walk (reference baseline).
	UpdateLinear = core.Linear
)

// ByteMode selects byte-granularity distance handling for variable
// object sizes.
type ByteMode = core.ByteMode

// Byte modes.
const (
	// BytesOff disables byte-granularity distances.
	BytesOff = core.BytesOff
	// BytesUniform estimates byte distances assuming uniform sizes.
	BytesUniform = core.BytesUniform
	// BytesSizeArray enables the paper's var-KRR sizeArray.
	BytesSizeArray = core.BytesSizeArray
	// BytesFenwick enables exact Fenwick-tree byte distances.
	BytesFenwick = core.BytesFenwick
)

// BucketConfig assembles a BucketProfiler. The zero value is invalid:
// K must be at least 1; Ratio 0 selects DefaultBucketRatio.
type BucketConfig = core.BucketConfig

// BucketProfiler builds K-LRU MRCs with the bucketized KRR stack:
// geometric position buckets over a flat slot arena, O(log M) work
// per reference with no pow on the hot path, trading a bounded,
// ratio-dependent accuracy loss for a ~10x faster update than the
// backward sampler (see the krr-bucket model and
// difftest.BucketEnvelope).
type BucketProfiler = core.BucketProfiler

// DefaultBucketRatio is the bucketized stack's default geometric
// bucket growth ratio.
const DefaultBucketRatio = core.DefaultBucketRatio

// NewProfiler builds a KRR profiler.
func NewProfiler(cfg Config) (*Profiler, error) { return core.NewProfiler(cfg) }

// NewBucketProfiler builds a bucketized KRR profiler.
func NewBucketProfiler(cfg BucketConfig) (*BucketProfiler, error) {
	return core.NewBucketProfiler(cfg)
}

// NewShardedProfiler builds a cfg.Workers-way sharded profiler: the
// caller's goroutine routes requests to per-worker stacks over batched
// channels, and ObjectMRC/ByteMRC merge the per-shard histograms with
// the SHARDS distance rescaling. Feed it with Process/ProcessAll from
// a single goroutine and Close it (the MRC accessors do) before
// reading results.
func NewShardedProfiler(cfg Config) (*ShardedProfiler, error) {
	return core.NewShardedProfiler(cfg)
}

// BuildMRC drains the reader through a KRR profiler and returns the
// object-granularity miss ratio curve. With cfg.Workers > 1 the
// requests are fanned out across a sharded profiler pipeline.
func BuildMRC(r Reader, cfg Config) (*Curve, error) { return core.BuildMRC(r, cfg) }

// Model is a streaming MRC constructor from the unified model layer:
// any registered technique (KRR, Olken, SHARDS, AET, Counter Stacks,
// MIMIR, ...) behind one interface.
type Model = model.Model

// ModelOptions configures any registered model; the zero value is
// valid (K = 5, no sampling, object granularity, serial).
type ModelOptions = model.Options

// ModelInfo describes one registered model: name, provenance, cost
// summary, and capability flags.
type ModelInfo = model.Info

// ModelSnapshot is a non-finalizing curve read from a live model (see
// Model.Snapshot): the curves of the stream so far, with Process still
// legal afterwards. At end-of-stream it is bit-identical to the
// finalized curves. cmd/krrserve serves these over HTTP.
type ModelSnapshot = model.Snapshot

// Models lists every registered MRC model, sorted by name.
func Models() []ModelInfo { return model.All() }

// NewModel builds a registered model by name (or alias, e.g. "lru").
// ModelOptions.Workers > 1 wraps it in the sharded fan-out pipeline.
func NewModel(name string, opts ModelOptions) (Model, error) {
	return model.New(name, opts)
}

// BuildMRCWith drains the reader through the named registered model
// and returns the object-granularity miss ratio curve.
func BuildMRCWith(name string, r Reader, opts ModelOptions) (*Curve, error) {
	m, err := model.New(name, opts)
	if err != nil {
		return nil, err
	}
	if err := model.ProcessAll(m, r); err != nil {
		return nil, err
	}
	return m.ObjectMRC(), nil
}

// KPrimeFor returns the corrected stack exponent K′ = K^1.4 used to
// model a K-LRU cache with sampling size K.
func KPrimeFor(k int) float64 { return core.KPrimeFor(k) }

// MAE is the mean absolute error between two curves evaluated at the
// given cache sizes — the paper's accuracy metric.
func MAE(a, b *Curve, at []uint64) float64 { return mrc.MAE(a, b, at) }

// EvenSizes returns n cache sizes evenly spread over (0, wss].
func EvenSizes(wss uint64, n int) []uint64 { return mrc.EvenSizes(wss, n) }

// DefaultSamplingRate is the paper's default spatial sampling rate.
const DefaultSamplingRate = sampling.DefaultRate

// SamplingRateFor picks a spatial sampling rate that keeps at least
// ~8K objects in the sample for a workload with the given number of
// distinct objects.
func SamplingRateFor(distinctObjects int) float64 {
	return sampling.RateFor(distinctObjects)
}

// Limit bounds a reader to at most n requests.
func Limit(r Reader, n int) Reader { return trace.LimitReader(r, n) }

// Collect materializes up to n requests.
func Collect(r Reader, n int) (*Trace, error) { return trace.Collect(r, n) }

// PresetNames lists the built-in synthetic workload presets.
func PresetNames() []string { return workload.Names() }

// PresetReader instantiates a built-in workload preset as an
// unbounded request stream. scale multiplies the preset's key space;
// variable selects heterogeneous object sizes. It returns nil for an
// unknown preset name.
func PresetReader(name string, scale float64, seed uint64, variable bool) Reader {
	p, ok := workload.ByName(name)
	if !ok {
		return nil
	}
	return p.New(scale, seed, variable)
}

// Cache is a ground-truth cache simulator.
type Cache = simulator.Cache

// NewKLRUCache builds a random sampling-based LRU cache simulator
// with an object-count capacity, sampling size k, and "placing back"
// sampling (the Redis variant).
func NewKLRUCache(capacityObjects, k int, seed uint64) Cache {
	return simulator.NewKLRU(simulator.ObjectCapacity(capacityObjects), k, true, seed)
}

// NewKLRUByteCache is NewKLRUCache with a byte capacity.
func NewKLRUByteCache(capacityBytes uint64, k int, seed uint64) Cache {
	return simulator.NewKLRU(simulator.ByteCapacity(capacityBytes), k, true, seed)
}

// NewLRUCache builds an exact LRU cache simulator.
func NewLRUCache(capacityObjects int) Cache {
	return simulator.NewLRU(simulator.ObjectCapacity(capacityObjects))
}

// SimulateMRC produces a ground-truth K-LRU curve by simulating the
// trace at each capacity in parallel (workers <= 0 uses a default).
func SimulateMRC(tr *Trace, k int, sizes []uint64, seed uint64, workers int) (*Curve, error) {
	return simulator.KLRUMRC(tr, k, sizes, seed, workers)
}
