// Command tracestat characterizes a trace: popularity skew, reuse
// times, object sizes and operation mix — the §5.2-style workload
// summary, for built-in presets and imported binary traces alike.
//
// Usage:
//
//	tracestat -preset msr-web -n 1000000
//	tracestat -trace web.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"krr/internal/analysis"
	"krr/internal/trace"
	"krr/internal/workload"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "binary trace file (alternative to -preset)")
		preset    = flag.String("preset", "", "workload preset name")
		n         = flag.Int("n", 0, "request cap (0 = whole trace / preset default)")
		scale     = flag.Float64("scale", 1.0, "preset key-space scale")
		seed      = flag.Uint64("seed", 42, "random seed")
		variable  = flag.Bool("var", false, "variable object sizes for presets")
	)
	flag.Parse()

	r, err := openReader(*traceFile, *preset, *n, *scale, *seed, *variable)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}
	rep, err := analysis.Analyze(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("requests            %d\n", rep.Requests)
	fmt.Printf("distinct objects    %d\n", rep.DistinctObjects)
	fmt.Printf("cold miss ratio     %.4f\n", rep.ColdMissRatio)
	fmt.Printf("op mix              get %.3f / set %.3f / delete %.3f\n", rep.GetRatio, rep.SetRatio, rep.DeleteRatio)
	fmt.Printf("popularity          top-1 %.3f, top-10 %.3f, top-100 %.3f of requests\n",
		rep.TopShare1, rep.TopShare10, rep.TopShare100)
	fmt.Printf("zipf alpha (fit)    %.3f\n", rep.ZipfAlphaFit)
	fmt.Printf("reuse time p50/p90/p99   %d / %d / %d refs\n", rep.ReuseP50, rep.ReuseP90, rep.ReuseP99)
	fmt.Printf("object size mean/median/max  %.1f / %d / %d bytes\n",
		rep.MeanObjectSize, rep.MedianObjectSize, rep.MaxObjectSize)
	fmt.Printf("total / WSS bytes   %d / %d\n", rep.TotalBytes, rep.WSSBytes)
}

func openReader(file, preset string, n int, scale float64, seed uint64, variable bool) (trace.Reader, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		// The process exits after analysis; the descriptor lives as
		// long as we need it.
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return trace.LimitReader(br, n), nil
		}
		return br, nil
	}
	p, ok := workload.ByName(preset)
	if !ok {
		return nil, fmt.Errorf("unknown preset %q and no -trace given", preset)
	}
	count := n
	if count <= 0 {
		count = p.DefaultRequests
	}
	return trace.LimitReader(p.New(scale, seed, variable), count), nil
}
