// Command tracegen generates synthetic cache traces from the built-in
// workload presets (MSR-, YCSB- and Twitter-like substitutes) and
// writes them in the binary or CSV trace format.
//
// Usage:
//
//	tracegen -list
//	tracegen -preset msr-web -n 1000000 -scale 0.5 -o web.trace
//	tracegen -preset tw-26.0 -var -format csv -o tw.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"krr/internal/trace"
	"krr/internal/workload"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available presets and exit")
		preset   = flag.String("preset", "", "workload preset name (see -list)")
		n        = flag.Int("n", 0, "number of requests (0 = preset default)")
		scale    = flag.Float64("scale", 1.0, "key-space scale factor")
		seed     = flag.Uint64("seed", 42, "random seed")
		variable = flag.Bool("var", false, "variable object sizes (default: uniform 200 B)")
		format   = flag.String("format", "bin", "output format: bin or csv")
		out      = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Presets() {
			typ := p.Type
			if typ == "" {
				typ = "-"
			}
			fmt.Printf("%-14s %-8s type=%-2s default=%-9d %s\n", p.Name, p.Family, typ, p.DefaultRequests, p.Description)
		}
		return
	}
	p, ok := workload.ByName(*preset)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown preset %q (try -list)\n", *preset)
		os.Exit(1)
	}
	count := *n
	if count <= 0 {
		count = p.DefaultRequests
	}
	tr, err := trace.Collect(p.New(*scale, *seed, *variable), count)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "bin":
		err = trace.WriteBinary(w, tr)
	case "csv":
		err = trace.WriteCSV(w, tr)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d requests, %d distinct objects, WSS %d bytes\n",
		sum.Requests, sum.DistinctObjects, sum.WSSBytes)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
