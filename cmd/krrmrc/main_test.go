package main

import (
	"os"
	"path/filepath"
	"testing"

	"krr/internal/trace"
)

func TestLoadTraceFromPreset(t *testing.T) {
	tr, err := loadTrace("", "zipf", 5000, 0.02, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestLoadTraceUnknownPreset(t *testing.T) {
	if _, err := loadTrace("", "nope", 0, 1, 1, false); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	want := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Size: 100, Op: trace.OpGet},
		{Key: 2, Size: 200, Op: trace.OpSet},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, want); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := loadTrace(path, "", 0, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Reqs[1].Size != 200 {
		t.Fatalf("loaded %v", got.Reqs)
	}
	// Capped read.
	head, err := loadTrace(path, "", 1, 1, 1, false)
	if err != nil || head.Len() != 1 {
		t.Fatalf("capped read: len=%d err=%v", head.Len(), err)
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := loadTrace("/nonexistent/file", "", 0, 1, 1, false); err == nil {
		t.Fatal("missing file must error")
	}
}
