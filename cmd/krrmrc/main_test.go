package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krr/internal/trace"
)

func TestLoadTraceFromPreset(t *testing.T) {
	tr, err := loadTrace("", "zipf", 5000, 0.02, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5000 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestLoadTraceUnknownPreset(t *testing.T) {
	if _, err := loadTrace("", "nope", 0, 1, 1, false); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	want := &trace.Trace{Reqs: []trace.Request{
		{Key: 1, Size: 100, Op: trace.OpGet},
		{Key: 2, Size: 200, Op: trace.OpSet},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, want); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := loadTrace(path, "", 0, 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Reqs[1].Size != 200 {
		t.Fatalf("loaded %v", got.Reqs)
	}
	// Capped read.
	head, err := loadTrace(path, "", 1, 1, 1, false)
	if err != nil || head.Len() != 1 {
		t.Fatalf("capped read: len=%d err=%v", head.Len(), err)
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := loadTrace("/nonexistent/file", "", 0, 1, 1, false); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestResolveModel(t *testing.T) {
	cases := []struct {
		name, method string
		want         string
		wantErr      bool
	}{
		{"krr", "", "krr", false},
		{"krr", "backward", "krr", false},
		{"krr", "topdown", "krr-topdown", false},
		{"krr", "linear", "krr-linear", false},
		{"lru", "", "lru", false}, // alias resolves in the registry
		{"aet", "", "aet", false},
		{"sim", "", "sim", false},
		{"opt", "", "opt", false},
		{"olken", "topdown", "", true}, // -method is krr-only
		{"krr", "sideways", "", true},
		{"bogus", "", "", true},
	}
	for _, c := range cases {
		got, err := resolveModel(c.name, c.method)
		if c.wantErr != (err != nil) {
			t.Errorf("resolveModel(%q, %q): err = %v, wantErr %v", c.name, c.method, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("resolveModel(%q, %q) = %q, want %q", c.name, c.method, got, c.want)
		}
	}
}

func TestWriteModelTable(t *testing.T) {
	var sb strings.Builder
	writeModelTable(&sb)
	out := sb.String()
	for _, want := range []string{"| Model |", "`krr`", "`olken` (alias `lru`)", "bytes,deletes,sharded"} {
		if !strings.Contains(out, want) {
			t.Errorf("model table missing %q:\n%s", want, out)
		}
	}
}
