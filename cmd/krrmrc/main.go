// Command krrmrc constructs a miss ratio curve from a trace in one
// pass, using any model registered in the unified model layer (KRR,
// Olken exact-LRU, SHARDS, AET, Counter Stacks, MIMIR, ...) or
// brute-force simulation.
//
// Usage:
//
//	krrmrc -trace web.trace -k 10 -rate 0.001
//	krrmrc -preset msr-web -n 500000 -k 5 -model krr -bytes sizearray
//	krrmrc -preset ycsb-c-0.99 -model lru
//	krrmrc -preset msr-src1 -model sim -k 5 -points 25
//	krrmrc -preset msr-web -model krr -k 8 -workers 4
//	krrmrc -list-models
//	krrmrc -selftest
//	krrmrc -selftest -trace web.trace -n 50000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"krr/internal/difftest"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

func main() {
	var (
		traceFile   = flag.String("trace", "", "binary trace file (alternative to -preset)")
		preset      = flag.String("preset", "", "workload preset name")
		n           = flag.Int("n", 0, "request cap (0 = whole trace / preset default)")
		scale       = flag.Float64("scale", 1.0, "preset key-space scale")
		variable    = flag.Bool("var", false, "variable object sizes for presets")
		modelName   = flag.String("model", "krr", "model name (see -list-models), or sim / opt")
		k           = flag.Int("k", 5, "K-LRU sampling size (krr* and sim models)")
		method      = flag.String("method", "", "krr update: backward, topdown, linear")
		bytesMode   = flag.String("bytes", "off", "byte distances: off, on, uniform, sizearray, fenwick")
		rate        = flag.Float64("rate", 0, "spatial sampling rate (0 = off / model default)")
		workers     = flag.Int("workers", 0, "sharded pipeline workers (<=1 = serial)")
		bucketRatio = flag.Float64("bucket-ratio", 0, "krr-bucket geometric bucket ratio (0 = default)")
		alpha       = flag.Float64("alpha", 0, "che/fagin fallback Zipf exponent for degenerate fits (0 = default)")
		points      = flag.Int("points", 25, "simulated sizes (sim and opt models)")
		seed        = flag.Uint64("seed", 42, "random seed")
		format      = flag.String("format", "csv", "output format: csv or json")
		out         = flag.String("o", "", "output file (default: stdout)")
		listModels  = flag.Bool("list-models", false, "print the model registry as a markdown table and exit")
		selftest    = flag.Bool("selftest", false, "run the differential correctness harness and exit")
	)
	flag.Parse()

	if *listModels {
		writeModelTable(os.Stdout)
		return
	}
	if *selftest {
		runSelftest(*traceFile, *preset, *n, *scale, *seed, *variable, *k)
		return
	}

	name, err := resolveModel(*modelName, *method)
	if err != nil {
		fatal(err)
	}

	tr, err := loadTrace(*traceFile, *preset, *n, *scale, *seed, *variable)
	if err != nil {
		fatal(err)
	}
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "krrmrc: %d requests, %d distinct objects\n", sum.Requests, sum.DistinctObjects)

	var curve *mrc.Curve
	switch name {
	case "sim":
		sizes := mrc.EvenSizes(uint64(sum.DistinctObjects), *points)
		curve, err = simulator.KLRUMRC(tr, *k, sizes, *seed, 0)
		if err != nil {
			fatal(err)
		}
	case "opt":
		sizes := mrc.EvenSizes(uint64(sum.DistinctObjects), *points)
		curve = simulator.OPTMRC(tr, sizes, 0)
	default:
		bm, ok := model.ByteModeByName(*bytesMode)
		if !ok {
			fatal(fmt.Errorf("unknown bytes mode %q", *bytesMode))
		}
		m, err := model.New(name, model.Options{
			K:             *k,
			Seed:          *seed,
			SamplingRate:  *rate,
			Bytes:         bm,
			Workers:       *workers,
			BucketRatio:   *bucketRatio,
			AnalyticAlpha: *alpha,
		})
		if err != nil {
			fatal(err)
		}
		if err := model.ProcessAll(m, tr.Reader()); err != nil {
			fatal(err)
		}
		if bm != model.BytesOff {
			curve = m.ByteMRC()
		} else {
			curve = m.ObjectMRC()
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	ds := curve.Downsample(2000)
	switch *format {
	case "csv":
		err = ds.WriteCSV(w)
	case "json":
		err = ds.WriteJSON(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// resolveModel folds the legacy -method flag into the registry name:
// "-model krr -method topdown" selects krr-topdown. The simulator
// pseudo-models sim and opt pass through untouched.
func resolveModel(name, method string) (string, error) {
	if name == "sim" || name == "opt" {
		return name, nil
	}
	if method != "" && method != "backward" {
		if name != "krr" {
			return "", fmt.Errorf("-method only applies to -model krr")
		}
		name = "krr-" + method
	}
	if _, ok := model.Lookup(name); !ok {
		return "", fmt.Errorf("unknown model %q (have %s, sim, opt)",
			name, strings.Join(model.Names(), ", "))
	}
	return name, nil
}

// writeModelTable renders the registry as the markdown table embedded
// in the README's "Models" section.
func writeModelTable(w io.Writer) {
	fmt.Fprintln(w, "| Model | Target | Technique | Per-reference cost | Capabilities |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, info := range model.All() {
		name := "`" + info.Name + "`"
		if len(info.Aliases) > 0 {
			name += " (alias `" + strings.Join(info.Aliases, "`, `") + "`)"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			name, info.Target, info.Paper, info.Complexity, info.Caps)
	}
}

// runSelftest drives every registered model through the differential
// harness — against the built-in deterministic trials, or against a
// user-supplied trace/preset when one is given — and exits non-zero
// if any model leaves its declared error envelope.
func runSelftest(file, preset string, n int, scale float64, seed uint64, variable bool, k int) {
	var trials []difftest.Trial
	if file != "" || preset != "" {
		tr, err := loadTrace(file, preset, n, scale, seed, variable)
		if err != nil {
			fatal(err)
		}
		name := preset
		if name == "" {
			name = "trace"
		}
		trial, err := difftest.NewTrial(name, tr.Reader(), tr.Len(), k, seed)
		if err != nil {
			fatal(err)
		}
		trials = []difftest.Trial{trial}
	} else {
		trials = difftest.FastTrials()
	}
	runner := difftest.NewRunner(0)
	failed := 0
	for _, res := range runner.RunAll(trials) {
		fmt.Println(res)
		if !res.Pass() {
			failed++
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("selftest: %d check(s) failed", failed))
	}
	fmt.Println("selftest: all models within their envelopes")
}

func loadTrace(file, preset string, n int, scale float64, seed uint64, variable bool) (*trace.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return trace.Collect(br, n)
		}
		return trace.ReadAll(br)
	}
	p, ok := workload.ByName(preset)
	if !ok {
		return nil, fmt.Errorf("unknown preset %q and no -trace given", preset)
	}
	count := n
	if count <= 0 {
		count = p.DefaultRequests
	}
	return trace.Collect(p.New(scale, seed, variable), count)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "krrmrc: %v\n", err)
	os.Exit(1)
}
