// Command krrmrc constructs a miss ratio curve from a trace in one
// pass, using the KRR model (for K-LRU caches), the Olken exact-LRU
// stack, SHARDS, or brute-force simulation.
//
// Usage:
//
//	krrmrc -trace web.trace -k 10 -rate 0.001
//	krrmrc -preset msr-web -n 500000 -k 5 -model krr -bytes sizearray
//	krrmrc -preset ycsb-c-0.99 -model lru
//	krrmrc -preset msr-src1 -model sim -k 5 -points 25
//	krrmrc -preset msr-web -model krr -k 8 -workers 4
package main

import (
	"flag"
	"fmt"
	"os"

	"krr/internal/core"
	"krr/internal/mrc"
	"krr/internal/olken"
	"krr/internal/shards"
	"krr/internal/simulator"
	"krr/internal/trace"
	"krr/internal/workload"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "binary trace file (alternative to -preset)")
		preset    = flag.String("preset", "", "workload preset name")
		n         = flag.Int("n", 0, "request cap (0 = whole trace / preset default)")
		scale     = flag.Float64("scale", 1.0, "preset key-space scale")
		variable  = flag.Bool("var", false, "variable object sizes for presets")
		model     = flag.String("model", "krr", "model: krr, lru, shards, sim, opt")
		k         = flag.Int("k", 5, "K-LRU sampling size (krr and sim models)")
		method    = flag.String("method", "backward", "krr update: backward, topdown, linear")
		bytesMode = flag.String("bytes", "off", "byte distances: off, uniform, sizearray, fenwick")
		rate      = flag.Float64("rate", 0, "spatial sampling rate (0 = off, krr/shards)")
		workers   = flag.Int("workers", 0, "sharded pipeline workers (krr model; <=1 = serial)")
		points    = flag.Int("points", 25, "simulated sizes (sim model)")
		seed      = flag.Uint64("seed", 42, "random seed")
		format    = flag.String("format", "csv", "output format: csv or json")
		out       = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *preset, *n, *scale, *seed, *variable)
	if err != nil {
		fatal(err)
	}
	sum, err := trace.Summarize(tr.Reader())
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "krrmrc: %d requests, %d distinct objects\n", sum.Requests, sum.DistinctObjects)

	var curve *mrc.Curve
	switch *model {
	case "krr":
		cfg := core.Config{K: *k, Seed: *seed, SamplingRate: *rate}
		switch *method {
		case "backward":
			cfg.Method = core.Backward
		case "topdown":
			cfg.Method = core.TopDown
		case "linear":
			cfg.Method = core.Linear
		default:
			fatal(fmt.Errorf("unknown method %q", *method))
		}
		wantBytes := false
		switch *bytesMode {
		case "off":
		case "uniform":
			cfg.Bytes, wantBytes = core.BytesUniform, true
		case "sizearray":
			cfg.Bytes, wantBytes = core.BytesSizeArray, true
		case "fenwick":
			cfg.Bytes, wantBytes = core.BytesFenwick, true
		default:
			fatal(fmt.Errorf("unknown bytes mode %q", *bytesMode))
		}
		if *workers > 1 {
			cfg.Workers = *workers
			sp, err := core.NewShardedProfiler(cfg)
			if err != nil {
				fatal(err)
			}
			if err := sp.ProcessAll(tr.Reader()); err != nil {
				fatal(err)
			}
			if wantBytes {
				curve = sp.ByteMRC()
			} else {
				curve = sp.ObjectMRC()
			}
		} else {
			p, err := core.NewProfiler(cfg)
			if err != nil {
				fatal(err)
			}
			if err := p.ProcessAll(tr.Reader()); err != nil {
				fatal(err)
			}
			if wantBytes {
				curve = p.ByteMRC()
			} else {
				curve = p.ObjectMRC()
			}
		}
	case "lru":
		p := olken.NewProfiler(*seed)
		if err := p.ProcessAll(tr.Reader()); err != nil {
			fatal(err)
		}
		curve = p.ObjectMRC(1)
	case "shards":
		r := *rate
		if r <= 0 {
			r = 0.001
		}
		s := shards.NewFixedRate(r, *seed, true)
		if err := s.ProcessAll(tr.Reader()); err != nil {
			fatal(err)
		}
		curve = s.MRC()
	case "sim":
		sizes := mrc.EvenSizes(uint64(sum.DistinctObjects), *points)
		curve, err = simulator.KLRUMRC(tr, *k, sizes, *seed, 0)
		if err != nil {
			fatal(err)
		}
	case "opt":
		sizes := mrc.EvenSizes(uint64(sum.DistinctObjects), *points)
		curve = simulator.OPTMRC(tr, sizes, 0)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	ds := curve.Downsample(2000)
	switch *format {
	case "csv":
		err = ds.WriteCSV(w)
	case "json":
		err = ds.WriteJSON(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func loadTrace(file, preset string, n int, scale float64, seed uint64, variable bool) (*trace.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		br, err := trace.NewBinaryReader(f)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			return trace.Collect(br, n)
		}
		return trace.ReadAll(br)
	}
	p, ok := workload.ByName(preset)
	if !ok {
		return nil, fmt.Errorf("unknown preset %q and no -trace given", preset)
	}
	count := n
	if count <= 0 {
		count = p.DefaultRequests
	}
	return trace.Collect(p.New(scale, seed, variable), count)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "krrmrc: %v\n", err)
	os.Exit(1)
}
