// Command redislike runs the miniature Redis-compatible cache server
// used by the §5.7 validation: approximated LRU/LFU/random eviction
// with a 24-bit clock, an eviction pool and sampled eviction, over a
// minimal RESP protocol (PING, GET, SET, DEL, DBSIZE, INFO, FLUSHALL,
// CONFIG GET/SET maxmemory|maxmemory-samples, QUIT).
//
// With -duel the server runs a set-dueling policy tournament instead
// of one fixed configuration: leader key-partitions race rival
// (policy, K) configurations and saturating PSEL counters steer the
// rest of the keyspace to the current winner, audited online by KRR
// shadow profilers. Duel state appears in INFO (duel_* fields) and,
// when -metrics is set, on an HTTP listener at /metrics (Prometheus
// text) and /duel (JSON snapshot).
//
// Usage:
//
//	redislike -addr 127.0.0.1:7379 -maxmemory 104857600 -samples 5
//	redislike -maxmemory 104857600 -duel default -metrics 127.0.0.1:9379
//	redis-cli -p 7379 set foo barbarbar
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"krr/internal/redislike"
	"krr/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7379", "listen address")
		maxMem  = flag.Uint64("maxmemory", 0, "eviction threshold in bytes (0 = unlimited)")
		samples = flag.Int("samples", redislike.DefaultSamples, "maxmemory-samples (eviction sampling size K)")
		good    = flag.Bool("good-random", false, "use dictGetRandomKey-style unbiased sampling")
		policy  = flag.String("policy", "lru", "eviction policy: lru, lfu, random")
		seed    = flag.Uint64("seed", 1, "random seed")

		duel       = flag.String("duel", "", "run a set-dueling tournament over these rivals, e.g. 'lru:5,lru:1,lfu:5,random:1' or 'default' (empty = off)")
		duelEpoch  = flag.Int("duel-epoch", redislike.DefaultEpochRequests, "requests per PSEL epoch")
		duelBits   = flag.Int("duel-partition-bits", redislike.DefaultPartitionBits, "keyspace partitions = 2^bits")
		shadowRate = flag.Float64("shadow-rate", redislike.DefaultShadowRate, "KRR judge spatial sampling rate (<0 disables the judge)")
		metrics    = flag.String("metrics", "", "HTTP listen address for /metrics and /duel (empty = off)")
	)
	flag.Parse()

	cfg := redislike.Config{MaxMemory: *maxMem, Samples: *samples, Seed: *seed}
	if *good {
		cfg.Sampling = redislike.SampleRandomKey
	}
	switch *policy {
	case "lru":
	case "lfu":
		cfg.Policy = redislike.PolicyLFU
	case "random":
		cfg.Policy = redislike.PolicyRandom
	default:
		fmt.Fprintf(os.Stderr, "redislike: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	var srv *redislike.Server
	if *duel != "" {
		rivals, err := redislike.ParseRivals(*duel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redislike: %v\n", err)
			os.Exit(2)
		}
		srv, err = redislike.NewDuelServer(redislike.DuelConfig{
			MaxMemory:     *maxMem,
			Rivals:        rivals,
			PartitionBits: *duelBits,
			EpochRequests: *duelEpoch,
			Sampling:      cfg.Sampling,
			ShadowRate:    *shadowRate,
			Seed:          *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "redislike: %v\n", err)
			os.Exit(2)
		}
	} else {
		srv = redislike.NewServer(cfg)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redislike: %v\n", err)
		os.Exit(1)
	}
	if d := srv.Duel(); d != nil {
		fmt.Printf("redislike: listening on %s (maxmemory=%d, duel over %d rivals)\n",
			bound, *maxMem, len(d.Rivals()))
	} else {
		fmt.Printf("redislike: listening on %s (maxmemory=%d, samples=%d)\n", bound, *maxMem, *samples)
	}

	if *metrics != "" {
		maddr, err := serveMetrics(*metrics, srv)
		if err != nil {
			fmt.Fprintf(os.Stderr, "redislike: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("redislike: metrics on http://%s/metrics\n", maddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("redislike: shutting down")
	srv.Close()
}

// serveMetrics starts the HTTP observability surface. Every exported
// value behind /metrics and /duel is an atomic, so scrapes never race
// the RESP request path.
func serveMetrics(addr string, srv *redislike.Server) (string, error) {
	set := telemetry.NewSet()
	if d := srv.Duel(); d != nil {
		d.MetricsInto(set, "redislike_duel_")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		set.WritePrometheus(w)
	})
	mux.HandleFunc("GET /duel", func(w http.ResponseWriter, r *http.Request) {
		d := srv.Duel()
		if d == nil {
			http.Error(w, "duel mode off", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.State())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}
