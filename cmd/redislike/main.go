// Command redislike runs the miniature Redis-compatible cache server
// used by the §5.7 validation: approximated LRU/LFU/random eviction
// with a 24-bit clock, an eviction pool and sampled eviction, over a
// minimal RESP protocol (PING, GET, SET, DEL, DBSIZE, INFO, FLUSHALL,
// CONFIG GET/SET maxmemory|maxmemory-samples, QUIT).
//
// Usage:
//
//	redislike -addr 127.0.0.1:7379 -maxmemory 104857600 -samples 5
//	redis-cli -p 7379 set foo barbarbar
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"krr/internal/redislike"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7379", "listen address")
		maxMem  = flag.Uint64("maxmemory", 0, "eviction threshold in bytes (0 = unlimited)")
		samples = flag.Int("samples", redislike.DefaultSamples, "maxmemory-samples (eviction sampling size K)")
		good    = flag.Bool("good-random", false, "use dictGetRandomKey-style unbiased sampling")
		policy  = flag.String("policy", "lru", "eviction policy: lru, lfu, random")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := redislike.Config{MaxMemory: *maxMem, Samples: *samples, Seed: *seed}
	if *good {
		cfg.Sampling = redislike.SampleRandomKey
	}
	switch *policy {
	case "lru":
	case "lfu":
		cfg.Policy = redislike.PolicyLFU
	case "random":
		cfg.Policy = redislike.PolicyRandom
	default:
		fmt.Fprintf(os.Stderr, "redislike: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	srv := redislike.NewServer(cfg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redislike: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("redislike: listening on %s (maxmemory=%d, samples=%d)\n", bound, *maxMem, *samples)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("redislike: shutting down")
	srv.Close()
}
