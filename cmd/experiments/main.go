// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table5.1
//	experiments -run all -scale 0.2 -out results
//
// Each experiment writes markdown (tables + ASCII figures + shape
// notes) and, when -out is set, a CSV with every plotted series.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"krr/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		run     = flag.String("run", "", "experiment ID, comma list, or 'all'")
		scale   = flag.Float64("scale", 0.2, "workload key-space scale")
		reqFrac = flag.Float64("reqfrac", 0.25, "fraction of each preset's default request count")
		maxReq  = flag.Int("maxreq", 0, "hard cap on per-trace requests (0 = none)")
		sizes   = flag.Int("sizes", 20, "simulated cache sizes per sweep")
		perFam  = flag.Int("traces-per-family", 0, "truncate each workload family (0 = all)")
		workers = flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output directory for markdown + CSV (default: stdout only)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-24s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run required (or -list)")
		os.Exit(2)
	}
	opt := experiments.Options{
		Scale:           *scale,
		ReqFraction:     *reqFrac,
		MaxRequests:     *maxReq,
		SimSizes:        *sizes,
		TracesPerFamily: *perFam,
		Workers:         *workers,
		Seed:            *seed,
	}
	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fmt.Fprintf(os.Stderr, "== running %s ...\n", id)
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			failed++
			continue
		}
		if err := res.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
		if *out != "" {
			base := strings.ReplaceAll(id, ".", "_")
			mdPath := filepath.Join(*out, base+".md")
			mdf, err := os.Create(mdPath)
			if err != nil {
				fatal(err)
			}
			res.WriteMarkdown(mdf)
			mdf.Close()
			csvPath := filepath.Join(*out, base+".csv")
			csvf, err := os.Create(csvPath)
			if err != nil {
				fatal(err)
			}
			res.WriteCSV(csvf)
			csvf.Close()
			if err := res.WriteSVGs(func(name, svg string) error {
				return os.WriteFile(filepath.Join(*out, name), []byte(svg), 0o644)
			}); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "== wrote %s, %s and SVGs (%s)\n", mdPath, csvPath, res.Elapsed.Round(1e6))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
