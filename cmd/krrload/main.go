// krrload is the load generator for krrserve's binary wire-protocol
// ingest plane. It pregenerates requests from a workload preset (so
// generation cost never shadows the path under test), streams them as
// batched frames over one or more TCP connections per tenant at an
// optional target rate, and reports sustained throughput, ack-latency
// quantiles and drop counts when the run ends.
//
// Typical runs:
//
//	krrload -addr :8702 -duration 10s                 # one tenant, one conn, unpaced
//	krrload -addr :8702 -tenants 4 -conns 2 -rate 1e6 # paced fleet drive
//	krrload -addr :8702 -workload msr-src1 -variable  # preset traffic shape
//
// The exit status is the assertion surface for smoke tests: with
// -fail-on-drops the run fails if the server shed any frame, and every
// run fails if nothing was acked.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"krr/internal/telemetry"
	"krr/internal/trace"
	"krr/internal/wire"
	"krr/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8702", "krrserve wire-protocol address")
		tenants     = flag.Int("tenants", 1, "number of tenants to drive (ids <prefix>0..N-1)")
		conns       = flag.Int("conns", 1, "connections per tenant")
		prefix      = flag.String("tenant-prefix", "load-", "tenant id prefix")
		preset      = flag.String("workload", "zipf", "workload preset (see internal/workload)")
		scale       = flag.Float64("scale", 1.0, "preset key-space scale")
		seed        = flag.Uint64("seed", 1, "workload seed (each connection derives its own)")
		variable    = flag.Bool("variable", false, "variable object sizes")
		rate        = flag.Float64("rate", 0, "target request rate across all connections (req/s, 0 = unpaced)")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		frameLen    = flag.Int("frame", 4096, "requests per frame")
		pregen      = flag.Int("pregen", 1<<18, "pregenerated requests per connection, cycled")
		markdown    = flag.Bool("markdown", false, "emit the summary as a markdown table row")
		failOnDrops = flag.Bool("fail-on-drops", false, "exit nonzero if the server shed any frame")
	)
	flag.Parse()

	p, ok := workload.ByName(*preset)
	if !ok {
		log.Fatalf("krrload: unknown workload %q (have %v)", *preset, workload.Names())
	}
	if *frameLen <= 0 || *frameLen > wire.MaxFrameRecords {
		log.Fatalf("krrload: -frame %d out of [1, %d]", *frameLen, wire.MaxFrameRecords)
	}
	if *tenants < 1 || *conns < 1 {
		log.Fatal("krrload: -tenants and -conns must be >= 1")
	}
	total := *tenants * *conns

	// Shared ack-latency histogram: Observe is atomic, so every
	// connection samples into one ladder (1µs .. ~1s).
	lat := telemetry.NewHistogram(telemetry.ExpBuckets(1e-6, 2, 21))

	// Pregenerate each connection's chunk up front; connection i gets an
	// independently seeded stream so tenants do not share hot sets.
	chunks := make([][]trace.Request, total)
	for i := range chunks {
		r := p.New(*scale, *seed+uint64(i)*7919, *variable)
		chunk := make([]trace.Request, *pregen)
		for j := range chunk {
			req, err := r.Next()
			if err != nil {
				log.Fatalf("krrload: workload generation: %v", err)
			}
			chunk[j] = req
		}
		chunks[i] = chunk
	}

	perConnRate := *rate / float64(total)
	deadline := time.Now().Add(*duration)
	start := time.Now()

	var (
		mu      sync.Mutex
		agg     wire.Stats
		nErr    int
		lastErr error
	)
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		tenant := fmt.Sprintf("%s%d", *prefix, t)
		for c := 0; c < *conns; c++ {
			idx := t**conns + c
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := drive(*addr, tenant, chunks[idx], *frameLen, perConnRate, deadline, lat)
				mu.Lock()
				defer mu.Unlock()
				agg.Frames += st.Frames
				agg.Requests += st.Requests
				agg.AckedFrames += st.AckedFrames
				agg.AckedRequests += st.AckedRequests
				agg.DroppedFrames += st.DroppedFrames
				agg.DroppedRequests += st.DroppedRequests
				if err != nil {
					nErr++
					lastErr = err
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(os.Stdout, *markdown, *tenants, *conns, *preset, agg, elapsed, lat)
	if nErr > 0 {
		log.Fatalf("krrload: %d/%d connections failed, last error: %v", nErr, total, lastErr)
	}
	if agg.AckedRequests == 0 {
		log.Fatal("krrload: no requests acked")
	}
	if *failOnDrops && agg.DroppedFrames > 0 {
		log.Fatalf("krrload: server shed %d frames (%d requests)", agg.DroppedFrames, agg.DroppedRequests)
	}
}

// drive runs one connection until the deadline: cycle the pregenerated
// chunk frame by frame, pace against the target rate, then close and
// return the connection's stats.
func drive(addr, tenant string, chunk []trace.Request, frameLen int, rate float64, deadline time.Time, lat *telemetry.Histogram) (wire.Stats, error) {
	c, err := wire.Dial(addr, tenant)
	if err != nil {
		return wire.Stats{}, err
	}
	c.Latency = lat
	start := time.Now()
	var sent uint64
	off := 0
	for time.Now().Before(deadline) {
		if rate > 0 {
			// Token-bucket pacing: sleep off any surplus over the target
			// request budget for the elapsed time.
			target := rate * time.Since(start).Seconds()
			if surplus := float64(sent) - target; surplus > 0 {
				time.Sleep(time.Duration(surplus / rate * float64(time.Second)))
			}
		}
		end := off + frameLen
		if end > len(chunk) {
			end = len(chunk)
		}
		if err := c.SendBatch(chunk[off:end]); err != nil {
			st, _ := c.Close()
			return st, err
		}
		sent += uint64(end - off)
		off = end
		if off == len(chunk) {
			off = 0
		}
		// Flush per frame so the server sees a steady frame stream (and
		// acks flow back) instead of 64 KiB bursts.
		if err := c.Flush(); err != nil {
			st, _ := c.Close()
			return st, err
		}
	}
	return c.Close()
}

// report prints the run summary.
func report(w *os.File, md bool, tenants, conns int, preset string, st wire.Stats, elapsed time.Duration, lat *telemetry.Histogram) {
	secs := elapsed.Seconds()
	ackRate := float64(st.AckedRequests) / secs
	dropPct := 0.0
	if st.Requests > 0 {
		dropPct = 100 * float64(st.DroppedRequests) / float64(st.Requests)
	}
	p50, p99 := lat.Quantile(0.50), lat.Quantile(0.99)
	if md {
		fmt.Fprintf(w, "| %d | %d | %s | %s | %s | %.1f%% | %s | %s |\n",
			tenants, conns, preset, fmtRate(ackRate), fmtCount(st.AckedRequests), dropPct,
			fmtDur(p50), fmtDur(p99))
		return
	}
	fmt.Fprintf(w, "krrload: %d tenants x %d conns, workload %s, %.2fs\n", tenants, conns, preset, secs)
	fmt.Fprintf(w, "  sent:    %d requests in %d frames\n", st.Requests, st.Frames)
	fmt.Fprintf(w, "  acked:   %d requests (%s sustained)\n", st.AckedRequests, fmtRate(ackRate))
	fmt.Fprintf(w, "  dropped: %d requests in %d frames (%.2f%%)\n", st.DroppedRequests, st.DroppedFrames, dropPct)
	fmt.Fprintf(w, "  ack latency: p50 %s, p99 %s (%d samples)\n", fmtDur(p50), fmtDur(p99), lat.Count())
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f Mreq/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f kreq/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f req/s", v)
	}
}

func fmtCount(v uint64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fmtDur(seconds float64) string {
	if seconds <= 0 || math.IsNaN(seconds) {
		return "n/a"
	}
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}
