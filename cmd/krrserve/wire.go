package main

import (
	"errors"
	"net"

	"krr/internal/trace"
	"krr/internal/wire"
)

// errFinalized rejects wire ingest after shutdown began.
var errFinalized = errors.New("server is finalized")

// fleetSink bridges the wire data plane to the fleet registry: one
// accepted frame becomes one batched ingest into the tenant's model,
// going through the model's BatchProcessor fast path. Tenants are
// auto-created exactly like the HTTP ingest path.
type fleetSink struct {
	s *server
}

// IngestBatch implements wire.Sink.
func (fs fleetSink) IngestBatch(tenant string, reqs []trace.Request) error {
	if fs.s.final.Load() {
		return errFinalized
	}
	if err := fs.s.reg.IngestBatch(tenant, reqs); err != nil {
		fs.s.ingestErrs.Inc()
		return err
	}
	fs.s.ingests.Add(uint64(len(reqs)))
	return nil
}

// startWire opens the binary ingest listener and registers its metrics
// under wire_ in the server's exposition set. Accept-loop failures are
// reported on errc like the HTTP listener's.
func (s *server) startWire(addr string, queueDepth int, errc chan<- error) (*wire.Server, error) {
	wsrv, err := wire.NewServer(wire.Config{Sink: fleetSink{s: s}, QueueDepth: queueDepth})
	if err != nil {
		return nil, err
	}
	wsrv.MetricsInto(s.set, "wire_")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		if err := wsrv.Serve(ln); err != nil {
			errc <- err
		}
	}()
	return wsrv, nil
}
