package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"krr/internal/mrc"
)

// TestServeSmoke exercises the real daemon end to end: build the
// binary, start it, stream a trace over HTTP, read a live curve and
// metrics, then SIGTERM it and check the graceful shutdown flushed a
// well-formed final curve. This is the check.sh serve-smoke stage.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "krrserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port, free it, hand it to the daemon.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	finalPath := filepath.Join(dir, "final.json")
	cmd := exec.Command(bin, "-addr", addr, "-model", "krr", "-k", "5", "-seed", "1",
		"-workers", "2", "-final", finalPath)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitHealthy(t, base)

	var b strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%400)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/mrc?size=100")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/mrc status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if !strings.Contains(sb.String(), "krrserve_ingest_requests_total 5000") {
		t.Fatalf("/metrics missing ingest counter:\n%s", sb.String())
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}

	f, err := os.Open(finalPath)
	if err != nil {
		t.Fatalf("final curve not written: %v", err)
	}
	defer f.Close()
	c, err := mrc.ReadJSON(f)
	if err != nil {
		t.Fatalf("final curve unreadable: %v", err)
	}
	if c.Len() < 2 || c.Eval(0) != 1 {
		t.Fatalf("final curve malformed: %d points", c.Len())
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
