// krrserve is the fleet-advisor daemon: a registry of shadow MRC
// models (one per tenant) behind an HTTP API. Production traffic from
// many caches is mirrored in — NDJSON or the binary trace format over
// POST, routed by tenant id — and operators read live miss-ratio
// curves, fleet-wide memory accounting, and a partitioning plan that
// waterfills a shared cache budget across tenants by marginal
// miss-ratio gain. The single-tenant endpoints of earlier versions
// remain as aliases for the "default" tenant.
//
// Tenant endpoints:
//
//	GET    /tenants               list tenants (id, model, traffic,
//	                              footprint, timestamps).
//	POST   /tenants               create a tenant: {"id": "t1",
//	                              "model": "krr", "k": 5, "seed": 1,
//	                              "rate": 0.01, "workers": 2,
//	                              "bytes": "on", "bucket_ratio": 1.2}
//	                              (all fields but id optional).
//	DELETE /tenants/{id}          evict a tenant, freeing its model.
//	POST   /tenants/{id}/ingest   trace requests for one tenant;
//	                              NDJSON lines {"key": 7, "size": 200,
//	                              "op": "get"} ("key" may be a string,
//	                              hashed to 64 bits), or the binary
//	                              trace format (KRT1) with Content-Type
//	                              application/octet-stream. Unknown ids
//	                              are auto-created with the default
//	                              model spec.
//	GET    /tenants/{id}/mrc?size=N     miss ratio at one cache size,
//	                              from a live snapshot; &unit=bytes
//	                              evaluates the byte curve.
//	GET    /tenants/{id}/curve    the full curve as JSON; ?points=N
//	                              downsamples, &unit=bytes selects the
//	                              byte curve.
//	GET    /tenants/{id}/stats    stream counters.
//	GET    /allocate?budget=N     waterfill partitioning of budget
//	                              across all live tenants, with
//	                              proportional-by-traffic and uniform
//	                              baselines; &unit=bytes partitions a
//	                              byte budget (requires byte-mode
//	                              models).
//
// Process-wide:
//
//	POST /ingest, GET /mrc, /curve, /stats   aliases for the
//	                              "default" tenant.
//	GET  /metrics    Prometheus text exposition: server and fleet
//	                 metrics unlabeled, per-tenant metrics labeled
//	                 tenant="id".
//	GET  /debug/vars expvar JSON. /debug/pprof: profiling handlers.
//	GET  /healthz    liveness probe.
//
// On SIGTERM/SIGINT the server stops accepting requests, finalizes the
// default tenant's model, and writes its final curve as JSON to -final
// (or stdout).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"krr/internal/fleet"
	"krr/internal/hashing"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/telemetry"
	"krr/internal/trace"
	"krr/internal/wire"
)

// defaultTenant is the id behind the single-tenant legacy endpoints.
const defaultTenant = "default"

func main() {
	var (
		addr        = flag.String("addr", ":8701", "listen address")
		tcpAddr     = flag.String("tcp", "", "binary wire-protocol ingest listen address (empty = disabled)")
		queueDepth  = flag.Int("tcp-queue", 0, "per-connection wire ingest queue depth in frames (0 = default)")
		name        = flag.String("model", "krr", "default tenant model (see internal/model)")
		k           = flag.Int("k", 0, "K-LRU sampling size (0 = model default)")
		seed        = flag.Uint64("seed", 1, "model seed")
		rate        = flag.Float64("rate", 0, "spatial sampling rate in (0,1); 0 = off")
		workers     = flag.Int("workers", 1, "shard workers (>1 requires a CapSharded model)")
		bytes       = flag.String("bytes", "off", "byte mode: off|on|uniform|sizearray|fenwick")
		bucketRatio = flag.Float64("bucket-ratio", 0, "krr-bucket geometric bucket ratio (0 = default)")
		alpha       = flag.Float64("alpha", 0, "che/fagin fallback Zipf exponent for degenerate fits (0 = default)")
		memBudget   = flag.Int64("memory-budget", 0, "global model-footprint budget in bytes (0 = unlimited)")
		maxTenants  = flag.Int("max-tenants", 0, "tenant cap, LRU-evicted past it (0 = unlimited)")
		idleTTL     = flag.Duration("idle-ttl", 0, "evict tenants idle this long (0 = never)")
		final       = flag.String("final", "", "write the default tenant's final curve JSON here on shutdown (default stdout)")
	)
	flag.Parse()

	mode, ok := model.ByteModeByName(*bytes)
	if !ok {
		log.Fatalf("krrserve: unknown byte mode %q", *bytes)
	}
	srv, err := newServer(fleet.Config{
		Default: fleet.Spec{
			Model: *name,
			Options: model.Options{
				K: *k, Seed: *seed, SamplingRate: *rate, Bytes: mode,
				Workers: *workers, BucketRatio: *bucketRatio, AnalyticAlpha: *alpha,
			},
		},
		MemoryBudgetBytes: *memBudget,
		MaxTenants:        *maxTenants,
		IdleTTL:           *idleTTL,
	})
	if err != nil {
		log.Fatalf("krrserve: %v", err)
	}
	// Mirror the metric set into /debug/vars. Done here, not in
	// newServer: expvar names are process-global and panic on reuse,
	// and tests build many servers per process.
	srv.set.Publish("krrserve")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *idleTTL > 0 {
		go srv.sweepLoop(ctx, *idleTTL)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("krrserve: default model=%s listening on %s", *name, *addr)

	var wireSrv *wire.Server
	if *tcpAddr != "" {
		wireSrv, err = srv.startWire(*tcpAddr, *queueDepth, errc)
		if err != nil {
			log.Fatalf("krrserve: wire listener: %v", err)
		}
		log.Printf("krrserve: wire ingest listening on %s", *tcpAddr)
	}

	select {
	case err := <-errc:
		log.Fatalf("krrserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting traffic, then flush the final
	// curve — the whole point of a monitoring run is its last reading.
	log.Printf("krrserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if wireSrv != nil {
		wireSrv.Close() // drains every connection's queued frames
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("krrserve: shutdown: %v", err)
	}
	if err := srv.writeFinal(*final); err != nil {
		log.Fatalf("krrserve: final curve: %v", err)
	}
	log.Printf("krrserve: final curve flushed")
}

// server is the thin HTTP shell over the fleet registry: routing,
// wire formats, and process-level counters. All model hosting,
// locking, budget enforcement and partitioning live in internal/fleet.
type server struct {
	reg   *fleet.Registry
	start time.Time
	final atomic.Bool

	set        *telemetry.Set
	ingests    telemetry.Counter
	ingestErrs telemetry.Counter
	snapshots  telemetry.Counter
}

func newServer(cfg fleet.Config) (*server, error) {
	// Fail fast on an invalid default spec instead of at first ingest.
	probe, err := model.New(valueOr(cfg.Default.Model, "krr"), cfg.Default.Options)
	if err != nil {
		return nil, err
	}
	if c, ok := probe.(io.Closer); ok {
		_ = c.Close() // sharded probes hold worker goroutines
	}
	s := &server{
		reg:   fleet.NewRegistry(cfg),
		start: time.Now(),
		set:   telemetry.NewSet(),
	}
	s.set.CounterFunc("krrserve_ingest_requests_total", "trace requests accepted over HTTP", s.ingests.Load)
	s.set.CounterFunc("krrserve_ingest_errors_total", "ingest bodies rejected", s.ingestErrs.Load)
	s.set.CounterFunc("krrserve_snapshots_total", "live curve snapshots served", s.snapshots.Load)
	s.set.GaugeFunc("krrserve_uptime_seconds", "seconds since process start", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reg.MetricsInto(s.set, "fleet_")
	return s, nil
}

func valueOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// sweepLoop evicts idle tenants in the background.
func (s *server) sweepLoop(ctx context.Context, ttl time.Duration) {
	tick := time.NewTicker(ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if n := s.reg.SweepIdle(); n > 0 {
				log.Printf("krrserve: swept %d idle tenants", n)
			}
		}
	}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	// Tenant-scoped API.
	mux.HandleFunc("GET /tenants", s.handleTenantList)
	mux.HandleFunc("POST /tenants", s.handleTenantCreate)
	mux.HandleFunc("DELETE /tenants/{id}", s.handleTenantDelete)
	mux.HandleFunc("POST /tenants/{id}/ingest", s.handleIngest)
	mux.HandleFunc("GET /tenants/{id}/mrc", s.handleMRC)
	mux.HandleFunc("GET /tenants/{id}/curve", s.handleCurve)
	mux.HandleFunc("GET /tenants/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /allocate", s.handleAllocate)
	// Single-tenant aliases.
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /mrc", s.handleMRC)
	mux.HandleFunc("GET /curve", s.handleCurve)
	mux.HandleFunc("GET /stats", s.handleStats)
	// Process-wide.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// tenantID resolves the tenant a request addresses: the {id} path
// value, or the default tenant on the legacy routes.
func tenantID(r *http.Request) string {
	if id := r.PathValue("id"); id != "" {
		return id
	}
	return defaultTenant
}

// tenantSpec is the POST /tenants body.
type tenantSpec struct {
	ID          string  `json:"id"`
	Model       string  `json:"model"`
	K           int     `json:"k"`
	Seed        uint64  `json:"seed"`
	Rate        float64 `json:"rate"`
	Workers     int     `json:"workers"`
	Bytes       string  `json:"bytes"`
	BucketRatio float64 `json:"bucket_ratio"`
	Alpha       float64 `json:"alpha"`
}

func (s *server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var spec tenantSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	if spec.ID == "" {
		http.Error(w, "missing tenant id", http.StatusBadRequest)
		return
	}
	mode, ok := model.ByteModeByName(spec.Bytes)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown byte mode %q", spec.Bytes), http.StatusBadRequest)
		return
	}
	_, err := s.reg.Create(spec.ID, fleet.Spec{
		Model: spec.Model,
		Options: model.Options{
			K: spec.K, Seed: spec.Seed, SamplingRate: spec.Rate,
			Bytes: mode, Workers: spec.Workers, BucketRatio: spec.BucketRatio,
			AnalyticAlpha: spec.Alpha,
		},
	})
	if errors.Is(err, fleet.ErrTenantExists) {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "{\"id\": %q}\n", spec.ID)
}

func (s *server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"tenants":         s.reg.List(),
		"footprint_bytes": s.reg.Footprint(),
	})
}

func (s *server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	if !s.reg.Evict(r.PathValue("id")) {
		http.Error(w, "no such tenant", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ndjsonReq is one ingest line. Key accepts either a JSON number (used
// verbatim) or a string (hashed to 64 bits), matching how real cache
// traces mix numeric block addresses and string object keys.
type ndjsonReq struct {
	Key  json.RawMessage `json:"key"`
	Size uint32          `json:"size"`
	Op   string          `json:"op"`
}

func (n ndjsonReq) request() (trace.Request, error) {
	req := trace.Request{Size: n.Size}
	if req.Size == 0 {
		req.Size = trace.DefaultObjectSize
	}
	switch n.Op {
	case "", "get":
		req.Op = trace.OpGet
	case "set":
		req.Op = trace.OpSet
	case "delete":
		req.Op = trace.OpDelete
	default:
		return req, fmt.Errorf("unknown op %q", n.Op)
	}
	if len(n.Key) == 0 {
		return req, errors.New("missing key")
	}
	var num uint64
	if err := json.Unmarshal(n.Key, &num); err == nil {
		req.Key = num
		return req, nil
	}
	var str string
	if err := json.Unmarshal(n.Key, &str); err == nil {
		req.Key = hashing.String(str)
		return req, nil
	}
	return req, fmt.Errorf("key %s is neither integer nor string", n.Key)
}

// bodyReader adapts an ingest body (binary or NDJSON) to trace.Reader.
// NDJSON goes through the allocation-free line parser in ndjson.go.
func bodyReader(r *http.Request) (trace.Reader, error) {
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		return trace.NewBinaryReader(r.Body)
	}
	return newNDJSONReader(r.Body), nil
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.final.Load() {
		http.Error(w, "server is finalized", http.StatusConflict)
		return
	}
	reader, err := bodyReader(r)
	if err != nil {
		s.ingestErrs.Inc()
		http.Error(w, fmt.Sprintf("bad binary trace: %v", err), http.StatusBadRequest)
		return
	}
	count, err := s.reg.Ingest(tenantID(r), reader)
	s.ingests.Add(count)
	if err != nil {
		s.ingestErrs.Inc()
		http.Error(w, fmt.Sprintf("ingest stopped after %d requests: %v", count, err),
			http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\": %d}\n", count)
}

// snapshot reads a tenant's live curves, serving 404 for unknown ids
// (the legacy default tenant is auto-created instead, so pre-ingest
// reads keep returning the empty curve as before).
func (s *server) snapshot(w http.ResponseWriter, r *http.Request) (model.Snapshot, bool) {
	id := tenantID(r)
	if id == defaultTenant {
		if _, err := s.reg.Ensure(id); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return model.Snapshot{}, false
		}
	}
	snap, err := s.reg.Snapshot(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return model.Snapshot{}, false
	}
	s.snapshots.Inc()
	return snap, true
}

// curveFrom picks the requested granularity out of a snapshot.
func curveFrom(snap model.Snapshot, r *http.Request) (*mrc.Curve, error) {
	switch unit := r.URL.Query().Get("unit"); unit {
	case "", "objects":
		return snap.Object, nil
	case "bytes":
		if snap.Byte == nil {
			return nil, errors.New("model was built without a byte mode (-bytes off)")
		}
		return snap.Byte, nil
	default:
		return nil, fmt.Errorf("unknown unit %q (want objects or bytes)", unit)
	}
}

func (s *server) handleMRC(w http.ResponseWriter, r *http.Request) {
	sizeStr := r.URL.Query().Get("size")
	size, err := strconv.ParseUint(sizeStr, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad size %q: %v", sizeStr, err), http.StatusBadRequest)
		return
	}
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	c, err := curveFrom(snap, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"size\": %d, \"miss_ratio\": %g, \"requests\": %d}\n",
		size, c.Eval(size), snap.Stats.Seen)
}

func (s *server) handleCurve(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.snapshot(w, r)
	if !ok {
		return
	}
	c, err := curveFrom(snap, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pts := r.URL.Query().Get("points"); pts != "" {
		n, err := strconv.Atoi(pts)
		if err != nil || n < 2 {
			http.Error(w, fmt.Sprintf("bad points %q", pts), http.StatusBadRequest)
			return
		}
		c = c.Downsample(n)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := c.WriteJSON(w); err != nil {
		log.Printf("krrserve: curve write: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	id := tenantID(r)
	if id == defaultTenant {
		if _, err := s.reg.Ensure(id); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	ten, ok := s.reg.Get(id)
	if !ok {
		http.Error(w, "no such tenant", http.StatusNotFound)
		return
	}
	st := ten.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"tenant":          id,
		"seen":            st.Seen,
		"sampled":         st.Sampled,
		"finalized":       st.Finalized,
		"footprint_bytes": ten.Footprint(),
		"uptime_seconds":  time.Since(s.start).Seconds(),
	})
}

func (s *server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	budgetStr := r.URL.Query().Get("budget")
	budget, err := strconv.ParseUint(budgetStr, 10, 64)
	if err != nil || budget == 0 {
		http.Error(w, fmt.Sprintf("bad budget %q (want a positive integer)", budgetStr), http.StatusBadRequest)
		return
	}
	unit := r.URL.Query().Get("unit")
	if unit == "" {
		unit = "objects"
	}
	if unit != "objects" && unit != "bytes" {
		http.Error(w, fmt.Sprintf("unknown unit %q (want objects or bytes)", unit), http.StatusBadRequest)
		return
	}
	demands, err := s.reg.Demands(unit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := s.reg.Allocate(budget, unit)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := plan.Feasible(); err != nil {
		http.Error(w, fmt.Sprintf("internal: %v", err), http.StatusInternalServerError)
		return
	}
	prop := fleet.ProportionalSplit(demands, budget)
	uni := fleet.UniformSplit(demands, budget)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"waterfill": plan,
		"baselines": map[string]any{
			"proportional": prop,
			"uniform":      uni,
		},
	})
}

// handleMetrics renders the server and fleet metrics unlabeled, then
// every tenant's set labeled tenant="id". HELP/TYPE headers are
// deduplicated across tenants so the document stays valid.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.set.WritePrometheus(w); err != nil {
		log.Printf("krrserve: metrics write: %v", err)
		return
	}
	infos := s.reg.List()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	seen := make(map[string]bool)
	for _, info := range infos {
		ten, ok := s.reg.Get(info.ID)
		if !ok {
			continue
		}
		labels := fmt.Sprintf("tenant=%q", telemetry.EscapeLabelValue(info.ID))
		if err := ten.Set().WritePrometheusLabeled(w, labels, seen); err != nil {
			log.Printf("krrserve: metrics write: %v", err)
			return
		}
	}
}

// writeFinal finalizes ingest and writes the default tenant's finished
// curve JSON to path ("" or "-" = stdout). By the snapshot contract
// this equals the last snapshot bit-for-bit if no requests arrived in
// between.
func (s *server) writeFinal(path string) error {
	s.final.Store(true)
	c := &mrc.Curve{Sizes: []uint64{0}, Miss: []float64{1}, Interp: mrc.InterpStep}
	if snap, err := s.reg.Snapshot(defaultTenant); err == nil && snap.Object != nil {
		c = snap.Object
	}
	out := os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return c.WriteJSON(out)
}
