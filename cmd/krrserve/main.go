// krrserve is the online-monitoring daemon: a KRR (or any registered
// MRC model) shadow profiler behind an HTTP API. Production traffic is
// mirrored into it — NDJSON or the binary trace format over POST — and
// operators read live miss-ratio curves from non-finalizing snapshots
// while the stream keeps flowing, the deployment mode the source paper
// motivates for K-LRU caches like Redis.
//
// Endpoints:
//
//	POST /ingest       NDJSON requests, one object per line:
//	                   {"key": 7, "size": 200, "op": "get"}
//	                   ("key" may be a string, hashed to 64 bits; size
//	                   and op are optional). With Content-Type
//	                   application/octet-stream the body is the binary
//	                   trace format (KRT1) instead.
//	GET  /mrc?size=N   miss ratio at one cache size, from a live
//	                   snapshot; &unit=bytes evaluates the byte curve.
//	GET  /curve        the full object curve as JSON; ?points=N
//	                   downsamples, &unit=bytes selects the byte curve.
//	GET  /stats        stream counters and uptime.
//	GET  /metrics      Prometheus text exposition.
//	GET  /debug/vars   expvar JSON (same metrics).
//	     /debug/pprof  the standard profiling handlers.
//	GET  /healthz      liveness probe.
//
// On SIGTERM/SIGINT the server stops accepting requests, finalizes the
// model, and writes the final curve as JSON to -final (or stdout).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"krr/internal/hashing"
	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/telemetry"
	"krr/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", ":8701", "listen address")
		name        = flag.String("model", "krr", "registered model name (see internal/model)")
		k           = flag.Int("k", 0, "K-LRU sampling size (0 = model default)")
		seed        = flag.Uint64("seed", 1, "model seed")
		rate        = flag.Float64("rate", 0, "spatial sampling rate in (0,1); 0 = off")
		workers     = flag.Int("workers", 1, "shard workers (>1 requires a CapSharded model)")
		bytes       = flag.String("bytes", "off", "byte mode: off|on|uniform|sizearray|fenwick")
		bucketRatio = flag.Float64("bucket-ratio", 0, "krr-bucket geometric bucket ratio (0 = default)")
		final       = flag.String("final", "", "write the final curve JSON here on shutdown (default stdout)")
	)
	flag.Parse()

	mode, ok := model.ByteModeByName(*bytes)
	if !ok {
		log.Fatalf("krrserve: unknown byte mode %q", *bytes)
	}
	srv, err := newServer(*name, model.Options{
		K: *k, Seed: *seed, SamplingRate: *rate, Bytes: mode, Workers: *workers,
		BucketRatio: *bucketRatio,
	})
	if err != nil {
		log.Fatalf("krrserve: %v", err)
	}
	// Mirror the whole metric set into /debug/vars. Done here, not in
	// newServer: expvar names are process-global and panic on reuse,
	// and tests build many servers per process.
	srv.set.Publish("krrserve")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("krrserve: model=%s listening on %s", *name, *addr)

	select {
	case err := <-errc:
		log.Fatalf("krrserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting traffic, then flush the final
	// curve — the whole point of a monitoring run is its last reading.
	log.Printf("krrserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("krrserve: shutdown: %v", err)
	}
	if err := srv.writeFinal(*final); err != nil {
		log.Fatalf("krrserve: final curve: %v", err)
	}
	log.Printf("krrserve: final curve flushed")
}

// server owns one model instance behind a mutex. Serial models are not
// concurrency-safe, and even model.Sharded's internal serialization
// would interleave concurrent ingest bodies request-by-request; one
// lock keeps each ingest batch atomic and snapshots consistent.
type server struct {
	mu      sync.Mutex
	model   model.Model
	start   time.Time
	final   bool
	byteful bool

	set        *telemetry.Set
	ingests    telemetry.Counter
	ingestErrs telemetry.Counter
	snapshots  telemetry.Counter
}

func newServer(name string, opts model.Options) (*server, error) {
	m, err := model.New(name, opts)
	if err != nil {
		return nil, err
	}
	s := &server{
		model:   m,
		start:   time.Now(),
		byteful: opts.Bytes != model.BytesOff,
		set:     telemetry.NewSet(),
	}
	s.set.CounterFunc("krrserve_ingest_requests_total", "trace requests accepted over HTTP", s.ingests.Load)
	s.set.CounterFunc("krrserve_ingest_errors_total", "ingest bodies rejected", s.ingestErrs.Load)
	s.set.CounterFunc("krrserve_snapshots_total", "live curve snapshots served", s.snapshots.Load)
	s.set.GaugeFunc("krrserve_uptime_seconds", "seconds since process start", func() float64 {
		return time.Since(s.start).Seconds()
	})
	if ms, ok := m.(model.MetricSource); ok {
		ms.MetricsInto(s.set, "krr_model_")
	}
	return s, nil
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/mrc", s.handleMRC)
	mux.HandleFunc("/curve", s.handleCurve)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ndjsonReq is one ingest line. Key accepts either a JSON number (used
// verbatim) or a string (hashed to 64 bits), matching how real cache
// traces mix numeric block addresses and string object keys.
type ndjsonReq struct {
	Key  json.RawMessage `json:"key"`
	Size uint32          `json:"size"`
	Op   string          `json:"op"`
}

func (n ndjsonReq) request() (trace.Request, error) {
	req := trace.Request{Size: n.Size}
	if req.Size == 0 {
		req.Size = trace.DefaultObjectSize
	}
	switch n.Op {
	case "", "get":
		req.Op = trace.OpGet
	case "set":
		req.Op = trace.OpSet
	case "delete":
		req.Op = trace.OpDelete
	default:
		return req, fmt.Errorf("unknown op %q", n.Op)
	}
	if len(n.Key) == 0 {
		return req, errors.New("missing key")
	}
	var num uint64
	if err := json.Unmarshal(n.Key, &num); err == nil {
		req.Key = num
		return req, nil
	}
	var str string
	if err := json.Unmarshal(n.Key, &str); err == nil {
		req.Key = hashing.String(str)
		return req, nil
	}
	return req, fmt.Errorf("key %s is neither integer nor string", n.Key)
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var reader trace.Reader
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		br, err := trace.NewBinaryReader(r.Body)
		if err != nil {
			s.ingestErrs.Inc()
			http.Error(w, fmt.Sprintf("bad binary trace: %v", err), http.StatusBadRequest)
			return
		}
		reader = br
	} else {
		dec := json.NewDecoder(r.Body)
		line := 0
		reader = trace.FuncReader(func() (trace.Request, error) {
			line++
			var n ndjsonReq
			if err := dec.Decode(&n); err != nil {
				if errors.Is(err, io.EOF) {
					return trace.Request{}, io.EOF
				}
				return trace.Request{}, fmt.Errorf("line %d: %w", line, err)
			}
			req, err := n.request()
			if err != nil {
				return trace.Request{}, fmt.Errorf("line %d: %w", line, err)
			}
			return req, nil
		})
	}

	s.mu.Lock()
	if s.final {
		s.mu.Unlock()
		http.Error(w, "model is finalized", http.StatusConflict)
		return
	}
	var count uint64
	var err error
	for {
		var req trace.Request
		req, err = reader.Next()
		if err != nil {
			break
		}
		if perr := s.model.Process(req); perr != nil {
			err = perr
			break
		}
		count++
	}
	s.mu.Unlock()
	s.ingests.Add(count)
	if !errors.Is(err, io.EOF) {
		s.ingestErrs.Inc()
		http.Error(w, fmt.Sprintf("ingest stopped after %d requests: %v", count, err),
			http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\": %d}\n", count)
}

// snapshot takes a consistent live snapshot under the server lock.
func (s *server) snapshot() model.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshots.Inc()
	return s.model.Snapshot()
}

// curveFrom picks the requested granularity out of a snapshot.
func (s *server) curveFrom(snap model.Snapshot, r *http.Request) (*mrc.Curve, error) {
	switch unit := r.URL.Query().Get("unit"); unit {
	case "", "objects":
		return snap.Object, nil
	case "bytes":
		if snap.Byte == nil {
			return nil, errors.New("model was built without a byte mode (-bytes off)")
		}
		return snap.Byte, nil
	default:
		return nil, fmt.Errorf("unknown unit %q (want objects or bytes)", unit)
	}
}

func (s *server) handleMRC(w http.ResponseWriter, r *http.Request) {
	sizeStr := r.URL.Query().Get("size")
	size, err := strconv.ParseUint(sizeStr, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad size %q: %v", sizeStr, err), http.StatusBadRequest)
		return
	}
	snap := s.snapshot()
	c, err := s.curveFrom(snap, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"size\": %d, \"miss_ratio\": %g, \"requests\": %d}\n",
		size, c.Eval(size), snap.Stats.Seen)
}

func (s *server) handleCurve(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	c, err := s.curveFrom(snap, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if pts := r.URL.Query().Get("points"); pts != "" {
		n, err := strconv.Atoi(pts)
		if err != nil || n < 2 {
			http.Error(w, fmt.Sprintf("bad points %q", pts), http.StatusBadRequest)
			return
		}
		c = c.Downsample(n)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := c.WriteJSON(w); err != nil {
		log.Printf("krrserve: curve write: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := s.model.Stats()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"seen":           st.Seen,
		"sampled":        st.Sampled,
		"finalized":      st.Finalized,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.set.WritePrometheus(w); err != nil {
		log.Printf("krrserve: metrics write: %v", err)
	}
}

// writeFinal finalizes the model and writes the finished curve JSON to
// path ("" or "-" = stdout). By the snapshot contract this equals the
// last snapshot bit-for-bit if no requests arrived in between.
func (s *server) writeFinal(path string) error {
	s.mu.Lock()
	s.final = true
	c := s.model.ObjectMRC()
	s.mu.Unlock()
	out := os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return c.WriteJSON(out)
}
