package main

import (
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestIngestSmoke is the check.sh ingest-smoke stage: build the real
// krrserve and krrload binaries, run the generator against the wire
// listener over loopback at a modest paced rate, and require nonzero
// sustained throughput with zero drops (krrload exits nonzero
// otherwise, via -fail-on-drops). The server's own wire_ counters must
// agree that traffic arrived.
func TestIngestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon and load-generator binaries")
	}
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "krrserve")
	loadBin := filepath.Join(dir, "krrload")
	for bin, pkg := range map[string]string{serveBin: ".", loadBin: "../krrload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	httpAddr := reservePort(t)
	tcpAddr := reservePort(t)

	cmd := exec.Command(serveBin, "-addr", httpAddr, "-tcp", tcpAddr,
		"-model", "krr-bucket", "-seed", "1", "-final", filepath.Join(dir, "final.json"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	base := "http://" + httpAddr
	waitHealthy(t, base)

	// Modest rate: well under the plane's sustained capacity, so any
	// drop is a real admission-control or protocol bug.
	load := exec.Command(loadBin, "-addr", tcpAddr, "-duration", "2s",
		"-rate", "100000", "-frame", "1024", "-pregen", "65536", "-fail-on-drops")
	out, err := load.CombinedOutput()
	t.Logf("krrload output:\n%s", out)
	if err != nil {
		t.Fatalf("krrload failed: %v", err)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	buf := make([]byte, 1<<16)
	for {
		n, rerr := resp.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if v := metricValue(t, body.String(), "wire_requests_total"); v == 0 {
		t.Fatal("server counted zero wire requests")
	}
	if v := metricValue(t, body.String(), "wire_dropped_frames_total"); v != 0 {
		t.Fatalf("server dropped %d frames at a modest rate", v)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
}

// reservePort grabs a free loopback port and immediately releases it.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// metricValue extracts an integer counter from Prometheus exposition.
func metricValue(t *testing.T, body, name string) uint64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("/metrics missing %s:\n%s", name, body)
	}
	v, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
