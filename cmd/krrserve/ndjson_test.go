package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"testing"

	"krr/internal/hashing"
	"krr/internal/trace"
)

// legacyNDJSONReader is the pre-fast-path implementation — a streaming
// json.Decoder per body — kept verbatim as the reference for the
// equivalence tests and the "before" side of the ingest benchmark.
func legacyNDJSONReader(r io.Reader) trace.Reader {
	dec := json.NewDecoder(r)
	line := 0
	return trace.FuncReader(func() (trace.Request, error) {
		line++
		var n ndjsonReq
		if err := dec.Decode(&n); err != nil {
			if errors.Is(err, io.EOF) {
				return trace.Request{}, io.EOF
			}
			return trace.Request{}, fmt.Errorf("line %d: %w", line, err)
		}
		req, err := n.request()
		if err != nil {
			return trace.Request{}, fmt.Errorf("line %d: %w", line, err)
		}
		return req, nil
	})
}

func drain(r trace.Reader) ([]trace.Request, error) {
	var out []trace.Request
	for {
		req, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, req)
	}
}

// ndjsonCorpus mixes canonical fast-path lines with every exotic shape
// the fallback must cover.
func ndjsonCorpus() string {
	var sb strings.Builder
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		switch i % 10 {
		case 0:
			fmt.Fprintf(&sb, "{\"key\": \"obj-%d\", \"size\": %d}\n", rng.IntN(500), rng.IntN(4096)+1)
		case 1:
			fmt.Fprintf(&sb, "{\"size\": %d, \"op\": \"set\", \"key\": %d}\n", rng.IntN(4096)+1, rng.IntN(500))
		case 2:
			fmt.Fprintf(&sb, "{\"key\": %d, \"op\": \"delete\"}\n", rng.IntN(500))
		case 3:
			// Escaped string key: fallback territory.
			fmt.Fprintf(&sb, "{\"key\": \"a\\\"b-%d\"}\n", rng.IntN(500))
		case 4:
			// Non-ASCII key: fallback territory.
			fmt.Fprintf(&sb, "{\"key\": \"héllo-%d\"}\n", rng.IntN(500))
		case 5:
			// Unknown extra field: fallback (json ignores it).
			fmt.Fprintf(&sb, "{\"key\": %d, \"ts\": 123}\n", rng.IntN(500))
		case 6:
			// Blank and whitespace-only lines are skipped.
			sb.WriteString("   \n")
			fmt.Fprintf(&sb, "{\"key\": %d}\n", rng.IntN(500))
		case 7:
			// Exotic whitespace inside the object.
			fmt.Fprintf(&sb, "  { \"key\" :\t%d , \"size\" : %d }  \n", rng.IntN(500), rng.IntN(4096)+1)
		default:
			fmt.Fprintf(&sb, "{\"key\": %d, \"size\": %d, \"op\": \"get\"}\n", rng.IntN(100000), rng.IntN(4096)+1)
		}
	}
	return sb.String()
}

// TestNDJSONFastPathEquivalence pins the hand-rolled parser to the
// encoding/json semantics on a corpus mixing canonical and exotic
// lines: identical request streams from all three paths (fast+fallback
// mix, forced fallback, legacy decoder).
func TestNDJSONFastPathEquivalence(t *testing.T) {
	corpus := ndjsonCorpus()

	fast, err := drain(newNDJSONReader(strings.NewReader(corpus)))
	if err != nil {
		t.Fatal(err)
	}
	slowReader := newNDJSONReader(strings.NewReader(corpus))
	slowReader.forceSlow = true
	slow, err := drain(slowReader)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := drain(legacyNDJSONReader(strings.NewReader(corpus)))
	if err != nil {
		t.Fatal(err)
	}

	if len(fast) != len(slow) || len(fast) != len(legacy) {
		t.Fatalf("lengths: fast %d slow %d legacy %d", len(fast), len(slow), len(legacy))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("request %d: fast %+v != forced-slow %+v", i, fast[i], slow[i])
		}
		if fast[i] != legacy[i] {
			t.Fatalf("request %d: fast %+v != legacy %+v", i, fast[i], legacy[i])
		}
	}
}

// TestNDJSONErrors pins rejection with line numbers on malformed input.
func TestNDJSONErrors(t *testing.T) {
	cases := []struct{ name, body string }{
		{"missing key", "{\"key\": 1}\n{\"size\": 5}\n"},
		{"bad op", "{\"key\": 1, \"op\": \"frob\"}\n"},
		{"not json", "{\"key\": 1}\nnonsense\n"},
		{"bad key type", "{\"key\": [1,2]}\n"},
		{"float size", "{\"key\": 1, \"size\": 1.5}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := drain(newNDJSONReader(strings.NewReader(tc.body)))
			if err == nil {
				t.Fatalf("accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error lacks line number: %v", err)
			}
		})
	}
}

// TestNDJSONFastParseCases pins individual fast-parser behaviours.
func TestNDJSONFastParseCases(t *testing.T) {
	// Canonical lines must take the fast path (not merely agree with it):
	// these shapes are the hot ingest format.
	fastCases := []string{
		`{"key": 7}`,
		`{"key": 7, "size": 100, "op": "get"}`,
		`{"op": "set", "key": 7, "size": 1}`,
		`{"key": "user:123:profile", "size": 4096}`,
		`{"key": 18446744073709551615}`, // max uint64
	}
	for _, line := range fastCases {
		if _, ok := parseNDJSONLine([]byte(line)); !ok {
			t.Errorf("canonical line punted to fallback: %s", line)
		}
	}
	// These must punt (ok=false), never mis-parse.
	slowCases := []string{
		``,
		`{}`,
		`{"key": -1}`,
		`{"key": 1.5}`,
		`{"key": 01}`,
		`{"key": 18446744073709551616}`,  // uint64 overflow
		`{"key": 1, "size": 4294967296}`, // uint32 overflow
		`{"key": "a\"b"}`,
		`{"key": "ü"}`,
		`{"key": 1} trailing`,
		`{"key": 1 "size": 2}`,
		`{"unknown": 1, "key": 2}`,
	}
	for _, line := range slowCases {
		if req, ok := parseNDJSONLine([]byte(line)); ok {
			t.Errorf("fast path accepted %s -> %+v", line, req)
		}
	}
	// String keys hash exactly like the legacy path.
	req, ok := parseNDJSONLine([]byte(`{"key": "user:42"}`))
	if !ok || req.Key != hashing.String("user:42") {
		t.Fatalf("string key hash mismatch: %+v ok=%v", req, ok)
	}
	// Default size applies on the fast path too.
	if req.Size != trace.DefaultObjectSize {
		t.Fatalf("default size not applied: %+v", req)
	}
}

// BenchmarkNDJSONDecode is the satellite's before/after: the legacy
// json.Decoder path versus the fast line parser on identical canonical
// bodies. Allocations per request are the headline number.
func BenchmarkNDJSONDecode(b *testing.B) {
	var sb strings.Builder
	rng := rand.New(rand.NewPCG(3, 4))
	const lines = 10000
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "{\"key\": %d, \"size\": %d, \"op\": \"get\"}\n", rng.IntN(100000), rng.IntN(4096)+1)
	}
	body := sb.String()
	for _, bench := range []struct {
		name string
		mk   func() trace.Reader
	}{
		{"legacy", func() trace.Reader { return legacyNDJSONReader(strings.NewReader(body)) }},
		{"fast", func() trace.Reader { return newNDJSONReader(strings.NewReader(body)) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var buf [64]trace.Request
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := bench.mk()
				n := 0
				for {
					k, err := trace.ReadBatch(r, buf[:])
					n += k
					if err != nil {
						if errors.Is(err, io.EOF) {
							break
						}
						b.Fatal(err)
					}
				}
				if n != lines {
					b.Fatalf("decoded %d, want %d", n, lines)
				}
			}
		})
	}
}
