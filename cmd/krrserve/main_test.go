package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"krr/internal/model"
	"krr/internal/mrc"
	"krr/internal/trace"
	"krr/internal/workload"
)

func testServer(t *testing.T, opts model.Options) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer("krr", opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, contentType, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestIngestNDJSONAndMRC(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	var b strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%97)
	}
	b.WriteString("{\"key\": \"user:42\", \"size\": 512, \"op\": \"set\"}\n")
	resp := post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ing struct {
		Ingested int `json:"ingested"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if ing.Ingested != 2001 {
		t.Fatalf("ingested %d, want 2001", ing.Ingested)
	}

	resp = get(t, ts.URL+"/mrc?size=50")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/mrc status %d", resp.StatusCode)
	}
	var point struct {
		Size      uint64  `json:"size"`
		MissRatio float64 `json:"miss_ratio"`
		Requests  uint64  `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&point); err != nil {
		t.Fatal(err)
	}
	if point.Requests != 2001 {
		t.Fatalf("requests %d, want 2001", point.Requests)
	}
	if point.MissRatio < 0 || point.MissRatio > 1 {
		t.Fatalf("miss ratio %v out of range", point.MissRatio)
	}

	// Snapshots must not finalize: a second ingest still succeeds.
	resp = post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-snapshot ingest status %d", resp.StatusCode)
	}
}

func TestIngestBinary(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})

	gen := workload.NewZipf(3, 500, 0.9, workload.FixedSize(trace.DefaultObjectSize), 0.1)
	tr, err := trace.Collect(gen, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/ingest", "application/octet-stream", buf.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary ingest status %d", resp.StatusCode)
	}

	resp = get(t, ts.URL+"/curve?points=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 || c.Eval(0) != 1 {
		t.Fatalf("malformed live curve: %d points", c.Len())
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s, ts := testServer(t, model.Options{K: 4, Seed: 1})
	for _, body := range []string{
		"{\"key\": 1}\nnot json\n",
		"{\"size\": 8}\n",                   // missing key
		"{\"key\": 1, \"op\": \"frobn\"}\n", // unknown op
	} {
		resp := post(t, ts.URL+"/ingest", "application/x-ndjson", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp := post(t, ts.URL+"/ingest", "application/octet-stream", "XXXXnot a trace")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad magic: status %d, want 400", resp.StatusCode)
	}
	if s.ingestErrs.Load() != 4 {
		t.Fatalf("ingest error counter = %d, want 4", s.ingestErrs.Load())
	}
}

func TestByteUnitWithoutByteMode(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1}) // bytes off
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	resp := get(t, ts.URL+"/mrc?size=100&unit=bytes")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("byte query on bytes-off model: status %d, want 400", resp.StatusCode)
	}
}

func TestByteUnitCurve(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1, Bytes: model.BytesOn})
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d, \"size\": %d}\n", i%200, 100+(i%7)*300)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	resp := get(t, ts.URL+"/curve?unit=bytes")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve unit=bytes status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatalf("degenerate byte curve: %d points", c.Len())
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n{\"key\": 2}\n")
	resp := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"krrserve_ingest_requests_total 2",
		"krr_model_requests_seen_total 2",
		"krr_model_stack_len",
		"# TYPE krrserve_uptime_seconds gauge",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestShardedServer(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1, Workers: 3})
	var b strings.Builder
	for i := 0; i < 4000; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%300)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())
	resp := get(t, ts.URL+"/curve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/curve status %d", resp.StatusCode)
	}
	c, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatal("degenerate sharded live curve")
	}
	resp = get(t, ts.URL+"/metrics")
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "krr_model_pipe_batches_total") {
		t.Fatal("/metrics missing shard pipe telemetry")
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := testServer(t, model.Options{K: 4, Seed: 1})
	post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 9}\n")
	resp := get(t, ts.URL+"/stats")
	var st struct {
		Seen      uint64 `json:"seen"`
		Finalized bool   `json:"finalized"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Seen != 1 || st.Finalized {
		t.Fatalf("stats = %+v", st)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
}

func TestFinalCurveMatchesLastSnapshot(t *testing.T) {
	s, ts := testServer(t, model.Options{K: 4, Seed: 1})
	var b strings.Builder
	for i := 0; i < 2500; i++ {
		fmt.Fprintf(&b, "{\"key\": %d}\n", i%150)
	}
	post(t, ts.URL+"/ingest", "application/x-ndjson", b.String())

	resp := get(t, ts.URL+"/curve")
	live, err := mrc.ReadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	s.mu.Lock()
	s.final = true
	finalCurve := s.model.ObjectMRC()
	s.mu.Unlock()
	if err := finalCurve.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fin, err := mrc.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if live.Len() != fin.Len() {
		t.Fatalf("live curve %d points, final %d", live.Len(), fin.Len())
	}
	for i := range fin.Sizes {
		if live.Sizes[i] != fin.Sizes[i] || live.Miss[i] != fin.Miss[i] {
			t.Fatalf("live and final curves diverge at point %d", i)
		}
	}

	// Ingest after finalization is refused, not crashed.
	resp = post(t, ts.URL+"/ingest", "application/x-ndjson", "{\"key\": 1}\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("post-final ingest status %d, want 409", resp.StatusCode)
	}
}
